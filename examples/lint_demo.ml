(* Lint demo: catch seeded bugs in a Golite program *without running
   it*, using the abstract-interpretation linter behind `dnsv lint`.

     dune exec examples/lint_demo.exe

   The program below seeds two classic mistakes:

   - [sumFirst] iterates `i <= 4` over a 4-element array, so the
     compiled bounds check on `xs[i]` can actually fire: an off-by-one
     the interval analysis proves reachable with constant bounds.
   - [scale] stores `x * 3` into a temporary on one branch and never
     reads it again: a dead store the backward liveness pass flags.

   The example is self-checking: it exits non-zero unless the linter
   reports exactly the two seeded bugs. *)

let source =
  "func sumFirst(xs [4]int) int {\n\
  \  var total int = 0\n\
  \  var i int = 0\n\
  \  while i <= 4 {\n\
  \    total = total + xs[i]\n\
  \    i = i + 1\n\
  \  }\n\
  \  return total\n\
   }\n\n\
   func scale(x int) int {\n\
  \  var tmp int = 0\n\
  \  if x > 0 {\n\
  \    tmp = x * 3\n\
  \  }\n\
  \  return x * 2\n\
   }\n"

let () =
  (* Golite source -> MinIR, exactly the path the engine versions take. *)
  let prog = Golite.Compile.compile (Golite.Parse.program_of_string_exn source) in
  let findings = Analysis.Lint.run prog in

  Printf.printf "lint findings for the seeded program:\n";
  List.iter
    (fun f -> Format.printf "  %a@." Analysis.Lint.pp_finding f)
    findings;

  let has rule fn =
    List.exists
      (fun (f : Analysis.Lint.finding) ->
        f.Analysis.Lint.rule = rule && f.Analysis.Lint.fn = fn)
      findings
  in
  let off_by_one = has "reachable-panic" "sumFirst" in
  let dead_store = has "dead-store" "scale" in
  Printf.printf "\noff-by-one in sumFirst:  %s\n"
    (if off_by_one then "caught" else "MISSED");
  Printf.printf "dead store in scale:     %s\n"
    (if dead_store then "caught" else "MISSED");

  (* And nothing else: the linter is precise on this program, not just
     lucky — extra findings here would be false positives. *)
  let expected =
    List.for_all
      (fun (f : Analysis.Lint.finding) ->
        (f.Analysis.Lint.rule = "reachable-panic"
        && f.Analysis.Lint.fn = "sumFirst")
        || (f.Analysis.Lint.rule = "dead-store" && f.Analysis.Lint.fn = "scale"))
      findings
  in
  if not expected then
    print_endline "unexpected extra findings (false positives)";
  if off_by_one && dead_store && expected then begin
    print_endline "\nlint demo: both seeded bugs caught, no false positives";
    exit 0
  end
  else exit 1
