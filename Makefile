# Convenience targets over dune. `make bench-json` is the perf gate:
# it regenerates BENCH_PR10.json and fails (exit 1) if parallel/cached
# verdicts diverge from sequential ones, the summaries-ablation
# speedup regresses below its seed-commit floor, certificate checking
# costs more than 10% over the uncertified re-verification, span
# recording costs more than 5%, the static analysis costs more than 5%
# when nothing is discharged (or the interprocedural layer discharges
# under 70% of panic checks, or Distrust refutes any interprocedural
# claim), the store-backed incremental cross-version re-verify is
# less than 10x faster than cold (or its verdict fingerprint drifts),
# store bookkeeping costs more than 10% over a storeless run, the
# CDCL solver core does fewer than 2x fewer DPLL(T) iterations than
# the legacy no-learning discipline (or more than half the PR 6
# baseline, or its verdict fingerprint drifts), or the 200-plan chaos
# soak reports a soundness violation, or the wire probe's malformed
# loadgen leg crashes the serve loop (any escaped exception or decoder
# barrier firing), or the observability stack (sampled query log +
# rolling SLO windows + a scraped stats endpoint, all ON) costs more
# than 5% wall or exact-p99 over serving with it all OFF, or any
# observability arm's reply fingerprint differs from the OFF arm's —
# including the Obsv_sink_fail arm, where every append is suppressed
# (the checks live in bench/main.ml's json target).
# `make lint` runs the abstract-interpretation linter over every
# bundled engine version against the checked-in baseline. `make chaos`
# is the standalone soak via the CLI; `make trace` records a
# verification trace and renders it. `make fuzz` is the seeded
# solver-fuzz smoke battery (random CNFs and LIA conjunctions, CDCL
# vs. a reference evaluator); `make fuzz-wire` is its RFC 1035
# decoder twin (every typed guard must fire, nothing may escape).
# `make serve` runs a UDP authoritative loop on port 5300; `make
# loadgen` fires the default mixed load (10% malformed) at it.

.PHONY: all build check test lint bench bench-json fuzz fuzz-wire \
	serve loadgen chaos trace clean

all: build

build:
	dune build

check:
	dune build @check

test:
	dune runtest

lint:
	dune exec bin/dnsv_cli.exe -- lint --baseline lint_baseline.json

bench:
	dune exec bench/main.exe

bench-json:
	dune exec bench/main.exe -- json > BENCH_PR10.json
	@cat BENCH_PR10.json
	@echo

fuzz:
	dune exec test/fuzz_solver.exe -- 2000

fuzz-wire:
	dune exec test/fuzz_wire.exe -- 5000

serve:
	dune exec bin/dnsv_cli.exe -- serve --port 5300

loadgen:
	dune exec bin/dnsv_cli.exe -- loadgen --port 5300

chaos:
	dune exec bin/dnsv_cli.exe -- chaos --plans 200 --seed 1

trace:
	dune exec bin/dnsv_cli.exe -- verify --trace trace.json
	dune exec bin/dnsv_cli.exe -- report trace.json --validate-layers

clean:
	dune clean
