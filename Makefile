# Convenience targets over dune. `make bench-json` is the perf gate:
# it regenerates BENCH_PR2.json and fails (exit 1) if parallel/cached
# verdicts diverge from sequential ones or the summaries-ablation
# speedup regresses below its seed-commit floor (the checks live in
# bench/main.ml's json target).

.PHONY: all build check test bench bench-json clean

all: build

build:
	dune build

check:
	dune build @check

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-json:
	dune exec bench/main.exe -- json > BENCH_PR2.json
	@cat BENCH_PR2.json
	@echo

clean:
	dune clean
