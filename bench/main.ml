(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation (§7) and provides Bechamel micro-benchmarks for
   the core verification operations.

     dune exec bench/main.exe              # all tables + micro-benchmarks
     dune exec bench/main.exe -- table1    # just Table 1
     dune exec bench/main.exe -- table2    # just Table 2
     dune exec bench/main.exe -- table3    # just Table 3
     dune exec bench/main.exe -- fig12     # just Figure 12
     dune exec bench/main.exe -- micro     # just the Bechamel benches
     dune exec bench/main.exe -- ablation  # summaries vs. inlining
     dune exec bench/main.exe -- reverify  # caching/parallel re-verification
     dune exec bench/main.exe -- certoverhead # certificate-validation tax
     dune exec bench/main.exe -- traceoverhead # span-recording tax
     dune exec bench/main.exe -- chaos     # 200-plan seeded chaos soak
     dune exec bench/main.exe -- json      # machine-readable report (JSON);
                                           # exits 1 on perf/verdict/soundness
                                           # regression *)

open Bechamel
open Toolkit

let rule () = print_endline (String.make 78 '=')

let table1 () =
  rule ();
  Dnsv.Table1.print (Dnsv.Table1.run ());
  print_newline ()

let table2 () =
  rule ();
  Dnsv.Table2.print (Dnsv.Table2.run ());
  print_newline ()

let table3 () =
  rule ();
  Dnsv.Table3.print (Dnsv.Table3.run ());
  print_newline ()

let fig12 () =
  rule ();
  Dnsv.Fig12.print (Dnsv.Fig12.run ());
  print_newline ()

(* Ablation: the summarization design choice (§5.3) — whole-engine
   verification with summaries at resolution layers vs. naive full
   inlining. *)
let ablation () =
  rule ();
  print_endline
    "Ablation: summarized resolution layers vs. full inlining (3 qtypes,";
  print_endline "reference zone, engine v3.0-fixed)";
  print_newline ();
  let cfg = Engine.Versions.fixed Engine.Versions.v3_0 in
  let zone = Spec.Fixtures.reference_zone in
  let measure mode =
    let t0 = Unix.gettimeofday () in
    (* One summary store shared across the query types: summaries are
       reused wherever the calling shape recurs, which is where the
       technique pays off. *)
    let store = Symex.Summary.create_store () in
    let reports =
      List.map
        (fun qtype -> Refine.Check.check_version ~mode ~store cfg zone ~qtype)
        [ Dns.Rr.A; Dns.Rr.MX; Dns.Rr.NS ]
    in
    let ok = List.for_all Refine.Check.ok reports in
    let solver =
      List.fold_left
        (fun a (r : Refine.Check.report) -> a + r.Refine.Check.solver_calls)
        0 reports
    in
    (Unix.gettimeofday () -. t0, ok, solver)
  in
  let t_sum, ok_sum, calls_sum = measure Refine.Check.With_summaries in
  let t_inl, ok_inl, calls_inl = measure Refine.Check.Inline_all in
  Printf.printf "%-18s %10s %8s %14s\n" "mode" "seconds" "clean" "solver calls";
  Printf.printf "%-18s %10.3f %8b %14d\n" "with summaries" t_sum ok_sum
    calls_sum;
  Printf.printf "%-18s %10.3f %8b %14d\n" "full inlining" t_inl ok_inl
    calls_inl;
  Printf.printf
    "\nSummaries amortize re-exploration across call sites; both modes must\n";
  Printf.printf "agree on the verification verdict.\n\n"

(* ------------------------------------------------------------------ *)
(* Re-verification workload (Table-2 shaped)                          *)
(* ------------------------------------------------------------------ *)

(* The perf headline of this PR: re-verify every fixed engine version
   [reverify_passes] times over the reference zone (all query types) —
   the workload of a developer re-running the proof after an unrelated
   edit. Three configurations:

   - seed:    result caches AND the incremental assertion stack off,
              sequential — every branch decision re-translates and
              re-solves its whole path condition from scratch (the
              pre-optimization solver);
   - cached:  caches + incremental stack on, sequential;
   - parallel: caches on, fanned over a [reverify_jobs]-worker domain
              pool (clamped to the machine's recommended domain count:
              oversubscribing cores only adds GC contention).

   The task list interleaves passes so the pool's static round-robin
   pins every pass of one version to one worker: its domain-local
   solver caches see the re-verification. All three configurations
   must produce byte-identical verdict fingerprints. *)

let reverify_passes = 2
let reverify_jobs = 4
let effective_jobs jobs = max 1 (min jobs (Domain.recommended_domain_count ()))

let reverify_versions () =
  List.map Engine.Versions.fixed
    Engine.Versions.[ v1_0; v2_0; v3_0; dev ]

let zero_stats () =
  {
    Smt.Solver.checks = 0;
    fast_path = 0;
    dpllt_iterations = 0;
    unknowns = 0;
    cache_hits = 0;
    cache_misses = 0;
    incremental_checks = 0;
    scratch_checks = 0;
    cert_checks = 0;
    cert_failures = 0;
  }

(* Snapshot of this domain's cumulative counters. [Solver.lifetime]
   already folds in the current window and returns a fresh record, so
   the snapshot is safe to keep across resets. *)
let stats_snapshot () = Smt.Solver.lifetime ()

type reverify_run = {
  rv_wall : float;
  rv_worker_walls : float list;
  rv_fingerprint : string;
  rv_stats : Smt.Solver.stats;
}

let reverify_run ?(analysis = Analysis.Trust) ~caching ~jobs () =
  let zone = Spec.Fixtures.reference_zone in
  let tasks =
    List.concat (List.init reverify_passes (fun _ -> reverify_versions ()))
  in
  let jobs = effective_jobs jobs in
  Smt.Solver.set_caching caching;
  Smt.Solver.set_incremental caching;
  Smt.Solver.clear_caches ();
  Dnsv.Pipeline.clear_summary_memo ();
  let task cfg =
    let s0 = stats_snapshot () in
    let v =
      Dnsv.Pipeline.verify ~check_layers:false ~budget:(Budget.create ())
        ~analysis cfg zone
    in
    let s1 = stats_snapshot () in
    (Dnsv.Pipeline.fingerprint v, Smt.Solver.diff_stats s1 s0)
  in
  let t0 = Unix.gettimeofday () in
  let results, walls = Parallel.Domainpool.map_timed ~jobs task tasks in
  let wall = Unix.gettimeofday () -. t0 in
  Smt.Solver.set_caching true;
  Smt.Solver.set_incremental true;
  let stats = zero_stats () in
  List.iter (fun (_, s) -> Smt.Solver.add_stats ~into:stats s) results;
  {
    rv_wall = wall;
    rv_worker_walls = walls;
    rv_fingerprint = String.concat "\n" (List.map fst results);
    rv_stats = stats;
  }

let reverify_all () =
  let seed = reverify_run ~caching:false ~jobs:1 () in
  let cached = reverify_run ~caching:true ~jobs:1 () in
  let par = reverify_run ~caching:true ~jobs:reverify_jobs () in
  (seed, cached, par)

(* ------------------------------------------------------------------ *)
(* Certificate-checking overhead                                      *)
(* ------------------------------------------------------------------ *)

(* The robustness tax of this PR: the cached sequential re-verification
   workload with certificate validation off (the PR-2 solver) vs. on
   (every answer — including cache and incremental-stack hits —
   re-validated by the independent checker). The wall-clock ratio must
   stay within [cert_overhead_gate]. Best-of-[cert_overhead_reps] per
   arm to keep machine noise out of the gate. *)

let cert_overhead_gate = 1.10
let cert_overhead_reps = 3

let best_of n f =
  let rec go k best =
    if k = 0 then best
    else
      let r = f () in
      go (k - 1) (if r.rv_wall < best.rv_wall then r else best)
  in
  go (n - 1) (f ())

let cert_overhead_runs () =
  let arm certify () =
    Smt.Solver.set_certify certify;
    let r = reverify_run ~caching:true ~jobs:1 () in
    Smt.Solver.set_certify true;
    r
  in
  let off = best_of cert_overhead_reps (arm false) in
  let on_ = best_of cert_overhead_reps (arm true) in
  (off, on_)

let cert_overhead () =
  rule ();
  print_endline
    "Certificate-checking overhead (cached sequential re-verification)";
  print_newline ();
  let off, on_ = cert_overhead_runs () in
  let ratio = on_.rv_wall /. off.rv_wall in
  Printf.printf "%-24s %8.3f s   cert checks %d\n" "validation off" off.rv_wall
    off.rv_stats.Smt.Solver.cert_checks;
  Printf.printf "%-24s %8.3f s   cert checks %d\n" "validation on" on_.rv_wall
    on_.rv_stats.Smt.Solver.cert_checks;
  Printf.printf "\noverhead %.3fx (gate <= %.2fx), verdicts identical: %b\n\n"
    ratio cert_overhead_gate
    (String.equal off.rv_fingerprint on_.rv_fingerprint)

(* ------------------------------------------------------------------ *)
(* Tracing overhead                                                   *)
(* ------------------------------------------------------------------ *)

(* The observability tax of this PR: the cached sequential
   re-verification workload with the trace sink disabled (the default)
   vs. recording the full span tree. Spans are allocation-light and the
   disabled path is a single atomic load, so the wall-clock ratio must
   stay within [trace_overhead_gate]. Best-of-[trace_overhead_reps] per
   arm to keep machine noise out of the gate. *)

let trace_overhead_gate = 1.05
let trace_overhead_reps = 9

let trace_overhead_runs () =
  let arm_untraced () = reverify_run ~caching:true ~jobs:1 () in
  let spans = ref 0 in
  let arm_traced () =
    let r, forest =
      Trace.recording (fun () -> reverify_run ~caching:true ~jobs:1 ())
    in
    spans := Trace.span_count forest;
    r
  in
  (* One discarded warm-up, then the arms *interleaved* (not
     back-to-back blocks): clock drift and thermal state over a long
     bench run would otherwise land entirely on whichever arm runs
     second and masquerade as tracing overhead. *)
  ignore (arm_untraced ());
  let best cur r =
    match cur with
    | Some b when b.rv_wall <= r.rv_wall -> Some b
    | _ -> Some r
  in
  let off = ref None and on_ = ref None in
  for _ = 1 to trace_overhead_reps do
    off := best !off (arm_untraced ());
    on_ := best !on_ (arm_traced ())
  done;
  (Option.get !off, Option.get !on_, !spans)

let trace_overhead () =
  rule ();
  print_endline "Tracing overhead (cached sequential re-verification)";
  print_newline ();
  let off, on_, spans = trace_overhead_runs () in
  let ratio = on_.rv_wall /. off.rv_wall in
  Printf.printf "%-24s %8.3f s\n" "tracing off" off.rv_wall;
  Printf.printf "%-24s %8.3f s   %d spans recorded\n" "tracing on" on_.rv_wall
    spans;
  Printf.printf "\noverhead %.3fx (gate <= %.2fx), verdicts identical: %b\n\n"
    ratio trace_overhead_gate
    (String.equal off.rv_fingerprint on_.rv_fingerprint)

(* ------------------------------------------------------------------ *)
(* Static-analysis overhead                                           *)
(* ------------------------------------------------------------------ *)

(* The tax and the payoff of the abstract-interpretation pass, both on
   the cached sequential re-verification workload. The tax arm runs
   with [Analysis.Distrust]: the dataflow pass runs in full and every
   claim is cross-checked, so the solver-call sequence is identical to
   [Analysis.Off] and *nothing* is discharged — the wall-clock ratio
   against the no-analysis arm is pure analysis cost and must stay
   within [analysis_overhead_gate]. The payoff arm runs with
   [Analysis.Trust] (the default) and records how many panic-guard
   checks the invariants discharged, plus the resulting speedup.
   Interleaved best-of-[analysis_overhead_reps] per arm, same as the
   tracing probe. *)

let analysis_overhead_gate = 1.05
let analysis_overhead_reps = 6

(* PR 10 gate: the interprocedural summary layer must discharge at
   least this fraction of the panic-guard checks on the reverify
   workload (the PR 9 intraprocedural layer managed ~53%). *)
let interproc_discharge_gate = 0.70

type analysis_overhead_result = {
  ao_off : reverify_run;
  ao_distrust : reverify_run;
  ao_trust : reverify_run;
  ao_panic_checks : int;
  ao_panic_discharged : int;
  ao_static_discharged : int;
  ao_ip_discharged : int; (* prunes only the interprocedural layer justifies *)
  ao_ip_crosschecked : int; (* Distrust: interprocedural claims checked *)
  ao_ip_mismatches : int; (* ... of which the solver refuted *)
}

let analysis_overhead_runs () =
  let arm analysis () = reverify_run ~analysis ~caching:true ~jobs:1 () in
  ignore (arm Analysis.Off ());
  let best cur r =
    match cur with
    | Some b when b.rv_wall <= r.rv_wall -> Some b
    | _ -> Some r
  in
  let off = ref None and dis = ref None and tru = ref None in
  let checks = ref 0 and pdis = ref 0 and sdis = ref 0 in
  let ipdis = ref 0 and ipchk = ref 0 and ipmis = ref 0 in
  for _ = 1 to analysis_overhead_reps do
    off := best !off (arm Analysis.Off ());
    let d0 = Trace.Metrics.snapshot () in
    dis := best !dis (arm Analysis.Distrust ());
    let dd = Trace.Metrics.diff (Trace.Metrics.snapshot ()) d0 in
    let m0 = Trace.Metrics.snapshot () in
    tru := best !tru (arm Analysis.Trust ());
    let d = Trace.Metrics.diff (Trace.Metrics.snapshot ()) m0 in
    (* The counts are identical on every rep (the workload is
       deterministic), so keeping the last rep's delta is fine. *)
    checks := Trace.Metrics.get d "analysis.panic_checks";
    pdis := Trace.Metrics.get d "analysis.panic_discharged";
    sdis := Trace.Metrics.get d "analysis.static_discharged";
    ipdis := Trace.Metrics.get d "analysis.ip_discharged";
    ipchk := Trace.Metrics.get dd "analysis.ip_crosscheck";
    ipmis := Trace.Metrics.get dd "analysis.ip_crosscheck_mismatch"
  done;
  {
    ao_off = Option.get !off;
    ao_distrust = Option.get !dis;
    ao_trust = Option.get !tru;
    ao_panic_checks = !checks;
    ao_panic_discharged = !pdis;
    ao_static_discharged = !sdis;
    ao_ip_discharged = !ipdis;
    ao_ip_crosschecked = !ipchk;
    ao_ip_mismatches = !ipmis;
  }

let analysis_overhead () =
  rule ();
  print_endline "Static-analysis overhead (cached sequential re-verification)";
  print_newline ();
  let ao = analysis_overhead_runs () in
  let ratio = ao.ao_distrust.rv_wall /. ao.ao_off.rv_wall in
  let speedup = ao.ao_off.rv_wall /. ao.ao_trust.rv_wall in
  Printf.printf "%-26s %8.3f s\n" "analysis off" ao.ao_off.rv_wall;
  Printf.printf "%-26s %8.3f s   (full analysis, nothing discharged)\n"
    "distrust (cross-check)" ao.ao_distrust.rv_wall;
  Printf.printf "%-26s %8.3f s   %d/%d panic checks discharged\n"
    "trust (prune)" ao.ao_trust.rv_wall ao.ao_panic_discharged
    ao.ao_panic_checks;
  let frac =
    if ao.ao_panic_checks = 0 then 0.
    else float_of_int ao.ao_panic_discharged /. float_of_int ao.ao_panic_checks
  in
  Printf.printf
    "%-26s %8.1f %%   (gate >= %.0f%%; %d interproc-only, %d/%d crosschecks \
     refuted)\n"
    "discharge fraction" (100. *. frac)
    (100. *. interproc_discharge_gate)
    ao.ao_ip_discharged ao.ao_ip_mismatches ao.ao_ip_crosschecked;
  let identical =
    String.equal ao.ao_off.rv_fingerprint ao.ao_distrust.rv_fingerprint
    && String.equal ao.ao_distrust.rv_fingerprint ao.ao_trust.rv_fingerprint
  in
  Printf.printf
    "\noverhead %.3fx (gate <= %.2fx), trust speedup %.2fx, verdicts \
     identical: %b\n\n"
    ratio analysis_overhead_gate speedup identical

(* ------------------------------------------------------------------ *)
(* Incremental cross-version re-verification (persistent store)       *)
(* ------------------------------------------------------------------ *)

(* The persistent-store probe: prime the store by verifying the buggy
   v3.0 engine, then verify its patched twin against the same store.
   The patch edits resolution-level code only, so everything outside
   the edit's cone of influence — layer verdicts, module summaries,
   solver results — is served from the store, and the warm run must
   finish in under a tenth of the cold storeless time with a
   byte-identical verdict fingerprint. The static analysis is off so
   the probe measures store reuse, not static pruning; solver caches
   and the store's parsed-entry memos are scrubbed before every arm,
   so each run is cold apart from the store file itself. Warm reps
   each run over a fresh copy of the primed store (a warm rep would
   otherwise prime its own successor and quietly stop measuring the
   cross-version case). *)

let incremental_gate = 10.0
let incremental_reps = 2
let incremental_qtypes = [ Dns.Rr.A; Dns.Rr.MX ]

(* Cold-with-store vs. no-store on the same engine: the bookkeeping tax
   of recording every entry must stay within [store_overhead_gate]. *)
let store_overhead_gate = 1.10

(* Interleaved best-of-[store_overhead_reps] per arm: the arms are only
   ~0.6 s each, so on a busy single-core box a burst of steal time in
   one arm can swing the ratio by more than the gate's headroom; the
   min over enough interleaved reps converges on the quiet-machine
   wall for both arms. *)
let store_overhead_reps = 9

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_dir () =
  let dir = Filename.temp_file "dnsv-bench-store" "" in
  Sys.remove dir;
  dir

let copy_store src dst =
  Unix.mkdir dst 0o755;
  let file = "store.data" in
  let ic = open_in_bin (Filename.concat src file) in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  let oc = open_out_bin (Filename.concat dst file) in
  output_string oc b;
  close_out oc

type incr_run = { ir_wall : float; ir_fp : string }

let incr_verify ?store cfg =
  Smt.Solver.clear_caches ();
  Dnsv.Pipeline.clear_summary_memo ();
  let t0 = Unix.gettimeofday () in
  let v =
    Dnsv.Pipeline.verify ~qtypes:incremental_qtypes
      ~budget:(Budget.create ()) ~analysis:Analysis.Off ?store cfg
      Spec.Fixtures.figure11_zone
  in
  { ir_wall = Unix.gettimeofday () -. t0; ir_fp = Dnsv.Pipeline.fingerprint v }

let incr_with_store dir f =
  let st = Store.open_ dir in
  Fun.protect ~finally:(fun () -> Store.close st) (fun () -> f st)

let best_incr cur r =
  match cur with Some b when b.ir_wall <= r.ir_wall -> Some b | _ -> Some r

type incremental_result = {
  inc_prime : incr_run; (* buggy engine, empty store *)
  inc_cold : incr_run; (* patched engine, no store *)
  inc_warm : incr_run; (* patched engine, primed store *)
  inc_entries : int; (* live entries after priming *)
}

let incremental_runs () =
  let primed = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf primed) @@ fun () ->
  let buggy = Engine.Versions.v3_0 in
  let patched = Engine.Versions.fixed Engine.Versions.v3_0 in
  let prime = incr_with_store primed (fun st -> incr_verify ~store:st buggy) in
  let entries = (Store.stat primed).Store.st_total in
  let cold = ref None and warm = ref None in
  for _ = 1 to incremental_reps do
    cold := best_incr !cold (incr_verify patched);
    let scratch = fresh_dir () in
    rm_rf scratch;
    copy_store primed scratch;
    Fun.protect
      ~finally:(fun () -> rm_rf scratch)
      (fun () ->
        warm :=
          best_incr !warm
            (incr_with_store scratch (fun st -> incr_verify ~store:st patched)))
  done;
  {
    inc_prime = prime;
    inc_cold = Option.get !cold;
    inc_warm = Option.get !warm;
    inc_entries = entries;
  }

type store_overhead_result = {
  so_without : incr_run;
  so_with : incr_run;
}

let store_overhead_runs () =
  let patched = Engine.Versions.fixed Engine.Versions.v3_0 in
  let without = ref None and with_ = ref None in
  for _ = 1 to store_overhead_reps do
    let w0 = incr_verify patched in
    without := best_incr !without w0;
    let dir = fresh_dir () in
    Fun.protect
      ~finally:(fun () -> rm_rf dir)
      (fun () ->
        let w1 = incr_with_store dir (fun st -> incr_verify ~store:st patched) in
        if Sys.getenv_opt "DNSV_BENCH_DEBUG" <> None then
          Printf.eprintf "  rep: without=%.4f with=%.4f ratio=%.3f\n%!"
            w0.ir_wall w1.ir_wall (w1.ir_wall /. w0.ir_wall);
        with_ := best_incr !with_ w1)
  done;
  { so_without = Option.get !without; so_with = Option.get !with_ }

let incremental () =
  rule ();
  print_endline
    "Incremental cross-version re-verification (persistent store)";
  print_newline ();
  let r = incremental_runs () in
  Printf.printf "%-34s %8.3f s   (%d entries persisted)\n"
    "prime (v3.0 buggy, empty store)" r.inc_prime.ir_wall r.inc_entries;
  Printf.printf "%-34s %8.3f s\n" "cold (v3.0 patched, no store)"
    r.inc_cold.ir_wall;
  Printf.printf "%-34s %8.3f s\n" "warm (v3.0 patched, primed store)"
    r.inc_warm.ir_wall;
  let speedup = r.inc_cold.ir_wall /. r.inc_warm.ir_wall in
  let identical = String.equal r.inc_cold.ir_fp r.inc_warm.ir_fp in
  Printf.printf
    "\nwarm speedup %.1fx (gate >= %.0fx), verdict fingerprints identical: \
     %b\n\n"
    speedup incremental_gate identical;
  let so = store_overhead_runs () in
  let ratio = so.so_with.ir_wall /. so.so_without.ir_wall in
  Printf.printf "store bookkeeping overhead %.3fx (gate <= %.2fx)\n\n" ratio
    store_overhead_gate;
  if (not identical) || speedup < incremental_gate then exit 1

let reverify () =
  rule ();
  Printf.printf
    "Re-verification workload: %d passes x %d fixed versions x %d qtypes\n\n"
    reverify_passes
    (List.length (reverify_versions ()))
    (List.length Dnsv.Pipeline.all_qtypes);
  let seed, cached, par = reverify_all () in
  let line name (r : reverify_run) =
    Printf.printf
      "%-22s %8.3f s   speedup %5.2fx   dpllt %4d   cache %d/%d hit/miss   \
       incr/scratch %d/%d\n"
      name r.rv_wall
      (seed.rv_wall /. r.rv_wall)
      r.rv_stats.Smt.Solver.dpllt_iterations
      r.rv_stats.Smt.Solver.cache_hits r.rv_stats.Smt.Solver.cache_misses
      r.rv_stats.Smt.Solver.incremental_checks
      r.rv_stats.Smt.Solver.scratch_checks
  in
  line "seed (no caches)" seed;
  line "cached, sequential" cached;
  line (Printf.sprintf "cached, --jobs %d" reverify_jobs) par;
  let identical =
    String.equal seed.rv_fingerprint cached.rv_fingerprint
    && String.equal cached.rv_fingerprint par.rv_fingerprint
  in
  Printf.printf "\nverdict fingerprints identical across configurations: %b\n\n"
    identical;
  if not identical then exit 1

(* ------------------------------------------------------------------ *)
(* CDCL solver-core gate                                              *)
(* ------------------------------------------------------------------ *)

(* The solver-core headline of this PR: the whole-pipeline verification
   workload (resolution layers + every engine qtype under a tracked
   budget — the probe whose PR 6 run measured
   [cdcl_baseline_pr6_iterations] DPLL(T) iterations) under the legacy
   solver discipline — presolve off and clause learning off, so every
   theory refutation blocks the full assignment and the SAT search
   restarts from scratch — vs. the CDCL defaults: theory conflict
   cores learned as clauses in a persistent solver, presolve pruning,
   and entailed-unit trail seeding. Certificate validation stays on in
   both arms, so every served answer is still checked. Gates: the CDCL
   arm must do >= [cdcl_gate]x fewer dpllt_iterations than the legacy
   arm AND stay at or below half the PR 6 baseline, with byte-identical
   verdict fingerprints between the arms. *)

let cdcl_baseline_pr6_iterations = 1326
let cdcl_gate = 2.0

type cdcl_run = {
  cd_wall : float;
  cd_fp : string;
  cd_stats : Smt.Solver.stats;
  cd_conflicts : int;
  cd_learned : int;
  cd_restarts : int;
  cd_propagations : int;
  cd_pruned : int;
}

let cdcl_run ~legacy () =
  let cfg = Engine.Versions.fixed Engine.Versions.v3_0 in
  let zone = Spec.Fixtures.reference_zone in
  Smt.Solver.set_presolve (not legacy);
  Smt.Solver.set_learning (not legacy);
  Smt.Solver.clear_caches ();
  Dnsv.Pipeline.clear_summary_memo ();
  let s0 = stats_snapshot () in
  let m0 = Trace.Metrics.snapshot () in
  let t0 = Unix.gettimeofday () in
  let v = Dnsv.Pipeline.verify ~budget:(Budget.create ()) cfg zone in
  let wall = Unix.gettimeofday () -. t0 in
  let d = Trace.Metrics.diff (Trace.Metrics.snapshot ()) m0 in
  let stats = Smt.Solver.diff_stats (stats_snapshot ()) s0 in
  Smt.Solver.set_presolve true;
  Smt.Solver.set_learning true;
  {
    cd_wall = wall;
    cd_fp = Dnsv.Pipeline.fingerprint v;
    cd_stats = stats;
    cd_conflicts = Trace.Metrics.get d "solver.conflicts";
    cd_learned = Trace.Metrics.get d "solver.learned_clauses";
    cd_restarts = Trace.Metrics.get d "solver.restarts";
    cd_propagations = Trace.Metrics.get d "solver.propagations";
    cd_pruned = Trace.Metrics.get d "presolve.pruned";
  }

let cdcl_runs () =
  let legacy = cdcl_run ~legacy:true () in
  let cdcl = cdcl_run ~legacy:false () in
  (legacy, cdcl)

let cdcl_gates (legacy : cdcl_run) (cdcl : cdcl_run) =
  let li = legacy.cd_stats.Smt.Solver.dpllt_iterations
  and ci = cdcl.cd_stats.Smt.Solver.dpllt_iterations in
  let ratio = if ci = 0 then infinity else float_of_int li /. float_of_int ci in
  let identical = String.equal legacy.cd_fp cdcl.cd_fp in
  (li, ci, ratio, identical)

let cdcl_reverify () =
  rule ();
  print_endline
    "CDCL solver core: legacy discipline (full-assignment blocking, scratch";
  print_endline
    "re-solves) vs. learned theory cores + presolve, whole-pipeline workload";
  print_newline ();
  let legacy, cdcl = cdcl_runs () in
  let line name (r : cdcl_run) =
    Printf.printf
      "%-26s %8.3f s   dpllt %5d   conflicts %5d   learned %5d   pruned %4d\n"
      name r.cd_wall r.cd_stats.Smt.Solver.dpllt_iterations r.cd_conflicts
      r.cd_learned r.cd_pruned
  in
  line "legacy discipline" legacy;
  line "cdcl + presolve" cdcl;
  let li, ci, ratio, identical = cdcl_gates legacy cdcl in
  Printf.printf
    "\ndpllt_iterations %d -> %d: %.2fx fewer (gate >= %.0fx; PR 6 baseline \
     %d), fingerprints identical: %b\n\n"
    li ci ratio cdcl_gate cdcl_baseline_pr6_iterations identical;
  if
    (not identical) || ratio < cdcl_gate
    || 2 * ci > cdcl_baseline_pr6_iterations
  then exit 1

(* ------------------------------------------------------------------ *)
(* JSON budget-consumption report                                     *)
(* ------------------------------------------------------------------ *)

(* Hand-rolled JSON (no JSON library in the dependency set): one
   whole-pipeline verification with a tracked budget, reported as
   per-phase consumption — solver calls, paths, retries, wall time. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""

let json_obj fields =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> json_str k ^ ": " ^ v) fields)
  ^ "}"

let json_of_status = function
  | Budget.Proved -> json_str "proved"
  | Budget.Refuted _ -> json_str "refuted"
  | Budget.Inconclusive r -> json_str ("inconclusive:" ^ Budget.reason_tag r)

(* Minimum acceptable summarized-vs-inlined speedup (t_inlined /
   t_summarized), as a fraction of the ratio measured on the seed
   commit. The summaries ablation must not silently regress under the
   new solver plumbing. *)
let ablation_seed_speedup = 0.83
let ablation_regression_floor = 0.5

let json_of_stats (s : Smt.Solver.stats) =
  json_obj
    [
      ("checks", string_of_int s.Smt.Solver.checks);
      ("fast_path", string_of_int s.Smt.Solver.fast_path);
      ("dpllt_iterations", string_of_int s.Smt.Solver.dpllt_iterations);
      ("unknowns", string_of_int s.Smt.Solver.unknowns);
      ("cache_hits", string_of_int s.Smt.Solver.cache_hits);
      ("cache_misses", string_of_int s.Smt.Solver.cache_misses);
      ("incremental_checks", string_of_int s.Smt.Solver.incremental_checks);
      ("scratch_checks", string_of_int s.Smt.Solver.scratch_checks);
      ("cert_checks", string_of_int s.Smt.Solver.cert_checks);
      ("cert_failures", string_of_int s.Smt.Solver.cert_failures);
    ]

let json_of_reverify (r : reverify_run) =
  json_obj
    [
      ("wall_s", Printf.sprintf "%.4f" r.rv_wall);
      ( "worker_walls_s",
        "["
        ^ String.concat ", "
            (List.map (Printf.sprintf "%.4f") r.rv_worker_walls)
        ^ "]" );
      ("solver", json_of_stats r.rv_stats);
    ]

(* Timed Table-2 run (all witness bugs re-found) — the before/after
   probe for the solver-cache plumbing. *)
let timed_table2 () =
  let t0 = Unix.gettimeofday () in
  let r = Dnsv.Table2.run () in
  (Unix.gettimeofday () -. t0, List.length r.Dnsv.Table2.rows)

let timed_ablation () =
  let cfg = Engine.Versions.fixed Engine.Versions.v3_0 in
  let zone = Spec.Fixtures.reference_zone in
  let measure mode =
    let t0 = Unix.gettimeofday () in
    let store = Symex.Summary.create_store () in
    let reports =
      List.map
        (fun qtype -> Refine.Check.check_version ~mode ~store cfg zone ~qtype)
        [ Dns.Rr.A; Dns.Rr.MX; Dns.Rr.NS ]
    in
    (Unix.gettimeofday () -. t0, List.for_all Refine.Check.ok reports)
  in
  let t_sum, ok_sum = measure Refine.Check.With_summaries in
  let t_inl, ok_inl = measure Refine.Check.Inline_all in
  (t_sum, t_inl, ok_sum && ok_inl)

(* ------------------------------------------------------------------ *)
(* Chaos soak                                                         *)
(* ------------------------------------------------------------------ *)

let chaos_seed = 1
let chaos_plans = 200

let timed_chaos () =
  let t0 = Unix.gettimeofday () in
  let o = Dnsv.Chaos.run ~seed:chaos_seed ~plans:chaos_plans () in
  (Unix.gettimeofday () -. t0, o)

let chaos () =
  rule ();
  Printf.printf "Chaos soak: %d seeded fault plans (seed %d)\n\n" chaos_plans
    chaos_seed;
  let wall, o = timed_chaos () in
  Format.printf "%a@." Dnsv.Chaos.pp o;
  Printf.printf "\nwall %.1f s\n\n" wall;
  if not (Dnsv.Chaos.ok o) then exit 1

(* ------------------------------------------------------------------ *)
(* Wire-path probe: in-process serve throughput plus the 0-crash gate *)
(* ------------------------------------------------------------------ *)

(* Two loadgen legs through Serve.handle (no sockets, so the numbers
   measure the codec + engine, not the kernel): an all-valid leg that
   must answer every query, and a 40%-malformed leg whose gates are
   crash gates — zero exceptions escaping the serve loop and zero
   decoder catch-all (barrier) firings. QPS is recorded, not gated:
   it is an observability number, the soundness story is the zeros. *)

let wire_queries = 400
let wire_seed = 0xD15
let wire_malformed_pct = 40

type wire_probe = {
  wp_valid : Dnsv.Loadgen.result;
  wp_malformed : Dnsv.Loadgen.result;
  wp_escaped : int; (* exceptions escaping Serve.handle — must be 0 *)
  wp_barrier : int; (* Wire decoder catch-all firings — must be 0 *)
}

let wire_probe () =
  Faultinject.reset ();
  let s =
    Dnsv.Serve.create
      ~config:(Engine.Versions.fixed Engine.Versions.v3_0)
      Spec.Fixtures.reference_zone
  in
  let barrier0 = Wire.barrier_hits () in
  let escaped = ref 0 in
  let transport d =
    try Dnsv.Loadgen.inproc s d
    with _ ->
      incr escaped;
      None
  in
  let leg malformed_pct =
    Dnsv.Loadgen.run ~zone:Spec.Fixtures.reference_zone transport
      { Dnsv.Loadgen.queries = wire_queries; malformed_pct; seed = wire_seed }
  in
  let valid = leg 0 in
  let malformed = leg wire_malformed_pct in
  {
    wp_valid = valid;
    wp_malformed = malformed;
    wp_escaped = !escaped;
    wp_barrier = Wire.barrier_hits () - barrier0;
  }

let wire_probe_ok wp =
  Dnsv.Loadgen.all_answered wp.wp_valid
  && wp.wp_escaped = 0 && wp.wp_barrier = 0
  && wp.wp_malformed.Dnsv.Loadgen.lg_timeouts = 0

let json_of_loadgen (r : Dnsv.Loadgen.result) =
  json_obj
    [
      ("sent", string_of_int r.Dnsv.Loadgen.lg_sent);
      ("malformed", string_of_int r.Dnsv.Loadgen.lg_malformed);
      ("answered", string_of_int r.Dnsv.Loadgen.lg_answered);
      ("undecodable", string_of_int r.Dnsv.Loadgen.lg_undecodable);
      ("timeouts", string_of_int r.Dnsv.Loadgen.lg_timeouts);
      ("qps", Printf.sprintf "%.0f" r.Dnsv.Loadgen.lg_qps);
      ("p50_ms", Printf.sprintf "%.3f" r.Dnsv.Loadgen.lg_p50_ms);
      ("p99_ms", Printf.sprintf "%.3f" r.Dnsv.Loadgen.lg_p99_ms);
    ]

let json_of_wire wp =
  json_obj
    [
      ("queries_per_leg", string_of_int wire_queries);
      ("malformed_pct", string_of_int wire_malformed_pct);
      ("valid", json_of_loadgen wp.wp_valid);
      ("malformed", json_of_loadgen wp.wp_malformed);
      ("escaped_exceptions", string_of_int wp.wp_escaped);
      ("barrier_hits", string_of_int wp.wp_barrier);
      ("ok", string_of_bool (wire_probe_ok wp));
    ]

let wire_qps () =
  rule ();
  Printf.printf
    "Wire path: %d in-process queries per leg (seed %#x, %d%% malformed leg)\n\n"
    wire_queries wire_seed wire_malformed_pct;
  let wp = wire_probe () in
  Format.printf "valid:     %a@." Dnsv.Loadgen.pp wp.wp_valid;
  Format.printf "malformed: %a@." Dnsv.Loadgen.pp wp.wp_malformed;
  Printf.printf "escaped exceptions %d, decoder barrier hits %d\n\n"
    wp.wp_escaped wp.wp_barrier;
  if not (wire_probe_ok wp) then exit 1

(* ------------------------------------------------------------------ *)
(* Observability overhead: all-ON serving must cost <= 1.05x all-OFF  *)
(* ------------------------------------------------------------------ *)

(* Three in-process serving arms over one precomputed datagram
   sequence. OFF: no sink attached. ON: sampled query log at the
   default 10% rate, rolling SLO windows, and a bound stats endpoint
   taking real UDP scrape round-trips mid-leg. FAULT: 100% sampling
   with Obsv_sink_fail armed persistently, so every append is
   suppressed. OFF and ON interleave rep-for-rep (best-of-[obs_reps])
   to keep machine drift out of the ratio; p99 is exact — sorted raw
   latencies, not the power-of-two trace buckets, whose factor-of-two
   quantization would make a 1.05x gate meaningless. All three reply
   streams must fingerprint byte-identically: observability reads the
   answer path, it never writes it — even when the sink is failing. *)

let obs_queries = 1200
let obs_seed = 0x0B51
let obs_malformed_pct = 10
let obs_overhead_gate = 1.05
let obs_reps = 7

let obs_datagrams =
  lazy
    (Array.init obs_queries (fun i ->
         snd
           (Dnsv.Loadgen.datagram ~zone:Spec.Fixtures.reference_zone
              {
                Dnsv.Loadgen.queries = obs_queries;
                malformed_pct = obs_malformed_pct;
                seed = obs_seed;
              }
              i)))

type obs_arm = {
  mutable oa_wall : float; (* best-of wall seconds *)
  mutable oa_p99_ms : float; (* best-of exact p99 *)
  mutable oa_fp : string; (* reply-stream digest, stable across reps *)
}

type obs_ctx = {
  oc_s : Dnsv.Serve.server;
  oc_ep : Obsv.Endpoint.t option;
  oc_qlog : Obsv.Qlog.t option;
  oc_qpath : string option;
  oc_arm : obs_arm;
}

let obs_ctx ~obs ~rate_pct () =
  let s =
    Dnsv.Serve.create
      ~config:(Engine.Versions.fixed Engine.Versions.v3_0)
      Spec.Fixtures.reference_zone
  in
  let ep, qlog, qpath =
    if obs then begin
      let qpath = Filename.temp_file "dnsv-bench" ".qlog" in
      let qlog = Obsv.Qlog.create ~path:qpath ~seed:obs_seed ~rate_pct () in
      let windows = Obsv.Windows.create ~window_s:0.05 ~windows:60 () in
      Dnsv.Serve.attach_obsv s (Obsv.sink ~qlog ~windows ());
      (Some (Obsv.Endpoint.create ()), Some qlog, Some qpath)
    end
    else (None, None, None)
  in
  {
    oc_s = s;
    oc_ep = ep;
    oc_qlog = qlog;
    oc_qpath = qpath;
    oc_arm = { oa_wall = infinity; oa_p99_ms = infinity; oa_fp = "" };
  }

(* One real scrape round-trip through the endpoint's UDP socket. *)
let obs_scrape ep s =
  let c = Unix.socket PF_INET SOCK_DGRAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close c with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect c
        (ADDR_INET (Unix.inet_addr_loopback, Obsv.Endpoint.port ep));
      ignore (Unix.send c (Bytes.of_string "stats") 0 5 []);
      ignore
        (Obsv.Endpoint.serve_request ep ~respond:(Dnsv.Serve.exposition s));
      match Unix.select [ c ] [] [] 1.0 with
      | [], _, _ -> ()
      | _ ->
          let b = Bytes.create 65536 in
          ignore (Unix.recv c b 0 (Bytes.length b) []))

let obs_rep (c : obs_ctx) =
  let dgs = Lazy.force obs_datagrams in
  let lat = Array.make obs_queries 0.0 in
  let buf = Buffer.create (obs_queries * 64) in
  let t0 = Unix.gettimeofday () in
  Array.iteri
    (fun i d ->
      (match c.oc_ep with
      | Some ep when i > 0 && i mod 400 = 0 -> obs_scrape ep c.oc_s
      | _ -> ());
      let q0 = Unix.gettimeofday () in
      let out = Dnsv.Serve.handle c.oc_s d in
      lat.(i) <- (Unix.gettimeofday () -. q0) *. 1000.0;
      match out.Dnsv.Serve.reply with
      | Some r -> Buffer.add_string buf r
      | None -> Buffer.add_char buf '\000')
    dgs;
  let wall = Unix.gettimeofday () -. t0 in
  Array.sort compare lat;
  let p99 = lat.(obs_queries - 1 - (obs_queries / 100)) in
  let a = c.oc_arm in
  if wall < a.oa_wall then a.oa_wall <- wall;
  if p99 < a.oa_p99_ms then a.oa_p99_ms <- p99;
  let d = Digest.to_hex (Digest.string (Buffer.contents buf)) in
  if a.oa_fp = "" then a.oa_fp <- d
  else if not (String.equal a.oa_fp d) then a.oa_fp <- "UNSTABLE:" ^ d

let obs_ctx_close (c : obs_ctx) =
  (match c.oc_qlog with Some q -> Obsv.Qlog.close q | None -> ());
  (match c.oc_qpath with
  | Some p -> ( try Sys.remove p with Sys_error _ -> ())
  | None -> ());
  match c.oc_ep with Some ep -> Obsv.Endpoint.close ep | None -> ()

type obs_probe = {
  op_off : obs_arm;
  op_on : obs_arm;
  op_fault : obs_arm;
  op_on_sampled : int;
  op_on_scrapes : int;
  op_fault_sink_failures : int;
}

let obs_runs () =
  Faultinject.reset ();
  let off = obs_ctx ~obs:false ~rate_pct:10 () in
  let on = obs_ctx ~obs:true ~rate_pct:10 () in
  let snap0 = Trace.Metrics.snapshot () in
  for _ = 1 to obs_reps do
    obs_rep off;
    obs_rep on
  done;
  let snap1 = Trace.Metrics.snapshot () in
  let flt = obs_ctx ~obs:true ~rate_pct:100 () in
  Faultinject.arm ~persistent:true ~after:1 Faultinject.Obsv_sink_fail;
  obs_rep flt;
  obs_rep flt;
  Faultinject.reset ();
  let snap2 = Trace.Metrics.snapshot () in
  let on_d = Trace.Metrics.diff snap1 snap0 in
  let flt_d = Trace.Metrics.diff snap2 snap1 in
  obs_ctx_close off;
  obs_ctx_close on;
  obs_ctx_close flt;
  {
    op_off = off.oc_arm;
    op_on = on.oc_arm;
    op_fault = flt.oc_arm;
    op_on_sampled = Trace.Metrics.get on_d "obsv.sampled";
    op_on_scrapes = Trace.Metrics.get on_d "obsv.scrapes";
    op_fault_sink_failures = Trace.Metrics.get flt_d "obsv.sink_failures";
  }

let obs_gates (p : obs_probe) =
  let wall_ratio = p.op_on.oa_wall /. p.op_off.oa_wall in
  let p99_ratio =
    if p.op_off.oa_p99_ms > 0.0 then p.op_on.oa_p99_ms /. p.op_off.oa_p99_ms
    else 1.0
  in
  let identical =
    String.equal p.op_off.oa_fp p.op_on.oa_fp
    && String.equal p.op_on.oa_fp p.op_fault.oa_fp
  in
  (wall_ratio, p99_ratio, identical)

let obs_probe_ok p =
  let wall_ratio, p99_ratio, identical = obs_gates p in
  identical
  && wall_ratio <= obs_overhead_gate
  && p99_ratio <= obs_overhead_gate
  && p.op_on_sampled > 0 && p.op_on_scrapes > 0
  && p.op_fault_sink_failures > 0

let json_of_obs_arm (a : obs_arm) =
  json_obj
    [
      ("wall_s", Printf.sprintf "%.4f" a.oa_wall);
      ("qps", Printf.sprintf "%.0f" (float_of_int obs_queries /. a.oa_wall));
      ("p99_ms", Printf.sprintf "%.4f" a.oa_p99_ms);
      ("fingerprint", json_str a.oa_fp);
    ]

let json_of_obs (p : obs_probe) =
  let wall_ratio, p99_ratio, identical = obs_gates p in
  json_obj
    [
      ("queries_per_rep", string_of_int obs_queries);
      ("reps", string_of_int obs_reps);
      ("malformed_pct", string_of_int obs_malformed_pct);
      ("off", json_of_obs_arm p.op_off);
      ("on", json_of_obs_arm p.op_on);
      ("sink_fail", json_of_obs_arm p.op_fault);
      ("overhead_ratio", Printf.sprintf "%.3f" wall_ratio);
      ("p99_ratio", Printf.sprintf "%.3f" p99_ratio);
      ("gate", Printf.sprintf "%.2f" obs_overhead_gate);
      ("on_sampled", string_of_int p.op_on_sampled);
      ("on_scrapes", string_of_int p.op_on_scrapes);
      ("fault_sink_failures", string_of_int p.op_fault_sink_failures);
      ("fingerprints_identical", string_of_bool identical);
      ("ok", string_of_bool (obs_probe_ok p));
    ]

let obs_overhead () =
  rule ();
  Printf.printf
    "Observability overhead: %d in-process queries per rep (seed %#x, %d%% \
     malformed), best of %d interleaved reps\n\n"
    obs_queries obs_seed obs_malformed_pct obs_reps;
  let p = obs_runs () in
  let wall_ratio, p99_ratio, identical = obs_gates p in
  Printf.printf "all-OFF:   %.4fs wall, exact p99 %.4fms, fp %s\n"
    p.op_off.oa_wall p.op_off.oa_p99_ms p.op_off.oa_fp;
  Printf.printf "all-ON:    %.4fs wall, exact p99 %.4fms, fp %s\n"
    p.op_on.oa_wall p.op_on.oa_p99_ms p.op_on.oa_fp;
  Printf.printf "sink-fail: %.4fs wall, exact p99 %.4fms, fp %s\n"
    p.op_fault.oa_wall p.op_fault.oa_p99_ms p.op_fault.oa_fp;
  Printf.printf
    "\noverhead %.3fx wall, %.3fx p99 (gate <= %.2fx); %d sampled, %d \
     scrapes; %d suppressed appends under Obsv_sink_fail; fingerprints \
     identical: %b\n\n"
    wall_ratio p99_ratio obs_overhead_gate p.op_on_sampled p.op_on_scrapes
    p.op_fault_sink_failures identical;
  if not (obs_probe_ok p) then exit 1

let json_of_chaos wall (o : Dnsv.Chaos.outcome) =
  json_obj
    [
      ("seed", string_of_int chaos_seed);
      ("plans", string_of_int o.Dnsv.Chaos.plans);
      ("verify_runs", string_of_int o.Dnsv.Chaos.verify_runs);
      ("torn_runs", string_of_int o.Dnsv.Chaos.torn_runs);
      ("store_runs", string_of_int o.Dnsv.Chaos.store_runs);
      ( "truncated_store_runs",
        string_of_int o.Dnsv.Chaos.truncated_store_runs );
      ("wire_runs", string_of_int o.Dnsv.Chaos.wire_runs);
      ("fired", string_of_int o.Dnsv.Chaos.fired);
      ("survived", string_of_int o.Dnsv.Chaos.survived);
      ("degraded", string_of_int o.Dnsv.Chaos.degraded);
      ("resumed_identical", string_of_int o.Dnsv.Chaos.resumed_identical);
      ( "store_resumed_identical",
        string_of_int o.Dnsv.Chaos.store_resumed_identical );
      ( "violations",
        "["
        ^ String.concat ", "
            (List.map json_str o.Dnsv.Chaos.violations)
        ^ "]" );
      ("ok", string_of_bool (Dnsv.Chaos.ok o));
      ("wall_s", Printf.sprintf "%.2f" wall);
    ]

let json () =
  let cfg = Engine.Versions.fixed Engine.Versions.v3_0 in
  let zone = Spec.Fixtures.reference_zone in
  let budget = Budget.create () in
  let stats0 = stats_snapshot () in
  let t0 = Unix.gettimeofday () in
  let v = Dnsv.Pipeline.verify ~budget cfg zone in
  let wall = Unix.gettimeofday () -. t0 in
  let pipeline_stats = Smt.Solver.diff_stats (stats_snapshot ()) stats0 in
  let layer_phase (r : Refine.Layers.layer_report) =
    json_obj
      [
        ("phase", json_str ("layer:" ^ r.Refine.Layers.layer));
        ("paths", string_of_int r.Refine.Layers.code_paths);
        ("pairs", string_of_int r.Refine.Layers.pairs);
        ("unknowns", string_of_int r.Refine.Layers.unknowns);
        ( "status",
          match r.Refine.Layers.inconclusive with
          | Some reason -> json_str ("inconclusive:" ^ Budget.reason_tag reason)
          | None -> json_str (if Refine.Layers.layer_ok r then "ok" else "mismatch") );
        ("wall_s", Printf.sprintf "%.4f" r.Refine.Layers.elapsed);
      ]
  in
  let engine_phase (r : Refine.Check.report) =
    json_obj
      [
        ( "phase",
          json_str ("engine:" ^ Refine.Check.Rr.rtype_to_string r.Refine.Check.qtype) );
        ("solver_calls", string_of_int r.Refine.Check.solver_calls);
        ("paths", string_of_int r.Refine.Check.engine_paths);
        ("unknowns", string_of_int r.Refine.Check.unknowns);
        ( "summary_fallback",
          string_of_bool r.Refine.Check.summary_fallback );
        ("status", json_of_status (Refine.Check.status r));
        ("wall_s", Printf.sprintf "%.4f" r.Refine.Check.elapsed);
      ]
  in
  let phases =
    List.map layer_phase v.Dnsv.Pipeline.layer_reports
    @ List.map engine_phase v.Dnsv.Pipeline.reports
  in
  let c = Budget.consumption budget in
  let pipeline_json =
    json_obj
      [
        ("engine", json_str v.Dnsv.Pipeline.version);
        ("zone_origin", json_str v.Dnsv.Pipeline.zone_origin);
        ("status", json_of_status (Dnsv.Pipeline.status v));
        ("wall_s", Printf.sprintf "%.4f" wall);
        ("retries", string_of_int v.Dnsv.Pipeline.retries);
        ("solver", json_of_stats pipeline_stats);
        ( "budget",
          json_obj
            [
              ("solver_steps_used", string_of_int c.Budget.solver_steps_used);
              ("paths_used", string_of_int c.Budget.paths_used);
              ("fuel_used", string_of_int c.Budget.fuel_used);
              ("retries_used", string_of_int c.Budget.retries_used);
            ] );
        ("phases", "[" ^ String.concat ", " phases ^ "]");
      ]
  in
  (* Before/after probes: Table 2 with the result caches disabled
     (seed-equivalent solver) vs. enabled, then the re-verification
     workload, then the summaries ablation with its regression gate. *)
  Smt.Solver.set_caching false;
  Smt.Solver.clear_caches ();
  let t2_before, t2_rows = timed_table2 () in
  Smt.Solver.set_caching true;
  Smt.Solver.clear_caches ();
  let t2_after, _ = timed_table2 () in
  let seed, cached, par = reverify_all () in
  let verdicts_identical =
    String.equal seed.rv_fingerprint cached.rv_fingerprint
    && String.equal cached.rv_fingerprint par.rv_fingerprint
  in
  let speedup_cached = seed.rv_wall /. cached.rv_wall in
  let speedup_parallel = seed.rv_wall /. par.rv_wall in
  let abl_sum, abl_inl, abl_ok = timed_ablation () in
  let abl_speedup = abl_inl /. abl_sum in
  let abl_floor = ablation_regression_floor *. ablation_seed_speedup in
  let co_off, co_on = cert_overhead_runs () in
  let co_ratio = co_on.rv_wall /. co_off.rv_wall in
  let co_identical = String.equal co_off.rv_fingerprint co_on.rv_fingerprint in
  let to_off, to_on, to_spans = trace_overhead_runs () in
  let to_ratio = to_on.rv_wall /. to_off.rv_wall in
  let to_identical =
    String.equal to_off.rv_fingerprint to_on.rv_fingerprint
  in
  let ao = analysis_overhead_runs () in
  let ao_ratio = ao.ao_distrust.rv_wall /. ao.ao_off.rv_wall in
  let ao_speedup = ao.ao_off.rv_wall /. ao.ao_trust.rv_wall in
  let ao_identical =
    String.equal ao.ao_off.rv_fingerprint ao.ao_distrust.rv_fingerprint
    && String.equal ao.ao_distrust.rv_fingerprint ao.ao_trust.rv_fingerprint
  in
  let ao_fraction =
    if ao.ao_panic_checks = 0 then 0.
    else float_of_int ao.ao_panic_discharged /. float_of_int ao.ao_panic_checks
  in
  let inc = incremental_runs () in
  let inc_speedup = inc.inc_cold.ir_wall /. inc.inc_warm.ir_wall in
  let inc_identical = String.equal inc.inc_cold.ir_fp inc.inc_warm.ir_fp in
  let so = store_overhead_runs () in
  let so_ratio = so.so_with.ir_wall /. so.so_without.ir_wall in
  let cd_legacy, cd_cdcl = cdcl_runs () in
  let cd_li, cd_ci, cd_ratio, cd_identical = cdcl_gates cd_legacy cd_cdcl in
  let wp = wire_probe () in
  let op = obs_runs () in
  let op_wall_ratio, op_p99_ratio, op_identical = obs_gates op in
  let chaos_wall, chaos_o = timed_chaos () in
  print_endline
    (json_obj
       [
         ("pipeline", pipeline_json);
         ( "table2",
           json_obj
             [
               ("rows", string_of_int t2_rows);
               ("before_wall_s", Printf.sprintf "%.4f" t2_before);
               ("after_wall_s", Printf.sprintf "%.4f" t2_after);
               ("speedup", Printf.sprintf "%.3f" (t2_before /. t2_after));
             ] );
         ( "reverify",
           json_obj
             [
               ("passes", string_of_int reverify_passes);
               ( "versions",
                 string_of_int (List.length (reverify_versions ())) );
               ("jobs", string_of_int reverify_jobs);
               ("seed", json_of_reverify seed);
               ("cached_sequential", json_of_reverify cached);
               ("cached_parallel", json_of_reverify par);
               ("speedup_cached", Printf.sprintf "%.3f" speedup_cached);
               ("speedup_parallel", Printf.sprintf "%.3f" speedup_parallel);
               ("verdicts_identical", string_of_bool verdicts_identical);
             ] );
         ( "ablation",
           json_obj
             [
               ("summarized_wall_s", Printf.sprintf "%.4f" abl_sum);
               ("inlined_wall_s", Printf.sprintf "%.4f" abl_inl);
               ("speedup_summarized", Printf.sprintf "%.3f" abl_speedup);
               ( "seed_speedup",
                 Printf.sprintf "%.3f" ablation_seed_speedup );
               ("regression_floor", Printf.sprintf "%.3f" abl_floor);
               ("clean", string_of_bool abl_ok);
             ] );
         ( "cert_overhead",
           json_obj
             [
               ("off_wall_s", Printf.sprintf "%.4f" co_off.rv_wall);
               ("on_wall_s", Printf.sprintf "%.4f" co_on.rv_wall);
               ("overhead_ratio", Printf.sprintf "%.3f" co_ratio);
               ("gate", Printf.sprintf "%.2f" cert_overhead_gate);
               ( "cert_checks",
                 string_of_int co_on.rv_stats.Smt.Solver.cert_checks );
               ("verdicts_identical", string_of_bool co_identical);
             ] );
         ( "trace_overhead",
           json_obj
             [
               ("untraced_wall_s", Printf.sprintf "%.4f" to_off.rv_wall);
               ("traced_wall_s", Printf.sprintf "%.4f" to_on.rv_wall);
               ("overhead_ratio", Printf.sprintf "%.3f" to_ratio);
               ("gate", Printf.sprintf "%.2f" trace_overhead_gate);
               ("spans", string_of_int to_spans);
               ("verdicts_identical", string_of_bool to_identical);
             ] );
         ( "analysis_overhead",
           json_obj
             [
               ("off_wall_s", Printf.sprintf "%.4f" ao.ao_off.rv_wall);
               ( "distrust_wall_s",
                 Printf.sprintf "%.4f" ao.ao_distrust.rv_wall );
               ("trust_wall_s", Printf.sprintf "%.4f" ao.ao_trust.rv_wall);
               ("overhead_ratio", Printf.sprintf "%.3f" ao_ratio);
               ("gate", Printf.sprintf "%.2f" analysis_overhead_gate);
               ("trust_speedup", Printf.sprintf "%.3f" ao_speedup);
               ("panic_checks", string_of_int ao.ao_panic_checks);
               ("panic_discharged", string_of_int ao.ao_panic_discharged);
               ("static_discharged", string_of_int ao.ao_static_discharged);
               ("discharged_fraction", Printf.sprintf "%.3f" ao_fraction);
               ("verdicts_identical", string_of_bool ao_identical);
             ] );
         ( "interproc_discharge",
           json_obj
             [
               ("panic_checks", string_of_int ao.ao_panic_checks);
               ("panic_discharged", string_of_int ao.ao_panic_discharged);
               ("discharged_fraction", Printf.sprintf "%.3f" ao_fraction);
               ("gate", Printf.sprintf "%.2f" interproc_discharge_gate);
               ("ip_discharged", string_of_int ao.ao_ip_discharged);
               ( "ip_crosschecked",
                 string_of_int ao.ao_ip_crosschecked );
               ( "ip_crosscheck_mismatches",
                 string_of_int ao.ao_ip_mismatches );
               ( "distrust_overhead_ratio",
                 Printf.sprintf "%.3f" ao_ratio );
               ( "distrust_overhead_gate",
                 Printf.sprintf "%.2f" analysis_overhead_gate );
               ("verdicts_identical", string_of_bool ao_identical);
             ] );
         ( "incremental_reverify",
           json_obj
             [
               ("prime_wall_s", Printf.sprintf "%.4f" inc.inc_prime.ir_wall);
               ("cold_wall_s", Printf.sprintf "%.4f" inc.inc_cold.ir_wall);
               ("warm_wall_s", Printf.sprintf "%.4f" inc.inc_warm.ir_wall);
               ("speedup", Printf.sprintf "%.3f" inc_speedup);
               ("gate", Printf.sprintf "%.1f" incremental_gate);
               ("store_entries", string_of_int inc.inc_entries);
               ("fingerprints_identical", string_of_bool inc_identical);
             ] );
         ( "store_overhead",
           json_obj
             [
               ("no_store_wall_s", Printf.sprintf "%.4f" so.so_without.ir_wall);
               ("with_store_wall_s", Printf.sprintf "%.4f" so.so_with.ir_wall);
               ("overhead_ratio", Printf.sprintf "%.3f" so_ratio);
               ("gate", Printf.sprintf "%.2f" store_overhead_gate);
             ] );
         ( "cdcl_reverify",
           json_obj
             [
               ("legacy_wall_s", Printf.sprintf "%.4f" cd_legacy.cd_wall);
               ("cdcl_wall_s", Printf.sprintf "%.4f" cd_cdcl.cd_wall);
               ("iterations_legacy", string_of_int cd_li);
               ("iterations_cdcl", string_of_int cd_ci);
               ("iteration_ratio", Printf.sprintf "%.3f" cd_ratio);
               ("gate", Printf.sprintf "%.1f" cdcl_gate);
               ( "baseline_pr6_iterations",
                 string_of_int cdcl_baseline_pr6_iterations );
               ("conflicts", string_of_int cd_cdcl.cd_conflicts);
               ("learned_clauses", string_of_int cd_cdcl.cd_learned);
               ("restarts", string_of_int cd_cdcl.cd_restarts);
               ("propagations", string_of_int cd_cdcl.cd_propagations);
               ("presolve_pruned", string_of_int cd_cdcl.cd_pruned);
               ( "cert_checks",
                 string_of_int cd_cdcl.cd_stats.Smt.Solver.cert_checks );
               ("fingerprints_identical", string_of_bool cd_identical);
             ] );
         ("wire", json_of_wire wp);
         ("obs_overhead", json_of_obs op);
         ("chaos", json_of_chaos chaos_wall chaos_o);
       ]);
  if not verdicts_identical then begin
    prerr_endline
      "FAIL: parallel/cached verdict fingerprints differ from sequential";
    exit 1
  end;
  if abl_speedup < abl_floor then begin
    Printf.eprintf
      "FAIL: summaries ablation regressed: speedup %.3f < floor %.3f (seed \
       %.3f)\n"
      abl_speedup abl_floor ablation_seed_speedup;
    exit 1
  end;
  if not co_identical then begin
    prerr_endline
      "FAIL: certified and uncertified re-verification fingerprints differ";
    exit 1
  end;
  if co_ratio > cert_overhead_gate then begin
    Printf.eprintf
      "FAIL: certificate checking overhead %.3fx exceeds the %.2fx gate\n"
      co_ratio cert_overhead_gate;
    exit 1
  end;
  if not to_identical then begin
    prerr_endline
      "FAIL: traced and untraced re-verification fingerprints differ";
    exit 1
  end;
  if to_ratio > trace_overhead_gate then begin
    Printf.eprintf
      "FAIL: tracing overhead %.3fx exceeds the %.2fx gate\n" to_ratio
      trace_overhead_gate;
    exit 1
  end;
  if not ao_identical then begin
    prerr_endline
      "FAIL: analysis-enabled re-verification fingerprints differ from \
       no-analysis";
    exit 1
  end;
  if ao_ratio > analysis_overhead_gate then begin
    Printf.eprintf
      "FAIL: static-analysis overhead %.3fx exceeds the %.2fx gate\n" ao_ratio
      analysis_overhead_gate;
    exit 1
  end;
  if
    ao.ao_panic_checks = 0
    || float_of_int ao.ao_panic_discharged
       < interproc_discharge_gate *. float_of_int ao.ao_panic_checks
  then begin
    Printf.eprintf
      "FAIL: only %d/%d panic checks statically discharged (< %.0f%%)\n"
      ao.ao_panic_discharged ao.ao_panic_checks
      (100. *. interproc_discharge_gate);
    exit 1
  end;
  if ao.ao_ip_mismatches > 0 then begin
    Printf.eprintf
      "FAIL: Distrust refuted %d/%d interprocedural claims\n"
      ao.ao_ip_mismatches ao.ao_ip_crosschecked;
    exit 1
  end;
  if not inc_identical then begin
    prerr_endline
      "FAIL: warm (store-served) verdict fingerprint differs from cold";
    exit 1
  end;
  if inc_speedup < incremental_gate then begin
    Printf.eprintf
      "FAIL: incremental re-verification speedup %.2fx below the %.0fx gate\n"
      inc_speedup incremental_gate;
    exit 1
  end;
  if so_ratio > store_overhead_gate then begin
    Printf.eprintf
      "FAIL: store bookkeeping overhead %.3fx exceeds the %.2fx gate\n"
      so_ratio store_overhead_gate;
    exit 1
  end;
  if not cd_identical then begin
    prerr_endline
      "FAIL: CDCL and legacy-discipline verdict fingerprints differ";
    exit 1
  end;
  if cd_ratio < cdcl_gate then begin
    Printf.eprintf
      "FAIL: CDCL dpllt_iterations reduction %.2fx below the %.0fx gate (%d \
       -> %d)\n"
      cd_ratio cdcl_gate cd_li cd_ci;
    exit 1
  end;
  if 2 * cd_ci > cdcl_baseline_pr6_iterations then begin
    Printf.eprintf
      "FAIL: CDCL arm's %d dpllt_iterations exceeds half the PR 6 baseline \
       (%d)\n"
      cd_ci cdcl_baseline_pr6_iterations;
    exit 1
  end;
  if not (wire_probe_ok wp) then begin
    Printf.eprintf
      "FAIL: wire probe: valid leg %d/%d answered, %d escaped exceptions, %d \
       barrier hits, %d malformed-leg timeouts\n"
      wp.wp_valid.Dnsv.Loadgen.lg_answered wp.wp_valid.Dnsv.Loadgen.lg_sent
      wp.wp_escaped wp.wp_barrier wp.wp_malformed.Dnsv.Loadgen.lg_timeouts;
    exit 1
  end;
  if not op_identical then begin
    prerr_endline
      "FAIL: observability-ON (or sink-fail) reply fingerprints differ from \
       observability-OFF";
    exit 1
  end;
  if op_wall_ratio > obs_overhead_gate || op_p99_ratio > obs_overhead_gate
  then begin
    Printf.eprintf
      "FAIL: observability overhead %.3fx wall / %.3fx p99 exceeds the %.2fx \
       gate\n"
      op_wall_ratio op_p99_ratio obs_overhead_gate;
    exit 1
  end;
  if op.op_fault_sink_failures = 0 then begin
    prerr_endline
      "FAIL: Obsv_sink_fail arm suppressed no appends — the fault site is \
       dead";
    exit 1
  end;
  if not (Dnsv.Chaos.ok chaos_o) then begin
    List.iter
      (fun v -> Printf.eprintf "FAIL: chaos violation: %s\n" v)
      chaos_o.Dnsv.Chaos.violations;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (one Test.make per experiment)           *)
(* ------------------------------------------------------------------ *)

let bench_zone = Spec.Fixtures.figure11_zone

let micro_tests () =
  let small_cfg = Engine.Versions.fixed Engine.Versions.v3_0 in
  let enc = lazy (Dnstree.Encode.encode (Dnstree.Tree.build bench_zone)) in
  let prog = lazy (Engine.Versions.compiled small_cfg) in
  [
    (* Table 1 driver: full-path symbolic execution + summarization of
       TreeSearch on the Figure-11 tree. *)
    Test.make ~name:"table1/treesearch-summarization"
      (Staged.stage (fun () -> ignore (Dnsv.Table1.run ())));
    (* Table 2 unit: one buggy-version refinement check (bug 8). *)
    Test.make ~name:"table2/verify-bug8-witness"
      (Staged.stage (fun () ->
           let w = Spec.Fixtures.witness 8 in
           ignore
             (Refine.Check.check_version Engine.Versions.v3_0
                w.Spec.Fixtures.zone ~qtype:Dns.Rr.A)));
    (* Table 3 driver: AST size accounting across versions. *)
    Test.make ~name:"table3/loc-accounting"
      (Staged.stage (fun () -> ignore (Dnsv.Table3.run ())));
    (* Figure 12 unit: one whole-engine refinement run (one qtype). *)
    Test.make ~name:"fig12/check-version-one-qtype"
      (Staged.stage (fun () ->
           ignore
             (Refine.Check.check_version small_cfg bench_zone ~qtype:Dns.Rr.A)));
    (* Substrate costs. *)
    Test.make ~name:"substrate/solver-conjunction"
      (Staged.stage (fun () ->
           let open Smt in
           let x = Term.int_var "x" and y = Term.int_var "y" in
           ignore
             (Solver.check
                [
                  Term.le (Term.int 0) x;
                  Term.le x (Term.int 6);
                  Term.eq y (Term.add [ x; Term.int 3 ]);
                  Term.lt y (Term.int 8);
                ])));
    Test.make ~name:"substrate/engine-concrete-resolve"
      (Staged.stage (fun () ->
           ignore
             (Engine.Versions.run_compiled (Lazy.force prog) (Lazy.force enc)
                (Dns.Message.query
                   (Dns.Name.of_string_exn "web.cs.example.com")
                   Dns.Rr.A))));
    Test.make ~name:"substrate/spec-resolve"
      (Staged.stage (fun () ->
           ignore
             (Spec.Rrlookup.resolve bench_zone
                (Dns.Message.query
                   (Dns.Name.of_string_exn "web.cs.example.com")
                   Dns.Rr.A))));
    Test.make ~name:"substrate/zonegen"
      (Staged.stage (fun () ->
           ignore
             (Dns.Zonegen.generate ~seed:42
                (Dns.Name.of_string_exn "bench.example"))));
  ]

let run_micro () =
  rule ();
  print_endline "Bechamel micro-benchmarks (monotonic clock, time/run)";
  print_newline ();
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let estimates = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Printf.printf "%-42s %14.1f ns/run\n" name t
          | _ -> Printf.printf "%-42s (no estimate)\n" name)
        estimates)
    (micro_tests ());
  print_newline ()

let () =
  let targets =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as rest) -> rest
    | _ -> [ "table1"; "table2"; "table3"; "fig12"; "ablation"; "micro" ]
  in
  List.iter
    (function
      | "table1" -> table1 ()
      | "table2" -> table2 ()
      | "table3" -> table3 ()
      | "fig12" -> fig12 ()
      | "ablation" -> ablation ()
      | "reverify" -> reverify ()
      | "cdclreverify" -> cdcl_reverify ()
      | "certoverhead" -> cert_overhead ()
      | "traceoverhead" -> trace_overhead ()
      | "analysisoverhead" -> analysis_overhead ()
      | "incremental" -> incremental ()
      | "chaos" -> chaos ()
      | "wireqps" -> wire_qps ()
      | "obsoverhead" -> obs_overhead ()
      | "json" -> json ()
      | "micro" -> run_micro ()
      | other ->
          Printf.eprintf
            "unknown target %s (expected \
             table1|table2|table3|fig12|ablation|reverify|cdclreverify|certoverhead|traceoverhead|analysisoverhead|incremental|chaos|wireqps|obsoverhead|json|micro)\n"
            other;
          exit 2)
    targets
