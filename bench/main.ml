(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation (§7) and provides Bechamel micro-benchmarks for
   the core verification operations.

     dune exec bench/main.exe              # all tables + micro-benchmarks
     dune exec bench/main.exe -- table1    # just Table 1
     dune exec bench/main.exe -- table2    # just Table 2
     dune exec bench/main.exe -- table3    # just Table 3
     dune exec bench/main.exe -- fig12     # just Figure 12
     dune exec bench/main.exe -- micro     # just the Bechamel benches
     dune exec bench/main.exe -- ablation  # summaries vs. inlining
     dune exec bench/main.exe -- json      # budget-consumption stats (JSON) *)

open Bechamel
open Toolkit

let rule () = print_endline (String.make 78 '=')

let table1 () =
  rule ();
  Dnsv.Table1.print (Dnsv.Table1.run ());
  print_newline ()

let table2 () =
  rule ();
  Dnsv.Table2.print (Dnsv.Table2.run ());
  print_newline ()

let table3 () =
  rule ();
  Dnsv.Table3.print (Dnsv.Table3.run ());
  print_newline ()

let fig12 () =
  rule ();
  Dnsv.Fig12.print (Dnsv.Fig12.run ());
  print_newline ()

(* Ablation: the summarization design choice (§5.3) — whole-engine
   verification with summaries at resolution layers vs. naive full
   inlining. *)
let ablation () =
  rule ();
  print_endline
    "Ablation: summarized resolution layers vs. full inlining (3 qtypes,";
  print_endline "reference zone, engine v3.0-fixed)";
  print_newline ();
  let cfg = Engine.Versions.fixed Engine.Versions.v3_0 in
  let zone = Spec.Fixtures.reference_zone in
  let measure mode =
    let t0 = Unix.gettimeofday () in
    (* One summary store shared across the query types: summaries are
       reused wherever the calling shape recurs, which is where the
       technique pays off. *)
    let store = Symex.Summary.create_store () in
    let reports =
      List.map
        (fun qtype -> Refine.Check.check_version ~mode ~store cfg zone ~qtype)
        [ Dns.Rr.A; Dns.Rr.MX; Dns.Rr.NS ]
    in
    let ok = List.for_all Refine.Check.ok reports in
    let solver =
      List.fold_left
        (fun a (r : Refine.Check.report) -> a + r.Refine.Check.solver_calls)
        0 reports
    in
    (Unix.gettimeofday () -. t0, ok, solver)
  in
  let t_sum, ok_sum, calls_sum = measure Refine.Check.With_summaries in
  let t_inl, ok_inl, calls_inl = measure Refine.Check.Inline_all in
  Printf.printf "%-18s %10s %8s %14s\n" "mode" "seconds" "clean" "solver calls";
  Printf.printf "%-18s %10.3f %8b %14d\n" "with summaries" t_sum ok_sum
    calls_sum;
  Printf.printf "%-18s %10.3f %8b %14d\n" "full inlining" t_inl ok_inl
    calls_inl;
  Printf.printf
    "\nSummaries amortize re-exploration across call sites; both modes must\n";
  Printf.printf "agree on the verification verdict.\n\n"

(* ------------------------------------------------------------------ *)
(* JSON budget-consumption report                                     *)
(* ------------------------------------------------------------------ *)

(* Hand-rolled JSON (no JSON library in the dependency set): one
   whole-pipeline verification with a tracked budget, reported as
   per-phase consumption — solver calls, paths, retries, wall time. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""

let json_obj fields =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> json_str k ^ ": " ^ v) fields)
  ^ "}"

let json_of_status = function
  | Budget.Proved -> json_str "proved"
  | Budget.Refuted _ -> json_str "refuted"
  | Budget.Inconclusive r -> json_str ("inconclusive:" ^ Budget.reason_tag r)

let json () =
  let cfg = Engine.Versions.fixed Engine.Versions.v3_0 in
  let zone = Spec.Fixtures.reference_zone in
  let budget = Budget.create () in
  let t0 = Unix.gettimeofday () in
  let v = Dnsv.Pipeline.verify ~budget cfg zone in
  let wall = Unix.gettimeofday () -. t0 in
  let layer_phase (r : Refine.Layers.layer_report) =
    json_obj
      [
        ("phase", json_str ("layer:" ^ r.Refine.Layers.layer));
        ("paths", string_of_int r.Refine.Layers.code_paths);
        ("pairs", string_of_int r.Refine.Layers.pairs);
        ("unknowns", string_of_int r.Refine.Layers.unknowns);
        ( "status",
          match r.Refine.Layers.inconclusive with
          | Some reason -> json_str ("inconclusive:" ^ Budget.reason_tag reason)
          | None -> json_str (if Refine.Layers.layer_ok r then "ok" else "mismatch") );
        ("wall_s", Printf.sprintf "%.4f" r.Refine.Layers.elapsed);
      ]
  in
  let engine_phase (r : Refine.Check.report) =
    json_obj
      [
        ( "phase",
          json_str ("engine:" ^ Refine.Check.Rr.rtype_to_string r.Refine.Check.qtype) );
        ("solver_calls", string_of_int r.Refine.Check.solver_calls);
        ("paths", string_of_int r.Refine.Check.engine_paths);
        ("unknowns", string_of_int r.Refine.Check.unknowns);
        ( "summary_fallback",
          string_of_bool r.Refine.Check.summary_fallback );
        ("status", json_of_status (Refine.Check.status r));
        ("wall_s", Printf.sprintf "%.4f" r.Refine.Check.elapsed);
      ]
  in
  let phases =
    List.map layer_phase v.Dnsv.Pipeline.layer_reports
    @ List.map engine_phase v.Dnsv.Pipeline.reports
  in
  let c = Budget.consumption budget in
  print_endline
    (json_obj
       [
         ("engine", json_str v.Dnsv.Pipeline.version);
         ("zone_origin", json_str v.Dnsv.Pipeline.zone_origin);
         ("status", json_of_status (Dnsv.Pipeline.status v));
         ("wall_s", Printf.sprintf "%.4f" wall);
         ("retries", string_of_int v.Dnsv.Pipeline.retries);
         ( "budget",
           json_obj
             [
               ("solver_steps_used", string_of_int c.Budget.solver_steps_used);
               ("paths_used", string_of_int c.Budget.paths_used);
               ("fuel_used", string_of_int c.Budget.fuel_used);
               ("retries_used", string_of_int c.Budget.retries_used);
             ] );
         ("phases", "[" ^ String.concat ", " phases ^ "]");
       ])

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (one Test.make per experiment)           *)
(* ------------------------------------------------------------------ *)

let bench_zone = Spec.Fixtures.figure11_zone

let micro_tests () =
  let small_cfg = Engine.Versions.fixed Engine.Versions.v3_0 in
  let enc = lazy (Dnstree.Encode.encode (Dnstree.Tree.build bench_zone)) in
  let prog = lazy (Engine.Versions.compiled small_cfg) in
  [
    (* Table 1 driver: full-path symbolic execution + summarization of
       TreeSearch on the Figure-11 tree. *)
    Test.make ~name:"table1/treesearch-summarization"
      (Staged.stage (fun () -> ignore (Dnsv.Table1.run ())));
    (* Table 2 unit: one buggy-version refinement check (bug 8). *)
    Test.make ~name:"table2/verify-bug8-witness"
      (Staged.stage (fun () ->
           let w = Spec.Fixtures.witness 8 in
           ignore
             (Refine.Check.check_version Engine.Versions.v3_0
                w.Spec.Fixtures.zone ~qtype:Dns.Rr.A)));
    (* Table 3 driver: AST size accounting across versions. *)
    Test.make ~name:"table3/loc-accounting"
      (Staged.stage (fun () -> ignore (Dnsv.Table3.run ())));
    (* Figure 12 unit: one whole-engine refinement run (one qtype). *)
    Test.make ~name:"fig12/check-version-one-qtype"
      (Staged.stage (fun () ->
           ignore
             (Refine.Check.check_version small_cfg bench_zone ~qtype:Dns.Rr.A)));
    (* Substrate costs. *)
    Test.make ~name:"substrate/solver-conjunction"
      (Staged.stage (fun () ->
           let open Smt in
           let x = Term.int_var "x" and y = Term.int_var "y" in
           ignore
             (Solver.check
                [
                  Term.le (Term.int 0) x;
                  Term.le x (Term.int 6);
                  Term.eq y (Term.add [ x; Term.int 3 ]);
                  Term.lt y (Term.int 8);
                ])));
    Test.make ~name:"substrate/engine-concrete-resolve"
      (Staged.stage (fun () ->
           ignore
             (Engine.Versions.run_compiled (Lazy.force prog) (Lazy.force enc)
                (Dns.Message.query
                   (Dns.Name.of_string_exn "web.cs.example.com")
                   Dns.Rr.A))));
    Test.make ~name:"substrate/spec-resolve"
      (Staged.stage (fun () ->
           ignore
             (Spec.Rrlookup.resolve bench_zone
                (Dns.Message.query
                   (Dns.Name.of_string_exn "web.cs.example.com")
                   Dns.Rr.A))));
    Test.make ~name:"substrate/zonegen"
      (Staged.stage (fun () ->
           ignore
             (Dns.Zonegen.generate ~seed:42
                (Dns.Name.of_string_exn "bench.example"))));
  ]

let run_micro () =
  rule ();
  print_endline "Bechamel micro-benchmarks (monotonic clock, time/run)";
  print_newline ();
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let estimates = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Printf.printf "%-42s %14.1f ns/run\n" name t
          | _ -> Printf.printf "%-42s (no estimate)\n" name)
        estimates)
    (micro_tests ());
  print_newline ()

let () =
  let targets =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as rest) -> rest
    | _ -> [ "table1"; "table2"; "table3"; "fig12"; "ablation"; "micro" ]
  in
  List.iter
    (function
      | "table1" -> table1 ()
      | "table2" -> table2 ()
      | "table3" -> table3 ()
      | "fig12" -> fig12 ()
      | "ablation" -> ablation ()
      | "json" -> json ()
      | "micro" -> run_micro ()
      | other ->
          Printf.eprintf
            "unknown target %s (expected \
             table1|table2|table3|fig12|ablation|json|micro)\n"
            other;
          exit 2)
    targets
