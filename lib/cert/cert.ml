(* The solver-independent certificate checker.

   Certificates (see Smt.Proof) are checked here with deliberately
   little machinery:

   - a model witness is checked by *evaluating* every asserted term
     under the assignment — a total, defaulting evaluator written here,
     not the solver's;
   - an unsat witness (a split tree) is checked by walking the tree,
     tracking the truth context each split introduces, and discharging
     leaves either propositionally (some asserted term constant-folds
     to false) or arithmetically (a Farkas combination: a positive
     linear combination of in-scope ≤-facts, plus freely signed
     =-facts, whose variables cancel and whose constant is strictly
     positive — a manifest contradiction).

   The arithmetic lives on a private rational type with overflow
   checking: an overflow rejects the certificate (fail closed) rather
   than wrapping around into a bogus acceptance. Nothing in this module
   calls into Simplex, Lia, Sat or Solver — that separation is the
   point: the decision procedures that produced the verdict share no
   code with the checker that has to be convinced of it. *)

module Term = Smt.Term
module Model = Smt.Model
module Proof = Smt.Proof

module Tbl = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

exception Reject of string

let reject fmt = Printf.ksprintf (fun m -> raise (Reject m)) fmt

(* ------------------------------------------------------------------ *)
(* Checked rationals (private to the checker)                          *)
(* ------------------------------------------------------------------ *)

exception Overflow

let mul_int a b =
  if a = 0 || b = 0 then 0
  else
    let c = a * b in
    if c / a <> b then raise Overflow else c

let add_int a b =
  let c = a + b in
  if a >= 0 = (b >= 0) && c >= 0 <> (a >= 0) then raise Overflow else c

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Invariant: d > 0, n/d reduced. *)
type rat = { n : int; d : int }

let rat n d =
  if d = 0 then reject "certificate rational with zero denominator";
  let s = if d < 0 then -1 else 1 in
  let n = s * n and d = s * d in
  let g = gcd n d in
  if g = 0 then { n = 0; d = 1 } else { n = n / g; d = d / g }

let rat_of_int n = { n; d = 1 }
let r_zero = rat_of_int 0
let r_one = rat_of_int 1
let r_is_zero r = r.n = 0
let r_is_int r = r.d = 1
let r_add a b = rat (add_int (mul_int a.n b.d) (mul_int b.n a.d)) (mul_int a.d b.d)
let r_mul a b = rat (mul_int a.n b.n) (mul_int a.d b.d)
let r_div a b = if b.n = 0 then reject "division by zero" else r_mul a (rat b.d b.n)
let r_sign r = compare r.n 0
let r_equal a b = a.n = b.n && a.d = b.d

(* ------------------------------------------------------------------ *)
(* Linear forms over named integer variables                           *)
(* ------------------------------------------------------------------ *)

module Smap = Map.Make (String)

(* Σ coeffs·vars + const, with zero coefficients never stored. *)
type lin = { coeffs : rat Smap.t; const : rat }

let l_const c = { coeffs = Smap.empty; const = c }
let l_var x = { coeffs = Smap.singleton x r_one; const = r_zero }

let l_add a b =
  {
    coeffs =
      Smap.union
        (fun _ p q ->
          let s = r_add p q in
          if r_is_zero s then None else Some s)
        a.coeffs b.coeffs;
    const = r_add a.const b.const;
  }

let l_scale k l =
  if r_is_zero k then l_const r_zero
  else { coeffs = Smap.map (r_mul k) l.coeffs; const = r_mul k l.const }

let l_neg = l_scale (rat_of_int (-1))
let l_sub a b = l_add a (l_neg b)
let l_is_const l = Smap.is_empty l.coeffs
let l_equal a b = Smap.equal r_equal a.coeffs b.coeffs && r_equal a.const b.const

(* All coefficients and the constant integral (an integer-valued form —
   the justification for integer tightenings like d≠0 ⇒ |d|≥1). *)
let l_integral l = r_is_int l.const && Smap.for_all (fun _ c -> r_is_int c) l.coeffs

let rec linof (t : Term.t) : lin =
  match t with
  | Term.Int_const k -> l_const (rat_of_int k)
  | Term.Var { Term.sort = Term.Int; name } -> l_var name
  | Term.Add l ->
      List.fold_left (fun acc t -> l_add acc (linof t)) (l_const r_zero) l
  | Term.Sub (a, b) -> l_sub (linof a) (linof b)
  | Term.Neg a -> l_neg (linof a)
  | Term.Mul_const (k, a) -> l_scale (rat_of_int k) (linof a)
  | _ -> reject "non-linear term in certificate fact: %s" (Term.to_string t)

(* A usable arithmetic fact: lin ≤ 0 or lin = 0. [sign] is the polarity
   under which the fact holds; negations are integer-strengthened
   (¬(a ≤ b) over the integers means b+1 ≤ a). *)
type form = Le0 of lin | Eq0 of lin

let rec form_of ~(sign : bool) (t : Term.t) : form =
  match t with
  | Term.Not a -> form_of ~sign:(not sign) a
  | Term.Le (a, b) ->
      if sign then Le0 (l_sub (linof a) (linof b))
      else Le0 (l_add (l_sub (linof b) (linof a)) (l_const r_one))
  | Term.Lt (a, b) ->
      if sign then Le0 (l_add (l_sub (linof a) (linof b)) (l_const r_one))
      else Le0 (l_sub (linof b) (linof a))
  | Term.Eq (a, _) when Term.is_bool a ->
      reject "boolean equality used as an arithmetic fact"
  | Term.Eq (a, b) ->
      if sign then Eq0 (l_sub (linof a) (linof b))
      else reject "bare disequality used as a Farkas fact (needs Split_neq)"
  | _ -> reject "unusable Farkas fact: %s" (Term.to_string t)

(* ------------------------------------------------------------------ *)
(* Partial evaluation under a split context                            *)
(* ------------------------------------------------------------------ *)

(* Constant-fold [t] under the truth assignments in [ctx]. Split atoms
   are substituted wherever they occur (including atoms first exposed
   by folding their operands); everything else reduces through the term
   library's smart constructors, which the solver's own certificate
   producer also folds through — agreement by construction. *)
let fold_term (ctx : bool Tbl.t) (t : Term.t) : Term.t =
  let lk t = Tbl.find_opt ctx t in
  let rec go t =
    match lk t with
    | Some b -> Term.of_bool b
    | None -> (
        match t with
        | Term.True | Term.False | Term.Int_const _ | Term.Var _ -> t
        | Term.Not a -> Term.not_ (go a)
        | Term.And l -> Term.and_ (List.map go l)
        | Term.Or l -> Term.or_ (List.map go l)
        | Term.Implies (a, b) -> Term.implies (go a) (go b)
        | Term.Iff (a, b) -> Term.iff (go a) (go b)
        | Term.Ite (c, a, b) -> Term.ite (go c) (go a) (go b)
        | Term.Add l -> Term.add (List.map go l)
        | Term.Sub (a, b) -> Term.sub (go a) (go b)
        | Term.Neg a -> Term.neg (go a)
        | Term.Mul_const (k, a) -> Term.mul_const k (go a)
        | Term.Eq (a, b) -> re (Term.eq (go a) (go b))
        | Term.Le (a, b) -> re (Term.le (go a) (go b))
        | Term.Lt (a, b) -> re (Term.lt (go a) (go b)))
  and re t = match lk t with Some b -> Term.of_bool b | None -> t in
  go t

(* ------------------------------------------------------------------ *)
(* Unsat witness checking                                              *)
(* ------------------------------------------------------------------ *)

(* Σ λᵢ·linᵢ over in-scope facts, λ > 0 on inequalities (each lin ≤ 0)
   and λ ≠ 0 on equalities (each lin = 0): if every variable cancels
   and the constant is strictly positive, the fact set claims
   0 ≥ Σ λᵢ·linᵢ = c > 0 — a manifest contradiction. *)
let check_farkas (facts : unit Tbl.t) (steps : Proof.step list) : unit =
  if steps = [] then reject "empty Farkas combination";
  let total =
    List.fold_left
      (fun acc { Proof.fact; lam = { Proof.pnum; pden } } ->
        if not (Tbl.mem facts fact) then
          reject "Farkas fact not in scope: %s" (Term.to_string fact);
        let lam = rat pnum pden in
        match form_of ~sign:true fact with
        | Le0 lin ->
            if r_sign lam <= 0 then
              reject "nonpositive multiplier on inequality fact %s"
                (Term.to_string fact);
            l_add acc (l_scale lam lin)
        | Eq0 lin ->
            if r_is_zero lam then
              reject "zero multiplier on equality fact %s" (Term.to_string fact);
            l_add acc (l_scale lam lin))
      (l_const r_zero) steps
  in
  if not (l_is_const total) then
    reject "Farkas combination does not cancel (%s survives)"
      (fst (Smap.min_binding total.coeffs));
  if r_sign total.const <= 0 then reject "Farkas combination is not positive"

(* Verify that [le1]/[ge1] are exactly the two integer tightenings of
   the in-scope disequality [neq]: for some integer-valued form e
   proportional to the disequality's difference d (e = s·d, s ≠ 0),
   le1 ⇔ e+1 ≤ 0 and ge1 ⇔ 1−e ≤ 0. Over the integers d ≠ 0 forces
   e ≤ −1 ∨ e ≥ 1, so the two branches are exhaustive. *)
let check_neq_split (neq : Term.t) (le1 : Term.t) (ge1 : Term.t) : unit =
  let d =
    match neq with
    | Term.Not (Term.Eq (a, b)) when not (Term.is_bool a) ->
        l_sub (linof a) (linof b)
    | _ -> reject "Split_neq fact is not an integer disequality"
  in
  let side t =
    match form_of ~sign:true t with
    | Le0 lin -> lin
    | Eq0 _ -> reject "Split_neq side is not an inequality"
  in
  let e = l_sub (side le1) (l_const r_one) in
  if not (l_equal (side ge1) (l_sub (l_const r_one) e)) then
    reject "Split_neq sides are not mirror tightenings";
  if not (l_integral e) then reject "Split_neq tightening is not integral";
  (* e = s·d for some s ≠ 0. *)
  let s =
    match (Smap.choose_opt d.coeffs, Smap.choose_opt e.coeffs) with
    | Some (x, dc), Some _ -> (
        match Smap.find_opt x e.coeffs with
        | Some ec -> r_div ec dc
        | None -> reject "Split_neq tightening drops a variable")
    | None, None ->
        if r_is_zero d.const then
          reject "Split_neq on an identically-zero difference"
        else r_div e.const d.const
    | _ -> reject "Split_neq tightening does not match the disequality"
  in
  if r_is_zero s then reject "Split_neq tightening is trivial";
  if not (l_equal e (l_scale s d)) then
    reject "Split_neq tightening is not proportional to the disequality"

let check_tree (asserted : Term.t list) (tree : Proof.tree) : unit =
  let facts : unit Tbl.t = Tbl.create 64 in
  let ctx : bool Tbl.t = Tbl.create 16 in
  (* The initially available facts: the asserted terms and, since a
     conjunction asserts its conjuncts, the And-flattening closure. *)
  let rec add_fact t =
    Tbl.replace facts t ();
    match t with Term.And l -> List.iter add_fact l | _ -> ()
  in
  List.iter add_fact asserted;
  (* Hashtbl add/remove nest like a stack, so scoped facts shadow and
     restore any identical outer fact. *)
  let with_fact t k =
    Tbl.add facts t ();
    Fun.protect ~finally:(fun () -> Tbl.remove facts t) k
  in
  let with_assign atom b k =
    Tbl.add ctx atom b;
    let fact = if b then atom else Term.not_ atom in
    Tbl.add facts fact ();
    Fun.protect
      ~finally:(fun () ->
        Tbl.remove facts fact;
        Tbl.remove ctx atom)
      k
  in
  let rec go = function
    | Proof.Bool_leaf ->
        if
          not
            (List.exists
               (fun t -> fold_term ctx t = Term.False)
               asserted)
        then reject "Bool_leaf: no asserted term folds to false"
    | Proof.Farkas steps -> check_farkas facts steps
    | Proof.Split { atom; if_true; if_false } ->
        if not (Term.is_bool atom) then
          reject "split on a non-boolean term: %s" (Term.to_string atom);
        with_assign atom true (fun () -> go if_true);
        with_assign atom false (fun () -> go if_false)
    | Proof.Split_neq { neq; le1; ge1; left; right } ->
        if not (Tbl.mem facts neq) then
          reject "Split_neq on an out-of-scope disequality: %s"
            (Term.to_string neq);
        check_neq_split neq le1 ge1;
        with_fact le1 (fun () -> go left);
        with_fact ge1 (fun () -> go right)
  in
  go tree

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(* Checker-side tallies, split by witness kind (the solver's
   [cert_checks]/[cert_failures] count at its gatekeeper; these count
   what this independent checker actually examined). *)
let c_sat_validations = Trace.Metrics.counter "cert.sat_validations"
let c_unsat_validations = Trace.Metrics.counter "cert.unsat_validations"

(* Total evaluation with the solver's defaulting convention (absent
   variables are 0 / false) — written here rather than borrowed, so a
   shared evaluation bug cannot vouch for itself. *)
let validate_sat (ts : Term.t list) (m : Model.t) : Proof.verdict =
  Trace.Metrics.incr c_sat_validations;
  let rec ev t =
    match t with
    | Term.True -> Term.VBool true
    | Term.False -> Term.VBool false
    | Term.Int_const k -> Term.VInt k
    | Term.Var { Term.name; sort } -> (
        match Model.find_opt name m with
        | Some v -> v
        | None -> (
            match sort with
            | Term.Bool -> Term.VBool false
            | Term.Int -> Term.VInt 0))
    | Term.Not a -> Term.VBool (not (evb a))
    | Term.And l -> Term.VBool (List.for_all evb l)
    | Term.Or l -> Term.VBool (List.exists evb l)
    | Term.Implies (a, b) -> Term.VBool ((not (evb a)) || evb b)
    | Term.Iff (a, b) -> Term.VBool (evb a = evb b)
    | Term.Ite (c, a, b) -> if evb c then ev a else ev b
    | Term.Add l -> Term.VInt (List.fold_left (fun acc t -> acc + evi t) 0 l)
    | Term.Sub (a, b) -> Term.VInt (evi a - evi b)
    | Term.Neg a -> Term.VInt (-evi a)
    | Term.Mul_const (k, a) -> Term.VInt (k * evi a)
    | Term.Eq (a, b) -> (
        match (ev a, ev b) with
        | Term.VBool x, Term.VBool y -> Term.VBool (x = y)
        | Term.VInt x, Term.VInt y -> Term.VBool (x = y)
        | _ -> reject "sort mismatch under Eq")
    | Term.Le (a, b) -> Term.VBool (evi a <= evi b)
    | Term.Lt (a, b) -> Term.VBool (evi a < evi b)
  and evb t =
    match ev t with
    | Term.VBool b -> b
    | Term.VInt _ -> reject "integer term where boolean expected"
  and evi t =
    match ev t with
    | Term.VInt k -> k
    | Term.VBool _ -> reject "boolean term where integer expected"
  in
  try
    match List.find_opt (fun t -> not (evb t)) ts with
    | None -> Proof.Valid
    | Some t -> Proof.Invalid ("model does not satisfy " ^ Term.to_string t)
  with Reject m -> Proof.Invalid m

let validate_unsat (ts : Term.t list) (tree : Proof.tree) : Proof.verdict =
  Trace.Metrics.incr c_unsat_validations;
  try
    check_tree ts tree;
    Proof.Valid
  with
  | Reject m -> Proof.Invalid m
  | Overflow -> Proof.Invalid "rational overflow while checking certificate"

let install () = Proof.set_validator { Proof.validate_sat; validate_unsat }
