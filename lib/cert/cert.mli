(* The solver-independent certificate checker.

   Validates the certificates [Smt.Solver] attaches to its verdicts
   using nothing but term evaluation and linear-combination arithmetic:
   no simplex, no branch-and-bound, no DPLL, no shared rational type.
   The checker is the root of the trust architecture — a verdict is only
   as credible as the certificate this module accepts, and a memo layer
   (result cache, incremental stack, journal replay) can never launder a
   wrong answer past it. *)

(* Check a satisfiability witness: every asserted term must evaluate to
   true under the model (absent variables default to 0 / false, matching
   the solver's convention). *)
val validate_sat : Smt.Term.t list -> Smt.Model.t -> Smt.Proof.verdict

(* Check an unsatisfiability witness (a split tree, see [Smt.Proof])
   against the asserted terms. *)
val validate_unsat : Smt.Term.t list -> Smt.Proof.tree -> Smt.Proof.verdict

(* Install this checker as the solver's validator ([Smt.Proof.
   set_validator]). Idempotent; entry points (Refine.Check,
   Dnsv.Pipeline, the CLI, tests) call it at module initialization. *)
val install : unit -> unit
