(* Deterministic fault injection for the verification pipeline.

   Robustness of the pipeline's degradation paths (budget exhaustion,
   solver incompleteness, summary failure, wall-clock overrun) cannot be
   tested by waiting for the failures to occur naturally: a from-scratch
   LIA solver rarely answers Unknown on the engine's linear obligations,
   and the reference zones verify in milliseconds. This module provides
   seedable, deterministic hooks that the substrate consults at its
   failure-prone sites so tests can force each degradation path on
   demand (the same discipline as Janus-style crash-consistency fault
   schedules: a fault plan is data, replayable from a seed).

   All state is domain-local and explicitly reset; production runs never
   arm a site, and a disarmed site costs one match on an option. *)

type site =
  | Solver_unknown (* force Smt.Solver.check to answer Unknown *)
  | Summarize_raise (* raise from inside Symex.Summary.summarize_at *)
  | Summary_invalid (* fail Symex.Summary validation *)
  | Exec_fuel (* exhaust symbolic-execution fuel in Symex.Exec.tick *)
  | Clock_overrun (* skew Budget.now past any deadline *)
  | Cache_corrupt (* poison a Smt.Solver result-cache entry on a hit *)
  | Journal_torn (* tear a Journal.append mid-frame, then kill it *)
  | Store_corrupt (* flip bytes in a Store entry payload on a hit *)
  | Store_stale (* make a Store lookup miss as if the entry were absent *)
  | Store_lock_held (* pretend another writer holds the Store lock *)
  | Conflict_corrupt (* drop a literal from a learned clause in Smt.Sat *)
  | Wire_garble (* flip bytes of an incoming datagram in Dnsv.Serve *)
  | Wire_truncate (* cut an incoming datagram short in Dnsv.Serve *)
  | Serve_overload (* exhaust a query's budget in Dnsv.Serve.handle *)
  | Obsv_sink_fail (* suppress an Obsv.Qlog append before any byte lands *)

let site_to_string = function
  | Solver_unknown -> "solver-unknown"
  | Summarize_raise -> "summarize-raise"
  | Summary_invalid -> "summary-invalid"
  | Exec_fuel -> "exec-fuel"
  | Clock_overrun -> "clock-overrun"
  | Cache_corrupt -> "cache-corrupt"
  | Journal_torn -> "journal-torn"
  | Store_corrupt -> "store-corrupt"
  | Store_stale -> "store-stale"
  | Store_lock_held -> "store-lock-held"
  | Conflict_corrupt -> "conflict-corrupt"
  | Wire_garble -> "wire-garble"
  | Wire_truncate -> "wire-truncate"
  | Serve_overload -> "serve-overload"
  | Obsv_sink_fail -> "obsv-sink-fail"

let site_of_string = function
  | "solver-unknown" -> Some Solver_unknown
  | "summarize-raise" -> Some Summarize_raise
  | "summary-invalid" -> Some Summary_invalid
  | "exec-fuel" -> Some Exec_fuel
  | "clock-overrun" -> Some Clock_overrun
  | "cache-corrupt" -> Some Cache_corrupt
  | "journal-torn" -> Some Journal_torn
  | "store-corrupt" -> Some Store_corrupt
  | "store-stale" -> Some Store_stale
  | "store-lock-held" -> Some Store_lock_held
  | "conflict-corrupt" -> Some Conflict_corrupt
  | "wire-garble" -> Some Wire_garble
  | "wire-truncate" -> Some Wire_truncate
  | "serve-overload" -> Some Serve_overload
  | "obsv-sink-fail" -> Some Obsv_sink_fail
  | _ -> None

exception Injected of string

type plan = {
  fire_at : int; (* 1-based call index at which the fault fires *)
  persistent : bool; (* keep firing on every call >= fire_at *)
}

type cell = { mutable plan : plan option; mutable calls : int }

let all_sites =
  [
    Solver_unknown;
    Summarize_raise;
    Summary_invalid;
    Exec_fuel;
    Clock_overrun;
    Cache_corrupt;
    Journal_torn;
    Store_corrupt;
    Store_stale;
    Store_lock_held;
    Conflict_corrupt;
    Wire_garble;
    Wire_truncate;
    Serve_overload;
    Obsv_sink_fail;
  ]

(* Seconds added to Budget.now when Clock_overrun fires. *)
let default_skew = 1.0e9

(* Fault state is domain-local. A worker domain spawned by the parallel
   pipeline inherits a snapshot of its parent's armed plans with the
   call counters reset to zero: each worker replays the plan against its
   own deterministic arrival sequence, so a fault schedule fires at the
   same point in a worker's task regardless of how tasks are spread over
   domains — per-domain determinism, not global-arrival determinism. *)
type state = { cells : (site * cell) list; mutable skew : float }

let fresh_state () =
  {
    cells = List.map (fun s -> (s, { plan = None; calls = 0 })) all_sites;
    skew = default_skew;
  }

let split_state (parent : state) : state =
  {
    cells =
      List.map (fun (s, c) -> (s, { plan = c.plan; calls = 0 })) parent.cells;
    skew = parent.skew;
  }

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:split_state fresh_state

let state () = Domain.DLS.get state_key
let cell s = List.assq s (state ()).cells

let reset () =
  let st = state () in
  List.iter
    (fun (_, c) ->
      c.plan <- None;
      c.calls <- 0)
    st.cells;
  st.skew <- default_skew

let arm ?(persistent = false) ~after (s : site) =
  if after < 1 then invalid_arg "Faultinject.arm: after must be >= 1";
  let c = cell s in
  c.plan <- Some { fire_at = after; persistent };
  c.calls <- 0

(* Derive the firing call index deterministically from a seed: a
   Lehmer-style LCG over [1, window]. The same (seed, window) always
   yields the same schedule, so a failing fault plan is replayable by
   quoting its seed. *)
let arm_seeded ?(persistent = false) ~seed ~window (s : site) =
  if window < 1 then invalid_arg "Faultinject.arm_seeded: window must be >= 1";
  let x = (seed * 48271 + 11) land 0x3FFFFFFF in
  arm ~persistent ~after:((x mod window) + 1) s

let disarm (s : site) =
  let c = cell s in
  c.plan <- None;
  c.calls <- 0

let armed (s : site) = (cell s).plan <> None

(* Injections are observable: each firing bumps a registry counter and,
   when a trace is recording, leaves an instant event naming the site —
   a degraded verdict's trace then contains its root cause. *)
let fired_counter = Trace.Metrics.counter "fault.fired"

let note_fired (s : site) =
  Trace.Metrics.incr fired_counter;
  Trace.event "fault.fired" ~attrs:[ ("site", site_to_string s) ]

(* Count one arrival at [s]; report whether the armed fault fires. *)
let fire (s : site) : bool =
  let c = cell s in
  match c.plan with
  | None -> false
  | Some p ->
      c.calls <- c.calls + 1;
      let fired =
        if p.persistent then c.calls >= p.fire_at
        else if c.calls = p.fire_at then begin
          (* One-shot: disarm so retries and later checks run clean. *)
          c.plan <- None;
          true
        end
        else false
      in
      if fired then note_fired s;
      fired

let calls (s : site) = (cell s).calls

let set_clock_skew s = (state ()).skew <- s

let clock_skew () = if fire Clock_overrun then (state ()).skew else 0.0

let injected s fmt =
  Printf.ksprintf (fun m -> raise (Injected (site_to_string s ^ ": " ^ m))) fmt
