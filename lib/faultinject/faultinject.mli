(* Deterministic fault injection for the verification pipeline.

   Seedable hooks the substrate consults at its failure-prone sites so
   tests can drive every degradation path (forced solver Unknown, fuel
   exhaustion, summary failure, wall-clock overrun) on demand. All state
   is domain-local and explicitly reset; a worker domain inherits its
   parent's armed plans with call counters reset to zero, so a fault
   schedule replays deterministically within each worker. A disarmed
   site is near-free. *)

type site =
  | Solver_unknown (* force Smt.Solver.check to answer Unknown *)
  | Summarize_raise (* raise from inside Symex.Summary.summarize_at *)
  | Summary_invalid (* fail Symex.Summary validation *)
  | Exec_fuel (* exhaust symbolic-execution fuel in Symex.Exec.tick *)
  | Clock_overrun (* skew Budget.now past any deadline *)
  | Cache_corrupt (* poison a Smt.Solver result-cache entry on a hit *)
  | Journal_torn (* tear a Journal.append mid-frame, then kill it *)
  | Store_corrupt (* flip bytes in a Store entry payload on a hit *)
  | Store_stale (* make a Store lookup miss as if the entry were absent *)
  | Store_lock_held (* pretend another writer holds the Store lock *)
  | Conflict_corrupt (* drop a literal from a learned clause in Smt.Sat *)
  | Wire_garble (* flip bytes of an incoming datagram in Dnsv.Serve *)
  | Wire_truncate (* cut an incoming datagram short in Dnsv.Serve *)
  | Serve_overload (* exhaust a query's budget in Dnsv.Serve.handle *)
  | Obsv_sink_fail (* suppress an Obsv.Qlog append before any byte lands *)

val site_to_string : site -> string
val site_of_string : string -> site option

(* Every injection site, in declaration order (chaos plans sample it). *)
val all_sites : site list

exception Injected of string

(* Clear every armed fault and call counter. Call between tests. *)
val reset : unit -> unit

(* Arm [site] to fire on its [after]-th arrival (1-based). One-shot by
   default: the site disarms itself when it fires, so retries run clean.
   [persistent] keeps it firing on every later arrival too. *)
val arm : ?persistent:bool -> after:int -> site -> unit

(* Arm with a firing index derived deterministically from [seed] within
   [1, window] — the same (seed, window) always yields the same plan. *)
val arm_seeded : ?persistent:bool -> seed:int -> window:int -> site -> unit

val disarm : site -> unit
val armed : site -> bool

(* Count one arrival at [site]; true iff the armed fault fires now. *)
val fire : site -> bool

(* Arrivals seen at [site] since it was last armed or reset. *)
val calls : site -> int

(* Seconds that [clock_skew] reports when Clock_overrun fires
   (default 1e9 — far past any plausible deadline). *)
val set_clock_skew : float -> unit

(* Consulted by Budget.now: counts one Clock_overrun arrival and returns
   the skew if the fault fires, 0 otherwise. *)
val clock_skew : unit -> float

(* Raise [Injected] with a site-tagged message. *)
val injected : site -> ('a, unit, string, 'b) format4 -> 'a
