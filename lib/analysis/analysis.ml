(* Forward abstract interpretation over Minir CFGs.

   A classic worklist fixpoint (join at block entry, widening after
   repeated updates) instantiated with a product domain:

   - intervals for I64 registers and stack slots,
   - nullness for pointers,
   - tribools for I1,
   - definite-initialization (must-store) for stack slots.

   The input is assumed well-formed ([Minir.Wellform.check]): every
   register has exactly one static assignment, which makes the def map
   a function and lets branch refinement walk a condition's defining
   expression (through [Not], [And_]/[Or_] and [Icmp]) to tighten the
   operands' abstract values on each outgoing edge.

   Stack slots (registers assigned by [Alloca]) are tracked only while
   they cannot alias: a slot whose register is used anywhere other than
   as the pointer operand of a [Load]/[Store] escapes and is dropped
   from the slot environment. Loads from tracked slots additionally
   record *provenance* (register r was loaded from slot s, still
   valid), so a branch refining r — `for cur != nil { cur.down }` —
   also refines what the slot must hold, which is what discharges the
   nil checks the frontend re-emits inside the loop body.

   Everything here is consumed three ways: [Lint] (below) reports
   findings per function; [branch_fact] hands the symbolic executor
   statically-dead edges so it can skip the solver; the soundness test
   replays concrete interpreter runs against [check_concrete]. *)

module Instr = Minir.Instr
module Ty = Minir.Ty
module Value = Minir.Value
module Callgraph = Minir.Callgraph

(* How the symbolic executor treats the analysis:
   [Off] — never consulted; [Trust] — statically-dead edges are pruned
   without calling the solver; [Distrust] — every solver call is still
   made and each static claim is cross-checked against the certified
   answer (the chaos/soak configuration: degrade, never flip). *)
type policy = Off | Trust | Distrust

let policy_to_string = function
  | Off -> "off"
  | Trust -> "trust"
  | Distrust -> "distrust"

let policy_of_string = function
  | "off" -> Some Off
  | "trust" -> Some Trust
  | "distrust" -> Some Distrust
  | _ -> None

let m_functions = Trace.Metrics.counter "analysis.functions"

(* ------------------------------------------------------------------ *)
(* Domains                                                            *)
(* ------------------------------------------------------------------ *)

module Interval = struct
  (* [I (lo, hi)]; [None] is the infinite bound on that side. *)
  type t = Bot | I of int option * int option

  let top = I (None, None)
  let of_int n = I (Some n, Some n)

  let norm lo hi =
    match (lo, hi) with Some l, Some h when l > h -> Bot | _ -> I (lo, hi)

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | I (l1, h1), I (l2, h2) ->
        I
          ( (match (l1, l2) with
            | Some a, Some b -> Some (min a b)
            | _ -> None),
            match (h1, h2) with Some a, Some b -> Some (max a b) | _ -> None )

  let meet a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | I (l1, h1), I (l2, h2) ->
        norm
          (match (l1, l2) with
          | Some a, Some b -> Some (max a b)
          | Some a, None | None, Some a -> Some a
          | None, None -> None)
          (match (h1, h2) with
          | Some a, Some b -> Some (min a b)
          | Some a, None | None, Some a -> Some a
          | None, None -> None)

  (* [widen old next] with [next ⊒ old]: any bound still moving goes to
     its infinity, so chains stabilize. *)
  let widen old next =
    match (old, next) with
    | Bot, x | x, Bot -> x
    | I (l1, h1), I (l2, h2) ->
        (* A bound still moving (including to infinity) goes to its
           infinity; only a bound that stayed put survives. *)
        I
          ( (match (l1, l2) with
            | Some a, Some b when b >= a -> Some a
            | _ -> None),
            match (h1, h2) with
            | Some a, Some b when b <= a -> Some a
            | _ -> None )

  let add a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | I (l1, h1), I (l2, h2) ->
        I
          ( (match (l1, l2) with Some x, Some y -> Some (x + y) | _ -> None),
            match (h1, h2) with Some x, Some y -> Some (x + y) | _ -> None )

  let neg = function
    | Bot -> Bot
    | I (l, h) -> I (Option.map (fun x -> -x) h, Option.map (fun x -> -x) l)

  let sub a b = add a (neg b)

  let mul_const k = function
    | Bot -> Bot
    | I (l, h) ->
        if k = 0 then of_int 0
        else if k > 0 then
          I (Option.map (fun x -> k * x) l, Option.map (fun x -> k * x) h)
        else I (Option.map (fun x -> k * x) h, Option.map (fun x -> k * x) l)

  let mul a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | I (Some k, Some k'), i when k = k' -> mul_const k i
    | i, I (Some k, Some k') when k = k' -> mul_const k i
    | _ -> top

  let mem n = function
    | Bot -> false
    | I (l, h) ->
        (match l with None -> true | Some x -> n >= x)
        && (match h with None -> true | Some x -> n <= x)

  let finite = function I (Some _, Some _) -> true | _ -> false
  let is_singleton = function I (Some a, Some b) -> a = b | _ -> false

  (* Refinements under an assumed strict/loose order between two
     intervals: [(a', b')] such that any (x ∈ a, y ∈ b) with x R y has
     x ∈ a' and y ∈ b'. *)
  let below ~strict = function
    | Bot -> Bot
    | I (_, None) -> top
    | I (_, Some h) -> I (None, Some (if strict then h - 1 else h))

  let above ~strict = function
    | Bot -> Bot
    | I (None, _) -> top
    | I (Some l, _) -> I (Some (if strict then l + 1 else l), None)

  (* Drop a known-excluded endpoint: a ≠ b with b the singleton {k}. *)
  let remove_point a b =
    match (a, b) with
    | I (Some l, h), I (Some k, Some k') when k = k' && l = k ->
        norm (Some (l + 1)) h
    | I (l, Some h), I (Some k, Some k') when k = k' && h = k ->
        norm l (Some (h - 1))
    | _ -> a

  let pp fmt = function
    | Bot -> Format.fprintf fmt "⊥"
    | I (l, h) ->
        Format.fprintf fmt "[%s,%s]"
          (match l with None -> "-inf" | Some x -> string_of_int x)
          (match h with None -> "+inf" | Some x -> string_of_int x)
end

module Tribool = struct
  type t = TBot | TT | TF | TTop

  let of_bool b = if b then TT else TF

  let join a b =
    match (a, b) with
    | TBot, x | x, TBot -> x
    | TT, TT -> TT
    | TF, TF -> TF
    | _ -> TTop

  let meet a b =
    match (a, b) with
    | TTop, x | x, TTop -> x
    | TT, TT -> TT
    | TF, TF -> TF
    | _ -> TBot

  let not_ = function TBot -> TBot | TT -> TF | TF -> TT | TTop -> TTop

  let and_ a b =
    match (a, b) with
    | TBot, _ | _, TBot -> TBot
    | TF, _ | _, TF -> TF
    | TT, TT -> TT
    | _ -> TTop

  let or_ a b = not_ (and_ (not_ a) (not_ b))

  let pp fmt t =
    Format.pp_print_string fmt
      (match t with TBot -> "⊥" | TT -> "true" | TF -> "false" | TTop -> "⊤")
end

module Nullness = struct
  type t = NBot | NNull | NNot | NTop

  let join a b =
    match (a, b) with
    | NBot, x | x, NBot -> x
    | NNull, NNull -> NNull
    | NNot, NNot -> NNot
    | _ -> NTop

  let meet a b =
    match (a, b) with
    | NTop, x | x, NTop -> x
    | NNull, NNull -> NNull
    | NNot, NNot -> NNot
    | _ -> NBot

  let pp fmt t =
    Format.pp_print_string fmt
      (match t with
      | NBot -> "⊥"
      | NNull -> "nil"
      | NNot -> "non-nil"
      | NTop -> "⊤")
end

(* The product value: one constructor per Minir register sort. [ATop]
   is the unknown-sort top (e.g. an unassigned register). *)
type aval =
  | AInt of Interval.t
  | ABool of Tribool.t
  | APtr of Nullness.t
  | ATop

let a_join a b =
  match (a, b) with
  | ATop, _ | _, ATop -> ATop
  | AInt x, AInt y -> AInt (Interval.join x y)
  | ABool x, ABool y -> ABool (Tribool.join x y)
  | APtr x, APtr y -> APtr (Nullness.join x y)
  | _ -> ATop

let a_widen old next =
  match (old, next) with
  | AInt x, AInt y -> AInt (Interval.widen x y)
  | _ -> a_join old next

let a_is_bot = function
  | AInt Interval.Bot | ABool Tribool.TBot | APtr Nullness.NBot -> true
  | _ -> false

(* Sound meet for values known to describe the same concrete outcome:
   an empty intersection can only mean the outcome is unreachable, so
   keeping either side stays a cover — we keep [a] rather than
   introduce ⊥ into states (instruction transfer must stay total). *)
let a_meet a b =
  match (a, b) with
  | ATop, v | v, ATop -> v
  | AInt x, AInt y -> (
      match Interval.meet x y with Interval.Bot -> AInt x | m -> AInt m)
  | ABool x, ABool y -> (
      match Tribool.meet x y with Tribool.TBot -> ABool x | m -> ABool m)
  | APtr x, APtr y -> (
      match Nullness.meet x y with Nullness.NBot -> APtr x | m -> APtr m)
  | a, _ -> a (* sort mismatch: ill-typed input, keep what we had *)

(* Meet that *can* report emptiness, for lint-side compatibility
   checks (a call argument vs. a callee precondition). *)
let a_compatible a b =
  match (a, b) with
  | ATop, _ | _, ATop -> true
  | AInt x, AInt y -> Interval.meet x y <> Interval.Bot
  | ABool x, ABool y -> Tribool.meet x y <> Tribool.TBot
  | APtr x, APtr y -> Nullness.meet x y <> Nullness.NBot
  | _ -> true

let top_of_ty : Ty.t -> aval = function
  | Ty.I64 -> AInt Interval.top
  | Ty.I1 -> ABool Tribool.TTop
  | Ty.Ptr _ | Ty.Opaque_ptr | Ty.Struct _ | Ty.Array _ -> APtr Nullness.NTop

(* Minir zero-initializes fresh slots (Go semantics). *)
let default_of_ty : Ty.t -> aval = function
  | Ty.I64 -> AInt (Interval.of_int 0)
  | Ty.I1 -> ABool Tribool.TF
  | Ty.Ptr _ | Ty.Opaque_ptr | Ty.Struct _ | Ty.Array _ -> APtr Nullness.NNull

let pp_aval fmt = function
  | AInt i -> Interval.pp fmt i
  | ABool t -> Tribool.pp fmt t
  | APtr n -> Nullness.pp fmt n
  | ATop -> Format.pp_print_string fmt "⊤"

(* ------------------------------------------------------------------ *)
(* Relational function summaries                                      *)
(* ------------------------------------------------------------------ *)

(* Per-function summary computed bottom-up over the call graph and
   applied at call sites in place of havoc. All components are
   universally sound for *any* call (parameters start at ⊤ when the
   summary is computed):

   - [rs_ret] covers every normally-returned value;
   - [rs_rel] is the zones fragment: [ret - arg_i ∈ itv] for each
     listed I64 parameter, valid at every normal return;
   - [rs_pre] is a *necessary* condition for normal return — on every
     concrete run that returns, parameter i's value at entry lies in
     the listed aval (used by the guaranteed-panic lint, never to
     refine caller state);
   - [rs_pure] — no store the caller could observe (no writes through
     non-local pointers, no opaque stores, transitively);
   - [rs_may_panic] / [rs_returns] — reachability of panic / return
     exits under the summary's own abstraction. *)
type rsummary = {
  rs_fn : string;
  rs_params : (string * Ty.t) list;
  rs_ret_ty : Ty.t option;
  rs_ret : aval;
  rs_rel : (int * Interval.t) list;
  rs_pre : (int * aval) list;
  rs_pure : bool;
  rs_may_panic : bool;
  rs_returns : bool;
}

(* The sound don't-know summary: what an SCC member starts from (the
   downward iteration only tightens it) and what callers of undefined
   functions fall back to. *)
let havoc_rsummary (f : Instr.func) : rsummary =
  {
    rs_fn = f.Instr.fn_name;
    rs_params = f.Instr.params;
    rs_ret_ty = f.Instr.ret_ty;
    rs_ret =
      (match f.Instr.ret_ty with Some ty -> top_of_ty ty | None -> ATop);
    rs_rel = [];
    rs_pre = [];
    rs_pure = false;
    rs_may_panic = true;
    rs_returns = true;
  }

(* Shape check for summaries loaded from a persistent store: the entry
   key (a cone fingerprint) already ties the bytes to this function's
   semantics, this guards against decoding skew — a summary whose
   signature disagrees with the live function is never trusted. *)
let rsummary_matches (f : Instr.func) (rs : rsummary) : bool =
  String.equal rs.rs_fn f.Instr.fn_name
  && rs.rs_ret_ty = f.Instr.ret_ty
  && List.length rs.rs_params = List.length f.Instr.params
  && List.for_all2 (fun (_, t) (_, t') -> t = t') rs.rs_params f.Instr.params
  && List.for_all
       (fun (i, _) -> i >= 0 && i < List.length f.Instr.params)
       rs.rs_rel
  && List.for_all
       (fun (i, _) -> i >= 0 && i < List.length f.Instr.params)
       rs.rs_pre

(* Persistence hooks, installed by the store layer (which owns the
   cone-fingerprint keying); [None] means recompute everything.
   [envfp] digests the *filtered* field invariants the summaries were
   computed under: a store added anywhere in the program can drop an
   invariant — and so change another function's summary — without
   touching that function's call cone, so the cone fingerprint alone
   must not key the entry. *)
type ip_persist = {
  ipp_load : envfp:string -> string -> rsummary option;
  ipp_save : envfp:string -> string -> rsummary -> unit;
}

let ip_persist_key : ip_persist option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_ip_persist p = Domain.DLS.get ip_persist_key := p
let ip_persist_installed () = !(Domain.DLS.get ip_persist_key)

(* ------------------------------------------------------------------ *)
(* Analysis environments (harness-supplied facts)                     *)
(* ------------------------------------------------------------------ *)

(* Facts the *caller of the analysis* is entitled to assume, all
   optional — [summarize] without an env is sound for any entry into
   any function. An env declares:

   - [env_roots]: functions the harness may enter directly with
     arbitrary (or [env_entry]-constrained) arguments. Every non-root
     is assumed reachable only through calls appearing in the program,
     which lets the analysis narrow its parameters to the join of all
     syntactic call-site arguments.
   - [env_entry]: per-root argument facts the harness enforces (e.g.
     the DNS driver only calls resolve with qlen ∈ [0, max_labels]).
   - [env_fields]: struct-field invariants of the harness-built heap
     ((struct name, field index, value) — e.g. every TreeNode's
     labelsLen ∈ [0, 6] in an encoded zone). These are re-verified
     against the program by [field_invariants_filter] before use:
     any program that could write such a field drops the invariant. *)
type env = {
  env_roots : string list;
  env_entry : (string * (int * aval) list) list;
  env_fields : (string * int * aval) list;
}

(* ------------------------------------------------------------------ *)
(* Abstract states                                                    *)
(* ------------------------------------------------------------------ *)

module Env = Map.Make (String)
module SSet = Set.Make (String)

type st = {
  regs : aval Env.t; (* absent = ⊤ *)
  slots : aval Env.t; (* tracked slot contents, keyed by the alloca reg *)
  inited : SSet.t; (* slots definitely explicitly stored (must) *)
  prov : Instr.reg Env.t; (* reg ↦ slot it was loaded from, still valid *)
}

type state = Bot | St of st

(* Keys present on one side only are kept: a register (or slot) is
   defined by exactly one static instruction, so on any concrete path
   where it was never (re)assigned its frame entry — if present at all —
   flowed through the defining edge and is covered by that side's
   value. Provenance is must-information and intersects instead. *)
let st_join a b =
  {
    regs = Env.union (fun _ x y -> Some (a_join x y)) a.regs b.regs;
    slots = Env.union (fun _ x y -> Some (a_join x y)) a.slots b.slots;
    inited = SSet.inter a.inited b.inited;
    prov =
      Env.merge
        (fun _ x y ->
          match (x, y) with
          | Some u, Some v when String.equal u v -> Some u
          | _ -> None)
        a.prov b.prov;
  }

let st_widen old next =
  {
    next with
    regs =
      Env.mapi
        (fun r v ->
          match Env.find_opt r old.regs with
          | Some o -> a_widen o v
          | None -> v)
        next.regs;
    slots =
      Env.mapi
        (fun s v ->
          match Env.find_opt s old.slots with
          | Some o -> a_widen o v
          | None -> v)
        next.slots;
  }

let st_equal a b =
  Env.equal ( = ) a.regs b.regs
  && Env.equal ( = ) a.slots b.slots
  && SSet.equal a.inited b.inited
  && Env.equal String.equal a.prov b.prov

let state_join a b =
  match (a, b) with Bot, x | x, Bot -> x | St a, St b -> St (st_join a b)

let state_widen old next =
  match (old, next) with
  | Bot, x | x, Bot -> x
  | St o, St n -> St (st_widen o n)

let state_equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | St a, St b -> st_equal a b
  | _ -> false

let state_is_bottom = function Bot -> true | St _ -> false

let pp_state fmt = function
  | Bot -> Format.pp_print_string fmt "⊥"
  | St s ->
      Format.fprintf fmt "@[<hv>{";
      Env.iter (fun r v -> Format.fprintf fmt " %%%s=%a" r pp_aval v) s.regs;
      Env.iter (fun r v -> Format.fprintf fmt " [%%%s]=%a" r pp_aval v) s.slots;
      Format.fprintf fmt " }@]"

(* ------------------------------------------------------------------ *)
(* The generic forward engine                                         *)
(* ------------------------------------------------------------------ *)

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t (* old → joined (⊒ old) → widened *)
end

module Fixpoint (D : DOMAIN) = struct
  let widen_threshold = 3

  (* Widening points: targets of DFS back edges, i.e. loop heads in the
     reducible CFGs the frontend emits. Widening only there keeps the
     branch refinements inside loop bodies (a body entered under
     [i <= n] keeps the finite bound) while every cycle still crosses a
     widening point, so the ascending chain terminates. *)
  let widen_points (blocks : (Instr.label * Instr.block) list)
      (entry : Instr.label) : (Instr.label, unit) Hashtbl.t =
    let succs l =
      match (List.assoc l blocks).Instr.term with
      | Instr.Br l' -> [ l' ]
      | Instr.Cond_br (_, l1, l2) -> [ l1; l2 ]
      | Instr.Ret _ | Instr.Panic _ | Instr.Unreachable -> []
    in
    let points = Hashtbl.create 8 in
    let gray = Hashtbl.create 16 in
    let done_ = Hashtbl.create 16 in
    (* Explicit stack: each frame is a block and its unexplored succs. *)
    let stack = ref [] in
    let enter l =
      Hashtbl.replace gray l ();
      stack := (l, ref (succs l)) :: !stack
    in
    enter entry;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (l, rest) :: tl -> (
          match !rest with
          | [] ->
              Hashtbl.remove gray l;
              Hashtbl.replace done_ l ();
              stack := tl
          | s :: rs ->
              rest := rs;
              if Hashtbl.mem gray s then Hashtbl.replace points s ()
              else if not (Hashtbl.mem done_ s) then enter s)
    done;
    points

  (* Worklist fixpoint: [transfer] maps a block's entry state to the
     states it propagates to each successor. Returns the per-block
     entry states; blocks never reached are absent. *)
  let solve ~(blocks : (Instr.label * Instr.block) list)
      ~(entry : Instr.label) ~(init : D.t)
      ~(transfer : Instr.label -> Instr.block -> D.t -> (Instr.label * D.t) list)
      : (Instr.label, D.t) Hashtbl.t =
    let wpoints = widen_points blocks entry in
    let in_states = Hashtbl.create 16 in
    let updates = Hashtbl.create 16 in
    let wl = Queue.create () in
    let queued = Hashtbl.create 16 in
    let push l =
      if not (Hashtbl.mem queued l) then begin
        Hashtbl.replace queued l ();
        Queue.push l wl
      end
    in
    Hashtbl.replace in_states entry init;
    push entry;
    while not (Queue.is_empty wl) do
      let l = Queue.pop wl in
      Hashtbl.remove queued l;
      match Hashtbl.find_opt in_states l with
      | None -> ()
      | Some s ->
          let b = List.assoc l blocks in
          List.iter
            (fun (l', s') ->
              let prev = Hashtbl.find_opt in_states l' in
              let joined =
                match prev with None -> s' | Some p -> D.join p s'
              in
              let n = Option.value (Hashtbl.find_opt updates l') ~default:0 in
              let next =
                match prev with
                | Some p when n >= widen_threshold && Hashtbl.mem wpoints l'
                  ->
                    D.widen p joined
                | _ -> joined
              in
              match prev with
              | Some p when D.equal p next -> ()
              | _ ->
                  Hashtbl.replace in_states l' next;
                  Hashtbl.replace updates l' (n + 1);
                  push l')
            (transfer l b s)
    done;
    in_states
end

module Solve = Fixpoint (struct
  type t = state

  let equal = state_equal
  let join = state_join
  let widen = state_widen
end)

(* ------------------------------------------------------------------ *)
(* Per-function semantics                                             *)
(* ------------------------------------------------------------------ *)

(* Scalar alloca registers used *only* as the pointer operand of loads
   and stores: those slots cannot alias and their contents are tracked
   exactly. Everything else (aggregates, address-taken slots) is left
   to the heap, i.e. ⊤.

   [pure] refines the one over-approximation calls used to force: an
   argument to [Call_void] of a callee proven write-free stays tracked
   — the callee can read the cell but never store through it, so the
   slot's contents survive the call. Value-returning calls still untrack
   their arguments: the callee may hand the pointer back and the caller
   could write through the alias later. *)
let tracked_slots ?(pure = fun _ -> false) (f : Instr.func) : SSet.t =
  let allocas = ref SSet.empty in
  List.iter
    (fun (_, b) ->
      List.iter
        (function
          | Instr.Assign (r, Instr.Alloca (Ty.I64 | Ty.I1 | Ty.Ptr _ | Ty.Opaque_ptr))
            -> allocas := SSet.add r !allocas
          | _ -> ())
        b.Instr.insns)
    f.Instr.blocks;
  let escape = function
    | Instr.Reg r -> allocas := SSet.remove r !allocas
    | _ -> ()
  in
  let escape_rv = function
    | Instr.Binop (_, a, b) | Instr.Byte_gep (a, b) ->
        escape a;
        escape b
    | Instr.Icmp (_, _, a, b) ->
        escape a;
        escape b
    | Instr.Not a | Instr.Bitcast a | Instr.Opaque_load (_, a) -> escape a
    | Instr.Load (_, _) -> () (* pointer position: allowed *)
    | Instr.Gep (_, base, idx) ->
        escape base;
        List.iter escape idx
    | Instr.Call (_, args) -> List.iter escape args
    | Instr.Alloca _ | Instr.Newobject _ -> ()
  in
  List.iter
    (fun (_, b) ->
      List.iter
        (function
          | Instr.Assign (_, rv) -> escape_rv rv
          | Instr.Store (_, v, _) | Instr.Opaque_store (_, v, _) ->
              escape v (* value position escapes; pointer position allowed *)
          | Instr.Call_void (name, args) ->
              if not (pure name) then List.iter escape args)
        b.Instr.insns;
      match b.Instr.term with
      | Instr.Cond_br (c, _, _) -> escape c
      | Instr.Ret (Some o) -> escape o
      | Instr.Br _ | Instr.Ret None | Instr.Panic _ | Instr.Unreachable -> ())
    f.Instr.blocks;
  (* Opaque stores write through pointers we cannot see; their pointer
     operand escapes too (only [Store]'s pointer position is exempt). *)
  List.iter
    (fun (_, b) ->
      List.iter
        (function
          | Instr.Opaque_store (_, _, p) -> escape p
          | _ -> ())
        b.Instr.insns)
    f.Instr.blocks;
  !allocas

(* One static assignment per register (well-formedness), so this is a
   function. *)
let def_map (f : Instr.func) : Instr.rvalue Env.t =
  List.fold_left
    (fun m (_, b) ->
      List.fold_left
        (fun m -> function
          | Instr.Assign (r, rv) -> Env.add r rv m
          | _ -> m)
        m b.Instr.insns)
    Env.empty f.Instr.blocks

(* ------------------------------------------------------------------ *)
(* Purity (write-freedom)                                             *)
(* ------------------------------------------------------------------ *)

(* Does [f] itself contain a store the caller could observe? Stores
   whose pointer is rooted (through Gep/Byte_gep/Bitcast) in the
   function's own [Alloca]/[Newobject] are invisible outside; anything
   else — parameter-, load- or call-derived pointers, and every opaque
   store — counts as a caller-visible write. *)
let writes_nonlocal (f : Instr.func) : bool =
  let defs = def_map f in
  let rec local_root depth (o : Instr.operand) =
    depth < 64
    &&
    match o with
    | Instr.Const_int _ | Instr.Const_bool _ | Instr.Null _ -> false
    | Instr.Reg r -> (
        match Env.find_opt r defs with
        | Some (Instr.Alloca _ | Instr.Newobject _) -> true
        | Some (Instr.Gep (_, base, _))
        | Some (Instr.Byte_gep (base, _))
        | Some (Instr.Bitcast base) ->
            local_root (depth + 1) base
        | _ -> false)
  in
  List.exists
    (fun (_, (b : Instr.block)) ->
      List.exists
        (function
          | Instr.Store (_, _, p) -> not (local_root 0 p)
          | Instr.Opaque_store _ -> true
          | Instr.Assign _ | Instr.Call_void _ -> false)
        b.Instr.insns)
    f.Instr.blocks

(* Transitively write-free functions: a syntactic least fixpoint over
   the call graph — impure if the body writes non-locally, calls an
   undefined function, or calls an impure one. Independent of the
   abstract interpretation, so the escape refinement in
   [tracked_slots] cannot feed back into itself. *)
let pure_set (prog : Instr.program) (cg : Callgraph.t) : SSet.t =
  let impure = Hashtbl.create 16 in
  List.iter
    (fun (f : Instr.func) ->
      if
        writes_nonlocal f
        || List.exists
             (fun c -> not (Callgraph.is_defined cg c))
             (Callgraph.callees cg f.Instr.fn_name)
      then Hashtbl.replace impure f.Instr.fn_name ())
    prog.Instr.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Instr.func) ->
        if
          (not (Hashtbl.mem impure f.Instr.fn_name))
          && List.exists (Hashtbl.mem impure)
               (Callgraph.callees cg f.Instr.fn_name)
        then begin
          Hashtbl.replace impure f.Instr.fn_name ();
          changed := true
        end)
      prog.Instr.funcs
  done;
  List.fold_left
    (fun acc (f : Instr.func) ->
      if Hashtbl.mem impure f.Instr.fn_name then acc
      else SSet.add f.Instr.fn_name acc)
    SSet.empty prog.Instr.funcs

type fn_ctx = {
  prog : Instr.program;
  tracked : SSet.t;
  defs : Instr.rvalue Env.t;
  lookup : string -> rsummary option; (* callee summaries, if computed *)
  fieldinv : string -> int -> aval option; (* verified field invariants *)
}

let eval_operand (s : st) : Instr.operand -> aval = function
  | Instr.Const_int n -> AInt (Interval.of_int n)
  | Instr.Const_bool b -> ABool (Tribool.of_bool b)
  | Instr.Null _ -> APtr Nullness.NNull
  | Instr.Reg r -> Option.value (Env.find_opt r s.regs) ~default:ATop

let interval_of (s : st) (o : Instr.operand) : Interval.t =
  match eval_operand s o with AInt i -> i | _ -> Interval.top

let nullness_of (s : st) (o : Instr.operand) : Nullness.t =
  match eval_operand s o with APtr n -> n | _ -> Nullness.NTop

let tribool_of (s : st) (o : Instr.operand) : Tribool.t =
  match eval_operand s o with ABool t -> t | _ -> Tribool.TTop

let icmp_interval (op : Instr.icmp) (a : Interval.t) (b : Interval.t) :
    Tribool.t =
  let open Interval in
  match (a, b) with
  | Bot, _ | _, Bot -> Tribool.TTop
  | I (l1, h1), I (l2, h2) -> (
      let lt_def =
        (* ∀x∈a ∀y∈b, x < y *)
        match (h1, l2) with Some h, Some l -> h < l | _ -> false
      and le_def =
        match (h1, l2) with Some h, Some l -> h <= l | _ -> false
      and gt_def =
        match (l1, h2) with Some l, Some h -> l > h | _ -> false
      and ge_def =
        match (l1, h2) with Some l, Some h -> l >= h | _ -> false
      in
      match op with
      | Instr.Slt ->
          if lt_def then Tribool.TT else if ge_def then Tribool.TF else Tribool.TTop
      | Instr.Sle ->
          if le_def then Tribool.TT else if gt_def then Tribool.TF else Tribool.TTop
      | Instr.Sgt ->
          if gt_def then Tribool.TT else if le_def then Tribool.TF else Tribool.TTop
      | Instr.Sge ->
          if ge_def then Tribool.TT else if lt_def then Tribool.TF else Tribool.TTop
      | Instr.Eq ->
          if is_singleton a && a = b then Tribool.TT
          else if meet a b = Bot then Tribool.TF
          else Tribool.TTop
      | Instr.Ne ->
          if is_singleton a && a = b then Tribool.TF
          else if meet a b = Bot then Tribool.TT
          else Tribool.TTop)

let icmp_nullness (op : Instr.icmp) (a : Nullness.t) (b : Nullness.t) :
    Tribool.t =
  let eq =
    match (a, b) with
    | Nullness.NNull, Nullness.NNull -> Tribool.TT
    | Nullness.NNull, Nullness.NNot | Nullness.NNot, Nullness.NNull ->
        Tribool.TF
    | _ -> Tribool.TTop
  in
  match op with
  | Instr.Eq -> eq
  | Instr.Ne -> Tribool.not_ eq
  | _ -> Tribool.TTop

let is_ptr_ty = function
  | Ty.Ptr _ | Ty.Opaque_ptr | Ty.Struct _ | Ty.Array _ -> true
  | Ty.I1 | Ty.I64 -> false

(* If register [r] is a Gep whose final navigation step selects a
   struct field, the (struct name, field index) identifying the cell it
   points at. A pointer cell is a scalar struct field exactly when the
   last step of its access path is a constant struct-field index — array
   interiors and whole-aggregate pointers return [None]. *)
let gep_field (tenv : Ty.tenv) (defs : Instr.rvalue Env.t) (r : Instr.reg) :
    (string * int) option =
  match Env.find_opt r defs with
  | Some (Instr.Gep (pointee, _base, idxs)) -> (
      let rec walk ty idxs =
        match (ty, idxs) with
        | Ty.Struct name, [ Instr.Const_int i ] ->
            (match Ty.field_at (Ty.find_struct tenv name) i with
            | _ -> Some (name, i)
            | exception Invalid_argument _ -> None)
        | Ty.Struct name, Instr.Const_int i :: rest -> (
            match Ty.field_at (Ty.find_struct tenv name) i with
            | f -> walk f.Ty.fty rest
            | exception Invalid_argument _ -> None)
        | Ty.Array (elt, _), _ :: rest -> walk elt rest
        | _, _ -> None
      in
      match walk pointee idxs with
      | some -> some
      | exception Invalid_argument _ -> None)
  | _ -> None

(* Re-verify harness-declared field invariants against the program:
   an invariant for (S, i) survives only when (a) it admits the
   zero value — every object the program itself creates ([Newobject],
   struct [Alloca]) starts zeroed, so fresh objects satisfy it — and
   (b) no store in any function can write that cell: every store's
   pointer must resolve to a scalar alloca or to a Gep whose cell is a
   *different* struct field or an array interior, and no opaque store
   exists anywhere. Any unresolvable store drops all invariants. *)
let field_invariants_filter (prog : Instr.program)
    (invs : (string * int * aval) list) : (string * int * aval) list =
  let invs =
    List.filter
      (fun (_, _, a) ->
        match a with
        | AInt iv -> Interval.mem 0 iv
        | ABool t -> Tribool.meet t Tribool.TF <> Tribool.TBot
        | APtr n -> Nullness.meet n Nullness.NNull <> Nullness.NBot
        | ATop -> true)
      invs
  in
  let written = Hashtbl.create 8 in
  let opaque_or_unresolved = ref false in
  List.iter
    (fun (f : Instr.func) ->
      let defs = def_map f in
      let resolved_safe (p : Instr.operand) =
        match p with
        | Instr.Null _ -> true (* traps, writes nothing *)
        | Instr.Const_int _ | Instr.Const_bool _ -> false
        | Instr.Reg r -> (
            match gep_field prog.Instr.tenv defs r with
            | Some (s, i) ->
                Hashtbl.replace written (s, i) ();
                true
            | None -> (
                match Env.find_opt r defs with
                | Some (Instr.Gep _) ->
                    (* resolved to an array interior or aggregate cell:
                       never a scalar struct field *)
                    true
                | Some (Instr.Alloca (Ty.I64 | Ty.I1 | Ty.Ptr _ | Ty.Opaque_ptr))
                  ->
                    true (* a scalar stack slot is no object's field *)
                | _ -> false))
      in
      List.iter
        (fun (_, (b : Instr.block)) ->
          List.iter
            (function
              | Instr.Store (_, _, p) ->
                  if not (resolved_safe p) then opaque_or_unresolved := true
              | Instr.Opaque_store _ -> opaque_or_unresolved := true
              | Instr.Assign _ | Instr.Call_void _ -> ())
            b.Instr.insns)
        f.Instr.blocks)
    prog.Instr.funcs;
  if !opaque_or_unresolved then []
  else
    List.filter (fun (s, i, _) -> not (Hashtbl.mem written (s, i))) invs

let eval_rvalue (ctx : fn_ctx) (s : st) (rv : Instr.rvalue) : aval =
  match rv with
  | Instr.Binop (op, a, b) -> (
      match op with
      | Instr.Add -> AInt (Interval.add (interval_of s a) (interval_of s b))
      | Instr.Sub -> AInt (Interval.sub (interval_of s a) (interval_of s b))
      | Instr.Mul -> AInt (Interval.mul (interval_of s a) (interval_of s b))
      | Instr.Sdiv | Instr.Srem -> AInt Interval.top
      | Instr.And_ -> ABool (Tribool.and_ (tribool_of s a) (tribool_of s b))
      | Instr.Or_ -> ABool (Tribool.or_ (tribool_of s a) (tribool_of s b))
      | Instr.Xor ->
          ABool
            (match (tribool_of s a, tribool_of s b) with
            | Tribool.TBot, _ | _, Tribool.TBot -> Tribool.TBot
            | Tribool.TT, x | x, Tribool.TT -> Tribool.not_ x
            | Tribool.TF, x | x, Tribool.TF -> x
            | Tribool.TTop, Tribool.TTop -> Tribool.TTop))
  | Instr.Icmp (op, ty, a, b) ->
      if is_ptr_ty ty then ABool (icmp_nullness op (nullness_of s a) (nullness_of s b))
      else if ty = Ty.I64 then
        ABool (icmp_interval op (interval_of s a) (interval_of s b))
      else ABool Tribool.TTop
  | Instr.Not a -> ABool (Tribool.not_ (tribool_of s a))
  | Instr.Alloca _ | Instr.Newobject _ | Instr.Gep _ | Instr.Byte_gep _ ->
      APtr Nullness.NNot
  | Instr.Bitcast o -> eval_operand s o
  | Instr.Load (ty, Instr.Reg p) when SSet.mem p ctx.tracked ->
      Option.value (Env.find_opt p s.slots) ~default:(top_of_ty ty)
  | Instr.Load (ty, o) ->
      (* A load through a pointer whose cell is a verified-invariant
         struct field is bounded by that invariant regardless of which
         object the pointer selects. *)
      let base = top_of_ty ty in
      (match o with
      | Instr.Reg r -> (
          match gep_field ctx.prog.Instr.tenv ctx.defs r with
          | Some (sname, idx) -> (
              match ctx.fieldinv sname idx with
              | Some inv -> a_meet base inv
              | None -> base)
          | None -> base)
      | _ -> base)
  | Instr.Opaque_load (ty, _) -> top_of_ty ty
  | Instr.Call (name, args) -> (
      (* Summary application replaces havoc: the return value is
         covered by the callee's [rs_ret], tightened by every
         difference bound [ret - arg_i ∈ d] instantiated with the
         argument's interval at this site. *)
      match ctx.lookup name with
      | Some rs ->
          List.fold_left
            (fun acc (i, d) ->
              match List.nth_opt args i with
              | Some a -> a_meet acc (AInt (Interval.add (interval_of s a) d))
              | None -> acc)
            rs.rs_ret rs.rs_rel
      | None -> (
          match
            List.find_opt
              (fun g -> g.Instr.fn_name = name)
              ctx.prog.Instr.funcs
          with
          | Some g -> (
              match g.Instr.ret_ty with Some ty -> top_of_ty ty | None -> ATop)
          | None -> ATop))

(* Transfer one instruction. Total: instruction effects never prove a
   state empty, only branch assumptions do. *)
let transfer_insn (ctx : fn_ctx) (s : st) (insn : Instr.instr) : st =
  match insn with
  | Instr.Assign (r, rv) ->
      let v = eval_rvalue ctx s rv in
      let s = { s with regs = Env.add r v s.regs } in
      let s =
        match rv with
        | Instr.Alloca ty when SSet.mem r ctx.tracked ->
            (* A re-executed alloca (declaration inside a loop) rebinds
               the register to a *fresh* zero slot: reset contents and
               must-init, and drop provenance into the old slot. *)
            {
              s with
              slots = Env.add r (default_of_ty ty) s.slots;
              inited = SSet.remove r s.inited;
              prov = Env.filter (fun _ s' -> not (String.equal s' r)) s.prov;
            }
        | Instr.Load (_, Instr.Reg p) when SSet.mem p ctx.tracked ->
            { s with prov = Env.add r p s.prov }
        | Instr.Bitcast (Instr.Reg q) -> (
            match Env.find_opt q s.prov with
            | Some p -> { s with prov = Env.add r p s.prov }
            | None -> s)
        | _ -> s
      in
      s
  | Instr.Store (_, v, Instr.Reg p) when SSet.mem p ctx.tracked ->
      {
        s with
        slots = Env.add p (eval_operand s v) s.slots;
        inited = SSet.add p s.inited;
        prov = Env.filter (fun _ s' -> not (String.equal s' p)) s.prov;
      }
  | Instr.Store _ | Instr.Opaque_store _ | Instr.Call_void _ ->
      (* Tracked slots cannot alias (their address never escapes), so
         stores through other pointers and calls cannot touch them. *)
      s

let transfer_insns ctx s insns = List.fold_left (transfer_insn ctx) s insns

(* ------------------------------------------------------------------ *)
(* Branch refinement                                                  *)
(* ------------------------------------------------------------------ *)

exception Bottom

(* Meet [o]'s abstract value with [v]; empty meets kill the edge.
   Register refinements propagate into the slot the register was
   loaded from when that provenance is still valid. *)
let rec refine_operand (s : st) (o : Instr.operand) (v : aval) : st =
  match o with
  | Instr.Const_int n ->
      (match v with
      | AInt i when not (Interval.mem n i) -> raise Bottom
      | _ -> ());
      s
  | Instr.Const_bool b ->
      (match v with
      | ABool t when Tribool.meet t (Tribool.of_bool b) = Tribool.TBot ->
          raise Bottom
      | _ -> ());
      s
  | Instr.Null _ ->
      (match v with
      | APtr n when Nullness.meet n Nullness.NNull = Nullness.NBot ->
          raise Bottom
      | _ -> ());
      s
  | Instr.Reg r -> (
      let cur = Option.value (Env.find_opt r s.regs) ~default:ATop in
      let met =
        match (cur, v) with
        | ATop, v -> v
        | v, ATop -> v
        | AInt a, AInt b -> AInt (Interval.meet a b)
        | ABool a, ABool b -> ABool (Tribool.meet a b)
        | APtr a, APtr b -> APtr (Nullness.meet a b)
        | a, _ -> a (* sort mismatch: keep what we had *)
      in
      if a_is_bot met then raise Bottom;
      let s = { s with regs = Env.add r met s.regs } in
      match Env.find_opt r s.prov with
      | Some slot ->
          let scur = Option.value (Env.find_opt slot s.slots) ~default:ATop in
          let smet =
            match (scur, met) with
            | ATop, v -> v
            | v, ATop -> v
            | AInt a, AInt b -> AInt (Interval.meet a b)
            | ABool a, ABool b -> ABool (Tribool.meet a b)
            | APtr a, APtr b -> APtr (Nullness.meet a b)
            | a, _ -> a
          in
          if a_is_bot smet then raise Bottom;
          { s with slots = Env.add slot smet s.slots }
      | None -> s)

and assume_icmp (ctx : fn_ctx) (s : st) (op : Instr.icmp) (ty : Ty.t)
    (a : Instr.operand) (b : Instr.operand) (truth : bool) : st =
  (* Normalize the relation assumed to hold between a and b. *)
  let rel =
    match (op, truth) with
    | Instr.Eq, true | Instr.Ne, false -> `Eq
    | Instr.Eq, false | Instr.Ne, true -> `Ne
    | Instr.Slt, true | Instr.Sge, false -> `Lt
    | Instr.Sle, true | Instr.Sgt, false -> `Le
    | Instr.Sgt, true | Instr.Sle, false -> `Gt
    | Instr.Sge, true | Instr.Slt, false -> `Ge
  in
  if ty = Ty.I64 then begin
    let ia = interval_of s a and ib = interval_of s b in
    let ia', ib' =
      match rel with
      | `Lt -> (Interval.meet ia (Interval.below ~strict:true ib),
                Interval.meet ib (Interval.above ~strict:true ia))
      | `Le -> (Interval.meet ia (Interval.below ~strict:false ib),
                Interval.meet ib (Interval.above ~strict:false ia))
      | `Gt -> (Interval.meet ia (Interval.above ~strict:true ib),
                Interval.meet ib (Interval.below ~strict:true ia))
      | `Ge -> (Interval.meet ia (Interval.above ~strict:false ib),
                Interval.meet ib (Interval.below ~strict:false ia))
      | `Eq ->
          let m = Interval.meet ia ib in
          (m, m)
      | `Ne -> (Interval.remove_point ia ib, Interval.remove_point ib ia)
    in
    if ia' = Interval.Bot || ib' = Interval.Bot then raise Bottom;
    let s = refine_operand s a (AInt ia') in
    refine_operand s b (AInt ib')
  end
  else if is_ptr_ty ty then begin
    match rel with
    | `Eq ->
        let s =
          match b with
          | Instr.Null _ -> refine_operand s a (APtr Nullness.NNull)
          | _ -> s
        in
        (match a with
        | Instr.Null _ -> refine_operand s b (APtr Nullness.NNull)
        | _ -> s)
    | `Ne ->
        let s =
          match b with
          | Instr.Null _ -> refine_operand s a (APtr Nullness.NNot)
          | _ -> s
        in
        (match a with
        | Instr.Null _ -> refine_operand s b (APtr Nullness.NNot)
        | _ -> s)
    | _ -> s
  end
  else begin
    ignore ctx;
    match rel with
    | `Eq -> (
        match (a, b) with
        | x, Instr.Const_bool k | Instr.Const_bool k, x ->
            refine_operand s x (ABool (Tribool.of_bool k))
        | _ -> s)
    | `Ne -> (
        match (a, b) with
        | x, Instr.Const_bool k | Instr.Const_bool k, x ->
            refine_operand s x (ABool (Tribool.of_bool (not k)))
        | _ -> s)
    | _ -> s
  end

(* Assume the boolean operand [o] evaluates to [truth], walking its
   defining expression to sharpen everything it derives from. *)
and assume_operand (ctx : fn_ctx) (s : st) (o : Instr.operand) (truth : bool) :
    st =
  match o with
  | Instr.Const_bool k -> if k = truth then s else raise Bottom
  | Instr.Const_int _ | Instr.Null _ -> s
  | Instr.Reg r -> (
      let s = refine_operand s o (ABool (Tribool.of_bool truth)) in
      match Env.find_opt r ctx.defs with
      | Some (Instr.Icmp (op, ty, a, b)) -> assume_icmp ctx s op ty a b truth
      | Some (Instr.Not a) -> assume_operand ctx s a (not truth)
      | Some (Instr.Binop (Instr.And_, a, b)) when truth ->
          assume_operand ctx (assume_operand ctx s a true) b true
      | Some (Instr.Binop (Instr.Or_, a, b)) when not truth ->
          (* `bad = (i < 0) | (i >= n)` assumed false refines both
             disjuncts — the shape of every frontend bounds check. *)
          assume_operand ctx (assume_operand ctx s a false) b false
      | _ -> s)

let assume (ctx : fn_ctx) (s : st) (o : Instr.operand) (truth : bool) : state =
  match assume_operand ctx s o truth with
  | s -> St s
  | exception Bottom -> Bot

(* ------------------------------------------------------------------ *)
(* Whole-function facts                                               *)
(* ------------------------------------------------------------------ *)

type edge_fact = { then_dead : bool; else_dead : bool }

(* Everything the symbolic executor wants at a [Cond_br], precomputed
   so the per-branch-execution lookup is a single hash-table probe:
   the edge fact plus whether either successor is a panic block (the
   executor's [panic_checks] accounting would otherwise re-scan the
   block list on every branch execution). [bi_interproc] marks facts
   the interprocedural layer added on top of what the PR 5
   intraprocedural pass (calls havocked, no environment) could already
   prove — the distrust cross-check and the bench gate count these. *)
type branch_info = {
  bi_fact : edge_fact;
  bi_guards_panic : bool;
  bi_interproc : bool;
}

(* Physical-identity block table: keys are blocks of the one memoized
   program value per version, so [( == )] is the right equality and
   the (bounded-depth) structural hash is merely a bucket spreader. *)
module Blocktbl = Hashtbl.Make (struct
  type t = Instr.block

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type func_facts = {
  ff_func : Instr.func;
  ff_ctx : fn_ctx;
  ff_in : (Instr.label, state) Hashtbl.t; (* absent = unreachable *)
  ff_branch : branch_info Blocktbl.t; (* physical-identity keyed *)
}

type summary = {
  sm_facts : (string, func_facts Lazy.t) Hashtbl.t;
      (* per-function final facts, forced on first query: a
         summarization-window env only ever executes its own small call
         cone, so analyzing the rest of the program eagerly for every
         distinct window would be pure waste *)
  sm_plain : (string, func_facts) Hashtbl.t;
      (* PR 5 abstraction: havoc at calls, no env — the attribution
         baseline for [bi_interproc] and heuristics calibrated to
         intraprocedural precision *)
  sm_rsums : (string, rsummary) Hashtbl.t;
  sm_cg : Callgraph.t;
  sm_store_hits : int; (* rsummaries served by the persistence hook *)
  sm_store_misses : int; (* rsummaries recomputed (and saved) *)
}

let edge_states (ctx : fn_ctx) (s : st) (t : Instr.terminator) :
    (Instr.label * state) list =
  match t with
  | Instr.Br l -> [ (l, St s) ]
  | Instr.Cond_br (c, l1, l2) ->
      [ (l1, assume ctx s c true); (l2, assume ctx s c false) ]
  | Instr.Ret _ | Instr.Panic _ | Instr.Unreachable -> []

(* One intraprocedural fixpoint. [lookup]/[fieldinv] feed summaries
   and verified heap invariants into the transfer functions; [entry]
   meets per-parameter facts into the initial state (the caller — the
   context fixpoint or an env root's declared facts — is responsible
   for their soundness); [plain] is the same function's facts under
   the PR 5 abstraction (havoc at calls, no environment) and only
   drives the [bi_interproc] attribution bit. *)
let analyze_func ?(lookup = fun _ -> None) ?(fieldinv = fun _ _ -> None)
    ?(pure = fun _ -> false) ?(entry = []) ?plain (prog : Instr.program)
    (f : Instr.func) : func_facts =
  Trace.with_span ~det:false "analyze" ~attrs:[ ("fn", f.Instr.fn_name) ]
  @@ fun () ->
  Trace.Metrics.incr m_functions;
  let ctx =
    { prog; tracked = tracked_slots ~pure f; defs = def_map f; lookup; fieldinv }
  in
  let init =
    St
      {
        regs =
          List.fold_left
            (fun m (r, ty) ->
              let v =
                match List.assoc_opt r entry with
                | Some e -> a_meet (top_of_ty ty) e
                | None -> top_of_ty ty
              in
              Env.add r v m)
            Env.empty f.Instr.params;
        slots = Env.empty;
        inited = SSet.empty;
        prov = Env.empty;
      }
  in
  let transfer _l (b : Instr.block) (s : state) =
    match s with
    | Bot -> []
    | St s -> edge_states ctx (transfer_insns ctx s b.Instr.insns) b.Instr.term
  in
  let in_states =
    Solve.solve ~blocks:f.Instr.blocks ~entry:f.Instr.entry ~init ~transfer
  in
  (* Edge facts from the converged entry states: an edge is dead when
     its branch assumption empties the state (or the block was never
     reached at all). *)
  let is_panic l =
    match List.assoc_opt l f.Instr.blocks with
    | Some (tb : Instr.block) -> (
        match tb.Instr.term with Instr.Panic _ -> true | _ -> false)
    | None -> false
  in
  let branch = Blocktbl.create 16 in
  List.iter
    (fun (l, (b : Instr.block)) ->
      match b.Instr.term with
      | Instr.Cond_br (c, l1, l2) ->
          let fact =
            match Hashtbl.find_opt in_states l with
            | None | Some Bot -> { then_dead = true; else_dead = true }
            | Some (St s) ->
                let s = transfer_insns ctx s b.Instr.insns in
                {
                  then_dead = assume ctx s c true = Bot;
                  else_dead = assume ctx s c false = Bot;
                }
          in
          let interproc =
            match plain with
            | None -> false
            | Some (pf : func_facts) -> (
                match Blocktbl.find_opt pf.ff_branch b with
                | Some pbi ->
                    (fact.then_dead && not pbi.bi_fact.then_dead)
                    || (fact.else_dead && not pbi.bi_fact.else_dead)
                | None -> fact.then_dead || fact.else_dead)
          in
          Blocktbl.replace branch b
            {
              bi_fact = fact;
              bi_guards_panic = is_panic l1 || is_panic l2;
              bi_interproc = interproc;
            }
      | _ -> ())
    f.Instr.blocks;
  { ff_func = f; ff_ctx = ctx; ff_in = in_states; ff_branch = branch }

(* ------------------------------------------------------------------ *)
(* Summary extraction                                                 *)
(* ------------------------------------------------------------------ *)

(* Parameters copied once into a non-aliasing slot in the (loop-free)
   entry block keep their entry value observable at every return: the
   branch refinements that accumulate on the slot are exactly the
   conditions the function imposed on the argument. Returns
   [slot register ↦ parameter index]. *)
let param_slot_map (ctx : fn_ctx) (f : Instr.func) : (Instr.reg * int) list =
  let entry_is_target =
    List.exists
      (fun (_, (b : Instr.block)) ->
        match b.Instr.term with
        | Instr.Br l -> String.equal l f.Instr.entry
        | Instr.Cond_br (_, l1, l2) ->
            String.equal l1 f.Instr.entry || String.equal l2 f.Instr.entry
        | _ -> false)
      f.Instr.blocks
  in
  if entry_is_target then []
  else
    let store_count slot =
      List.fold_left
        (fun n (_, (b : Instr.block)) ->
          List.fold_left
            (fun n -> function
              | Instr.Store (_, _, Instr.Reg p) when String.equal p slot ->
                  n + 1
              | _ -> n)
            n b.Instr.insns)
        0 f.Instr.blocks
    in
    let entry_insns = (Instr.find_block f f.Instr.entry).Instr.insns in
    let alloca_in_entry slot =
      List.exists
        (function
          | Instr.Assign (r, Instr.Alloca _) -> String.equal r slot
          | _ -> false)
        entry_insns
    in
    let pidx =
      List.mapi (fun i (r, _) -> (r, i)) f.Instr.params
    in
    List.filter_map
      (function
        | Instr.Store (_, Instr.Reg p, Instr.Reg slot)
          when SSet.mem slot ctx.tracked
               && List.mem_assoc p pidx
               && alloca_in_entry slot
               && store_count slot = 1 ->
            Some (slot, List.assoc p pidx)
        | _ -> None)
      entry_insns

(* Difference bounds [value(o) - param_i ∈ itv] read off the defining
   expressions, instantiated with the converged interval of the
   non-parameter side at the point [s] describes. Registers are SSA
   and single-store parameter slots replay the entry value, so every
   interval consulted covers the operand at any later program point on
   the same run. *)
let delta_of (ctx : fn_ctx) (pidx : (Instr.reg * int) list)
    (pslots : (Instr.reg * int) list) (s : st) (o : Instr.operand) :
    (int * Interval.t) list =
  let shift itv = List.map (fun (i, d) -> (i, Interval.add d itv)) in
  let merge a b =
    (* both sides are sound bounds for the same value: meet them *)
    List.fold_left
      (fun acc (i, d) ->
        match List.assoc_opt i acc with
        | None -> (i, d) :: acc
        | Some d' ->
            let m =
              match Interval.meet d d' with Interval.Bot -> d' | m -> m
            in
            (i, m) :: List.remove_assoc i acc)
      a b
  in
  let rec go depth (o : Instr.operand) =
    if depth > 12 then []
    else
      match o with
      | Instr.Reg r when List.mem_assoc r pidx ->
          [ (List.assoc r pidx, Interval.of_int 0) ]
      | Instr.Reg r -> (
          match Env.find_opt r ctx.defs with
          | Some (Instr.Load (_, Instr.Reg slot))
            when List.mem_assoc slot pslots ->
              [ (List.assoc slot pslots, Interval.of_int 0) ]
          | Some (Instr.Binop (Instr.Add, a, b)) ->
              merge
                (shift (interval_of s b) (go (depth + 1) a))
                (shift (interval_of s a) (go (depth + 1) b))
          | Some (Instr.Binop (Instr.Sub, a, b)) ->
              shift (Interval.neg (interval_of s b)) (go (depth + 1) a)
          | Some (Instr.Bitcast a) -> go (depth + 1) a
          | _ -> [])
      | Instr.Const_int _ | Instr.Const_bool _ | Instr.Null _ -> []
  in
  go 0 o

let extract_rsummary (ff : func_facts) ~(pure : bool) : rsummary =
  let f = ff.ff_func in
  let ctx = ff.ff_ctx in
  let in_state_of l =
    Option.value (Hashtbl.find_opt ff.ff_in l) ~default:Bot
  in
  let pslots = param_slot_map ctx f in
  let i64_pidx =
    List.mapi (fun i (r, ty) -> (r, ty, i)) f.Instr.params
    |> List.filter_map (fun (r, ty, i) ->
           if ty = Ty.I64 then Some (r, i) else None)
  in
  let i64_pslots =
    List.filter
      (fun (_, i) ->
        match List.nth_opt f.Instr.params i with
        | Some (_, Ty.I64) -> true
        | _ -> false)
      pslots
  in
  let nparams = List.length f.Instr.params in
  (* Fold over reachable returns. *)
  let rets = ref [] in
  List.iter
    (fun (l, (b : Instr.block)) ->
      match (b.Instr.term, in_state_of l) with
      | Instr.Ret o, St s ->
          rets := (o, transfer_insns ctx s b.Instr.insns) :: !rets
      | _ -> ())
    f.Instr.blocks;
  let rs_returns = !rets <> [] in
  let rs_ret =
    List.fold_left
      (fun acc (o, s) ->
        let v = match o with Some o -> eval_operand s o | None -> ATop in
        match acc with None -> Some v | Some a -> Some (a_join a v))
      None !rets
    |> Option.value
         ~default:
           (match f.Instr.ret_ty with
           | Some ty -> top_of_ty ty
           | None -> ATop)
  in
  let rs_rel =
    if f.Instr.ret_ty <> Some Ty.I64 then []
    else
      let per_ret =
        List.map
          (fun (o, s) ->
            match o with
            | Some o -> delta_of ctx i64_pidx i64_pslots s o
            | None -> [])
          !rets
      in
      match per_ret with
      | [] -> []
      | first :: rest ->
          (* a bound must hold at *every* return to be a postcondition *)
          List.fold_left
            (fun acc ds ->
              List.filter_map
                (fun (i, d) ->
                  match List.assoc_opt i ds with
                  | Some d' -> Some (i, Interval.join d d')
                  | None -> None)
                acc)
            first rest
          |> List.filter (fun (_, d) -> d <> Interval.top)
  in
  let rs_pre =
    (* Necessary condition for normal return: the parameter's entry
       value — read back from its single-store slot (refined by every
       guard crossed) or its SSA register — joined across returns. *)
    let slot_of i =
      List.find_opt (fun (_, j) -> j = i) pslots |> Option.map fst
    in
    List.init nparams (fun i ->
        let (pr, _) = List.nth f.Instr.params i in
        let v =
          List.fold_left
            (fun acc (_, s) ->
              let v =
                match slot_of i with
                | Some slot ->
                    Option.value (Env.find_opt slot s.slots) ~default:ATop
                | None -> Option.value (Env.find_opt pr s.regs) ~default:ATop
              in
              match acc with None -> Some v | Some a -> Some (a_join a v))
            None !rets
        in
        (i, v))
    |> List.filter_map (fun (i, v) ->
           match v with
           | Some (AInt iv) when iv <> Interval.top -> Some (i, AInt iv)
           | Some (ABool t) when t <> Tribool.TTop && t <> Tribool.TBot ->
               Some (i, ABool t)
           | Some (APtr n) when n <> Nullness.NTop && n <> Nullness.NBot ->
               Some (i, APtr n)
           | _ -> None)
  in
  let rs_may_panic =
    (* a reachable panic terminator, or a reachable call into a
       callee that may itself panic (unknown callees may) *)
    List.exists
      (fun (l, (b : Instr.block)) ->
        match in_state_of l with
        | Bot -> false
        | St _ -> (
            (match b.Instr.term with Instr.Panic _ -> true | _ -> false)
            || List.exists
                 (function
                   | Instr.Assign (_, Instr.Call (name, _))
                   | Instr.Call_void (name, _) -> (
                       match ctx.lookup name with
                       | Some rs -> rs.rs_may_panic
                       | None -> true)
                   | _ -> false)
                 b.Instr.insns))
      f.Instr.blocks
  in
  {
    rs_fn = f.Instr.fn_name;
    rs_params = f.Instr.params;
    rs_ret_ty = f.Instr.ret_ty;
    rs_ret;
    rs_rel;
    rs_pre;
    rs_pure = pure;
    rs_may_panic;
    rs_returns;
  }

(* ------------------------------------------------------------------ *)
(* Whole-program analysis                                             *)
(* ------------------------------------------------------------------ *)

(* How many downward refinement rounds an SCC gets: summaries start at
   the havoc top (sound for any fixpoint), and each recomputation with
   a sound table is itself sound, so truncation anywhere is safe —
   more rounds only tighten. *)
let scc_rounds = 3

(* Bound on the ascending context fixpoint before giving up (all
   non-roots revert soundly to ⊤-parameter contexts). *)
let context_rounds prog = (2 * List.length prog.Instr.funcs) + 4

(* Per-program (physical identity) memo for the env-independent parts
   of an analysis: callgraph, purity, and the plain PR 5 facts. Every
   env over the same program shares them. *)
type analyze_base = {
  ab_cg : Callgraph.t;
  ab_pure : SSet.t;
  ab_plain : (string, func_facts) Hashtbl.t;
}

let base_memo_key : (Instr.program * analyze_base) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let analyze_base (prog : Instr.program) : analyze_base =
  let memo = Domain.DLS.get base_memo_key in
  match List.find_opt (fun (p, _) -> p == prog) !memo with
  | Some (_, b) -> b
  | None ->
      let cg = Callgraph.build prog in
      let plain = Hashtbl.create 16 in
      List.iter
        (fun (f : Instr.func) ->
          Hashtbl.replace plain f.Instr.fn_name (analyze_func prog f))
        prog.Instr.funcs;
      let b = { ab_cg = cg; ab_pure = pure_set prog cg; ab_plain = plain } in
      if List.length !memo >= 8 then memo := [];
      memo := (prog, b) :: !memo;
      b

(* Relational summaries per (program, filtered-field-invariant digest):
   every summarization-window env has no field invariants, so they all
   share one table per program. The persistence hook is part of the key
   (by identity) so a freshly installed store still sees its loads and
   saves. *)
let rsums_memo_key :
    ((Instr.program * string * ip_persist option)
    * ((string, rsummary) Hashtbl.t * int * int))
    list
    ref
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let analyze ?env (prog : Instr.program) : summary =
  let { ab_cg = cg; ab_pure = pure; ab_plain = plain } = analyze_base prog in
  let is_pure fn = SSet.mem fn pure in
  let fields =
    match env with
    | None -> []
    | Some e -> field_invariants_filter prog e.env_fields
  in
  let fieldinv sname idx =
    List.find_map
      (fun (s, i, a) -> if s = sname && i = idx then Some a else None)
      fields
  in
  let find_fn fn = List.find (fun g -> g.Instr.fn_name = fn) prog.Instr.funcs in
  (* Bottom-up relational summaries over the SCC condensation, served
     from the persistence hook when installed. Cycles start at havoc
     and are refined a bounded number of rounds. *)
  let persist = ip_persist_installed () in
  let rsums : (string, rsummary) Hashtbl.t = Hashtbl.create 16 in
  let lookup fn = Hashtbl.find_opt rsums fn in
  let hits = ref 0 and misses = ref 0 in
  (* Everything the summaries depend on besides the function's own call
     cone: the surviving field invariants (already program-filtered). *)
  let envfp =
    Digest.to_hex
      (Digest.string
         (String.concat ";"
            (List.map
               (fun (s, i, a) ->
                 Format.asprintf "%s.%d=%a" s i pp_aval a)
               fields)))
  in
  let load_persisted fn =
    match persist with
    | None -> None
    | Some p -> (
        match p.ipp_load ~envfp fn with
        | Some rs when rsummary_matches (find_fn fn) rs -> Some rs
        | _ -> None)
  in
  let save_persisted fn rs =
    match persist with None -> () | Some p -> p.ipp_save ~envfp fn rs
  in
  let compute fn =
    let f = find_fn fn in
    let ff = analyze_func ~lookup ~fieldinv ~pure:is_pure prog f in
    extract_rsummary ff ~pure:(is_pure fn)
  in
  (let memo = Domain.DLS.get rsums_memo_key in
   match
     List.find_opt
       (fun ((p, fp, pr), _) -> p == prog && fp = envfp && pr == persist)
       !memo
   with
   | Some (_, (tbl, h, m)) ->
       Hashtbl.iter (fun fn rs -> Hashtbl.replace rsums fn rs) tbl;
       hits := h;
       misses := m
   | None ->
       List.iter
         (fun scc ->
           let cyclic =
             match scc with [ one ] -> Callgraph.in_cycle cg one | _ -> true
           in
           let loaded = List.filter_map (fun fn ->
               Option.map (fun rs -> (fn, rs)) (load_persisted fn)) scc
           in
           if List.length loaded = List.length scc then begin
             hits := !hits + List.length scc;
             List.iter (fun (fn, rs) -> Hashtbl.replace rsums fn rs) loaded
           end
           else begin
             misses := !misses + List.length scc;
             if not cyclic then
               List.iter
                 (fun fn ->
                   let rs = compute fn in
                   Hashtbl.replace rsums fn rs;
                   save_persisted fn rs)
                 scc
             else begin
               List.iter
                 (fun fn ->
                   Hashtbl.replace rsums fn (havoc_rsummary (find_fn fn)))
                 scc;
               for _round = 1 to scc_rounds do
                 List.iter (fun fn -> Hashtbl.replace rsums fn (compute fn)) scc
               done;
               List.iter
                 (fun fn -> save_persisted fn (Hashtbl.find rsums fn))
                 scc
             end
           end)
         (Callgraph.sccs cg);
       if List.length !memo >= 16 then memo := [];
       memo := ((prog, envfp, persist), (Hashtbl.copy rsums, !hits, !misses)) :: !memo);
  (* Context fixpoint: with an env, every non-root function's
     parameters are narrowed to the join of all syntactic call-site
     arguments, iterated (ascending, widened) to a least fixpoint.
     Roots — and anything the roots cannot reach, which is never
     called and never harvested — keep ⊤ parameters (met with declared
     entry facts for roots). *)
  let contexts : (string, (string * aval) list) Hashtbl.t =
    Hashtbl.create 16
  in
  (match env with
  | None -> ()
  | Some e ->
      (* Only the declared roots: a function the roots cannot reach
         never runs under the env's contract, so its call sites must
         not join into anyone's context (it keeps ⊤ parameters itself
         simply by never receiving one). *)
      let roots = SSet.of_list e.env_roots in
      let reach = Callgraph.reachable_from cg (SSet.elements roots) in
      let entry_facts fn =
        match List.assoc_opt fn e.env_entry with
        | None -> []
        | Some l ->
            let f = find_fn fn in
            List.filter_map
              (fun (i, a) ->
                Option.map (fun (r, _) -> (r, a)) (List.nth_opt f.Instr.params i))
              l
      in
      let is_root fn = SSet.mem fn roots in
      (* per-function param context: None = not yet called (⊥),
         Some assoc = join so far (absent param = ⊥ too… params are
         always all present once called) *)
      let cur : (string, (string * aval) list) Hashtbl.t =
        Hashtbl.create 16
      in
      let a_eq (a : (string * aval) list) b =
        List.length a = List.length b
        && List.for_all2 (fun (r, v) (r', v') -> r = r' && v = v') a b
      in
      let rounds = context_rounds prog in
      let converged = ref false in
      let round = ref 0 in
      while (not !converged) && !round < rounds do
        incr round;
        let next : (string, (string * aval) list) Hashtbl.t =
          Hashtbl.create 16
        in
        let add_call callee (args : aval list) =
          if
            Callgraph.is_defined cg callee
            && (not (is_root callee))
            && Callgraph.SSet.mem callee reach
          then
            let g = find_fn callee in
            if List.length g.Instr.params = List.length args then begin
              let fresh =
                List.map2 (fun (r, _) a -> (r, a)) g.Instr.params args
              in
              match Hashtbl.find_opt next callee with
              | None -> Hashtbl.replace next callee fresh
              | Some old ->
                  Hashtbl.replace next callee
                    (List.map2
                       (fun (r, v) (_, v') -> (r, a_join v v'))
                       old fresh)
            end
        in
        let harvest fn (entry : (string * aval) list) =
          let f = find_fn fn in
          let ff =
            analyze_func ~lookup ~fieldinv ~pure:is_pure ~entry prog f
          in
          List.iter
            (fun (l, (b : Instr.block)) ->
              match Hashtbl.find_opt ff.ff_in l with
              | None | Some Bot -> ()
              | Some (St s0) ->
                  ignore
                    (List.fold_left
                       (fun s insn ->
                         (match insn with
                         | Instr.Assign (_, Instr.Call (callee, args))
                         | Instr.Call_void (callee, args) ->
                             add_call callee
                               (List.map (eval_operand s) args)
                         | _ -> ());
                         transfer_insn ff.ff_ctx s insn)
                       s0 b.Instr.insns))
            f.Instr.blocks
        in
        (* roots always run; non-roots run once they have a context *)
        List.iter
          (fun (f : Instr.func) ->
            let fn = f.Instr.fn_name in
            if Callgraph.SSet.mem fn reach then
              if is_root fn then harvest fn (entry_facts fn)
              else
                match Hashtbl.find_opt cur fn with
                | Some c -> harvest fn c
                | None -> ())
          prog.Instr.funcs;
        (* join-with-previous plus widening keeps the chain ascending
           and finite *)
        let stable = ref true in
        Hashtbl.iter
          (fun fn fresh ->
            let nu =
              match Hashtbl.find_opt cur fn with
              | None -> fresh
              | Some old ->
                  List.map2
                    (fun (r, ov) (_, nv) ->
                      let j = a_join ov nv in
                      (r, if !round > 3 then a_widen ov j else j))
                    old fresh
            in
            (match Hashtbl.find_opt cur fn with
            | Some old when a_eq old nu -> ()
            | _ -> stable := false);
            Hashtbl.replace cur fn nu)
          next;
        (* a function called last round but not this one keeps its
           old context (monotone accumulation) *)
        converged := !stable
      done;
      if not !converged then Hashtbl.reset cur;
      List.iter
        (fun (f : Instr.func) ->
          let fn = f.Instr.fn_name in
          if is_root fn then Hashtbl.replace contexts fn (entry_facts fn)
          else
            match Hashtbl.find_opt cur fn with
            | Some c when !converged -> Hashtbl.replace contexts fn c
            | _ -> ())
        prog.Instr.funcs);
  (* Final facts with converged contexts, attributed against plain —
     computed lazily so an env that only ever executes a small call
     cone (a summarization window) never pays for the rest. *)
  let facts = Hashtbl.create 16 in
  List.iter
    (fun (f : Instr.func) ->
      let fn = f.Instr.fn_name in
      let entry =
        Option.value (Hashtbl.find_opt contexts fn) ~default:[]
      in
      Hashtbl.replace facts fn
        (lazy
          (analyze_func ~lookup ~fieldinv ~pure:is_pure ~entry
             ?plain:(Hashtbl.find_opt plain fn) prog f)))
    prog.Instr.funcs;
  {
    sm_facts = facts;
    sm_plain = plain;
    sm_rsums = rsums;
    sm_cg = cg;
    sm_store_hits = !hits;
    sm_store_misses = !misses;
  }

(* Domain-local memo keyed on the program's physical identity plus the
   (structural) environment: the compile memo in Engine.Versions
   already guarantees one program value per version per domain, so
   re-verification never re-analyzes. *)
let memo_key : ((Instr.program * env option) * summary) list ref Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> ref [])

let memo_limit = 256

let summarize ?env (prog : Instr.program) : summary =
  let memo = Domain.DLS.get memo_key in
  match
    List.find_opt (fun ((p, e), _) -> p == prog && e = env) !memo
  with
  | Some (_, s) -> s
  | None ->
      let s = analyze ?env prog in
      (* keep the newest half — each engine version accumulates one
         harness env plus a handful of summarization-window envs *)
      if List.length !memo >= memo_limit then
        memo := List.filteri (fun i _ -> i < memo_limit / 2) !memo;
      memo := ((prog, env), s) :: !memo;
      s

let clear_memo () =
  Domain.DLS.get memo_key := [];
  Domain.DLS.get base_memo_key := [];
  Domain.DLS.get rsums_memo_key := []

(* ------------------------------------------------------------------ *)
(* Query API                                                          *)
(* ------------------------------------------------------------------ *)

let func_facts (s : summary) (fn : string) : func_facts option =
  Option.map Lazy.force (Hashtbl.find_opt s.sm_facts fn)

let rsummary_of (s : summary) (fn : string) : rsummary option =
  Hashtbl.find_opt s.sm_rsums fn

let callgraph (s : summary) : Callgraph.t = s.sm_cg
let store_traffic (s : summary) = (s.sm_store_hits, s.sm_store_misses)

(* Aggregate numbers for `dnsv lint --json` and the CI stats upload. *)
let interproc_stats (s : summary) : (string * int) list =
  let n pred = Hashtbl.fold (fun _ rs acc -> if pred rs then acc + 1 else acc) s.sm_rsums 0 in
  let nbranch pred =
    Hashtbl.fold
      (fun _ ff acc ->
        Blocktbl.fold (fun _ bi acc -> if pred bi then acc + 1 else acc) (Lazy.force ff).ff_branch acc)
      s.sm_facts 0
  in
  [
    ("functions", Hashtbl.length s.sm_rsums);
    ("pure", n (fun rs -> rs.rs_pure));
    ("may_panic", n (fun rs -> rs.rs_may_panic));
    ("with_ret_bounds", n (fun rs -> rs.rs_ret <> ATop
      && (match rs.rs_ret_ty with Some Ty.I64 -> rs.rs_ret <> AInt Interval.top | Some Ty.I1 -> rs.rs_ret <> ABool Tribool.TTop | Some _ -> rs.rs_ret <> APtr Nullness.NTop | None -> false)));
    ("with_rel_bounds", n (fun rs -> rs.rs_rel <> []));
    ("with_preconditions", n (fun rs -> rs.rs_pre <> []));
    ("store_hits", s.sm_store_hits);
    ("store_misses", s.sm_store_misses);
    ("branches", nbranch (fun _ -> true));
    ("interproc_branch_facts", nbranch (fun bi -> bi.bi_interproc));
  ]

(* The executor's lookup: facts for the conditional branch terminating
   [b]. The block is matched by physical identity — the executor and
   the analysis walk the same program value. *)
let branch_info (ff : func_facts) (b : Instr.block) : branch_info option =
  Blocktbl.find_opt ff.ff_branch b

let branch_fact (s : summary) (fn : string) (b : Instr.block) :
    edge_fact option =
  match Hashtbl.find_opt s.sm_facts fn with
  | None -> None
  | Some ff -> Option.map (fun bi -> bi.bi_fact) (branch_info (Lazy.force ff) b)

let in_state (s : summary) ~(fn : string) ~(label : Instr.label) :
    state option =
  match Hashtbl.find_opt s.sm_facts fn with
  | None -> None
  | Some ff ->
      let ff = Lazy.force ff in
      Some (Option.value (Hashtbl.find_opt ff.ff_in label) ~default:Bot)

let reachable (s : summary) ~(fn : string) ~(label : Instr.label) : bool =
  match in_state s ~fn ~label with
  | Some (St _) -> true
  | Some Bot | None -> false

(* ------------------------------------------------------------------ *)
(* Concretization check (the soundness test's γ relation)             *)
(* ------------------------------------------------------------------ *)

let value_in_aval (v : Value.t) (a : aval) : bool =
  match (a, v) with
  | ATop, _ -> true
  | AInt i, Value.VInt n -> Interval.mem n i
  | ABool t, Value.VBool b ->
      Tribool.meet t (Tribool.of_bool b) <> Tribool.TBot
  | APtr n, Value.VNull -> Nullness.meet n Nullness.NNull <> Nullness.NBot
  | APtr n, Value.VPtr _ -> Nullness.meet n Nullness.NNot <> Nullness.NBot
  | _, Value.VUnit -> true
  | _ -> false (* sort mismatch: the abstraction is wrong *)

(* Is the concrete frame/memory at some block entry inside [state]?
   [lookup] reads a register from the live frame (absent registers are
   vacuously fine); [load] reads a slot's cell through the pointer the
   slot register currently holds. *)
let check_concrete (state : state) ~(lookup : string -> Value.t option)
    ~(load : Value.ptr -> Value.t option) : (unit, string) result =
  match state with
  | Bot -> Error "concrete execution reached a block the analysis proved dead"
  | St s ->
      let err = ref None in
      let fail fmt = Format.kasprintf (fun m -> if !err = None then err := Some m) fmt in
      Env.iter
        (fun r a ->
          match lookup r with
          | None -> ()
          | Some v ->
              if not (value_in_aval v a) then
                fail "register %%%s = %a outside %a" r Value.pp v pp_aval a)
        s.regs;
      Env.iter
        (fun slot a ->
          match lookup slot with
          | Some (Value.VPtr p) -> (
              match load p with
              | Some v ->
                  if not (value_in_aval v a) then
                    fail "slot %%%s = %a outside %a" slot Value.pp v pp_aval a
              | None -> ())
          | _ -> ())
        s.slots;
      (match !err with Some m -> Error m | None -> Ok ())

(* ------------------------------------------------------------------ *)
(* Lint                                                               *)
(* ------------------------------------------------------------------ *)

module Lint = struct
  type severity = Error | Warning | Info

  let severity_to_string = function
    | Error -> "error"
    | Warning -> "warning"
    | Info -> "info"

  type finding = {
    rule : string;
    severity : severity;
    fn : string;
    block : Instr.label;
    index : int; (* instruction index in the block; -1 = terminator *)
    message : string;
  }

  (* CFG reachability ignoring abstract states: blocks with no path
     from entry at all are frontend artifacts (e.g. the implicit
     "missing return" continuation) and are not worth reporting. A
     branch on a literal constant is treated as the unconditional jump
     it is — `for {}` compiles to `br true, body, exit`, and its exit
     block is an artifact too, not dead user code. *)
  let graph_reachable (f : Instr.func) : SSet.t =
    let seen = ref SSet.empty in
    let rec go l =
      if not (SSet.mem l !seen) then begin
        seen := SSet.add l !seen;
        match (Instr.find_block f l).Instr.term with
        | Instr.Br l' -> go l'
        | Instr.Cond_br (Instr.Const_bool true, l1, _) -> go l1
        | Instr.Cond_br (Instr.Const_bool false, _, l2) -> go l2
        | Instr.Cond_br (_, l1, l2) ->
            go l1;
            go l2
        | Instr.Ret _ | Instr.Panic _ | Instr.Unreachable -> ()
      end
    in
    go f.Instr.entry;
    !seen

  (* Backward may-liveness of tracked slots, for dead-store findings:
     a slot is live at a point if some path from there loads it before
     any store kills it (re-allocation kills it too). *)
  let slot_liveness (ff : func_facts) : (Instr.label, SSet.t) Hashtbl.t =
    let f = ff.ff_func in
    let tracked = ff.ff_ctx.tracked in
    let live_in = Hashtbl.create 16 in
    let live_out l =
      let succs =
        match (Instr.find_block f l).Instr.term with
        | Instr.Br l' -> [ l' ]
        | Instr.Cond_br (_, l1, l2) -> [ l1; l2 ]
        | _ -> []
      in
      List.fold_left
        (fun acc l' ->
          SSet.union acc
            (Option.value (Hashtbl.find_opt live_in l') ~default:SSet.empty))
        SSet.empty succs
    in
    let transfer_back (b : Instr.block) (live : SSet.t) : SSet.t =
      List.fold_left
        (fun live insn ->
          match insn with
          | Instr.Assign (_, Instr.Load (_, Instr.Reg p))
            when SSet.mem p tracked ->
              SSet.add p live
          | Instr.Assign (r, Instr.Alloca _) when SSet.mem r tracked ->
              SSet.remove r live
          | Instr.Store (_, _, Instr.Reg p) when SSet.mem p tracked ->
              SSet.remove p live
          | Instr.Call_void (_, args) ->
              (* a tracked slot can only appear here when the callee is
                 pure (anything else untracks it) — a read, not a kill *)
              List.fold_left
                (fun live -> function
                  | Instr.Reg q when SSet.mem q tracked -> SSet.add q live
                  | _ -> live)
                live args
          | _ -> live)
        live (List.rev b.Instr.insns)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (l, b) ->
          let nu = transfer_back b (live_out l) in
          let old =
            Option.value (Hashtbl.find_opt live_in l) ~default:SSet.empty
          in
          if not (SSet.equal nu old) then begin
            Hashtbl.replace live_in l nu;
            changed := true
          end)
        (List.rev f.Instr.blocks)
    done;
    live_in

  (* Syntactic leaves of a branch condition: the I64 comparisons it is
     built from (through Not/And/Or). Used by the off-by-one heuristic
     below. *)
  let rec icmp_leaves (defs : Instr.rvalue Env.t) (o : Instr.operand) :
      (Instr.icmp * Ty.t * Instr.operand * Instr.operand) list =
    match o with
    | Instr.Reg r -> (
        match Env.find_opt r defs with
        | Some (Instr.Icmp (op, ty, a, b)) -> [ (op, ty, a, b) ]
        | Some (Instr.Not a) -> icmp_leaves defs a
        | Some (Instr.Binop ((Instr.And_ | Instr.Or_), a, b)) ->
            icmp_leaves defs a @ icmp_leaves defs b
        | _ -> [])
    | _ -> []

  let lint_func ?plain (ff : func_facts) : finding list =
    let f = ff.ff_func in
    let ctx = ff.ff_ctx in
    let fn = f.Instr.fn_name in
    let findings = ref [] in
    let report rule severity block index fmt =
      Format.kasprintf
        (fun message ->
          findings := { rule; severity; fn; block; index; message } :: !findings)
        fmt
    in
    let reach = graph_reachable f in
    let liveness = slot_liveness ff in
    let in_state_of l =
      Option.value (Hashtbl.find_opt ff.ff_in l) ~default:Bot
    in
    let is_panic l =
      match (Instr.find_block f l).Instr.term with
      | Instr.Panic _ -> true
      | _ -> false
    in
    (* Dead blocks: CFG-reachable yet proved unreachable. Panic blocks
       are excluded — an unreachable panic is the *good* outcome and is
       counted as discharged, not reported. *)
    List.iter
      (fun (l, (b : Instr.block)) ->
        if
          SSet.mem l reach
          && in_state_of l = Bot
          && (match b.Instr.term with Instr.Panic _ -> false | _ -> true)
        then report "dead-block" Info l (-1) "block is statically unreachable")
      f.Instr.blocks;
    (* Per-block instruction walk with the running abstract state. *)
    List.iter
      (fun (l, (b : Instr.block)) ->
        match in_state_of l with
        | Bot -> ()
        | St s0 ->
            let live_after_store idx p =
              (* Live just after instruction [idx]: replay the backward
                 transfer over the remaining instructions of the block
                 against the block's live-out. *)
              let rest =
                List.filteri (fun i _ -> i > idx) b.Instr.insns
              in
              let out =
                match b.Instr.term with
                | Instr.Br l' ->
                    Option.value (Hashtbl.find_opt liveness l')
                      ~default:SSet.empty
                | Instr.Cond_br (_, l1, l2) ->
                    SSet.union
                      (Option.value (Hashtbl.find_opt liveness l1)
                         ~default:SSet.empty)
                      (Option.value (Hashtbl.find_opt liveness l2)
                         ~default:SSet.empty)
                | _ -> SSet.empty
              in
              let live =
                List.fold_left
                  (fun live insn ->
                    match insn with
                    | Instr.Assign (_, Instr.Load (_, Instr.Reg q))
                      when SSet.mem q ctx.tracked ->
                        SSet.add q live
                    | Instr.Assign (r, Instr.Alloca _)
                      when SSet.mem r ctx.tracked ->
                        SSet.remove r live
                    | Instr.Store (_, _, Instr.Reg q)
                      when SSet.mem q ctx.tracked ->
                        SSet.remove q live
                    | Instr.Call_void (_, args) ->
                        List.fold_left
                          (fun live -> function
                            | Instr.Reg q when SSet.mem q ctx.tracked ->
                                SSet.add q live
                            | _ -> live)
                          live args
                    | _ -> live)
                  out (List.rev rest)
              in
              SSet.mem p live
            in
            let alloca_index = Hashtbl.create 4 in
            List.iteri
              (fun i insn ->
                match insn with
                | Instr.Assign (r, Instr.Alloca _) ->
                    Hashtbl.replace alloca_index r i
                | _ -> ())
              b.Instr.insns;
            let check_call s i callee (args : Instr.operand list) =
              match ctx.lookup callee with
              | None -> ()
              | Some rs ->
                  let n = List.length rs.rs_params in
                  if List.length args <> n then
                    report "call-arity" Error l i
                      "call to %s passes %d argument(s), %s expects %d" callee
                      (List.length args) callee n
                  else begin
                    List.iteri
                      (fun j arg ->
                        let _, pty = List.nth rs.rs_params j in
                        let bad =
                          match (arg, pty) with
                          | Instr.Const_int _, Ty.I64 -> false
                          | Instr.Const_int _, _ -> true
                          | Instr.Const_bool _, Ty.I1 -> false
                          | Instr.Const_bool _, _ -> true
                          | Instr.Null _, t -> not (is_ptr_ty t)
                          | Instr.Reg _, _ -> false
                        in
                        if bad then
                          report "ill-typed-call" Error l i
                            "argument %d of call to %s does not fit \
                             parameter type %s"
                            j callee (Ty.to_string pty))
                      args;
                    (* Guaranteed panic: the callee provably never
                       returns normally (and can panic), or this site
                       passes an argument wholly outside a necessary
                       condition for normal return. *)
                    if rs.rs_may_panic then
                      if not rs.rs_returns then
                        report "guaranteed-panic" Error l i
                          "call to %s can never return normally" callee
                      else
                        List.iter
                          (fun (j, pre) ->
                            match List.nth_opt args j with
                            | Some a
                              when not (a_compatible (eval_operand s a) pre)
                              ->
                                report "guaranteed-panic" Error l i
                                  "argument %d of call to %s is %a, outside \
                                   the values (%a) %s ever returns normally \
                                   with"
                                  j callee pp_aval (eval_operand s a) pp_aval
                                  pre callee
                            | _ -> ())
                          rs.rs_pre
                  end
            in
            let _ =
              List.fold_left
                (fun (s, i) insn ->
                  (match insn with
                  | Instr.Assign (_, Instr.Call (callee, args))
                  | Instr.Call_void (callee, args) ->
                      check_call s i callee args
                  | _ -> ());
                  (match insn with
                  | Instr.Assign (_, Instr.Binop ((Instr.Sdiv | Instr.Srem), _, d))
                    -> (
                      match interval_of s d with
                      | Interval.I (Some 0, Some 0) ->
                          report "div-by-zero" Error l i
                            "division by a value that is always zero"
                      | iv when Interval.mem 0 iv && Interval.finite iv ->
                          report "div-by-maybe-zero" Warning l i
                            "divisor %a may be zero" Interval.pp iv
                      | _ -> ())
                  | Instr.Assign (_, Instr.Load (_, o))
                  | Instr.Store (_, _, o)
                  | Instr.Assign (_, Instr.Gep (_, o, _)) -> (
                      match nullness_of s o with
                      | Nullness.NNull ->
                          report "nil-deref" Error l i
                            "pointer is always nil here"
                      | _ -> ())
                  | _ -> ());
                  (match insn with
                  | Instr.Assign (_, Instr.Load (_, Instr.Reg p))
                    when SSet.mem p ctx.tracked
                         && (not (SSet.mem p s.inited))
                         && not (Hashtbl.mem alloca_index p) ->
                      (* Loaded before any store on some path. Minir
                         zero-initializes slots, so this is Go-legal —
                         but loads in the declaring block come straight
                         from `var x T; use x`, worth a note. *)
                      report "use-before-init" Info l i
                        "slot %%%s is read before any store on some path" p
                  | _ -> ());
                  (match insn with
                  | Instr.Store (_, _, Instr.Reg p)
                    when SSet.mem p ctx.tracked
                         && (not (live_after_store i p))
                         && not (Hashtbl.mem alloca_index p) ->
                      (* Initializer stores (same block as the alloca)
                         are the frontend's `var x = e` shape and are
                         exempt; anything else stored and never loaded
                         again is a dead store. *)
                      report "dead-store" Warning l i
                        "value stored to %%%s is never read" p
                  | _ -> ());
                  (transfer_insn ctx s insn, i + 1))
                (s0, 0) b.Instr.insns
            in
            let s = transfer_insns ctx s0 b.Instr.insns in
            (* Reachable panic guards: a conditional edge into a panic
               block that survives abstract interpretation. Reported
               only when the guard is decided by *constant* data (every
               integer comparison it is built from has finite bounds
               under the *plain* intraprocedural state — interprocedural
               summaries bound call results too, which would misread a
               symbolic-input-bounded check as constant data; those are
               the verifier's job, not the linter's). Guards that are
               definitely taken are errors outright. *)
            (match b.Instr.term with
            | Instr.Cond_br (c, l1, l2) ->
                let edges =
                  [ (true, l1); (false, l2) ]
                  |> List.filter (fun (_, t) -> is_panic t)
                in
                let plain_state =
                  match plain with
                  | None -> Some s
                  | Some (pf : func_facts) -> (
                      match Hashtbl.find_opt pf.ff_in l with
                      | Some (St ps) ->
                          Some (transfer_insns pf.ff_ctx ps b.Instr.insns)
                      | Some Bot | None -> None)
                in
                List.iter
                  (fun (truth, target) ->
                    if assume ctx s c truth <> Bot then begin
                      let tb = tribool_of s c in
                      let definite =
                        tb = Tribool.of_bool truth
                      in
                      let leaves = icmp_leaves ctx.defs c in
                      let finite_leaves =
                        match plain_state with
                        | None -> false
                        | Some ps ->
                            leaves <> []
                            && List.for_all
                                 (fun (_, ty, a, b) ->
                                   ty = Ty.I64
                                   && Interval.finite (interval_of ps a)
                                   && Interval.finite (interval_of ps b))
                                 leaves
                      in
                      if definite then
                        report "reachable-panic" Error l (-1)
                          "panic %S is always reached from this branch"
                          (match (Instr.find_block f target).Instr.term with
                          | Instr.Panic m -> m
                          | _ -> "?")
                      else if finite_leaves then
                        report "reachable-panic" Error l (-1)
                          "panic %S is reachable with constant bounds \
                           (likely off-by-one)"
                          (match (Instr.find_block f target).Instr.term with
                          | Instr.Panic m -> m
                          | _ -> "?")
                    end)
                  edges
            | _ -> ()))
      f.Instr.blocks;
    List.rev !findings

  (* [entries] — when given, functions unreachable through call edges
     from any entry are reported (the dead-callee class). Left off for
     library-style programs where every function is a potential entry. *)
  let run ?env ?entries (prog : Instr.program) : finding list =
    let summary = summarize ?env prog in
    let per_fn =
      List.concat_map
        (fun (f : Instr.func) ->
          match Hashtbl.find_opt summary.sm_facts f.Instr.fn_name with
          | Some ff ->
              lint_func
                ?plain:(Hashtbl.find_opt summary.sm_plain f.Instr.fn_name)
                (Lazy.force ff)
          | None -> [])
        prog.Instr.funcs
    in
    let dead_callees =
      match entries with
      | None -> []
      | Some es ->
          let reach = Callgraph.reachable_from summary.sm_cg es in
          List.filter_map
            (fun (f : Instr.func) ->
              if Callgraph.SSet.mem f.Instr.fn_name reach then None
              else
                Some
                  {
                    rule = "dead-callee";
                    severity = Warning;
                    fn = f.Instr.fn_name;
                    block = f.Instr.entry;
                    index = -1;
                    message =
                      Printf.sprintf
                        "function %s is unreachable from every engine entry"
                        f.Instr.fn_name;
                  })
            prog.Instr.funcs
    in
    per_fn @ dead_callees

  (* ---------------------------------------------------------------- *)
  (* Rendering                                                        *)
  (* ---------------------------------------------------------------- *)

  let pp_finding fmt (x : finding) =
    Format.fprintf fmt "%s: %s/%s%s: [%s] %s"
      (severity_to_string x.severity)
      x.fn x.block
      (if x.index >= 0 then Printf.sprintf ":%d" x.index else "")
      x.rule x.message

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let counts (fs : finding list) =
    let n sev = List.length (List.filter (fun f -> f.severity = sev) fs) in
    (n Error, n Warning, n Info)

  (* One JSON object per lint run; deterministic (program order). *)
  let to_json (fs : finding list) : string =
    let b = Buffer.create 1024 in
    let errors, warnings, infos = counts fs in
    Printf.bprintf b
      "{\"counts\": {\"error\": %d, \"warning\": %d, \"info\": %d}, \
       \"findings\": ["
      errors warnings infos;
    List.iteri
      (fun i (x : finding) ->
        Printf.bprintf b
          "%s\n  {\"rule\": \"%s\", \"severity\": \"%s\", \"fn\": \"%s\", \
           \"block\": \"%s\", \"index\": %d, \"message\": \"%s\"}"
          (if i = 0 then "" else ",")
          (json_escape x.rule)
          (severity_to_string x.severity)
          (json_escape x.fn) (json_escape x.block) x.index
          (json_escape x.message))
      fs;
    Buffer.add_string b "]}";
    Buffer.contents b
end
