(* Forward abstract interpretation over Minir CFGs.

   A classic worklist fixpoint (join at block entry, widening after
   repeated updates) instantiated with a product domain:

   - intervals for I64 registers and stack slots,
   - nullness for pointers,
   - tribools for I1,
   - definite-initialization (must-store) for stack slots.

   The input is assumed well-formed ([Minir.Wellform.check]): every
   register has exactly one static assignment, which makes the def map
   a function and lets branch refinement walk a condition's defining
   expression (through [Not], [And_]/[Or_] and [Icmp]) to tighten the
   operands' abstract values on each outgoing edge.

   Stack slots (registers assigned by [Alloca]) are tracked only while
   they cannot alias: a slot whose register is used anywhere other than
   as the pointer operand of a [Load]/[Store] escapes and is dropped
   from the slot environment. Loads from tracked slots additionally
   record *provenance* (register r was loaded from slot s, still
   valid), so a branch refining r — `for cur != nil { cur.down }` —
   also refines what the slot must hold, which is what discharges the
   nil checks the frontend re-emits inside the loop body.

   Everything here is consumed three ways: [Lint] (below) reports
   findings per function; [branch_fact] hands the symbolic executor
   statically-dead edges so it can skip the solver; the soundness test
   replays concrete interpreter runs against [check_concrete]. *)

module Instr = Minir.Instr
module Ty = Minir.Ty
module Value = Minir.Value

(* How the symbolic executor treats the analysis:
   [Off] — never consulted; [Trust] — statically-dead edges are pruned
   without calling the solver; [Distrust] — every solver call is still
   made and each static claim is cross-checked against the certified
   answer (the chaos/soak configuration: degrade, never flip). *)
type policy = Off | Trust | Distrust

let policy_to_string = function
  | Off -> "off"
  | Trust -> "trust"
  | Distrust -> "distrust"

let policy_of_string = function
  | "off" -> Some Off
  | "trust" -> Some Trust
  | "distrust" -> Some Distrust
  | _ -> None

let m_functions = Trace.Metrics.counter "analysis.functions"

(* ------------------------------------------------------------------ *)
(* Domains                                                            *)
(* ------------------------------------------------------------------ *)

module Interval = struct
  (* [I (lo, hi)]; [None] is the infinite bound on that side. *)
  type t = Bot | I of int option * int option

  let top = I (None, None)
  let of_int n = I (Some n, Some n)

  let norm lo hi =
    match (lo, hi) with Some l, Some h when l > h -> Bot | _ -> I (lo, hi)

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | I (l1, h1), I (l2, h2) ->
        I
          ( (match (l1, l2) with
            | Some a, Some b -> Some (min a b)
            | _ -> None),
            match (h1, h2) with Some a, Some b -> Some (max a b) | _ -> None )

  let meet a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | I (l1, h1), I (l2, h2) ->
        norm
          (match (l1, l2) with
          | Some a, Some b -> Some (max a b)
          | Some a, None | None, Some a -> Some a
          | None, None -> None)
          (match (h1, h2) with
          | Some a, Some b -> Some (min a b)
          | Some a, None | None, Some a -> Some a
          | None, None -> None)

  (* [widen old next] with [next ⊒ old]: any bound still moving goes to
     its infinity, so chains stabilize. *)
  let widen old next =
    match (old, next) with
    | Bot, x | x, Bot -> x
    | I (l1, h1), I (l2, h2) ->
        (* A bound still moving (including to infinity) goes to its
           infinity; only a bound that stayed put survives. *)
        I
          ( (match (l1, l2) with
            | Some a, Some b when b >= a -> Some a
            | _ -> None),
            match (h1, h2) with
            | Some a, Some b when b <= a -> Some a
            | _ -> None )

  let add a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | I (l1, h1), I (l2, h2) ->
        I
          ( (match (l1, l2) with Some x, Some y -> Some (x + y) | _ -> None),
            match (h1, h2) with Some x, Some y -> Some (x + y) | _ -> None )

  let neg = function
    | Bot -> Bot
    | I (l, h) -> I (Option.map (fun x -> -x) h, Option.map (fun x -> -x) l)

  let sub a b = add a (neg b)

  let mul_const k = function
    | Bot -> Bot
    | I (l, h) ->
        if k = 0 then of_int 0
        else if k > 0 then
          I (Option.map (fun x -> k * x) l, Option.map (fun x -> k * x) h)
        else I (Option.map (fun x -> k * x) h, Option.map (fun x -> k * x) l)

  let mul a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | I (Some k, Some k'), i when k = k' -> mul_const k i
    | i, I (Some k, Some k') when k = k' -> mul_const k i
    | _ -> top

  let mem n = function
    | Bot -> false
    | I (l, h) ->
        (match l with None -> true | Some x -> n >= x)
        && (match h with None -> true | Some x -> n <= x)

  let finite = function I (Some _, Some _) -> true | _ -> false
  let is_singleton = function I (Some a, Some b) -> a = b | _ -> false

  (* Refinements under an assumed strict/loose order between two
     intervals: [(a', b')] such that any (x ∈ a, y ∈ b) with x R y has
     x ∈ a' and y ∈ b'. *)
  let below ~strict = function
    | Bot -> Bot
    | I (_, None) -> top
    | I (_, Some h) -> I (None, Some (if strict then h - 1 else h))

  let above ~strict = function
    | Bot -> Bot
    | I (None, _) -> top
    | I (Some l, _) -> I (Some (if strict then l + 1 else l), None)

  (* Drop a known-excluded endpoint: a ≠ b with b the singleton {k}. *)
  let remove_point a b =
    match (a, b) with
    | I (Some l, h), I (Some k, Some k') when k = k' && l = k ->
        norm (Some (l + 1)) h
    | I (l, Some h), I (Some k, Some k') when k = k' && h = k ->
        norm l (Some (h - 1))
    | _ -> a

  let pp fmt = function
    | Bot -> Format.fprintf fmt "⊥"
    | I (l, h) ->
        Format.fprintf fmt "[%s,%s]"
          (match l with None -> "-inf" | Some x -> string_of_int x)
          (match h with None -> "+inf" | Some x -> string_of_int x)
end

module Tribool = struct
  type t = TBot | TT | TF | TTop

  let of_bool b = if b then TT else TF

  let join a b =
    match (a, b) with
    | TBot, x | x, TBot -> x
    | TT, TT -> TT
    | TF, TF -> TF
    | _ -> TTop

  let meet a b =
    match (a, b) with
    | TTop, x | x, TTop -> x
    | TT, TT -> TT
    | TF, TF -> TF
    | _ -> TBot

  let not_ = function TBot -> TBot | TT -> TF | TF -> TT | TTop -> TTop

  let and_ a b =
    match (a, b) with
    | TBot, _ | _, TBot -> TBot
    | TF, _ | _, TF -> TF
    | TT, TT -> TT
    | _ -> TTop

  let or_ a b = not_ (and_ (not_ a) (not_ b))

  let pp fmt t =
    Format.pp_print_string fmt
      (match t with TBot -> "⊥" | TT -> "true" | TF -> "false" | TTop -> "⊤")
end

module Nullness = struct
  type t = NBot | NNull | NNot | NTop

  let join a b =
    match (a, b) with
    | NBot, x | x, NBot -> x
    | NNull, NNull -> NNull
    | NNot, NNot -> NNot
    | _ -> NTop

  let meet a b =
    match (a, b) with
    | NTop, x | x, NTop -> x
    | NNull, NNull -> NNull
    | NNot, NNot -> NNot
    | _ -> NBot

  let pp fmt t =
    Format.pp_print_string fmt
      (match t with
      | NBot -> "⊥"
      | NNull -> "nil"
      | NNot -> "non-nil"
      | NTop -> "⊤")
end

(* The product value: one constructor per Minir register sort. [ATop]
   is the unknown-sort top (e.g. an unassigned register). *)
type aval =
  | AInt of Interval.t
  | ABool of Tribool.t
  | APtr of Nullness.t
  | ATop

let a_join a b =
  match (a, b) with
  | ATop, _ | _, ATop -> ATop
  | AInt x, AInt y -> AInt (Interval.join x y)
  | ABool x, ABool y -> ABool (Tribool.join x y)
  | APtr x, APtr y -> APtr (Nullness.join x y)
  | _ -> ATop

let a_widen old next =
  match (old, next) with
  | AInt x, AInt y -> AInt (Interval.widen x y)
  | _ -> a_join old next

let a_is_bot = function
  | AInt Interval.Bot | ABool Tribool.TBot | APtr Nullness.NBot -> true
  | _ -> false

let top_of_ty : Ty.t -> aval = function
  | Ty.I64 -> AInt Interval.top
  | Ty.I1 -> ABool Tribool.TTop
  | Ty.Ptr _ | Ty.Opaque_ptr | Ty.Struct _ | Ty.Array _ -> APtr Nullness.NTop

(* Minir zero-initializes fresh slots (Go semantics). *)
let default_of_ty : Ty.t -> aval = function
  | Ty.I64 -> AInt (Interval.of_int 0)
  | Ty.I1 -> ABool Tribool.TF
  | Ty.Ptr _ | Ty.Opaque_ptr | Ty.Struct _ | Ty.Array _ -> APtr Nullness.NNull

let pp_aval fmt = function
  | AInt i -> Interval.pp fmt i
  | ABool t -> Tribool.pp fmt t
  | APtr n -> Nullness.pp fmt n
  | ATop -> Format.pp_print_string fmt "⊤"

(* ------------------------------------------------------------------ *)
(* Abstract states                                                    *)
(* ------------------------------------------------------------------ *)

module Env = Map.Make (String)
module SSet = Set.Make (String)

type st = {
  regs : aval Env.t; (* absent = ⊤ *)
  slots : aval Env.t; (* tracked slot contents, keyed by the alloca reg *)
  inited : SSet.t; (* slots definitely explicitly stored (must) *)
  prov : Instr.reg Env.t; (* reg ↦ slot it was loaded from, still valid *)
}

type state = Bot | St of st

(* Keys present on one side only are kept: a register (or slot) is
   defined by exactly one static instruction, so on any concrete path
   where it was never (re)assigned its frame entry — if present at all —
   flowed through the defining edge and is covered by that side's
   value. Provenance is must-information and intersects instead. *)
let st_join a b =
  {
    regs = Env.union (fun _ x y -> Some (a_join x y)) a.regs b.regs;
    slots = Env.union (fun _ x y -> Some (a_join x y)) a.slots b.slots;
    inited = SSet.inter a.inited b.inited;
    prov =
      Env.merge
        (fun _ x y ->
          match (x, y) with
          | Some u, Some v when String.equal u v -> Some u
          | _ -> None)
        a.prov b.prov;
  }

let st_widen old next =
  {
    next with
    regs =
      Env.mapi
        (fun r v ->
          match Env.find_opt r old.regs with
          | Some o -> a_widen o v
          | None -> v)
        next.regs;
    slots =
      Env.mapi
        (fun s v ->
          match Env.find_opt s old.slots with
          | Some o -> a_widen o v
          | None -> v)
        next.slots;
  }

let st_equal a b =
  Env.equal ( = ) a.regs b.regs
  && Env.equal ( = ) a.slots b.slots
  && SSet.equal a.inited b.inited
  && Env.equal String.equal a.prov b.prov

let state_join a b =
  match (a, b) with Bot, x | x, Bot -> x | St a, St b -> St (st_join a b)

let state_widen old next =
  match (old, next) with
  | Bot, x | x, Bot -> x
  | St o, St n -> St (st_widen o n)

let state_equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | St a, St b -> st_equal a b
  | _ -> false

let state_is_bottom = function Bot -> true | St _ -> false

let pp_state fmt = function
  | Bot -> Format.pp_print_string fmt "⊥"
  | St s ->
      Format.fprintf fmt "@[<hv>{";
      Env.iter (fun r v -> Format.fprintf fmt " %%%s=%a" r pp_aval v) s.regs;
      Env.iter (fun r v -> Format.fprintf fmt " [%%%s]=%a" r pp_aval v) s.slots;
      Format.fprintf fmt " }@]"

(* ------------------------------------------------------------------ *)
(* The generic forward engine                                         *)
(* ------------------------------------------------------------------ *)

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t (* old → joined (⊒ old) → widened *)
end

module Fixpoint (D : DOMAIN) = struct
  let widen_threshold = 3

  (* Widening points: targets of DFS back edges, i.e. loop heads in the
     reducible CFGs the frontend emits. Widening only there keeps the
     branch refinements inside loop bodies (a body entered under
     [i <= n] keeps the finite bound) while every cycle still crosses a
     widening point, so the ascending chain terminates. *)
  let widen_points (blocks : (Instr.label * Instr.block) list)
      (entry : Instr.label) : (Instr.label, unit) Hashtbl.t =
    let succs l =
      match (List.assoc l blocks).Instr.term with
      | Instr.Br l' -> [ l' ]
      | Instr.Cond_br (_, l1, l2) -> [ l1; l2 ]
      | Instr.Ret _ | Instr.Panic _ | Instr.Unreachable -> []
    in
    let points = Hashtbl.create 8 in
    let gray = Hashtbl.create 16 in
    let done_ = Hashtbl.create 16 in
    (* Explicit stack: each frame is a block and its unexplored succs. *)
    let stack = ref [] in
    let enter l =
      Hashtbl.replace gray l ();
      stack := (l, ref (succs l)) :: !stack
    in
    enter entry;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (l, rest) :: tl -> (
          match !rest with
          | [] ->
              Hashtbl.remove gray l;
              Hashtbl.replace done_ l ();
              stack := tl
          | s :: rs ->
              rest := rs;
              if Hashtbl.mem gray s then Hashtbl.replace points s ()
              else if not (Hashtbl.mem done_ s) then enter s)
    done;
    points

  (* Worklist fixpoint: [transfer] maps a block's entry state to the
     states it propagates to each successor. Returns the per-block
     entry states; blocks never reached are absent. *)
  let solve ~(blocks : (Instr.label * Instr.block) list)
      ~(entry : Instr.label) ~(init : D.t)
      ~(transfer : Instr.label -> Instr.block -> D.t -> (Instr.label * D.t) list)
      : (Instr.label, D.t) Hashtbl.t =
    let wpoints = widen_points blocks entry in
    let in_states = Hashtbl.create 16 in
    let updates = Hashtbl.create 16 in
    let wl = Queue.create () in
    let queued = Hashtbl.create 16 in
    let push l =
      if not (Hashtbl.mem queued l) then begin
        Hashtbl.replace queued l ();
        Queue.push l wl
      end
    in
    Hashtbl.replace in_states entry init;
    push entry;
    while not (Queue.is_empty wl) do
      let l = Queue.pop wl in
      Hashtbl.remove queued l;
      match Hashtbl.find_opt in_states l with
      | None -> ()
      | Some s ->
          let b = List.assoc l blocks in
          List.iter
            (fun (l', s') ->
              let prev = Hashtbl.find_opt in_states l' in
              let joined =
                match prev with None -> s' | Some p -> D.join p s'
              in
              let n = Option.value (Hashtbl.find_opt updates l') ~default:0 in
              let next =
                match prev with
                | Some p when n >= widen_threshold && Hashtbl.mem wpoints l'
                  ->
                    D.widen p joined
                | _ -> joined
              in
              match prev with
              | Some p when D.equal p next -> ()
              | _ ->
                  Hashtbl.replace in_states l' next;
                  Hashtbl.replace updates l' (n + 1);
                  push l')
            (transfer l b s)
    done;
    in_states
end

module Solve = Fixpoint (struct
  type t = state

  let equal = state_equal
  let join = state_join
  let widen = state_widen
end)

(* ------------------------------------------------------------------ *)
(* Per-function semantics                                             *)
(* ------------------------------------------------------------------ *)

(* Scalar alloca registers used *only* as the pointer operand of loads
   and stores: those slots cannot alias and their contents are tracked
   exactly. Everything else (aggregates, address-taken slots) is left
   to the heap, i.e. ⊤. *)
let tracked_slots (f : Instr.func) : SSet.t =
  let allocas = ref SSet.empty in
  List.iter
    (fun (_, b) ->
      List.iter
        (function
          | Instr.Assign (r, Instr.Alloca (Ty.I64 | Ty.I1 | Ty.Ptr _ | Ty.Opaque_ptr))
            -> allocas := SSet.add r !allocas
          | _ -> ())
        b.Instr.insns)
    f.Instr.blocks;
  let escape = function
    | Instr.Reg r -> allocas := SSet.remove r !allocas
    | _ -> ()
  in
  let escape_rv = function
    | Instr.Binop (_, a, b) | Instr.Byte_gep (a, b) ->
        escape a;
        escape b
    | Instr.Icmp (_, _, a, b) ->
        escape a;
        escape b
    | Instr.Not a | Instr.Bitcast a | Instr.Opaque_load (_, a) -> escape a
    | Instr.Load (_, _) -> () (* pointer position: allowed *)
    | Instr.Gep (_, base, idx) ->
        escape base;
        List.iter escape idx
    | Instr.Call (_, args) -> List.iter escape args
    | Instr.Alloca _ | Instr.Newobject _ -> ()
  in
  List.iter
    (fun (_, b) ->
      List.iter
        (function
          | Instr.Assign (_, rv) -> escape_rv rv
          | Instr.Store (_, v, _) | Instr.Opaque_store (_, v, _) ->
              escape v (* value position escapes; pointer position allowed *)
          | Instr.Call_void (_, args) -> List.iter escape args)
        b.Instr.insns;
      match b.Instr.term with
      | Instr.Cond_br (c, _, _) -> escape c
      | Instr.Ret (Some o) -> escape o
      | Instr.Br _ | Instr.Ret None | Instr.Panic _ | Instr.Unreachable -> ())
    f.Instr.blocks;
  (* Opaque stores write through pointers we cannot see; their pointer
     operand escapes too (only [Store]'s pointer position is exempt). *)
  List.iter
    (fun (_, b) ->
      List.iter
        (function
          | Instr.Opaque_store (_, _, p) -> escape p
          | _ -> ())
        b.Instr.insns)
    f.Instr.blocks;
  !allocas

(* One static assignment per register (well-formedness), so this is a
   function. *)
let def_map (f : Instr.func) : Instr.rvalue Env.t =
  List.fold_left
    (fun m (_, b) ->
      List.fold_left
        (fun m -> function
          | Instr.Assign (r, rv) -> Env.add r rv m
          | _ -> m)
        m b.Instr.insns)
    Env.empty f.Instr.blocks

type fn_ctx = {
  prog : Instr.program;
  tracked : SSet.t;
  defs : Instr.rvalue Env.t;
}

let eval_operand (s : st) : Instr.operand -> aval = function
  | Instr.Const_int n -> AInt (Interval.of_int n)
  | Instr.Const_bool b -> ABool (Tribool.of_bool b)
  | Instr.Null _ -> APtr Nullness.NNull
  | Instr.Reg r -> Option.value (Env.find_opt r s.regs) ~default:ATop

let interval_of (s : st) (o : Instr.operand) : Interval.t =
  match eval_operand s o with AInt i -> i | _ -> Interval.top

let nullness_of (s : st) (o : Instr.operand) : Nullness.t =
  match eval_operand s o with APtr n -> n | _ -> Nullness.NTop

let tribool_of (s : st) (o : Instr.operand) : Tribool.t =
  match eval_operand s o with ABool t -> t | _ -> Tribool.TTop

let icmp_interval (op : Instr.icmp) (a : Interval.t) (b : Interval.t) :
    Tribool.t =
  let open Interval in
  match (a, b) with
  | Bot, _ | _, Bot -> Tribool.TTop
  | I (l1, h1), I (l2, h2) -> (
      let lt_def =
        (* ∀x∈a ∀y∈b, x < y *)
        match (h1, l2) with Some h, Some l -> h < l | _ -> false
      and le_def =
        match (h1, l2) with Some h, Some l -> h <= l | _ -> false
      and gt_def =
        match (l1, h2) with Some l, Some h -> l > h | _ -> false
      and ge_def =
        match (l1, h2) with Some l, Some h -> l >= h | _ -> false
      in
      match op with
      | Instr.Slt ->
          if lt_def then Tribool.TT else if ge_def then Tribool.TF else Tribool.TTop
      | Instr.Sle ->
          if le_def then Tribool.TT else if gt_def then Tribool.TF else Tribool.TTop
      | Instr.Sgt ->
          if gt_def then Tribool.TT else if le_def then Tribool.TF else Tribool.TTop
      | Instr.Sge ->
          if ge_def then Tribool.TT else if lt_def then Tribool.TF else Tribool.TTop
      | Instr.Eq ->
          if is_singleton a && a = b then Tribool.TT
          else if meet a b = Bot then Tribool.TF
          else Tribool.TTop
      | Instr.Ne ->
          if is_singleton a && a = b then Tribool.TF
          else if meet a b = Bot then Tribool.TT
          else Tribool.TTop)

let icmp_nullness (op : Instr.icmp) (a : Nullness.t) (b : Nullness.t) :
    Tribool.t =
  let eq =
    match (a, b) with
    | Nullness.NNull, Nullness.NNull -> Tribool.TT
    | Nullness.NNull, Nullness.NNot | Nullness.NNot, Nullness.NNull ->
        Tribool.TF
    | _ -> Tribool.TTop
  in
  match op with
  | Instr.Eq -> eq
  | Instr.Ne -> Tribool.not_ eq
  | _ -> Tribool.TTop

let is_ptr_ty = function
  | Ty.Ptr _ | Ty.Opaque_ptr | Ty.Struct _ | Ty.Array _ -> true
  | Ty.I1 | Ty.I64 -> false

let eval_rvalue (ctx : fn_ctx) (s : st) (rv : Instr.rvalue) : aval =
  match rv with
  | Instr.Binop (op, a, b) -> (
      match op with
      | Instr.Add -> AInt (Interval.add (interval_of s a) (interval_of s b))
      | Instr.Sub -> AInt (Interval.sub (interval_of s a) (interval_of s b))
      | Instr.Mul -> AInt (Interval.mul (interval_of s a) (interval_of s b))
      | Instr.Sdiv | Instr.Srem -> AInt Interval.top
      | Instr.And_ -> ABool (Tribool.and_ (tribool_of s a) (tribool_of s b))
      | Instr.Or_ -> ABool (Tribool.or_ (tribool_of s a) (tribool_of s b))
      | Instr.Xor ->
          ABool
            (match (tribool_of s a, tribool_of s b) with
            | Tribool.TBot, _ | _, Tribool.TBot -> Tribool.TBot
            | Tribool.TT, x | x, Tribool.TT -> Tribool.not_ x
            | Tribool.TF, x | x, Tribool.TF -> x
            | Tribool.TTop, Tribool.TTop -> Tribool.TTop))
  | Instr.Icmp (op, ty, a, b) ->
      if is_ptr_ty ty then ABool (icmp_nullness op (nullness_of s a) (nullness_of s b))
      else if ty = Ty.I64 then
        ABool (icmp_interval op (interval_of s a) (interval_of s b))
      else ABool Tribool.TTop
  | Instr.Not a -> ABool (Tribool.not_ (tribool_of s a))
  | Instr.Alloca _ | Instr.Newobject _ | Instr.Gep _ | Instr.Byte_gep _ ->
      APtr Nullness.NNot
  | Instr.Bitcast o -> eval_operand s o
  | Instr.Load (ty, Instr.Reg p) when SSet.mem p ctx.tracked ->
      Option.value (Env.find_opt p s.slots) ~default:(top_of_ty ty)
  | Instr.Load (ty, _) | Instr.Opaque_load (ty, _) -> top_of_ty ty
  | Instr.Call (name, _) -> (
      match
        List.find_opt (fun g -> g.Instr.fn_name = name) ctx.prog.Instr.funcs
      with
      | Some g -> (
          match g.Instr.ret_ty with Some ty -> top_of_ty ty | None -> ATop)
      | None -> ATop)

(* Transfer one instruction. Total: instruction effects never prove a
   state empty, only branch assumptions do. *)
let transfer_insn (ctx : fn_ctx) (s : st) (insn : Instr.instr) : st =
  match insn with
  | Instr.Assign (r, rv) ->
      let v = eval_rvalue ctx s rv in
      let s = { s with regs = Env.add r v s.regs } in
      let s =
        match rv with
        | Instr.Alloca ty when SSet.mem r ctx.tracked ->
            (* A re-executed alloca (declaration inside a loop) rebinds
               the register to a *fresh* zero slot: reset contents and
               must-init, and drop provenance into the old slot. *)
            {
              s with
              slots = Env.add r (default_of_ty ty) s.slots;
              inited = SSet.remove r s.inited;
              prov = Env.filter (fun _ s' -> not (String.equal s' r)) s.prov;
            }
        | Instr.Load (_, Instr.Reg p) when SSet.mem p ctx.tracked ->
            { s with prov = Env.add r p s.prov }
        | Instr.Bitcast (Instr.Reg q) -> (
            match Env.find_opt q s.prov with
            | Some p -> { s with prov = Env.add r p s.prov }
            | None -> s)
        | _ -> s
      in
      s
  | Instr.Store (_, v, Instr.Reg p) when SSet.mem p ctx.tracked ->
      {
        s with
        slots = Env.add p (eval_operand s v) s.slots;
        inited = SSet.add p s.inited;
        prov = Env.filter (fun _ s' -> not (String.equal s' p)) s.prov;
      }
  | Instr.Store _ | Instr.Opaque_store _ | Instr.Call_void _ ->
      (* Tracked slots cannot alias (their address never escapes), so
         stores through other pointers and calls cannot touch them. *)
      s

let transfer_insns ctx s insns = List.fold_left (transfer_insn ctx) s insns

(* ------------------------------------------------------------------ *)
(* Branch refinement                                                  *)
(* ------------------------------------------------------------------ *)

exception Bottom

(* Meet [o]'s abstract value with [v]; empty meets kill the edge.
   Register refinements propagate into the slot the register was
   loaded from when that provenance is still valid. *)
let rec refine_operand (s : st) (o : Instr.operand) (v : aval) : st =
  match o with
  | Instr.Const_int n ->
      (match v with
      | AInt i when not (Interval.mem n i) -> raise Bottom
      | _ -> ());
      s
  | Instr.Const_bool b ->
      (match v with
      | ABool t when Tribool.meet t (Tribool.of_bool b) = Tribool.TBot ->
          raise Bottom
      | _ -> ());
      s
  | Instr.Null _ ->
      (match v with
      | APtr n when Nullness.meet n Nullness.NNull = Nullness.NBot ->
          raise Bottom
      | _ -> ());
      s
  | Instr.Reg r -> (
      let cur = Option.value (Env.find_opt r s.regs) ~default:ATop in
      let met =
        match (cur, v) with
        | ATop, v -> v
        | v, ATop -> v
        | AInt a, AInt b -> AInt (Interval.meet a b)
        | ABool a, ABool b -> ABool (Tribool.meet a b)
        | APtr a, APtr b -> APtr (Nullness.meet a b)
        | a, _ -> a (* sort mismatch: keep what we had *)
      in
      if a_is_bot met then raise Bottom;
      let s = { s with regs = Env.add r met s.regs } in
      match Env.find_opt r s.prov with
      | Some slot ->
          let scur = Option.value (Env.find_opt slot s.slots) ~default:ATop in
          let smet =
            match (scur, met) with
            | ATop, v -> v
            | v, ATop -> v
            | AInt a, AInt b -> AInt (Interval.meet a b)
            | ABool a, ABool b -> ABool (Tribool.meet a b)
            | APtr a, APtr b -> APtr (Nullness.meet a b)
            | a, _ -> a
          in
          if a_is_bot smet then raise Bottom;
          { s with slots = Env.add slot smet s.slots }
      | None -> s)

and assume_icmp (ctx : fn_ctx) (s : st) (op : Instr.icmp) (ty : Ty.t)
    (a : Instr.operand) (b : Instr.operand) (truth : bool) : st =
  (* Normalize the relation assumed to hold between a and b. *)
  let rel =
    match (op, truth) with
    | Instr.Eq, true | Instr.Ne, false -> `Eq
    | Instr.Eq, false | Instr.Ne, true -> `Ne
    | Instr.Slt, true | Instr.Sge, false -> `Lt
    | Instr.Sle, true | Instr.Sgt, false -> `Le
    | Instr.Sgt, true | Instr.Sle, false -> `Gt
    | Instr.Sge, true | Instr.Slt, false -> `Ge
  in
  if ty = Ty.I64 then begin
    let ia = interval_of s a and ib = interval_of s b in
    let ia', ib' =
      match rel with
      | `Lt -> (Interval.meet ia (Interval.below ~strict:true ib),
                Interval.meet ib (Interval.above ~strict:true ia))
      | `Le -> (Interval.meet ia (Interval.below ~strict:false ib),
                Interval.meet ib (Interval.above ~strict:false ia))
      | `Gt -> (Interval.meet ia (Interval.above ~strict:true ib),
                Interval.meet ib (Interval.below ~strict:true ia))
      | `Ge -> (Interval.meet ia (Interval.above ~strict:false ib),
                Interval.meet ib (Interval.below ~strict:false ia))
      | `Eq ->
          let m = Interval.meet ia ib in
          (m, m)
      | `Ne -> (Interval.remove_point ia ib, Interval.remove_point ib ia)
    in
    if ia' = Interval.Bot || ib' = Interval.Bot then raise Bottom;
    let s = refine_operand s a (AInt ia') in
    refine_operand s b (AInt ib')
  end
  else if is_ptr_ty ty then begin
    match rel with
    | `Eq ->
        let s =
          match b with
          | Instr.Null _ -> refine_operand s a (APtr Nullness.NNull)
          | _ -> s
        in
        (match a with
        | Instr.Null _ -> refine_operand s b (APtr Nullness.NNull)
        | _ -> s)
    | `Ne ->
        let s =
          match b with
          | Instr.Null _ -> refine_operand s a (APtr Nullness.NNot)
          | _ -> s
        in
        (match a with
        | Instr.Null _ -> refine_operand s b (APtr Nullness.NNot)
        | _ -> s)
    | _ -> s
  end
  else begin
    ignore ctx;
    match rel with
    | `Eq -> (
        match (a, b) with
        | x, Instr.Const_bool k | Instr.Const_bool k, x ->
            refine_operand s x (ABool (Tribool.of_bool k))
        | _ -> s)
    | `Ne -> (
        match (a, b) with
        | x, Instr.Const_bool k | Instr.Const_bool k, x ->
            refine_operand s x (ABool (Tribool.of_bool (not k)))
        | _ -> s)
    | _ -> s
  end

(* Assume the boolean operand [o] evaluates to [truth], walking its
   defining expression to sharpen everything it derives from. *)
and assume_operand (ctx : fn_ctx) (s : st) (o : Instr.operand) (truth : bool) :
    st =
  match o with
  | Instr.Const_bool k -> if k = truth then s else raise Bottom
  | Instr.Const_int _ | Instr.Null _ -> s
  | Instr.Reg r -> (
      let s = refine_operand s o (ABool (Tribool.of_bool truth)) in
      match Env.find_opt r ctx.defs with
      | Some (Instr.Icmp (op, ty, a, b)) -> assume_icmp ctx s op ty a b truth
      | Some (Instr.Not a) -> assume_operand ctx s a (not truth)
      | Some (Instr.Binop (Instr.And_, a, b)) when truth ->
          assume_operand ctx (assume_operand ctx s a true) b true
      | Some (Instr.Binop (Instr.Or_, a, b)) when not truth ->
          (* `bad = (i < 0) | (i >= n)` assumed false refines both
             disjuncts — the shape of every frontend bounds check. *)
          assume_operand ctx (assume_operand ctx s a false) b false
      | _ -> s)

let assume (ctx : fn_ctx) (s : st) (o : Instr.operand) (truth : bool) : state =
  match assume_operand ctx s o truth with
  | s -> St s
  | exception Bottom -> Bot

(* ------------------------------------------------------------------ *)
(* Whole-function facts                                               *)
(* ------------------------------------------------------------------ *)

type edge_fact = { then_dead : bool; else_dead : bool }

(* Everything the symbolic executor wants at a [Cond_br], precomputed
   so the per-branch-execution lookup is a single hash-table probe:
   the edge fact plus whether either successor is a panic block (the
   executor's [panic_checks] accounting would otherwise re-scan the
   block list on every branch execution). *)
type branch_info = { bi_fact : edge_fact; bi_guards_panic : bool }

(* Physical-identity block table: keys are blocks of the one memoized
   program value per version, so [( == )] is the right equality and
   the (bounded-depth) structural hash is merely a bucket spreader. *)
module Blocktbl = Hashtbl.Make (struct
  type t = Instr.block

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type func_facts = {
  ff_func : Instr.func;
  ff_ctx : fn_ctx;
  ff_in : (Instr.label, state) Hashtbl.t; (* absent = unreachable *)
  ff_branch : branch_info Blocktbl.t; (* physical-identity keyed *)
}

type summary = (string, func_facts) Hashtbl.t

let edge_states (ctx : fn_ctx) (s : st) (t : Instr.terminator) :
    (Instr.label * state) list =
  match t with
  | Instr.Br l -> [ (l, St s) ]
  | Instr.Cond_br (c, l1, l2) ->
      [ (l1, assume ctx s c true); (l2, assume ctx s c false) ]
  | Instr.Ret _ | Instr.Panic _ | Instr.Unreachable -> []

let analyze_func (prog : Instr.program) (f : Instr.func) : func_facts =
  Trace.with_span ~det:false "analyze" ~attrs:[ ("fn", f.Instr.fn_name) ]
  @@ fun () ->
  Trace.Metrics.incr m_functions;
  let ctx = { prog; tracked = tracked_slots f; defs = def_map f } in
  let init =
    St
      {
        regs =
          List.fold_left
            (fun m (r, ty) -> Env.add r (top_of_ty ty) m)
            Env.empty f.Instr.params;
        slots = Env.empty;
        inited = SSet.empty;
        prov = Env.empty;
      }
  in
  let transfer _l (b : Instr.block) (s : state) =
    match s with
    | Bot -> []
    | St s -> edge_states ctx (transfer_insns ctx s b.Instr.insns) b.Instr.term
  in
  let in_states =
    Solve.solve ~blocks:f.Instr.blocks ~entry:f.Instr.entry ~init ~transfer
  in
  (* Edge facts from the converged entry states: an edge is dead when
     its branch assumption empties the state (or the block was never
     reached at all). *)
  let is_panic l =
    match List.assoc_opt l f.Instr.blocks with
    | Some (tb : Instr.block) -> (
        match tb.Instr.term with Instr.Panic _ -> true | _ -> false)
    | None -> false
  in
  let branch = Blocktbl.create 16 in
  List.iter
    (fun (l, (b : Instr.block)) ->
      match b.Instr.term with
      | Instr.Cond_br (c, l1, l2) ->
          let fact =
            match Hashtbl.find_opt in_states l with
            | None | Some Bot -> { then_dead = true; else_dead = true }
            | Some (St s) ->
                let s = transfer_insns ctx s b.Instr.insns in
                {
                  then_dead = assume ctx s c true = Bot;
                  else_dead = assume ctx s c false = Bot;
                }
          in
          Blocktbl.replace branch b
            { bi_fact = fact; bi_guards_panic = is_panic l1 || is_panic l2 }
      | _ -> ())
    f.Instr.blocks;
  { ff_func = f; ff_ctx = ctx; ff_in = in_states; ff_branch = branch }

let analyze (prog : Instr.program) : summary =
  let t = Hashtbl.create 16 in
  List.iter
    (fun f -> Hashtbl.replace t f.Instr.fn_name (analyze_func prog f))
    prog.Instr.funcs;
  t

(* Domain-local memo keyed on the program's physical identity: the
   compile memo in Engine.Versions already guarantees one program value
   per version per domain, so re-verification never re-analyzes. *)
let memo_key : (Instr.program * summary) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let memo_limit = 8

let summarize (prog : Instr.program) : summary =
  let memo = Domain.DLS.get memo_key in
  match List.find_opt (fun (p, _) -> p == prog) !memo with
  | Some (_, s) -> s
  | None ->
      let s = analyze prog in
      if List.length !memo >= memo_limit then memo := [];
      memo := (prog, s) :: !memo;
      s

let clear_memo () = Domain.DLS.get memo_key := []

(* ------------------------------------------------------------------ *)
(* Query API                                                          *)
(* ------------------------------------------------------------------ *)

let func_facts (s : summary) (fn : string) : func_facts option =
  Hashtbl.find_opt s fn

(* The executor's lookup: facts for the conditional branch terminating
   [b]. The block is matched by physical identity — the executor and
   the analysis walk the same program value. *)
let branch_info (ff : func_facts) (b : Instr.block) : branch_info option =
  Blocktbl.find_opt ff.ff_branch b

let branch_fact (s : summary) (fn : string) (b : Instr.block) :
    edge_fact option =
  match Hashtbl.find_opt s fn with
  | None -> None
  | Some ff -> Option.map (fun bi -> bi.bi_fact) (branch_info ff b)

let in_state (s : summary) ~(fn : string) ~(label : Instr.label) :
    state option =
  match Hashtbl.find_opt s fn with
  | None -> None
  | Some ff -> Some (Option.value (Hashtbl.find_opt ff.ff_in label) ~default:Bot)

let reachable (s : summary) ~(fn : string) ~(label : Instr.label) : bool =
  match in_state s ~fn ~label with
  | Some (St _) -> true
  | Some Bot | None -> false

(* ------------------------------------------------------------------ *)
(* Concretization check (the soundness test's γ relation)             *)
(* ------------------------------------------------------------------ *)

let value_in_aval (v : Value.t) (a : aval) : bool =
  match (a, v) with
  | ATop, _ -> true
  | AInt i, Value.VInt n -> Interval.mem n i
  | ABool t, Value.VBool b ->
      Tribool.meet t (Tribool.of_bool b) <> Tribool.TBot
  | APtr n, Value.VNull -> Nullness.meet n Nullness.NNull <> Nullness.NBot
  | APtr n, Value.VPtr _ -> Nullness.meet n Nullness.NNot <> Nullness.NBot
  | _, Value.VUnit -> true
  | _ -> false (* sort mismatch: the abstraction is wrong *)

(* Is the concrete frame/memory at some block entry inside [state]?
   [lookup] reads a register from the live frame (absent registers are
   vacuously fine); [load] reads a slot's cell through the pointer the
   slot register currently holds. *)
let check_concrete (state : state) ~(lookup : string -> Value.t option)
    ~(load : Value.ptr -> Value.t option) : (unit, string) result =
  match state with
  | Bot -> Error "concrete execution reached a block the analysis proved dead"
  | St s ->
      let err = ref None in
      let fail fmt = Format.kasprintf (fun m -> if !err = None then err := Some m) fmt in
      Env.iter
        (fun r a ->
          match lookup r with
          | None -> ()
          | Some v ->
              if not (value_in_aval v a) then
                fail "register %%%s = %a outside %a" r Value.pp v pp_aval a)
        s.regs;
      Env.iter
        (fun slot a ->
          match lookup slot with
          | Some (Value.VPtr p) -> (
              match load p with
              | Some v ->
                  if not (value_in_aval v a) then
                    fail "slot %%%s = %a outside %a" slot Value.pp v pp_aval a
              | None -> ())
          | _ -> ())
        s.slots;
      (match !err with Some m -> Error m | None -> Ok ())

(* ------------------------------------------------------------------ *)
(* Lint                                                               *)
(* ------------------------------------------------------------------ *)

module Lint = struct
  type severity = Error | Warning | Info

  let severity_to_string = function
    | Error -> "error"
    | Warning -> "warning"
    | Info -> "info"

  type finding = {
    rule : string;
    severity : severity;
    fn : string;
    block : Instr.label;
    index : int; (* instruction index in the block; -1 = terminator *)
    message : string;
  }

  (* CFG reachability ignoring abstract states: blocks with no path
     from entry at all are frontend artifacts (e.g. the implicit
     "missing return" continuation) and are not worth reporting. A
     branch on a literal constant is treated as the unconditional jump
     it is — `for {}` compiles to `br true, body, exit`, and its exit
     block is an artifact too, not dead user code. *)
  let graph_reachable (f : Instr.func) : SSet.t =
    let seen = ref SSet.empty in
    let rec go l =
      if not (SSet.mem l !seen) then begin
        seen := SSet.add l !seen;
        match (Instr.find_block f l).Instr.term with
        | Instr.Br l' -> go l'
        | Instr.Cond_br (Instr.Const_bool true, l1, _) -> go l1
        | Instr.Cond_br (Instr.Const_bool false, _, l2) -> go l2
        | Instr.Cond_br (_, l1, l2) ->
            go l1;
            go l2
        | Instr.Ret _ | Instr.Panic _ | Instr.Unreachable -> ()
      end
    in
    go f.Instr.entry;
    !seen

  (* Backward may-liveness of tracked slots, for dead-store findings:
     a slot is live at a point if some path from there loads it before
     any store kills it (re-allocation kills it too). *)
  let slot_liveness (ff : func_facts) : (Instr.label, SSet.t) Hashtbl.t =
    let f = ff.ff_func in
    let tracked = ff.ff_ctx.tracked in
    let live_in = Hashtbl.create 16 in
    let live_out l =
      let succs =
        match (Instr.find_block f l).Instr.term with
        | Instr.Br l' -> [ l' ]
        | Instr.Cond_br (_, l1, l2) -> [ l1; l2 ]
        | _ -> []
      in
      List.fold_left
        (fun acc l' ->
          SSet.union acc
            (Option.value (Hashtbl.find_opt live_in l') ~default:SSet.empty))
        SSet.empty succs
    in
    let transfer_back (b : Instr.block) (live : SSet.t) : SSet.t =
      List.fold_left
        (fun live insn ->
          match insn with
          | Instr.Assign (_, Instr.Load (_, Instr.Reg p))
            when SSet.mem p tracked ->
              SSet.add p live
          | Instr.Assign (r, Instr.Alloca _) when SSet.mem r tracked ->
              SSet.remove r live
          | Instr.Store (_, _, Instr.Reg p) when SSet.mem p tracked ->
              SSet.remove p live
          | _ -> live)
        live (List.rev b.Instr.insns)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (l, b) ->
          let nu = transfer_back b (live_out l) in
          let old =
            Option.value (Hashtbl.find_opt live_in l) ~default:SSet.empty
          in
          if not (SSet.equal nu old) then begin
            Hashtbl.replace live_in l nu;
            changed := true
          end)
        (List.rev f.Instr.blocks)
    done;
    live_in

  (* Syntactic leaves of a branch condition: the I64 comparisons it is
     built from (through Not/And/Or). Used by the off-by-one heuristic
     below. *)
  let rec icmp_leaves (defs : Instr.rvalue Env.t) (o : Instr.operand) :
      (Instr.icmp * Ty.t * Instr.operand * Instr.operand) list =
    match o with
    | Instr.Reg r -> (
        match Env.find_opt r defs with
        | Some (Instr.Icmp (op, ty, a, b)) -> [ (op, ty, a, b) ]
        | Some (Instr.Not a) -> icmp_leaves defs a
        | Some (Instr.Binop ((Instr.And_ | Instr.Or_), a, b)) ->
            icmp_leaves defs a @ icmp_leaves defs b
        | _ -> [])
    | _ -> []

  let lint_func (ff : func_facts) : finding list =
    let f = ff.ff_func in
    let ctx = ff.ff_ctx in
    let fn = f.Instr.fn_name in
    let findings = ref [] in
    let report rule severity block index fmt =
      Format.kasprintf
        (fun message ->
          findings := { rule; severity; fn; block; index; message } :: !findings)
        fmt
    in
    let reach = graph_reachable f in
    let liveness = slot_liveness ff in
    let in_state_of l =
      Option.value (Hashtbl.find_opt ff.ff_in l) ~default:Bot
    in
    let is_panic l =
      match (Instr.find_block f l).Instr.term with
      | Instr.Panic _ -> true
      | _ -> false
    in
    (* Dead blocks: CFG-reachable yet proved unreachable. Panic blocks
       are excluded — an unreachable panic is the *good* outcome and is
       counted as discharged, not reported. *)
    List.iter
      (fun (l, (b : Instr.block)) ->
        if
          SSet.mem l reach
          && in_state_of l = Bot
          && (match b.Instr.term with Instr.Panic _ -> false | _ -> true)
        then report "dead-block" Info l (-1) "block is statically unreachable")
      f.Instr.blocks;
    (* Per-block instruction walk with the running abstract state. *)
    List.iter
      (fun (l, (b : Instr.block)) ->
        match in_state_of l with
        | Bot -> ()
        | St s0 ->
            let live_after_store idx p =
              (* Live just after instruction [idx]: replay the backward
                 transfer over the remaining instructions of the block
                 against the block's live-out. *)
              let rest =
                List.filteri (fun i _ -> i > idx) b.Instr.insns
              in
              let out =
                match b.Instr.term with
                | Instr.Br l' ->
                    Option.value (Hashtbl.find_opt liveness l')
                      ~default:SSet.empty
                | Instr.Cond_br (_, l1, l2) ->
                    SSet.union
                      (Option.value (Hashtbl.find_opt liveness l1)
                         ~default:SSet.empty)
                      (Option.value (Hashtbl.find_opt liveness l2)
                         ~default:SSet.empty)
                | _ -> SSet.empty
              in
              let live =
                List.fold_left
                  (fun live insn ->
                    match insn with
                    | Instr.Assign (_, Instr.Load (_, Instr.Reg q))
                      when SSet.mem q ctx.tracked ->
                        SSet.add q live
                    | Instr.Assign (r, Instr.Alloca _)
                      when SSet.mem r ctx.tracked ->
                        SSet.remove r live
                    | Instr.Store (_, _, Instr.Reg q)
                      when SSet.mem q ctx.tracked ->
                        SSet.remove q live
                    | _ -> live)
                  out (List.rev rest)
              in
              SSet.mem p live
            in
            let alloca_index = Hashtbl.create 4 in
            List.iteri
              (fun i insn ->
                match insn with
                | Instr.Assign (r, Instr.Alloca _) ->
                    Hashtbl.replace alloca_index r i
                | _ -> ())
              b.Instr.insns;
            let _ =
              List.fold_left
                (fun (s, i) insn ->
                  (match insn with
                  | Instr.Assign (_, Instr.Binop ((Instr.Sdiv | Instr.Srem), _, d))
                    -> (
                      match interval_of s d with
                      | Interval.I (Some 0, Some 0) ->
                          report "div-by-zero" Error l i
                            "division by a value that is always zero"
                      | iv when Interval.mem 0 iv && Interval.finite iv ->
                          report "div-by-maybe-zero" Warning l i
                            "divisor %a may be zero" Interval.pp iv
                      | _ -> ())
                  | Instr.Assign (_, Instr.Load (_, o))
                  | Instr.Store (_, _, o)
                  | Instr.Assign (_, Instr.Gep (_, o, _)) -> (
                      match nullness_of s o with
                      | Nullness.NNull ->
                          report "nil-deref" Error l i
                            "pointer is always nil here"
                      | _ -> ())
                  | _ -> ());
                  (match insn with
                  | Instr.Assign (_, Instr.Load (_, Instr.Reg p))
                    when SSet.mem p ctx.tracked
                         && (not (SSet.mem p s.inited))
                         && not (Hashtbl.mem alloca_index p) ->
                      (* Loaded before any store on some path. Minir
                         zero-initializes slots, so this is Go-legal —
                         but loads in the declaring block come straight
                         from `var x T; use x`, worth a note. *)
                      report "use-before-init" Info l i
                        "slot %%%s is read before any store on some path" p
                  | _ -> ());
                  (match insn with
                  | Instr.Store (_, _, Instr.Reg p)
                    when SSet.mem p ctx.tracked
                         && (not (live_after_store i p))
                         && not (Hashtbl.mem alloca_index p) ->
                      (* Initializer stores (same block as the alloca)
                         are the frontend's `var x = e` shape and are
                         exempt; anything else stored and never loaded
                         again is a dead store. *)
                      report "dead-store" Warning l i
                        "value stored to %%%s is never read" p
                  | _ -> ());
                  (transfer_insn ctx s insn, i + 1))
                (s0, 0) b.Instr.insns
            in
            let s = transfer_insns ctx s0 b.Instr.insns in
            (* Reachable panic guards: a conditional edge into a panic
               block that survives abstract interpretation. Reported
               only when the guard is decided by *constant* data (every
               integer comparison it is built from has finite bounds) —
               a symbolic-input-bounded check is the verifier's job,
               not the linter's. Guards that are definitely taken are
               errors outright. *)
            (match b.Instr.term with
            | Instr.Cond_br (c, l1, l2) ->
                let edges =
                  [ (true, l1); (false, l2) ]
                  |> List.filter (fun (_, t) -> is_panic t)
                in
                List.iter
                  (fun (truth, target) ->
                    if assume ctx s c truth <> Bot then begin
                      let tb = tribool_of s c in
                      let definite =
                        tb = Tribool.of_bool truth
                      in
                      let leaves = icmp_leaves ctx.defs c in
                      let finite_leaves =
                        leaves <> []
                        && List.for_all
                             (fun (_, ty, a, b) ->
                               ty = Ty.I64
                               && Interval.finite (interval_of s a)
                               && Interval.finite (interval_of s b))
                             leaves
                      in
                      if definite then
                        report "reachable-panic" Error l (-1)
                          "panic %S is always reached from this branch"
                          (match (Instr.find_block f target).Instr.term with
                          | Instr.Panic m -> m
                          | _ -> "?")
                      else if finite_leaves then
                        report "reachable-panic" Error l (-1)
                          "panic %S is reachable with constant bounds \
                           (likely off-by-one)"
                          (match (Instr.find_block f target).Instr.term with
                          | Instr.Panic m -> m
                          | _ -> "?")
                    end)
                  edges
            | _ -> ()))
      f.Instr.blocks;
    List.rev !findings

  let run (prog : Instr.program) : finding list =
    let summary = summarize prog in
    List.concat_map
      (fun (f : Instr.func) ->
        match Hashtbl.find_opt summary f.Instr.fn_name with
        | Some ff -> lint_func ff
        | None -> [])
      prog.Instr.funcs

  (* ---------------------------------------------------------------- *)
  (* Rendering                                                        *)
  (* ---------------------------------------------------------------- *)

  let pp_finding fmt (x : finding) =
    Format.fprintf fmt "%s: %s/%s%s: [%s] %s"
      (severity_to_string x.severity)
      x.fn x.block
      (if x.index >= 0 then Printf.sprintf ":%d" x.index else "")
      x.rule x.message

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let counts (fs : finding list) =
    let n sev = List.length (List.filter (fun f -> f.severity = sev) fs) in
    (n Error, n Warning, n Info)

  (* One JSON object per lint run; deterministic (program order). *)
  let to_json (fs : finding list) : string =
    let b = Buffer.create 1024 in
    let errors, warnings, infos = counts fs in
    Printf.bprintf b
      "{\"counts\": {\"error\": %d, \"warning\": %d, \"info\": %d}, \
       \"findings\": ["
      errors warnings infos;
    List.iteri
      (fun i (x : finding) ->
        Printf.bprintf b
          "%s\n  {\"rule\": \"%s\", \"severity\": \"%s\", \"fn\": \"%s\", \
           \"block\": \"%s\", \"index\": %d, \"message\": \"%s\"}"
          (if i = 0 then "" else ",")
          (json_escape x.rule)
          (severity_to_string x.severity)
          (json_escape x.fn) (json_escape x.block) x.index
          (json_escape x.message))
      fs;
    Buffer.add_string b "]}";
    Buffer.contents b
end
