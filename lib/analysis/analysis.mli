(* Forward abstract interpretation over Minir CFGs: a worklist fixpoint
   with widening over a product domain (intervals × nullness × tribools
   × definite-initialization of non-escaping stack slots).

   Produces per-block entry states and per-branch edge facts that
   [Symex.Exec] uses to skip statically-proved panic checks, and a
   [Lint] pass that reports findings per function. Input programs are
   assumed well-formed ([Minir.Wellform.check]): in particular, the
   single-static-assignment of registers is what makes the def-map
   driven branch refinement sound. *)

module Instr = Minir.Instr
module Ty = Minir.Ty
module Value = Minir.Value

(* How the symbolic executor treats analysis facts. [Trust] prunes
   statically-dead edges without consulting the solver; [Distrust]
   still makes every solver call and cross-checks each static claim
   against the certified answer (the chaos/soak configuration). *)
type policy = Off | Trust | Distrust

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

module Interval : sig
  type t = Bot | I of int option * int option (* None = infinite bound *)

  val top : t
  val of_int : int -> t
  val join : t -> t -> t
  val meet : t -> t -> t
  val widen : t -> t -> t
  val mem : int -> t -> bool
  val finite : t -> bool
  val is_singleton : t -> bool
  val pp : Format.formatter -> t -> unit
end

module Tribool : sig
  type t = TBot | TT | TF | TTop

  val of_bool : bool -> t
  val join : t -> t -> t
  val meet : t -> t -> t
  val not_ : t -> t
  val pp : Format.formatter -> t -> unit
end

module Nullness : sig
  type t = NBot | NNull | NNot | NTop

  val join : t -> t -> t
  val meet : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

type aval = AInt of Interval.t | ABool of Tribool.t | APtr of Nullness.t | ATop

val a_join : aval -> aval -> aval
val top_of_ty : Ty.t -> aval
val default_of_ty : Ty.t -> aval
val pp_aval : Format.formatter -> aval -> unit

module Env : Map.S with type key = string
module SSet : Set.S with type elt = string

type st = {
  regs : aval Env.t; (* absent = ⊤ *)
  slots : aval Env.t; (* tracked (non-escaping scalar) slot contents *)
  inited : SSet.t; (* slots definitely explicitly stored *)
  prov : Instr.reg Env.t; (* reg ↦ slot it was loaded from, still valid *)
}

type state = Bot | St of st

val state_join : state -> state -> state
val state_equal : state -> state -> bool
val state_is_bottom : state -> bool
val pp_state : Format.formatter -> state -> unit

(* The generic engine, exposed for reuse by derived passes. *)
module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
end

module Fixpoint (D : DOMAIN) : sig
  val solve :
    blocks:(Instr.label * Instr.block) list ->
    entry:Instr.label ->
    init:D.t ->
    transfer:(Instr.label -> Instr.block -> D.t -> (Instr.label * D.t) list) ->
    (Instr.label, D.t) Hashtbl.t
end

(* Facts about one [Cond_br]: which outgoing edge the abstract state
   proves infeasible. *)
type edge_fact = { then_dead : bool; else_dead : bool }

(* Precomputed per-[Cond_br] record: the edge fact plus whether either
   successor block panics. One hash-table probe on the executor's
   hottest path. *)
type branch_info = { bi_fact : edge_fact; bi_guards_panic : bool }

type func_facts
type summary

(* Analyze every function; one [analyze] trace span per function. *)
val analyze : Instr.program -> summary

(* Domain-local memoized [analyze], keyed on the program's physical
   identity (the version compile memo yields one program value per
   domain, so re-verification never re-analyzes). *)
val summarize : Instr.program -> summary
val clear_memo : unit -> unit

val func_facts : summary -> string -> func_facts option

(* Fact for the branch terminating [block], matched by physical
   identity — callers must pass a block of the analyzed program value. *)
val branch_fact : summary -> string -> Instr.block -> edge_fact option

(* Same lookup, one probe, for callers that cache the [func_facts]. *)
val branch_info : func_facts -> Instr.block -> branch_info option

(* Entry state of a block; [Some Bot] = proved unreachable, [None] =
   unknown function. *)
val in_state : summary -> fn:string -> label:Instr.label -> state option
val reachable : summary -> fn:string -> label:Instr.label -> bool

(* γ-membership for the soundness tests: is a concrete frame/memory
   snapshot at some block entry inside [state]? [lookup] reads a live
   frame register (absent is vacuously inside); [load] dereferences the
   pointer a slot register holds. *)
val check_concrete :
  state ->
  lookup:(string -> Value.t option) ->
  load:(Value.ptr -> Value.t option) ->
  (unit, string) result

module Lint : sig
  type severity = Error | Warning | Info

  val severity_to_string : severity -> string

  type finding = {
    rule : string;
    severity : severity;
    fn : string;
    block : Instr.label;
    index : int; (* instruction index in the block; -1 = terminator *)
    message : string;
  }

  (* Deterministic (program-order) findings over every function. *)
  val run : Instr.program -> finding list

  val counts : finding list -> int * int * int (* errors, warnings, infos *)
  val pp_finding : Format.formatter -> finding -> unit
  val to_json : finding list -> string
end
