(* Forward abstract interpretation over Minir CFGs: a worklist fixpoint
   with widening over a product domain (intervals × nullness × tribools
   × definite-initialization of non-escaping stack slots).

   Produces per-block entry states and per-branch edge facts that
   [Symex.Exec] uses to skip statically-proved panic checks, and a
   [Lint] pass that reports findings per function. Input programs are
   assumed well-formed ([Minir.Wellform.check]): in particular, the
   single-static-assignment of registers is what makes the def-map
   driven branch refinement sound. *)

module Instr = Minir.Instr
module Ty = Minir.Ty
module Value = Minir.Value
module Callgraph = Minir.Callgraph

(* How the symbolic executor treats analysis facts. [Trust] prunes
   statically-dead edges without consulting the solver; [Distrust]
   still makes every solver call and cross-checks each static claim
   against the certified answer (the chaos/soak configuration). *)
type policy = Off | Trust | Distrust

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

module Interval : sig
  type t = Bot | I of int option * int option (* None = infinite bound *)

  val top : t
  val of_int : int -> t
  val join : t -> t -> t
  val meet : t -> t -> t
  val widen : t -> t -> t
  val mem : int -> t -> bool
  val finite : t -> bool
  val is_singleton : t -> bool
  val pp : Format.formatter -> t -> unit
end

module Tribool : sig
  type t = TBot | TT | TF | TTop

  val of_bool : bool -> t
  val join : t -> t -> t
  val meet : t -> t -> t
  val not_ : t -> t
  val pp : Format.formatter -> t -> unit
end

module Nullness : sig
  type t = NBot | NNull | NNot | NTop

  val join : t -> t -> t
  val meet : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

type aval = AInt of Interval.t | ABool of Tribool.t | APtr of Nullness.t | ATop

val a_join : aval -> aval -> aval

(* Sound meet for two covers of the same outcome: an empty
   intersection keeps the left side rather than introduce ⊥. *)
val a_meet : aval -> aval -> aval

(* Do the two avals intersect at all? (The lint-side emptiness test.) *)
val a_compatible : aval -> aval -> bool
val top_of_ty : Ty.t -> aval
val default_of_ty : Ty.t -> aval
val pp_aval : Format.formatter -> aval -> unit

(* ------------------------------------------------------------------ *)
(* Relational function summaries                                      *)
(* ------------------------------------------------------------------ *)

(* Computed bottom-up over the call-graph SCC condensation with all
   parameters at ⊤, so every component is sound for arbitrary calls:
   [rs_ret] covers any normally-returned value, [rs_rel] lists
   difference bounds [ret - arg_i ∈ itv] valid at every normal return,
   [rs_pre] is a *necessary* per-argument condition for normal return
   (lint-only — never used to refine caller state), [rs_pure] means no
   caller-visible store (transitively), and [rs_may_panic] /
   [rs_returns] expose exit reachability. *)
type rsummary = {
  rs_fn : string;
  rs_params : (string * Ty.t) list;
  rs_ret_ty : Ty.t option;
  rs_ret : aval;
  rs_rel : (int * Interval.t) list;
  rs_pre : (int * aval) list;
  rs_pure : bool;
  rs_may_panic : bool;
  rs_returns : bool;
}

val havoc_rsummary : Instr.func -> rsummary

(* Signature/shape agreement between a (possibly store-loaded) summary
   and the live function; summaries failing this are never trusted. *)
val rsummary_matches : Instr.func -> rsummary -> bool

(* Persistence hooks installed by the store layer (which owns the
   cone-fingerprint keying): [ipp_load fn] may serve a cached summary,
   [ipp_save fn rs] records a freshly computed one. [envfp] digests the
   filtered field invariants in effect — part of the key, because a
   store edit anywhere in the program can change a summary without
   touching that function's call cone. *)
type ip_persist = {
  ipp_load : envfp:string -> string -> rsummary option;
  ipp_save : envfp:string -> string -> rsummary -> unit;
}

val set_ip_persist : ip_persist option -> unit
val ip_persist_installed : unit -> ip_persist option

(* ------------------------------------------------------------------ *)
(* Analysis environments                                              *)
(* ------------------------------------------------------------------ *)

(* Harness-supplied facts, all optional — [summarize] without an env is
   sound for any entry into any function. [env_roots] are the functions
   the harness may call directly (every non-root's parameters narrow to
   the join of syntactic call-site arguments); [env_entry] gives
   per-root argument facts (parameter index ↦ aval) the harness
   enforces; [env_fields] declares struct-field invariants of the
   harness-built heap, re-verified against the program by
   [field_invariants_filter] before use. *)
type env = {
  env_roots : string list;
  env_entry : (string * (int * aval) list) list;
  env_fields : (string * int * aval) list;
}

(* Drop declared field invariants the program could invalidate: kept
   invariants admit the zero value (covers freshly-allocated objects)
   and provably have no store targeting their cell anywhere. *)
val field_invariants_filter :
  Instr.program -> (string * int * aval) list -> (string * int * aval) list

module Env : Map.S with type key = string
module SSet : Set.S with type elt = string

type st = {
  regs : aval Env.t; (* absent = ⊤ *)
  slots : aval Env.t; (* tracked (non-escaping scalar) slot contents *)
  inited : SSet.t; (* slots definitely explicitly stored *)
  prov : Instr.reg Env.t; (* reg ↦ slot it was loaded from, still valid *)
}

type state = Bot | St of st

(* Transitively write-free functions (no store through a non-local
   pointer, no opaque store, no call to an unknown or impure callee). *)
val pure_set : Instr.program -> Callgraph.t -> SSet.t
val state_join : state -> state -> state
val state_equal : state -> state -> bool
val state_is_bottom : state -> bool
val pp_state : Format.formatter -> state -> unit

(* The generic engine, exposed for reuse by derived passes. *)
module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
end

module Fixpoint (D : DOMAIN) : sig
  val solve :
    blocks:(Instr.label * Instr.block) list ->
    entry:Instr.label ->
    init:D.t ->
    transfer:(Instr.label -> Instr.block -> D.t -> (Instr.label * D.t) list) ->
    (Instr.label, D.t) Hashtbl.t
end

(* Facts about one [Cond_br]: which outgoing edge the abstract state
   proves infeasible. *)
type edge_fact = { then_dead : bool; else_dead : bool }

(* Precomputed per-[Cond_br] record: the edge fact plus whether either
   successor block panics, plus whether the interprocedural layer
   (summaries / environment) added dead-edge knowledge the plain
   intraprocedural pass lacked. One hash-table probe on the executor's
   hottest path. *)
type branch_info = {
  bi_fact : edge_fact;
  bi_guards_panic : bool;
  bi_interproc : bool;
}

type func_facts
type summary

(* Analyze every function: bottom-up relational summaries (persisted
   through [ip_persist] when installed), then per-function fixpoints
   with summaries applied at call sites; with an [env], a context
   fixpoint additionally narrows non-root parameters. One [analyze]
   trace span per function fixpoint. *)
val analyze : ?env:env -> Instr.program -> summary

(* Domain-local memoized [analyze], keyed on the program's physical
   identity plus the structural env (the version compile memo yields
   one program value per domain, so re-verification never
   re-analyzes). *)
val summarize : ?env:env -> Instr.program -> summary
val clear_memo : unit -> unit

val func_facts : summary -> string -> func_facts option

(* The converged summary of one function, if defined. *)
val rsummary_of : summary -> string -> rsummary option
val callgraph : summary -> Callgraph.t

(* (hits, misses) of the persistence hook during this analysis. *)
val store_traffic : summary -> int * int

(* Aggregate counters for `dnsv lint --json` / CI stats upload. *)
val interproc_stats : summary -> (string * int) list

(* Fact for the branch terminating [block], matched by physical
   identity — callers must pass a block of the analyzed program value. *)
val branch_fact : summary -> string -> Instr.block -> edge_fact option

(* Same lookup, one probe, for callers that cache the [func_facts]. *)
val branch_info : func_facts -> Instr.block -> branch_info option

(* Entry state of a block; [Some Bot] = proved unreachable, [None] =
   unknown function. *)
val in_state : summary -> fn:string -> label:Instr.label -> state option
val reachable : summary -> fn:string -> label:Instr.label -> bool

(* γ-membership for the soundness tests: is a concrete frame/memory
   snapshot at some block entry inside [state]? [lookup] reads a live
   frame register (absent is vacuously inside); [load] dereferences the
   pointer a slot register holds. *)
val check_concrete :
  state ->
  lookup:(string -> Value.t option) ->
  load:(Value.ptr -> Value.t option) ->
  (unit, string) result

module Lint : sig
  type severity = Error | Warning | Info

  val severity_to_string : severity -> string

  type finding = {
    rule : string;
    severity : severity;
    fn : string;
    block : Instr.label;
    index : int; (* instruction index in the block; -1 = terminator *)
    message : string;
  }

  (* Deterministic (program-order) findings over every function.
     [entries] switches on the dead-callee class (functions
     unreachable from every listed entry); [env] sharpens the facts
     the value-flow rules see. *)
  val run : ?env:env -> ?entries:string list -> Instr.program -> finding list

  val counts : finding list -> int * int * int (* errors, warnings, infos *)
  val pp_finding : Format.formatter -> finding -> unit
  val to_json : finding list -> string
end
