(* General simplex for linear rational arithmetic, after Dutertre & de
   Moura (CAV'06) — the decision core under the LIA branch-and-bound.

   The problem is presented as a set of *rows* defining slack variables as
   linear combinations of the original variables, plus lower/upper bounds
   on any variable. `check` decides feasibility over the rationals and
   produces a satisfying assignment. Bland's pivoting rule guarantees
   termination. Problems are small (path conditions over a few dozen
   label/length variables), so a dense tableau is the simple, fast
   choice. *)

type bound = { lower : Q.t option; upper : Q.t option; }
val no_bound : bound
type t = {
  nvars : int;
  tableau : Q.t array array;
  basic_of_row : int array;
  row_of_var : int option array;
  bounds : bound array;
  beta : Q.t array;
}
(* Explanation of infeasibility: the violated basic variable, the bound
   side it violates, and the nonzero (coefficient, nonbasic variable)
   entries of its final tableau row. Every nonbasic listed is pinned at
   the bound blocking movement, so the row supports a Farkas-style
   certificate (constructed by [Lia]). *)
type conflict = {
  cvar : int;
  cbelow : bool;
  crow : (Q.t * int) list;
}

type result = Feasible of Q.t array | Infeasible of conflict
val get_bound : t -> int -> bound
val create :
  nvars:int -> rows:(Q.t * int) list list -> bound_of:(int -> bound) -> t
val below_lower : t -> int -> bool
val above_upper : t -> int -> bool
val violated : t -> int -> bool
val pivot : t -> int -> int -> unit
val pivot_and_update : t -> int -> int -> Q.t -> unit
val find_violating_basic : t -> int option
val check : t -> result
