(* Certificate data carried alongside every solver verdict; see the
   interface for the format. Pure data plus the validator hook. *)

type coeff = { pnum : int; pden : int }

let coeff_of_ints n d =
  if d = 0 then invalid_arg "Proof.coeff_of_ints: zero denominator";
  if d < 0 then { pnum = -n; pden = -d } else { pnum = n; pden = d }

let pp_coeff fmt { pnum; pden } =
  if pden = 1 then Format.fprintf fmt "%d" pnum
  else Format.fprintf fmt "%d/%d" pnum pden

type step = { fact : Term.t; lam : coeff }

type tree =
  | Split of { atom : Term.t; if_true : tree; if_false : tree }
  | Split_neq of {
      neq : Term.t;
      le1 : Term.t;
      ge1 : Term.t;
      left : tree;
      right : tree;
    }
  | Bool_leaf
  | Farkas of step list

type t = Model_witness of Model.t | Unsat_witness of tree

let rec tree_size = function
  | Bool_leaf -> 1
  | Farkas steps -> 1 + List.length steps
  | Split { if_true; if_false; _ } -> 1 + tree_size if_true + tree_size if_false
  | Split_neq { left; right; _ } -> 1 + tree_size left + tree_size right

type verdict = Valid | Invalid of string

type validator = {
  validate_sat : Term.t list -> Model.t -> verdict;
  validate_unsat : Term.t list -> tree -> verdict;
}

let installed : validator option Atomic.t = Atomic.make None
let set_validator v = Atomic.set installed (Some v)
let validator () = Atomic.get installed
