(* A CDCL SAT core with certified clause learning.

   Two-watched-literal propagation, a decision trail with levels, 1UIP
   conflict analysis with non-chronological backjumping, Luby restarts,
   and an activity-based (VSIDS-style) decision heuristic with
   deterministic tie-breaking (highest activity wins; equal activities
   break toward the lowest variable id, so runs are reproducible).

   The solver is *persistent*: [add_clause] between [solve] calls
   backtracks just far enough to splice the new clause in, keeping the
   trail prefix and every learned clause — this is how the DPLL(T) loop
   in [Solver] turns theory-refuting blocking clauses into learned
   facts instead of scratch re-solves.

   Every learned clause carries a *resolution-chain certificate*: the
   antecedent clause ids and pivot variables of its 1UIP derivation.
   [validate] replays every chain (and, after an Unsat answer, the
   final derivation of the empty clause) by syntactic resolution alone;
   a clause the chains cannot re-derive — e.g. one tampered by the
   [Faultinject.Conflict_corrupt] site, which fires inside conflict
   analysis — fails validation, and the caller degrades the answer to
   Unknown rather than serving it. A corrupted learned clause can only
   ever *strengthen* the clause set, so a Sat answer remains a genuine
   model of the original clauses regardless. *)

type assignment = bool array
(* index by variable id; valid between 1 and nvars *)

type result = Sat of assignment | Unsat

type t

val create : nvars:int -> Cnf.clause list -> t

(* Add a clause mid-search (a theory lemma or an extra constraint).
   Backtracks as needed so the clause is consistent with the trail;
   the next [solve] resumes from there. *)
val add_clause : t -> Cnf.clause -> unit

(* Resumable: after a Sat answer, [add_clause] then [solve] continues
   the same search with all learned clauses intact. *)
val solve : t -> result

(* Replay every learned clause's resolution chain (and the final
   empty-clause derivation after Unsat) by syntactic resolution alone.
   False iff some stored clause is not the clause its chain derives —
   the learned-clause certificate story's fail-closed check. *)
val validate : t -> bool

(* Search statistics for this solver instance (the registry counters
   solver.conflicts / solver.learned_clauses / solver.restarts /
   solver.propagations aggregate the same quantities globally). *)
val conflicts : t -> int
val learned : t -> int
val restarts : t -> int
val propagations : t -> int
