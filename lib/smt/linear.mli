(* Linear normal form for integer terms and atomic constraints.

   A linear form is  c0 + Σ ci·xi  with integer coefficients over named
   integer variables. Every integer term of the restricted logic (§4.2)
   normalizes into this shape, except `ite`-valued integers, which the
   upstream layers eliminate by path splitting before terms reach the
   solver. *)

module Coeffs :
  sig
    type key = String.t
    type 'a t = 'a Map.Make(String).t
    val empty : 'a t
    val add : key -> 'a -> 'a t -> 'a t
    val add_to_list : key -> 'a -> 'a list t -> 'a list t
    val update : key -> ('a option -> 'a option) -> 'a t -> 'a t
    val singleton : key -> 'a -> 'a t
    val remove : key -> 'a t -> 'a t
    val merge :
      (key -> 'a option -> 'b option -> 'c option) -> 'a t -> 'b t -> 'c t
    val union : (key -> 'a -> 'a -> 'a option) -> 'a t -> 'a t -> 'a t
    val cardinal : 'a t -> int
    val bindings : 'a t -> (key * 'a) list
    val min_binding : 'a t -> key * 'a
    val min_binding_opt : 'a t -> (key * 'a) option
    val max_binding : 'a t -> key * 'a
    val max_binding_opt : 'a t -> (key * 'a) option
    val choose : 'a t -> key * 'a
    val choose_opt : 'a t -> (key * 'a) option
    val find : key -> 'a t -> 'a
    val find_opt : key -> 'a t -> 'a option
    val find_first : (key -> bool) -> 'a t -> key * 'a
    val find_first_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val find_last : (key -> bool) -> 'a t -> key * 'a
    val find_last_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val iter : (key -> 'a -> unit) -> 'a t -> unit
    val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
    val map : ('a -> 'b) -> 'a t -> 'b t
    val mapi : (key -> 'a -> 'b) -> 'a t -> 'b t
    val filter : (key -> 'a -> bool) -> 'a t -> 'a t
    val filter_map : (key -> 'a -> 'b option) -> 'a t -> 'b t
    val partition : (key -> 'a -> bool) -> 'a t -> 'a t * 'a t
    val split : key -> 'a t -> 'a t * 'a option * 'a t
    val is_empty : 'a t -> bool
    val mem : key -> 'a t -> bool
    val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
    val compare : ('a -> 'a -> int) -> 'a t -> 'a t -> int
    val for_all : (key -> 'a -> bool) -> 'a t -> bool
    val exists : (key -> 'a -> bool) -> 'a t -> bool
    val to_list : 'a t -> (key * 'a) list
    val of_list : (key * 'a) list -> 'a t
    val to_seq : 'a t -> (key * 'a) Seq.t
    val to_rev_seq : 'a t -> (key * 'a) Seq.t
    val to_seq_from : key -> 'a t -> (key * 'a) Seq.t
    val add_seq : (key * 'a) Seq.t -> 'a t -> 'a t
    val of_seq : (key * 'a) Seq.t -> 'a t
  end
type t = { const : int; coeffs : int Coeffs.t; }
val const : int -> t
val zero : t
val var : ?coeff:int -> Coeffs.key -> t
val coeff : Coeffs.key -> t -> int
val add_coeff : Coeffs.key -> int -> int Coeffs.t -> int Coeffs.t
val add : t -> t -> t
val scale : int -> t -> t
val neg : t -> t
val sub : t -> t -> t
val is_const : t -> bool
val coeff_free : t -> int
val const_value : t -> int option
val equal : t -> t -> bool
val vars : t -> Coeffs.key list
val fold_coeffs : ('a -> Coeffs.key -> int -> 'a) -> 'a -> t -> 'a
exception Nonlinear of string
val of_term : Term.t -> t
val to_term : t -> Term.t
val eval : (Coeffs.key -> int) -> t -> int
val pp : Format.formatter -> t -> unit
type atom = Le_zero of t | Eq_zero of t | Neq_zero of t
val atom_of_term : Term.t -> atom option
val negate_atom : atom -> atom

(* Canonical memo key for an atom (constructor tag, constant, sorted
   coefficient bindings). Safe to hash and compare structurally, unlike
   the underlying [Coeffs.t] balanced trees. *)
type key = int * int * (string * int) list
val key_of_atom : atom -> key
val eval_atom : (Coeffs.key -> int) -> atom -> bool
val pp_atom : Format.formatter -> atom -> unit
