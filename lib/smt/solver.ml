(* The solver facade: lazy DPLL(T) over the SAT core and the LIA theory.

   This plays the role Z3 plays in the paper (§5.2): every branch decision
   of the symbolic executor and every refinement obligation lands here.
   Two paths:

   - conjunctions of literals (the overwhelmingly common case — path
     conditions) go straight to the LIA procedure;
   - arbitrary boolean structure goes through Tseitin CNF + DPLL, with
     theory-refuted assignments blocked by clauses until convergence. *)

type result = Sat of Model.t | Unsat | Unknown

(* Statistics for the Figure-12 style reporting. [unknowns] counts every
   Unknown answer (including forced ones): any check that leaned on one
   must be downgraded to inconclusive by its caller. *)
type stats = {
  mutable checks : int;
  mutable fast_path : int;
  mutable dpllt_iterations : int;
  mutable unknowns : int;
}

let stats = { checks = 0; fast_path = 0; dpllt_iterations = 0; unknowns = 0 }

let reset_stats () =
  stats.checks <- 0;
  stats.fast_path <- 0;
  stats.dpllt_iterations <- 0;
  stats.unknowns <- 0

(* The budget in scope for this solver, if any. Scoped rather than
   threaded per-call: every branch decision and refinement obligation
   lands here, and the entry points (Refine.Check, Refine.Layers,
   Symex.Exec.run) establish the scope once. *)
let current_budget : Budget.t option ref = ref None

let with_budget (b : Budget.t) (f : unit -> 'a) : 'a =
  let saved = !current_budget in
  current_budget := Some b;
  Fun.protect ~finally:(fun () -> current_budget := saved) f

exception Not_conjunctive

(* Try to read a term as a conjunction of literals:
   returns (theory atoms, boolean literal list). *)
let literals_of_conjunction (ts : Term.t list) =
  let atoms = ref [] and bools = ref [] in
  let rec literal positive (t : Term.t) =
    match t with
    | Term.True -> if not positive then raise Not_conjunctive
    | Term.False -> if positive then raise Not_conjunctive
    | Term.Not t -> literal (not positive) t
    | Term.Var { name; sort = Term.Bool } -> bools := (name, positive) :: !bools
    | Term.And ts when positive -> List.iter (literal true) ts
    | Term.Eq (a, _) when Term.is_bool a -> raise Not_conjunctive
    | Term.Eq _ | Term.Le _ | Term.Lt _ -> (
        match Linear.atom_of_term t with
        | Some atom ->
            !atoms
            |> fun acc ->
            atoms := (if positive then atom else Linear.negate_atom atom) :: acc
        | None -> raise Not_conjunctive)
    | _ -> raise Not_conjunctive
  in
  List.iter (literal true) ts;
  (!atoms, !bools)

let model_of_lia_model (m : Lia.model) bools =
  let base =
    Lia.String_map.fold (fun name n acc -> Model.add_int name n acc) m
      Model.empty
  in
  List.fold_left
    (fun acc (name, positive) -> Model.add_bool name positive acc)
    base bools

let check_fast (ts : Term.t list) : result option =
  match literals_of_conjunction ts with
  | exception Not_conjunctive -> None
  | exception Linear.Nonlinear _ -> None
  | atoms, bools ->
      stats.fast_path <- stats.fast_path + 1;
      (* Contradictory boolean literals? *)
      let contradictory =
        List.exists
          (fun (name, pos) ->
            List.exists (fun (n, p) -> n = name && p <> pos) bools)
          bools
      in
      if contradictory then Some Unsat
      else
        Some
          (match Lia.check atoms with
          | Lia.Sat m -> Sat (model_of_lia_model m bools)
          | Lia.Unsat -> Unsat
          | Lia.Unknown -> Unknown)

let max_dpllt_iterations = 100_000

let check_dpllt (t : Term.t) : result =
  match Cnf.of_term t with
  | exception Linear.Nonlinear _ -> Unknown
  | cnf -> (
      let sat = Sat.create ~nvars:cnf.Cnf.nvars cnf.Cnf.clauses in
      let rec loop n =
        if n > max_dpllt_iterations then Unknown
        else begin
          (* A divergent refutation loop must still honor the wall
             clock: this is the solver's only unbounded iteration. *)
          (match !current_budget with
          | Some b -> Budget.check_deadline b
          | None -> ());
          stats.dpllt_iterations <- stats.dpllt_iterations + 1;
          match Sat.solve sat with
          | Sat.Unsat -> Unsat
          | Sat.Sat assignment -> (
              (* Gather theory literals implied by this assignment. *)
              let theory_lits = ref [] and bools = ref [] in
              List.iter
                (fun (v, kind) ->
                  match kind with
                  | Cnf.Bool_atom name ->
                      if name <> "$true" then bools := (name, assignment.(v)) :: !bools
                  | Cnf.Theory_atom term -> (
                      match Linear.atom_of_term term with
                      | Some atom ->
                          let atom =
                            if assignment.(v) then atom else Linear.negate_atom atom
                          in
                          theory_lits := (v, assignment.(v), atom) :: !theory_lits
                      | None -> Term.sort_error "solver: non-linear theory atom"))
                cnf.Cnf.atoms;
              let atoms = List.map (fun (_, _, a) -> a) !theory_lits in
              match Lia.check atoms with
              | Lia.Sat m -> Sat (model_of_lia_model m !bools)
              | Lia.Unknown -> Unknown
              | Lia.Unsat ->
                  (* Block this theory-level assignment and retry. *)
                  let blocking =
                    List.map
                      (fun (v, value, _) -> if value then -v else v)
                      !theory_lits
                  in
                  if blocking = [] then Unsat
                  else begin
                    Sat.add_clause sat blocking;
                    loop (n + 1)
                  end)
        end
      in
      loop 0)

(* Decide satisfiability of the conjunction of [ts]. Charges the budget
   in scope and records Unknown answers — including injected ones — so
   callers can refuse to call an Unknown-dependent check a proof. *)
let check (ts : Term.t list) : result =
  stats.checks <- stats.checks + 1;
  (match !current_budget with
  | Some b -> Budget.tick_solver b
  | None -> ());
  let r =
    if Faultinject.fire Faultinject.Solver_unknown then Unknown
    else
      match Term.and_ ts with
      | Term.True -> Sat Model.empty
      | Term.False -> Unsat
      | conj -> (
          match check_fast ts with
          | Some r -> r
          | None -> check_dpllt conj)
  in
  (match r with Unknown -> stats.unknowns <- stats.unknowns + 1 | _ -> ());
  r

let is_sat ts = match check ts with Sat _ -> true | Unsat | Unknown -> false
let is_unsat ts = match check ts with Unsat -> true | Sat _ | Unknown -> false

type entailment = Valid | Counterexample of Model.t | Unknown_validity

(* hyps ⊢ goal  iff  hyps ∧ ¬goal is unsatisfiable. *)
let entails ~hyps goal =
  match check (Term.not_ goal :: hyps) with
  | Unsat -> Valid
  | Sat m -> Counterexample m
  | Unknown -> Unknown_validity
