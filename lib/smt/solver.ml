(* The solver facade: lazy DPLL(T) over the SAT core and the LIA theory.

   This plays the role Z3 plays in the paper (§5.2): every branch decision
   of the symbolic executor and every refinement obligation lands here.
   Two paths:

   - conjunctions of literals (the overwhelmingly common case — path
     conditions) go straight to the LIA procedure;
   - arbitrary boolean structure goes through Tseitin CNF + DPLL, with
     theory-refuted assignments blocked by clauses until convergence.

   Two performance layers sit on top (both domain-local, so parallel
   pipeline workers never contend or race):

   - a result cache keyed on the canonically sorted conjunction, so the
     re-verification workload — re-running the checker after an engine
     iteration, or across near-identical engine versions — answers
     repeated obligations in O(key);
   - an incremental assertion stack ([Incremental]) that mirrors the
     symbolic executor's path condition, so a branch decision extends the
     parent path's analyzed state by one literal instead of re-translating
     the full conjunction. *)

type result = Sat of Model.t | Unsat | Unknown

(* Statistics for the Figure-12 style reporting, stored in the metrics
   registry (lib/trace): each named counter owns a domain-local cell,
   so parallel workers never contend, and the domain pool merges worker
   deltas at the join barrier with [Trace.Metrics.absorb]. The [stats]
   record survives as a *view* — [stats ()] reads the registry and
   subtracts the current window mark — so callers keep the field-access
   idiom while the storage is shared with every other subsystem's
   metrics. [unknowns] counts every Unknown answer (including forced
   ones): any check that leaned on one must be downgraded to
   inconclusive by its caller. *)
type stats = {
  mutable checks : int;
  mutable fast_path : int;
  mutable dpllt_iterations : int;
  mutable unknowns : int;
  mutable cache_hits : int;     (* conjunctions answered from the memo *)
  mutable cache_misses : int;   (* conjunctions solved then memoized *)
  mutable incremental_checks : int; (* served via an assertion stack *)
  mutable scratch_checks : int; (* conjunction rebuilt from scratch *)
  mutable cert_checks : int; (* certificates validated *)
  mutable cert_failures : int; (* certificates that failed validation *)
}

module M = Trace.Metrics

let c_checks = M.counter "solver.checks"
let c_fast_path = M.counter "solver.fast_path"
let c_dpllt_iterations = M.counter "solver.dpllt_iterations"
let c_unknowns = M.counter "solver.unknowns"
let c_cache_hits = M.counter "solver.cache_hits"
let c_cache_misses = M.counter "solver.cache_misses"
let c_incremental_checks = M.counter "solver.incremental_checks"
let c_scratch_checks = M.counter "solver.scratch_checks"
let c_cert_checks = M.counter "solver.cert_checks"
let c_cert_failures = M.counter "solver.cert_failures"

(* Latency histograms price two clock reads per observation, so they
   observe only while a trace is recording; the count-shaped pc-depth
   histogram is a plain bucket bump and stays on. *)
let h_check_seconds = M.histogram "solver.check_seconds"
let h_pc_depth = M.histogram "solver.pc_depth"
let h_cert_seconds = M.histogram "cert.validate_seconds"

let timed (h : M.histogram) (f : unit -> 'a) : 'a =
  if not (Trace.enabled ()) then f ()
  else begin
    let t0 = Trace.now_s () in
    let r = f () in
    M.observe h (Trace.now_s () -. t0);
    r
  end

let fresh_stats () =
  {
    checks = 0;
    fast_path = 0;
    dpllt_iterations = 0;
    unknowns = 0;
    cache_hits = 0;
    cache_misses = 0;
    incremental_checks = 0;
    scratch_checks = 0;
    cert_checks = 0;
    cert_failures = 0;
  }

(* The registry's per-domain cumulative values, as a record. *)
let raw () : stats =
  {
    checks = M.value c_checks;
    fast_path = M.value c_fast_path;
    dpllt_iterations = M.value c_dpllt_iterations;
    unknowns = M.value c_unknowns;
    cache_hits = M.value c_cache_hits;
    cache_misses = M.value c_cache_misses;
    incremental_checks = M.value c_incremental_checks;
    scratch_checks = M.value c_scratch_checks;
    cert_checks = M.value c_cert_checks;
    cert_failures = M.value c_cert_failures;
  }

let add_stats ~into:(a : stats) (b : stats) =
  a.checks <- a.checks + b.checks;
  a.fast_path <- a.fast_path + b.fast_path;
  a.dpllt_iterations <- a.dpllt_iterations + b.dpllt_iterations;
  a.unknowns <- a.unknowns + b.unknowns;
  a.cache_hits <- a.cache_hits + b.cache_hits;
  a.cache_misses <- a.cache_misses + b.cache_misses;
  a.incremental_checks <- a.incremental_checks + b.incremental_checks;
  a.scratch_checks <- a.scratch_checks + b.scratch_checks;
  a.cert_checks <- a.cert_checks + b.cert_checks;
  a.cert_failures <- a.cert_failures + b.cert_failures

let diff_stats (a : stats) (b : stats) : stats =
  {
    checks = a.checks - b.checks;
    fast_path = a.fast_path - b.fast_path;
    dpllt_iterations = a.dpllt_iterations - b.dpllt_iterations;
    unknowns = a.unknowns - b.unknowns;
    cache_hits = a.cache_hits - b.cache_hits;
    cache_misses = a.cache_misses - b.cache_misses;
    incremental_checks = a.incremental_checks - b.incremental_checks;
    scratch_checks = a.scratch_checks - b.scratch_checks;
    cert_checks = a.cert_checks - b.cert_checks;
    cert_failures = a.cert_failures - b.cert_failures;
  }

let copy_into (dst : stats) (src : stats) =
  dst.checks <- src.checks;
  dst.fast_path <- src.fast_path;
  dst.dpllt_iterations <- src.dpllt_iterations;
  dst.unknowns <- src.unknowns;
  dst.cache_hits <- src.cache_hits;
  dst.cache_misses <- src.cache_misses;
  dst.incremental_checks <- src.incremental_checks;
  dst.scratch_checks <- src.scratch_checks;
  dst.cert_checks <- src.cert_checks;
  dst.cert_failures <- src.cert_failures

(* Window and lifetime marks, domain-local. [stats ()] is everything
   since the last [reset_stats] (called per verification attempt, to
   scope the per-attempt [unknowns] reads); [lifetime ()] everything
   since the last [reset_lifetime]. Fresh domains start with zero
   registry cells and zero marks, so a worker's raw values are already
   the delta its joiner wants. *)
let mark_key : stats Domain.DLS.key = Domain.DLS.new_key fresh_stats
let base_key : stats Domain.DLS.key = Domain.DLS.new_key fresh_stats

let stats () : stats = diff_stats (raw ()) (Domain.DLS.get mark_key)
let reset_stats () = copy_into (Domain.DLS.get mark_key) (raw ())
let lifetime () : stats = diff_stats (raw ()) (Domain.DLS.get base_key)

let reset_lifetime () =
  let r = raw () in
  copy_into (Domain.DLS.get base_key) r;
  copy_into (Domain.DLS.get mark_key) r

(* Fold a worker domain's stats delta into this domain's lifetime (the
   legacy join-barrier entry point; Parallel.Domainpool now absorbs
   whole registry snapshots itself). Advancing the window mark by the
   same delta keeps the absorption out of the current window,
   preserving the old fold-into-lifetime-only semantics. *)
let absorb_stats (delta : stats) =
  M.add c_checks delta.checks;
  M.add c_fast_path delta.fast_path;
  M.add c_dpllt_iterations delta.dpllt_iterations;
  M.add c_unknowns delta.unknowns;
  M.add c_cache_hits delta.cache_hits;
  M.add c_cache_misses delta.cache_misses;
  M.add c_incremental_checks delta.incremental_checks;
  M.add c_scratch_checks delta.scratch_checks;
  M.add c_cert_checks delta.cert_checks;
  M.add c_cert_failures delta.cert_failures;
  add_stats ~into:(Domain.DLS.get mark_key) delta

(* The budget in scope for this solver, if any. Scoped rather than
   threaded per-call: every branch decision and refinement obligation
   lands here, and the entry points (Refine.Check, Refine.Layers,
   Symex.Exec.run) establish the scope once. Domain-local so each
   parallel worker carries its own budget. *)
let current_budget_key : Budget.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_budget () = Domain.DLS.get current_budget_key

let with_budget (b : Budget.t) (f : unit -> 'a) : 'a =
  let cell = current_budget () in
  let saved = !cell in
  cell := Some b;
  Fun.protect ~finally:(fun () -> cell := saved) f

(* ------------------------------------------------------------------ *)
(* Result cache                                                       *)
(* ------------------------------------------------------------------ *)

(* The switch is Atomic so `set_caching false` on the main domain (the
   bench's "seed-equivalent" mode) is observed by worker domains. *)
let caching = Atomic.make true
let set_caching b = Atomic.set caching b
let caching_enabled () = Atomic.get caching

(* Incremental-stack switch (on by default). When off, [Incremental]
   checks degrade to monolithic [check]s of their full term list — the
   pre-optimization behavior, kept for before/after measurement. *)
let incremental = Atomic.make true
let set_incremental b = Atomic.set incremental b
let incremental_enabled () = Atomic.get incremental

(* Certificate switch (on by default). When on and a validator is
   installed (see [Proof.set_validator] / [Cert.install]), every Sat and
   Unsat answer handed out — fresh, replayed from a cache, or served by
   the incremental stack's refuted-prefix short-circuit — is validated
   against its certificate first; a result whose certificate does not
   check out is degraded to Unknown and counted in
   [stats.cert_failures], so a corrupted memo entry can degrade a
   verdict but never flip it. *)
let certify = Atomic.make true
let set_certify b = Atomic.set certify b
let certify_enabled () = Atomic.get certify

(* Persistent-store hook (installed by Store.with_solver from lib/store,
   which sits above this library). Consulted ONLY on in-memory cache
   misses — hits never pay for it — and only along the caching-enabled
   paths, so disabling the result cache also disconnects the store.
   [p_lookup] is handed the canonical term list of the query and is
   expected to return nothing it cannot justify (the store re-validates
   certificates on load and falls through to a fresh solve on any
   failure); whatever it serves still passes this solver's own
   [validate] gatekeeper before leaving. [p_save] receives only
   Sat-with-model and Unsat-with-certificate answers; Unknown is never
   persisted for the same reason it is never cached. *)
type persist = {
  p_lookup : Term.t list -> (result * Proof.t option) option;
  p_save : Term.t list -> result * Proof.t option -> unit;
}

let persist_hook : persist option Atomic.t = Atomic.make None
let set_persist p = Atomic.set persist_hook p
let persist_installed () = Atomic.get persist_hook

(* Two memo tables, both keyed on canonical forms:

   - [lia]: sorted+deduped [Linear.key_of_atom] lists — the literal
     conjunctions of the fast path and the incremental stack;
   - [full]: sorted+deduped term lists for the general DPLL(T) path
     (terms are hash-consed, so polymorphic compare is cheap and, unlike
     [Linear.atom], they contain no balanced trees, so it is reliable).

   Unknown is never cached: it depends on the budget and fault plan in
   scope, not on the conjunction. Cached entries are solved on the
   canonically sorted conjunction, so a cached model is a function of
   the key alone — sequential and parallel runs return byte-identical
   verdicts regardless of cache population order. *)
(* Entries carry the certificate produced when they were solved: LIA
   proofs are index-based (positions in the canonical key), so a hit
   re-anchors them to the hitting call's own literal terms; full-path
   certificates are term-level already (the key is the term list). A
   hit's certificate is re-validated before the cached answer is
   trusted. *)
type cache = {
  lia : (Linear.key list, Lia.result * Lia.proof option) Hashtbl.t;
  full : (Term.t list, result * Proof.t option) Hashtbl.t;
}

let cache_key : cache Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { lia = Hashtbl.create 1024; full = Hashtbl.create 256 })

let cache_limit = 1 lsl 16

let clear_caches () =
  let c = Domain.DLS.get cache_key in
  Hashtbl.reset c.lia;
  Hashtbl.reset c.full

exception Not_conjunctive

(* Try to read a term as a conjunction of literals: returns (theory
   atoms, boolean literal list). Each theory atom carries its *source
   literal* — the asserted term (negation folded in) that produced it —
   which is the provenance certificates are anchored to: the checker
   recognizes exactly the asserted input literals as Farkas facts. *)
let literals_of_conjunction_src (ts : Term.t list) =
  let atoms = ref [] and bools = ref [] in
  let rec literal positive (t : Term.t) =
    match t with
    | Term.True -> if not positive then raise Not_conjunctive
    | Term.False -> if positive then raise Not_conjunctive
    | Term.Not t -> literal (not positive) t
    | Term.Var { name; sort = Term.Bool } -> bools := (name, positive) :: !bools
    | Term.And ts when positive -> List.iter (literal true) ts
    | Term.Eq (a, _) when Term.is_bool a -> raise Not_conjunctive
    | Term.Eq _ | Term.Le _ | Term.Lt _ -> (
        match Linear.atom_of_term t with
        | Some atom ->
            let atom = if positive then atom else Linear.negate_atom atom in
            let src = if positive then t else Term.not_ t in
            atoms := (atom, src) :: !atoms
        | None -> raise Not_conjunctive)
    | _ -> raise Not_conjunctive
  in
  List.iter (literal true) ts;
  (!atoms, !bools)

let literals_of_conjunction (ts : Term.t list) =
  let atoms, bools = literals_of_conjunction_src ts in
  (List.map fst atoms, bools)

let model_of_lia_model (m : Lia.model) bools =
  let base =
    Lia.String_map.fold (fun name n acc -> Model.add_int name n acc) m
      Model.empty
  in
  List.fold_left
    (fun acc (name, positive) -> Model.add_bool name positive acc)
    base bools

(* Re-anchor an index-based LIA proof to term-level facts. [provs.(i)]
   is the asserted literal term behind canonical atom i; [atoms.(i)] the
   atom itself (needed to render disequality tightenings as terms).
   Branching bounds x ≤ k / x ≥ k become the terms  x ≤ k  and
   ¬(x ≤ k−1), matching the split atoms the checker tracks in its
   context. *)
let tree_of_lia_proof (atoms : Linear.atom array) (provs : Term.t array)
    (p : Lia.proof) : Proof.tree option =
  let exception Fail in
  let q_coeff (q : Q.t) = { Proof.pnum = Q.num q; pden = Q.den q } in
  let neq_terms i =
    match atoms.(i) with
    | Linear.Neq_zero lin ->
        ( Term.le (Linear.to_term lin) (Term.int (-1)),
          Term.le (Linear.to_term (Linear.neg lin)) (Term.int (-1)) )
    | _ -> raise Fail
  in
  let term_of_fact = function
    | Lia.F_atom i -> provs.(i)
    | Lia.F_le (x, k) -> Term.le (Term.int_var x) (Term.int k)
    | Lia.F_ge (x, k) -> Term.not_ (Term.le (Term.int_var x) (Term.int (k - 1)))
    | Lia.F_neq_le i -> fst (neq_terms i)
    | Lia.F_neq_ge i -> snd (neq_terms i)
  in
  let rec conv = function
    | Lia.P_farkas steps ->
        Proof.Farkas
          (List.map
             (fun (f, q) -> { Proof.fact = term_of_fact f; lam = q_coeff q })
             steps)
    | Lia.P_branch (x, k, l, r) ->
        Proof.Split
          {
            atom = Term.le (Term.int_var x) (Term.int k);
            if_true = conv l;
            if_false = conv r;
          }
    | Lia.P_split (i, l, r) ->
        let le1, ge1 = neq_terms i in
        Proof.Split_neq
          { neq = provs.(i); le1; ge1; left = conv l; right = conv r }
  in
  try Some (conv p) with Fail -> None

(* Decide a conjunction of theory atoms, consulting the memo table.
   The conjunction is always solved in canonical (sorted+deduped) order
   — caching on or off — so the model returned for a given atom set is
   independent of assertion order and of which code path asked. Returns
   the answer plus, for Unsat, a certificate anchored at this call's
   own source literals (cached proofs are index-based against the
   canonical key, so re-anchoring works on any hit). A [Cache_corrupt]
   fault poisons the table entry itself on a hit: the corrupted answer
   keeps being replayed until certificate validation rejects it. *)
let lia_check_cached (atoms : (Linear.atom * Term.t) list) :
    Lia.result * Proof.tree option =
  let keyed =
    List.map (fun ((a, _) as p) -> (Linear.key_of_atom a, p)) atoms
  in
  let keyed = List.sort_uniq (fun (k1, _) (k2, _) -> compare k1 k2) keyed in
  let canon_atoms = Array.of_list (List.map (fun (_, (a, _)) -> a) keyed) in
  let provs = Array.of_list (List.map (fun (_, (_, src)) -> src) keyed) in
  let anchor p = Option.bind p (tree_of_lia_proof canon_atoms provs) in
  let solve () =
    match Lia.check_cert (Array.to_list canon_atoms) with
    | Lia.Csat m -> (Lia.Sat m, None)
    | Lia.Cunsat p -> (Lia.Unsat, p)
    | Lia.Cunknown -> (Lia.Unknown, None)
  in
  if not (caching_enabled ()) then
    let r, p = solve () in
    (r, anchor p)
  else begin
    let key = List.map fst keyed in
    let c = Domain.DLS.get cache_key in
    match Hashtbl.find_opt c.lia key with
    | Some (r, p) ->
        M.incr c_cache_hits;
        let r, p =
          if Faultinject.fire Faultinject.Cache_corrupt then begin
            let poisoned =
              match r with
              | Lia.Sat _ -> (Lia.Unsat, p)
              | Lia.Unsat | Lia.Unknown ->
                  (Lia.Sat Lia.String_map.empty, None)
            in
            Hashtbl.replace c.lia key poisoned;
            poisoned
          end
          else (r, p)
        in
        (r, anchor p)
    | None -> (
        M.incr c_cache_misses;
        (* In-memory miss: consult the persistent store, keyed by the
           canonical source-literal terms (the key IS the query, so a
           stored certificate is term-level and already anchored —
           served hits bypass [anchor]). The in-memory table holds
           index-based LIA proofs, so store hits are not inserted here;
           the store's own domain-local memo makes repeats cheap. *)
        let term_key = Array.to_list provs in
        let stored =
          match persist_installed () with
          | None -> None
          | Some ps -> (
              match ps.p_lookup term_key with
              | Some (Sat m, _) ->
                  let lm =
                    List.fold_left
                      (fun acc (name, v) ->
                        match (v : Term.value) with
                        | Term.VInt n -> Lia.String_map.add name n acc
                        | Term.VBool _ -> acc)
                      Lia.String_map.empty (Model.bindings m)
                  in
                  Some (Lia.Sat lm, None)
              | Some (Unsat, Some (Proof.Unsat_witness tree)) ->
                  Some (Lia.Unsat, Some tree)
              | Some _ | None -> None)
        in
        match stored with
        | Some rt -> rt
        | None ->
            let r, p = solve () in
            (match r with
            | Lia.Unknown -> ()
            | _ ->
                if Hashtbl.length c.lia >= cache_limit then Hashtbl.reset c.lia;
                Hashtbl.add c.lia key (r, p));
            let anchored = anchor p in
            (match persist_installed () with
            | None -> ()
            | Some ps -> (
                match (r, anchored) with
                | Lia.Sat m, _ ->
                    let model = model_of_lia_model m [] in
                    ps.p_save term_key
                      (Sat model, Some (Proof.Model_witness model))
                | Lia.Unsat, Some t ->
                    ps.p_save term_key (Unsat, Some (Proof.Unsat_witness t))
                | Lia.Unsat, None | Lia.Unknown, _ -> ()))
            ;
            (r, anchored))
  end

(* Contradictory boolean literals? *)
let contradictory_bools bools =
  List.exists
    (fun (name, pos) -> List.exists (fun (n, p) -> n = name && p <> pos) bools)
    bools

(* Certificate for a contradictory boolean literal pair: splitting on
   the variable closes both branches propositionally. *)
let bool_contradiction_cert bools =
  let name, _ =
    List.find
      (fun (name, pos) -> List.exists (fun (n, p) -> n = name && p <> pos) bools)
      bools
  in
  Proof.Unsat_witness
    (Proof.Split
       {
         atom = Term.bool_var name;
         if_true = Proof.Bool_leaf;
         if_false = Proof.Bool_leaf;
       })

let check_fast_cert (ts : Term.t list) : (result * Proof.t option) option =
  match literals_of_conjunction_src ts with
  | exception Not_conjunctive -> None
  | exception Linear.Nonlinear _ -> None
  | atoms, bools ->
      M.incr c_fast_path;
      if contradictory_bools bools then
        Some (Unsat, Some (bool_contradiction_cert bools))
      else
        Some
          (match lia_check_cached atoms with
          | Lia.Sat m, _ ->
              let model = model_of_lia_model m bools in
              (Sat model, Some (Proof.Model_witness model))
          | Lia.Unsat, tree ->
              (Unsat, Option.map (fun t -> Proof.Unsat_witness t) tree)
          | Lia.Unknown, _ -> (Unknown, None))

let check_fast (ts : Term.t list) : result option =
  Option.map fst (check_fast_cert ts)

(* Presolve switch (on by default). Interval bound propagation + gcd
   coefficient tightening over the query's unit literal conjuncts
   (Lia.presolve) runs before CNF conversion reaches the SAT core: a
   refuted box answers Unsat with zero DPLL(T) iterations, a feasible
   one seeds entailed theory atoms as unit clauses on the trail. Off =
   the pre-optimization behavior, kept for before/after measurement. *)
let presolve = Atomic.make true
let set_presolve b = Atomic.set presolve b
let presolve_enabled () = Atomic.get presolve

(* Clause-learning switch (on by default). When off, the DPLL(T) loop
   reverts to the legacy discipline: every theory refutation blocks the
   *full* assignment and the SAT search restarts from scratch, instead
   of learning just the theory conflict core in a persistent solver. *)
let learning = Atomic.make true
let set_learning b = Atomic.set learning b
let learning_enabled () = Atomic.get learning

let c_presolve_pruned = M.counter "presolve.pruned"

(* Hard backstop for the refutation loop when no budget is in scope.
   With a budget, the solver-steps limit governs the loop instead:
   every re-iteration charges [Budget.tick_solver], so `--solver-steps`
   caps DPLL(T) refinement and a cap hit surfaces as the
   machine-readable [Budget.Solver_steps_exhausted] Inconclusive
   reason rather than a bare Unknown. *)
let max_dpllt_iterations = 100_000

(* The linear atoms among the top-level *unit* conjuncts of [t] — the
   part of a general-boolean query that holds unconditionally, which is
   what presolve may propagate from. *)
let unit_atoms_of (t : Term.t) : Linear.atom list =
  let conjs = match t with Term.And ts -> ts | t -> [ t ] in
  List.concat_map
    (fun c ->
      match literals_of_conjunction_src [ c ] with
      | atoms, _ -> List.map fst atoms
      | exception Not_conjunctive -> []
      | exception Linear.Nonlinear _ -> [])
    conjs

let check_dpllt (t : Term.t) : result =
  match Cnf.of_term t with
  | exception Linear.Nonlinear _ -> Unknown
  | cnf -> (
      let presolved =
        if not (presolve_enabled ()) then None
        else
          match unit_atoms_of t with
          | [] -> None
          | units -> Some (Lia.presolve units)
      in
      match presolved with
      | Some (Lia.Punsat _) ->
          (* The unit conjuncts alone are contradictory — certified by
             [Lia.check_cert] on the support core inside presolve, and
             re-derived independently by [certify_unsat_general] before
             this answer is served. The SAT core is never built. *)
          M.incr c_presolve_pruned;
          Unsat
      | None | Some (Lia.Pfeasible _) ->
          let box =
            match presolved with Some (Lia.Pfeasible b) -> Some b | _ -> None
          in
          let learning = learning_enabled () in
          (* Theory atoms entailed one way or the other by the unit
             conjuncts' bound box become unit clauses seeding the
             trail: sound because the unit conjuncts are part of the
             formula, and cheap because the box is already computed. *)
          let seed_units sat =
            match box with
            | None -> ()
            | Some box ->
                List.iter
                  (fun (v, kind) ->
                    match kind with
                    | Cnf.Bool_atom _ -> ()
                    | Cnf.Theory_atom term -> (
                        match Linear.atom_of_term term with
                        | Some atom -> (
                            match Lia.entailed box atom with
                            | Some true -> Sat.add_clause sat [ v ]
                            | Some false -> Sat.add_clause sat [ -v ]
                            | None -> ())
                        | None -> ()
                        | exception Linear.Nonlinear _ -> ()))
                  cnf.Cnf.atoms
          in
          let fresh_sat extra =
            let sat = Sat.create ~nvars:cnf.Cnf.nvars cnf.Cnf.clauses in
            seed_units sat;
            List.iter (Sat.add_clause sat) extra;
            sat
          in
          (* Blocking clauses accumulated for legacy scratch re-solves
             (learning off); unused when the persistent core learns. *)
          let blocked = ref [] in
          let rec loop n sat =
            if n > max_dpllt_iterations then Unknown
            else begin
              (* A divergent refutation loop must honor the budget:
                 each re-iteration is a solver step (and tick_solver
                 checks the deadline), so a runaway refinement is cut
                 off with a machine-readable reason. *)
              (match !(current_budget ()) with
              | Some b -> if n = 0 then Budget.check_deadline b else Budget.tick_solver b
              | None -> ());
              M.incr c_dpllt_iterations;
              match Sat.solve sat with
              | Sat.Unsat ->
                  (* Trust the SAT-level Unsat only once every learned
                     clause's resolution chain — and the empty clause's
                     final derivation — replays against the clause
                     store. A tampered clause (Conflict_corrupt) fails
                     here and the answer degrades, never flips. *)
                  if (not (certify_enabled ())) || Sat.validate sat then Unsat
                  else begin
                    M.incr c_cert_failures;
                    Trace.event "cert.invalid"
                      ~attrs:
                        [ ("reason", "learned-clause chain replay failed") ];
                    Unknown
                  end
              | Sat.Sat assignment -> (
                  (* Gather theory literals implied by this assignment. *)
                  let theory_lits = ref [] and bools = ref [] in
                  List.iter
                    (fun (v, kind) ->
                      match kind with
                      | Cnf.Bool_atom name ->
                          if name <> "$true" then
                            bools := (name, assignment.(v)) :: !bools
                      | Cnf.Theory_atom term -> (
                          match Linear.atom_of_term term with
                          | Some atom ->
                              let atom =
                                if assignment.(v) then atom
                                else Linear.negate_atom atom
                              in
                              theory_lits := (v, assignment.(v), atom) :: !theory_lits
                          | None -> Term.sort_error "solver: non-linear theory atom"))
                    cnf.Cnf.atoms;
                  let atoms = List.map (fun (_, _, a) -> a) !theory_lits in
                  match Lia.check_cert atoms with
                  | Lia.Csat m -> Sat (model_of_lia_model m !bools)
                  | Lia.Cunknown -> Unknown
                  | Lia.Cunsat proof ->
                      (* Block the theory conflict *core* — the atoms
                         the refutation proof actually cites — so one
                         theory conflict prunes every assignment that
                         shares it, not just this one. Falls back to
                         the full assignment when no core is available
                         (or learning is off). *)
                      let full_blocking () =
                        List.map
                          (fun (v, value, _) -> if value then -v else v)
                          !theory_lits
                      in
                      let blocking =
                        match
                          if learning then Option.map Lia.proof_atoms proof
                          else None
                        with
                        | Some (_ :: _ as core) ->
                            let arr = Array.of_list !theory_lits in
                            List.map
                              (fun i ->
                                let v, value, _ = arr.(i) in
                                if value then -v else v)
                              core
                        | Some [] | None -> full_blocking ()
                      in
                      if blocking = [] then Unsat
                      else if learning then begin
                        (* Persistent core: the theory lemma is learned
                           in place, the search resumes with its trail
                           and learned clauses intact. *)
                        Sat.add_clause sat blocking;
                        loop (n + 1) sat
                      end
                      else begin
                        blocked := blocking :: !blocked;
                        loop (n + 1) (fresh_sat (List.rev !blocked))
                      end)
            end
          in
          loop 0 (fresh_sat []))

(* Certifying re-derivation of a general-path Unsat answer as a split
   tree — the SAT-level "resolution skeleton". Rather than instrument
   the DPLL core with clause-resolution bookkeeping, the (rare)
   general-path Unsat is re-derived semantically: split on an atom
   occurring in the residual formula, partial-evaluate under the
   context, close branches propositionally ([Bool_leaf], the residual
   folded to False) or by the theory (a Farkas subtree from
   [Lia.check_cert] on the context's theory atoms). A decision tree of
   this shape is exactly a regular tree-resolution refutation, and the
   checker needs only term evaluation plus linear arithmetic to accept
   it. Returns None when the re-derivation exceeds its node budget,
   meets nonlinear structure, or — crucially — discovers the Unsat
   answer was wrong (the residual empties with satisfiable theory
   atoms); callers treat None as a failed certification, never as
   license to trust. *)
let max_cert_nodes = 20_000

let certify_unsat_general (ts : Term.t list) : Proof.tree option =
  let exception Give_up in
  let ctx : (Term.t, bool) Hashtbl.t = Hashtbl.create 64 in
  let lookup t = Hashtbl.find_opt ctx t in
  let of_bool b = if b then Term.True else Term.False in
  (* Partial evaluation under [ctx], reusing the smart constructors so
     the folds agree with what the independent checker can reproduce. *)
  let rec simp (t : Term.t) : Term.t =
    match lookup t with
    | Some b -> of_bool b
    | None -> (
        match t with
        | Term.True | Term.False | Term.Int_const _ | Term.Var _ -> t
        | Term.Not a -> Term.not_ (simp a)
        | Term.And l -> Term.and_ (List.map simp l)
        | Term.Or l -> Term.or_ (List.map simp l)
        | Term.Implies (a, b) -> Term.implies (simp a) (simp b)
        | Term.Iff (a, b) -> Term.iff (simp a) (simp b)
        | Term.Ite (c, a, b) -> Term.ite (simp c) (simp a) (simp b)
        | Term.Add l -> Term.add (List.map simp l)
        | Term.Sub (a, b) -> Term.sub (simp a) (simp b)
        | Term.Neg a -> Term.neg (simp a)
        | Term.Mul_const (k, a) -> Term.mul_const k (simp a)
        | Term.Eq (a, b) -> relook (Term.eq (simp a) (simp b))
        | Term.Le (a, b) -> relook (Term.le (simp a) (simp b))
        | Term.Lt (a, b) -> relook (Term.lt (simp a) (simp b)))
  and relook t = match lookup t with Some b -> of_bool b | None -> t in
  (* Pick a splittable atom from a (simplified) term: a boolean variable
     or a linear comparison. *)
  let rec pick (t : Term.t) : Term.t option =
    match t with
    | Term.True | Term.False | Term.Int_const _ -> None
    | Term.Var v -> if v.Term.sort = Term.Bool then Some t else None
    | Term.Not a | Term.Neg a | Term.Mul_const (_, a) -> pick a
    | Term.And l | Term.Or l | Term.Add l -> List.find_map pick l
    | Term.Implies (a, b) | Term.Sub (a, b) -> List.find_map pick [ a; b ]
    | Term.Iff (a, b) -> List.find_map pick [ a; b ]
    | Term.Ite (c, a, b) -> List.find_map pick [ c; a; b ]
    | (Term.Eq (a, b) | Term.Le (a, b) | Term.Lt (a, b)) as cmp -> (
        match Linear.atom_of_term cmp with
        | Some _ -> Some cmp
        | None -> List.find_map pick [ a; b ]
        | exception Linear.Nonlinear _ -> List.find_map pick [ a; b ])
  in
  (* Every input term folded to True under the context: the leaf is
     closed by the theory, or the original answer was wrong. *)
  let theory_leaf () : Proof.tree =
    let atoms =
      Hashtbl.fold
        (fun t b acc ->
          match t with
          | Term.Var { Term.sort = Term.Bool; _ } -> acc
          | _ -> (
              match Linear.atom_of_term t with
              | Some a ->
                  ( (if b then a else Linear.negate_atom a),
                    if b then t else Term.not_ t )
                  :: acc
              | None -> raise Give_up
              | exception Linear.Nonlinear _ -> raise Give_up))
        ctx []
    in
    let keyed =
      List.map (fun ((a, _) as p) -> (Linear.key_of_atom a, p)) atoms
    in
    let keyed = List.sort_uniq (fun (k1, _) (k2, _) -> compare k1 k2) keyed in
    let canon_atoms = Array.of_list (List.map (fun (_, (a, _)) -> a) keyed) in
    let provs = Array.of_list (List.map (fun (_, (_, src)) -> src) keyed) in
    match Lia.check_cert (Array.to_list canon_atoms) with
    | Lia.Cunsat (Some p) -> (
        match tree_of_lia_proof canon_atoms provs p with
        | Some t -> t
        | None -> raise Give_up)
    | _ -> raise Give_up
  in
  let nodes = ref 0 in
  let rec solve (residual : Term.t list) : Proof.tree =
    incr nodes;
    if !nodes > max_cert_nodes then raise Give_up;
    let residual = List.map simp residual in
    if List.exists (function Term.False -> true | _ -> false) residual then
      Proof.Bool_leaf
    else
      let residual =
        List.filter (function Term.True -> false | _ -> true) residual
      in
      match residual with
      | [] -> theory_leaf ()
      | ts -> (
          match List.find_map pick ts with
          | None -> raise Give_up
          | Some atom ->
              Hashtbl.replace ctx atom true;
              let if_true = solve ts in
              Hashtbl.replace ctx atom false;
              let if_false = solve ts in
              Hashtbl.remove ctx atom;
              Proof.Split { atom; if_true; if_false })
  in
  try Some (solve ts) with Give_up -> None

(* Certificate production for the general path is worth its cost only
   when someone will check the result: gate it on the switch and on an
   installed validator. *)
let want_cert () = certify_enabled () && Proof.validator () <> None

(* The general path, memoized on the sorted+deduped term list. Solving
   happens on the canonical order so a cached model is a pure function
   of the key. Certificates are cached alongside results; a
   [Cache_corrupt] fault poisons the stored entry on a hit (the
   corrupted pair keeps being replayed until validation rejects it). *)
let check_dpllt_cert (ts : Term.t list) : result * Proof.t option =
  let with_cert key r =
    match r with
    | Sat m -> (r, Some (Proof.Model_witness m))
    | Unsat when want_cert () ->
        ( r,
          Option.map
            (fun t -> Proof.Unsat_witness t)
            (certify_unsat_general key) )
    | Unsat | Unknown -> (r, None)
  in
  if not (caching_enabled ()) then with_cert ts (check_dpllt (Term.and_ ts))
  else begin
    let key = List.sort_uniq compare ts in
    let c = Domain.DLS.get cache_key in
    match Hashtbl.find_opt c.full key with
    | Some (r, p) ->
        M.incr c_cache_hits;
        if Faultinject.fire Faultinject.Cache_corrupt then begin
          let poisoned =
            match r with
            | Sat _ -> (Unsat, p)
            | Unsat | Unknown -> (Sat Model.empty, None)
          in
          Hashtbl.replace c.full key poisoned;
          poisoned
        end
        else (r, p)
    | None ->
        M.incr c_cache_misses;
        (* In-memory miss: consult the persistent store first. The key
           is the canonical term list, so stored certificates are
           term-level; a served answer is inserted into the in-memory
           table like a fresh one (and still passes [validate] on the
           way out). *)
        let served, rp =
          match persist_installed () with
          | None -> (false, None)
          | Some ps -> (
              match ps.p_lookup key with
              | Some rp -> (true, Some rp)
              | None -> (false, None))
        in
        let rp =
          match rp with
          | Some rp -> rp
          | None -> with_cert key (check_dpllt (Term.and_ key))
        in
        (match fst rp with
        | Unknown -> ()
        | _ ->
            if Hashtbl.length c.full >= cache_limit then Hashtbl.reset c.full;
            Hashtbl.add c.full key rp;
            if not served then
              match persist_installed () with
              | None -> ()
              | Some ps -> ps.p_save key rp);
        rp
  end

(* Shared per-query prologue: charge the budget in scope and give the
   fault plan its arrival. Returns [true] when an Unknown answer was
   injected. Both [check] and the incremental stack route through this,
   so a feasibility query costs exactly one budget tick and one fault
   arrival regardless of how it is answered. *)
let begin_check () : bool =
  M.incr c_checks;
  (match !(current_budget ()) with
  | Some b -> Budget.tick_solver b
  | None -> ());
  Faultinject.fire Faultinject.Solver_unknown

let record_result (r : result) : result =
  (match r with Unknown -> M.incr c_unknowns | _ -> ());
  r

(* Gatekeeper: a Sat/Unsat answer leaves the solver only after its
   certificate checks out against the installed validator. An answer
   that cannot be justified — missing certificate, wrong witness kind,
   or a validator rejection — degrades to Unknown and is counted, so a
   corrupted memo entry or a buggy proof emitter can lose a verdict but
   never flip one. With certification off or no validator installed
   this is the identity on the result. *)
let validate (ts : Term.t list) ((r, cert) : result * Proof.t option) : result =
  if not (certify_enabled ()) then r
  else
    match Proof.validator () with
    | None -> r
    | Some v -> (
        match r with
        | Unknown -> r
        | Sat _ | Unsat -> (
            M.incr c_cert_checks;
            let verdict =
              timed h_cert_seconds @@ fun () ->
              match (r, cert) with
              | Sat m, _ -> v.Proof.validate_sat ts m
              | Unsat, Some (Proof.Unsat_witness tree) ->
                  v.Proof.validate_unsat ts tree
              | Unsat, Some (Proof.Model_witness _) ->
                  Proof.Invalid "unsat answer carries a model certificate"
              | Unsat, None -> Proof.Invalid "missing certificate"
              | Unknown, _ -> assert false
            in
            match verdict with
            | Proof.Valid -> r
            | Proof.Invalid why ->
                M.incr c_cert_failures;
                Trace.event "cert.invalid" ~attrs:[ ("reason", why) ];
                Unknown))

let check_core_cert (ts : Term.t list) : result * Proof.t option =
  match Term.and_ ts with
  | Term.True -> (Sat Model.empty, Some (Proof.Model_witness Model.empty))
  | Term.False -> (Unsat, Some (Proof.Unsat_witness Proof.Bool_leaf))
  | _ -> (
      match check_fast_cert ts with
      | Some rc -> rc
      | None -> check_dpllt_cert ts)

(* Decide satisfiability of the conjunction of [ts]. Charges the budget
   in scope and records Unknown answers — including injected ones — so
   callers can refuse to call an Unknown-dependent check a proof. *)
let check (ts : Term.t list) : result =
  let r =
    if begin_check () then Unknown
    else begin
      M.incr c_scratch_checks;
      timed h_check_seconds (fun () -> validate ts (check_core_cert ts))
    end
  in
  record_result r

let is_sat ts = match check ts with Sat _ -> true | Unsat | Unknown -> false
let is_unsat ts = match check ts with Unsat -> true | Sat _ | Unknown -> false

type entailment = Valid | Counterexample of Model.t | Unknown_validity

(* hyps ⊢ goal  iff  hyps ∧ ¬goal is unsatisfiable. *)
let entails ~hyps goal =
  match check (Term.not_ goal :: hyps) with
  | Unsat -> Valid
  | Sat m -> Counterexample m
  | Unknown -> Unknown_validity

(* ------------------------------------------------------------------ *)
(* Incremental assertion stack                                        *)
(* ------------------------------------------------------------------ *)

module Incremental = struct
  (* The toplevel monolithic check, before [check] is shadowed below. *)
  let check_top = check

  (* A stack of frames mirroring a path condition. Each frame holds the
     analysis (theory atoms + boolean literals) of the terms asserted at
     that level, so extending the path by one branch decision analyzes
     one new literal instead of re-translating the whole conjunction.
     Frames also remember refuted prefixes: once a level is Unsat, every
     extension is answered Unsat without touching the theory solver.

     [node] identifies the path-condition cons cell this frame mirrors
     (see [check_pc]); frames pushed through the explicit [push] API use
     an empty node. The two styles must not be mixed on one stack. *)
  type frame = {
    node : Term.t list;
    mutable terms : Term.t list;
    mutable atoms : (Linear.atom * Term.t) list; (* atom + source literal *)
    mutable bools : (string * bool) list;
    mutable nonconj : bool; (* some term is not a literal conjunction *)
    mutable unsat : bool;   (* the stack up to this frame is refuted *)
    mutable unsat_cert : Proof.t option; (* certificate for the refutation *)
  }

  type t = { mutable frames : frame list (* newest first *) }

  let create () = { frames = [] }

  let fresh_frame node =
    {
      node;
      terms = [];
      atoms = [];
      bools = [];
      nonconj = false;
      unsat = false;
      unsat_cert = None;
    }

  let push (s : t) = s.frames <- fresh_frame [] :: s.frames

  let analyze (f : frame) (term : Term.t) =
    f.terms <- term :: f.terms;
    match literals_of_conjunction_src [ term ] with
    | atoms, bools ->
        f.atoms <- atoms @ f.atoms;
        f.bools <- bools @ f.bools
    | exception Not_conjunctive -> f.nonconj <- true
    | exception Linear.Nonlinear _ -> f.nonconj <- true

  let assert_term (s : t) (term : Term.t) =
    (match s.frames with [] -> push s | _ -> ());
    match s.frames with
    | f :: _ -> analyze f term
    | [] -> assert false

  let pop (s : t) =
    match s.frames with
    | [] -> invalid_arg "Solver.Incremental.pop: empty stack"
    | _ :: rest -> s.frames <- rest

  let depth (s : t) = List.length s.frames
  let terms (s : t) = List.concat_map (fun f -> f.terms) s.frames

  let mark_unsat (s : t) cert =
    match s.frames with
    | [] -> ()
    | f :: _ ->
        f.unsat <- true;
        f.unsat_cert <- cert

  let solve (s : t) : result =
    let r =
      if begin_check () then Unknown
      else
        timed h_check_seconds @@ fun () ->
        match List.find_opt (fun f -> f.unsat) s.frames with
        | Some f ->
            (* A refuted prefix stays refuted under any extension — but
               the stored certificate is re-validated against the full
               current stack, so a poisoned short-circuit cannot outlive
               one validation. *)
            M.incr c_incremental_checks;
            validate (terms s) (Unsat, f.unsat_cert)
        | None ->
            if List.exists (fun f -> f.nonconj) s.frames then begin
              (* General boolean structure somewhere on the stack: fall
                 back to the monolithic (but still memoized) pipeline. *)
              M.incr c_scratch_checks;
              validate (terms s) (check_core_cert (terms s))
            end
            else begin
              M.incr c_incremental_checks;
              M.incr c_fast_path;
              let atoms = List.concat_map (fun f -> f.atoms) s.frames in
              let bools = List.concat_map (fun f -> f.bools) s.frames in
              if contradictory_bools bools then begin
                let cert = Some (bool_contradiction_cert bools) in
                mark_unsat s cert;
                validate (terms s) (Unsat, cert)
              end
              else
                match lia_check_cached atoms with
                | Lia.Sat m, _ ->
                    let model = model_of_lia_model m bools in
                    validate (terms s) (Sat model, Some (Proof.Model_witness model))
                | Lia.Unsat, tree ->
                    let cert =
                      Option.map (fun t -> Proof.Unsat_witness t) tree
                    in
                    mark_unsat s cert;
                    validate (terms s) (Unsat, cert)
                | Lia.Unknown, _ -> Unknown
            end
    in
    record_result r

  let check (s : t) : result =
    if incremental_enabled () then solve s else check_top (terms s)

  (* Decide the satisfiability of path condition [pc] (a cons list,
     newest literal first), syncing the stack to it first. Frames are
     keyed by the physical identity of the pc cons cells: the symbolic
     executor extends path conditions by consing, so sibling branches
     and parent paths share tails physically, and every shared literal's
     analysis is reused. One frame per literal, so backtracking to any
     shared prefix keeps the whole prefix warm. *)
  let check_pc (s : t) (pc : Term.t list) : result =
    M.observe h_pc_depth (float_of_int (List.length pc));
    if not (incremental_enabled ()) then check_top pc
    else begin
    (* The set of tails of [pc], physically. *)
    let tails =
      let rec go acc l =
        match l with [] -> [] :: acc | _ :: tl -> go (l :: acc) tl
      in
      go [] pc
    in
    let rec prune frames =
      match frames with
      | f :: rest when not (List.memq f.node tails) -> prune rest
      | _ -> frames
    in
    s.frames <- prune s.frames;
    let synced = match s.frames with [] -> [] | f :: _ -> f.node in
    let rec extend l =
      if l == synced then ()
      else
        match l with
        | [] -> ()
        | term :: tl ->
            extend tl;
            let f = fresh_frame l in
            analyze f term;
            s.frames <- f :: s.frames
    in
    if pc != synced then extend pc;
    solve s
    end

  let entails (s : t) ~hyps goal =
    match check_pc s (Term.not_ goal :: hyps) with
    | Unsat -> Valid
    | Sat m -> Counterexample m
    | Unknown -> Unknown_validity
end
