(* The solver facade: lazy DPLL(T) over the SAT core and the LIA theory.

   This plays the role Z3 plays in the paper (§5.2): every branch decision
   of the symbolic executor and every refinement obligation lands here.
   Two paths:

   - conjunctions of literals (the overwhelmingly common case — path
     conditions) go straight to the LIA procedure;
   - arbitrary boolean structure goes through Tseitin CNF + DPLL, with
     theory-refuted assignments blocked by clauses until convergence.

   Two performance layers sit on top (both domain-local, so parallel
   pipeline workers never contend or race):

   - a result cache keyed on the canonically sorted conjunction, so the
     re-verification workload — re-running the checker after an engine
     iteration, or across near-identical engine versions — answers
     repeated obligations in O(key);
   - an incremental assertion stack ([Incremental]) that mirrors the
     symbolic executor's path condition, so a branch decision extends the
     parent path's analyzed state by one literal instead of re-translating
     the full conjunction. *)

type result = Sat of Model.t | Unsat | Unknown

(* Statistics for the Figure-12 style reporting. [unknowns] counts every
   Unknown answer (including forced ones): any check that leaned on one
   must be downgraded to inconclusive by its caller.

   The record is domain-local: each worker of the parallel pipeline
   accumulates its own counters, and the pipeline merges them at the
   join barrier. *)
type stats = {
  mutable checks : int;
  mutable fast_path : int;
  mutable dpllt_iterations : int;
  mutable unknowns : int;
  mutable cache_hits : int;     (* conjunctions answered from the memo *)
  mutable cache_misses : int;   (* conjunctions solved then memoized *)
  mutable incremental_checks : int; (* served via an assertion stack *)
  mutable scratch_checks : int; (* conjunction rebuilt from scratch *)
}

let fresh_stats () =
  {
    checks = 0;
    fast_path = 0;
    dpllt_iterations = 0;
    unknowns = 0;
    cache_hits = 0;
    cache_misses = 0;
    incremental_checks = 0;
    scratch_checks = 0;
  }

let stats_key : stats Domain.DLS.key = Domain.DLS.new_key fresh_stats
let stats () = Domain.DLS.get stats_key

let add_stats ~into:(a : stats) (b : stats) =
  a.checks <- a.checks + b.checks;
  a.fast_path <- a.fast_path + b.fast_path;
  a.dpllt_iterations <- a.dpllt_iterations + b.dpllt_iterations;
  a.unknowns <- a.unknowns + b.unknowns;
  a.cache_hits <- a.cache_hits + b.cache_hits;
  a.cache_misses <- a.cache_misses + b.cache_misses;
  a.incremental_checks <- a.incremental_checks + b.incremental_checks;
  a.scratch_checks <- a.scratch_checks + b.scratch_checks

let diff_stats (a : stats) (b : stats) : stats =
  {
    checks = a.checks - b.checks;
    fast_path = a.fast_path - b.fast_path;
    dpllt_iterations = a.dpllt_iterations - b.dpllt_iterations;
    unknowns = a.unknowns - b.unknowns;
    cache_hits = a.cache_hits - b.cache_hits;
    cache_misses = a.cache_misses - b.cache_misses;
    incremental_checks = a.incremental_checks - b.incremental_checks;
    scratch_checks = a.scratch_checks - b.scratch_checks;
  }

(* Lifetime accumulator: [reset_stats] is called per verification
   attempt (it scopes the per-attempt [unknowns] reads), so cumulative
   reporting — the bench's cache-effectiveness numbers — folds each
   window into this domain-local total instead of losing it. *)
let lifetime_key : stats Domain.DLS.key = Domain.DLS.new_key fresh_stats

let reset_stats () =
  let s = stats () in
  add_stats ~into:(Domain.DLS.get lifetime_key) s;
  s.checks <- 0;
  s.fast_path <- 0;
  s.dpllt_iterations <- 0;
  s.unknowns <- 0;
  s.cache_hits <- 0;
  s.cache_misses <- 0;
  s.incremental_checks <- 0;
  s.scratch_checks <- 0

(* Lifetime totals so far in this domain (folded windows + the current
   window), as a fresh record. *)
let lifetime () : stats =
  let total = fresh_stats () in
  add_stats ~into:total (Domain.DLS.get lifetime_key);
  add_stats ~into:total (stats ());
  total

let zero_stats (s : stats) =
  s.checks <- 0;
  s.fast_path <- 0;
  s.dpllt_iterations <- 0;
  s.unknowns <- 0;
  s.cache_hits <- 0;
  s.cache_misses <- 0;
  s.incremental_checks <- 0;
  s.scratch_checks <- 0

let reset_lifetime () =
  zero_stats (Domain.DLS.get lifetime_key);
  zero_stats (stats ())

(* Fold a worker domain's stats delta into this domain's lifetime
   accumulator (the parallel pipeline calls this at the join barrier). *)
let absorb_stats (delta : stats) =
  add_stats ~into:(Domain.DLS.get lifetime_key) delta

(* The budget in scope for this solver, if any. Scoped rather than
   threaded per-call: every branch decision and refinement obligation
   lands here, and the entry points (Refine.Check, Refine.Layers,
   Symex.Exec.run) establish the scope once. Domain-local so each
   parallel worker carries its own budget. *)
let current_budget_key : Budget.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_budget () = Domain.DLS.get current_budget_key

let with_budget (b : Budget.t) (f : unit -> 'a) : 'a =
  let cell = current_budget () in
  let saved = !cell in
  cell := Some b;
  Fun.protect ~finally:(fun () -> cell := saved) f

(* ------------------------------------------------------------------ *)
(* Result cache                                                       *)
(* ------------------------------------------------------------------ *)

(* The switch is Atomic so `set_caching false` on the main domain (the
   bench's "seed-equivalent" mode) is observed by worker domains. *)
let caching = Atomic.make true
let set_caching b = Atomic.set caching b
let caching_enabled () = Atomic.get caching

(* Incremental-stack switch (on by default). When off, [Incremental]
   checks degrade to monolithic [check]s of their full term list — the
   pre-optimization behavior, kept for before/after measurement. *)
let incremental = Atomic.make true
let set_incremental b = Atomic.set incremental b
let incremental_enabled () = Atomic.get incremental

(* Two memo tables, both keyed on canonical forms:

   - [lia]: sorted+deduped [Linear.key_of_atom] lists — the literal
     conjunctions of the fast path and the incremental stack;
   - [full]: sorted+deduped term lists for the general DPLL(T) path
     (terms are hash-consed, so polymorphic compare is cheap and, unlike
     [Linear.atom], they contain no balanced trees, so it is reliable).

   Unknown is never cached: it depends on the budget and fault plan in
   scope, not on the conjunction. Cached entries are solved on the
   canonically sorted conjunction, so a cached model is a function of
   the key alone — sequential and parallel runs return byte-identical
   verdicts regardless of cache population order. *)
type cache = {
  lia : (Linear.key list, Lia.result) Hashtbl.t;
  full : (Term.t list, result) Hashtbl.t;
}

let cache_key : cache Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { lia = Hashtbl.create 1024; full = Hashtbl.create 256 })

let cache_limit = 1 lsl 16

let clear_caches () =
  let c = Domain.DLS.get cache_key in
  Hashtbl.reset c.lia;
  Hashtbl.reset c.full

exception Not_conjunctive

(* Try to read a term as a conjunction of literals:
   returns (theory atoms, boolean literal list). *)
let literals_of_conjunction (ts : Term.t list) =
  let atoms = ref [] and bools = ref [] in
  let rec literal positive (t : Term.t) =
    match t with
    | Term.True -> if not positive then raise Not_conjunctive
    | Term.False -> if positive then raise Not_conjunctive
    | Term.Not t -> literal (not positive) t
    | Term.Var { name; sort = Term.Bool } -> bools := (name, positive) :: !bools
    | Term.And ts when positive -> List.iter (literal true) ts
    | Term.Eq (a, _) when Term.is_bool a -> raise Not_conjunctive
    | Term.Eq _ | Term.Le _ | Term.Lt _ -> (
        match Linear.atom_of_term t with
        | Some atom ->
            atoms := (if positive then atom else Linear.negate_atom atom) :: !atoms
        | None -> raise Not_conjunctive)
    | _ -> raise Not_conjunctive
  in
  List.iter (literal true) ts;
  (!atoms, !bools)

let model_of_lia_model (m : Lia.model) bools =
  let base =
    Lia.String_map.fold (fun name n acc -> Model.add_int name n acc) m
      Model.empty
  in
  List.fold_left
    (fun acc (name, positive) -> Model.add_bool name positive acc)
    base bools

(* Decide a conjunction of theory atoms, consulting the memo table.
   The conjunction is always solved in canonical (sorted+deduped) order
   — caching on or off — so the model returned for a given atom set is
   independent of assertion order and of which code path asked. *)
let lia_check_cached (atoms : Linear.atom list) : Lia.result =
  let keyed = List.map (fun a -> (Linear.key_of_atom a, a)) atoms in
  let keyed = List.sort_uniq (fun (k1, _) (k2, _) -> compare k1 k2) keyed in
  if not (caching_enabled ()) then Lia.check (List.map snd keyed)
  else begin
    let key = List.map fst keyed in
    let c = Domain.DLS.get cache_key in
    let s = stats () in
    match Hashtbl.find_opt c.lia key with
    | Some r ->
        s.cache_hits <- s.cache_hits + 1;
        r
    | None ->
        s.cache_misses <- s.cache_misses + 1;
        let r = Lia.check (List.map snd keyed) in
        (match r with
        | Lia.Unknown -> ()
        | _ ->
            if Hashtbl.length c.lia >= cache_limit then Hashtbl.reset c.lia;
            Hashtbl.add c.lia key r);
        r
  end

(* Contradictory boolean literals? *)
let contradictory_bools bools =
  List.exists
    (fun (name, pos) -> List.exists (fun (n, p) -> n = name && p <> pos) bools)
    bools

let check_fast (ts : Term.t list) : result option =
  match literals_of_conjunction ts with
  | exception Not_conjunctive -> None
  | exception Linear.Nonlinear _ -> None
  | atoms, bools ->
      (stats ()).fast_path <- (stats ()).fast_path + 1;
      if contradictory_bools bools then Some Unsat
      else
        Some
          (match lia_check_cached atoms with
          | Lia.Sat m -> Sat (model_of_lia_model m bools)
          | Lia.Unsat -> Unsat
          | Lia.Unknown -> Unknown)

let max_dpllt_iterations = 100_000

let check_dpllt (t : Term.t) : result =
  match Cnf.of_term t with
  | exception Linear.Nonlinear _ -> Unknown
  | cnf -> (
      let sat = Sat.create ~nvars:cnf.Cnf.nvars cnf.Cnf.clauses in
      let rec loop n =
        if n > max_dpllt_iterations then Unknown
        else begin
          (* A divergent refutation loop must still honor the wall
             clock: this is the solver's only unbounded iteration. *)
          (match !(current_budget ()) with
          | Some b -> Budget.check_deadline b
          | None -> ());
          let s = stats () in
          s.dpllt_iterations <- s.dpllt_iterations + 1;
          match Sat.solve sat with
          | Sat.Unsat -> Unsat
          | Sat.Sat assignment -> (
              (* Gather theory literals implied by this assignment. *)
              let theory_lits = ref [] and bools = ref [] in
              List.iter
                (fun (v, kind) ->
                  match kind with
                  | Cnf.Bool_atom name ->
                      if name <> "$true" then bools := (name, assignment.(v)) :: !bools
                  | Cnf.Theory_atom term -> (
                      match Linear.atom_of_term term with
                      | Some atom ->
                          let atom =
                            if assignment.(v) then atom else Linear.negate_atom atom
                          in
                          theory_lits := (v, assignment.(v), atom) :: !theory_lits
                      | None -> Term.sort_error "solver: non-linear theory atom"))
                cnf.Cnf.atoms;
              let atoms = List.map (fun (_, _, a) -> a) !theory_lits in
              match Lia.check atoms with
              | Lia.Sat m -> Sat (model_of_lia_model m !bools)
              | Lia.Unknown -> Unknown
              | Lia.Unsat ->
                  (* Block this theory-level assignment and retry. *)
                  let blocking =
                    List.map
                      (fun (v, value, _) -> if value then -v else v)
                      !theory_lits
                  in
                  if blocking = [] then Unsat
                  else begin
                    Sat.add_clause sat blocking;
                    loop (n + 1)
                  end)
        end
      in
      loop 0)

(* The general path, memoized on the sorted+deduped term list. Solving
   happens on the canonical order so a cached model is a pure function
   of the key. *)
let check_dpllt_cached (ts : Term.t list) : result =
  if not (caching_enabled ()) then check_dpllt (Term.and_ ts)
  else begin
    let key = List.sort_uniq compare ts in
    let c = Domain.DLS.get cache_key in
    let s = stats () in
    match Hashtbl.find_opt c.full key with
    | Some r ->
        s.cache_hits <- s.cache_hits + 1;
        r
    | None ->
        s.cache_misses <- s.cache_misses + 1;
        let r = check_dpllt (Term.and_ key) in
        (match r with
        | Unknown -> ()
        | _ ->
            if Hashtbl.length c.full >= cache_limit then Hashtbl.reset c.full;
            Hashtbl.add c.full key r);
        r
  end

(* Shared per-query prologue: charge the budget in scope and give the
   fault plan its arrival. Returns [true] when an Unknown answer was
   injected. Both [check] and the incremental stack route through this,
   so a feasibility query costs exactly one budget tick and one fault
   arrival regardless of how it is answered. *)
let begin_check () : bool =
  let s = stats () in
  s.checks <- s.checks + 1;
  (match !(current_budget ()) with
  | Some b -> Budget.tick_solver b
  | None -> ());
  Faultinject.fire Faultinject.Solver_unknown

let record_result (r : result) : result =
  (match r with
  | Unknown ->
      let s = stats () in
      s.unknowns <- s.unknowns + 1
  | _ -> ());
  r

let check_core (ts : Term.t list) : result =
  match Term.and_ ts with
  | Term.True -> Sat Model.empty
  | Term.False -> Unsat
  | _ -> (
      match check_fast ts with
      | Some r -> r
      | None -> check_dpllt_cached ts)

(* Decide satisfiability of the conjunction of [ts]. Charges the budget
   in scope and records Unknown answers — including injected ones — so
   callers can refuse to call an Unknown-dependent check a proof. *)
let check (ts : Term.t list) : result =
  let r =
    if begin_check () then Unknown
    else begin
      (stats ()).scratch_checks <- (stats ()).scratch_checks + 1;
      check_core ts
    end
  in
  record_result r

let is_sat ts = match check ts with Sat _ -> true | Unsat | Unknown -> false
let is_unsat ts = match check ts with Unsat -> true | Sat _ | Unknown -> false

type entailment = Valid | Counterexample of Model.t | Unknown_validity

(* hyps ⊢ goal  iff  hyps ∧ ¬goal is unsatisfiable. *)
let entails ~hyps goal =
  match check (Term.not_ goal :: hyps) with
  | Unsat -> Valid
  | Sat m -> Counterexample m
  | Unknown -> Unknown_validity

(* ------------------------------------------------------------------ *)
(* Incremental assertion stack                                        *)
(* ------------------------------------------------------------------ *)

module Incremental = struct
  (* The toplevel monolithic check, before [check] is shadowed below. *)
  let check_top = check

  (* A stack of frames mirroring a path condition. Each frame holds the
     analysis (theory atoms + boolean literals) of the terms asserted at
     that level, so extending the path by one branch decision analyzes
     one new literal instead of re-translating the whole conjunction.
     Frames also remember refuted prefixes: once a level is Unsat, every
     extension is answered Unsat without touching the theory solver.

     [node] identifies the path-condition cons cell this frame mirrors
     (see [check_pc]); frames pushed through the explicit [push] API use
     an empty node. The two styles must not be mixed on one stack. *)
  type frame = {
    node : Term.t list;
    mutable terms : Term.t list;
    mutable atoms : Linear.atom list;
    mutable bools : (string * bool) list;
    mutable nonconj : bool; (* some term is not a literal conjunction *)
    mutable unsat : bool;   (* the stack up to this frame is refuted *)
  }

  type t = { mutable frames : frame list (* newest first *) }

  let create () = { frames = [] }

  let fresh_frame node =
    { node; terms = []; atoms = []; bools = []; nonconj = false; unsat = false }

  let push (s : t) = s.frames <- fresh_frame [] :: s.frames

  let analyze (f : frame) (term : Term.t) =
    f.terms <- term :: f.terms;
    match literals_of_conjunction [ term ] with
    | atoms, bools ->
        f.atoms <- atoms @ f.atoms;
        f.bools <- bools @ f.bools
    | exception Not_conjunctive -> f.nonconj <- true
    | exception Linear.Nonlinear _ -> f.nonconj <- true

  let assert_term (s : t) (term : Term.t) =
    (match s.frames with [] -> push s | _ -> ());
    match s.frames with
    | f :: _ -> analyze f term
    | [] -> assert false

  let pop (s : t) =
    match s.frames with
    | [] -> invalid_arg "Solver.Incremental.pop: empty stack"
    | _ :: rest -> s.frames <- rest

  let depth (s : t) = List.length s.frames
  let terms (s : t) = List.concat_map (fun f -> f.terms) s.frames

  let mark_unsat (s : t) =
    match s.frames with [] -> () | f :: _ -> f.unsat <- true

  let solve (s : t) : result =
    let st = stats () in
    let r =
      if begin_check () then Unknown
      else if List.exists (fun f -> f.unsat) s.frames then begin
        (* A refuted prefix stays refuted under any extension. *)
        st.incremental_checks <- st.incremental_checks + 1;
        Unsat
      end
      else if List.exists (fun f -> f.nonconj) s.frames then begin
        (* General boolean structure somewhere on the stack: fall back
           to the monolithic (but still memoized) pipeline. *)
        st.scratch_checks <- st.scratch_checks + 1;
        check_core (terms s)
      end
      else begin
        st.incremental_checks <- st.incremental_checks + 1;
        st.fast_path <- st.fast_path + 1;
        let atoms = List.concat_map (fun f -> f.atoms) s.frames in
        let bools = List.concat_map (fun f -> f.bools) s.frames in
        if contradictory_bools bools then begin
          mark_unsat s;
          Unsat
        end
        else
          match lia_check_cached atoms with
          | Lia.Sat m -> Sat (model_of_lia_model m bools)
          | Lia.Unsat ->
              mark_unsat s;
              Unsat
          | Lia.Unknown -> Unknown
      end
    in
    record_result r

  let check (s : t) : result =
    if incremental_enabled () then solve s else check_top (terms s)

  (* Decide the satisfiability of path condition [pc] (a cons list,
     newest literal first), syncing the stack to it first. Frames are
     keyed by the physical identity of the pc cons cells: the symbolic
     executor extends path conditions by consing, so sibling branches
     and parent paths share tails physically, and every shared literal's
     analysis is reused. One frame per literal, so backtracking to any
     shared prefix keeps the whole prefix warm. *)
  let check_pc (s : t) (pc : Term.t list) : result =
    if not (incremental_enabled ()) then check_top pc
    else begin
    (* The set of tails of [pc], physically. *)
    let tails =
      let rec go acc l =
        match l with [] -> [] :: acc | _ :: tl -> go (l :: acc) tl
      in
      go [] pc
    in
    let rec prune frames =
      match frames with
      | f :: rest when not (List.memq f.node tails) -> prune rest
      | _ -> frames
    in
    s.frames <- prune s.frames;
    let synced = match s.frames with [] -> [] | f :: _ -> f.node in
    let rec extend l =
      if l == synced then ()
      else
        match l with
        | [] -> ()
        | term :: tl ->
            extend tl;
            let f = fresh_frame l in
            analyze f term;
            s.frames <- f :: s.frames
    in
    if pc != synced then extend pc;
    solve s
    end

  let entails (s : t) ~hyps goal =
    match check_pc s (Term.not_ goal :: hyps) with
    | Unsat -> Valid
    | Sat m -> Counterexample m
    | Unknown -> Unknown_validity
end
