(* First-order terms over booleans and integers — the verifier's logic.

   DNS-V restricts specification branch conditions to linear integer
   arithmetic (paper §4.2, §6.3): comparisons between integer variables and
   constants, composed with boolean connectives. This module is the shared
   term language between the symbolic executor, the summarizer and the
   solver. Variable-length lists (domain names, sections) are *not* a term
   sort: per §5.4 they are encoded upstream as one integer variable per
   active element plus a symbolic length variable. *)

type sort = Bool | Int

let pp_sort fmt = function
  | Bool -> Format.pp_print_string fmt "Bool"
  | Int -> Format.pp_print_string fmt "Int"

let equal_sort (a : sort) (b : sort) = a = b

type t =
  | True
  | False
  | Int_const of int
  | Var of var
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Ite of t * t * t
  | Add of t list
  | Sub of t * t
  | Neg of t
  | Mul_const of int * t
  | Eq of t * t
  | Le of t * t
  | Lt of t * t

and var = { name : string; sort : sort }

exception Sort_error of string

let sort_error fmt = Format.kasprintf (fun s -> raise (Sort_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                       *)
(* ------------------------------------------------------------------ *)

(* Every term built by a smart constructor is interned in a
   domain-local table, so structurally equal terms built through the
   constructors are physically equal within a domain (maximal sharing).
   [equal] then short-circuits on [==] for the overwhelmingly common
   case, and the solver's memo tables get cheap, well-distributed keys.
   The table is domain-local rather than global: worker domains of the
   parallel pipeline each intern independently, so no lock is needed
   and no domain can observe another's partially-built buckets. *)

(* Bounded-depth structural hash: O(1) on arbitrarily deep terms, and
   consistent with structural equality (the interning invariant only
   strengthens [=] into [==], never changes it). *)
let hash (t : t) = Hashtbl.hash_param 30 120 t

let equal (a : t) (b : t) = a == b || a = b

module Intern_tbl = Hashtbl.Make (struct
  type nonrec t = t

  let hash = hash
  let equal = equal
end)

(* Past this many distinct live terms the table is dropped wholesale:
   interning is an optimization, losing it only costs sharing. *)
let intern_limit = 1 lsl 17

let intern_key : t Intern_tbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Intern_tbl.create 4096)

let intern (t : t) : t =
  let tbl = Domain.DLS.get intern_key in
  match Intern_tbl.find_opt tbl t with
  | Some t' -> t'
  | None ->
      if Intern_tbl.length tbl >= intern_limit then Intern_tbl.reset tbl;
      Intern_tbl.add tbl t t;
      t

(* Recursively intern a term built with the raw data constructors
   (maximal sharing without re-normalizing). Terms from the smart
   constructors are already interned. *)
let rec hashcons (t : t) : t =
  match t with
  | True | False -> t
  | Int_const _ | Var _ -> intern t
  | Not a -> intern (Not (hashcons a))
  | And ts -> intern (And (List.map hashcons ts))
  | Or ts -> intern (Or (List.map hashcons ts))
  | Implies (a, b) -> intern (Implies (hashcons a, hashcons b))
  | Iff (a, b) -> intern (Iff (hashcons a, hashcons b))
  | Ite (c, a, b) -> intern (Ite (hashcons c, hashcons a, hashcons b))
  | Add ts -> intern (Add (List.map hashcons ts))
  | Sub (a, b) -> intern (Sub (hashcons a, hashcons b))
  | Neg a -> intern (Neg (hashcons a))
  | Mul_const (k, a) -> intern (Mul_const (k, hashcons a))
  | Eq (a, b) -> intern (Eq (hashcons a, hashcons b))
  | Le (a, b) -> intern (Le (hashcons a, hashcons b))
  | Lt (a, b) -> intern (Lt (hashcons a, hashcons b))

(* ------------------------------------------------------------------ *)
(* Sorts                                                              *)
(* ------------------------------------------------------------------ *)

let rec sort_of = function
  | True | False | Not _ | And _ | Or _ | Implies _ | Iff _ | Eq _ | Le _
  | Lt _ ->
      Bool
  | Int_const _ | Add _ | Sub _ | Neg _ | Mul_const _ -> Int
  | Var v -> v.sort
  | Ite (_, t, _) -> sort_of t

let is_bool t = sort_of t = Bool
let is_int t = sort_of t = Int

(* ------------------------------------------------------------------ *)
(* Smart constructors: light normalization at construction time.      *)
(* ------------------------------------------------------------------ *)

let true_ = True
let false_ = False
let int n = intern (Int_const n)
let var name sort = intern (Var { name; sort })
let bool_var name = var name Bool
let int_var name = var name Int
let of_bool b = if b then True else False

let check_bool ctx t =
  if not (is_bool t) then sort_error "%s: expected Bool, got Int term" ctx

let check_int ctx t =
  if not (is_int t) then sort_error "%s: expected Int, got Bool term" ctx

let not_ t =
  check_bool "not" t;
  match t with
  | True -> False
  | False -> True
  | Not t -> t
  | t -> intern (Not t)

let and_ ts =
  List.iter (check_bool "and") ts;
  let ts =
    List.concat_map (function And xs -> xs | True -> [] | t -> [ t ]) ts
  in
  if List.exists (fun t -> t = False) ts then False
  else
    match ts with [] -> True | [ t ] -> t | ts -> intern (And ts)

let or_ ts =
  List.iter (check_bool "or") ts;
  let ts =
    List.concat_map (function Or xs -> xs | False -> [] | t -> [ t ]) ts
  in
  if List.exists (fun t -> t = True) ts then True
  else
    match ts with [] -> False | [ t ] -> t | ts -> intern (Or ts)

let implies a b =
  check_bool "implies" a;
  check_bool "implies" b;
  match (a, b) with
  | True, b -> b
  | False, _ -> True
  | _, True -> True
  | a, False -> not_ a
  | a, b -> intern (Implies (a, b))

let iff a b =
  check_bool "iff" a;
  check_bool "iff" b;
  match (a, b) with
  | True, b -> b
  | b, True -> b
  | False, b -> not_ b
  | b, False -> not_ b
  | a, b -> if equal a b then True else intern (Iff (a, b))

let ite c a b =
  check_bool "ite" c;
  if not (equal_sort (sort_of a) (sort_of b)) then
    sort_error "ite: branch sorts differ";
  match c with
  | True -> a
  | False -> b
  | c -> if equal a b then a else intern (Ite (c, a, b))

let add ts =
  List.iter (check_int "add") ts;
  let ts = List.concat_map (function Add xs -> xs | t -> [ t ]) ts in
  (* Fold all constants into one summand; loop counters stay concrete. *)
  let const, rest =
    List.fold_left
      (fun (c, rest) t ->
        match t with Int_const n -> (c + n, rest) | t -> (c, t :: rest))
      (0, []) ts
  in
  let rest = List.rev rest in
  match (const, rest) with
  | c, [] -> intern (Int_const c)
  | 0, [ t ] -> t
  | 0, ts -> intern (Add ts)
  | c, ts -> intern (Add (ts @ [ intern (Int_const c) ]))

let sub a b =
  check_int "sub" a;
  check_int "sub" b;
  match (a, b) with
  | Int_const x, Int_const y -> intern (Int_const (x - y))
  | a, Int_const 0 -> a
  | a, b -> if equal a b then intern (Int_const 0) else intern (Sub (a, b))

let neg t =
  check_int "neg" t;
  match t with
  | Int_const n -> intern (Int_const (-n))
  | Neg t -> t
  | t -> intern (Neg t)

let mul_const k t =
  check_int "mul" t;
  match (k, t) with
  | 0, _ -> intern (Int_const 0)
  | 1, t -> t
  | k, Int_const n -> intern (Int_const (k * n))
  | k, Mul_const (k', t) -> intern (Mul_const (k * k', t))
  | k, t -> intern (Mul_const (k, t))

let eq a b =
  if not (equal_sort (sort_of a) (sort_of b)) then
    sort_error "eq: operand sorts differ";
  match (a, b) with
  | Int_const x, Int_const y -> of_bool (x = y)
  | True, b -> b
  | b, True -> b
  | False, b -> not_ b
  | b, False -> not_ b
  | a, b -> if equal a b then True else intern (Eq (a, b))

let le a b =
  check_int "le" a;
  check_int "le" b;
  match (a, b) with
  | Int_const x, Int_const y -> of_bool (x <= y)
  | a, b -> if equal a b then True else intern (Le (a, b))

let lt a b =
  check_int "lt" a;
  check_int "lt" b;
  match (a, b) with
  | Int_const x, Int_const y -> of_bool (x < y)
  | a, b -> if equal a b then False else intern (Lt (a, b))

let ge a b = le b a
let gt a b = lt b a
let neq a b = not_ (eq a b)

(* ------------------------------------------------------------------ *)
(* Traversals                                                         *)
(* ------------------------------------------------------------------ *)

module Var_set = Set.Make (struct
  type nonrec t = var

  let compare = compare
end)

let rec fold_vars f acc = function
  | True | False | Int_const _ -> acc
  | Var v -> f acc v
  | Not t | Neg t | Mul_const (_, t) -> fold_vars f acc t
  | And ts | Or ts | Add ts -> List.fold_left (fold_vars f) acc ts
  | Implies (a, b) | Iff (a, b) | Sub (a, b) | Eq (a, b) | Le (a, b)
  | Lt (a, b) ->
      fold_vars f (fold_vars f acc a) b
  | Ite (c, a, b) -> fold_vars f (fold_vars f (fold_vars f acc c) a) b

let vars t = fold_vars (fun s v -> Var_set.add v s) Var_set.empty t

let rec map_vars f t =
  match t with
  | True | False | Int_const _ -> t
  | Var v -> f v
  | Not t -> not_ (map_vars f t)
  | Neg t -> neg (map_vars f t)
  | Mul_const (k, t) -> mul_const k (map_vars f t)
  | And ts -> and_ (List.map (map_vars f) ts)
  | Or ts -> or_ (List.map (map_vars f) ts)
  | Add ts -> add (List.map (map_vars f) ts)
  | Implies (a, b) -> implies (map_vars f a) (map_vars f b)
  | Iff (a, b) -> iff (map_vars f a) (map_vars f b)
  | Sub (a, b) -> sub (map_vars f a) (map_vars f b)
  | Eq (a, b) -> eq (map_vars f a) (map_vars f b)
  | Le (a, b) -> le (map_vars f a) (map_vars f b)
  | Lt (a, b) -> lt (map_vars f a) (map_vars f b)
  | Ite (c, a, b) -> ite (map_vars f c) (map_vars f a) (map_vars f b)

(* Substitute variables by name. *)
let subst bindings t =
  map_vars
    (fun v ->
      match List.assoc_opt v.name bindings with
      | Some replacement ->
          if not (equal_sort (sort_of replacement) v.sort) then
            sort_error "subst: sort mismatch for %s" v.name;
          replacement
      | None -> Var v)
    t

let rec size = function
  | True | False | Int_const _ | Var _ -> 1
  | Not t | Neg t | Mul_const (_, t) -> 1 + size t
  | And ts | Or ts | Add ts -> List.fold_left (fun a t -> a + size t) 1 ts
  | Implies (a, b) | Iff (a, b) | Sub (a, b) | Eq (a, b) | Le (a, b)
  | Lt (a, b) ->
      1 + size a + size b
  | Ite (c, a, b) -> 1 + size c + size a + size b

(* ------------------------------------------------------------------ *)
(* Evaluation under a concrete assignment — the reference semantics
   that the SAT/LIA machinery is property-tested against.             *)
(* ------------------------------------------------------------------ *)

type value = VBool of bool | VInt of int

exception Unassigned of string

let rec eval env t =
  match t with
  | True -> VBool true
  | False -> VBool false
  | Int_const n -> VInt n
  | Var v -> (
      match env v.name with
      | Some value -> value
      | None -> raise (Unassigned v.name))
  | Not t -> VBool (not (eval_bool env t))
  | And ts -> VBool (List.for_all (eval_bool env) ts)
  | Or ts -> VBool (List.exists (eval_bool env) ts)
  | Implies (a, b) -> VBool ((not (eval_bool env a)) || eval_bool env b)
  | Iff (a, b) -> VBool (eval_bool env a = eval_bool env b)
  | Ite (c, a, b) -> if eval_bool env c then eval env a else eval env b
  | Add ts -> VInt (List.fold_left (fun acc t -> acc + eval_int env t) 0 ts)
  | Sub (a, b) -> VInt (eval_int env a - eval_int env b)
  | Neg t -> VInt (-eval_int env t)
  | Mul_const (k, t) -> VInt (k * eval_int env t)
  | Eq (a, b) -> VBool (eval env a = eval env b)
  | Le (a, b) -> VBool (eval_int env a <= eval_int env b)
  | Lt (a, b) -> VBool (eval_int env a < eval_int env b)

and eval_bool env t =
  match eval env t with
  | VBool b -> b
  | VInt _ -> sort_error "eval: expected Bool"

and eval_int env t =
  match eval env t with
  | VInt n -> n
  | VBool _ -> sort_error "eval: expected Int"

(* ------------------------------------------------------------------ *)
(* Pretty printing (SMT-LIB flavoured)                                *)
(* ------------------------------------------------------------------ *)

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Int_const n -> Format.fprintf fmt "%d" n
  | Var v -> Format.pp_print_string fmt v.name
  | Not t -> Format.fprintf fmt "@[<hv 2>(not@ %a)@]" pp t
  | And ts -> pp_nary fmt "and" ts
  | Or ts -> pp_nary fmt "or" ts
  | Implies (a, b) -> Format.fprintf fmt "@[<hv 2>(=>@ %a@ %a)@]" pp a pp b
  | Iff (a, b) -> Format.fprintf fmt "@[<hv 2>(iff@ %a@ %a)@]" pp a pp b
  | Ite (c, a, b) ->
      Format.fprintf fmt "@[<hv 2>(ite@ %a@ %a@ %a)@]" pp c pp a pp b
  | Add ts -> pp_nary fmt "+" ts
  | Sub (a, b) -> Format.fprintf fmt "@[<hv 2>(-@ %a@ %a)@]" pp a pp b
  | Neg t -> Format.fprintf fmt "@[<hv 2>(-@ %a)@]" pp t
  | Mul_const (k, t) -> Format.fprintf fmt "@[<hv 2>(*@ %d@ %a)@]" k pp t
  | Eq (a, b) -> Format.fprintf fmt "@[<hv 2>(=@ %a@ %a)@]" pp a pp b
  | Le (a, b) -> Format.fprintf fmt "@[<hv 2>(<=@ %a@ %a)@]" pp a pp b
  | Lt (a, b) -> Format.fprintf fmt "@[<hv 2>(<@ %a@ %a)@]" pp a pp b

and pp_nary fmt op ts =
  Format.fprintf fmt "@[<hv 2>(%s" op;
  List.iter (fun t -> Format.fprintf fmt "@ %a" pp t) ts;
  Format.fprintf fmt ")@]"

let to_string t = Format.asprintf "%a" pp t
