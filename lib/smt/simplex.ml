(* General simplex for linear rational arithmetic, after Dutertre & de
   Moura (CAV'06) — the decision core under the LIA branch-and-bound.

   The problem is presented as a set of *rows* defining slack variables as
   linear combinations of the original variables, plus lower/upper bounds
   on any variable. `check` decides feasibility over the rationals and
   produces a satisfying assignment. Bland's pivoting rule guarantees
   termination. Problems are small (path conditions over a few dozen
   label/length variables), so a dense tableau is the simple, fast
   choice. *)

type bound = { lower : Q.t option; upper : Q.t option }

let no_bound = { lower = None; upper = None }

type t = {
  nvars : int; (* total variables: originals ++ slacks *)
  tableau : Q.t array array; (* row r: basic_of_row.(r) = Σ tableau.(r).(j)·x_j *)
  basic_of_row : int array;
  row_of_var : int option array; (* Some r iff var is basic in row r *)
  bounds : bound array;
  beta : Q.t array; (* current assignment *)
}

(* Why a conflict is a conflict: the violated basic variable, the bound
   side it violates, and the nonzero entries of its final tableau row.
   At the point of failure every nonbasic in the row is pinned at the
   bound that blocks movement, so the row is exactly the data a Farkas
   combination needs (Lia turns it into an explicit certificate). *)
type conflict = {
  cvar : int; (* violated basic variable *)
  cbelow : bool; (* true: below its lower bound; false: above its upper *)
  crow : (Q.t * int) list; (* nonzero (coeff, nonbasic var) of its row *)
}

type result = Feasible of Q.t array | Infeasible of conflict

let get_bound t v = t.bounds.(v)

(* Build a solver instance.
   [nvars] original variables (indices 0..nvars-1).
   [rows]: each row is a list of (coefficient, original var index) defining
   one fresh slack variable. Slacks get indices nvars, nvars+1, ...
   [bounds]: fn from var index (originals and slacks) to its bound. *)
let create ~nvars ~(rows : (Q.t * int) list list) ~(bound_of : int -> bound) =
  let nslack = List.length rows in
  let total = nvars + nslack in
  let tableau = Array.make_matrix nslack total Q.zero in
  List.iteri
    (fun r row ->
      List.iter
        (fun (c, v) ->
          if v < 0 || v >= nvars then invalid_arg "Simplex.create: bad var";
          tableau.(r).(v) <- Q.add tableau.(r).(v) c)
        row)
    rows;
  let basic_of_row = Array.init nslack (fun r -> nvars + r) in
  let row_of_var = Array.make total None in
  Array.iteri (fun r v -> row_of_var.(v) <- Some r) basic_of_row;
  let bounds = Array.init total bound_of in
  let beta = Array.make total Q.zero in
  (* Initial assignment: nonbasic originals sit inside their bounds, at 0
     when possible; basics are the row evaluations. *)
  for v = 0 to nvars - 1 do
    let b = bounds.(v) in
    let ok_low = match b.lower with None -> true | Some l -> Q.le l Q.zero in
    let ok_up = match b.upper with None -> true | Some u -> Q.ge u Q.zero in
    beta.(v) <-
      (if ok_low && ok_up then Q.zero
       else match b.lower with Some l -> l | None -> Option.get b.upper)
  done;
  for r = 0 to nslack - 1 do
    let acc = ref Q.zero in
    for v = 0 to nvars - 1 do
      if not (Q.is_zero tableau.(r).(v)) then
        acc := Q.add !acc (Q.mul tableau.(r).(v) beta.(v))
    done;
    beta.(nvars + r) <- !acc
  done;
  { nvars = total; tableau; basic_of_row; row_of_var; bounds; beta }

let below_lower t v =
  match t.bounds.(v).lower with None -> false | Some l -> Q.lt t.beta.(v) l

let above_upper t v =
  match t.bounds.(v).upper with None -> false | Some u -> Q.gt t.beta.(v) u

let violated t v = below_lower t v || above_upper t v

(* Pivot: basic variable of row [r] leaves, nonbasic [xj] enters. *)
let pivot t r xj =
  let xi = t.basic_of_row.(r) in
  let a_rj = t.tableau.(r).(xj) in
  assert (not (Q.is_zero a_rj));
  let inv = Q.inv a_rj in
  (* Rewrite row r to define xj:  xj = (xi − Σ_{k≠j} a_rk·x_k) / a_rj *)
  let row = t.tableau.(r) in
  for k = 0 to t.nvars - 1 do
    if k = xj then row.(k) <- Q.zero
    else row.(k) <- Q.neg (Q.mul row.(k) inv)
  done;
  row.(xi) <- inv;
  t.basic_of_row.(r) <- xj;
  t.row_of_var.(xi) <- None;
  t.row_of_var.(xj) <- Some r;
  (* Substitute xj out of every other row. *)
  Array.iteri
    (fun r' row' ->
      if r' <> r && not (Q.is_zero row'.(xj)) then begin
        let c = row'.(xj) in
        row'.(xj) <- Q.zero;
        for k = 0 to t.nvars - 1 do
          if not (Q.is_zero row.(k)) then
            row'.(k) <- Q.add row'.(k) (Q.mul c row.(k))
        done
      end)
    t.tableau

let pivot_and_update t r xj v =
  let xi = t.basic_of_row.(r) in
  let a_ij = t.tableau.(r).(xj) in
  let theta = Q.div (Q.sub v t.beta.(xi)) a_ij in
  t.beta.(xi) <- v;
  t.beta.(xj) <- Q.add t.beta.(xj) theta;
  Array.iteri
    (fun r' row' ->
      if r' <> r then
        let xk = t.basic_of_row.(r') in
        if not (Q.is_zero row'.(xj)) then
          t.beta.(xk) <- Q.add t.beta.(xk) (Q.mul row'.(xj) theta))
    t.tableau;
  pivot t r xj

(* Bland's rule: always the smallest-index candidate. *)
let find_violating_basic t =
  let best = ref None in
  Array.iter
    (fun v ->
      if violated t v then
        match !best with
        | Some b when b <= v -> ()
        | _ -> best := Some v)
    t.basic_of_row;
  !best

let check t =
  let rec loop () =
    match find_violating_basic t with
    | None -> Feasible (Array.copy t.beta)
    | Some xi -> (
        let r = Option.get t.row_of_var.(xi) in
        let row = t.tableau.(r) in
        let need_increase = below_lower t xi in
        (* Candidate entering variable: smallest nonbasic xj that can move
           the basic value in the required direction. *)
        let candidate = ref None in
        for xj = 0 to t.nvars - 1 do
          if !candidate = None && t.row_of_var.(xj) = None then begin
            let a = row.(xj) in
            if not (Q.is_zero a) then
              let can_up =
                match t.bounds.(xj).upper with
                | None -> true
                | Some u -> Q.lt t.beta.(xj) u
              and can_down =
                match t.bounds.(xj).lower with
                | None -> true
                | Some l -> Q.gt t.beta.(xj) l
              in
              let ok =
                if need_increase then
                  (Q.gt a Q.zero && can_up) || (Q.lt a Q.zero && can_down)
                else (Q.gt a Q.zero && can_down) || (Q.lt a Q.zero && can_up)
              in
              if ok then candidate := Some xj
          end
        done;
        match !candidate with
        | None ->
            let crow = ref [] in
            for xj = t.nvars - 1 downto 0 do
              if t.row_of_var.(xj) = None && not (Q.is_zero row.(xj)) then
                crow := (row.(xj), xj) :: !crow
            done;
            Infeasible { cvar = xi; cbelow = need_increase; crow = !crow }
        | Some xj ->
            let target =
              if need_increase then Option.get t.bounds.(xi).lower
              else Option.get t.bounds.(xi).upper
            in
            pivot_and_update t r xj target;
            loop ())
  in
  loop ()
