(* First-order terms over booleans and integers — the verifier's logic.

   DNS-V restricts specification branch conditions to linear integer
   arithmetic (paper §4.2, §6.3): comparisons between integer variables and
   constants, composed with boolean connectives. This module is the shared
   term language between the symbolic executor, the summarizer and the
   solver. Variable-length lists (domain names, sections) are *not* a term
   sort: per §5.4 they are encoded upstream as one integer variable per
   active element plus a symbolic length variable. *)

type sort = Bool | Int
val pp_sort : Format.formatter -> sort -> unit
val equal_sort : sort -> sort -> bool
type t =
    True
  | False
  | Int_const of int
  | Var of var
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Ite of t * t * t
  | Add of t list
  | Sub of t * t
  | Neg of t
  | Mul_const of int * t
  | Eq of t * t
  | Le of t * t
  | Lt of t * t
and var = { name : string; sort : sort; }
exception Sort_error of string
val sort_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(* Hash-consing. Smart constructors intern every node in a domain-local
   table, so structurally equal terms built through them are physically
   equal within a domain; [equal] and [hash] are then effectively O(1)
   and safe to use for memo-table keys. [hashcons] interns a term built
   with the raw data constructors. *)
val equal : t -> t -> bool
val hash : t -> int
val intern : t -> t
val hashcons : t -> t
val sort_of : t -> sort
val is_bool : t -> bool
val is_int : t -> bool
val true_ : t
val false_ : t
val int : int -> t
val var : string -> sort -> t
val bool_var : string -> t
val int_var : string -> t
val of_bool : bool -> t
val check_bool : string -> t -> unit
val check_int : string -> t -> unit
val not_ : t -> t
val and_ : t list -> t
val or_ : t list -> t
val implies : t -> t -> t
val iff : t -> t -> t
val ite : t -> t -> t -> t
val add : t list -> t
val sub : t -> t -> t
val neg : t -> t
val mul_const : int -> t -> t
val eq : t -> t -> t
val le : t -> t -> t
val lt : t -> t -> t
val ge : t -> t -> t
val gt : t -> t -> t
val neq : t -> t -> t
module Var_set :
  sig
    type elt = var
    type t
    val empty : t
    val add : elt -> t -> t
    val singleton : elt -> t
    val remove : elt -> t -> t
    val union : t -> t -> t
    val inter : t -> t -> t
    val disjoint : t -> t -> bool
    val diff : t -> t -> t
    val cardinal : t -> int
    val elements : t -> elt list
    val min_elt : t -> elt
    val min_elt_opt : t -> elt option
    val max_elt : t -> elt
    val max_elt_opt : t -> elt option
    val choose : t -> elt
    val choose_opt : t -> elt option
    val find : elt -> t -> elt
    val find_opt : elt -> t -> elt option
    val find_first : (elt -> bool) -> t -> elt
    val find_first_opt : (elt -> bool) -> t -> elt option
    val find_last : (elt -> bool) -> t -> elt
    val find_last_opt : (elt -> bool) -> t -> elt option
    val iter : (elt -> unit) -> t -> unit
    val fold : (elt -> 'acc -> 'acc) -> t -> 'acc -> 'acc
    val map : (elt -> elt) -> t -> t
    val filter : (elt -> bool) -> t -> t
    val filter_map : (elt -> elt option) -> t -> t
    val partition : (elt -> bool) -> t -> t * t
    val split : elt -> t -> t * bool * t
    val is_empty : t -> bool
    val mem : elt -> t -> bool
    val equal : t -> t -> bool
    val compare : t -> t -> int
    val subset : t -> t -> bool
    val for_all : (elt -> bool) -> t -> bool
    val exists : (elt -> bool) -> t -> bool
    val to_list : t -> elt list
    val of_list : elt list -> t
    val to_seq_from : elt -> t -> elt Seq.t
    val to_seq : t -> elt Seq.t
    val to_rev_seq : t -> elt Seq.t
    val add_seq : elt Seq.t -> t -> t
    val of_seq : elt Seq.t -> t
  end
val fold_vars : ('a -> var -> 'a) -> 'a -> t -> 'a
val vars : t -> Var_set.t
val map_vars : (var -> t) -> t -> t
val subst : (string * t) list -> t -> t
val size : t -> int
type value = VBool of bool | VInt of int
exception Unassigned of string
val eval : (string -> value option) -> t -> value
val eval_bool : (string -> value option) -> t -> bool
val eval_int : (string -> value option) -> t -> int
val pp : Format.formatter -> t -> unit
val pp_nary : Format.formatter -> string -> t list -> unit
val to_string : t -> string
