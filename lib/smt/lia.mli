(* Linear integer arithmetic decision procedure: branch-and-bound over the
   rational simplex, plus disequality splitting.

   Conjunctions of `Linear.atom`s are decided here. Integrality is
   enforced by branching  x ≤ ⌊v⌋ ∨ x ≥ ⌈v⌉  on a fractional variable of
   the relaxation; disequalities split as  lin ≤ −1 ∨ lin ≥ 1. A depth cap
   returns [Unknown] rather than diverging on adversarial unbounded
   instances (never reached by DNS-V's bounded-list encodings).

   [check_cert] additionally certifies Unsat answers with an index-based
   branch-and-bound proof (facts reference input atoms by position in the
   given list, which callers keep canonical), so the proof can be cached
   with the result and re-anchored to term-level provenance on replay. *)

module String_map : Map.S with type key = string

type model = int String_map.t
type result = Sat of model | Unsat | Unknown

(* A fact usable in a Farkas step:
   - [F_atom i]: the i-th input atom (0-based);
   - [F_le (x, k)] / [F_ge (x, k)]: a branching bound on variable x;
   - [F_neq_le i] / [F_neq_ge i]: the tightenings  lin ≤ −1  and
     −lin ≤ −1  of disequality input atom i. *)
type fact =
  | F_atom of int
  | F_le of string * int
  | F_ge of string * int
  | F_neq_le of int
  | F_neq_ge of int

type proof =
  | P_farkas of (fact * Q.t) list
  | P_branch of string * int * proof * proof (* x ≤ k  ∨  x ≥ k+1 *)
  | P_split of int * proof * proof (* neq atom i: lin ≤ −1 ∨ −lin ≤ −1 *)

(* [Cunsat None]: the answer is Unsat but certificate construction
   failed; callers must treat it as a validation failure. *)
type cert_result = Csat of model | Cunsat of proof option | Cunknown

val max_depth : int

type row = { coeffs : (int * string) list; rhs : int; is_eq : bool }

val pp_model : Format.formatter -> int String_map.t -> unit
val check_cert : Linear.atom list -> cert_result
val check : Linear.atom list -> result

(* Input atom indices a proof cites — the theory conflict core. The
   DPLL(T) loop blocks just these atoms instead of the whole satisfying
   assignment, so one theory conflict prunes every assignment that
   shares the core. *)
val proof_atoms : proof -> int list

(* Per-variable integer bounds derived by [presolve]:
   variable -> (lower, upper), either side possibly open. *)
type bounds = (int option * int option) String_map.t

(* [Punsat]: the conjunction is infeasible; the proof (over original
   atom indices, in the existing Farkas/split-tree forms) was obtained
   by running [check_cert] on the contradiction's support core, so
   downstream certificate validation is unchanged. [Pfeasible]: no
   contradiction found; the bounds box over-approximates the solution
   set and can seed entailed literals. *)
type presolve_result = Pfeasible of bounds | Punsat of proof option

(* Interval bound propagation plus gcd coefficient tightening over the
   conjunction. Sound but deliberately incomplete (bounded passes):
   prunes trivially-infeasible queries before they reach the SAT core,
   and never decides on its own authority — a contradiction is only
   reported when [check_cert] confirms it on the support core. *)
val presolve : Linear.atom list -> presolve_result

(* Three-valued evaluation of an atom under interval bounds: entailed
   true / entailed false when every integer point in the box agrees. *)
val entailed : bounds -> Linear.atom -> bool option
