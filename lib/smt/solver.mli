(* The solver facade: lazy DPLL(T) over the SAT core and the LIA theory.

   This plays the role Z3 plays in the paper (§5.2): every branch decision
   of the symbolic executor and every refinement obligation lands here.
   Two paths:

   - conjunctions of literals (the overwhelmingly common case — path
     conditions) go straight to the LIA procedure;
   - arbitrary boolean structure goes through Tseitin CNF + DPLL, with
     theory-refuted assignments blocked by clauses until convergence.

   A domain-local result cache (canonical-conjunction → result memo) and
   an incremental assertion stack sit on top; see [Incremental]. *)

type result = Sat of Model.t | Unsat | Unknown

type stats = {
  mutable checks : int;
  mutable fast_path : int;
  mutable dpllt_iterations : int;
  mutable unknowns : int; (* Unknown answers, incl. injected ones *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable incremental_checks : int;
  mutable scratch_checks : int;
  mutable cert_checks : int; (* certificates validated *)
  mutable cert_failures : int; (* certificates that failed validation *)
}

(* The counters live in the metrics registry (lib/trace) under the
   "solver.*" names, domain-local as before; the record is a snapshot
   view over them. [stats ()] is the window since the last
   [reset_stats]; [lifetime ()] the total since the last
   [reset_lifetime] (both per-domain). [absorb_stats] folds a worker's
   delta into the calling domain's registry cells without disturbing
   its current window — the legacy join-barrier entry point
   (Parallel.Domainpool now absorbs whole registry snapshots itself). *)
val stats : unit -> stats
val reset_stats : unit -> unit
val lifetime : unit -> stats
val reset_lifetime : unit -> unit
val absorb_stats : stats -> unit
val add_stats : into:stats -> stats -> unit
val diff_stats : stats -> stats -> stats

(* Result-cache switch (on by default). Atomic: flipping it on the main
   domain is observed by workers. The caches themselves are domain-local;
   Unknown answers are never cached. *)
val set_caching : bool -> unit
val caching_enabled : unit -> bool
val clear_caches : unit -> unit

(* Incremental-stack switch (on by default). When off, [Incremental]
   checks degrade to monolithic [check]s of their full term list — the
   pre-optimization behavior, kept for before/after measurement. *)
val set_incremental : bool -> unit
val incremental_enabled : unit -> bool

(* Certificate switch (on by default). When on and a validator is
   installed ([Proof.set_validator], done by [Cert.install]), every Sat
   and Unsat answer handed out — fresh, replayed from a cache, or served
   by the incremental stack's refuted-prefix short-circuit — is
   validated against its certificate first; an unjustifiable answer is
   degraded to Unknown and counted in [stats.cert_failures]. A corrupted
   memo entry can therefore degrade a verdict but never flip one. *)
val set_certify : bool -> unit
val certify_enabled : unit -> bool

(* Theory-aware presolve switch (on by default). Interval bound
   propagation + gcd coefficient tightening over a general query's unit
   literal conjuncts: a refuted box answers Unsat before the SAT core
   is even built (counted in the `presolve.pruned` registry counter), a
   feasible one seeds entailed theory atoms as unit clauses on the
   trail. Off = the pre-optimization behavior, for measurement. *)
val set_presolve : bool -> unit
val presolve_enabled : unit -> bool

(* Clause-learning switch (on by default). When off, the DPLL(T) loop
   reverts to the legacy discipline — each theory refutation blocks the
   full assignment and the SAT search restarts from scratch — instead
   of learning the theory conflict core in a persistent CDCL solver. *)
val set_learning : bool -> unit
val learning_enabled : unit -> bool

(* Persistent-store hook (installed by [Store.with_solver] in lib/store,
   which sits above this library). Consulted only on in-memory cache
   misses, and only along the caching-enabled paths. [p_lookup] gets
   the canonical term list of a query and must return nothing it cannot
   justify — the store re-validates certificates on load and falls
   through to a fresh solve on any failure; whatever it serves still
   passes the solver's own [validate] gatekeeper. [p_save] receives
   Sat-with-model and Unsat-with-certificate answers only; Unknown is
   never persisted. Atomic: installing on the main domain is observed
   by parallel workers. *)
type persist = {
  p_lookup : Term.t list -> (result * Proof.t option) option;
  p_save : Term.t list -> result * Proof.t option -> unit;
}

val set_persist : persist option -> unit
val persist_installed : unit -> persist option

(* Scope a resource budget over every [check]/[entails] call made by
   [f]: each call charges one solver step and honors the deadline. The
   scope is domain-local. *)
val current_budget : unit -> Budget.t option ref
val with_budget : Budget.t -> (unit -> 'a) -> 'a

exception Not_conjunctive

val literals_of_conjunction :
  Term.t list -> Linear.atom list * (string * bool) list

(* Like [literals_of_conjunction], but each atom keeps its source
   literal (the asserted term, negated for negative occurrences) so
   certificates can cite it as a fact. *)
val literals_of_conjunction_src :
  Term.t list -> (Linear.atom * Term.t) list * (string * bool) list

val model_of_lia_model :
  Lia.model ->
  (Model.String_map.key * bool) list ->
  Term.value Model.String_map.t

val check_fast : Term.t list -> result option

(* Backstop iteration cap for the DPLL(T) refutation loop when no
   budget is in scope (a bare cap hit answers Unknown). With a budget,
   each loop re-iteration charges one solver step, so `--solver-steps`
   governs the loop and a cap hit surfaces as the machine-readable
   [Budget.Solver_steps_exhausted] Inconclusive reason. *)
val max_dpllt_iterations : int
val check_dpllt : Term.t -> result

(* The certificate-producing core (no budget charge, no validation):
   exposed for the certificate test-suite. *)
val check_core_cert : Term.t list -> result * Proof.t option
val check : Term.t list -> result
val is_sat : Term.t list -> bool
val is_unsat : Term.t list -> bool

type entailment = Valid | Counterexample of Model.t | Unknown_validity

val entails : hyps:Term.t list -> Term.t -> entailment

(* Incremental assertion stack: push/assert/pop frames mirroring a path
   condition, so a branch decision extends the parent path's analyzed
   solver state by one literal instead of re-translating the whole
   conjunction. Refuted prefixes short-circuit every extension. Each
   [check]/[check_pc] charges the budget and fault plan exactly like a
   top-level [check]. *)
module Incremental : sig
  type t

  val create : unit -> t
  val push : t -> unit
  val assert_term : t -> Term.t -> unit
  val pop : t -> unit
  val depth : t -> int
  val terms : t -> Term.t list
  val check : t -> result

  (* Decide path condition [pc] (newest literal first), syncing the
     stack to it by physical identity of the cons cells — sibling
     branches and parent paths share tails, and shared literals keep
     their analysis. Do not mix with the explicit push/assert API on
     the same stack. *)
  val check_pc : t -> Term.t list -> result
  val entails : t -> hyps:Term.t list -> Term.t -> entailment
end
