(* The solver facade: lazy DPLL(T) over the SAT core and the LIA theory.

   This plays the role Z3 plays in the paper (§5.2): every branch decision
   of the symbolic executor and every refinement obligation lands here.
   Two paths:

   - conjunctions of literals (the overwhelmingly common case — path
     conditions) go straight to the LIA procedure;
   - arbitrary boolean structure goes through Tseitin CNF + DPLL, with
     theory-refuted assignments blocked by clauses until convergence. *)

type result = Sat of Model.t | Unsat | Unknown
type stats = {
  mutable checks : int;
  mutable fast_path : int;
  mutable dpllt_iterations : int;
  mutable unknowns : int; (* Unknown answers, incl. injected ones *)
}
val stats : stats
val reset_stats : unit -> unit

(* Scope a resource budget over every [check]/[entails] call made by
   [f]: each call charges one solver step and honors the deadline. *)
val current_budget : Budget.t option ref
val with_budget : Budget.t -> (unit -> 'a) -> 'a
exception Not_conjunctive
val literals_of_conjunction :
  Term.t list -> Linear.atom list * (string * bool) list
val model_of_lia_model :
  Lia.model ->
  (Model.String_map.key * bool) list ->
  Term.value Model.String_map.t
val check_fast : Term.t list -> result option
val max_dpllt_iterations : int
val check_dpllt : Term.t -> result
val check : Term.t list -> result
val is_sat : Term.t list -> bool
val is_unsat : Term.t list -> bool
type entailment = Valid | Counterexample of Model.t | Unknown_validity
val entails : hyps:Term.t list -> Term.t -> entailment
