(* Linear normal form for integer terms and atomic constraints.

   A linear form is  c0 + Σ ci·xi  with integer coefficients over named
   integer variables. Every integer term of the restricted logic (§4.2)
   normalizes into this shape, except `ite`-valued integers, which the
   upstream layers eliminate by path splitting before terms reach the
   solver. *)

module Coeffs = Map.Make (String)

type t = { const : int; coeffs : int Coeffs.t }
(* Invariant: no zero coefficient is stored. *)

let const n = { const = n; coeffs = Coeffs.empty }
let zero = const 0

let var ?(coeff = 1) name =
  if coeff = 0 then zero
  else { const = 0; coeffs = Coeffs.singleton name coeff }

let coeff name t = Option.value ~default:0 (Coeffs.find_opt name t.coeffs)

let add_coeff name k coeffs =
  if k = 0 then coeffs
  else
    Coeffs.update name
      (fun prev ->
        let c = Option.value ~default:0 prev + k in
        if c = 0 then None else Some c)
      coeffs

let add a b =
  {
    const = a.const + b.const;
    coeffs = Coeffs.fold add_coeff b.coeffs a.coeffs;
  }

let scale k t =
  if k = 0 then zero
  else { const = k * t.const; coeffs = Coeffs.map (fun c -> k * c) t.coeffs }

let neg t = scale (-1) t
let sub a b = add a (neg b)
let is_const t = Coeffs.is_empty t.coeffs
let coeff_free t = t.const
let const_value t = if is_const t then Some t.const else None
let equal a b = a.const = b.const && Coeffs.equal ( = ) a.coeffs b.coeffs
let vars t = List.map fst (Coeffs.bindings t.coeffs)
let fold_coeffs f acc t = Coeffs.fold (fun v c acc -> f acc v c) t.coeffs acc

exception Nonlinear of string

(* Normalize an integer-sorted term. Raises [Nonlinear] on `ite`, which
   callers must split on beforehand, and on boolean-sorted terms. *)
let rec of_term (t : Term.t) : t =
  match t with
  | Term.Int_const n -> const n
  | Term.Var v ->
      if v.Term.sort <> Term.Int then raise (Nonlinear "boolean variable");
      var v.Term.name
  | Term.Add ts -> List.fold_left (fun acc t -> add acc (of_term t)) zero ts
  | Term.Sub (a, b) -> sub (of_term a) (of_term b)
  | Term.Neg t -> neg (of_term t)
  | Term.Mul_const (k, t) -> scale k (of_term t)
  | Term.Ite _ -> raise (Nonlinear "ite")
  | _ -> raise (Nonlinear "boolean term in integer position")

let to_term t : Term.t =
  let monomials =
    Coeffs.fold
      (fun name c acc -> Term.mul_const c (Term.int_var name) :: acc)
      t.coeffs []
  in
  let parts = if t.const = 0 && monomials <> [] then monomials
    else Term.int t.const :: monomials
  in
  Term.add parts

let eval env t =
  Coeffs.fold (fun name c acc -> acc + (c * env name)) t.coeffs t.const

let pp fmt t =
  let first = ref true in
  let sep () = if !first then first := false else Format.fprintf fmt " + " in
  Coeffs.iter
    (fun name c ->
      sep ();
      if c = 1 then Format.fprintf fmt "%s" name
      else Format.fprintf fmt "%d*%s" c name)
    t.coeffs;
  if t.const <> 0 || !first then begin
    sep ();
    Format.fprintf fmt "%d" t.const
  end

(* ------------------------------------------------------------------ *)
(* Atoms: the theory literals handed to the LIA solver.               *)
(* ------------------------------------------------------------------ *)

type atom =
  | Le_zero of t  (* lin ≤ 0 *)
  | Eq_zero of t  (* lin = 0 *)
  | Neq_zero of t (* lin ≠ 0 *)

(* Build an atom from a comparison term. Over the integers a strict
   inequality  lin < 0  tightens to  lin + 1 ≤ 0. *)
let atom_of_term (t : Term.t) : atom option =
  match t with
  | Term.Eq (a, b) when Term.is_int a -> Some (Eq_zero (sub (of_term a) (of_term b)))
  | Term.Le (a, b) -> Some (Le_zero (sub (of_term a) (of_term b)))
  | Term.Lt (a, b) ->
      Some (Le_zero (add (sub (of_term a) (of_term b)) (const 1)))
  | _ -> None

let negate_atom = function
  | Le_zero lin ->
      (* ¬(lin ≤ 0)  ⇔  lin ≥ 1  ⇔  1 - lin ≤ 0 *)
      Le_zero (sub (const 1) lin)
  | Eq_zero lin -> Neq_zero lin
  | Neq_zero lin -> Eq_zero lin

(* Canonical, order-independent key for memoizing atoms: [Coeffs.bindings]
   is sorted by variable name, so two structurally different maps denoting
   the same linear form produce the same key. Polymorphic compare/hash on
   the [Map.t] balanced trees themselves would be unreliable — never key
   on [atom] directly. *)
type key = int * int * (string * int) list

let key_of_atom (a : atom) : key =
  let tag, lin =
    match a with
    | Le_zero lin -> (0, lin)
    | Eq_zero lin -> (1, lin)
    | Neq_zero lin -> (2, lin)
  in
  (tag, lin.const, Coeffs.bindings lin.coeffs)

let eval_atom env = function
  | Le_zero lin -> eval env lin <= 0
  | Eq_zero lin -> eval env lin = 0
  | Neq_zero lin -> eval env lin <> 0

let pp_atom fmt = function
  | Le_zero lin -> Format.fprintf fmt "%a <= 0" pp lin
  | Eq_zero lin -> Format.fprintf fmt "%a = 0" pp lin
  | Neq_zero lin -> Format.fprintf fmt "%a != 0" pp lin
