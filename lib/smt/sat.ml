(* A CDCL SAT core with certified clause learning.

   The propositional skeletons DNS-V produces are modest, but the
   DPLL(T) loop in [Solver] replays thousands of near-identical panic
   queries, and a chronological-backtracking DPLL repeats the same
   conflict work on every one. This core keeps that work: two-watched-
   literal propagation (no clause-list scans), a decision trail with
   levels, 1UIP conflict analysis with non-chronological backjumping,
   Luby restarts, and a VSIDS-style activity heuristic whose ties break
   toward the lowest variable id so every run is reproducible. The
   solver is persistent across [add_clause], so theory lemmas become
   learned facts instead of causes for a scratch re-solve.

   Certified learning: every learned clause stores the resolution chain
   (antecedent clause ids + pivot variables) of its 1UIP derivation,
   including the steps that eliminate level-0 literals' vars is not
   needed because level-0 literals are *kept* in the learned clause —
   the chain then re-derives the stored clause exactly, by syntactic
   resolution alone, with no arithmetic. [validate] replays every chain
   plus the final empty-clause derivation after an Unsat answer; the
   caller treats a failed replay as a failed certificate and degrades
   to Unknown. The [Faultinject.Conflict_corrupt] site fires inside
   conflict analysis and drops a literal from the learned clause;
   dropping a literal only strengthens a clause, so Sat answers remain
   genuine models of the original clause set, while a wrong Unsat is
   caught by the replay. *)

module M = Trace.Metrics

let c_conflicts = M.counter "solver.conflicts"
let c_learned = M.counter "solver.learned_clauses"
let c_restarts = M.counter "solver.restarts"
let c_propagations = M.counter "solver.propagations"

type assignment = bool array

type result = Sat of assignment | Unsat

(* Resolution-chain certificate: start from clause [base] and resolve,
   in order, with each [steps] clause on its pivot variable. *)
type chain = { base : int; steps : (int * int) list }

type clause = {
  mutable lits : int array;
  (* positions 0 and 1 are the watched literals (length >= 2) *)
  cert : chain option; (* Some for learned clauses *)
}

type t = {
  nvars : int;
  mutable cls : clause array;
  mutable n_cls : int;
  values : int array; (* var -> 0 unassigned / 1 true / -1 false *)
  var_level : int array;
  reason : int array; (* var -> clause id, -1 for decisions/unassigned *)
  trail : int array;
  mutable trail_n : int;
  trail_lim : int array; (* trail_lim.(l) = trail size when level l+1 began *)
  mutable n_levels : int;
  mutable qhead : int;
  watches : int list array; (* watched-literal index -> clause ids *)
  activity : float array;
  mutable var_inc : float;
  seen : bool array; (* conflict-analysis scratch *)
  (* None: not refuted. Some None: refuted but the empty-clause
     derivation could not be built — [validate] fails closed.
     Some (Some c): refuted with derivation [c]. *)
  mutable refutation : chain option option;
  mutable n_conflicts : int;
  mutable n_learned : int;
  mutable n_restarts : int;
  mutable n_props : int;
  mutable restart_run : int; (* completed restarts, drives Luby *)
  mutable conflicts_in_run : int;
}

let dummy_clause = { lits = [||]; cert = None }

(* Watched-literal slot for a literal. *)
let widx l = (2 * abs l) + if l > 0 then 0 else 1

let value t l =
  let v = t.values.(abs l) in
  if v = 0 then 0 else if (v > 0) = (l > 0) then 1 else -1

let conflicts t = t.n_conflicts
let learned t = t.n_learned
let restarts t = t.n_restarts
let propagations t = t.n_props

(* ------------------------------------------------------------------ *)
(* Trail                                                              *)
(* ------------------------------------------------------------------ *)

let enqueue t l reason_id =
  t.values.(abs l) <- (if l > 0 then 1 else -1);
  t.var_level.(abs l) <- t.n_levels;
  t.reason.(abs l) <- reason_id;
  t.trail.(t.trail_n) <- l;
  t.trail_n <- t.trail_n + 1

let cancel_until t lvl =
  if t.n_levels > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_n - 1 downto bound do
      let v = abs t.trail.(i) in
      t.values.(v) <- 0;
      t.reason.(v) <- -1
    done;
    t.trail_n <- bound;
    t.qhead <- bound;
    t.n_levels <- lvl
  end

let new_decision_level t =
  t.trail_lim.(t.n_levels) <- t.trail_n;
  t.n_levels <- t.n_levels + 1

(* ------------------------------------------------------------------ *)
(* Clause storage                                                     *)
(* ------------------------------------------------------------------ *)

let alloc_clause t lits cert =
  if t.n_cls = Array.length t.cls then begin
    let bigger = Array.make (max 16 (2 * t.n_cls)) dummy_clause in
    Array.blit t.cls 0 bigger 0 t.n_cls;
    t.cls <- bigger
  end;
  let cid = t.n_cls in
  t.cls.(cid) <- { lits; cert };
  t.n_cls <- cid + 1;
  cid

let watch_clause t cid =
  let lits = t.cls.(cid).lits in
  t.watches.(widx lits.(0)) <- cid :: t.watches.(widx lits.(0));
  t.watches.(widx lits.(1)) <- cid :: t.watches.(widx lits.(1))

(* ------------------------------------------------------------------ *)
(* Final (empty-clause) derivation at level 0                          *)
(* ------------------------------------------------------------------ *)

(* Resolve the level-0-falsified clause [confl] against the reasons of
   its literals, walking the trail top-down; every literal of every
   resolvent is a false level-0 literal with a reason (level 0 has no
   decisions), so the set must empty out. Returns None — and therefore
   fails validation — if an expected reason is missing. *)
let final_resolution t confl =
  let set : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  Array.iter (fun l -> Hashtbl.replace set l ()) t.cls.(confl).lits;
  let steps = ref [] in
  let ok = ref true in
  (try
     for i = t.trail_n - 1 downto 0 do
       let p = t.trail.(i) in
       if Hashtbl.mem set (-p) then begin
         let r = t.reason.(abs p) in
         if r < 0 then begin
           ok := false;
           raise Exit
         end;
         steps := (abs p, r) :: !steps;
         Hashtbl.remove set (-p);
         Array.iter
           (fun l -> if l <> p then Hashtbl.replace set l ())
           t.cls.(r).lits
       end
     done
   with Exit -> ());
  if !ok && Hashtbl.length set = 0 then
    Some { base = confl; steps = List.rev !steps }
  else None

(* ------------------------------------------------------------------ *)
(* Adding clauses (input clauses and theory lemmas)                    *)
(* ------------------------------------------------------------------ *)

(* Splice a clause in at level 0. The DPLL(T) loop calls this with the
   trail at a full assignment; backtracking to the root is what makes
   the clause attachable anywhere, and every learned clause survives —
   the whole point of the persistent core. *)
let add_clause t (c : Cnf.clause) =
  if t.refutation = None then begin
    cancel_until t 0;
    let lits = List.sort_uniq compare c in
    let tautology =
      List.exists (fun l -> List.exists (fun l' -> l' = -l) lits) lits
    in
    if not tautology then
      match lits with
      | [] ->
          let cid = alloc_clause t [||] None in
          t.refutation <- Some (Some { base = cid; steps = [] })
      | [ l ] -> (
          let cid = alloc_clause t [| l |] None in
          match value t l with
          | 0 -> enqueue t l cid
          | 1 -> ()
          | _ -> t.refutation <- Some (final_resolution t cid))
      | _ ->
          let arr = Array.of_list lits in
          (* Prefer non-false literals in the watched positions. *)
          let n = Array.length arr in
          let swap i j =
            let tmp = arr.(i) in
            arr.(i) <- arr.(j);
            arr.(j) <- tmp
          in
          let placed = ref 0 in
          (try
             for i = 0 to n - 1 do
               if value t arr.(i) >= 0 then begin
                 swap !placed i;
                 incr placed;
                 if !placed = 2 then raise Exit
               end
             done
           with Exit -> ());
          let cid = alloc_clause t arr None in
          watch_clause t cid;
          if !placed = 0 then t.refutation <- Some (final_resolution t cid)
          else if !placed = 1 && value t arr.(0) = 0 then enqueue t arr.(0) cid
  end

let create ~nvars clauses =
  let t =
    {
      nvars;
      cls = Array.make (max 16 (List.length clauses)) dummy_clause;
      n_cls = 0;
      values = Array.make (nvars + 1) 0;
      var_level = Array.make (nvars + 1) 0;
      reason = Array.make (nvars + 1) (-1);
      trail = Array.make (nvars + 1) 0;
      trail_n = 0;
      trail_lim = Array.make (nvars + 2) 0;
      n_levels = 0;
      qhead = 0;
      watches = Array.make ((2 * (nvars + 1)) + 2) [];
      activity = Array.make (nvars + 1) 0.;
      var_inc = 1.;
      seen = Array.make (nvars + 1) false;
      refutation = None;
      n_conflicts = 0;
      n_learned = 0;
      n_restarts = 0;
      n_props = 0;
      restart_run = 0;
      conflicts_in_run = 0;
    }
  in
  List.iter (add_clause t) clauses;
  t

(* ------------------------------------------------------------------ *)
(* Propagation (two watched literals)                                 *)
(* ------------------------------------------------------------------ *)

let rec propagate t : int option =
  if t.qhead >= t.trail_n then None
  else begin
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.n_props <- t.n_props + 1;
    M.incr c_propagations;
    let fl = -p in
    let slot = widx fl in
    let ws = t.watches.(slot) in
    t.watches.(slot) <- [];
    let conflict = ref (-1) in
    let keep cid = t.watches.(slot) <- cid :: t.watches.(slot) in
    let rec go = function
      | [] -> ()
      | cid :: rest when !conflict >= 0 ->
          keep cid;
          go rest
      | cid :: rest ->
          let lits = t.cls.(cid).lits in
          if lits.(0) = fl then begin
            lits.(0) <- lits.(1);
            lits.(1) <- fl
          end;
          if value t lits.(0) = 1 then keep cid
          else begin
            (* Find a replacement watch among the tail. *)
            let len = Array.length lits in
            let k = ref 2 in
            while !k < len && value t lits.(!k) = -1 do
              incr k
            done;
            if !k < len then begin
              lits.(1) <- lits.(!k);
              lits.(!k) <- fl;
              t.watches.(widx lits.(1)) <- cid :: t.watches.(widx lits.(1))
            end
            else begin
              keep cid;
              match value t lits.(0) with
              | -1 -> conflict := cid
              | 0 -> enqueue t lits.(0) cid
              | _ -> ()
            end
          end;
          go rest
    in
    go ws;
    if !conflict >= 0 then Some !conflict else propagate t
  end

(* ------------------------------------------------------------------ *)
(* VSIDS                                                              *)
(* ------------------------------------------------------------------ *)

let rescale_limit = 1e100
let activity_decay = 1. /. 0.95

let bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > rescale_limit then begin
    for i = 1 to t.nvars do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end

let decay t = t.var_inc <- t.var_inc *. activity_decay

(* Highest activity wins; ties break toward the lowest variable id
   (strict > while scanning ascending), so the heuristic — and with it
   every model the solver returns — is deterministic. *)
let pick_branch t =
  let best = ref 0 and best_act = ref neg_infinity in
  for v = 1 to t.nvars do
    if t.values.(v) = 0 && t.activity.(v) > !best_act then begin
      best := v;
      best_act := t.activity.(v)
    end
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Conflict analysis (1UIP)                                           *)
(* ------------------------------------------------------------------ *)

(* Returns the learned clause (asserting literal first), the backjump
   level, and the resolution chain that re-derives it. Literals false
   at level 0 are *kept* in the learned clause, so the chain — which
   never resolves on their vars — replays to exactly the stored
   literal set. *)
let analyze t confl =
  let learnt = ref [] in
  let to_clear = ref [] in
  let path = ref 0 in
  let p = ref 0 in
  let index = ref (t.trail_n - 1) in
  let steps = ref [] in
  let cur = ref confl in
  let continue = ref true in
  while !continue do
    let lits = t.cls.(!cur).lits in
    let start = if !p = 0 then 0 else 1 in
    for j = start to Array.length lits - 1 do
      let q = lits.(j) in
      let v = abs q in
      if not t.seen.(v) then begin
        t.seen.(v) <- true;
        to_clear := v :: !to_clear;
        bump t v;
        if t.var_level.(v) >= t.n_levels then incr path else learnt := q :: !learnt
      end
    done;
    while not t.seen.(abs t.trail.(!index)) do
      decr index
    done;
    let pl = t.trail.(!index) in
    decr index;
    let v = abs pl in
    t.seen.(v) <- false;
    p := pl;
    decr path;
    if !path = 0 then continue := false
    else begin
      let r = t.reason.(v) in
      steps := (v, r) :: !steps;
      cur := r
    end
  done;
  List.iter (fun v -> t.seen.(v) <- false) !to_clear;
  let chain = { base = confl; steps = List.rev !steps } in
  let lits = Array.of_list ((- !p) :: !learnt) in
  (* Fault site inside conflict analysis: drop a (non-asserting)
     literal from the learned clause. The chain no longer re-derives
     the stored clause, so [validate] rejects it and the caller
     degrades any Unsat leaning on it to Unknown. *)
  let lits =
    if Array.length lits >= 2 && Faultinject.fire Faultinject.Conflict_corrupt
    then Array.sub lits 0 (Array.length lits - 1)
    else lits
  in
  (* Backjump target: the deepest level among the non-asserting
     literals; position 1 gets that literal (the second watch). *)
  let bj = ref 0 in
  for j = 1 to Array.length lits - 1 do
    if t.var_level.(abs lits.(j)) > !bj then bj := t.var_level.(abs lits.(j))
  done;
  if Array.length lits >= 2 then begin
    let best = ref 1 in
    for j = 2 to Array.length lits - 1 do
      if t.var_level.(abs lits.(j)) > t.var_level.(abs lits.(!best)) then
        best := j
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!best);
    lits.(!best) <- tmp
  end;
  (lits, !bj, chain)

(* ------------------------------------------------------------------ *)
(* Luby restarts                                                      *)
(* ------------------------------------------------------------------ *)

let restart_base = 32

(* The i-th (0-based) element of the Luby sequence 1,1,2,1,1,2,4,... *)
let luby i =
  let seq = ref 0 and size = ref 1 in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref i in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

(* ------------------------------------------------------------------ *)
(* Search                                                             *)
(* ------------------------------------------------------------------ *)

let solve t : result =
  if t.refutation <> None then Unsat
  else begin
    let rec loop () =
      match propagate t with
      | Some confl ->
          t.n_conflicts <- t.n_conflicts + 1;
          t.conflicts_in_run <- t.conflicts_in_run + 1;
          M.incr c_conflicts;
          if t.n_levels = 0 then begin
            t.refutation <- Some (final_resolution t confl);
            Unsat
          end
          else begin
            let lits, bjlevel, chain = analyze t confl in
            cancel_until t bjlevel;
            decay t;
            let cid = alloc_clause t lits (Some chain) in
            if Array.length lits >= 2 then watch_clause t cid;
            enqueue t lits.(0) cid;
            t.n_learned <- t.n_learned + 1;
            M.incr c_learned;
            if t.conflicts_in_run >= restart_base * luby t.restart_run then begin
              cancel_until t 0;
              t.restart_run <- t.restart_run + 1;
              t.conflicts_in_run <- 0;
              t.n_restarts <- t.n_restarts + 1;
              M.incr c_restarts
            end;
            loop ()
          end
      | None -> (
          match pick_branch t with
          | 0 ->
              let out = Array.make (t.nvars + 1) false in
              for v = 1 to t.nvars do
                out.(v) <- t.values.(v) > 0
              done;
              Sat out
          | v ->
              (* Positive phase first, like the DPLL core this replaces:
                 all-clean obligations keep their historical models. *)
              new_decision_level t;
              enqueue t v (-1);
              loop ())
    in
    loop ()
  end

(* ------------------------------------------------------------------ *)
(* Certificate replay                                                 *)
(* ------------------------------------------------------------------ *)

(* Re-derive a chain by syntactic resolution. [bound] rejects forward
   or self references, so a chain can only lean on clauses that existed
   when it was recorded. Returns the derived literal set. *)
let replay t ~bound ch : (int, unit) Hashtbl.t option =
  let exception Bad in
  try
    if ch.base < 0 || ch.base >= bound then raise Bad;
    let set : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    Array.iter (fun l -> Hashtbl.replace set l ()) t.cls.(ch.base).lits;
    List.iter
      (fun (v, cid) ->
        if cid < 0 || cid >= bound then raise Bad;
        let pos = Hashtbl.mem set v and neg = Hashtbl.mem set (-v) in
        if pos = neg then raise Bad;
        let l = if pos then v else -v in
        let src = t.cls.(cid).lits in
        if not (Array.exists (fun x -> x = -l) src) then raise Bad;
        Hashtbl.remove set l;
        Array.iter (fun x -> if x <> -l then Hashtbl.replace set x ()) src)
      ch.steps;
    Some set
  with Bad -> None

let set_equal (set : (int, unit) Hashtbl.t) (lits : int array) =
  Hashtbl.length set = Array.length lits
  && Array.for_all (fun l -> Hashtbl.mem set l) lits

let validate t =
  let ok = ref true in
  for i = 0 to t.n_cls - 1 do
    match t.cls.(i).cert with
    | None -> ()
    | Some ch -> (
        match replay t ~bound:i ch with
        | Some set when set_equal set t.cls.(i).lits -> ()
        | _ -> ok := false)
  done;
  (match t.refutation with
  | None -> ()
  | Some None -> ok := false
  | Some (Some ch) -> (
      match replay t ~bound:t.n_cls ch with
      | Some set when Hashtbl.length set = 0 -> ()
      | _ -> ok := false));
  !ok
