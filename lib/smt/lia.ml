(* Linear integer arithmetic decision procedure: branch-and-bound over the
   rational simplex, plus disequality splitting.

   Conjunctions of `Linear.atom`s are decided here. Integrality is
   enforced by branching  x ≤ ⌊v⌋ ∨ x ≥ ⌈v⌉  on a fractional variable of
   the relaxation; disequalities split as  lin ≤ −1 ∨ lin ≥ 1. A depth cap
   returns [Unknown] rather than diverging on adversarial unbounded
   instances (never reached by DNS-V's bounded-list encodings).

   [check_cert] additionally returns a *proof* for every Unsat answer: a
   branch-and-bound tree whose leaves are Farkas combinations of input
   atoms, branching bounds, and disequality-split tightenings. Facts are
   index-based (input atoms by position in the — already canonicalized —
   input list) so the caller can re-anchor them to whatever term-level
   provenance it holds; the proof is therefore reusable across cache hits
   on the same canonical key. *)

module String_map = Map.Make (String)

type model = int String_map.t
type result = Sat of model | Unsat | Unknown

(* A fact usable in a Farkas step:
   - [F_atom i]: the i-th input atom (0-based, as given to [check_cert]);
   - [F_le (x, k)] / [F_ge (x, k)]: a branching bound on variable x;
   - [F_neq_le i] / [F_neq_ge i]: the two tightenings  lin ≤ −1  and
     −lin ≤ −1  of disequality input atom i (lin ≠ 0). *)
type fact =
  | F_atom of int
  | F_le of string * int
  | F_ge of string * int
  | F_neq_le of int
  | F_neq_ge of int

(* Farkas multipliers: nonnegative on ≤-facts, free on =-facts. The sum
   of multiplier·(≤0-form) must cancel every variable and leave a
   strictly positive constant. *)
type proof =
  | P_farkas of (fact * Q.t) list
  | P_branch of string * int * proof * proof (* x ≤ k  ∨  x ≥ k+1 *)
  | P_split of int * proof * proof (* neq atom i: lin ≤ −1 ∨ −lin ≤ −1 *)

(* A proof is [None] only if certificate construction failed while the
   answer itself is still sound — never expected, but the caller treats
   a missing proof as a validation failure, not as license to trust. *)
type cert_result = Csat of model | Cunsat of proof option | Cunknown

let max_depth = 10_000

(* A constraint row: Σ ci·xi ≤ b or Σ ci·xi = b with named variables. *)
type row = { coeffs : (int * string) list; rhs : int; is_eq : bool }

let pp_model fmt m =
  String_map.iter (fun v n -> Format.fprintf fmt "%s=%d " v n) m

exception Trivially_unsat of proof

let combine2 f a b =
  match (a, b) with Some a, Some b -> Some (f a b) | _ -> None

let check_cert (atoms : Linear.atom list) : cert_result =
  (* Partition atoms; constant atoms decide immediately. *)
  let rows = ref [] and neqs = ref [] in
  let add_row i is_eq lin =
    match Linear.const_value lin with
    | Some c ->
        if (is_eq && c <> 0) || ((not is_eq) && c > 0) then
          (* The multiplier must leave a positive constant: an equality
             row can be cited with either sign, so pick sign c. *)
          let lam = if is_eq && c < 0 then Q.minus_one else Q.one in
          raise (Trivially_unsat (P_farkas [ (F_atom i, lam) ]))
    | None ->
        let coeffs = Linear.fold_coeffs (fun acc v c -> (c, v) :: acc) [] lin in
        rows := ({ coeffs; rhs = -Linear.coeff_free lin; is_eq }, F_atom i) :: !rows
  in
  try
    List.iteri
      (fun i atom ->
        match atom with
        | Linear.Le_zero lin -> add_row i false lin
        | Linear.Eq_zero lin -> add_row i true lin
        | Linear.Neq_zero lin -> (
            match Linear.const_value lin with
            | Some 0 ->
                (* lin is the constant 0, so both tightenings are the
                   contradictions 1 ≤ 0 and 1 ≤ 0. *)
                raise
                  (Trivially_unsat
                     (P_split
                        ( i,
                          P_farkas [ (F_neq_le i, Q.one) ],
                          P_farkas [ (F_neq_ge i, Q.one) ] )))
            | Some _ -> ()
            | None -> neqs := (lin, i) :: !neqs))
      atoms;
    let rows = !rows and neqs = !neqs in
    (* Variable index assignment. *)
    let index = Hashtbl.create 16 in
    let names = ref [] in
    let intern v =
      match Hashtbl.find_opt index v with
      | Some i -> i
      | None ->
          let i = Hashtbl.length index in
          Hashtbl.add index v i;
          names := v :: !names;
          i
    in
    List.iter
      (fun (r, _) -> List.iter (fun (_, v) -> ignore (intern v)) r.coeffs)
      rows;
    List.iter
      (fun (lin, _) -> List.iter (fun v -> ignore (intern v)) (Linear.vars lin))
      neqs;
    let nvars = Hashtbl.length index in
    let names = Array.of_list (List.rev !names) in
    (* Branch state: per-variable integer bounds (with the fact that
       introduced each side) plus extra ≤-rows from disequality splits. *)
    let solve_relaxation var_bounds all_rows =
      let simplex_rows =
        List.map
          (fun (r, _) -> List.map (fun (c, v) -> (Q.of_int c, intern v)) r.coeffs)
          all_rows
      in
      let bound_of i =
        if i < nvars then var_bounds.(i)
        else
          let r, _ = List.nth all_rows (i - nvars) in
          let rhs = Q.of_int r.rhs in
          if r.is_eq then { Simplex.lower = Some rhs; upper = Some rhs }
          else { Simplex.lower = None; upper = Some rhs }
      in
      let s = Simplex.create ~nvars ~rows:simplex_rows ~bound_of in
      Simplex.check s
    in
    (* Farkas certificate from a simplex conflict. The violated basic
       satisfies  cvar = Σ crow  identically (tableau rows are linear
       consequences of the definitional rows), and every nonbasic in
       crow is pinned at the bound blocking movement, so combining the
       basic's violated bound with each nonbasic's blocking bound —
       weights |a_j| on inequality facts, signed a_j on equality rows —
       cancels all variables and leaves the (strictly positive) bound
       violation. *)
    let farkas_of_conflict bprov all_rows { Simplex.cvar; cbelow; crow } =
      let exception Fail in
      let steps = ref [] in
      let add fact lam = steps := (fact, lam) :: !steps in
      let use_bound v ~upper ~w =
        if v < nvars then (
          let lo_f, up_f = bprov.(v) in
          match if upper then up_f else lo_f with
          | Some f -> add f w
          | None -> raise Fail)
        else
          let r, f = List.nth all_rows (v - nvars) in
          if r.is_eq then
            (* Equality fact lin = 0: the upper side contributes +w·lin,
               the lower side −w·lin; record the signed multiplier. *)
            add f (if upper then w else Q.neg w)
          else if upper then add f w
          else (* a ≤-row has no lower bound to lean on *) raise Fail
      in
      try
        use_bound cvar ~upper:(not cbelow) ~w:Q.one;
        List.iter
          (fun (a, j) ->
            let sign = Q.sign a in
            if sign > 0 then use_bound j ~upper:cbelow ~w:a
            else if sign < 0 then use_bound j ~upper:(not cbelow) ~w:(Q.neg a))
          crow;
        Some (P_farkas !steps)
      with Fail -> None
    in
    (* Tighten one side of a bound, keeping the provenance of whichever
       side wins. Returns [Ok (bound, prov)] or, when the tightened side
       crosses the other, [Error cross_proof]: the two crossing facts sum
       to a positive constant. *)
    let tighten (b : Simplex.bound) (plo, pup) ~upper k fact =
      let kq = Q.of_int k in
      if upper then
        let u', pu' =
          match b.Simplex.upper with
          | Some u when Q.le u kq -> (u, pup)
          | _ -> (kq, Some fact)
        in
        match b.Simplex.lower with
        | Some l when Q.gt l u' ->
            Error
              (combine2
                 (fun lf uf -> P_farkas [ (lf, Q.one); (uf, Q.one) ])
                 plo pu')
        | _ -> Ok ({ b with Simplex.upper = Some u' }, (plo, pu'))
      else
        let l', pl' =
          match b.Simplex.lower with
          | Some l when Q.ge l kq -> (l, plo)
          | _ -> (kq, Some fact)
        in
        match b.Simplex.upper with
        | Some u when Q.gt l' u ->
            Error
              (combine2
                 (fun lf uf -> P_farkas [ (lf, Q.one); (uf, Q.one) ])
                 pl' pup)
        | _ -> Ok ({ b with Simplex.lower = Some l' }, (pl', pup))
    in
    let rec branch var_bounds bprov extra_rows pending_neqs depth : cert_result
        =
      if depth > max_depth then Cunknown
      else
        let all_rows = extra_rows @ rows in
        match solve_relaxation var_bounds all_rows with
        | Simplex.Infeasible c ->
            Cunsat (farkas_of_conflict bprov all_rows c)
        | Simplex.Feasible beta -> (
            (* Find a fractional original variable. *)
            let frac = ref None in
            for i = 0 to nvars - 1 do
              if !frac = None && not (Q.is_integer beta.(i)) then frac := Some i
            done;
            match !frac with
            | Some i -> (
                let v = beta.(i) in
                let k = Q.floor v in
                (* v is fractional, so ⌈v⌉ = k+1. *)
                let name = names.(i) in
                let f_le = F_le (name, k) and f_ge = F_ge (name, k + 1) in
                let node l r = P_branch (name, k, l, r) in
                let left = Array.copy var_bounds in
                let lprov = Array.copy bprov in
                let right = Array.copy var_bounds in
                let rprov = Array.copy bprov in
                match
                  ( tighten left.(i) lprov.(i) ~upper:true k f_le,
                    tighten right.(i) rprov.(i) ~upper:false (k + 1) f_ge )
                with
                | Error pl, Error pr -> Cunsat (combine2 node pl pr)
                | Ok (bl, pvl), Error pr -> (
                    left.(i) <- bl;
                    lprov.(i) <- pvl;
                    match branch left lprov extra_rows pending_neqs (depth + 1) with
                    | Cunsat pl -> Cunsat (combine2 node pl pr)
                    | (Csat _ | Cunknown) as r -> r)
                | Error pl, Ok (br, pvr) -> (
                    right.(i) <- br;
                    rprov.(i) <- pvr;
                    match
                      branch right rprov extra_rows pending_neqs (depth + 1)
                    with
                    | Cunsat pr -> Cunsat (combine2 node pl pr)
                    | (Csat _ | Cunknown) as r -> r)
                | Ok (bl, pvl), Ok (br, pvr) -> (
                    left.(i) <- bl;
                    lprov.(i) <- pvl;
                    right.(i) <- br;
                    rprov.(i) <- pvr;
                    match branch left lprov extra_rows pending_neqs (depth + 1) with
                    | Cunsat pl -> (
                        match
                          branch right rprov extra_rows pending_neqs (depth + 1)
                        with
                        | Cunsat pr -> Cunsat (combine2 node pl pr)
                        | (Csat _ | Cunknown) as r -> r)
                    | (Csat _ | Cunknown) as r -> r))
            | None -> (
                (* Integral; validate disequalities. *)
                let env v = Q.to_int_exn beta.(Hashtbl.find index v) in
                match
                  List.find_opt
                    (fun (lin, _) -> Linear.eval env lin = 0)
                    pending_neqs
                with
                | None ->
                    let m =
                      Array.to_seq (Array.sub beta 0 nvars)
                      |> Seq.mapi (fun i q -> (names.(i), Q.to_int_exn q))
                      |> String_map.of_seq
                    in
                    Csat m
                | Some ((lin, idx) as picked) -> (
                    (* lin ≠ 0 over ℤ: lin ≤ −1 ∨ −lin ≤ −1 *)
                    let remaining =
                      List.filter (fun p -> not (p == picked)) pending_neqs
                    in
                    let mk lin' =
                      let coeffs =
                        Linear.fold_coeffs (fun acc v c -> (c, v) :: acc) [] lin'
                      in
                      { coeffs; rhs = -Linear.coeff_free lin' - 1; is_eq = false }
                    in
                    let node l r = P_split (idx, l, r) in
                    match
                      branch var_bounds bprov
                        ((mk lin, F_neq_le idx) :: extra_rows)
                        remaining (depth + 1)
                    with
                    | Cunsat pl -> (
                        match
                          branch var_bounds bprov
                            ((mk (Linear.neg lin), F_neq_ge idx) :: extra_rows)
                            remaining (depth + 1)
                        with
                        | Cunsat pr -> Cunsat (combine2 node pl pr)
                        | (Csat _ | Cunknown) as r -> r)
                    | (Csat _ | Cunknown) as r -> r)))
    in
    let init_bounds = Array.make nvars Simplex.no_bound in
    let init_prov = Array.make nvars (None, None) in
    branch init_bounds init_prov [] neqs 0
  with Trivially_unsat p -> Cunsat (Some p)

let check (atoms : Linear.atom list) : result =
  match check_cert atoms with
  | Csat m -> Sat m
  | Cunsat _ -> Unsat
  | Cunknown -> Unknown

(* ------------------------------------------------------------------ *)
(* Proof introspection                                                *)
(* ------------------------------------------------------------------ *)

(* Input atom indices a proof actually cites — the theory conflict
   *core*. The DPLL(T) loop blocks just these atoms instead of the full
   assignment, which is what turns one theory conflict into a clause
   that prunes every assignment sharing the core. *)
let proof_atoms (p : proof) : int list =
  let rec go acc = function
    | P_farkas steps ->
        List.fold_left
          (fun acc (f, _) ->
            match f with
            | F_atom i | F_neq_le i | F_neq_ge i -> i :: acc
            | F_le _ | F_ge _ -> acc)
          acc steps
    | P_branch (_, _, l, r) -> go (go acc l) r
    | P_split (i, l, r) -> go (go (i :: acc) l) r
  in
  List.sort_uniq compare (go [] p)

(* ------------------------------------------------------------------ *)
(* Theory-aware presolve: interval propagation + gcd tightening        *)
(* ------------------------------------------------------------------ *)

module Int_set = Set.Make (Int)

type bounds = (int option * int option) String_map.t

type presolve_result = Pfeasible of bounds | Punsat of proof option

(* floor(a/b) and ceil(a/b) for b > 0 *)
let fdiv a b = if a >= 0 then a / b else -((-a + b - 1) / b)
let cdiv a b = fdiv (a + b - 1) b

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

type pbound = {
  mutable lo : int option;
  mutable lo_sup : Int_set.t; (* input atoms justifying lo *)
  mutable hi : int option;
  mutable hi_sup : Int_set.t;
}

exception Infeasible_core of Int_set.t

(* Re-anchor a proof over the conflict core back to the original atom
   indices: facts in the core proof are positions in the core list. *)
let remap_proof (orig : int array) (p : proof) : proof =
  let rf = function
    | F_atom i -> F_atom orig.(i)
    | F_neq_le i -> F_neq_le orig.(i)
    | F_neq_ge i -> F_neq_ge orig.(i)
    | (F_le _ | F_ge _) as f -> f
  in
  let rec go = function
    | P_farkas steps -> P_farkas (List.map (fun (f, l) -> (rf f, l)) steps)
    | P_branch (x, k, l, r) -> P_branch (x, k, go l, go r)
    | P_split (i, l, r) -> P_split (orig.(i), go l, go r)
  in
  go p

(* Certify a contradiction found by propagation: run the full decision
   procedure on just the support core (tiny by construction) and remap
   its proof to original indices. Certificates therefore stay in the
   existing Farkas/split-tree forms — presolve introduces no new proof
   constructor for `lib/cert` to learn. *)
let certify_core (atoms : Linear.atom array) (core : Int_set.t) :
    presolve_result option =
  let orig = Array.of_list (Int_set.elements core) in
  let sub = Array.to_list (Array.map (fun i -> atoms.(i)) orig) in
  match check_cert sub with
  | Cunsat (Some p) -> Some (Punsat (Some (remap_proof orig p)))
  | Cunsat None -> Some (Punsat None)
  | Csat _ | Cunknown -> None

(* Interval presolve over the conjunction. Propagates integer bounds
   through every (in)equality — with gcd coefficient tightening applied
   to each row first — until fixpoint (bounded passes). On a detected
   contradiction the support core is re-checked and certified by
   [check_cert]; a core the checker cannot confirm falls back to
   feasible, so presolve can prune but never decide on its own
   authority. *)
let presolve (atoms : Linear.atom list) : presolve_result =
  let atoms_arr = Array.of_list atoms in
  let tbl : (string, pbound) Hashtbl.t = Hashtbl.create 16 in
  let bnd x =
    match Hashtbl.find_opt tbl x with
    | Some b -> b
    | None ->
        let b =
          { lo = None; lo_sup = Int_set.empty; hi = None; hi_sup = Int_set.empty }
        in
        Hashtbl.add tbl x b;
        b
  in
  let changed = ref false in
  let set_hi x v sup =
    let b = bnd x in
    match b.hi with
    | Some h when h <= v -> ()
    | _ -> (
        b.hi <- Some v;
        b.hi_sup <- sup;
        changed := true;
        match b.lo with
        | Some l when l > v ->
            raise (Infeasible_core (Int_set.union b.lo_sup sup))
        | _ -> ())
  in
  let set_lo x v sup =
    let b = bnd x in
    match b.lo with
    | Some l when l >= v -> ()
    | _ -> (
        b.lo <- Some v;
        b.lo_sup <- sup;
        changed := true;
        match b.hi with
        | Some h when h < v ->
            raise (Infeasible_core (Int_set.union b.hi_sup sup))
        | _ -> ())
  in
  try
    (* Rows in  Σ ci·xi ≤ b  form; an equality contributes both sides.
       Each row remembers the input atom it came from. *)
    let rows = ref [] in
    Array.iteri
      (fun i atom ->
        let push lin =
          match Linear.const_value lin with
          | Some c -> if c > 0 then raise (Infeasible_core (Int_set.singleton i))
          | None ->
              let coeffs =
                Linear.fold_coeffs (fun acc v c -> (c, v) :: acc) [] lin
              in
              let b = -Linear.coeff_free lin in
              (* gcd coefficient tightening: Σ g·ci'·xi ≤ b entails
                 Σ ci'·xi ≤ ⌊b/g⌋ over the integers. *)
              let g = List.fold_left (fun g (c, _) -> gcd g c) 0 coeffs in
              let coeffs, b =
                if g > 1 then (List.map (fun (c, v) -> (c / g, v)) coeffs, fdiv b g)
                else (coeffs, b)
              in
              rows := (coeffs, b, i) :: !rows
        in
        match atom with
        | Linear.Le_zero lin -> push lin
        | Linear.Eq_zero lin -> (
            (* Divisibility check before splitting into two ≤-rows:
               g | ci for all i but g ∤ c0 refutes the equality alone. *)
            match Linear.const_value lin with
            | Some c -> if c <> 0 then raise (Infeasible_core (Int_set.singleton i))
            | None ->
                let g =
                  Linear.fold_coeffs (fun g _ c -> gcd g c) 0 lin
                in
                if g > 1 && Linear.coeff_free lin mod g <> 0 then
                  raise (Infeasible_core (Int_set.singleton i));
                push lin;
                push (Linear.neg lin))
        | Linear.Neq_zero lin -> (
            match Linear.const_value lin with
            | Some 0 -> raise (Infeasible_core (Int_set.singleton i))
            | _ -> ()))
      atoms_arr;
    let rows = !rows in
    (* Bounded fixpoint: each pass strengthens monotonically; the cap
       keeps adversarial ping-pong chains from stalling the solver —
       presolve is allowed to under-approximate. *)
    let passes = ref 0 in
    changed := true;
    while !changed && !passes < 20 do
      changed := false;
      incr passes;
      List.iter
        (fun (coeffs, b, i) ->
          (* For each variable: cj·xj ≤ b − Σ_{k≠j} min(ck·xk). *)
          List.iter
            (fun (cj, xj) ->
              let rest = ref (Some 0) and sup = ref (Int_set.singleton i) in
              List.iter
                (fun (ck, xk) ->
                  if xk <> xj then
                    match !rest with
                    | None -> ()
                    | Some acc -> (
                        let bk = bnd xk in
                        let contrib =
                          if ck > 0 then
                            Option.map (fun l -> (l, bk.lo_sup)) bk.lo
                          else Option.map (fun h -> (h, bk.hi_sup)) bk.hi
                        in
                        match contrib with
                        | None -> rest := None
                        | Some (v, s) ->
                            rest := Some (acc + (ck * v));
                            sup := Int_set.union !sup s))
                coeffs;
              match !rest with
              | None -> ()
              | Some rest_min ->
                  let r = b - rest_min in
                  if cj > 0 then set_hi xj (fdiv r cj) !sup
                  else set_lo xj (cdiv (-r) (-cj)) !sup)
            coeffs)
        rows
    done;
    let out =
      Hashtbl.fold
        (fun x b acc -> String_map.add x (b.lo, b.hi) acc)
        tbl String_map.empty
    in
    Pfeasible out
  with Infeasible_core core -> (
    match certify_core atoms_arr core with
    | Some r -> r
    | None ->
        (* The core checker would not confirm the contradiction —
           presolve never decides on its own authority. *)
        Pfeasible String_map.empty)

(* Three-valued evaluation of an atom under interval bounds: entailed
   true / entailed false when every integer point in the box agrees,
   [None] otherwise. Used to seed unit literals on the SAT trail. *)
let entailed (bounds : bounds) (atom : Linear.atom) : bool option =
  let range lin =
    let lo = ref (Some (Linear.coeff_free lin))
    and hi = ref (Some (Linear.coeff_free lin)) in
    Linear.fold_coeffs
      (fun () x c ->
        let blo, bhi =
          match String_map.find_opt x bounds with
          | Some (l, h) -> (l, h)
          | None -> (None, None)
        in
        let mn, mx = if c > 0 then (blo, bhi) else (bhi, blo) in
        lo := combine2 (fun a v -> a + (c * v)) !lo mn;
        hi := combine2 (fun a v -> a + (c * v)) !hi mx)
      () lin;
    (!lo, !hi)
  in
  match atom with
  | Linear.Le_zero lin -> (
      match range lin with
      | _, Some h when h <= 0 -> Some true
      | Some l, _ when l > 0 -> Some false
      | _ -> None)
  | Linear.Eq_zero lin -> (
      match range lin with
      | Some 0, Some 0 -> Some true
      | Some l, _ when l > 0 -> Some false
      | _, Some h when h < 0 -> Some false
      | _ -> None)
  | Linear.Neq_zero lin -> (
      match range lin with
      | Some 0, Some 0 -> Some false
      | Some l, _ when l > 0 -> Some true
      | _, Some h when h < 0 -> Some true
      | _ -> None)
