(* Certificate data carried alongside every solver verdict.

   A certificate is pure data — no closures, no solver state — so it can
   be stored in memo tables, revalidated on every cache hit, and checked
   by a component that shares nothing with the decision procedures:

   - satisfiable answers are certified by the model itself (the checker
     evaluates every asserted term under it);
   - unsatisfiable answers are certified by a *split tree*: a semantic
     decision tree over boolean-sorted terms whose leaves close either
     propositionally ([Bool_leaf]: some asserted term constant-folds to
     false under the branch's assignments) or arithmetically ([Farkas]:
     a nonnegative linear combination of in-scope ≤-facts — plus freely
     signed =-facts — whose variables cancel and whose constant is
     strictly positive). Disequality reasoning enters through
     [Split_neq], which tightens an integer disequality lin ≠ 0 into
     the exhaustive case split lin ≤ −1 ∨ −lin ≤ −1.

   This module also hosts the validator registration hook. The solver
   consults the registered validator (installed by [Cert.install] from
   the solver-independent checker library) on every result it hands
   out, including results replayed from a cache or an incremental
   assertion stack. The hook lives here, below the solver, so the
   checker library never needs to depend on solver internals. *)

(* Rational Farkas multiplier, kept as plain integers so certificates
   contain no solver number types. *)
type coeff = { pnum : int; pden : int }

val coeff_of_ints : int -> int -> coeff
val pp_coeff : Format.formatter -> coeff -> unit

type step = { fact : Term.t; lam : coeff }

type tree =
  | Split of { atom : Term.t; if_true : tree; if_false : tree }
      (* case split on a boolean-sorted term *)
  | Split_neq of {
      neq : Term.t; (* an in-scope disequality literal *)
      le1 : Term.t; (* lin ≤ −1, asserted in [left] *)
      ge1 : Term.t; (* −lin ≤ −1, asserted in [right] *)
      left : tree;
      right : tree;
    }
  | Bool_leaf (* some asserted term folds to false under the branch *)
  | Farkas of step list (* positive combination of in-scope facts *)

type t = Model_witness of Model.t | Unsat_witness of tree

(* Size of a tree in nodes: overhead accounting for the bench. *)
val tree_size : tree -> int

type verdict = Valid | Invalid of string

type validator = {
  validate_sat : Term.t list -> Model.t -> verdict;
  validate_unsat : Term.t list -> tree -> verdict;
}

(* Registration is atomic so installing on the main domain is observed
   by parallel pipeline workers. [validator] returns the currently
   installed checker, if any; with none installed the solver skips
   validation (certificates are still produced). *)
val set_validator : validator -> unit
val validator : unit -> validator option
