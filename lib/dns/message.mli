(* DNS query and response messages, restricted to what authoritative
   resolution computes (§2): rcode, AA flag, and the three record
   sections. *)

type query = { qname : Name.t; qtype : Rr.rtype; }
val query : Name.t -> Rr.rtype -> query
val pp_query : Format.formatter -> query -> unit
(* All RFC 1035 §4.1.1 response codes 0-5. FormErr and NotImp are
   produced by the wire path (lib/wire, `dnsv serve`), never by the
   resolution engine itself. *)
type rcode = NoError | FormErr | ServFail | NXDomain | NotImp | Refused

(* Every rcode, in code order. *)
val all_rcodes : rcode list

(* [rcode_code] and [rcode_of_code] are exact inverses:
   [rcode_of_code (rcode_code rc) = Some rc] for every [rc], and
   [rcode_of_code c = Some rc] implies [rcode_code rc = c]. *)
val rcode_code : rcode -> int
val rcode_of_code : int -> rcode option
val rcode_to_string : rcode -> string
val pp_rcode : Format.formatter -> rcode -> unit
type response = {
  rcode : rcode;
  aa : bool;
  answer : Rr.t list;
  authority : Rr.t list;
  additional : Rr.t list;
}
val response :
  ?aa:bool ->
  ?answer:Rr.t list ->
  ?authority:Rr.t list -> ?additional:Rr.t list -> rcode -> response
val equal_section : Rr.t list -> Rr.t list -> bool
val equal_response : response -> response -> bool
val pp_section : Format.formatter -> string * Rr.t list -> unit
val pp_response : Format.formatter -> response -> unit
val response_to_string : response -> string
