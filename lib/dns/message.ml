(* DNS query and response messages, restricted to what authoritative
   resolution computes (§2): rcode, AA flag, and the three record
   sections. *)

type query = { qname : Name.t; qtype : Rr.rtype }

let query qname qtype = { qname; qtype }

let pp_query fmt q =
  Format.fprintf fmt "%a %a?" Name.pp q.qname Rr.pp_rtype q.qtype

(* All RFC 1035 §4.1.1 response codes 0-5. The resolution engine only
   ever *computes* NoError/ServFail/NXDomain/Refused; FormErr and
   NotImp are produced by the wire path (lib/wire, `dnsv serve`) for
   malformed and unimplemented queries that never reach the engine. *)
type rcode = NoError | FormErr | ServFail | NXDomain | NotImp | Refused

let all_rcodes = [ NoError; FormErr; ServFail; NXDomain; NotImp; Refused ]

let rcode_code = function
  | NoError -> 0
  | FormErr -> 1
  | ServFail -> 2
  | NXDomain -> 3
  | NotImp -> 4
  | Refused -> 5

(* Exact inverse of [rcode_code]: total on 0-5, [None] elsewhere. *)
let rcode_of_code = function
  | 0 -> Some NoError
  | 1 -> Some FormErr
  | 2 -> Some ServFail
  | 3 -> Some NXDomain
  | 4 -> Some NotImp
  | 5 -> Some Refused
  | _ -> None

let rcode_to_string = function
  | NoError -> "NOERROR"
  | FormErr -> "FORMERR"
  | ServFail -> "SERVFAIL"
  | NXDomain -> "NXDOMAIN"
  | NotImp -> "NOTIMP"
  | Refused -> "REFUSED"

let pp_rcode fmt rc = Format.pp_print_string fmt (rcode_to_string rc)

type response = {
  rcode : rcode;
  aa : bool;
  answer : Rr.t list;
  authority : Rr.t list;
  additional : Rr.t list;
}

let response ?(aa = false) ?(answer = []) ?(authority = []) ?(additional = [])
    rcode =
  { rcode; aa; answer; authority; additional }

(* Section equality is order-insensitive: record order within a DNS
   section carries no meaning, and the engine's traversal order may
   legitimately differ from the specification's filtering order. *)
let equal_section (a : Rr.t list) (b : Rr.t list) =
  let subset xs ys =
    List.for_all
      (fun x ->
        let count l = List.length (List.filter (Rr.equal x) l) in
        count xs <= count ys)
      xs
  in
  List.length a = List.length b && subset a b && subset b a

let equal_response (a : response) (b : response) =
  a.rcode = b.rcode && a.aa = b.aa
  && equal_section a.answer b.answer
  && equal_section a.authority b.authority
  && equal_section a.additional b.additional

let pp_section fmt (title, rs) =
  if rs <> [] then begin
    Format.fprintf fmt ";; %s@." title;
    List.iter (fun r -> Format.fprintf fmt "%a@." Rr.pp r) rs
  end

let pp_response fmt (r : response) =
  Format.fprintf fmt ";; status: %a, aa: %b@." pp_rcode r.rcode r.aa;
  pp_section fmt ("ANSWER", r.answer);
  pp_section fmt ("AUTHORITY", r.authority);
  pp_section fmt ("ADDITIONAL", r.additional)

let response_to_string r = Format.asprintf "%a" pp_response r
