(* Crash-safe write-ahead journal for batch verification runs.

   Frame layout (all integers big-endian):

     +--------+--------+--------+-----------------+
     | "DJ01" | length | crc32  | payload (length)|
     | 4 B    | 4 B    | 4 B    |                 |
     +--------+--------+--------+-----------------+

   The payload's first byte tags the record kind: 'H' header, 'R'
   regular item record, 'F' finalization. A record is *intact* iff its
   magic matches, its declared length fits in the file, and the CRC of
   the payload matches; recovery stops at the first violation and
   reports everything before it. Because appends flush before
   returning, the only damage a kill can cause is one torn frame at the
   tail — exactly what recovery truncates. *)

type t = { path : string; oc : out_channel }

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320)               *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_int (s : string) : int =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let crc32 (s : string) : int32 = Int32.of_int (crc32_int s)

(* ------------------------------------------------------------------ *)
(* Framing                                                            *)
(* ------------------------------------------------------------------ *)

let magic = "DJ01"

let be32 (n : int) : string =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.to_string b

let read_be32 (s : string) (off : int) : int =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let frame (payload : string) : string =
  magic ^ be32 (String.length payload) ^ be32 (crc32_int payload) ^ payload

let write_record (j : t) (payload : string) : unit =
  let f = frame payload in
  (* The torn-write fault: half the frame reaches the disk, then the
     process "dies" (the injected exception plays the kill; the CI
     harness uses a real SIGKILL). Flush first so the torn bytes are
     actually visible to the recovering reader. *)
  if Faultinject.fire Faultinject.Journal_torn then begin
    let half = max 1 (String.length f / 2) in
    output_string j.oc (String.sub f 0 half);
    flush j.oc;
    Faultinject.injected Faultinject.Journal_torn
      "journal append torn after %d of %d bytes" half (String.length f)
  end;
  output_string j.oc f;
  flush j.oc

(* ------------------------------------------------------------------ *)
(* API                                                                *)
(* ------------------------------------------------------------------ *)

let create ~path ~header : t =
  let oc = open_out_bin path in
  let j = { path; oc } in
  write_record j ("H" ^ header);
  j

let c_appends = Trace.Metrics.counter "journal.appends"

let append (j : t) (record : string) : unit =
  Trace.Metrics.incr c_appends;
  Trace.event "journal.append"
    ~attrs:[ ("bytes", string_of_int (String.length record)) ];
  write_record j ("R" ^ record)

let finalize (j : t) (record : string) : unit = write_record j ("F" ^ record)
let close (j : t) : unit = close_out j.oc

type recovery = {
  header : string option;
  records : string list;
  final : string option;
  dropped_bytes : int;
}

let empty_recovery =
  { header = None; records = []; final = None; dropped_bytes = 0 }

(* Scan the raw bytes: returns the recovery and the byte offset just
   past the last intact frame. *)
let scan (data : string) : recovery * int =
  let len = String.length data in
  let header = ref None and records = ref [] and final = ref None in
  let pos = ref 0 in
  let ok = ref true in
  while !ok do
    let p = !pos in
    if p + 12 > len then ok := false
    else if String.sub data p 4 <> magic then ok := false
    else
      let plen = read_be32 data (p + 4) in
      let crc = read_be32 data (p + 8) in
      if plen < 1 || p + 12 + plen > len then ok := false
      else
        let payload = String.sub data (p + 12) plen in
        if crc32_int payload <> crc then ok := false
        else begin
          let body = String.sub payload 1 (plen - 1) in
          (match payload.[0] with
          | 'H' -> if !header = None then header := Some body
          | 'R' -> records := body :: !records
          | 'F' -> final := Some body
          | _ -> ());
          pos := p + 12 + plen
        end
  done;
  ( {
      header = !header;
      records = List.rev !records;
      final = !final;
      dropped_bytes = len - !pos;
    },
    !pos )

let read_file (path : string) : string option =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

let recover ~path : recovery =
  match read_file path with
  | None -> empty_recovery
  | Some data -> fst (scan data)

let open_resume ~path ~header : (t * recovery, string) result =
  match read_file path with
  | None -> Ok (create ~path ~header, empty_recovery)
  | Some data -> (
      let rec_, good = scan data in
      match rec_.header with
      | None -> Error "journal has no intact header record"
      | Some h when h <> header ->
          Error
            (Printf.sprintf
               "journal header mismatch: journal is for %S, this run is %S" h
               header)
      | Some _ ->
          (* Truncate the torn tail, then reopen positioned at the end
             of the intact prefix. *)
          if rec_.dropped_bytes > 0 then Unix.truncate path good;
          Trace.event "journal.resume"
            ~attrs:
              [
                ("records", string_of_int (List.length rec_.records));
                ("dropped_bytes", string_of_int rec_.dropped_bytes);
              ];
          let oc =
            open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
          in
          Ok ({ path; oc }, rec_))

(* [path] is carried for diagnostics and potential re-open; keep the
   field alive even though nothing reads it yet. *)
let _ = fun (j : t) -> j.path
