(* Crash-safe write-ahead journal for batch verification runs.

   An append-only file of CRC-framed records: a header record naming
   the workload (engine version, zone recipe, budget shape), then one
   record per completed item, then optionally a finalization record.
   Appends are flushed before [append] returns, so a run killed at any
   instant loses at most the record being written; [recover] and
   [open_resume] detect a torn tail (short frame, bad magic, CRC
   mismatch) and truncate it away. *)

type t

(* CRC-32 (IEEE 802.3, reflected) of a byte string — exposed for tests
   and for callers that want to fingerprint payloads the same way. *)
val crc32 : string -> int32

(* Create a fresh journal at [path] (truncating any existing file) and
   write the header record. *)
val create : path:string -> header:string -> t

(* Append one record and flush it to the OS. Arbitrary bytes, any
   length. Consults the [Faultinject.Journal_torn] site: when armed and
   firing, a partial frame is written and flushed, then the injected
   kill is raised — simulating a crash mid-append. *)
val append : t -> string -> unit

(* Append the finalization record: the run completed and the journal is
   a full transcript, not a checkpoint. *)
val finalize : t -> string -> unit

val close : t -> unit

type recovery = {
  header : string option; (* None: no intact header record *)
  records : string list; (* intact item records, in append order *)
  final : string option; (* the finalization record, if the run completed *)
  dropped_bytes : int; (* torn tail bytes ignored (and truncated) *)
}

(* Read-only scan of [path]: salvage every intact record, stop at the
   first torn or corrupt frame. Does not modify the file. *)
val recover : path:string -> recovery

(* Reopen [path] for appending: salvage intact records, truncate any
   torn tail, verify the header record matches [header] exactly.
   Returns the journal handle plus the recovery. [Error] if the file
   has no intact header or the header does not match (a journal from a
   different workload must not be resumed into). If the file does not
   exist, behaves like [create] with an empty recovery. *)
val open_resume : path:string -> header:string -> (t * recovery, string) result
