(* Full-path symbolic execution over Minir (the verifier's core, §5.2).

   Every feasible control path is explored; branch feasibility is decided
   by the SMT solver against the accumulated path condition, so panics
   reported here are reachable modulo solver completeness. Calls are
   inlined by default; an *intercept* table redirects chosen callees to
   manual layer specifications or automatically generated summaries —
   the layered verification hook (§4.3). *)

module Term = Smt.Term
module Solver = Smt.Solver
module Instr = Minir.Instr
module Ty = Minir.Ty
module Value = Minir.Value
module Typing = Minir.Typing

type path = { pc : Term.t list; mem : Sval.memory }
type outcome = Returned of Sval.sval option | Panicked of string
type result = (path * outcome) list

type ctx = {
  prog : Instr.program;
  mutable intercepts : (string * intercept) list;
  mutable steps : int;
  max_steps : int;
  budget : Budget.t; (* fuel, path cap, deadline; shared with the solver *)
  mutable forks : int;
  mutable solver_calls : int;
  mutable unknowns : int; (* solver Unknowns treated as feasible *)
  incr : Solver.Incremental.t;
      (* assertion stack mirroring the current path condition: branch
         feasibility extends the parent path's analyzed solver state by
         one literal instead of re-translating the whole conjunction *)
  analysis : Analysis.policy;
      (* whether branch queries consult the static analysis first *)
  env : Analysis.env option;
      (* harness facts (roots/entry args/field invariants) forwarded to
         [Analysis.summarize] — None analyzes for arbitrary entries.
         Sound ONLY for runs entering one of its [env_roots]: the
         harness vouches for the entry facts and the heap invariants
         of those entries alone. A run entering any other function
         falls back to the env-free analysis, unless the caller of
         [run] supplies its own vouched-for env (the summarizer's
         canonicalized window re-runs do). *)
  mutable active_env : Analysis.env option;
      (* the env of the innermost live [run]; selects the fact tables
         the branch oracle consults *)
  mutable facts : Analysis.summary option; (* computed on first branch *)
  mutable fn_facts : (Instr.func * Analysis.func_facts option) option;
      (* one-entry cache keyed by physical function identity: branch
         lookups below are per-branch-execution, so the per-function
         name hash must not be paid on every conditional *)
  br_cache : (Instr.block * Analysis.branch_info option) option array;
  mutable br_cache_next : int;
      (* tiny round-robin branch-info cache (physical identity): the
         executor spends most branch executions cycling through the
         few conditionals of the current loop, and even the bounded
         structural hash of a block is too expensive to pay per
         iteration *)
  mutable static_discharged : int; (* branches pruned without the solver *)
  mutable panic_checks : int; (* symbolic branches guarding a Panic block *)
  mutable panic_discharged : int; (* ... of which statically pruned *)
  mutable crosscheck_mismatches : int; (* Distrust: solver disagreed *)
  mutable ip_discharged : int;
      (* ... of [static_discharged], prunes only the interprocedural
         layer (summaries / env) could justify *)
  mutable ip_crosschecked : int; (* Distrust: interprocedural claims checked *)
  mutable ip_crosscheck_mismatches : int; (* ... of which refuted *)
}

and intercept = ctx -> path -> Sval.sval list -> result

exception Budget_exceeded of string

let default_max_steps = 5_000_000

let m_static_discharged = Trace.Metrics.counter "analysis.static_discharged"
let m_panic_checks = Trace.Metrics.counter "analysis.panic_checks"
let m_panic_discharged = Trace.Metrics.counter "analysis.panic_discharged"
let m_crosscheck_pass = Trace.Metrics.counter "analysis.crosscheck_pass"
let m_crosscheck_mismatch = Trace.Metrics.counter "analysis.crosscheck_mismatch"
let m_ip_discharged = Trace.Metrics.counter "analysis.ip_discharged"
let m_ip_crosscheck = Trace.Metrics.counter "analysis.ip_crosscheck"

let m_ip_crosscheck_mismatch =
  Trace.Metrics.counter "analysis.ip_crosscheck_mismatch"

let create ?(max_steps = default_max_steps) ?budget ?(intercepts = [])
    ?(analysis = Analysis.Off) ?env prog =
  {
    prog;
    intercepts;
    steps = 0;
    max_steps;
    budget = (match budget with Some b -> b | None -> Budget.unlimited ());
    forks = 0;
    solver_calls = 0;
    unknowns = 0;
    incr = Solver.Incremental.create ();
    analysis;
    env;
    active_env = env;
    facts = None;
    fn_facts = None;
    br_cache = Array.make 8 None;
    br_cache_next = 0;
    static_discharged = 0;
    panic_checks = 0;
    panic_discharged = 0;
    crosscheck_mismatches = 0;
    ip_discharged = 0;
    ip_crosschecked = 0;
    ip_crosscheck_mismatches = 0;
  }

let tick ctx =
  ctx.steps <- ctx.steps + 1;
  if ctx.steps > ctx.max_steps then
    raise (Budget_exceeded "symbolic execution step budget exceeded");
  if Faultinject.fire Faultinject.Exec_fuel then
    raise
      (Budget.Exhausted
         (Budget.Fuel_exhausted
            { limit = Option.value ~default:0 ctx.budget.Budget.max_fuel }));
  Budget.tick_fuel ctx.budget

(* Charge one freshly forked path against the budget's path cap. *)
let charge_fork ctx =
  ctx.forks <- ctx.forks + 1;
  Budget.tick_path ctx.budget

(* Feasibility of a path condition. Unknown counts as feasible (sound
   for bug finding: we may report a spurious path, never miss one). *)
let feasible ctx (pc : Term.t list) : bool =
  ctx.solver_calls <- ctx.solver_calls + 1;
  match Solver.Incremental.check_pc ctx.incr pc with
  | Solver.Sat _ -> true
  | Solver.Unsat -> false
  | Solver.Unknown ->
      ctx.unknowns <- ctx.unknowns + 1;
      true

(* Fork on a boolean term. When only one side is feasible the condition
   is entailed and the path condition is left unchanged (keeps pc small). *)
let fork_bool ctx (path : path) (t : Term.t) ~(then_ : path -> 'a list)
    ~(else_ : path -> 'a list) : 'a list =
  match t with
  | Term.True -> then_ path
  | Term.False -> else_ path
  | t -> (
      (* Allocate each extended pc once and reuse it for both the
         feasibility query and the forked path: the assertion stack is
         keyed on the cons cells' physical identity, so the descent into
         the branch finds its condition already analyzed. *)
      let pc_t = t :: path.pc and pc_n = Term.not_ t :: path.pc in
      let sat_t = feasible ctx pc_t in
      let sat_n = feasible ctx pc_n in
      match (sat_t, sat_n) with
      | true, false -> then_ path
      | false, true -> else_ path
      | true, true ->
          charge_fork ctx;
          then_ { path with pc = pc_t } @ else_ { path with pc = pc_n }
      | false, false -> [] (* path condition itself became unsat *))

(* Concretize an integer term against the candidates 0..n-1 (symbolic
   array indexing): fork one branch per feasible value. Out-of-range
   values are the caller's panic case. *)
let fork_index ctx (path : path) (t : Term.t) ~(cap : int)
    ~(k : path -> int -> 'a list) ~(out_of_range : path -> 'a list) : 'a list =
  match t with
  | Term.Int_const v ->
      if v >= 0 && v < cap then k path v else out_of_range path
  | t ->
      let results = ref [] in
      for v = cap - 1 downto 0 do
        let pc_v = Term.eq t (Term.int v) :: path.pc in
        if feasible ctx pc_v then begin
          charge_fork ctx;
          results := k { path with pc = pc_v } v @ !results
        end
      done;
      let pc_oob =
        Term.or_ [ Term.lt t (Term.int 0); Term.ge t (Term.int cap) ]
        :: path.pc
      in
      if feasible ctx pc_oob then
        results := !results @ out_of_range { path with pc = pc_oob };
      !results

(* ------------------------------------------------------------------ *)
(* Static-analysis assisted branching                                 *)
(* ------------------------------------------------------------------ *)

let facts_for ctx =
  match ctx.facts with
  | Some s -> s
  | None ->
      let s = Analysis.summarize ?env:ctx.active_env ctx.prog in
      ctx.facts <- Some s;
      s

(* Switch the branch oracle to the fact tables of [e], flushing the
   physical-identity caches (both analyses walk the same program value,
   so a stale entry would silently serve the other env's facts). *)
let set_active_env ctx (e : Analysis.env option) =
  if not (ctx.active_env == e) then begin
    ctx.active_env <- e;
    ctx.facts <- None;
    ctx.fn_facts <- None;
    Array.fill ctx.br_cache 0 (Array.length ctx.br_cache) None;
    ctx.br_cache_next <- 0
  end

(* The env whose soundness contract covers a run entering [fn]: the
   harness env if [fn] is one of its declared roots, the env-free
   analysis otherwise — the harness vouches for nothing about entries
   it never declared. *)
let env_for_entry ctx (fn : string) : Analysis.env option =
  match ctx.env with
  | Some e when List.mem fn e.Analysis.env_roots -> ctx.env
  | _ -> None

(* Per-function facts behind a one-entry physical-identity cache: the
   executor stays inside one function for long runs of branches, and
   the hash of the function name is too expensive to pay per
   conditional. *)
let facts_for_fn ctx (f : Instr.func) =
  match ctx.fn_facts with
  | Some (f', ff) when f' == f -> ff
  | _ ->
      let ff = Analysis.func_facts (facts_for ctx) f.Instr.fn_name in
      ctx.fn_facts <- Some (f, ff);
      ff

(* Branch info for [b], via the round-robin cache: blocks are unique
   across functions, so entries never need invalidation. *)
let branch_info_for ctx (f : Instr.func) (b : Instr.block) =
  let cache = ctx.br_cache in
  let n = Array.length cache in
  let rec scan i =
    if i >= n then begin
      let info =
        match facts_for_fn ctx f with
        | None -> None
        | Some ff -> Analysis.branch_info ff b
      in
      cache.(ctx.br_cache_next) <- Some (b, info);
      ctx.br_cache_next <- (ctx.br_cache_next + 1) mod n;
      info
    end
    else
      match cache.(i) with
      | Some (b', info) when b' == b -> info
      | _ -> scan (i + 1)
  in
  scan 0

(* Like [fork_bool], but first consults the abstract interpretation's
   edge facts for the conditional terminating [b] (matched by physical
   block identity — executor and analysis walk the same program value).
   The consultation happens *before* the condition term is even
   inspected: a statically-dead edge is skipped whether the term would
   have constant-folded or gone to the solver, and every panic-guard
   branch execution is counted against [panic_checks].

   Under [Trust], a branch with exactly one statically-dead edge takes
   the surviving edge without evaluating the condition, with the path
   condition left unchanged — byte-for-byte the same path [fork_bool]
   produces when it rules the same side out (constant fold or solver),
   so verdict fingerprints are preserved. Under [Distrust] the
   condition is resolved exactly as with the analysis off (constant
   folds stay free, symbolic terms make both solver calls) and each
   static claim is checked against that answer: a mismatch is counted
   and the executor's own answer wins (degrade, never flip). *)
let fork_branch ctx (path : path) (f : Instr.func) (b : Instr.block)
    (t : Term.t) ~(then_ : path -> 'a list) ~(else_ : path -> 'a list) :
    'a list =
  if ctx.analysis = Analysis.Off then fork_bool ctx path t ~then_ ~else_
  else begin
    let info = branch_info_for ctx f b in
    let guards_panic =
      match info with Some i -> i.Analysis.bi_guards_panic | None -> false
    in
    if guards_panic then begin
      ctx.panic_checks <- ctx.panic_checks + 1;
      Trace.Metrics.incr m_panic_checks
    end;
    let claim_then_dead, claim_else_dead =
      match info with
      | Some { Analysis.bi_fact = { Analysis.then_dead; else_dead }; _ } ->
          (then_dead, else_dead)
      | None -> (false, false)
    in
    let interproc =
      match info with Some i -> i.Analysis.bi_interproc | None -> false
    in
    let crosscheck ~sat_t ~sat_n =
      (* a dead claim is refuted by that side being (found) feasible *)
      if claim_then_dead || claim_else_dead then begin
        if interproc then begin
          ctx.ip_crosschecked <- ctx.ip_crosschecked + 1;
          Trace.Metrics.incr m_ip_crosscheck
        end;
        let ok =
          ((not claim_then_dead) || not sat_t)
          && ((not claim_else_dead) || not sat_n)
        in
        if ok then Trace.Metrics.incr m_crosscheck_pass
        else begin
          ctx.crosscheck_mismatches <- ctx.crosscheck_mismatches + 1;
          Trace.Metrics.incr m_crosscheck_mismatch;
          Trace.event ~det:false "analysis.crosscheck_mismatch"
            ~attrs:[ ("fn", f.Instr.fn_name) ];
          if interproc then begin
            ctx.ip_crosscheck_mismatches <- ctx.ip_crosscheck_mismatches + 1;
            Trace.Metrics.incr m_ip_crosscheck_mismatch
          end
        end
      end
    in
    match ctx.analysis with
    | Analysis.Trust when claim_then_dead <> claim_else_dead ->
        ctx.static_discharged <- ctx.static_discharged + 1;
        Trace.Metrics.incr m_static_discharged;
        if interproc then begin
          ctx.ip_discharged <- ctx.ip_discharged + 1;
          Trace.Metrics.incr m_ip_discharged
        end;
        if guards_panic then begin
          ctx.panic_discharged <- ctx.panic_discharged + 1;
          Trace.Metrics.incr m_panic_discharged;
          Trace.event ~det:true "analysis.panic_discharged"
            ~attrs:[ ("fn", f.Instr.fn_name) ]
        end;
        if claim_then_dead then else_ path else then_ path
    | Analysis.Trust | Analysis.Off ->
        (* no usable fact (or both edges claimed dead, which a sound
           analysis only produces on an unsat path — let the executor
           decide) *)
        fork_bool ctx path t ~then_ ~else_
    | Analysis.Distrust -> (
        match t with
        | Term.True | Term.False ->
            let truth = t = Term.True in
            crosscheck ~sat_t:truth ~sat_n:(not truth);
            if truth then then_ path else else_ path
        | t -> (
            let pc_t = t :: path.pc and pc_n = Term.not_ t :: path.pc in
            let sat_t = feasible ctx pc_t in
            let sat_n = feasible ctx pc_n in
            crosscheck ~sat_t ~sat_n;
            match (sat_t, sat_n) with
            | true, false -> then_ path
            | false, true -> else_ path
            | true, true ->
                charge_fork ctx;
                then_ { path with pc = pc_t } @ else_ { path with pc = pc_n }
            | false, false -> []))
  end

(* ------------------------------------------------------------------ *)
(* Operand and operator evaluation                                    *)
(* ------------------------------------------------------------------ *)

module Regs = Map.Make (String)

type regs = Sval.sval Regs.t

let operand_value (regs : regs) : Instr.operand -> Sval.sval = function
  | Instr.Const_int n -> Sval.SInt (Term.int n)
  | Instr.Const_bool b -> Sval.SBool (Term.of_bool b)
  | Instr.Null _ -> Sval.SNull
  | Instr.Reg r -> (
      match Regs.find_opt r regs with
      | Some v -> v
      | None -> Sval.error "read of unassigned register %%%s" r)

let as_int_term = function
  | Sval.SInt t -> t
  | v -> Sval.error "expected integer, got %a" Sval.pp_sval v

let as_bool_term = function
  | Sval.SBool t -> t
  | v -> Sval.error "expected boolean, got %a" Sval.pp_sval v

let eval_binop op a b : Sval.sval =
  match op with
  | Instr.Add -> Sval.SInt (Term.add [ as_int_term a; as_int_term b ])
  | Instr.Sub -> Sval.SInt (Term.sub (as_int_term a) (as_int_term b))
  | Instr.Mul -> (
      (* The logic is linear (§4.2): at least one operand must be
         constant. The engine only multiplies by constants. *)
      match (as_int_term a, as_int_term b) with
      | Term.Int_const k, t | t, Term.Int_const k -> Sval.SInt (Term.mul_const k t)
      | _ -> Sval.error "non-linear multiplication in symbolic execution")
  | Instr.Sdiv | Instr.Srem -> (
      match (as_int_term a, as_int_term b) with
      | Term.Int_const x, Term.Int_const y when y <> 0 ->
          Sval.SInt
            (Term.int (if op = Instr.Sdiv then x / y else x mod y))
      | _ -> Sval.error "symbolic division is not supported")
  | Instr.And_ -> Sval.SBool (Term.and_ [ as_bool_term a; as_bool_term b ])
  | Instr.Or_ -> Sval.SBool (Term.or_ [ as_bool_term a; as_bool_term b ])
  | Instr.Xor -> Sval.SBool (Term.not_ (Term.iff (as_bool_term a) (as_bool_term b)))

let eval_icmp op ty a b : Sval.sval =
  let bool_of t = Sval.SBool t in
  match ty with
  | Ty.Ptr _ | Ty.Opaque_ptr | Ty.Struct _ | Ty.Array _ -> (
      (* Pointer comparison: pointers are concrete, so this is decided
         immediately. *)
      let eq =
        match (a, b) with
        | Sval.SPtr p, Sval.SPtr q -> p = q
        | Sval.SNull, Sval.SNull -> true
        | Sval.SPtr _, Sval.SNull | Sval.SNull, Sval.SPtr _ -> false
        | _ -> Sval.error "pointer comparison on non-pointers"
      in
      match op with
      | Instr.Eq -> bool_of (Term.of_bool eq)
      | Instr.Ne -> bool_of (Term.of_bool (not eq))
      | _ -> Sval.error "ordered comparison on pointers")
  | Ty.I1 -> (
      let ta = as_bool_term a and tb = as_bool_term b in
      match op with
      | Instr.Eq -> bool_of (Term.iff ta tb)
      | Instr.Ne -> bool_of (Term.not_ (Term.iff ta tb))
      | _ -> Sval.error "ordered comparison on booleans")
  | Ty.I64 -> (
      let ta = as_int_term a and tb = as_int_term b in
      match op with
      | Instr.Eq -> bool_of (Term.eq ta tb)
      | Instr.Ne -> bool_of (Term.neq ta tb)
      | Instr.Slt -> bool_of (Term.lt ta tb)
      | Instr.Sle -> bool_of (Term.le ta tb)
      | Instr.Sgt -> bool_of (Term.gt ta tb)
      | Instr.Sge -> bool_of (Term.ge ta tb))

(* ------------------------------------------------------------------ *)
(* The executor                                                       *)
(* ------------------------------------------------------------------ *)

(* Resolve GEP indices against the pointee type, forking on symbolic
   array indices. Continues with the fully concrete pointer. *)
let rec resolve_gep ctx (path : path) (ty : Ty.t) (base : Value.ptr)
    (indices : Sval.sval list) (k : path -> Value.ptr -> 'a list) : 'a list =
  match indices with
  | [] -> k path base
  | idx :: rest -> (
      match ty with
      | Ty.Array (elt, cap) ->
          fork_index ctx path (as_int_term idx) ~cap
            ~k:(fun path i ->
              resolve_gep ctx path elt
                { base with Value.path = base.Value.path @ [ i ] }
                rest k)
            ~out_of_range:(fun _ ->
              Sval.error
                "gep index out of range (missing bounds check in frontend)")
      | Ty.Struct name -> (
          let def = Ty.find_struct ctx.prog.Instr.tenv name in
          match as_int_term idx with
          | Term.Int_const i ->
              let fty = (Ty.field_at def i).Ty.fty in
              resolve_gep ctx path fty
                { base with Value.path = base.Value.path @ [ i ] }
                rest k
          | _ -> Sval.error "symbolic struct field index")
      | _ -> Sval.error "gep into scalar type")

let rec exec_call (ctx : ctx) (path : path) (fn_name : string)
    (args : Sval.sval list) : result =
  match List.assoc_opt fn_name ctx.intercepts with
  | Some handler -> handler ctx path args
  | None ->
      let f = Instr.find_func ctx.prog fn_name in
      if List.length args <> List.length f.Instr.params then
        Sval.error "arity mismatch calling %s" fn_name;
      let regs =
        List.fold_left2
          (fun m (r, _) v -> Regs.add r v m)
          Regs.empty f.Instr.params args
      in
      exec_block ctx path f regs (Instr.find_block f f.Instr.entry)

and exec_block ctx path f regs (b : Instr.block) : result =
  exec_insns ctx path regs b.Instr.insns (fun path regs ->
      tick ctx;
      match b.Instr.term with
      | Instr.Br l -> exec_block ctx path f regs (Instr.find_block f l)
      | Instr.Cond_br (c, l1, l2) ->
          let t = as_bool_term (operand_value regs c) in
          fork_branch ctx path f b t
            ~then_:(fun path -> exec_block ctx path f regs (Instr.find_block f l1))
            ~else_:(fun path -> exec_block ctx path f regs (Instr.find_block f l2))
      | Instr.Ret None -> [ (path, Returned None) ]
      | Instr.Ret (Some o) -> [ (path, Returned (Some (operand_value regs o))) ]
      | Instr.Panic reason -> [ (path, Panicked reason) ]
      | Instr.Unreachable -> [ (path, Panicked "reached unreachable block") ])

(* Execute a straight-line instruction list, forking as needed, then
   continue with [k]. *)
and exec_insns ctx path regs (insns : Instr.instr list)
    (k : path -> regs -> result) : result =
  match insns with
  | [] -> k path regs
  | insn :: rest -> (
      tick ctx;
      let continue_ path regs = exec_insns ctx path regs rest k in
      match insn with
      | Instr.Assign (r, rv) ->
          eval_rvalue ctx path regs rv (fun path v ->
              continue_ path (Regs.add r v regs))
      | Instr.Store (_ty, vo, po) -> (
          let v = operand_value regs vo in
          match operand_value regs po with
          | Sval.SPtr p ->
              continue_
                { path with mem = Sval.store path.mem p (Sval.scell_of_sval v) }
                regs
          | Sval.SNull -> [ (path, Panicked "nil store") ]
          | _ -> Sval.error "store through non-pointer")
      | Instr.Opaque_store _ ->
          Sval.error "opaque store not resolved (run the Opaque pass)"
      | Instr.Call_void (name, args) ->
          let vs = List.map (operand_value regs) args in
          let results = exec_call ctx path name vs in
          List.concat_map
            (fun (path', outcome) ->
              match outcome with
              | Returned _ -> continue_ path' regs
              | Panicked m -> [ (path', Panicked m) ])
            results)

and eval_rvalue ctx path regs (rv : Instr.rvalue)
    (k : path -> Sval.sval -> result) : result =
  match rv with
  | Instr.Binop (op, a, b) ->
      k path (eval_binop op (operand_value regs a) (operand_value regs b))
  | Instr.Icmp (op, ty, a, b) ->
      k path (eval_icmp op ty (operand_value regs a) (operand_value regs b))
  | Instr.Not a ->
      k path (Sval.SBool (Term.not_ (as_bool_term (operand_value regs a))))
  | Instr.Alloca ty ->
      let mem, ptr =
        Sval.alloc ~stack:true path.mem
          (Sval.scell_default ctx.prog.Instr.tenv ty)
      in
      k { path with mem } (Sval.SPtr ptr)
  | Instr.Newobject ty ->
      let mem, ptr =
        Sval.alloc path.mem (Sval.scell_default ctx.prog.Instr.tenv ty)
      in
      k { path with mem } (Sval.SPtr ptr)
  | Instr.Load (_ty, po) -> (
      match operand_value regs po with
      | Sval.SPtr p -> k path (Sval.load path.mem p)
      | Sval.SNull -> [ (path, Panicked "nil load") ]
      | _ -> Sval.error "load through non-pointer")
  | Instr.Gep (pointee, base, indices) -> (
      match operand_value regs base with
      | Sval.SPtr p ->
          let idx_vals = List.map (operand_value regs) indices in
          resolve_gep ctx path pointee p idx_vals (fun path ptr ->
              k path (Sval.SPtr ptr))
      | Sval.SNull -> [ (path, Panicked "nil gep") ]
      | _ -> Sval.error "gep through non-pointer")
  | Instr.Call (name, args) ->
      let vs = List.map (operand_value regs) args in
      let results = exec_call ctx path name vs in
      List.concat_map
        (fun (path', outcome) ->
          match outcome with
          | Returned (Some v) -> k path' v
          | Returned None -> k path' Sval.SUnit
          | Panicked m -> [ (path', Panicked m) ])
        results
  | Instr.Bitcast _ | Instr.Byte_gep _ | Instr.Opaque_load _ ->
      Sval.error "opaque pointer op not resolved (run the Opaque pass)"

(* Top-level entry: run [fn] on [args] from [memory] under the initial
   path condition [pc]. The ctx's budget also governs every solver call
   made for branch feasibility while the run is in progress. *)
let run ?env_override (ctx : ctx) ~(memory : Sval.memory)
    ~(pc : Term.t list) ~(fn : string) ~(args : Sval.sval list) : result =
  Trace.with_span "exec" ~attrs:[ ("fn", fn) ] @@ fun () ->
  (* Select the env whose soundness contract covers this entry — the
     caller's own vouched-for env if given (a summarization window),
     the harness env for its declared roots, the env-free analysis
     otherwise — and restore the caller's choice on the way out: the
     summarizer nests [run]s (canonicalized window re-runs) inside a
     harness run. *)
  let outer = ctx.active_env in
  set_active_env ctx
    (match env_override with
    | Some e -> Some e
    | None -> env_for_entry ctx fn);
  Fun.protect
    ~finally:(fun () -> set_active_env ctx outer)
    (fun () ->
      let r =
        Solver.with_budget ctx.budget (fun () ->
            exec_call ctx { pc; mem = memory } fn args)
      in
      Trace.add_attr "paths" (string_of_int (List.length r));
      r)
