(* Automated specification summarization (§4.2, §5.3, §6.4).

   A summary represents a module as the set of input-effect pairs
   collected by full-path symbolic execution: for the k-th path, its
   path condition θ_k and effects f_k (writes to memory, allocations,
   return value). Inputs are canonicalized — every symbolic scalar
   reachable from the arguments is renamed to a positional symbol
   ($a0, $c3, …) following a consistent naming convention — so one
   summary is reusable at every call site that presents the same
   *shape*: same pointer structure and same concrete values, with
   arbitrary symbolic terms in the symbolic slots.

   Two deliberate deviations from the paper, documented in DESIGN.md:
   summaries are specialized on the concrete parts of the calling
   context (the paper instead represents appends abstractly), and the
   read-only heap region (the concrete domain tree, §6.5) is identified
   by a [frozen_below] bound rather than by annotation. *)

module Term = Smt.Term
module Value = Minir.Value
type write = { w_block : int; w_path : int list; w_cell : Sval.scell; }
type outcome_kind = Ret of Sval.sval option | Panic of string
type case = {
  cond : Term.t list;
  writes : write list;
  allocs : (int * Sval.scell) list;
  outcome : outcome_kind;
}
type t = {
  fn : string;
  cases : case list;
  canon_next_block : int;
  elapsed : float;
}
val case_count : t -> int

(* Raised when a summary cannot be built or fails validation; the
   refinement checker catches it and falls back to inlining. *)
exception Summary_failed of string

(* Structural validation applied before a summary enters the cache. *)
val validate : t -> (unit, string) result
type canon_state = {
  mutable bindings : (string * Term.t) list;
  mutable counter : int;
  buf : Buffer.t;
}
val canon_term : canon_state -> Term.t -> Term.sort -> Term.t
val canon_cell : canon_state -> Sval.scell -> Sval.scell
val canon_sval : canon_state -> Sval.sval -> Sval.sval
val reachable_blocks :
  frozen_below:int -> Sval.memory -> Sval.sval list -> int list
val diff_cells :
  (int list * Sval.scell) list ->
  int list ->
  Sval.scell -> Sval.scell -> (int list * Sval.scell) list
val diff_memory :
  Sval.memory ->
  Sval.memory -> write list * (int * Sval.scell) list
val summarize_at :
  Exec.ctx ->
  frozen_below:int ->
  mem:Sval.memory ->
  fn:string ->
  args:Sval.sval list -> t * (string * Term.t) list * string
val subst_cell :
  (string * Term.t) list -> Sval.scell -> Sval.scell
val remap_ptr : (int * int) list -> Value.ptr -> Value.ptr
val remap_cell : (int * int) list -> Sval.scell -> Sval.scell
val apply :
  Exec.ctx ->
  t -> (string * Term.t) list -> Exec.path -> Exec.result
(* Persistence hook (installed by lib/store, which sits above this
   library): [sp_load] is tried on in-memory misses before summarizing
   (a served summary counts as a hit and enters the in-memory cache);
   [sp_save] fires after a fresh summarize. Keys are the canonical
   call-shape keys, so a loaded summary applies under the current
   call's bindings. The hook must validate what it serves. *)
type persist = {
  sp_load : fn:string -> key:string -> t option;
  sp_save : fn:string -> key:string -> t -> unit;
}
type store = {
  cache : (string, t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable summarize_time : float;
  persist : persist option;
}
val create_store : ?persist:persist -> unit -> store
val store_summaries : store -> t list
val intercept_for :
  frozen_below:int -> store -> string -> Exec.intercept
