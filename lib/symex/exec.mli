(* Full-path symbolic execution over Minir (the verifier's core, §5.2).

   Every feasible control path is explored; branch feasibility is decided
   by the SMT solver against the accumulated path condition, so panics
   reported here are reachable modulo solver completeness. Calls are
   inlined by default; an *intercept* table redirects chosen callees to
   manual layer specifications or automatically generated summaries —
   the layered verification hook (§4.3). *)

module Term = Smt.Term
module Solver = Smt.Solver
module Instr = Minir.Instr
module Ty = Minir.Ty
module Value = Minir.Value
module Typing = Minir.Typing
type path = { pc : Term.t list; mem : Sval.memory; }
type outcome = Returned of Sval.sval option | Panicked of string
type result = (path * outcome) list
type ctx = {
  prog : Instr.program;
  mutable intercepts : (string * intercept) list;
  mutable steps : int;
  max_steps : int;
  budget : Budget.t; (* fuel, path cap, deadline; shared with the solver *)
  mutable forks : int;
  mutable solver_calls : int;
  mutable unknowns : int;
  incr : Solver.Incremental.t;
      (* assertion stack mirroring the current path condition *)
  analysis : Analysis.policy;
      (* whether branch queries consult the static analysis first *)
  env : Analysis.env option;
      (* harness facts forwarded to [Analysis.summarize]; sound only
         for runs entering one of its [env_roots] — other entries fall
         back to the env-free analysis or the [run] caller's override *)
  mutable active_env : Analysis.env option;
      (* env of the innermost live [run] *)
  mutable facts : Analysis.summary option;
  mutable fn_facts : (Instr.func * Analysis.func_facts option) option;
      (* one-entry per-function lookup cache (physical identity) *)
  br_cache : (Instr.block * Analysis.branch_info option) option array;
  mutable br_cache_next : int;
      (* round-robin branch-info cache (physical identity) *)
  mutable static_discharged : int; (* branches pruned without the solver *)
  mutable panic_checks : int; (* symbolic branches guarding a Panic block *)
  mutable panic_discharged : int; (* ... of which statically pruned *)
  mutable crosscheck_mismatches : int; (* Distrust: solver disagreed *)
  mutable ip_discharged : int; (* prunes only the interproc layer justifies *)
  mutable ip_crosschecked : int; (* Distrust: interprocedural claims checked *)
  mutable ip_crosscheck_mismatches : int; (* ... of which refuted *)
}
and intercept = ctx -> path -> Sval.sval list -> result
exception Budget_exceeded of string
val default_max_steps : int
val create :
  ?max_steps:int ->
  ?budget:Budget.t ->
  ?intercepts:(string * intercept) list ->
  ?analysis:Analysis.policy -> ?env:Analysis.env -> Instr.program -> ctx
val tick : ctx -> unit
val charge_fork : ctx -> unit
val feasible : ctx -> Term.t list -> bool
val fork_bool :
  ctx ->
  path ->
  Term.t -> then_:(path -> 'a list) -> else_:(path -> 'a list) -> 'a list
val fork_index :
  ctx ->
  path ->
  Term.t ->
  cap:int ->
  k:(path -> int -> 'a list) -> out_of_range:(path -> 'a list) -> 'a list

(* [fork_bool] that first consults the static analysis' edge facts for
   the conditional terminating the given block, per the ctx's policy. *)
val fork_branch :
  ctx ->
  path ->
  Instr.func ->
  Instr.block ->
  Term.t -> then_:(path -> 'a list) -> else_:(path -> 'a list) -> 'a list
module Regs :
  sig
    type key = String.t
    type 'a t = 'a Map.Make(String).t
    val empty : 'a t
    val add : key -> 'a -> 'a t -> 'a t
    val add_to_list : key -> 'a -> 'a list t -> 'a list t
    val update : key -> ('a option -> 'a option) -> 'a t -> 'a t
    val singleton : key -> 'a -> 'a t
    val remove : key -> 'a t -> 'a t
    val merge :
      (key -> 'a option -> 'b option -> 'c option) -> 'a t -> 'b t -> 'c t
    val union : (key -> 'a -> 'a -> 'a option) -> 'a t -> 'a t -> 'a t
    val cardinal : 'a t -> int
    val bindings : 'a t -> (key * 'a) list
    val min_binding : 'a t -> key * 'a
    val min_binding_opt : 'a t -> (key * 'a) option
    val max_binding : 'a t -> key * 'a
    val max_binding_opt : 'a t -> (key * 'a) option
    val choose : 'a t -> key * 'a
    val choose_opt : 'a t -> (key * 'a) option
    val find : key -> 'a t -> 'a
    val find_opt : key -> 'a t -> 'a option
    val find_first : (key -> bool) -> 'a t -> key * 'a
    val find_first_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val find_last : (key -> bool) -> 'a t -> key * 'a
    val find_last_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val iter : (key -> 'a -> unit) -> 'a t -> unit
    val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
    val map : ('a -> 'b) -> 'a t -> 'b t
    val mapi : (key -> 'a -> 'b) -> 'a t -> 'b t
    val filter : (key -> 'a -> bool) -> 'a t -> 'a t
    val filter_map : (key -> 'a -> 'b option) -> 'a t -> 'b t
    val partition : (key -> 'a -> bool) -> 'a t -> 'a t * 'a t
    val split : key -> 'a t -> 'a t * 'a option * 'a t
    val is_empty : 'a t -> bool
    val mem : key -> 'a t -> bool
    val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
    val compare : ('a -> 'a -> int) -> 'a t -> 'a t -> int
    val for_all : (key -> 'a -> bool) -> 'a t -> bool
    val exists : (key -> 'a -> bool) -> 'a t -> bool
    val to_list : 'a t -> (key * 'a) list
    val of_list : (key * 'a) list -> 'a t
    val to_seq : 'a t -> (key * 'a) Seq.t
    val to_rev_seq : 'a t -> (key * 'a) Seq.t
    val to_seq_from : key -> 'a t -> (key * 'a) Seq.t
    val add_seq : (key * 'a) Seq.t -> 'a t -> 'a t
    val of_seq : (key * 'a) Seq.t -> 'a t
  end
type regs = Sval.sval Regs.t
val operand_value : regs -> Instr.operand -> Sval.sval
val as_int_term : Sval.sval -> Sval.Term.t
val as_bool_term : Sval.sval -> Sval.Term.t
val eval_binop :
  Instr.binop -> Sval.sval -> Sval.sval -> Sval.sval
val eval_icmp :
  Instr.icmp -> Ty.t -> Sval.sval -> Sval.sval -> Sval.sval
val resolve_gep :
  ctx ->
  path ->
  Ty.t ->
  Value.ptr ->
  Sval.sval list -> (path -> Value.ptr -> 'a list) -> 'a list
val exec_call : ctx -> path -> string -> Sval.sval list -> result
val exec_block :
  ctx ->
  path -> Instr.func -> Sval.sval Regs.t -> Instr.block -> result
val exec_insns :
  ctx ->
  path ->
  Sval.sval Regs.t ->
  Instr.instr list -> (path -> Sval.sval Regs.t -> result) -> result
val eval_rvalue :
  ctx ->
  path ->
  Sval.sval Regs.t ->
  Instr.rvalue -> (path -> Sval.sval -> result) -> result
(* [env_override] substitutes the caller's own vouched-for env for the
   duration of this run (the summarizer passes a per-window env built
   from its canonicalized arguments); without it, [ctx.env] applies to
   runs entering one of its roots and the env-free analysis to any
   other entry. *)
val run :
  ?env_override:Analysis.env ->
  ctx ->
  memory:Sval.memory ->
  pc:Term.t list -> fn:string -> args:Sval.sval list -> result
