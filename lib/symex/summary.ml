(* Automated specification summarization (§4.2, §5.3, §6.4).

   A summary represents a module as the set of input-effect pairs
   collected by full-path symbolic execution: for the k-th path, its
   path condition θ_k and effects f_k (writes to memory, allocations,
   return value). Inputs are canonicalized — every symbolic scalar
   reachable from the arguments is renamed to a positional symbol
   ($a0, $c3, …) following a consistent naming convention — so one
   summary is reusable at every call site that presents the same
   *shape*: same pointer structure and same concrete values, with
   arbitrary symbolic terms in the symbolic slots.

   Two deliberate deviations from the paper, documented in DESIGN.md:
   summaries are specialized on the concrete parts of the calling
   context (the paper instead represents appends abstractly), and the
   read-only heap region (the concrete domain tree, §6.5) is identified
   by a [frozen_below] bound rather than by annotation. *)

module Term = Smt.Term
module Value = Minir.Value

type write = { w_block : int; w_path : int list; w_cell : Sval.scell }

type outcome_kind =
  | Ret of Sval.sval option
  | Panic of string

type case = {
  cond : Term.t list; (* over canonical symbols; initial pc was true *)
  writes : write list;
  allocs : (int * Sval.scell) list; (* summarization-time block id → contents *)
  outcome : outcome_kind;
}

type t = {
  fn : string;
  cases : case list;
  canon_next_block : int; (* allocation watermark at summarization time *)
  elapsed : float; (* seconds spent summarizing (Figure 12) *)
}

let case_count (s : t) = List.length s.cases

(* Raised when a summary cannot be built or fails validation; the
   refinement checker catches it and falls back to inlining the layer
   (graceful degradation instead of aborting the whole check). *)
exception Summary_failed of string

(* Structural validation applied before a summary enters the cache: a
   summary with no cases (the callee has at least one path), or with a
   case whose writes escape below the canonical allocation watermark
   into the frozen read-only heap, would replay nonsense silently. *)
let validate (s : t) : (unit, string) result =
  if Faultinject.fire Faultinject.Summary_invalid then
    Error (s.fn ^ ": injected validation failure")
  else if s.cases = [] then Error (s.fn ^ ": summary has no cases")
  else
    let bad_alloc =
      List.exists
        (fun c -> List.exists (fun (b, _) -> b < 0) c.allocs)
        s.cases
    in
    if bad_alloc then Error (s.fn ^ ": summary allocates a negative block id")
    else Ok ()

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                   *)
(* ------------------------------------------------------------------ *)

type canon_state = {
  mutable bindings : (string * Term.t) list; (* canonical name → actual term *)
  mutable counter : int;
  buf : Buffer.t; (* the cache key being built *)
}

let canon_term (st : canon_state) (t : Term.t) (sort : Term.sort) : Term.t =
  match t with
  | Term.Int_const n ->
      Buffer.add_string st.buf (Printf.sprintf "#%d" n);
      t
  | Term.True | Term.False ->
      Buffer.add_string st.buf (if t = Term.True then "#t" else "#f");
      t
  | t ->
      let name = Printf.sprintf "$c%d" st.counter in
      st.counter <- st.counter + 1;
      st.bindings <- (name, t) :: st.bindings;
      Buffer.add_string st.buf "?";
      Term.var name sort

let rec canon_cell (st : canon_state) (c : Sval.scell) : Sval.scell =
  match c with
  | Sval.CInt t -> Sval.CInt (canon_term st t Term.Int)
  | Sval.CBool t -> Sval.CBool (canon_term st t Term.Bool)
  | Sval.CPtr p ->
      Buffer.add_string st.buf
        (Printf.sprintf "&%d.%s" p.Value.block
           (String.concat "." (List.map string_of_int p.Value.path)));
      c
  | Sval.CNull ->
      Buffer.add_string st.buf "0";
      c
  | Sval.CStruct cells ->
      Buffer.add_char st.buf '{';
      let out = Array.map (canon_cell st) cells in
      Buffer.add_char st.buf '}';
      Sval.CStruct out
  | Sval.CArray cells ->
      Buffer.add_char st.buf '[';
      let out = Array.map (canon_cell st) cells in
      Buffer.add_char st.buf ']';
      Sval.CArray out

let canon_sval (st : canon_state) (v : Sval.sval) : Sval.sval =
  match v with
  | Sval.SInt t -> Sval.SInt (canon_term st t Term.Int)
  | Sval.SBool t -> Sval.SBool (canon_term st t Term.Bool)
  | Sval.SPtr p ->
      Buffer.add_string st.buf
        (Printf.sprintf "&%d.%s" p.Value.block
           (String.concat "." (List.map string_of_int p.Value.path)));
      v
  | Sval.SNull ->
      Buffer.add_string st.buf "0";
      v
  | Sval.SUnit -> v

(* Pointers reachable from the arguments, stopping at frozen (read-only
   heap) blocks — the concrete domain tree is closed under pointers. *)
let reachable_blocks ~(frozen_below : int) (mem : Sval.memory)
    (args : Sval.sval list) : int list =
  let seen = Hashtbl.create 16 in
  let frontier = ref [] in
  let push b = if not (Hashtbl.mem seen b) then frontier := b :: !frontier in
  List.iter (function Sval.SPtr p -> push p.Value.block | _ -> ()) args;
  let out = ref [] in
  while !frontier <> [] do
    match !frontier with
    | [] -> ()
    | b :: rest ->
        frontier := rest;
        if not (Hashtbl.mem seen b) then begin
          Hashtbl.replace seen b ();
          out := b :: !out;
          if b >= frozen_below then
            ignore
              (Sval.fold_scalars
                 (fun () _ cell ->
                   match cell with
                   | Sval.CPtr p -> push p.Value.block
                   | _ -> ())
                 () [] (Sval.block_value mem b))
        end
  done;
  List.sort compare !out

(* ------------------------------------------------------------------ *)
(* Effect extraction: diff final memory against the canonical initial
   memory (the §5.3 effect patterns: field updates, appends — stores at
   now-concrete indices — and newobject allocations).                 *)
(* ------------------------------------------------------------------ *)

let rec diff_cells (acc : (int list * Sval.scell) list) rev_prefix
    (old_c : Sval.scell) (new_c : Sval.scell) =
  match (old_c, new_c) with
  | Sval.CStruct a, Sval.CStruct b | Sval.CArray a, Sval.CArray b ->
      let acc = ref acc in
      Array.iteri
        (fun k old_sub -> acc := diff_cells !acc (k :: rev_prefix) old_sub b.(k))
        a;
      !acc
  | old_s, new_s ->
      if Sval.equal_scalar old_s new_s then acc
      else (List.rev rev_prefix, new_s) :: acc

let diff_memory (m0 : Sval.memory) (mf : Sval.memory) :
    write list * (int * Sval.scell) list =
  let writes = ref [] and allocs = ref [] in
  Sval.Int_map.iter
    (fun b new_cell ->
      if Sval.is_stack_block mf b then ()
      else
      match Sval.Int_map.find_opt b m0.Sval.blocks with
      | None -> allocs := (b, new_cell) :: !allocs
      | Some old_cell ->
          if old_cell != new_cell then
            List.iter
              (fun (p, cell) ->
                writes := { w_block = b; w_path = p; w_cell = cell } :: !writes)
              (diff_cells [] [] old_cell new_cell))
    mf.Sval.blocks;
  (List.rev !writes, List.rev !allocs)

(* ------------------------------------------------------------------ *)
(* Summarization                                                      *)
(* ------------------------------------------------------------------ *)

(* The env a summarization window vouches for: [fn] is its only entry,
   and canonicalization keeps pointer arguments concrete — each is a
   definite address or a definite null for the whole window — while
   scalars become fresh unconstrained symbols (no fact) and the
   scrubbed heap admits no field invariants. Interned per nullness
   pattern so repeated windows hand [Analysis.summarize]'s memo a
   physically stable key. *)
let window_env_memo : (string, Analysis.env) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let window_env (fn : string) (canon_args : Sval.sval list) : Analysis.env =
  let pattern =
    String.concat ""
      (List.map
         (function
           | Sval.SPtr _ -> "p"
           | Sval.SNull -> "0"
           | _ -> "_")
         canon_args)
  in
  let memo = Domain.DLS.get window_env_memo in
  let k = fn ^ "|" ^ pattern in
  match Hashtbl.find_opt memo k with
  | Some e -> e
  | None ->
      let e =
        {
          Analysis.env_roots = [ fn ];
          env_entry =
            [
              ( fn,
                List.mapi (fun i a -> (i, a)) canon_args
                |> List.filter_map (fun (i, a) ->
                       match a with
                       | Sval.SPtr _ ->
                           Some (i, Analysis.APtr Analysis.Nullness.NNot)
                       | Sval.SNull ->
                           Some (i, Analysis.APtr Analysis.Nullness.NNull)
                       | _ -> None) );
            ];
          env_fields = [];
        }
      in
      Hashtbl.replace memo k e;
      e

(* Summarize [fn] as called with [args] in [mem]: canonicalize the
   symbolic inputs, run full-path symbolic execution from a true path
   condition, and collect one case per path. Returns the summary plus
   the canonical-to-actual bindings of this call site and the cache
   key. *)
let summarize_at (ctx : Exec.ctx) ~(frozen_below : int) ~(mem : Sval.memory)
    ~(fn : string) ~(args : Sval.sval list) : t * (string * Term.t) list * string
    =
  if Faultinject.fire Faultinject.Summarize_raise then
    raise (Summary_failed (fn ^ ": injected raise mid-summary"));
  let st = { bindings = []; counter = 0; buf = Buffer.create 256 } in
  Buffer.add_string st.buf fn;
  let canon_args =
    List.mapi
      (fun idx a ->
        Buffer.add_string st.buf (Printf.sprintf "|a%d=" idx);
        canon_sval st a)
      args
  in
  let reach = reachable_blocks ~frozen_below mem args in
  let canon_mem =
    List.fold_left
      (fun m b ->
        if b < frozen_below then begin
          Buffer.add_string st.buf (Printf.sprintf "|h%d" b);
          m
        end
        else begin
          Buffer.add_string st.buf (Printf.sprintf "|b%d=" b);
          let cell = canon_cell st (Sval.block_value mem b) in
          { m with Sval.blocks = Sval.Int_map.add b cell m.Sval.blocks }
        end)
      mem reach
  in
  let key = Buffer.contents st.buf in
  let window_env = window_env fn canon_args in
  (* The callee must execute its own body here, not its own summary. *)
  let saved = ctx.Exec.intercepts in
  ctx.Exec.intercepts <- List.remove_assoc fn saved;
  let t0 = Unix.gettimeofday () in
  let results =
    Fun.protect
      ~finally:(fun () -> ctx.Exec.intercepts <- saved)
      (fun () ->
        (* A summary that exhausts the budget mid-build is a *summary*
           failure, not a whole-check failure: the checker can still
           fall back to inlining this layer. *)
        try
          Exec.run ~env_override:window_env ctx ~memory:canon_mem ~pc:[] ~fn
            ~args:canon_args
        with Budget.Exhausted reason ->
          raise
            (Summary_failed
               (Printf.sprintf "%s: %s while summarizing" fn
                  (Budget.reason_to_string reason))))
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let cases =
    List.map
      (fun ((path : Exec.path), outcome) ->
        let writes, allocs = diff_memory canon_mem path.Exec.mem in
        {
          cond = List.rev path.Exec.pc;
          writes;
          allocs;
          outcome =
            (match outcome with
            | Exec.Returned v -> Ret v
            | Exec.Panicked m -> Panic m);
        })
      results
  in
  ( { fn; cases; canon_next_block = canon_mem.Sval.next_block; elapsed },
    st.bindings,
    key )

(* ------------------------------------------------------------------ *)
(* Summary application                                                *)
(* ------------------------------------------------------------------ *)

let subst_cell (bindings : (string * Term.t) list) (c : Sval.scell) : Sval.scell
    =
  let rec go = function
    | Sval.CInt t -> Sval.CInt (Term.subst bindings t)
    | Sval.CBool t -> Sval.CBool (Term.subst bindings t)
    | (Sval.CPtr _ | Sval.CNull) as c -> c
    | Sval.CStruct cells -> Sval.CStruct (Array.map go cells)
    | Sval.CArray cells -> Sval.CArray (Array.map go cells)
  in
  go c

let remap_ptr (remap : (int * int) list) (p : Value.ptr) : Value.ptr =
  match List.assoc_opt p.Value.block remap with
  | Some b -> { p with Value.block = b }
  | None -> p

let rec remap_cell remap (c : Sval.scell) : Sval.scell =
  match c with
  | Sval.CPtr p -> Sval.CPtr (remap_ptr remap p)
  | Sval.CStruct cells -> Sval.CStruct (Array.map (remap_cell remap) cells)
  | Sval.CArray cells -> Sval.CArray (Array.map (remap_cell remap) cells)
  | Sval.CInt _ | Sval.CBool _ | Sval.CNull -> c

(* Apply [summary] at a call site: substitute the canonical symbols by
   the call site's terms, keep the feasible cases, replay each case's
   effects. *)
let apply (ctx : Exec.ctx) (summary : t) (bindings : (string * Term.t) list)
    (path : Exec.path) : Exec.result =
  List.concat_map
    (fun (case : case) ->
      let cond = List.map (Term.subst bindings) case.cond in
      let cond = List.filter (fun t -> t <> Term.True) cond in
      let pc' = List.rev_append cond path.Exec.pc in
      if cond <> [] && not (Exec.feasible ctx pc') then []
      else begin
        (* Fresh blocks for the case's allocations. *)
        let mem = ref path.Exec.mem in
        let remap =
          List.map
            (fun (old_b, _) ->
              let m, p = Sval.alloc !mem Sval.CNull in
              mem := m;
              (old_b, p.Value.block))
            case.allocs
        in
        List.iter
          (fun (old_b, cell) ->
            let cell = remap_cell remap (subst_cell bindings cell) in
            let b = List.assoc old_b remap in
            mem :=
              {
                !mem with
                Sval.blocks = Sval.Int_map.add b cell !mem.Sval.blocks;
              })
          case.allocs;
        List.iter
          (fun w ->
            let cell = remap_cell remap (subst_cell bindings w.w_cell) in
            let target =
              remap_ptr remap { Value.block = w.w_block; path = w.w_path }
            in
            mem := Sval.store !mem target cell)
          case.writes;
        let outcome =
          match case.outcome with
          | Panic m -> Exec.Panicked m
          | Ret None -> Exec.Returned None
          | Ret (Some v) ->
              let v =
                match v with
                | Sval.SInt t -> Sval.SInt (Term.subst bindings t)
                | Sval.SBool t -> Sval.SBool (Term.subst bindings t)
                | Sval.SPtr p -> Sval.SPtr (remap_ptr remap p)
                | (Sval.SNull | Sval.SUnit) as v -> v
              in
              Exec.Returned (Some v)
        in
        [ ({ Exec.pc = pc'; mem = !mem }, outcome) ]
      end)
    summary.cases

(* ------------------------------------------------------------------ *)
(* The summarizing intercept with its cache                           *)
(* ------------------------------------------------------------------ *)

(* Persistence hook (lib/store, which sits above this library): tried on
   in-memory misses before summarizing, written after a fresh summarize.
   The [key] is the canonical call-shape key built below — equal keys
   mean equal canonical shapes, so a loaded summary applies under the
   current call's own bindings. The hook validates what it serves (a
   summary that fails [validate] is a miss, not an error). *)
type persist = {
  sp_load : fn:string -> key:string -> t option;
  sp_save : fn:string -> key:string -> t -> unit;
}

type store = {
  cache : (string, t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable summarize_time : float;
  persist : persist option;
}

let create_store ?persist () =
  {
    cache = Hashtbl.create 32;
    hits = 0;
    misses = 0;
    summarize_time = 0.0;
    persist;
  }

let store_summaries (s : store) : t list =
  Hashtbl.fold (fun _ v acc -> v :: acc) s.cache []

(* Whether a call shape hits or misses the memo depends on what this
   domain summarized before — cache-population state, not workload — so
   the counters are registry totals but the per-occurrence event and
   the summarize span are det:false (excluded from tree fingerprints). *)
let c_hits = Trace.Metrics.counter "summary.hits"
let c_misses = Trace.Metrics.counter "summary.misses"

(* An [Exec.intercept] that summarizes [fn] on first use per calling
   shape and replays the cached summary afterwards. *)
let intercept_for ~(frozen_below : int) (store : store) (fn : string) :
    Exec.intercept =
 fun ctx path args ->
  (* Canonicalize against the current state to obtain the cache key and
     this site's bindings. (Canonicalization is cheap relative to
     symbolic execution.) *)
  let summary, bindings, key =
    match
      let st = { bindings = []; counter = 0; buf = Buffer.create 256 } in
      Buffer.add_string st.buf fn;
      let canon_args =
        List.mapi
          (fun idx a ->
            Buffer.add_string st.buf (Printf.sprintf "|a%d=" idx);
            canon_sval st a)
          args
      in
      let reach = reachable_blocks ~frozen_below path.Exec.mem args in
      List.iter
        (fun b ->
          if b < frozen_below then
            Buffer.add_string st.buf (Printf.sprintf "|h%d" b)
          else begin
            Buffer.add_string st.buf (Printf.sprintf "|b%d=" b);
            ignore (canon_cell st (Sval.block_value path.Exec.mem b))
          end)
        reach;
      ignore canon_args;
      (Buffer.contents st.buf, st.bindings)
    with
    | key, bindings -> (
        match Hashtbl.find_opt store.cache key with
        | Some s ->
            store.hits <- store.hits + 1;
            Trace.Metrics.incr c_hits;
            Trace.event ~det:false "summary.hit" ~attrs:[ ("fn", fn) ];
            (s, bindings, key)
        | None -> (
            let persisted =
              match store.persist with
              | None -> None
              | Some p -> p.sp_load ~fn ~key
            in
            match persisted with
            | Some s ->
                (* A store-served summary counts as a hit: nothing was
                   re-executed. Key equality means the canonical shape
                   is this call's shape, so the current bindings
                   apply. *)
                store.hits <- store.hits + 1;
                Trace.Metrics.incr c_hits;
                Trace.event ~det:false "summary.hit"
                  ~attrs:[ ("fn", fn); ("src", "store") ];
                Hashtbl.replace store.cache key s;
                (s, bindings, key)
            | None ->
                store.misses <- store.misses + 1;
                Trace.Metrics.incr c_misses;
                let s, bindings', key' =
                  Trace.with_span ~det:false "summarize" ~attrs:[ ("fn", fn) ]
                    (fun () ->
                      summarize_at ctx ~frozen_below ~mem:path.Exec.mem ~fn
                        ~args)
                in
                assert (key' = key);
                (match validate s with
                | Ok () -> ()
                | Error m -> raise (Summary_failed m));
                store.summarize_time <- store.summarize_time +. s.elapsed;
                Hashtbl.replace store.cache key s;
                (match store.persist with
                | None -> ()
                | Some p -> p.sp_save ~fn ~key s);
                (s, bindings', key)))
  in
  ignore key;
  apply ctx summary bindings path
