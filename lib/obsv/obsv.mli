(* Serving-plane operations observability over the Trace registry.

   Three cooperating facilities, all in the serve path's
   degrade-never-lie discipline — no observability failure may ever
   change an answer:

   - [Qlog]: a dnstap-style sampled query log. One CRC-framed record
     per sampled query (index, id, qname/qtype, disposition, rcode,
     degradation reason, wall latency, budget), written through the
     Journal framing, so a torn tail loses at most one record.
     Sampling is a pure function of (seed, query index) — the same
     seed replays the same sampled index set — and [log] never
     raises: an injected [Faultinject.Obsv_sink_fail] suppresses one
     record before any byte lands, a real append failure fail-stops
     the sink; both only bump [obsv.sink_failures].

   - [Windows]: rolling SLO windows. A ring of per-window
     [Trace.Metrics.snapshot] deltas (default 10s x 60) whose algebra
     telescopes: the sum of the closed-window deltas plus the open
     window's partial delta equals the registry delta since [create].
     Each closed window carries derived QPS, p50/p90/p99 latency,
     SERVFAIL rate, rcode mix and top degradation reasons; threshold
     crossings become typed [slo.alert] trace instants and
     [obsv.alerts] counter bumps.

   - [Expo]/[Endpoint]: Prometheus-style text and JSON exposition of
     the full registry plus build/zone/engine identity and the window
     ring, served from a reserved loopback UDP control socket the
     serve loop multiplexes with query traffic — scrapeable while
     `serve` is under load ([scrape] is the client side `dnsv top`
     and the CI ops-smoke job use).

   Registry cells are domain-local, so a sink observes the domain
   that serves the queries; the window algebra itself is pure on
   snapshots, which is what makes merged multi-domain views
   deterministic in task order (Metrics.sum is order-insensitive). *)

module Qlog : sig
  type record = {
    q_index : int; (* 0-based arrival index at the server *)
    q_id : int; (* DNS message id (0 when none was salvageable) *)
    q_qname : string; (* presentation form; "" when undecoded *)
    q_qtype : string; (* rtype mnemonic; "" when undecoded *)
    q_disposition : string; (* answered/formerr/notimp/servfail/dropped *)
    q_rcode : string; (* reply rcode; "" when no reply was owed *)
    q_reason : string; (* degradation reason tag; "" when none *)
    q_latency_ms : float; (* wall latency of Serve.handle *)
    q_deadline_ms : float; (* the query's budget: spent = latency/deadline *)
  }

  (* Byte-exact record codec (tab-separated, escaped, hex floats):
     [decode_record (encode_record r) = Some r] for every [r]. *)
  val encode_record : record -> string
  val decode_record : string -> record option

  (* Pure sampling decision: whether query [index] is logged under
     (seed, rate_pct). The same arguments always answer the same. *)
  val sampled : seed:int -> rate_pct:int -> int -> bool

  type t

  (* Create the log at [path] (a fresh CRC-framed journal whose header
     names the seed and rate). *)
  val create : path:string -> seed:int -> rate_pct:int -> unit -> t

  val path : t -> string
  val seed : t -> int
  val rate_pct : t -> int

  (* Records appended so far (sampled, not suppressed). *)
  val logged : t -> int

  (* Log one record if its index is sampled. NEVER raises — the
     never-affects-answers invariant. An armed Obsv_sink_fail
     suppresses the record before any byte is written (the journal
     stays intact; later records still land); a real append failure
     (e.g. a torn frame) fail-stops the sink so later records are not
     buried behind a bad frame. Both bump [obsv.sink_failures]. *)
  val log : t -> record -> unit

  (* Finalize ("logged=N suppressed=M") and close. Never raises. *)
  val close : t -> unit

  (* Salvage every intact record of a query log (read-only; tolerates
     a torn tail, which loses at most the record being written). *)
  val read : path:string -> record list
end

module Windows : sig
  (* Stats derived from one window's registry delta. *)
  type derived = {
    d_served : int; (* queries disposed of in the window *)
    d_qps : float;
    d_p50_ms : float; (* upper-bound bucket quantiles of serve.latency_ms *)
    d_p90_ms : float;
    d_p99_ms : float;
    d_servfail : int;
    d_servfail_rate : float; (* servfail / served *)
    d_rcodes : (string * int) list; (* nonzero serve.rcode.* deltas, sorted *)
    d_reasons : (string * int) list; (* nonzero serve.reason.* deltas, by count *)
  }

  type alert = {
    a_window : int; (* the window's sequence number *)
    a_kind : string; (* "p99_ms" | "servfail_rate" *)
    a_value : float;
    a_limit : float;
  }

  type closed = {
    w_index : int; (* monotone window sequence number, from 0 *)
    w_start : float; (* wall-clock open instant *)
    w_elapsed_s : float; (* actual covered span (>= the nominal length) *)
    w_delta : Trace.Metrics.snapshot; (* registry delta over the window *)
    w_derived : derived;
    w_alerts : alert list;
  }

  type t

  (* [window_s] nominal window length (default 10s), [windows] ring
     capacity (default 60). Optional SLO limits arm threshold alerts
     on window close. *)
  val create :
    ?window_s:float ->
    ?windows:int ->
    ?p99_limit_ms:float ->
    ?servfail_limit:float ->
    unit ->
    t

  val window_s : t -> float

  (* Close the open window if its nominal length has elapsed (the
     serve loop calls this on every iteration; one compare when the
     window is still open). *)
  val maybe_roll : ?now:float -> t -> unit

  (* Close the open window unconditionally (tests, final flush). *)
  val roll : ?now:float -> t -> unit

  (* Closed windows, newest first, at most the ring capacity. *)
  val closed : t -> closed list

  (* The open window's partial delta. *)
  val current_delta : t -> Trace.Metrics.snapshot

  (* Registry delta since [create]: the whole-run total the ring
     telescopes to (sum of closed deltas + current partial). *)
  val since_create : t -> Trace.Metrics.snapshot

  (* Alerts emitted over the sink's lifetime (ring eviction does not
     forget them). *)
  val alerts_total : t -> int

  (* Pure derivation (exposed for tests and merged multi-domain
     views): same delta + elapsed, same answer. *)
  val derive : elapsed_s:float -> Trace.Metrics.snapshot -> derived
end

(* What a serve loop carries: both parts optional and independent. *)
type sink = { sk_qlog : Qlog.t option; sk_windows : Windows.t option }

val sink : ?qlog:Qlog.t -> ?windows:Windows.t -> unit -> sink

module Expo : sig
  (* Who is answering: surfaced on every scrape so an operator can tell
     which build/engine/zone the numbers describe. *)
  type identity = {
    id_version : string; (* server build version *)
    id_engine : string; (* engine version under service *)
    id_zone : string; (* zone origin *)
  }

  (* Prometheus text exposition: dnsv_build_info{...} 1, every counter
     as dnsv_<name>_total, every histogram as cumulative _bucket{le=}/
     _sum/_count series, plus last-closed-window gauges. *)
  val prometheus :
    identity:identity -> ?windows:Windows.t -> Trace.Metrics.snapshot -> string

  (* JSON exposition: identity, counters, histogram summaries (with
     quantile bounds), the window ring newest-first, alerts. Parses
     with Trace.Json; `dnsv top` renders it. *)
  val json :
    identity:identity -> ?windows:Windows.t -> Trace.Metrics.snapshot -> string
end

module Endpoint : sig
  type t

  (* Bind the control socket on 127.0.0.1:[port] (0 picks a free
     port). *)
  val create : ?port:int -> unit -> t

  val port : t -> int
  val fd : t -> Unix.file_descr

  (* Answer one queued request datagram: a request starting with
     "json" gets [`Json], anything else [`Text]. Returns false on a
     transient socket error. Never raises. *)
  val serve_request : t -> respond:([ `Text | `Json ] -> string) -> bool

  val close : t -> unit

  (* Client side: one request/reply exchange against a live endpoint
     (used by `dnsv top` and the CI ops-smoke job). *)
  val scrape :
    ?timeout_s:float ->
    host:string ->
    port:int ->
    [ `Text | `Json ] ->
    (string, string) result
end
