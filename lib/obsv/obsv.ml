(* Serving-plane operations observability: sampled query log, rolling
   SLO windows, and a scrapeable stats endpoint — all over the Trace
   registry, all under the serve path's degrade-never-lie discipline:
   no observability failure may ever change an answer. *)

(* Registry counters: observability observes itself, so a scrape can
   tell how much was sampled, suppressed, rolled and alerted. *)
let sampled_c = Trace.Metrics.counter "obsv.sampled"
let sink_fail_c = Trace.Metrics.counter "obsv.sink_failures"
let alerts_c = Trace.Metrics.counter "obsv.alerts"
let scrapes_c = Trace.Metrics.counter "obsv.scrapes"
let windows_c = Trace.Metrics.counter "obsv.windows_closed"

module Qlog = struct
  type record = {
    q_index : int;
    q_id : int;
    q_qname : string;
    q_qtype : string;
    q_disposition : string;
    q_rcode : string;
    q_reason : string;
    q_latency_ms : float;
    q_deadline_ms : float;
  }

  (* Field escaping: qnames come off the wire, so labels can contain
     any byte. Tabs, newlines, backslashes and nonprintables are
     escaped so a record is one clean field-per-tab line inside its
     journal frame. *)
  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '\t' -> Buffer.add_string b "\\t"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
            Buffer.add_string b (Printf.sprintf "\\x%02x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let unescape s =
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let ok = ref true in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] <> '\\' then Buffer.add_char b s.[!i]
       else if !i + 1 >= n then ok := false
       else begin
         (match s.[!i + 1] with
         | '\\' -> Buffer.add_char b '\\'
         | 't' -> Buffer.add_char b '\t'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 'x' when !i + 3 < n -> (
             match int_of_string_opt ("0x" ^ String.sub s (!i + 2) 2) with
             | Some c ->
                 Buffer.add_char b (Char.chr c);
                 i := !i + 2
             | None -> ok := false)
         | _ -> ok := false);
         incr i
       end);
      incr i
    done;
    if !ok then Some (Buffer.contents b) else None

  (* Hex-float fields roundtrip byte-exactly (same discipline as
     Budget.reason_to_wire). *)
  let encode_record (r : record) =
    String.concat "\t"
      [
        "q1";
        string_of_int r.q_index;
        string_of_int r.q_id;
        escape r.q_qname;
        escape r.q_qtype;
        escape r.q_disposition;
        escape r.q_rcode;
        escape r.q_reason;
        Printf.sprintf "%h" r.q_latency_ms;
        Printf.sprintf "%h" r.q_deadline_ms;
      ]

  let decode_record (s : string) : record option =
    match String.split_on_char '\t' s with
    | [ "q1"; idx; id; qname; qtype; disp; rcode; reason; lat; dl ] -> (
        match
          ( int_of_string_opt idx,
            int_of_string_opt id,
            unescape qname,
            unescape qtype,
            unescape disp,
            unescape rcode,
            unescape reason,
            float_of_string_opt lat,
            float_of_string_opt dl )
        with
        | ( Some q_index,
            Some q_id,
            Some q_qname,
            Some q_qtype,
            Some q_disposition,
            Some q_rcode,
            Some q_reason,
            Some q_latency_ms,
            Some q_deadline_ms ) ->
            Some
              {
                q_index;
                q_id;
                q_qname;
                q_qtype;
                q_disposition;
                q_rcode;
                q_reason;
                q_latency_ms;
                q_deadline_ms;
              }
        | _ -> None)
    | _ -> None

  (* The sampling decision is a pure function of (seed, rate, index):
     an LCG hash of the index keyed by the seed, compared against the
     rate. Replaying the same seed over the same traffic yields the
     same sampled index set — which is what makes a sampled log a
     deterministic artifact instead of a dice roll. *)
  let sampled ~seed ~rate_pct index =
    if rate_pct >= 100 then true
    else if rate_pct <= 0 then false
    else
      let x = (((index + 1) * 48271) + (seed * 29) + 11) land 0x3FFFFFFF in
      x mod 100 < rate_pct

  type t = {
    qt_journal : Journal.t;
    qt_path : string;
    qt_seed : int;
    qt_rate_pct : int;
    mutable qt_logged : int;
    mutable qt_suppressed : int;
    mutable qt_dead : bool; (* fail-stop: a real append failure ends the log *)
    mutable qt_closed : bool;
  }

  let header ~seed ~rate_pct =
    Printf.sprintf "dnsv-qlog v1 seed=%d rate=%d" seed rate_pct

  let create ~path ~seed ~rate_pct () =
    {
      qt_journal = Journal.create ~path ~header:(header ~seed ~rate_pct);
      qt_path = path;
      qt_seed = seed;
      qt_rate_pct = rate_pct;
      qt_logged = 0;
      qt_suppressed = 0;
      qt_dead = false;
      qt_closed = false;
    }

  let path t = t.qt_path
  let seed t = t.qt_seed
  let rate_pct t = t.qt_rate_pct
  let logged t = t.qt_logged

  let note_suppressed t why =
    t.qt_suppressed <- t.qt_suppressed + 1;
    Trace.Metrics.incr sink_fail_c;
    Trace.event "obsv.sink_fail" ~det:false ~attrs:[ ("why", why) ]

  let log t (r : record) =
    if
      (not t.qt_closed)
      && sampled ~seed:t.qt_seed ~rate_pct:t.qt_rate_pct r.q_index
    then begin
      Trace.Metrics.incr sampled_c;
      if t.qt_dead then note_suppressed t "sink dead"
      else if Faultinject.fire Faultinject.Obsv_sink_fail then
        (* The injected failure suppresses the record before any byte
           is written: the journal stays intact and later records
           still land. The answer path never hears about it. *)
        note_suppressed t "injected"
      else
        try
          Journal.append t.qt_journal (encode_record r);
          t.qt_logged <- t.qt_logged + 1
        with e ->
          (* A real append failure may have torn a frame; appending
             past it would bury every later record behind the bad
             frame, so the sink fail-stops. Still never the answer
             path's problem. *)
          t.qt_dead <- true;
          note_suppressed t (Printexc.to_string e)
    end

  let close t =
    if not t.qt_closed then begin
      t.qt_closed <- true;
      (try
         if not t.qt_dead then
           Journal.finalize t.qt_journal
             (Printf.sprintf "logged=%d suppressed=%d" t.qt_logged
                t.qt_suppressed)
       with _ -> ());
      try Journal.close t.qt_journal with _ -> ()
    end

  let read ~path =
    let r = Journal.recover ~path in
    List.filter_map decode_record r.Journal.records
end

module Windows = struct
  type derived = {
    d_served : int;
    d_qps : float;
    d_p50_ms : float;
    d_p90_ms : float;
    d_p99_ms : float;
    d_servfail : int;
    d_servfail_rate : float;
    d_rcodes : (string * int) list;
    d_reasons : (string * int) list;
  }

  type alert = {
    a_window : int;
    a_kind : string;
    a_value : float;
    a_limit : float;
  }

  type closed = {
    w_index : int;
    w_start : float;
    w_elapsed_s : float;
    w_delta : Trace.Metrics.snapshot;
    w_derived : derived;
    w_alerts : alert list;
  }

  type t = {
    t_len : float;
    t_cap : int;
    t_p99_limit : float option;
    t_servfail_limit : float option;
    t_t0_snap : Trace.Metrics.snapshot;
    mutable t_open_at : float;
    mutable t_open_snap : Trace.Metrics.snapshot;
    mutable t_ring : closed list; (* newest first, <= t_cap long *)
    mutable t_seq : int;
    mutable t_alerts_total : int;
  }

  let create ?(window_s = 10.0) ?(windows = 60) ?p99_limit_ms ?servfail_limit
      () =
    let snap = Trace.Metrics.snapshot () in
    {
      t_len = window_s;
      t_cap = max 1 windows;
      t_p99_limit = p99_limit_ms;
      t_servfail_limit = servfail_limit;
      t_t0_snap = snap;
      t_open_at = Trace.now_s ();
      t_open_snap = snap;
      t_ring = [];
      t_seq = 0;
      t_alerts_total = 0;
    }

  let window_s t = t.t_len

  let disposition_counters =
    [
      "serve.answered"; "serve.formerr"; "serve.notimp"; "serve.servfail";
      "serve.dropped";
    ]

  let derive ~elapsed_s (d : Trace.Metrics.snapshot) : derived =
    let g name = Trace.Metrics.get d name in
    let served = List.fold_left (fun a n -> a + g n) 0 disposition_counters in
    let servfail = g "serve.servfail" in
    let with_prefix p =
      let pl = String.length p in
      List.filter_map
        (fun (k, v) ->
          if v > 0 && String.length k > pl && String.sub k 0 pl = p then
            Some (String.sub k pl (String.length k - pl), v)
          else None)
        d.Trace.Metrics.counters
    in
    let q p =
      match Trace.Metrics.get_hist d "serve.latency_ms" with
      | Some h -> Trace.Metrics.hist_quantile h p
      | None -> 0.0
    in
    {
      d_served = served;
      d_qps =
        (if elapsed_s > 0.0 then float_of_int served /. elapsed_s else 0.0);
      d_p50_ms = q 0.5;
      d_p90_ms = q 0.9;
      d_p99_ms = q 0.99;
      d_servfail = servfail;
      d_servfail_rate =
        (if served > 0 then float_of_int servfail /. float_of_int served
         else 0.0);
      d_rcodes = with_prefix "serve.rcode.";
      d_reasons =
        with_prefix "serve.reason."
        |> List.sort (fun (k1, v1) (k2, v2) ->
               match compare v2 v1 with 0 -> compare k1 k2 | c -> c);
    }

  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: take (n - 1) tl

  let roll ?now t =
    let now = match now with Some n -> n | None -> Trace.now_s () in
    let snap = Trace.Metrics.snapshot () in
    let delta = Trace.Metrics.diff snap t.t_open_snap in
    let elapsed = max 1e-9 (now -. t.t_open_at) in
    let dv = derive ~elapsed_s:elapsed delta in
    let alerts = ref [] in
    let check kind value limit =
      match limit with
      | Some l when dv.d_served > 0 && value > l ->
          alerts :=
            { a_window = t.t_seq; a_kind = kind; a_value = value; a_limit = l }
            :: !alerts
      | _ -> ()
    in
    check "servfail_rate" dv.d_servfail_rate t.t_servfail_limit;
    check "p99_ms" dv.d_p99_ms t.t_p99_limit;
    let alerts = !alerts in
    if alerts <> [] then
      (* A typed instant per crossing: the trace stream carries the
         alert even if no scraper is watching. The span is det:false —
         alert structure depends on the wall clock. *)
      Trace.with_span "obsv.window" ~det:false (fun () ->
          List.iter
            (fun a ->
              Trace.Metrics.incr alerts_c;
              Trace.event "slo.alert" ~det:false
                ~attrs:
                  [
                    ("window", string_of_int a.a_window);
                    ("kind", a.a_kind);
                    ("value", Printf.sprintf "%.6g" a.a_value);
                    ("limit", Printf.sprintf "%.6g" a.a_limit);
                  ])
            alerts);
    t.t_alerts_total <- t.t_alerts_total + List.length alerts;
    Trace.Metrics.incr windows_c;
    let cl =
      {
        w_index = t.t_seq;
        w_start = t.t_open_at;
        w_elapsed_s = elapsed;
        w_delta = delta;
        w_derived = dv;
        w_alerts = alerts;
      }
    in
    t.t_ring <- take t.t_cap (cl :: t.t_ring);
    t.t_seq <- t.t_seq + 1;
    t.t_open_at <- now;
    t.t_open_snap <- snap

  let maybe_roll ?now t =
    let now = match now with Some n -> n | None -> Trace.now_s () in
    if now -. t.t_open_at >= t.t_len then roll ~now t

  let closed t = t.t_ring
  let current_delta t = Trace.Metrics.diff (Trace.Metrics.snapshot ()) t.t_open_snap
  let since_create t = Trace.Metrics.diff (Trace.Metrics.snapshot ()) t.t_t0_snap
  let alerts_total t = t.t_alerts_total
end

type sink = { sk_qlog : Qlog.t option; sk_windows : Windows.t option }

let sink ?qlog ?windows () = { sk_qlog = qlog; sk_windows = windows }

module Expo = struct
  type identity = {
    id_version : string;
    id_engine : string;
    id_zone : string;
  }

  (* --- Prometheus text --- *)

  let mangle name =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
      name

  let plabel s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let prometheus ~identity ?windows (snap : Trace.Metrics.snapshot) =
    let b = Buffer.create 8192 in
    Printf.bprintf b "# dnsv metrics exposition\n";
    Printf.bprintf b
      "dnsv_build_info{version=\"%s\",engine=\"%s\",zone=\"%s\"} 1\n"
      (plabel identity.id_version)
      (plabel identity.id_engine)
      (plabel identity.id_zone);
    List.iter
      (fun (n, v) -> Printf.bprintf b "dnsv_%s_total %d\n" (mangle n) v)
      snap.Trace.Metrics.counters;
    List.iter
      (fun (n, (h : Trace.Metrics.hist)) ->
        if h.Trace.Metrics.h_count > 0 then begin
          let n = mangle n in
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              if c > 0 then
                Printf.bprintf b "dnsv_%s_bucket{le=\"%.9g\"} %d\n" n
                  (Trace.Metrics.bucket_upper i)
                  !cum)
            h.Trace.Metrics.h_buckets;
          Printf.bprintf b "dnsv_%s_bucket{le=\"+Inf\"} %d\n" n
            h.Trace.Metrics.h_count;
          Printf.bprintf b "dnsv_%s_sum %.9g\n" n h.Trace.Metrics.h_sum;
          Printf.bprintf b "dnsv_%s_count %d\n" n h.Trace.Metrics.h_count
        end)
      snap.Trace.Metrics.hists;
    (match windows with
    | None -> ()
    | Some w ->
        Printf.bprintf b "dnsv_windows_closed_total %d\n"
          (match Windows.closed w with [] -> 0 | c :: _ -> c.Windows.w_index + 1);
        Printf.bprintf b "dnsv_slo_alerts_total %d\n" (Windows.alerts_total w);
        (match Windows.closed w with
        | [] -> ()
        | last :: _ ->
            let d = last.Windows.w_derived in
            Printf.bprintf b "dnsv_window_served %d\n" d.Windows.d_served;
            Printf.bprintf b "dnsv_window_qps %.9g\n" d.Windows.d_qps;
            Printf.bprintf b "dnsv_window_p50_ms %.9g\n" d.Windows.d_p50_ms;
            Printf.bprintf b "dnsv_window_p90_ms %.9g\n" d.Windows.d_p90_ms;
            Printf.bprintf b "dnsv_window_p99_ms %.9g\n" d.Windows.d_p99_ms;
            Printf.bprintf b "dnsv_window_servfail_rate %.9g\n"
              d.Windows.d_servfail_rate));
    Buffer.contents b

  (* --- JSON --- *)

  let jstr s =
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b

  let num f = Printf.sprintf "%.12g" f

  let obj fields =
    "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields)
    ^ "}"

  let arr items = "[" ^ String.concat "," items ^ "]"

  let json_derived (d : Windows.derived) =
    [
      ("served", string_of_int d.Windows.d_served);
      ("qps", num d.Windows.d_qps);
      ("p50_ms", num d.Windows.d_p50_ms);
      ("p90_ms", num d.Windows.d_p90_ms);
      ("p99_ms", num d.Windows.d_p99_ms);
      ("servfail", string_of_int d.Windows.d_servfail);
      ("servfail_rate", num d.Windows.d_servfail_rate);
      ( "rcodes",
        obj (List.map (fun (k, v) -> (k, string_of_int v)) d.Windows.d_rcodes)
      );
      ( "reasons",
        obj (List.map (fun (k, v) -> (k, string_of_int v)) d.Windows.d_reasons)
      );
    ]

  let json ~identity ?windows (snap : Trace.Metrics.snapshot) =
    let counters =
      obj
        (List.map
           (fun (n, v) -> (n, string_of_int v))
           snap.Trace.Metrics.counters)
    in
    let hists =
      obj
        (List.filter_map
           (fun (n, (h : Trace.Metrics.hist)) ->
             if h.Trace.Metrics.h_count = 0 then None
             else
               let q p =
                 let lo, hi = Trace.Metrics.hist_quantile_bounds h p in
                 arr [ num lo; num hi ]
               in
               Some
                 ( n,
                   obj
                     [
                       ("count", string_of_int h.Trace.Metrics.h_count);
                       ("sum", num h.Trace.Metrics.h_sum);
                       ("p50", q 0.5);
                       ("p90", q 0.9);
                       ("p99", q 0.99);
                     ] ))
           snap.Trace.Metrics.hists)
    in
    let windows_json, alerts_total =
      match windows with
      | None -> (arr [], 0)
      | Some w ->
          ( arr
              (List.map
                 (fun (c : Windows.closed) ->
                   obj
                     ([
                        ("index", string_of_int c.Windows.w_index);
                        ("start", num c.Windows.w_start);
                        ("elapsed_s", num c.Windows.w_elapsed_s);
                      ]
                     @ json_derived c.Windows.w_derived
                     @ [
                         ( "alerts",
                           arr
                             (List.map
                                (fun (a : Windows.alert) ->
                                  obj
                                    [
                                      ("kind", jstr a.Windows.a_kind);
                                      ("value", num a.Windows.a_value);
                                      ("limit", num a.Windows.a_limit);
                                    ])
                                c.Windows.w_alerts) );
                       ]))
                 (Windows.closed w)),
            Windows.alerts_total w )
    in
    obj
      [
        ( "identity",
          obj
            [
              ("version", jstr identity.id_version);
              ("engine", jstr identity.id_engine);
              ("zone", jstr identity.id_zone);
            ] );
        ("counters", counters);
        ("histograms", hists);
        ("windows", windows_json);
        ("alerts_total", string_of_int alerts_total);
      ]
end

module Endpoint = struct
  (* The exposition must fit one UDP datagram; 60000 leaves headroom
     under the 65507-byte loopback limit. The registry is nowhere near
     this today; a truncated scrape is still well-formed Prometheus
     text up to the cut. *)
  let max_datagram = 60000

  type t = { e_fd : Unix.file_descr; e_port : int; e_buf : Bytes.t }

  let create ?(port = 0) () =
    let fd = Unix.socket PF_INET SOCK_DGRAM 0 in
    (try
       Unix.setsockopt fd SO_REUSEADDR true;
       Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    let bound =
      match Unix.getsockname fd with ADDR_INET (_, p) -> p | _ -> port
    in
    { e_fd = fd; e_port = bound; e_buf = Bytes.create 512 }

  let port t = t.e_port
  let fd t = t.e_fd

  let serve_request t ~respond =
    match Unix.recvfrom t.e_fd t.e_buf 0 (Bytes.length t.e_buf) [] with
    | exception Unix.Unix_error _ -> false
    | len, peer ->
        Trace.Metrics.incr scrapes_c;
        let req = Bytes.sub_string t.e_buf 0 len in
        let kind =
          if String.length req >= 4 && String.sub req 0 4 = "json" then `Json
          else `Text
        in
        let body =
          match respond kind with
          | s ->
              if String.length s > max_datagram then String.sub s 0 max_datagram
              else s
          | exception _ -> "# exposition failed\n"
        in
        (try
           ignore
             (Unix.sendto t.e_fd (Bytes.of_string body) 0 (String.length body)
                [] peer)
         with Unix.Unix_error _ -> ());
        true

  let close t = try Unix.close t.e_fd with Unix.Unix_error _ -> ()

  let scrape ?(timeout_s = 1.0) ~host ~port kind =
    match
      try Some (Unix.inet_addr_of_string host)
      with Failure _ -> (
        try Some (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found | Invalid_argument _ -> None)
    with
    | None -> Error (Printf.sprintf "cannot resolve %s" host)
    | Some addr -> (
        let fd = Unix.socket PF_INET SOCK_DGRAM 0 in
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            try
              Unix.connect fd (ADDR_INET (addr, port));
              let req = match kind with `Json -> "json" | `Text -> "metrics" in
              ignore (Unix.send fd (Bytes.of_string req) 0 (String.length req) []);
              match Unix.select [ fd ] [] [] timeout_s with
              | [], _, _ -> Error "stats endpoint did not answer (timeout)"
              | _ ->
                  let buf = Bytes.create 65536 in
                  let len = Unix.recv fd buf 0 (Bytes.length buf) [] in
                  Ok (Bytes.sub_string buf 0 len)
            with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)))
end
