module Layout = Dnstree.Layout

(* The four engine versions of the evaluation (§7, Tables 2 & 3), plus
   their corrected counterparts, and a concrete run harness.

   v1.0 is the base version; v2.0 rewrites the glue/additional handling;
   v3.0 adds SRV support; dev is the immediate iteration after v3.0 that
   fixes the wildcard-judgment bug — incompletely. *)

let v1_0 : Builder.config =
  {
    Builder.version = "1.0";
    has_srv = false;
    bugs =
      {
        Bugs.none with
        Bugs.bug1_missing_aa_on_nodata = true;
        bug2_extraneous_authority = true;
        bug3_mx_type_confusion = true;
      };
  }

let v2_0 : Builder.config =
  {
    Builder.version = "2.0";
    has_srv = false;
    bugs =
      {
        Bugs.none with
        Bugs.bug4_glue_first_only = true;
        bug5_wildcard_no_additional = true;
        bug6_wildcard_scan_shallow = true;
        bug7_glue_ignores_cuts = true;
      };
  }

let v3_0 : Builder.config =
  {
    Builder.version = "3.0";
    has_srv = true;
    bugs = { Bugs.none with Bugs.bug8_ent_wildcard_judgment = true };
  }

let dev : Builder.config =
  {
    Builder.version = "dev";
    has_srv = true;
    bugs = { Bugs.none with Bugs.bug9_stack_peek_nil = true };
  }

let all = [ v1_0; v2_0; v3_0; dev ]

(* The corrected variant: same features, no seeded bugs. *)
let fixed (cfg : Builder.config) : Builder.config =
  { cfg with Builder.version = cfg.Builder.version ^ "-fixed"; bugs = Bugs.none }

let find version =
  match List.find_opt (fun c -> c.Builder.version = version) all with
  | Some c -> Some c
  | None -> (
      match String.index_opt version '-' with
      | Some _ -> (
          let base = List.nth_opt (String.split_on_char '-' version) 0 in
          match base with
          | Some b ->
              Option.map fixed
                (List.find_opt (fun c -> c.Builder.version = b) all)
          | None -> None)
      | None -> None)

(* ------------------------------------------------------------------ *)
(* Concrete execution: run a compiled engine on a real query against a
   real zone. Used by the differential tests and by counterexample
   replay.                                                            *)
(* ------------------------------------------------------------------ *)

module Value = Minir.Value
module Message = Dns.Message
module Rr = Dns.Rr

type run_outcome =
  | Response of Message.response
  | Engine_panic of string

let run_compiled ?observer (prog : Minir.Instr.program)
    (enc : Dnstree.Encode.t) (q : Message.query) : run_outcome =
  let mem = enc.Dnstree.Encode.memory in
  let mem, resp_ptr = Dnstree.Encode.alloc_response mem in
  match Layout.encode_name enc.Dnstree.Encode.interner q.Message.qname with
  | exception Invalid_argument m -> Engine_panic ("encode: " ^ m)
  | _ -> (
      let mem, qname_ptr, qlen =
        Dnstree.Encode.alloc_qname enc mem q.Message.qname
      in
      let args =
        [
          Value.VPtr enc.Dnstree.Encode.root;
          Value.VPtr resp_ptr;
          Value.VPtr qname_ptr;
          Value.VInt qlen;
          Value.VInt (Rr.rtype_code q.Message.qtype);
        ]
      in
      match Minir.Interp.run ?observer prog ~memory:mem ~fn:"resolve" ~args with
      | Minir.Interp.Returned (_, mem') ->
          Response (Dnstree.Encode.decode_response enc mem' resp_ptr)
      | Minir.Interp.Panicked msg -> Engine_panic msg)

(* Convenience: compile (memoized per config), encode, run. The memo is
   domain-local so parallel pipeline workers never race on the table;
   each worker compiles a version at most once. *)
let compiled_cache_key : (string, Minir.Instr.program) Hashtbl.t Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let compiled (cfg : Builder.config) : Minir.Instr.program =
  let compiled_cache = Domain.DLS.get compiled_cache_key in
  match Hashtbl.find_opt compiled_cache cfg.Builder.version with
  | Some p -> p
  | None ->
      let p = Builder.compile cfg in
      Hashtbl.replace compiled_cache cfg.Builder.version p;
      p

let run ?observer (cfg : Builder.config) (zone : Dns.Zone.t)
    (q : Message.query) : run_outcome =
  let tree = Dnstree.Tree.build zone in
  let enc = Dnstree.Encode.encode tree in
  run_compiled ?observer (compiled cfg) enc q
