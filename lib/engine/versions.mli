
module Layout = Dnstree.Layout
val v1_0 : Builder.config
val v2_0 : Builder.config
val v3_0 : Builder.config
val dev : Builder.config
val all : Builder.config list
val fixed : Builder.config -> Builder.config
val find : string -> Builder.config option
module Value = Minir.Value
module Message = Dns.Message
module Rr = Dns.Rr
type run_outcome = Response of Message.response | Engine_panic of string
(* [observer] is forwarded to the concrete interpreter (fires at every
   block entry; used by the static-analysis soundness tests). *)
val run_compiled :
  ?observer:
    (string ->
    Minir.Instr.label ->
    (Minir.Instr.reg, Value.t) Hashtbl.t ->
    Value.memory ->
    unit) ->
  Minir.Instr.program -> Dnstree.Encode.t -> Message.query -> run_outcome
(* Compile memo, one table per domain (parallel workers never share). *)
val compiled_cache_key : (string, Minir.Instr.program) Hashtbl.t Domain.DLS.key
val compiled : Builder.config -> Minir.Instr.program
val run :
  ?observer:
    (string ->
    Minir.Instr.label ->
    (Minir.Instr.reg, Value.t) Hashtbl.t ->
    Value.memory ->
    unit) ->
  Builder.config -> Dns.Zone.t -> Message.query -> run_outcome
