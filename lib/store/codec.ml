(* Wire codecs for persisted verification artifacts: SMT terms, models,
   proof trees (PR 3 certificates) and module summaries.

   Hand-rolled prefix encoding (the repo deliberately has no serde
   dependency): integers are decimal + ';', strings are length ':'
   bytes, constructors are one-byte tags. Robustness discipline: the
   reader never trusts its input — any malformed byte raises [Bad],
   which store consumers treat exactly like a certificate-validation
   failure (evict, count, fall through to a fresh solve). Terms are
   rebuilt with the raw data constructors and hash-consed at the root,
   NOT through the smart constructors: smart constructors normalize, and
   a decoded certificate must mention the exact terms it was built
   over. *)

module Term = Smt.Term
module Model = Smt.Model
module Proof = Smt.Proof
module Sval = Symex.Sval
module Summary = Symex.Summary
module Value = Minir.Value
module Ty = Minir.Ty

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* ------------------------------------------------------------------ *)
(* Primitives                                                         *)
(* ------------------------------------------------------------------ *)

let wint b n =
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b ';'

let wstr b s =
  Buffer.add_string b (string_of_int (String.length s));
  Buffer.add_char b ':';
  Buffer.add_string b s

type reader = { src : string; mutable pos : int }

let reader src = { src; pos = 0 }
let at_end r = r.pos >= String.length r.src

let rbyte r =
  if at_end r then bad "unexpected end of payload";
  let c = r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let rint_until r stop =
  let start = r.pos in
  let len = String.length r.src in
  let i = ref r.pos in
  while !i < len && r.src.[!i] <> stop do
    incr i
  done;
  if !i >= len then bad "unterminated integer";
  let digits = String.sub r.src start (!i - start) in
  r.pos <- !i + 1;
  match int_of_string_opt digits with
  | Some n -> n
  | None -> bad "bad integer %S" digits

let rint r = rint_until r ';'

let rstr r =
  let n = rint_until r ':' in
  if n < 0 || r.pos + n > String.length r.src then bad "bad string length %d" n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

(* ------------------------------------------------------------------ *)
(* Terms                                                              *)
(* ------------------------------------------------------------------ *)

let rec wterm b (t : Term.t) =
  let tag c = Buffer.add_char b c in
  match t with
  | Term.True -> tag 'T'
  | Term.False -> tag 'F'
  | Term.Int_const n ->
      tag 'i';
      wint b n
  | Term.Var { name; sort } ->
      tag 'v';
      Buffer.add_char b (match sort with Term.Bool -> 'b' | Term.Int -> 'i');
      wstr b name
  | Term.Not t ->
      tag 'n';
      wterm b t
  | Term.And ts ->
      tag 'A';
      wint b (List.length ts);
      List.iter (wterm b) ts
  | Term.Or ts ->
      tag 'O';
      wint b (List.length ts);
      List.iter (wterm b) ts
  | Term.Implies (a, c) ->
      tag '>';
      wterm b a;
      wterm b c
  | Term.Iff (a, c) ->
      tag '?';
      wterm b a;
      wterm b c
  | Term.Ite (c, x, y) ->
      tag 'I';
      wterm b c;
      wterm b x;
      wterm b y
  | Term.Add ts ->
      tag 'P';
      wint b (List.length ts);
      List.iter (wterm b) ts
  | Term.Sub (a, c) ->
      tag 'S';
      wterm b a;
      wterm b c
  | Term.Neg t ->
      tag 'N';
      wterm b t
  | Term.Mul_const (k, t) ->
      tag 'M';
      wint b k;
      wterm b t
  | Term.Eq (a, c) ->
      tag 'e';
      wterm b a;
      wterm b c
  | Term.Le (a, c) ->
      tag 'l';
      wterm b a;
      wterm b c
  | Term.Lt (a, c) ->
      tag 'L';
      wterm b a;
      wterm b c

let rec rterm_raw r : Term.t =
  let rlist () =
    let n = rint r in
    if n < 0 || n > 1_000_000 then bad "bad list length %d" n;
    List.init n (fun _ -> rterm_raw r)
  in
  match rbyte r with
  | 'T' -> Term.True
  | 'F' -> Term.False
  | 'i' -> Term.Int_const (rint r)
  | 'v' ->
      let sort =
        match rbyte r with
        | 'b' -> Term.Bool
        | 'i' -> Term.Int
        | c -> bad "bad sort tag %C" c
      in
      Term.Var { name = rstr r; sort }
  | 'n' -> Term.Not (rterm_raw r)
  | 'A' -> Term.And (rlist ())
  | 'O' -> Term.Or (rlist ())
  | '>' ->
      let a = rterm_raw r in
      Term.Implies (a, rterm_raw r)
  | '?' ->
      let a = rterm_raw r in
      Term.Iff (a, rterm_raw r)
  | 'I' ->
      let c = rterm_raw r in
      let x = rterm_raw r in
      Term.Ite (c, x, rterm_raw r)
  | 'P' -> Term.Add (rlist ())
  | 'S' ->
      let a = rterm_raw r in
      Term.Sub (a, rterm_raw r)
  | 'N' -> Term.Neg (rterm_raw r)
  | 'M' ->
      let k = rint r in
      Term.Mul_const (k, rterm_raw r)
  | 'e' ->
      let a = rterm_raw r in
      Term.Eq (a, rterm_raw r)
  | 'l' ->
      let a = rterm_raw r in
      Term.Le (a, rterm_raw r)
  | 'L' ->
      let a = rterm_raw r in
      Term.Lt (a, rterm_raw r)
  | c -> bad "bad term tag %C" c

let rterm r = Term.hashcons (rterm_raw r)

(* Per-domain render memo: terms are hash-consed, so physical identity
   makes [Term.hash]/[Term.equal] O(1) keys, and store keys re-render
   the same obligation terms thousands of times per run. *)
module TH = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

let term_memo_key : string TH.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> TH.create 1024)

let term_memo_limit = 65_536

let term_to_string (t : Term.t) : string =
  let memo = Domain.DLS.get term_memo_key in
  match TH.find_opt memo t with
  | Some s -> s
  | None ->
      let b = Buffer.create 64 in
      wterm b t;
      let s = Buffer.contents b in
      if TH.length memo >= term_memo_limit then TH.reset memo;
      TH.add memo t s;
      s

let term_of_string s =
  let r = reader s in
  let t = rterm r in
  if not (at_end r) then bad "trailing bytes after term";
  t

(* ------------------------------------------------------------------ *)
(* Models and proofs                                                  *)
(* ------------------------------------------------------------------ *)

let wmodel b (m : Model.t) =
  let bs = Model.bindings m in
  wint b (List.length bs);
  List.iter
    (fun (name, v) ->
      wstr b name;
      match (v : Term.value) with
      | Term.VBool bv -> Buffer.add_string b (if bv then "b1" else "b0")
      | Term.VInt n ->
          Buffer.add_char b 'i';
          wint b n)
    bs

let rmodel r : Model.t =
  let n = rint r in
  if n < 0 || n > 1_000_000 then bad "bad model size %d" n;
  let m = ref Model.empty in
  for _ = 1 to n do
    let name = rstr r in
    (match rbyte r with
    | 'b' -> (
        match rbyte r with
        | '1' -> m := Model.add_bool name true !m
        | '0' -> m := Model.add_bool name false !m
        | c -> bad "bad bool value %C" c)
    | 'i' -> m := Model.add_int name (rint r) !m
    | c -> bad "bad value tag %C" c)
  done;
  !m

let rec wtree b (t : Proof.tree) =
  match t with
  | Proof.Split { atom; if_true; if_false } ->
      Buffer.add_char b 'S';
      wterm b atom;
      wtree b if_true;
      wtree b if_false
  | Proof.Split_neq { neq; le1; ge1; left; right } ->
      Buffer.add_char b 'Q';
      wterm b neq;
      wterm b le1;
      wterm b ge1;
      wtree b left;
      wtree b right
  | Proof.Bool_leaf -> Buffer.add_char b 'B'
  | Proof.Farkas steps ->
      Buffer.add_char b 'F';
      wint b (List.length steps);
      List.iter
        (fun (s : Proof.step) ->
          wterm b s.Proof.fact;
          wint b s.Proof.lam.Proof.pnum;
          wint b s.Proof.lam.Proof.pden)
        steps

let rec rtree r : Proof.tree =
  match rbyte r with
  | 'S' ->
      let atom = rterm_raw r in
      let if_true = rtree r in
      let if_false = rtree r in
      Proof.Split { atom; if_true; if_false }
  | 'Q' ->
      let neq = rterm_raw r in
      let le1 = rterm_raw r in
      let ge1 = rterm_raw r in
      let left = rtree r in
      let right = rtree r in
      Proof.Split_neq { neq; le1; ge1; left; right }
  | 'B' -> Proof.Bool_leaf
  | 'F' ->
      let n = rint r in
      if n < 0 || n > 1_000_000 then bad "bad step count %d" n;
      Proof.Farkas
        (List.init n (fun _ ->
             let fact = Term.hashcons (rterm_raw r) in
             let pnum = rint r in
             let pden = rint r in
             { Proof.fact; lam = Proof.coeff_of_ints pnum pden }))
  | c -> bad "bad tree tag %C" c

(* Hash-cons every term inside a decoded tree: certificate validation
   compares facts against the asserted terms. *)
let rec hashcons_tree (t : Proof.tree) : Proof.tree =
  match t with
  | Proof.Split { atom; if_true; if_false } ->
      Proof.Split
        {
          atom = Term.hashcons atom;
          if_true = hashcons_tree if_true;
          if_false = hashcons_tree if_false;
        }
  | Proof.Split_neq { neq; le1; ge1; left; right } ->
      Proof.Split_neq
        {
          neq = Term.hashcons neq;
          le1 = Term.hashcons le1;
          ge1 = Term.hashcons ge1;
          left = hashcons_tree left;
          right = hashcons_tree right;
        }
  | Proof.Bool_leaf -> Proof.Bool_leaf
  | Proof.Farkas steps -> Proof.Farkas steps

let proof_to_string (p : Proof.t) : string =
  let b = Buffer.create 256 in
  (match p with
  | Proof.Model_witness m ->
      Buffer.add_char b 'M';
      wmodel b m
  | Proof.Unsat_witness t ->
      Buffer.add_char b 'U';
      wtree b t);
  Buffer.contents b

let proof_of_string s : Proof.t =
  let r = reader s in
  let p =
    match rbyte r with
    | 'M' -> Proof.Model_witness (rmodel r)
    | 'U' -> Proof.Unsat_witness (hashcons_tree (rtree r))
    | c -> bad "bad proof tag %C" c
  in
  if not (at_end r) then bad "trailing bytes after proof";
  p

(* ------------------------------------------------------------------ *)
(* Summaries                                                          *)
(* ------------------------------------------------------------------ *)

let wptr b (p : Value.ptr) =
  wint b p.Value.block;
  wint b (List.length p.Value.path);
  List.iter (wint b) p.Value.path

let rptr r : Value.ptr =
  let block = rint r in
  let n = rint r in
  if n < 0 || n > 100_000 then bad "bad path length %d" n;
  { Value.block; path = List.init n (fun _ -> rint r) }

let wsval b (v : Sval.sval) =
  match v with
  | Sval.SInt t ->
      Buffer.add_char b 'i';
      wterm b t
  | Sval.SBool t ->
      Buffer.add_char b 'b';
      wterm b t
  | Sval.SPtr p ->
      Buffer.add_char b 'p';
      wptr b p
  | Sval.SNull -> Buffer.add_char b '0'
  | Sval.SUnit -> Buffer.add_char b 'u'

let rsval r : Sval.sval =
  match rbyte r with
  | 'i' -> Sval.SInt (rterm r)
  | 'b' -> Sval.SBool (rterm r)
  | 'p' -> Sval.SPtr (rptr r)
  | '0' -> Sval.SNull
  | 'u' -> Sval.SUnit
  | c -> bad "bad sval tag %C" c

let rec wscell b (c : Sval.scell) =
  match c with
  | Sval.CInt t ->
      Buffer.add_char b 'I';
      wterm b t
  | Sval.CBool t ->
      Buffer.add_char b 'B';
      wterm b t
  | Sval.CPtr p ->
      Buffer.add_char b 'P';
      wptr b p
  | Sval.CNull -> Buffer.add_char b 'N'
  | Sval.CStruct cs ->
      Buffer.add_char b 'S';
      wint b (Array.length cs);
      Array.iter (wscell b) cs
  | Sval.CArray cs ->
      Buffer.add_char b 'A';
      wint b (Array.length cs);
      Array.iter (wscell b) cs

let rec rscell r : Sval.scell =
  match rbyte r with
  | 'I' -> Sval.CInt (rterm r)
  | 'B' -> Sval.CBool (rterm r)
  | 'P' -> Sval.CPtr (rptr r)
  | 'N' -> Sval.CNull
  | 'S' ->
      let n = rint r in
      if n < 0 || n > 100_000 then bad "bad struct arity %d" n;
      Sval.CStruct (Array.init n (fun _ -> rscell r))
  | 'A' ->
      let n = rint r in
      if n < 0 || n > 100_000 then bad "bad array arity %d" n;
      Sval.CArray (Array.init n (fun _ -> rscell r))
  | c -> bad "bad scell tag %C" c

let summary_to_string (s : Summary.t) : string =
  let b = Buffer.create 1024 in
  wstr b s.Summary.fn;
  wint b s.Summary.canon_next_block;
  wint b (List.length s.Summary.cases);
  List.iter
    (fun (c : Summary.case) ->
      wint b (List.length c.Summary.cond);
      List.iter (wterm b) c.Summary.cond;
      wint b (List.length c.Summary.writes);
      List.iter
        (fun (w : Summary.write) ->
          wint b w.Summary.w_block;
          wint b (List.length w.Summary.w_path);
          List.iter (wint b) w.Summary.w_path;
          wscell b w.Summary.w_cell)
        c.Summary.writes;
      wint b (List.length c.Summary.allocs);
      List.iter
        (fun (blk, cell) ->
          wint b blk;
          wscell b cell)
        c.Summary.allocs;
      match c.Summary.outcome with
      | Summary.Ret None -> Buffer.add_string b "rn"
      | Summary.Ret (Some v) ->
          Buffer.add_string b "rs";
          wsval b v
      | Summary.Panic msg ->
          Buffer.add_char b 'p';
          wstr b msg)
    s.Summary.cases;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Relational function summaries (the analysis layer's "A|" entries)  *)
(* ------------------------------------------------------------------ *)

let rec wty b (t : Ty.t) =
  match t with
  | Ty.I1 -> Buffer.add_char b '1'
  | Ty.I64 -> Buffer.add_char b '8'
  | Ty.Opaque_ptr -> Buffer.add_char b 'O'
  | Ty.Ptr t ->
      Buffer.add_char b 'P';
      wty b t
  | Ty.Struct name ->
      Buffer.add_char b 'S';
      wstr b name
  | Ty.Array (t, n) ->
      Buffer.add_char b 'A';
      wint b n;
      wty b t

let rec rty r : Ty.t =
  match rbyte r with
  | '1' -> Ty.I1
  | '8' -> Ty.I64
  | 'O' -> Ty.Opaque_ptr
  | 'P' -> Ty.Ptr (rty r)
  | 'S' -> Ty.Struct (rstr r)
  | 'A' ->
      let n = rint r in
      if n < 0 || n > 1_000_000 then bad "bad array size %d" n;
      Ty.Array (rty r, n)
  | c -> bad "bad type tag %C" c

let wbound b = function
  | None -> Buffer.add_char b 'n'
  | Some v ->
      Buffer.add_char b 's';
      wint b v

let rbound r =
  match rbyte r with
  | 'n' -> None
  | 's' -> Some (rint r)
  | c -> bad "bad bound tag %C" c

let winterval b (itv : Analysis.Interval.t) =
  match itv with
  | Analysis.Interval.Bot -> Buffer.add_char b 'B'
  | Analysis.Interval.I (lo, hi) ->
      Buffer.add_char b 'I';
      wbound b lo;
      wbound b hi

let rinterval r : Analysis.Interval.t =
  match rbyte r with
  | 'B' -> Analysis.Interval.Bot
  | 'I' ->
      let lo = rbound r in
      Analysis.Interval.I (lo, rbound r)
  | c -> bad "bad interval tag %C" c

let waval b (a : Analysis.aval) =
  match a with
  | Analysis.ATop -> Buffer.add_char b 'T'
  | Analysis.AInt itv ->
      Buffer.add_char b 'i';
      winterval b itv
  | Analysis.ABool t ->
      Buffer.add_char b 'b';
      Buffer.add_char b
        (match t with
        | Analysis.Tribool.TBot -> '0'
        | Analysis.Tribool.TT -> 't'
        | Analysis.Tribool.TF -> 'f'
        | Analysis.Tribool.TTop -> '*')
  | Analysis.APtr n ->
      Buffer.add_char b 'p';
      Buffer.add_char b
        (match n with
        | Analysis.Nullness.NBot -> '0'
        | Analysis.Nullness.NNull -> 'n'
        | Analysis.Nullness.NNot -> '!'
        | Analysis.Nullness.NTop -> '*')

let raval r : Analysis.aval =
  match rbyte r with
  | 'T' -> Analysis.ATop
  | 'i' -> Analysis.AInt (rinterval r)
  | 'b' ->
      Analysis.ABool
        (match rbyte r with
        | '0' -> Analysis.Tribool.TBot
        | 't' -> Analysis.Tribool.TT
        | 'f' -> Analysis.Tribool.TF
        | '*' -> Analysis.Tribool.TTop
        | c -> bad "bad tribool tag %C" c)
  | 'p' ->
      Analysis.APtr
        (match rbyte r with
        | '0' -> Analysis.Nullness.NBot
        | 'n' -> Analysis.Nullness.NNull
        | '!' -> Analysis.Nullness.NNot
        | '*' -> Analysis.Nullness.NTop
        | c -> bad "bad nullness tag %C" c)
  | c -> bad "bad aval tag %C" c

let wbool b v = Buffer.add_char b (if v then '1' else '0')

let rbool r =
  match rbyte r with
  | '1' -> true
  | '0' -> false
  | c -> bad "bad bool tag %C" c

let rsummary_to_string (rs : Analysis.rsummary) : string =
  let b = Buffer.create 256 in
  wstr b rs.Analysis.rs_fn;
  wint b (List.length rs.Analysis.rs_params);
  List.iter
    (fun (name, ty) ->
      wstr b name;
      wty b ty)
    rs.Analysis.rs_params;
  (match rs.Analysis.rs_ret_ty with
  | None -> Buffer.add_char b 'n'
  | Some t ->
      Buffer.add_char b 's';
      wty b t);
  waval b rs.Analysis.rs_ret;
  wint b (List.length rs.Analysis.rs_rel);
  List.iter
    (fun (i, itv) ->
      wint b i;
      winterval b itv)
    rs.Analysis.rs_rel;
  wint b (List.length rs.Analysis.rs_pre);
  List.iter
    (fun (i, a) ->
      wint b i;
      waval b a)
    rs.Analysis.rs_pre;
  wbool b rs.Analysis.rs_pure;
  wbool b rs.Analysis.rs_may_panic;
  wbool b rs.Analysis.rs_returns;
  Buffer.contents b

let rsummary_of_string str : Analysis.rsummary =
  let r = reader str in
  let rs_fn = rstr r in
  let nparams = rint r in
  if nparams < 0 || nparams > 10_000 then bad "bad param count %d" nparams;
  let rs_params =
    List.init nparams (fun _ ->
        let name = rstr r in
        (name, rty r))
  in
  let rs_ret_ty =
    match rbyte r with
    | 'n' -> None
    | 's' -> Some (rty r)
    | c -> bad "bad ret-ty tag %C" c
  in
  let rs_ret = raval r in
  let nrel = rint r in
  if nrel < 0 || nrel > 10_000 then bad "bad rel count %d" nrel;
  let rs_rel =
    List.init nrel (fun _ ->
        let i = rint r in
        (i, rinterval r))
  in
  let npre = rint r in
  if npre < 0 || npre > 10_000 then bad "bad pre count %d" npre;
  let rs_pre =
    List.init npre (fun _ ->
        let i = rint r in
        (i, raval r))
  in
  let rs_pure = rbool r in
  let rs_may_panic = rbool r in
  let rs_returns = rbool r in
  if not (at_end r) then bad "trailing bytes after rsummary";
  {
    Analysis.rs_fn;
    rs_params;
    rs_ret_ty;
    rs_ret;
    rs_rel;
    rs_pre;
    rs_pure;
    rs_may_panic;
    rs_returns;
  }

let summary_of_string str : Summary.t =
  let r = reader str in
  let fn = rstr r in
  let canon_next_block = rint r in
  let ncases = rint r in
  if ncases < 0 || ncases > 1_000_000 then bad "bad case count %d" ncases;
  let cases =
    List.init ncases (fun _ ->
        let ncond = rint r in
        if ncond < 0 || ncond > 1_000_000 then bad "bad cond count %d" ncond;
        let cond = List.init ncond (fun _ -> rterm r) in
        let nwrites = rint r in
        if nwrites < 0 || nwrites > 1_000_000 then
          bad "bad write count %d" nwrites;
        let writes =
          List.init nwrites (fun _ ->
              let w_block = rint r in
              let np = rint r in
              if np < 0 || np > 100_000 then bad "bad write path %d" np;
              let w_path = List.init np (fun _ -> rint r) in
              { Summary.w_block; w_path; w_cell = rscell r })
        in
        let nallocs = rint r in
        if nallocs < 0 || nallocs > 1_000_000 then
          bad "bad alloc count %d" nallocs;
        let allocs =
          List.init nallocs (fun _ ->
              let blk = rint r in
              (blk, rscell r))
        in
        let outcome =
          match rbyte r with
          | 'r' -> (
              match rbyte r with
              | 'n' -> Summary.Ret None
              | 's' -> Summary.Ret (Some (rsval r))
              | c -> bad "bad ret tag %C" c)
          | 'p' -> Summary.Panic (rstr r)
          | c -> bad "bad outcome tag %C" c
        in
        { Summary.cond; writes; allocs; outcome })
  in
  if not (at_end r) then bad "trailing bytes after summary";
  (* [elapsed] is wall time, not semantics: a replayed summary cost
     nothing to build. *)
  { Summary.fn; cases; canon_next_block; elapsed = 0.0 }
