(* Crash-safe, certificate-guarded persistent verification store
   (ISSUE 6 tentpole).

   On-disk format: PR 3's CRC-framed append-only discipline — each
   frame is magic "DS01" + be32 length + be32 CRC-32 + payload. The
   first frame is a header naming the format ("dnsv-store v1 fmt=1");
   every later frame is an entry: a key (prefix-tagged content hash)
   and an opaque payload. Appends are flushed before returning, so a
   kill at any instant loses at most the entry in flight; opening as a
   writer truncates any torn tail, exactly like the batch journal. Later
   frames win on duplicate keys, so a re-solved entry supersedes its
   predecessor and [gc] compacts to the live set with an atomic
   tmp+rename.

   Trust discipline: the store never decides anything. A served solver
   entry is re-validated against its PR 3 certificate before it leaves
   [solver_persist] (and again by the solver's own gatekeeper); a served
   summary is re-validated structurally. Any failure — torn write, bit
   rot, version skew, codec mismatch — counts [store.cert_failures],
   evicts the entry and falls through to a fresh solve: a corrupted
   store can cost time, never truth.

   Concurrency: one writer per directory, enforced by a pid lock file
   with stale-lock breaking; every other opener (and any opener under
   the [Store_lock_held] fault) degrades to read-only rather than
   corrupt. In-process, the index is shared across domains under a
   mutex; payloads are immutable strings, decoded on the consuming
   domain so terms land in that domain's hash-cons tables. *)

module Codec = Codec
module Fingerprint = Fingerprint
module Solver = Smt.Solver
module Term = Smt.Term
module Proof = Smt.Proof
module Summary = Symex.Summary
module M = Trace.Metrics

let c_hits = M.counter "store.hits"
let c_misses = M.counter "store.misses"
let c_evictions = M.counter "store.evictions"
let c_cert_failures = M.counter "store.cert_failures"
let c_appends = M.counter "store.appends"

let magic = "DS01"
let header_string = "dnsv-store v1 fmt=1"
let data_name = "store.data"
let lock_name = "store.lock"

(* ------------------------------------------------------------------ *)
(* Frames                                                             *)
(* ------------------------------------------------------------------ *)

let add_be32 b n =
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (n land 0xFF))

let read_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let crc s = Int32.to_int (Journal.crc32 s) land 0xFFFFFFFF

let frame payload =
  let b = Buffer.create (String.length payload + 12) in
  Buffer.add_string b magic;
  add_be32 b (String.length payload);
  add_be32 b (crc payload);
  Buffer.add_string b payload;
  Buffer.contents b

let header_frame () =
  let b = Buffer.create 32 in
  Buffer.add_char b 'H';
  Buffer.add_string b header_string;
  frame (Buffer.contents b)

let entry_frame key value =
  let b = Buffer.create (String.length key + String.length value + 16) in
  Buffer.add_char b 'E';
  Codec.wstr b key;
  Codec.wstr b value;
  frame (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Scanning                                                           *)
(* ------------------------------------------------------------------ *)

type scan = {
  s_header : string option; (* intact first-frame header, if any *)
  s_entries : (string * string) list; (* in file order *)
  s_good_end : int; (* offset of the first bad byte (or EOF) *)
  s_size : int;
}

let parse_payload payload =
  if String.length payload = 0 then None
  else
    match payload.[0] with
    | 'H' -> Some (`Header (String.sub payload 1 (String.length payload - 1)))
    | 'E' -> (
        let r = Codec.reader (String.sub payload 1 (String.length payload - 1)) in
        match
          let k = Codec.rstr r in
          let v = Codec.rstr r in
          (k, v, Codec.at_end r)
        with
        | k, v, true -> Some (`Entry (k, v))
        | _, _, false -> None
        | exception Codec.Bad _ -> None)
    | _ -> None

let scan_file path : scan option =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> None
  | data ->
      let size = String.length data in
      let header = ref None and entries = ref [] in
      let pos = ref 0 and ok = ref true in
      while !ok && !pos + 12 <= size do
        if String.sub data !pos 4 <> magic then ok := false
        else begin
          let len = read_be32 data (!pos + 4) in
          let sum = read_be32 data (!pos + 8) in
          if len < 0 || !pos + 12 + len > size then ok := false
          else begin
            let payload = String.sub data (!pos + 12) len in
            if crc payload <> sum then ok := false
            else
              match parse_payload payload with
              | Some (`Header h) when !pos = 0 ->
                  header := Some h;
                  pos := !pos + 12 + len
              | Some (`Entry (k, v)) when !header <> None ->
                  entries := (k, v) :: !entries;
                  pos := !pos + 12 + len
              | _ -> ok := false
          end
        end
      done;
      Some
        {
          s_header = !header;
          s_entries = List.rev !entries;
          s_good_end = !pos;
          s_size = size;
        }

(* ------------------------------------------------------------------ *)
(* The lock file                                                      *)
(* ------------------------------------------------------------------ *)

(* Single-writer exclusion with stale-lock breaking: the lock file
   holds the owner's pid; a lock whose pid no longer exists (ESRCH) is
   broken. A held lock — including one held by this very process — means
   this opener degrades to read-only. *)
let acquire_lock lock_path =
  let create () =
    match
      Unix.openfile lock_path [ Unix.O_CREAT; Unix.O_EXCL; Unix.O_WRONLY ] 0o644
    with
    | fd ->
        let pid = string_of_int (Unix.getpid ()) in
        ignore (Unix.write_substring fd pid 0 (String.length pid));
        Unix.close fd;
        true
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false
  in
  create ()
  ||
  let stale =
    match In_channel.with_open_text lock_path In_channel.input_all with
    | exception Sys_error _ -> true
    | s -> (
        match int_of_string_opt (String.trim s) with
        | None -> true
        | Some pid -> (
            match Unix.kill pid 0 with
            | () -> false
            | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
            | exception _ -> false))
  in
  stale
  && begin
       (try Unix.unlink lock_path with Unix.Unix_error (_, _, _) -> ());
       create ()
     end

(* ------------------------------------------------------------------ *)
(* The store                                                          *)
(* ------------------------------------------------------------------ *)

type t = {
  dir : string;
  data_path : string;
  lock_path : string;
  mutable chan : out_channel option; (* None: read-only *)
  owns_lock : bool;
  index : (string, string) Hashtbl.t;
  mu : Mutex.t;
  mutable dropped_bytes : int; (* torn tail truncated on open *)
  loaded : int; (* entries salvaged on open *)
}

let with_mu st f =
  Mutex.lock st.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mu) f

let dir st = st.dir
let writable st = st.chan <> None
let dropped_bytes st = st.dropped_bytes
let loaded st = st.loaded
let entries st = with_mu st (fun () -> Hashtbl.length st.index)

(* Domain-local memo of already parsed-and-validated solver answers,
   keyed by directory + entry key. The LIA path cannot re-insert a
   term-level certificate into its index-based in-memory table, so
   without this every repeat of a hot query would re-parse and
   re-validate; with it, repeats are one hashtable probe. Only entries
   that passed validation enter. *)
let serve_memo_key :
    (string, Solver.result * Proof.t option) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let serve_memo_limit = 1 lsl 16

let clear_domain_memos () = Hashtbl.reset (Domain.DLS.get serve_memo_key)

let open_ ?(read_only = false) dirname : t =
  (try Unix.mkdir dirname 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  clear_domain_memos ();
  let data_path = Filename.concat dirname data_name in
  let lock_path = Filename.concat dirname lock_name in
  let lock_fault = Faultinject.fire Faultinject.Store_lock_held in
  let owns_lock =
    (not read_only) && (not lock_fault) && acquire_lock lock_path
  in
  if (not read_only) && not owns_lock then
    Trace.event "store.read_only"
      ~attrs:
        [ ("dir", dirname); ("why", if lock_fault then "fault" else "lock") ];
  let index = Hashtbl.create 1024 in
  let dropped = ref 0 in
  let need_header = ref true in
  (match scan_file data_path with
  | None -> ()
  | Some sc -> (
      match sc.s_header with
      | Some h when h = header_string ->
          need_header := false;
          List.iter (fun (k, v) -> Hashtbl.replace index k v) sc.s_entries;
          if sc.s_good_end < sc.s_size then begin
            dropped := sc.s_size - sc.s_good_end;
            if owns_lock then Unix.truncate data_path sc.s_good_end
          end
      | Some _ | None ->
          (* No intact matching header: format/version skew or a file
             torn inside its first frame. Unusable — a writer resets it,
             a reader serves nothing. *)
          dropped := sc.s_size;
          if owns_lock then Unix.truncate data_path 0));
  let chan =
    if owns_lock then begin
      let ch =
        open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 data_path
      in
      if !need_header then begin
        output_string ch (header_frame ());
        flush ch
      end;
      Some ch
    end
    else None
  in
  {
    dir = dirname;
    data_path;
    lock_path;
    chan;
    owns_lock;
    index;
    mu = Mutex.create ();
    dropped_bytes = !dropped;
    loaded = Hashtbl.length index;
  }

let close st =
  with_mu st (fun () ->
      (match st.chan with
      | Some ch ->
          flush ch;
          close_out ch;
          st.chan <- None
      | None -> ());
      if st.owns_lock then
        try Unix.unlink st.lock_path with Unix.Unix_error _ -> ());
  clear_domain_memos ()

(* Look a key up. Consults the fault plan: [Store_stale] turns the
   lookup into a miss; [Store_corrupt] hands back a deterministically
   byte-flipped copy of the payload on a hit (the index itself stays
   intact — the consumer's validation failure evicts it). *)
let find st key : string option =
  if Faultinject.fire Faultinject.Store_stale then begin
    M.incr c_misses;
    None
  end
  else
    match with_mu st (fun () -> Hashtbl.find_opt st.index key) with
    | None ->
        M.incr c_misses;
        None
    | Some payload ->
        M.incr c_hits;
        let payload =
          if
            Faultinject.fire Faultinject.Store_corrupt
            && String.length payload > 0
          then begin
            let b = Bytes.of_string payload in
            let i = Bytes.length b / 2 in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
            Bytes.to_string b
          end
          else payload
        in
        Some payload

(* Record an entry: replace in the index and append a flushed frame.
   Read-only stores drop the write on the floor (degrade, don't fail). *)
let add st key payload =
  with_mu st (fun () ->
      match st.chan with
      | None -> ()
      | Some ch ->
          Hashtbl.replace st.index key payload;
          output_string ch (entry_frame key payload);
          flush ch;
          M.incr c_appends)

let evict ?(cert_failure = false) st key =
  with_mu st (fun () ->
      if Hashtbl.mem st.index key then begin
        Hashtbl.remove st.index key;
        M.incr c_evictions
      end);
  if cert_failure then begin
    M.incr c_cert_failures;
    Trace.event "store.cert_failure" ~attrs:[ ("key", key) ]
  end

(* Compact to the live set: header + every current entry (sorted by
   key, so two compactions of the same index are byte-identical),
   written to a tmp file and renamed over the data file. *)
let gc st : (int, string) result =
  with_mu st (fun () ->
      match st.chan with
      | None -> Error "store is read-only"
      | Some ch ->
          flush ch;
          close_out ch;
          st.chan <- None;
          let tmp = st.data_path ^ ".tmp" in
          let oc = open_out_bin tmp in
          output_string oc (header_frame ());
          let live =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.index []
            |> List.sort compare
          in
          List.iter (fun (k, v) -> output_string oc (entry_frame k v)) live;
          flush oc;
          close_out oc;
          Sys.rename tmp st.data_path;
          st.chan <-
            Some
              (open_out_gen
                 [ Open_append; Open_creat; Open_binary ]
                 0o644 st.data_path);
          Ok (List.length live))

(* ------------------------------------------------------------------ *)
(* Keys                                                               *)
(* ------------------------------------------------------------------ *)

let md5 s = Digest.to_hex (Digest.string s)

(* Solver entries: the key is a digest of the canonical term list — the
   key IS the query, so the stored certificate is term-level. *)
let solver_key (ts : Term.t list) : string =
  let b = Buffer.create 256 in
  List.iter
    (fun t ->
      Buffer.add_string b (Codec.term_to_string t);
      Buffer.add_char b '&')
    ts;
  "S|" ^ md5 (Buffer.contents b)

(* Summary entries: cone fingerprint of the summarized function (any
   edit in its call cone invalidates) + a digest of the workload tag
   (zone fingerprint, analysis policy — both shape summaries) and the
   canonical call-shape key. *)
let summary_key ~cone ~tag ~shape : string =
  "M|" ^ cone ^ "|" ^ md5 (tag ^ "\x00" ^ shape)

(* Derived-report entries (layer/query verdicts, keyed by the caller):
   [prefix] is one uppercase letter. *)
let derived_key ~prefix ~parts : string =
  prefix ^ "|" ^ md5 (String.concat "\x00" parts)

(* ------------------------------------------------------------------ *)
(* The solver hook                                                    *)
(* ------------------------------------------------------------------ *)

let memo_key_of st key = st.dir ^ "\x00" ^ key

(* Serve nothing unverifiable: the hook is inert unless certification
   is on and a validator is installed, so every served answer has had
   its certificate checked — here, and again by the solver's own
   gatekeeper on the way out. *)
let solver_persist st : Solver.persist =
  let p_lookup ts =
    if not (Solver.certify_enabled ()) then None
    else
      match Proof.validator () with
      | None -> None
      | Some v -> (
          let key = solver_key ts in
          let memo = Domain.DLS.get serve_memo_key in
          let mkey = memo_key_of st key in
          match Hashtbl.find_opt memo mkey with
          | Some rp -> Some rp
          | None -> (
              match find st key with
              | None -> None
              | Some payload -> (
                  let serve rp =
                    if Hashtbl.length memo >= serve_memo_limit then
                      Hashtbl.reset memo;
                    Hashtbl.add memo mkey rp;
                    Some rp
                  in
                  let fail why =
                    evict ~cert_failure:true st key;
                    Trace.event "store.invalid"
                      ~attrs:[ ("key", key); ("why", why) ];
                    None
                  in
                  match Codec.proof_of_string payload with
                  | exception Codec.Bad why -> fail why
                  | Proof.Model_witness m as p -> (
                      match v.Proof.validate_sat ts m with
                      | Proof.Valid -> serve (Solver.Sat m, Some p)
                      | Proof.Invalid why -> fail why)
                  | Proof.Unsat_witness tree as p -> (
                      match v.Proof.validate_unsat ts tree with
                      | Proof.Valid -> serve (Solver.Unsat, Some p)
                      | Proof.Invalid why -> fail why))))
  in
  let p_save ts (r, proof) =
    match (r, proof) with
    | Solver.Sat _, Some (Proof.Model_witness _ as p)
    | Solver.Unsat, Some (Proof.Unsat_witness _ as p) ->
        add st (solver_key ts) (Codec.proof_to_string p)
    | _ -> ()
  in
  { Solver.p_lookup; p_save }

(* Install the solver hook around [f], restoring whatever was installed
   before (nesting-safe; concurrent installers last-write-win on the
   shared atomic, converging to a valid hook either way). *)
let with_solver st f =
  let prev = Solver.persist_installed () in
  Solver.set_persist (Some (solver_persist st));
  Fun.protect ~finally:(fun () -> Solver.set_persist prev) f

(* ------------------------------------------------------------------ *)
(* The summary hook                                                   *)
(* ------------------------------------------------------------------ *)

(* [cone_of fn] must give the cone fingerprint of [fn] in the program
   being verified; [tag] names everything else a summary depends on
   (zone fingerprint, analysis policy). *)
let summary_persist st ~cone_of ~tag : Summary.persist =
  let sp_load ~fn ~key =
    let skey = summary_key ~cone:(cone_of fn) ~tag ~shape:key in
    match find st skey with
    | None -> None
    | Some payload -> (
        let fail why =
          evict ~cert_failure:true st skey;
          Trace.event "store.invalid" ~attrs:[ ("key", skey); ("why", why) ];
          None
        in
        match Codec.summary_of_string payload with
        | exception Codec.Bad why -> fail why
        | s -> (
            if s.Summary.fn <> fn then fail "summary names another function"
            else
              match Summary.validate s with
              | Ok () -> Some s
              | Error why -> fail why))
  in
  let sp_save ~fn ~key s =
    add st (summary_key ~cone:(cone_of fn) ~tag ~shape:key)
      (Codec.summary_to_string s)
  in
  { Summary.sp_load; sp_save }

(* ------------------------------------------------------------------ *)
(* The interprocedural-analysis hook                                  *)
(* ------------------------------------------------------------------ *)

(* Relational function summaries ("A|" entries). Keyed by the cone
   fingerprint of the summarized function — alpha-equivalent functions
   share, any call-cone edit invalidates exactly its dependents — plus
   a digest of the environment fingerprint (the filtered field
   invariants the analysis ran under: a store added *anywhere* can drop
   an invariant and change a summary without touching this cone). *)
let analysis_key ~cone ~envfp : string =
  "A|" ^ cone ^ "|" ^ md5 ("ipsum-v1\x00" ^ envfp)

(* Same serve-nothing-unverifiable discipline as the other hooks: a
   loaded summary must decode, name the requested function, and match
   its live signature (checked by the analysis via
   [Analysis.rsummary_matches] after load) — anything else is evicted
   as a certificate failure and recomputed, never trusted. *)
let analysis_persist st ~cone_of : Analysis.ip_persist =
  let ipp_load ~envfp fn =
    let akey = analysis_key ~cone:(cone_of fn) ~envfp in
    match find st akey with
    | None -> None
    | Some payload -> (
        let fail why =
          evict ~cert_failure:true st akey;
          Trace.event "store.invalid" ~attrs:[ ("key", akey); ("why", why) ];
          None
        in
        match Codec.rsummary_of_string payload with
        | exception Codec.Bad why -> fail why
        | rs ->
            if rs.Analysis.rs_fn <> fn then
              fail "rsummary names another function"
            else Some rs)
  in
  let ipp_save ~envfp fn rs =
    add st (analysis_key ~cone:(cone_of fn) ~envfp)
      (Codec.rsummary_to_string rs)
  in
  { Analysis.ipp_load; ipp_save }

(* Install the analysis hook around [f], restoring the previous hook
   (nesting-safe, same shape as [with_solver]). *)
let with_analysis st ~cone_of f =
  let prev = Analysis.ip_persist_installed () in
  Analysis.set_ip_persist (Some (analysis_persist st ~cone_of));
  Fun.protect ~finally:(fun () -> Analysis.set_ip_persist prev) f

(* ------------------------------------------------------------------ *)
(* Offline tools: stat and fsck                                       *)
(* ------------------------------------------------------------------ *)

type stat_report = {
  st_header_ok : bool;
  st_total : int; (* live entries (later frames win) *)
  st_by_prefix : (string * int) list; (* key prefix -> live count *)
  st_bytes : int;
  st_torn_bytes : int;
}

let prefix_of key =
  match String.index_opt key '|' with
  | Some i -> String.sub key 0 i
  | None -> "?"

let stat dirname : stat_report =
  let data_path = Filename.concat dirname data_name in
  match scan_file data_path with
  | None ->
      {
        st_header_ok = false;
        st_total = 0;
        st_by_prefix = [];
        st_bytes = 0;
        st_torn_bytes = 0;
      }
  | Some sc ->
      let live = Hashtbl.create 256 in
      List.iter (fun (k, v) -> Hashtbl.replace live k v) sc.s_entries;
      let by_prefix = Hashtbl.create 8 in
      Hashtbl.iter
        (fun k _ ->
          let p = prefix_of k in
          Hashtbl.replace by_prefix p
            (1 + Option.value ~default:0 (Hashtbl.find_opt by_prefix p)))
        live;
      {
        st_header_ok = sc.s_header = Some header_string;
        st_total = Hashtbl.length live;
        st_by_prefix =
          Hashtbl.fold (fun p n acc -> (p, n) :: acc) by_prefix []
          |> List.sort compare;
        st_bytes = sc.s_size;
        st_torn_bytes = sc.s_size - sc.s_good_end;
      }

type fsck_report = {
  fk_header_ok : bool;
  fk_entries : int; (* live entries that deep-checked clean *)
  fk_bad : (string * string) list; (* key, reason — tampering, not tears *)
  fk_torn_bytes : int; (* torn tail found (and repaired if possible) *)
  fk_repaired : bool; (* the torn tail was truncated away *)
}

let fsck_clean r = r.fk_bad = [] && r.fk_header_ok

(* Deep structural checks for the payload kinds this library owns;
   [check] extends to the report kinds framed above it (return [None]
   for "not mine"). A clean fsck means: every frame intact, every
   payload parseable, every summary structurally valid — certificate
   validation against the *query* happens at serve time, where the
   query terms exist. *)
let default_check ~key ~payload : (unit, string) result =
  if String.length key >= 2 && key.[1] = '|' then
    match key.[0] with
    | 'S' -> (
        match Codec.proof_of_string payload with
        | _ -> Ok ()
        | exception Codec.Bad why -> Error why)
    | 'M' -> (
        match Codec.summary_of_string payload with
        | s -> Summary.validate s
        | exception Codec.Bad why -> Error why)
    | 'A' -> (
        match Codec.rsummary_of_string payload with
        | _ -> Ok ()
        | exception Codec.Bad why -> Error why)
    | _ -> Ok ()
  else Error "malformed key"

let fsck ?check dirname : fsck_report =
  let data_path = Filename.concat dirname data_name in
  match scan_file data_path with
  | None ->
      {
        fk_header_ok = false;
        fk_entries = 0;
        fk_bad = [];
        fk_torn_bytes = 0;
        fk_repaired = false;
      }
  | Some sc ->
      let torn = sc.s_size - sc.s_good_end in
      let repaired =
        torn > 0 && sc.s_header = Some header_string
        &&
        match Unix.truncate data_path sc.s_good_end with
        | () -> true
        | exception Unix.Unix_error _ -> false
      in
      let live = Hashtbl.create 256 in
      List.iter (fun (k, v) -> Hashtbl.replace live k v) sc.s_entries;
      let bad = ref [] and good = ref 0 in
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) live [] in
      List.iter
        (fun key ->
          let payload = Hashtbl.find live key in
          let verdict =
            match check with
            | Some f -> (
                match f ~key ~payload with
                | Some r -> r
                | None -> default_check ~key ~payload)
            | None -> default_check ~key ~payload
          in
          match verdict with
          | Ok () -> incr good
          | Error why -> bad := (key, why) :: !bad)
        (List.sort compare keys);
      {
        fk_header_ok = sc.s_header = Some header_string;
        fk_entries = !good;
        fk_bad = List.rev !bad;
        fk_torn_bytes = torn;
        fk_repaired = repaired;
      }

let pp_stat ppf (s : stat_report) =
  Format.fprintf ppf "header: %s@." (if s.st_header_ok then "ok" else "MISSING");
  Format.fprintf ppf "entries: %d (%s)@." s.st_total
    (if s.st_by_prefix = [] then "empty"
     else
       String.concat ", "
         (List.map
            (fun (p, n) ->
              let kind =
                match p with
                | "S" -> "solver"
                | "M" -> "summary"
                | "A" -> "analysis"
                | "L" -> "layer"
                | "R" -> "report"
                | _ -> p
              in
              Printf.sprintf "%s %d" kind n)
            s.st_by_prefix));
  Format.fprintf ppf "bytes: %d" s.st_bytes;
  if s.st_torn_bytes > 0 then
    Format.fprintf ppf " (+%d torn)" s.st_torn_bytes

let pp_fsck ppf (r : fsck_report) =
  Format.fprintf ppf "header: %s@." (if r.fk_header_ok then "ok" else "MISSING");
  Format.fprintf ppf "entries: %d clean, %d bad@." r.fk_entries
    (List.length r.fk_bad);
  List.iter
    (fun (k, why) -> Format.fprintf ppf "  BAD %s: %s@." k why)
    r.fk_bad;
  if r.fk_torn_bytes > 0 then
    Format.fprintf ppf "torn tail: %d bytes%s@." r.fk_torn_bytes
      (if r.fk_repaired then " (truncated)" else " (read-only, left in place)");
  Format.fprintf ppf "verdict: %s"
    (if fsck_clean r then "clean" else "CORRUPT")
