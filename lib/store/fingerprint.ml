(* Content-hash fingerprints over the hash-consed MinIR (ISSUE 6, after
   Janus-style incremental verification): a function's fingerprint is an
   MD5 of its *canonical* text — blocks in DFS order from the entry and
   renamed B0, B1, …; registers renumbered by first occurrence; labels
   and register names never appear — so alpha-equivalent functions
   (renamed registers/labels, reordered block lists) collide and any
   one-instruction edit separates. [cone] folds in the fingerprints of
   everything a function can call, so it identifies the whole region of
   the program that could influence the function's verification verdict:
   an edit invalidates exactly the persistent-store entries whose cone
   contains it. *)

module Instr = Minir.Instr
module Ty = Minir.Ty

(* ------------------------------------------------------------------ *)
(* Canonical function text                                            *)
(* ------------------------------------------------------------------ *)

(* Canonical names are assigned by first occurrence during the DFS
   render, so they are independent of the source names. Parameters are
   visited first (in declaration order — parameter order is meaningful,
   it is the call ABI). *)
type renamer = {
  regs : (string, string) Hashtbl.t;
  labels : (string, string) Hashtbl.t;
  mutable next_reg : int;
  mutable next_label : int;
}

let fresh_renamer () =
  {
    regs = Hashtbl.create 32;
    labels = Hashtbl.create 16;
    next_reg = 0;
    next_label = 0;
  }

let reg rn r =
  match Hashtbl.find_opt rn.regs r with
  | Some c -> c
  | None ->
      let c = "r" ^ string_of_int rn.next_reg in
      rn.next_reg <- rn.next_reg + 1;
      Hashtbl.add rn.regs r c;
      c

let label rn l =
  match Hashtbl.find_opt rn.labels l with
  | Some c -> c
  | None ->
      let c = "B" ^ string_of_int rn.next_label in
      rn.next_label <- rn.next_label + 1;
      Hashtbl.add rn.labels l c;
      c

let operand rn buf (o : Instr.operand) =
  match o with
  | Instr.Reg r -> Buffer.add_string buf (reg rn r)
  | Instr.Const_int n ->
      Buffer.add_char buf '#';
      Buffer.add_string buf (string_of_int n)
  | Instr.Const_bool b -> Buffer.add_string buf (if b then "#t" else "#f")
  | Instr.Null ty ->
      Buffer.add_string buf "null:";
      Buffer.add_string buf (Ty.to_string ty)

let operands rn buf os =
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_char buf ',';
      operand rn buf o)
    os

let binop_name : Instr.binop -> string = function
  | Instr.Add -> "add"
  | Instr.Sub -> "sub"
  | Instr.Mul -> "mul"
  | Instr.Sdiv -> "sdiv"
  | Instr.Srem -> "srem"
  | Instr.And_ -> "and"
  | Instr.Or_ -> "or"
  | Instr.Xor -> "xor"

let icmp_name : Instr.icmp -> string = function
  | Instr.Eq -> "eq"
  | Instr.Ne -> "ne"
  | Instr.Slt -> "slt"
  | Instr.Sle -> "sle"
  | Instr.Sgt -> "sgt"
  | Instr.Sge -> "sge"

let rvalue rn buf (rv : Instr.rvalue) =
  let str = Buffer.add_string buf in
  match rv with
  | Instr.Binop (op, a, b) ->
      str (binop_name op);
      str " ";
      operands rn buf [ a; b ]
  | Instr.Icmp (c, ty, a, b) ->
      str "icmp ";
      str (icmp_name c);
      str " ";
      str (Ty.to_string ty);
      str " ";
      operands rn buf [ a; b ]
  | Instr.Not o ->
      str "not ";
      operand rn buf o
  | Instr.Alloca ty ->
      str "alloca ";
      str (Ty.to_string ty)
  | Instr.Load (ty, o) ->
      str "load ";
      str (Ty.to_string ty);
      str " ";
      operand rn buf o
  | Instr.Gep (ty, base, idx) ->
      str "gep ";
      str (Ty.to_string ty);
      str " ";
      operands rn buf (base :: idx)
  | Instr.Call (fn, args) ->
      str "call ";
      str fn;
      str "(";
      operands rn buf args;
      str ")"
  | Instr.Newobject ty ->
      str "new ";
      str (Ty.to_string ty)
  | Instr.Bitcast o ->
      str "bitcast ";
      operand rn buf o
  | Instr.Byte_gep (base, off) ->
      str "bgep ";
      operands rn buf [ base; off ]
  | Instr.Opaque_load (ty, o) ->
      str "oload ";
      str (Ty.to_string ty);
      str " ";
      operand rn buf o

let instr rn buf (i : Instr.instr) =
  let str = Buffer.add_string buf in
  (match i with
  | Instr.Assign (r, rv) ->
      str (reg rn r);
      str " = ";
      rvalue rn buf rv
  | Instr.Store (ty, v, p) ->
      str "store ";
      str (Ty.to_string ty);
      str " ";
      operands rn buf [ v; p ]
  | Instr.Opaque_store (ty, v, p) ->
      str "ostore ";
      str (Ty.to_string ty);
      str " ";
      operands rn buf [ v; p ]
  | Instr.Call_void (fn, args) ->
      str "call ";
      str fn;
      str "(";
      operands rn buf args;
      str ")");
  Buffer.add_char buf '\n'

(* Successors in terminator order: the DFS visit order (and hence every
   canonical label) is a function of the CFG alone. *)
let successors (t : Instr.terminator) =
  match t with
  | Instr.Br l -> [ l ]
  | Instr.Cond_br (_, l1, l2) -> [ l1; l2 ]
  | Instr.Ret _ | Instr.Panic _ | Instr.Unreachable -> []

let terminator rn buf (t : Instr.terminator) =
  let str = Buffer.add_string buf in
  (match t with
  | Instr.Br l ->
      str "br ";
      str (label rn l)
  | Instr.Cond_br (c, l1, l2) ->
      str "cbr ";
      operand rn buf c;
      str " ";
      str (label rn l1);
      str " ";
      str (label rn l2)
  | Instr.Ret None -> str "ret"
  | Instr.Ret (Some o) ->
      str "ret ";
      operand rn buf o
  | Instr.Panic msg ->
      str "panic ";
      str msg
  | Instr.Unreachable -> str "unreachable");
  Buffer.add_char buf '\n'

(* Canonical text of one function. Unreachable blocks are excluded: they
   cannot influence any verdict, so an edit confined to dead code does
   not invalidate anything. *)
let canonical_text (f : Instr.func) : string =
  let rn = fresh_renamer () in
  List.iter (fun (p, _) -> ignore (reg rn p)) f.Instr.params;
  let buf = Buffer.create 512 in
  Buffer.add_string buf "params";
  List.iter
    (fun (p, ty) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (reg rn p);
      Buffer.add_char buf ':';
      Buffer.add_string buf (Ty.to_string ty))
    f.Instr.params;
  (match f.Instr.ret_ty with
  | None -> Buffer.add_string buf " -> void\n"
  | Some ty ->
      Buffer.add_string buf " -> ";
      Buffer.add_string buf (Ty.to_string ty);
      Buffer.add_char buf '\n');
  let visited = Hashtbl.create 16 in
  let rec visit l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      let b = Instr.find_block f l in
      Buffer.add_string buf (label rn l);
      Buffer.add_string buf ":\n";
      List.iter (instr rn buf) b.Instr.insns;
      terminator rn buf b.Instr.term;
      List.iter visit (successors b.Instr.term)
    end
  in
  visit f.Instr.entry;
  Buffer.contents buf

(* Callees reachable from [f]'s entry, deduplicated, sorted. *)
let callees (f : Instr.func) : string list =
  let visited = Hashtbl.create 16 in
  let out = Hashtbl.create 8 in
  let of_rvalue = function Instr.Call (fn, _) -> Some fn | _ -> None in
  let of_instr = function
    | Instr.Assign (_, rv) -> of_rvalue rv
    | Instr.Call_void (fn, _) -> Some fn
    | Instr.Store _ | Instr.Opaque_store _ -> None
  in
  let rec visit l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      let b = Instr.find_block f l in
      List.iter
        (fun i ->
          match of_instr i with
          | Some fn -> Hashtbl.replace out fn ()
          | None -> ())
        b.Instr.insns;
      List.iter visit (successors b.Instr.term)
    end
  in
  visit f.Instr.entry;
  Hashtbl.fold (fun fn () acc -> fn :: acc) out [] |> List.sort compare

let md5 s = Digest.to_hex (Digest.string s)

(* ------------------------------------------------------------------ *)
(* Per-program memo                                                   *)
(* ------------------------------------------------------------------ *)

(* Fingerprints are queried once per store key, which can be thousands
   of times per run over the same compiled program; memoize per program
   by physical identity, domain-locally (programs are built once per
   domain by the engine builder). *)
type tables = {
  prog : Instr.program;
  local : (string, string) Hashtbl.t; (* fn -> per-function fp *)
  cone : (string, string) Hashtbl.t; (* fn -> cone fp *)
}

let memo_key : tables list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let memo_limit = 8

let compute_tables (prog : Instr.program) : tables =
  let local = Hashtbl.create 64 in
  let calls = Hashtbl.create 64 in
  List.iter
    (fun (f : Instr.func) ->
      Hashtbl.replace local f.Instr.fn_name (md5 (canonical_text f));
      Hashtbl.replace calls f.Instr.fn_name (callees f))
    prog.Instr.funcs;
  (* Cone fingerprints by fixpoint: fold each function's local hash with
     its callees' cone hashes (sorted), iterated #funcs+1 times so the
     value is deterministic even on call cycles. Unknown callees
     (externals) contribute their name. *)
  let n = List.length prog.Instr.funcs + 1 in
  let cur = ref (Hashtbl.copy local) in
  (try
     for _ = 1 to n do
       let next = Hashtbl.create 64 in
       let changed = ref false in
       Hashtbl.iter
         (fun fn local_fp ->
           let cs = try Hashtbl.find calls fn with Not_found -> [] in
           let parts =
             List.map
               (fun c ->
                 match Hashtbl.find_opt !cur c with
                 | Some h -> h
                 | None -> "extern:" ^ c)
               cs
           in
           let h = md5 (String.concat "|" (local_fp :: parts)) in
           if Hashtbl.find_opt !cur fn <> Some h then changed := true;
           Hashtbl.replace next fn h)
         local;
       cur := next;
       (* Acyclic call graphs converge in depth steps to a Merkle hash
          independent of [n]; the cap only matters on call cycles. *)
       if not !changed then raise Exit
     done
   with Exit -> ());
  { prog; local; cone = !cur }

let tables_for (prog : Instr.program) : tables =
  let cell = Domain.DLS.get memo_key in
  match List.find_opt (fun t -> t.prog == prog) !cell with
  | Some t -> t
  | None ->
      let t = compute_tables prog in
      cell :=
        t :: (if List.length !cell >= memo_limit then [] else !cell);
      t

let func_fp prog fn =
  match Hashtbl.find_opt (tables_for prog).local fn with
  | Some h -> h
  | None -> md5 ("missing:" ^ fn)

let cone_fp prog fn =
  match Hashtbl.find_opt (tables_for prog).cone fn with
  | Some h -> h
  | None -> md5 ("missing:" ^ fn)

let program_fp prog =
  let t = tables_for prog in
  let all =
    Hashtbl.fold (fun fn h acc -> (fn ^ "=" ^ h) :: acc) t.local []
    |> List.sort compare
  in
  md5 (String.concat "\n" all)
