(* Crash-safe, certificate-guarded persistent verification store.

   An append-only file of CRC-framed entries (magic "DS01" + length +
   CRC-32 + payload; header frame first) in a directory guarded by a
   pid lock file. One writer per directory: every other opener — and
   any opener under the [Store_lock_held] fault — degrades to read-only
   rather than corrupt. Opening as the writer truncates a torn tail,
   exactly like the batch journal; [gc] compacts to the live set with
   an atomic tmp+rename.

   Trust discipline: the store never decides anything. Served solver
   entries are re-validated against their certificates, served
   summaries re-validated structurally; any failure counts
   [store.cert_failures], evicts the entry and falls through to a
   fresh solve. A corrupted store costs time, never truth.

   Counters (metrics registry): store.hits, store.misses,
   store.evictions, store.cert_failures, store.appends. *)

(* [store.ml] is the library's main module; re-export the satellite
   modules so consumers reach them as [Store.Codec]/[Store.Fingerprint]. *)
module Codec = Codec
module Fingerprint = Fingerprint

type t

(* Open (creating directory and file as needed). [read_only] skips the
   writer lock. The torn tail, if any, is truncated when opening as the
   writer. *)
val open_ : ?read_only:bool -> string -> t

val close : t -> unit
val dir : t -> string
val writable : t -> bool
val dropped_bytes : t -> int
val loaded : t -> int
val entries : t -> int

(* Raw keyed access. [find] consults the fault plan: [Store_stale]
   forces a miss, [Store_corrupt] serves a byte-flipped copy on a hit.
   [add] on a read-only store is a no-op. [evict ~cert_failure:true]
   also counts store.cert_failures. *)
val find : t -> string -> string option
val add : t -> string -> string -> unit
val evict : ?cert_failure:bool -> t -> string -> unit

(* Compact to the live entries (sorted, atomic tmp+rename). [Error] on
   a read-only store. *)
val gc : t -> (int, string) result

(* Key builders. [solver_key] digests the canonical term list;
   [summary_key] combines a function's cone fingerprint with the
   workload tag and canonical call shape; [derived_key] is for the
   layer/query report entries framed by the pipeline. *)
val solver_key : Smt.Term.t list -> string
val summary_key : cone:string -> tag:string -> shape:string -> string
val derived_key : prefix:string -> parts:string list -> string

(* Interprocedural-analysis entries ("A|"): the summarized function's
   cone fingerprint plus a digest of the environment fingerprint (the
   filtered field invariants the analysis ran under). *)
val analysis_key : cone:string -> envfp:string -> string

(* The Smt.Solver persistence hook over this store. Serves nothing
   unless certification is on and a validator is installed; everything
   served was validated here (and is validated again by the solver's
   gatekeeper). [with_solver] installs it around [f], restoring the
   previously installed hook after. *)
val solver_persist : t -> Smt.Solver.persist
val with_solver : t -> (unit -> 'a) -> 'a

(* The Symex.Summary persistence hook. [cone_of fn] must return the
   cone fingerprint of [fn] in the program under verification; [tag]
   names everything else a summary depends on (zone fingerprint,
   analysis policy). *)
val summary_persist :
  t -> cone_of:(string -> string) -> tag:string -> Symex.Summary.persist

(* The Analysis relational-summary persistence hook over "A|" entries:
   decoded entries that fail to parse or name another function are
   evicted as certificate failures and recomputed, never trusted (the
   analysis additionally rejects signature mismatches after load).
   [with_analysis] installs it around [f], restoring the previous
   hook. *)
val analysis_persist : t -> cone_of:(string -> string) -> Analysis.ip_persist
val with_analysis : t -> cone_of:(string -> string) -> (unit -> 'a) -> 'a

(* Drop this domain's parsed-entry memos (bench/test isolation; also
   done by [open_] and [close]). *)
val clear_domain_memos : unit -> unit

(* ---------------- Offline tools (operate on the directory) -------- *)

type stat_report = {
  st_header_ok : bool;
  st_total : int;
  st_by_prefix : (string * int) list;
  st_bytes : int;
  st_torn_bytes : int;
}

val stat : string -> stat_report

type fsck_report = {
  fk_header_ok : bool;
  fk_entries : int;
  fk_bad : (string * string) list;
  fk_torn_bytes : int;
  fk_repaired : bool;
}

(* Frame-level scan plus deep structural checks of every live entry.
   A torn tail is truncated away (repair) when the file is writable;
   torn tails alone leave the store clean — they are the expected
   crash signature, not corruption. [check] extends deep checking to
   entry kinds framed above this library ([None] = "not mine"). *)
val fsck :
  ?check:(key:string -> payload:string -> (unit, string) result option) ->
  string ->
  fsck_report

(* Clean: header intact and no deep-corrupt entries. *)
val fsck_clean : fsck_report -> bool

val pp_stat : Format.formatter -> stat_report -> unit
val pp_fsck : Format.formatter -> fsck_report -> unit
