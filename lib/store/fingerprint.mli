(* Content-hash fingerprints over MinIR, the invalidation backbone of
   the persistent verification store.

   [func_fp] hashes one function's canonical text: blocks in DFS order
   from the entry, registers and labels renumbered by first occurrence,
   unreachable blocks excluded. Alpha-equivalent functions (renamed
   registers/labels, reordered block lists, edits in dead blocks)
   collide; any reachable one-instruction edit separates. Callee *names*
   stay in the text — [func_fp] is local by design.

   [cone_fp] is the Merkle closure: a function's local hash folded with
   the cone hashes of everything it can call (sorted, fixpointed, capped
   on call cycles). A store entry keyed by [cone_fp f] is invalidated
   exactly when something [f] transitively depends on changes.

   All queries memoize per program by physical identity, domain-locally;
   lookups after the first are a hashtable probe. *)

val func_fp : Minir.Instr.program -> string -> string
val cone_fp : Minir.Instr.program -> string -> string

(* Hash of every function's local fingerprint (sorted by name): changes
   iff any function body changes. *)
val program_fp : Minir.Instr.program -> string

(* Exposed for the hash-stability tests. *)
val canonical_text : Minir.Instr.func -> string
val callees : Minir.Instr.func -> string list
