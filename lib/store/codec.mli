(* Wire codecs for persisted verification artifacts.

   Prefix encoding: ints are decimal + ';', strings length ':' bytes,
   constructors one-byte tags. Decoders never trust their input: every
   malformed byte raises [Bad], which consumers treat like a failed
   certificate (evict, count, fresh solve). Decoded terms are rebuilt
   from the raw constructors and hash-consed — never routed through the
   normalizing smart constructors, because a stored certificate must
   mention the exact terms it was built over. *)

exception Bad of string

(* Writer/reader combinators, exposed so the pipeline- and layer-level
   report codecs (which live above this library) frame their payloads
   the same way. *)
val wint : Buffer.t -> int -> unit
val wstr : Buffer.t -> string -> unit

type reader

val reader : string -> reader
val at_end : reader -> bool
val rbyte : reader -> char
val rint : reader -> int
val rstr : reader -> string

(* Term rendering memoizes per domain (terms are hash-consed; store
   keys re-render the same obligations thousands of times per run). *)
val term_to_string : Smt.Term.t -> string
val term_of_string : string -> Smt.Term.t
val wterm : Buffer.t -> Smt.Term.t -> unit
val rterm : reader -> Smt.Term.t

val proof_to_string : Smt.Proof.t -> string
val proof_of_string : string -> Smt.Proof.t

val summary_to_string : Symex.Summary.t -> string
val summary_of_string : string -> Symex.Summary.t

(* Relational function summaries (the "A|" analysis entries). *)
val rsummary_to_string : Analysis.rsummary -> string
val rsummary_of_string : string -> Analysis.rsummary
