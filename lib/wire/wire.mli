(* RFC 1035 wire-format message codec, total on arbitrary bytes.

   This is the trust-boundary extension the paper stops short of: the
   verified engines answer eDSL queries, but a real authoritative
   outage starts in the wire path — truncated frames, compression
   pointer loops, labels that lie about their length — before a query
   ever reaches the verified core. The decoder below therefore follows
   the same panic-freedom discipline the pipeline enforces on the
   engines: every read is bounds-checked, every malformed input maps
   to a typed [error] (never an exception), compression pointers must
   jump strictly backwards (so chasing them terminates by a decreasing
   measure), and section counts are capped before a single record is
   read. [decode] additionally wraps the whole parse in a catch-all
   barrier: an exception escaping the typed guards would be counted
   under the [wire.barrier_caught] metric and surfaced as [Internal] —
   the Selfcheck battery and `dnsv wire` gate that counter at zero,
   which is the codec's analogue of `dnsv lint` discharging an
   engine's panic guards.

   Scope: class IN only, the nine record types of [Dns.Rr], no EDNS.
   Anything outside that decodes to a typed [Unsupported_*] error the
   serve loop maps to FORMERR/NOTIMP. *)

module Message = Dns.Message
module Name = Dns.Name
module Rr = Dns.Rr

(* ------------------------------------------------------------------ *)
(* Typed decode errors (the decoder's discharged panic guards)        *)
(* ------------------------------------------------------------------ *)

type error =
  | Truncated of { what : string; at : int }
      (* a read past the end of the datagram *)
  | Bad_label of { at : int; reason : string }
      (* reserved 01/10 length-octet tags, or bytes Label.validate rejects *)
  | Pointer_loop of { at : int; target : int }
      (* a compression pointer that does not jump strictly backwards *)
  | Name_too_long of { at : int }
      (* a name exceeding 255 octets (RFC 1035 §3.1) *)
  | Count_cap of { section : string; count : int }
      (* a section count above [max_count] *)
  | Unsupported_class of { at : int; code : int }
  | Unsupported_rtype of { at : int; code : int }
  | Unsupported_rcode of { code : int }
  | Bad_rdata of { rtype : Rr.rtype; at : int; reason : string }
      (* rdata whose shape or length contradicts its type *)
  | Trailing_bytes of { at : int; len : int }
      (* bytes left over after every declared section was read *)
  | Internal of string
      (* the catch-all barrier; gated at zero by Selfcheck *)

(* Stable machine-readable guard-class tag ("truncated", "bad-label",
   "pointer", "name-too-long", "count-cap", "unsupported", "bad-rdata",
   "trailing", "internal"). *)
val error_tag : error -> string
val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(* ------------------------------------------------------------------ *)
(* Messages                                                           *)
(* ------------------------------------------------------------------ *)

(* A whole RFC 1035 message over the existing [Dns] types. The
   question section reuses [Message.query]; record sections reuse
   [Rr.t]. [opcode] is kept raw (0-15): the serve loop answers only
   opcode 0 and NOTIMPs the rest. *)
type t = {
  id : int; (* 0-65535 *)
  qr : bool; (* false = query, true = response *)
  opcode : int; (* 0-15; 0 = standard query *)
  aa : bool;
  tc : bool;
  rd : bool;
  ra : bool;
  rcode : Message.rcode;
  question : Message.query list;
  answer : Rr.t list;
  authority : Rr.t list;
  additional : Rr.t list;
}

(* Per-section record-count cap enforced before any record is read: a
   header claiming more is rejected with [Count_cap] instead of
   walking a count that cannot possibly fit the datagram. *)
val max_count : int

(* Names are capped at 255 octets, labels at 63 (RFC 1035 §2.3.4/§3.1). *)
val max_name_octets : int

(* The classic UDP payload bound the serve loop truncates to. *)
val max_udp_payload : int

(* A standard query (qr=false, opcode 0) for one question. *)
val query : ?id:int -> ?rd:bool -> Message.query -> t

(* A response to [question]: echoes id/rd, sets qr, and carries the
   engine's rcode/aa/sections. *)
val response :
  id:int -> ?rd:bool -> question:Message.query list -> Message.response -> t

(* Project the response-relevant fields back onto [Message.response]. *)
val to_response : t -> Message.response

(* Structural equality (sections are order-sensitive: wire order is
   preserved by the codec). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(* ------------------------------------------------------------------ *)
(* Codec                                                              *)
(* ------------------------------------------------------------------ *)

(* Encode a message. Total: out-of-range integers (id, ttl, addresses,
   MX/SRV fields) are masked to their field width, so encoding never
   raises; [decode (encode m) = m] whenever [m]'s integers are already
   in range (the QCheck round-trip property). [compress] (default
   true) emits RFC 1035 name-compression pointers; compression only
   ever points strictly backwards, so the decoder's pointer discipline
   accepts everything the encoder emits. *)
val encode : ?compress:bool -> t -> string

(* Decode arbitrary bytes. Total: every input returns [Ok] or a typed
   [Error]; no exception escapes (enforced by the catch-all barrier +
   the Selfcheck/fuzz batteries). *)
val decode : string -> (t, error) result

(* [encode], truncating to [max_size] bytes the RFC 1035 way: if the
   full encoding does not fit, the record sections are dropped and TC
   is set (the question survives, so the client can retry over TCP in
   a fuller implementation). Returns the bytes and whether truncation
   happened. *)
val encode_truncated : max_size:int -> t -> string * bool

(* Cumulative catch-all firings in this domain ([wire.barrier_caught]);
   must stay zero — a nonzero value means a malformed input reached an
   undischared guard. *)
val barrier_hits : unit -> int

(* ------------------------------------------------------------------ *)
(* Selfcheck: the decoder-totality battery                            *)
(* ------------------------------------------------------------------ *)

module Selfcheck : sig
  (* The pure seeded case generator behind `make fuzz-wire`, `dnsv
     wire` and the loadgen's malformed fraction: case [i] of a given
     [seed] is always the same bytes. The battery cycles through
     construction legs — uniformly random bytes, bit-flipped valid
     encodings, truncated valid encodings, compression-pointer
     loops/forward jumps/reserved tags, oversized section counts,
     unknown rtype/class/rcode fields, corrupted rdata lengths, and
     trailing garbage — so every typed guard class is exercised by
     construction, not by luck. *)
  val case : seed:int -> int -> string

  (* A malformed-but-answerable datagram for the loadgen mix: at least
     a full header, QR clear (so a server will reply rather than drop). *)
  val malformed_query : seed:int -> int -> string

  (* A pure seeded *valid* message (the round-trip leg's input). *)
  val message : seed:int -> int -> t

  type report = {
    sc_cases : int;
    sc_decoded : int; (* inputs that decoded cleanly *)
    sc_rejected : (string * int) list; (* guard tag -> rejections, sorted *)
    sc_raised : int; (* exceptions escaping decode — must be 0 *)
    sc_barrier : int; (* Internal catch-all firings — must be 0 *)
    sc_roundtrip_failures : int; (* decode (encode m) <> m — must be 0 *)
    sc_missing_guards : string list; (* required guard classes never hit *)
  }

  (* Guard classes [run] requires to fire at least once (proof the
     decoder's totality rests on live typed guards, not the barrier). *)
  val required_guards : string list

  val run : ?seed:int -> cases:int -> unit -> report

  (* Zero raises, zero barrier hits, zero round-trip failures, every
     required guard exercised. *)
  val ok : report -> bool

  val pp : Format.formatter -> report -> unit
end
