(* RFC 1035 wire-format message codec, total on arbitrary bytes.

   Decoder discipline (the module's whole point): every read goes
   through a bounds-checked primitive that raises the *internal* [Err]
   exception with a typed [error]; [decode] catches [Err] at the top
   and returns it as [Error]. Nothing else is supposed to escape — a
   catch-all barrier converts any stray exception to [Internal] and
   bumps [wire.barrier_caught], and the Selfcheck battery plus the
   fuzz executable gate that counter at zero. Termination of
   compression-pointer chasing is by a decreasing measure: a pointer
   may only target an offset strictly below the lowest offset the
   name walk has visited, so each jump shrinks the reachable prefix. *)

module Message = Dns.Message
module Name = Dns.Name
module Label = Dns.Label
module Rr = Dns.Rr

type error =
  | Truncated of { what : string; at : int }
  | Bad_label of { at : int; reason : string }
  | Pointer_loop of { at : int; target : int }
  | Name_too_long of { at : int }
  | Count_cap of { section : string; count : int }
  | Unsupported_class of { at : int; code : int }
  | Unsupported_rtype of { at : int; code : int }
  | Unsupported_rcode of { code : int }
  | Bad_rdata of { rtype : Rr.rtype; at : int; reason : string }
  | Trailing_bytes of { at : int; len : int }
  | Internal of string

let error_tag = function
  | Truncated _ -> "truncated"
  | Bad_label _ -> "bad-label"
  | Pointer_loop _ -> "pointer"
  | Name_too_long _ -> "name-too-long"
  | Count_cap _ -> "count-cap"
  | Unsupported_class _ | Unsupported_rtype _ | Unsupported_rcode _ ->
      "unsupported"
  | Bad_rdata _ -> "bad-rdata"
  | Trailing_bytes _ -> "trailing"
  | Internal _ -> "internal"

let pp_error ppf = function
  | Truncated { what; at } ->
      Fmt.pf ppf "truncated %s at offset %d" what at
  | Bad_label { at; reason } -> Fmt.pf ppf "bad label at offset %d: %s" at reason
  | Pointer_loop { at; target } ->
      Fmt.pf ppf "compression pointer at offset %d targets %d (not strictly backward)"
        at target
  | Name_too_long { at } -> Fmt.pf ppf "name exceeds 255 octets at offset %d" at
  | Count_cap { section; count } ->
      Fmt.pf ppf "%s count %d exceeds cap" section count
  | Unsupported_class { at; code } ->
      Fmt.pf ppf "unsupported class %d at offset %d" code at
  | Unsupported_rtype { at; code } ->
      Fmt.pf ppf "unsupported rtype %d at offset %d" code at
  | Unsupported_rcode { code } -> Fmt.pf ppf "unsupported rcode %d" code
  | Bad_rdata { rtype; at; reason } ->
      Fmt.pf ppf "bad %s rdata at offset %d: %s" (Rr.rtype_to_string rtype) at
        reason
  | Trailing_bytes { at; len } ->
      Fmt.pf ppf "%d trailing byte(s) at offset %d" len at
  | Internal m -> Fmt.pf ppf "internal: %s" m

let error_to_string e = Fmt.str "%a" pp_error e

type t = {
  id : int;
  qr : bool;
  opcode : int;
  aa : bool;
  tc : bool;
  rd : bool;
  ra : bool;
  rcode : Message.rcode;
  question : Message.query list;
  answer : Rr.t list;
  authority : Rr.t list;
  additional : Rr.t list;
}

let max_count = 255
let max_name_octets = 255
let max_udp_payload = 512

let query ?(id = 0) ?(rd = false) q =
  {
    id;
    qr = false;
    opcode = 0;
    aa = false;
    tc = false;
    rd;
    ra = false;
    rcode = Message.NoError;
    question = [ q ];
    answer = [];
    authority = [];
    additional = [];
  }

let response ~id ?(rd = false) ~question (r : Message.response) =
  {
    id;
    qr = true;
    opcode = 0;
    aa = r.Message.aa;
    tc = false;
    rd;
    ra = false;
    rcode = r.Message.rcode;
    question;
    answer = r.Message.answer;
    authority = r.Message.authority;
    additional = r.Message.additional;
  }

let to_response (m : t) : Message.response =
  {
    Message.rcode = m.rcode;
    aa = m.aa;
    answer = m.answer;
    authority = m.authority;
    additional = m.additional;
  }

let equal_query (a : Message.query) (b : Message.query) =
  Name.equal a.Message.qname b.Message.qname
  && Rr.equal_rtype a.Message.qtype b.Message.qtype

let list_eq eq a b =
  List.length a = List.length b && List.for_all2 eq a b

let equal a b =
  a.id = b.id && a.qr = b.qr && a.opcode = b.opcode && a.aa = b.aa
  && a.tc = b.tc && a.rd = b.rd && a.ra = b.ra && a.rcode = b.rcode
  && list_eq equal_query a.question b.question
  && list_eq Rr.equal a.answer b.answer
  && list_eq Rr.equal a.authority b.authority
  && list_eq Rr.equal a.additional b.additional

let pp ppf m =
  Fmt.pf ppf "@[<h>id=%d %s opcode=%d%s%s%s%s rcode=%s qd=%d an=%d ns=%d ar=%d@]"
    m.id
    (if m.qr then "response" else "query")
    m.opcode
    (if m.aa then " aa" else "")
    (if m.tc then " tc" else "")
    (if m.rd then " rd" else "")
    (if m.ra then " ra" else "")
    (Message.rcode_to_string m.rcode)
    (List.length m.question) (List.length m.answer)
    (List.length m.authority) (List.length m.additional)

(* ------------------------------------------------------------------ *)
(* Observability                                                      *)
(* ------------------------------------------------------------------ *)

let decode_ok_c = Trace.Metrics.counter "wire.decode_ok"
let decode_err_c = Trace.Metrics.counter "wire.decode_error"
let barrier_c = Trace.Metrics.counter "wire.barrier_caught"
let barrier_count = ref 0
let barrier_hits () = !barrier_count

(* ------------------------------------------------------------------ *)
(* Encoder                                                            *)
(* ------------------------------------------------------------------ *)

(* A growable byte sink with 16-bit backpatching, which Buffer lacks;
   rdlength is written as a placeholder and patched once the (possibly
   compressed) rdata's actual size is known. *)
module Out = struct
  type t = { mutable b : Bytes.t; mutable len : int }

  let create () = { b = Bytes.create 256; len = 0 }

  let ensure o n =
    if o.len + n > Bytes.length o.b then begin
      let cap = ref (Bytes.length o.b) in
      while o.len + n > !cap do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit o.b 0 nb 0 o.len;
      o.b <- nb
    end

  let u8 o v =
    ensure o 1;
    Bytes.set o.b o.len (Char.chr (v land 0xFF));
    o.len <- o.len + 1

  let u16 o v =
    u8 o (v lsr 8);
    u8 o v

  let u32 o v =
    u8 o (v lsr 24);
    u8 o (v lsr 16);
    u8 o (v lsr 8);
    u8 o v

  let str o s =
    let n = String.length s in
    ensure o n;
    Bytes.blit_string s 0 o.b o.len n;
    o.len <- o.len + n

  let patch16 o pos v =
    Bytes.set o.b pos (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set o.b (pos + 1) (Char.chr (v land 0xFF))

  let contents o = Bytes.sub_string o.b 0 o.len
end

(* Emit [name], compressing against [tbl] (suffix -> offset). Every
   pointer emitted targets an earlier offset, so the decoder's
   strictly-backward pointer rule accepts everything we produce.
   Offsets above the 14-bit pointer range are simply not recorded. *)
let rec enc_name o tbl compress (name : Name.t) =
  match name with
  | [] -> Out.u8 o 0
  | l :: rest ->
      let key = Name.to_string name in
      let hit = if compress then Hashtbl.find_opt tbl key else None in
      (match hit with
      | Some off -> Out.u16 o (0xC000 lor off)
      | None ->
          if compress && o.Out.len < 0x4000 then Hashtbl.add tbl key o.Out.len;
          let l = if String.length l > 63 then String.sub l 0 63 else l in
          Out.u8 o (String.length l);
          Out.str o l;
          enc_name o tbl compress rest)

let enc_u128_int o v =
  (* 16 bytes, sign-extended: an OCaml int is 63-bit, so bytes beyond
     bit 62 repeat the sign. Shifts >= 63 are unspecified in OCaml, so
     the high bytes are written from the sign directly. *)
  let sign_byte = if v < 0 then 0xFF else 0x00 in
  for i = 15 downto 0 do
    let sh = i * 8 in
    if sh >= 63 then Out.u8 o sign_byte else Out.u8 o (v asr sh)
  done

let enc_txt o s =
  let len = String.length s in
  let rec chunks off =
    let n = len - off in
    if n = 0 && off > 0 then ()
    else begin
      let k = min n 255 in
      Out.u8 o k;
      Out.str o (String.sub s off k);
      if off + k < len then chunks (off + k)
    end
  in
  chunks 0

let enc_rdata o tbl compress (rr : Rr.t) =
  match (rr.Rr.rtype, rr.Rr.rdata) with
  | Rr.A, Rr.Addr v -> Out.u32 o v
  | Rr.AAAA, Rr.Addr v -> enc_u128_int o v
  | _, Rr.Addr v -> Out.u32 o v
  | _, Rr.Host n -> enc_name o tbl compress n
  | _, Rr.Mx (pref, n) ->
      Out.u16 o pref;
      enc_name o tbl compress n
  | _, Rr.Srv (prio, weight, port, n) ->
      Out.u16 o prio;
      Out.u16 o weight;
      Out.u16 o port;
      enc_name o tbl compress n
  | _, Rr.Text s -> enc_txt o s
  | _, Rr.Soa_data s ->
      enc_name o tbl compress s.Rr.mname;
      enc_name o tbl compress s.Rr.rname;
      Out.u32 o s.Rr.serial;
      Out.u32 o s.Rr.refresh;
      Out.u32 o s.Rr.retry;
      Out.u32 o s.Rr.expire;
      Out.u32 o s.Rr.minimum

let enc_question o tbl compress (q : Message.query) =
  enc_name o tbl compress q.Message.qname;
  Out.u16 o (Rr.rtype_code q.Message.qtype);
  Out.u16 o 1

let enc_rr o tbl compress (rr : Rr.t) =
  enc_name o tbl compress rr.Rr.rname;
  Out.u16 o (Rr.rtype_code rr.Rr.rtype);
  Out.u16 o 1;
  Out.u32 o rr.Rr.ttl;
  let rdlength_at = o.Out.len in
  Out.u16 o 0;
  let before = o.Out.len in
  enc_rdata o tbl compress rr;
  Out.patch16 o rdlength_at (o.Out.len - before)

let encode ?(compress = true) (m : t) =
  let o = Out.create () in
  let tbl = Hashtbl.create 16 in
  Out.u16 o m.id;
  let b2 =
    ((if m.qr then 1 else 0) lsl 7)
    lor ((m.opcode land 0xF) lsl 3)
    lor ((if m.aa then 1 else 0) lsl 2)
    lor ((if m.tc then 1 else 0) lsl 1)
    lor (if m.rd then 1 else 0)
  in
  let b3 =
    ((if m.ra then 1 else 0) lsl 7) lor Message.rcode_code m.rcode
  in
  Out.u8 o b2;
  Out.u8 o b3;
  Out.u16 o (List.length m.question);
  Out.u16 o (List.length m.answer);
  Out.u16 o (List.length m.authority);
  Out.u16 o (List.length m.additional);
  List.iter (enc_question o tbl compress) m.question;
  List.iter (enc_rr o tbl compress) m.answer;
  List.iter (enc_rr o tbl compress) m.authority;
  List.iter (enc_rr o tbl compress) m.additional;
  Out.contents o

let encode_truncated ~max_size (m : t) =
  let full = encode m in
  if String.length full <= max_size then (full, false)
  else
    let stripped =
      { m with tc = true; answer = []; authority = []; additional = [] }
    in
    (encode stripped, true)

(* ------------------------------------------------------------------ *)
(* Decoder                                                            *)
(* ------------------------------------------------------------------ *)

exception Err of error

let err e = raise (Err e)

let u8 s pos what =
  if !pos >= String.length s then err (Truncated { what; at = !pos })
  else begin
    let v = Char.code s.[!pos] in
    incr pos;
    v
  end

let u16 s pos what =
  let hi = u8 s pos what in
  let lo = u8 s pos what in
  (hi lsl 8) lor lo

let u32 s pos what =
  let hi = u16 s pos what in
  let lo = u16 s pos what in
  (hi lsl 16) lor lo

let take s pos n what =
  if !pos + n > String.length s then err (Truncated { what; at = !pos })
  else begin
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  end

(* Decode a (possibly compressed) name starting at [!pos]. [limit] is
   the strict upper bound for pointer targets: it starts at the name's
   own offset and becomes the target after each jump, so the sequence
   of jump targets is strictly decreasing and the walk terminates.
   Label octets are additionally capped at [max_name_octets], bounding
   the work between jumps. [pos] advances past the name's bytes in the
   *original* stream (pointer bytes included, jumped-to bytes not). *)
let dec_name s pos =
  let rec go acc octets p limit jumped =
    if p >= String.length s then err (Truncated { what = "name"; at = p });
    let len = Char.code s.[p] in
    if len = 0 then begin
      if not jumped then pos := p + 1;
      List.rev acc
    end
    else if len land 0xC0 = 0xC0 then begin
      if p + 1 >= String.length s then
        err (Truncated { what = "compression pointer"; at = p });
      let target = ((len land 0x3F) lsl 8) lor Char.code s.[p + 1] in
      if not jumped then pos := p + 2;
      if target >= limit then err (Pointer_loop { at = p; target });
      go acc octets target target true
    end
    else if len land 0xC0 <> 0 then
      err (Bad_label { at = p; reason = "reserved length-octet tag" })
    else begin
      let octets = octets + len + 1 in
      if octets > max_name_octets then err (Name_too_long { at = p });
      if p + 1 + len > String.length s then
        err (Truncated { what = "label"; at = p });
      let raw = String.sub s (p + 1) len in
      match Label.validate raw with
      | Ok l -> go (l :: acc) octets (p + 1 + len) limit jumped
      | Error reason -> err (Bad_label { at = p; reason })
    end
  in
  go [] 0 !pos !pos false

let dec_rtype s pos =
  let at = !pos in
  let code = u16 s pos "rtype" in
  match Rr.rtype_of_code code with
  | Some t -> t
  | None -> err (Unsupported_rtype { at; code })

let dec_class s pos =
  let at = !pos in
  let code = u16 s pos "class" in
  if code <> 1 then err (Unsupported_class { at; code })

let dec_question s pos : Message.query =
  let qname = dec_name s pos in
  let qtype = dec_rtype s pos in
  dec_class s pos;
  { Message.qname; qtype }

let dec_u128_int s pos rtype =
  let at = !pos in
  let raw = take s pos 16 "AAAA rdata" in
  let prefix = String.sub raw 0 8 in
  let all c = String.for_all (Char.equal c) prefix in
  let lo =
    let v = ref 0L in
    for i = 8 to 15 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code raw.[i]))
    done;
    !v
  in
  let as_int = Int64.to_int lo in
  let representable = Int64.equal (Int64.of_int as_int) lo in
  if all '\x00' && representable && as_int >= 0 then as_int
  else if all '\xFF' && representable && as_int < 0 then as_int
  else err (Bad_rdata { rtype; at; reason = "address out of range" })

let dec_txt s pos rd_end rtype =
  let buf = Buffer.create 32 in
  let rec chunks () =
    if !pos = rd_end then Buffer.contents buf
    else begin
      let at = !pos in
      let k = u8 s pos "TXT chunk" in
      if !pos + k > rd_end then
        err (Bad_rdata { rtype; at; reason = "character-string overruns rdata" });
      Buffer.add_string buf (take s pos k "TXT chunk");
      chunks ()
    end
  in
  chunks ()

let dec_rdata s pos rd_end (rtype : Rr.rtype) : Rr.rdata =
  let at = !pos in
  let exact_end what v =
    if !pos <> rd_end then
      err (Bad_rdata { rtype; at; reason = what ^ " disagrees with rdlength" })
    else v
  in
  match rtype with
  | Rr.A ->
      if rd_end - !pos <> 4 then
        err (Bad_rdata { rtype; at; reason = "A rdata must be 4 bytes" })
      else Rr.Addr (u32 s pos "A rdata")
  | Rr.AAAA ->
      if rd_end - !pos <> 16 then
        err (Bad_rdata { rtype; at; reason = "AAAA rdata must be 16 bytes" })
      else Rr.Addr (dec_u128_int s pos rtype)
  | Rr.NS | Rr.CNAME | Rr.PTR ->
      let n = dec_name s pos in
      exact_end "name" (Rr.Host n)
  | Rr.MX ->
      let pref = u16 s pos "MX preference" in
      let n = dec_name s pos in
      exact_end "exchange name" (Rr.Mx (pref, n))
  | Rr.SRV ->
      let prio = u16 s pos "SRV priority" in
      let weight = u16 s pos "SRV weight" in
      let port = u16 s pos "SRV port" in
      let n = dec_name s pos in
      exact_end "target name" (Rr.Srv (prio, weight, port, n))
  | Rr.TXT -> Rr.Text (dec_txt s pos rd_end rtype)
  | Rr.SOA ->
      let mname = dec_name s pos in
      let rname = dec_name s pos in
      let serial = u32 s pos "SOA serial" in
      let refresh = u32 s pos "SOA refresh" in
      let retry = u32 s pos "SOA retry" in
      let expire = u32 s pos "SOA expire" in
      let minimum = u32 s pos "SOA minimum" in
      exact_end "SOA fields"
        (Rr.Soa_data { mname; rname; serial; refresh; retry; expire; minimum })

let dec_rr s pos : Rr.t =
  let rname = dec_name s pos in
  let rtype = dec_rtype s pos in
  dec_class s pos;
  let ttl = u32 s pos "ttl" in
  let at = !pos in
  let rdlength = u16 s pos "rdlength" in
  if at + 2 + rdlength > String.length s then
    err (Truncated { what = "rdata"; at });
  let rd_end = at + 2 + rdlength in
  let rdata = dec_rdata s pos rd_end rtype in
  { Rr.rname; rtype; ttl; rdata }

let dec_count s pos section =
  let count = u16 s pos (section ^ " count") in
  if count > max_count then err (Count_cap { section; count });
  count

let rec dec_list n f acc = if n = 0 then List.rev acc else dec_list (n - 1) f (f () :: acc)

let decode (s : string) : (t, error) result =
  try
    let pos = ref 0 in
    let id = u16 s pos "header" in
    let b2 = u8 s pos "header" in
    let b3 = u8 s pos "header" in
    let qr = b2 land 0x80 <> 0 in
    let opcode = (b2 lsr 3) land 0xF in
    let aa = b2 land 0x04 <> 0 in
    let tc = b2 land 0x02 <> 0 in
    let rd = b2 land 0x01 <> 0 in
    let ra = b3 land 0x80 <> 0 in
    let rcode =
      let code = b3 land 0xF in
      match Message.rcode_of_code code with
      | Some r -> r
      | None -> err (Unsupported_rcode { code })
    in
    let qd = dec_count s pos "question" in
    let an = dec_count s pos "answer" in
    let ns = dec_count s pos "authority" in
    let ar = dec_count s pos "additional" in
    let question = dec_list qd (fun () -> dec_question s pos) [] in
    let answer = dec_list an (fun () -> dec_rr s pos) [] in
    let authority = dec_list ns (fun () -> dec_rr s pos) [] in
    let additional = dec_list ar (fun () -> dec_rr s pos) [] in
    if !pos <> String.length s then
      err (Trailing_bytes { at = !pos; len = String.length s - !pos });
    Trace.Metrics.incr decode_ok_c;
    Ok { id; qr; opcode; aa; tc; rd; ra; rcode; question; answer; authority; additional }
  with
  | Err e ->
      Trace.Metrics.incr decode_err_c;
      Error e
  | exn ->
      (* The barrier: reachable only through a guard this module failed
         to write. Selfcheck and the fuzz battery gate this at zero. *)
      incr barrier_count;
      Trace.Metrics.incr barrier_c;
      Trace.Metrics.incr decode_err_c;
      Error (Internal (Printexc.to_string exn))

(* ------------------------------------------------------------------ *)
(* Selfcheck                                                          *)
(* ------------------------------------------------------------------ *)

module Selfcheck = struct
  let required_guards =
    [
      "truncated";
      "bad-label";
      "pointer";
      "name-too-long";
      "count-cap";
      "unsupported";
      "bad-rdata";
      "trailing";
    ]

  (* Deterministic per-case PRNG: OCaml's Random is a pure function of
     its seed array, so case [i] of a seed is stable across runs. *)
  let st seed i = Random.State.make [| 0x5EED; seed; i |]

  let pick r arr = arr.(Random.State.int r (Array.length arr))

  let label_pool =
    [| "a"; "b"; "ns"; "www"; "mail"; "example"; "com"; "org"; "x1"; "tx-t2" |]

  let rand_name r =
    List.init (Random.State.int r 5) (fun _ -> pick r label_pool)

  (* Random.State.int caps its bound at 2^30 here, so wider values are
     composed from 16/30-bit chunks. *)
  let rand_u16 r = Random.State.int r 0x10000
  let rand_u32 r = (rand_u16 r lsl 16) lor rand_u16 r
  let rand_byte r = Char.chr (Random.State.int r 256)

  let rand_int63 r =
    (* bits 48-62 included, so the sign bit is exercised too *)
    (Random.State.int r 0x8000 lsl 48)
    lor (rand_u16 r lsl 32)
    lor (rand_u16 r lsl 16)
    lor rand_u16 r

  let all_rtypes = Array.of_list Rr.all_rtypes
  let all_rcodes = Array.of_list Message.all_rcodes

  let rand_rdata r (rtype : Rr.rtype) : Rr.rdata =
    match rtype with
    | Rr.A -> Rr.Addr (rand_u32 r)
    | Rr.AAAA -> Rr.Addr (rand_int63 r)
    | Rr.NS | Rr.CNAME | Rr.PTR -> Rr.Host (rand_name r)
    | Rr.MX -> Rr.Mx (rand_u16 r, rand_name r)
    | Rr.SRV -> Rr.Srv (rand_u16 r, rand_u16 r, rand_u16 r, rand_name r)
    | Rr.TXT -> Rr.Text (String.init (Random.State.int r 300) (fun _ -> rand_byte r))
    | Rr.SOA ->
        Rr.Soa_data
          {
            Rr.mname = rand_name r;
            rname = rand_name r;
            serial = rand_u32 r;
            refresh = rand_u32 r;
            retry = rand_u32 r;
            expire = rand_u32 r;
            minimum = rand_u32 r;
          }

  let rand_rr r =
    let rtype = pick r all_rtypes in
    { Rr.rname = rand_name r; rtype; ttl = rand_u32 r; rdata = rand_rdata r rtype }

  let rand_query r =
    { Message.qname = rand_name r; qtype = pick r all_rtypes }

  let message ~seed i =
    let r = st seed (i lxor 0x7F3) in
    {
      id = rand_u16 r;
      qr = Random.State.bool r;
      opcode = Random.State.int r 16;
      aa = Random.State.bool r;
      tc = Random.State.bool r;
      rd = Random.State.bool r;
      ra = Random.State.bool r;
      rcode = pick r all_rcodes;
      question = List.init (1 + Random.State.int r 2) (fun _ -> rand_query r);
      answer = List.init (Random.State.int r 4) (fun _ -> rand_rr r);
      authority = List.init (Random.State.int r 3) (fun _ -> rand_rr r);
      additional = List.init (Random.State.int r 3) (fun _ -> rand_rr r);
    }

  let be16 v =
    String.init 2 (fun j -> Char.chr ((v lsr (8 * (1 - j))) land 0xFF))

  let mk_header ?(flags = 0) ~qd ~an ~ns ~ar r =
    be16 (rand_u16 r) ^ be16 flags ^ be16 qd ^ be16 an ^ be16 ns ^ be16 ar

  let rand_bytes r n = String.init n (fun _ -> rand_byte r)

  (* One crafted leg per guard class (legs 3-8), plus random bytes,
     valid messages, bit-flips and trailing garbage: the battery
     exercises every [required_guards] tag by construction. *)
  let case ~seed i =
    let r = st seed i in
    match i mod 10 with
    | 0 -> rand_bytes r (Random.State.int r 96)
    | 1 -> encode (message ~seed i)
    | 2 ->
        let b = Bytes.of_string (encode (message ~seed i)) in
        let n = Bytes.length b in
        for _ = 0 to Random.State.int r 4 do
          let at = Random.State.int r n in
          let bit = 1 lsl Random.State.int r 8 in
          Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor bit))
        done;
        Bytes.to_string b
    | 3 ->
        let s = encode (message ~seed i) in
        String.sub s 0 (Random.State.int r (String.length s))
    | 4 -> (
        match Random.State.int r 3 with
        | 0 ->
            (* a pointer to its own offset: target = limit, rejected *)
            mk_header ~qd:1 ~an:0 ~ns:0 ~ar:0 r ^ "\xC0\x0C"
        | 1 ->
            (* a forward jump *)
            mk_header ~qd:1 ~an:0 ~ns:0 ~ar:0 r ^ "\xC0\xF0"
        | _ ->
            (* five 63-octet labels: 320 octets of name *)
            let label = String.make 1 (Char.chr 63) ^ String.make 63 'a' in
            mk_header ~qd:1 ~an:0 ~ns:0 ~ar:0 r
            ^ String.concat "" (List.init 5 (fun _ -> label))
            ^ "\x00" ^ be16 1 ^ be16 1)
    | 5 ->
        (* a reserved 01/10 length-octet tag *)
        let tag = if Random.State.bool r then 0x40 else 0x80 in
        mk_header ~qd:1 ~an:0 ~ns:0 ~ar:0 r
        ^ String.make 1 (Char.chr (tag lor Random.State.int r 0x3F))
    | 6 ->
        mk_header ~qd:(256 + Random.State.int r 0xFF00) ~an:0 ~ns:0 ~ar:0 r
    | 7 -> (
        match Random.State.int r 3 with
        | 0 ->
            mk_header ~qd:1 ~an:0 ~ns:0 ~ar:0 r
            ^ "\x01a\x00" ^ be16 (250 + Random.State.int r 5) ^ be16 1
        | 1 ->
            mk_header ~qd:1 ~an:0 ~ns:0 ~ar:0 r
            ^ "\x01a\x00" ^ be16 1 ^ be16 (2 + Random.State.int r 200)
        | _ -> mk_header ~flags:(6 + Random.State.int r 10) ~qd:0 ~an:0 ~ns:0 ~ar:0 r)
    | 8 ->
        if Random.State.bool r then
          (* A rdata claiming 5 bytes *)
          mk_header ~qd:0 ~an:1 ~ns:0 ~ar:0 r
          ^ "\x01a\x00" ^ be16 1 ^ be16 1 ^ be16 0 ^ be16 0 ^ be16 5
          ^ rand_bytes r 5
        else
          (* AAAA rdata with a mixed sign prefix *)
          mk_header ~qd:0 ~an:1 ~ns:0 ~ar:0 r
          ^ "\x01a\x00" ^ be16 28 ^ be16 1 ^ be16 0 ^ be16 0 ^ be16 16
          ^ "\x00\xFF" ^ rand_bytes r 14
    | _ -> encode (message ~seed i) ^ rand_bytes r (1 + Random.State.int r 16)

  let malformed_query ~seed i =
    let r = st seed (i lxor 0x2B5D) in
    (* QR clear and opcode 0 so a serve loop replies (FORMERR) rather
       than dropping; flags may set aa/tc/rd, body is garbage. *)
    let flags = Random.State.int r 8 lsl 8 in
    mk_header ~flags ~qd:1 ~an:0 ~ns:0 ~ar:0 r
    ^ rand_bytes r (1 + Random.State.int r 32)

  type report = {
    sc_cases : int;
    sc_decoded : int;
    sc_rejected : (string * int) list;
    sc_raised : int;
    sc_barrier : int;
    sc_roundtrip_failures : int;
    sc_missing_guards : string list;
  }

  let run ?(seed = 0xD15) ~cases () =
    let tally = Hashtbl.create 16 in
    let raised = ref 0 and decoded = ref 0 and barrier = ref 0 and rt = ref 0 in
    for i = 0 to cases - 1 do
      let bytes = case ~seed i in
      (match (try Some (decode bytes) with _ -> None) with
      | None -> incr raised
      | Some (Ok _) -> incr decoded
      | Some (Error e) ->
          (match e with Internal _ -> incr barrier | _ -> ());
          let tag = error_tag e in
          Hashtbl.replace tally tag
            (1 + Option.value ~default:0 (Hashtbl.find_opt tally tag)));
      let m = message ~seed i in
      let rt_ok compress =
        match decode (encode ~compress m) with
        | Ok m' -> equal m m'
        | Error _ -> false
        | exception _ -> false
      in
      if not (rt_ok true && rt_ok false) then incr rt
    done;
    let rejected =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
      |> List.sort compare
    in
    let missing =
      List.filter (fun g -> not (List.mem_assoc g rejected)) required_guards
    in
    {
      sc_cases = cases;
      sc_decoded = !decoded;
      sc_rejected = rejected;
      sc_raised = !raised;
      sc_barrier = !barrier;
      sc_roundtrip_failures = !rt;
      sc_missing_guards = missing;
    }

  let ok r =
    r.sc_raised = 0 && r.sc_barrier = 0 && r.sc_roundtrip_failures = 0
    && r.sc_missing_guards = []

  let pp ppf r =
    Fmt.pf ppf
      "@[<v>wire selfcheck: %d cases, %d decoded, %d raised, %d barrier, %d \
       round-trip failures@,rejections by guard:@,%a@,missing guards: %s@]"
      r.sc_cases r.sc_decoded r.sc_raised r.sc_barrier r.sc_roundtrip_failures
      (Fmt.list ~sep:Fmt.cut (fun ppf (tag, n) -> Fmt.pf ppf "  %-14s %d" tag n))
      r.sc_rejected
      (if r.sc_missing_guards = [] then "none"
       else String.concat ", " r.sc_missing_guards)
end
