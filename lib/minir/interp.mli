(* Concrete Minir interpreter.

   The reference executor: it replays counterexample queries produced by
   the refinement checker against the real engine code, and it powers the
   differential tests (engine vs. top-level specification on random
   zones). Opaque-pointer instructions must be resolved by [Opaque] first;
   the interpreter rejects them. *)

type outcome =
    Returned of Value.t option * Value.memory
  | Panicked of string
exception Out_of_fuel
val default_fuel : int
type frame = { regs : (Instr.reg, Value.t) Hashtbl.t; }
val operand_value : frame -> Instr.operand -> Value.t
val as_int : Value.t -> int
val as_bool : Value.t -> bool
val as_ptr : Value.t -> Value.ptr
val eval_binop :
  Instr.binop -> Value.t -> Value.t -> Value.t
val eval_icmp :
  Instr.icmp -> Value.t -> Value.t -> Value.t
(* [observer] fires at every block entry (before its instructions) with
   the function name, block label, live frame registers, and current
   memory; used by the static-analysis soundness tests. *)
val run :
  ?fuel:int ->
  ?observer:
    (string ->
    Instr.label ->
    (Instr.reg, Value.t) Hashtbl.t ->
    Value.memory ->
    unit) ->
  Instr.program ->
  memory:Value.memory ->
  fn:string -> args:Value.t list -> outcome
