(* Concrete Minir interpreter.

   The reference executor: it replays counterexample queries produced by
   the refinement checker against the real engine code, and it powers the
   differential tests (engine vs. top-level specification on random
   zones). Opaque-pointer instructions must be resolved by [Opaque] first;
   the interpreter rejects them. *)

type outcome =
  | Returned of Value.t option * Value.memory
  | Panicked of string

exception Out_of_fuel

let default_fuel = 2_000_000

type frame = { regs : (Instr.reg, Value.t) Hashtbl.t }

let operand_value (fr : frame) : Instr.operand -> Value.t = function
  | Instr.Const_int n -> Value.VInt n
  | Instr.Const_bool b -> Value.VBool b
  | Instr.Null _ -> Value.VNull
  | Instr.Reg r -> (
      match Hashtbl.find_opt fr.regs r with
      | Some v -> v
      | None -> Value.panic "read of unassigned register %%%s" r)

let as_int = function
  | Value.VInt n -> n
  | v -> Value.panic "expected integer, got %a" Value.pp v

let as_bool = function
  | Value.VBool b -> b
  | v -> Value.panic "expected boolean, got %a" Value.pp v

let as_ptr = function
  | Value.VPtr p -> p
  | Value.VNull -> Value.panic "nil pointer dereference"
  | v -> Value.panic "expected pointer, got %a" Value.pp v

let eval_binop op a b =
  match op with
  | Instr.Add -> Value.VInt (as_int a + as_int b)
  | Instr.Sub -> Value.VInt (as_int a - as_int b)
  | Instr.Mul -> Value.VInt (as_int a * as_int b)
  | Instr.Sdiv ->
      let d = as_int b in
      if d = 0 then Value.panic "integer divide by zero"
      else Value.VInt (as_int a / d)
  | Instr.Srem ->
      let d = as_int b in
      if d = 0 then Value.panic "integer divide by zero"
      else Value.VInt (as_int a mod d)
  | Instr.And_ -> Value.VBool (as_bool a && as_bool b)
  | Instr.Or_ -> Value.VBool (as_bool a || as_bool b)
  | Instr.Xor -> Value.VBool (as_bool a <> as_bool b)

let rec eval_icmp op a b =
  let open Value in
  match op with
  | Instr.Eq -> (
      match (a, b) with
      | VInt x, VInt y -> VBool (x = y)
      | VBool x, VBool y -> VBool (x = y)
      | VPtr x, VPtr y -> VBool (x = y)
      | VNull, VNull -> VBool true
      | (VPtr _, VNull | VNull, VPtr _) -> VBool false
      | _ -> Value.panic "icmp eq: incomparable values")
  | Instr.Ne -> (
      match eval_icmp Instr.Eq a b with
      | VBool r -> VBool (not r)
      | _ -> assert false)
  | Instr.Slt -> VBool (as_int a < as_int b)
  | Instr.Sle -> VBool (as_int a <= as_int b)
  | Instr.Sgt -> VBool (as_int a > as_int b)
  | Instr.Sge -> VBool (as_int a >= as_int b)

(* Execute [fn] on [args] in [memory]. Fuel bounds the total instruction
   count, turning accidental non-termination into an exception rather
   than a hang. [observer], if given, is called at every block entry
   (before its instructions) with the function name, block label, live
   frame registers, and current memory — the hook the static-analysis
   soundness tests use to compare concrete runs against abstract
   states. *)
let run ?(fuel = default_fuel)
    ?(observer :
       (string -> Instr.label -> (Instr.reg, Value.t) Hashtbl.t ->
        Value.memory -> unit)
       option) (p : Instr.program) ~(memory : Value.memory) ~(fn : string)
    ~(args : Value.t list) : outcome =
  let mem = ref memory in
  let fuel = ref fuel in
  let tick () =
    decr fuel;
    if !fuel <= 0 then raise Out_of_fuel
  in
  let observe f fr l =
    match observer with
    | Some obs -> obs f.Instr.fn_name l fr.regs !mem
    | None -> ()
  in
  let rec call fn_name args : Value.t option =
    let f = Instr.find_func p fn_name in
    if List.length args <> List.length f.Instr.params then
      Value.panic "arity mismatch calling %s" fn_name;
    let fr = { regs = Hashtbl.create 32 } in
    List.iter2
      (fun (r, _ty) v -> Hashtbl.replace fr.regs r v)
      f.Instr.params args;
    exec_block f fr f.Instr.entry (Instr.find_block f f.Instr.entry)
  and exec_block f fr label (b : Instr.block) : Value.t option =
    observe f fr label;
    List.iter (exec_instr fr) b.Instr.insns;
    tick ();
    match b.Instr.term with
    | Instr.Br l -> exec_block f fr l (Instr.find_block f l)
    | Instr.Cond_br (c, l1, l2) ->
        let target = if as_bool (operand_value fr c) then l1 else l2 in
        exec_block f fr target (Instr.find_block f target)
    | Instr.Ret None -> None
    | Instr.Ret (Some o) -> Some (operand_value fr o)
    | Instr.Panic reason -> Value.panic "%s" reason
    | Instr.Unreachable -> Value.panic "reached unreachable block"
  and exec_instr fr = function
    | Instr.Assign (r, rv) ->
        tick ();
        let v = eval_rvalue fr rv in
        Hashtbl.replace fr.regs r v
    | Instr.Store (_ty, v, ptr) ->
        tick ();
        let p = as_ptr (operand_value fr ptr) in
        mem := Value.store !mem p (Value.mval_of_value (operand_value fr v))
    | Instr.Opaque_store _ ->
        Value.panic "opaque store not resolved (run the Opaque pass)"
    | Instr.Call_void (name, args) ->
        tick ();
        let vs = List.map (operand_value fr) args in
        ignore (call name vs)
  and eval_rvalue fr = function
    | Instr.Binop (op, a, b) ->
        eval_binop op (operand_value fr a) (operand_value fr b)
    | Instr.Icmp (op, _ty, a, b) ->
        eval_icmp op (operand_value fr a) (operand_value fr b)
    | Instr.Not a -> Value.VBool (not (as_bool (operand_value fr a)))
    | Instr.Alloca ty ->
        (* Go zero-initializes locals, so stack slots start at their
           type's default rather than undef. *)
        let mem', ptr = Value.alloc !mem (Value.mval_default p.Instr.tenv ty) in
        mem := mem';
        Value.VPtr ptr
    | Instr.Newobject ty ->
        let mem', ptr = Value.alloc !mem (Value.mval_default p.Instr.tenv ty) in
        mem := mem';
        Value.VPtr ptr
    | Instr.Load (_ty, ptr) -> Value.load !mem (as_ptr (operand_value fr ptr))
    | Instr.Gep (_pointee, base, indices) ->
        let bp = as_ptr (operand_value fr base) in
        let idx =
          List.map (fun o -> as_int (operand_value fr o)) indices
        in
        Value.VPtr { bp with Value.path = bp.Value.path @ idx }
    | Instr.Call (name, args) -> (
        let vs = List.map (operand_value fr) args in
        match call name vs with
        | Some v -> v
        | None -> Value.VUnit)
    | Instr.Bitcast _ | Instr.Byte_gep _ | Instr.Opaque_load _ ->
        Value.panic "opaque pointer op not resolved (run the Opaque pass)"
  in
  match call fn args with
  | Some v -> Returned (Some v, !mem)
  | None -> Returned (None, !mem)
  | exception Value.Runtime_panic msg -> Panicked msg
