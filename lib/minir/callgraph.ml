(* Call graph over a Minir program: per-function callee sets
   ([Instr.Call] and [Instr.Call_void] sites, including ones in blocks
   the CFG cannot reach — purity and escape reasoning must cover any
   instruction the executor could in principle touch), Tarjan SCC
   condensation, and a bottom-up traversal order.

   Callees that have no definition in the program (externs, typos in
   hand-built IR) are kept in the callee lists — consumers decide how
   to havoc them — but never appear in the SCC decomposition, which
   covers defined functions only. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

let callees_of_func (f : Instr.func) : string list =
  let acc = ref SSet.empty in
  List.iter
    (fun (_, (b : Instr.block)) ->
      List.iter
        (fun (i : Instr.instr) ->
          match i with
          | Instr.Assign (_, Instr.Call (name, _)) | Instr.Call_void (name, _)
            ->
              acc := SSet.add name !acc
          | Instr.Assign (_, _) | Instr.Store _ | Instr.Opaque_store _ -> ())
        b.Instr.insns)
    f.Instr.blocks;
  SSet.elements !acc

type t = {
  defined : SSet.t;
  callees : string list SMap.t; (* every call target, defined or not *)
  callers : string list SMap.t; (* defined callers of each defined callee *)
  sccs : string list list; (* bottom-up: callees before callers *)
}

let callees (g : t) fn =
  match SMap.find_opt fn g.callees with Some cs -> cs | None -> []

let callers (g : t) fn =
  match SMap.find_opt fn g.callers with Some cs -> cs | None -> []

let is_defined (g : t) fn = SSet.mem fn g.defined
let sccs (g : t) = g.sccs

(* Does [fn] (transitively) call itself? True for every member of a
   multi-function SCC and for direct self-recursion. *)
let in_cycle (g : t) fn =
  List.exists
    (function
      | [ one ] ->
          String.equal one fn
          && List.exists (String.equal fn) (callees g fn)
      | many -> List.exists (String.equal fn) many)
    g.sccs

let build (p : Instr.program) : t =
  let defined =
    List.fold_left
      (fun s (f : Instr.func) -> SSet.add f.Instr.fn_name s)
      SSet.empty p.Instr.funcs
  in
  let callees =
    List.fold_left
      (fun m (f : Instr.func) ->
        SMap.add f.Instr.fn_name (callees_of_func f) m)
      SMap.empty p.Instr.funcs
  in
  let callers =
    SMap.fold
      (fun caller cs m ->
        List.fold_left
          (fun m callee ->
            if SSet.mem callee defined then
              SMap.update callee
                (function
                  | Some l -> Some (caller :: l) | None -> Some [ caller ])
                m
            else m)
          m cs)
      callees SMap.empty
  in
  (* Tarjan. Recursion depth is bounded by the number of defined
     functions, fine for the program sizes Minir carries. SCCs pop in
     reverse-topological order of the condensation — every SCC
     completes after all SCCs it reaches — so the emission order is
     already bottom-up (callees first). *)
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let next = ref 0 in
  let out = ref [] in
  let defined_callees fn =
    List.filter (fun c -> SSet.mem c defined)
      (match SMap.find_opt fn callees with Some cs -> cs | None -> [])
  in
  let rec strongconnect v =
    Hashtbl.replace index v !next;
    Hashtbl.replace lowlink v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (defined_callees v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if String.equal w v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter
    (fun (f : Instr.func) ->
      if not (Hashtbl.mem index f.Instr.fn_name) then
        strongconnect f.Instr.fn_name)
    p.Instr.funcs;
  { defined; callees; callers; sccs = List.rev !out }

(* Functions reachable (transitively, through call edges) from any of
   [entries]; entries missing from the program are ignored. Used by the
   dead-callee lint. *)
let reachable_from (g : t) (entries : string list) : SSet.t =
  let seen = ref SSet.empty in
  let rec go fn =
    if SSet.mem fn g.defined && not (SSet.mem fn !seen) then begin
      seen := SSet.add fn !seen;
      List.iter go (callees g fn)
    end
  in
  List.iter go entries;
  !seen
