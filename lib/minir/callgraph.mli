(** Call graph over a Minir program: callee/caller maps, Tarjan SCC
    condensation in bottom-up (callee-first) order, and entry-point
    reachability. Undefined call targets (externs) appear in callee
    lists but never in the SCC decomposition. *)

module SMap : Map.S with type key = string
module SSet : Set.S with type elt = string

type t

(** All call targets of one function, deduplicated and sorted, drawn
    from every block (reachable or not). *)
val callees_of_func : Instr.func -> string list

val build : Instr.program -> t

(** Call targets of [fn] (defined or not); [] for an unknown [fn]. *)
val callees : t -> string -> string list

(** Defined callers of a defined function. *)
val callers : t -> string -> string list

val is_defined : t -> string -> bool

(** Bottom-up SCC list: every SCC appears after the SCCs it calls into.
    Singleton SCCs may or may not be self-recursive — see [in_cycle]. *)
val sccs : t -> string list list

(** [fn] participates in a call cycle (member of a multi-function SCC,
    or calls itself directly). *)
val in_cycle : t -> string -> bool

(** Functions transitively reachable through call edges from any entry
    in the list (entries themselves included when defined). *)
val reachable_from : t -> string list -> SSet.t
