(* Static well-formedness checking for Minir programs.

   Run before any verification or interpretation: a malformed program is
   a bug in the frontend, and rejecting it early keeps both executors
   free of defensive cases. *)

type error = { fn : string; where : string; message : string }

let pp_error fmt e =
  Format.fprintf fmt "%s/%s: %s" e.fn e.where e.message

type result = Ok | Errors of error list

let check_func (p : Instr.program) (f : Instr.func) : error list =
  let errors = ref [] in
  let err where fmt =
    Format.kasprintf
      (fun message ->
        errors := { fn = f.Instr.fn_name; where; message } :: !errors)
      fmt
  in
  let labels = List.map fst f.Instr.blocks in
  (* Unique labels and a valid entry. *)
  let rec dup = function
    | [] -> None
    | l :: rest -> if List.mem l rest then Some l else dup rest
  in
  (match dup labels with
  | Some l -> err l "duplicate block label"
  | None -> ());
  if not (List.mem f.Instr.entry labels) then
    err "entry" "entry label %s not defined" f.Instr.entry;
  (* Unique parameter and register names; single static assignment of
     each register (one defining instruction program-wide). *)
  (match dup (List.map fst f.Instr.params) with
  | Some r -> err "params" "duplicate parameter %%%s" r
  | None -> ());
  let defined = Hashtbl.create 64 in
  List.iter (fun (r, _) -> Hashtbl.replace defined r "param") f.Instr.params;
  List.iter
    (fun (label, b) ->
      List.iter
        (function
          | Instr.Assign (r, _) ->
              if Hashtbl.mem defined r then
                err label "register %%%s assigned more than once" r
              else Hashtbl.replace defined r label
          | Instr.Store _ | Instr.Opaque_store _ | Instr.Call_void _ -> ())
        b.Instr.insns)
    f.Instr.blocks;
  (* Operand references resolve; branch targets exist; calls resolve with
     the right arity. *)
  let check_operand label = function
    | Instr.Reg r ->
        if not (Hashtbl.mem defined r) then
          err label "use of undefined register %%%s" r
    | Instr.Const_int _ | Instr.Const_bool _ | Instr.Null _ -> ()
  in
  (* Straight-line order within a block: a register defined in this
     block may not be read at or before its defining instruction (the
     terminator always reads last). Uses of registers defined in other
     blocks are ordered by the CFG, not by text, and are left to the
     executors. *)
  let def_index = Hashtbl.create 64 in
  List.iter
    (fun (label, b) ->
      List.iteri
        (fun i -> function
          | Instr.Assign (r, _) -> Hashtbl.replace def_index r (label, i)
          | Instr.Store _ | Instr.Opaque_store _ | Instr.Call_void _ -> ())
        b.Instr.insns)
    f.Instr.blocks;
  let check_order label i = function
    | Instr.Reg r -> (
        match Hashtbl.find_opt def_index r with
        | Some (dl, di) when String.equal dl label && di >= i ->
            err label "register %%%s used before its assignment (insn %d)" r di
        | _ -> ())
    | Instr.Const_int _ | Instr.Const_bool _ | Instr.Null _ -> ()
  in
  List.iter
    (fun (label, b) ->
      List.iteri
        (fun idx insn ->
          let operands =
            match insn with
            | Instr.Assign (_, rv) -> (
                match rv with
                | Instr.Binop (_, a, b) -> [ a; b ]
                | Instr.Icmp (_, _, a, b) -> [ a; b ]
                | Instr.Not a -> [ a ]
                | Instr.Alloca _ -> []
                | Instr.Load (_, p) -> [ p ]
                | Instr.Gep (_, base, idx) -> base :: idx
                | Instr.Call (name, args) ->
                    (match List.find_opt (fun g -> g.Instr.fn_name = name) p.Instr.funcs with
                    | None -> err label "call of undefined function %s" name
                    | Some callee ->
                        if List.length callee.Instr.params <> List.length args
                        then err label "arity mismatch calling %s" name);
                    args
                | Instr.Newobject _ -> []
                | Instr.Bitcast o -> [ o ]
                | Instr.Byte_gep (a, b) -> [ a; b ]
                | Instr.Opaque_load (_, o) -> [ o ])
            | Instr.Store (_, v, ptr) -> [ v; ptr ]
            | Instr.Opaque_store (_, v, ptr) -> [ v; ptr ]
            | Instr.Call_void (name, args) ->
                (match
                   List.find_opt (fun g -> g.Instr.fn_name = name) p.Instr.funcs
                 with
                | None -> err label "call of undefined function %s" name
                | Some callee ->
                    if List.length callee.Instr.params <> List.length args then
                      err label "arity mismatch calling %s" name);
                args
          in
          List.iter (check_operand label) operands;
          List.iter (check_order label idx) operands)
        b.Instr.insns;
      match b.Instr.term with
      | Instr.Br l ->
          if not (List.mem l labels) then err label "branch to unknown %s" l
      | Instr.Cond_br (c, l1, l2) ->
          check_operand label c;
          List.iter
            (fun l ->
              if not (List.mem l labels) then err label "branch to unknown %s" l)
            [ l1; l2 ]
      | Instr.Ret (Some o) ->
          check_operand label o;
          if f.Instr.ret_ty = None then err label "value return in void function"
      | Instr.Ret None ->
          if f.Instr.ret_ty <> None then err label "void return in non-void function"
      | Instr.Panic _ | Instr.Unreachable -> ())
    f.Instr.blocks;
  (* Register types must infer without error. *)
  (try ignore (Typing.infer p f)
   with Typing.Type_error m -> err "typing" "%s" m);
  List.rev !errors

let check (p : Instr.program) : result =
  let errors = List.concat_map (check_func p) p.Instr.funcs in
  (* Struct definitions must be unique and reference known structs. *)
  let struct_errors = ref [] in
  let known = List.map (fun d -> d.Ty.sname) p.Instr.tenv in
  let rec dup = function
    | [] -> None
    | l :: rest -> if List.mem l rest then Some l else dup rest
  in
  (match dup known with
  | Some s ->
      struct_errors :=
        { fn = "<tenv>"; where = s; message = "duplicate struct definition" }
        :: !struct_errors
  | None -> ());
  let rec check_ty where = function
    | Ty.I1 | Ty.I64 | Ty.Opaque_ptr -> ()
    | Ty.Ptr t -> check_ty where t
    | Ty.Array (t, n) ->
        if n <= 0 then
          struct_errors :=
            { fn = "<tenv>"; where; message = "non-positive array capacity" }
            :: !struct_errors;
        check_ty where t
    | Ty.Struct name ->
        if not (List.mem name known) then
          struct_errors :=
            { fn = "<tenv>"; where; message = "unknown struct " ^ name }
            :: !struct_errors
  in
  List.iter
    (fun d -> List.iter (fun f -> check_ty d.Ty.sname f.Ty.fty) d.Ty.fields)
    p.Instr.tenv;
  match !struct_errors @ errors with [] -> Ok | es -> Errors es

exception Ill_formed of error list

let check_exn p =
  match check p with Ok -> () | Errors es -> raise (Ill_formed es)
