(* A small, deterministic domain pool: static round-robin task→worker
   assignment (task i → worker i mod jobs), one [Domain.spawn] per
   worker, per-index result slots. [jobs <= 1] degenerates to a plain
   [List.map] on the calling domain. Exceptions from [f] are re-raised
   on the caller after all workers joined.

   Observability merges at the join barrier: each task's metrics delta
   (Trace.Metrics) is absorbed into the caller's cells and its span
   forest grafted under the caller's current span, in task index order,
   so merged totals and span trees are independent of [jobs]. *)

val max_jobs : int

(* [map_timed ~jobs f tasks] also returns the wall-clock seconds each
   worker spent (length = effective number of workers). *)
val map_timed : jobs:int -> ('a -> 'b) -> 'a list -> 'b list * float list
val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
