(* A small, deterministic domain pool for the verification pipeline.

   Design constraints, in order:

   - **Determinism.** Task→worker assignment is static round-robin
     (task i runs on worker i mod jobs, in index order within a worker),
     never work-stealing: domain-local state (solver caches, fault-plan
     counters, statistics) then sees the same deterministic sequence of
     work for a given (tasks, jobs) pair on every run, which is what
     keeps injected fault schedules replayable and verdicts identical
     between runs.
   - **Isolation.** Each worker is one [Domain.spawn]; all mutable
     verifier state is domain-local (DLS), so workers share nothing.
     Results land in per-index slots — no locks, no contention.
   - **Degenerate case is free.** [jobs <= 1] (or a single task) runs
     the plain [List.map] on the calling domain: no spawn, bit-for-bit
     the sequential pipeline.

   Exceptions raised by [f] are captured per task and re-raised on the
   calling domain for the lowest failing task index, after every worker
   has been joined. *)

let max_jobs = 64

let clamp_jobs ~ntasks jobs = max 1 (min jobs (min max_jobs ntasks))

(* [map_timed ~jobs f tasks] = [List.map f tasks], fanned out over
   [jobs] domains, plus the wall-clock seconds each worker domain spent
   (a [jobs]-length list; [jobs <= 1] reports one entry). *)
let map_timed ~jobs (f : 'a -> 'b) (tasks : 'a list) : 'b list * float list =
  let ntasks = List.length tasks in
  let jobs = clamp_jobs ~ntasks jobs in
  if jobs <= 1 then begin
    let t0 = Unix.gettimeofday () in
    let results = List.map f tasks in
    (results, [ Unix.gettimeofday () -. t0 ])
  end
  else begin
    let tasks = Array.of_list tasks in
    (* Each slot carries the task's observability payload alongside its
       result: the span forest the task rooted on its worker domain and
       the metrics delta it produced there (worker domains start with
       zero registry cells, so a snapshot diff is exactly the task's
       contribution). *)
    let results :
        ( 'b * Trace.forest * Trace.Metrics.snapshot,
          exn * Printexc.raw_backtrace * Trace.Metrics.snapshot )
        result
        option
        array =
      Array.make ntasks None
    in
    let walls = Array.make jobs 0.0 in
    let worker w () =
      let t0 = Unix.gettimeofday () in
      let i = ref w in
      while !i < ntasks do
        (results.(!i) <-
           (let m0 = Trace.Metrics.snapshot () in
            let delta () = Trace.Metrics.diff (Trace.Metrics.snapshot ()) m0 in
            match Trace.capture (fun () -> f tasks.(!i)) with
            | v, forest -> Some (Ok (v, forest, delta ()))
            | exception e ->
                Some (Error (e, Printexc.get_raw_backtrace (), delta ()))));
        i := !i + jobs
      done;
      walls.(w) <- Unix.gettimeofday () -. t0
    in
    let domains = Array.init jobs (fun w -> Domain.spawn (worker w)) in
    Array.iter Domain.join domains;
    (* The join barrier is the single merge point: fold every task's
       metrics delta into the caller's cells and graft its span forest
       under the caller's current span, in task index order — so the
       merged totals and the span tree are independent of [jobs] and of
       which worker ran what. Failed tasks merge their metrics too (the
       work they did happened); only then is the lowest failing index
       re-raised. *)
    Array.iter
      (function
        | Some (Ok (_, forest, delta)) ->
            Trace.Metrics.absorb delta;
            Trace.graft forest
        | Some (Error (_, _, delta)) -> Trace.Metrics.absorb delta
        | None -> assert false)
      results;
    let results =
      Array.to_list results
      |> List.map (function
           | Some (Ok (v, _, _)) -> v
           | Some (Error (e, bt, _)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
    in
    (results, Array.to_list walls)
  end

let map ~jobs f tasks = fst (map_timed ~jobs f tasks)
