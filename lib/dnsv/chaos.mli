(* Deterministic chaos soak for the verification pipeline.

   Samples seeded fault plans over every [Faultinject] site — including
   kill-mid-journal-write and cache-corruption — and runs small proved
   and refuted workloads under each plan, asserting the soundness
   monotone: an injected fault may degrade a verdict to inconclusive,
   but can never flip Proved to Refuted or Refuted to Proved. Plans
   containing the journal-tear site instead exercise the kill-and-resume
   leg: a batch run is killed mid-append, resumed from its journal, and
   the resumed transcript must be byte-identical (by fingerprint) to an
   uninterrupted run's. Plans containing a store site (store-corrupt,
   store-stale, store-lock-held) run the monotone leg over a scratch
   copy of a warmed persistent store, then cut the store at a seeded
   byte — the kill-mid-store-write signature — and re-verify fault-free:
   the verdict fingerprint must match the fault-free baseline exactly.
   Plans containing a wire site (wire-garble, wire-truncate,
   serve-overload) drive a seeded query mix through a [Serve] loop over
   a verified-fixed engine while datagrams are mangled and budgets
   exhausted under them: a fault may cost an answer (FORMERR, SERVFAIL,
   truncation, a drop), but every decodable authoritative reply must
   still match [Spec.Rrlookup.resolve] on the question the reply
   echoes — degrade-never-flip, extended to the wire. Everything is
   derived from [seed], so a failing plan replays exactly. *)

type outcome = {
  plans : int; (* plans executed *)
  verify_runs : int; (* monotone legs (proved/refuted workloads) *)
  torn_runs : int; (* kill-mid-journal-write legs *)
  store_runs : int; (* monotone legs run over a warmed persistent store *)
  truncated_store_runs : int; (* kill-mid-store-write re-verify legs *)
  wire_runs : int; (* serve-loop legs under wire-mangling faults *)
  fired : int; (* plans where an armed fault actually fired *)
  survived : int; (* fault run reproduced its baseline status *)
  degraded : int; (* fault run degraded to inconclusive *)
  resumed_identical : int; (* torn runs whose resume matched byte-for-byte *)
  store_resumed_identical : int;
      (* truncated-store re-verifies whose verdict fingerprint matched
         the fault-free baseline *)
  violations : string list; (* soundness breaches — must be empty *)
}

(* No violations: every plan upheld the monotone and every torn run
   resumed byte-identically. *)
val ok : outcome -> bool

(* A sampled fault plan: 1-2 distinct sites, a base firing index (site
   k in the list fires on arrival after + k), one-shot or persistent. *)
type plan = {
  sites : Faultinject.site list;
  after : int;
  persistent : bool;
}

(* The pure plan sampler: the same seed always yields the same plan, so
   a violating plan reported by [run] replays exactly (e.g. via the
   CLI's --fault-seed). *)
val plan_of_seed : int -> plan

(* Arm every site in the plan on the current domain. *)
val arm_plan : plan -> unit

(* Run [plans] seeded plans starting at [seed] (defaults 200 and 1). *)
val run : ?seed:int -> ?plans:int -> unit -> outcome

val pp : Format.formatter -> outcome -> unit
