(* Fault-tolerant UDP answer loop over a verified engine version. *)

module Message = Dns.Message
module Zone = Dns.Zone

type server = {
  sv_config : Engine.Builder.config;
  sv_zone : Zone.t;
  sv_prog : Minir.Instr.program;
  sv_enc : Dnstree.Encode.t;
  sv_deadline_s : float;
  sv_identity : Obsv.Expo.identity;
  mutable sv_obsv : Obsv.sink option;
  mutable sv_queries : int; (* arrival index, feeds the qlog sampler *)
}

let create ?(deadline_s = 0.25) ?identity ~config zone =
  let tree = Dnstree.Tree.build zone in
  let identity =
    match identity with
    | Some i -> i
    | None ->
        {
          Obsv.Expo.id_version = "dnsv";
          id_engine = "unnamed";
          id_zone = Dns.Name.to_string (Zone.origin zone);
        }
  in
  {
    sv_config = config;
    sv_zone = zone;
    sv_prog = Engine.Versions.compiled config;
    sv_enc = Dnstree.Encode.encode tree;
    sv_deadline_s = deadline_s;
    sv_identity = identity;
    sv_obsv = None;
    sv_queries = 0;
  }

let config s = s.sv_config
let zone s = s.sv_zone
let identity s = s.sv_identity
let attach_obsv s sink = s.sv_obsv <- Some sink
let obsv s = s.sv_obsv

type disposition =
  | Answered
  | Formerr of Wire.error
  | Notimp of int
  | Servfail of string
  | Dropped of string

let disposition_to_string = function
  | Answered -> "answered"
  | Formerr e -> "formerr: " ^ Wire.error_tag e
  | Notimp op -> Printf.sprintf "notimp: opcode %d" op
  | Servfail reason -> "servfail: " ^ reason
  | Dropped why -> "dropped: " ^ why

type outcome = { reply : string option; disposition : disposition; truncated : bool }

(* Counters live in the registry so `dnsv serve`'s trace export, the
   stats endpoint and the bench probes see them; [stats] reads the
   module-local mirror, which [reset_stats] can clear between tests
   without touching the registry. *)
let answered_c = Trace.Metrics.counter "serve.answered"
let formerr_c = Trace.Metrics.counter "serve.formerr"
let notimp_c = Trace.Metrics.counter "serve.notimp"
let servfail_c = Trace.Metrics.counter "serve.servfail"
let dropped_c = Trace.Metrics.counter "serve.dropped"
let truncated_c = Trace.Metrics.counter "serve.truncated"

(* Per-query wall latency: the histogram rolling SLO windows and the
   loadgen percentiles read. Always on — one bucket bump per query. *)
let latency_h = Trace.Metrics.histogram "serve.latency_ms"

(* Per-rcode reply counters (serve.rcode.NOERROR, ...), pre-registered
   so the per-query path never takes the registration lock. *)
let rcode_c =
  List.map
    (fun rc ->
      (rc, Trace.Metrics.counter ("serve.rcode." ^ Message.rcode_to_string rc)))
    Message.all_rcodes

(* Degradation reasons (serve.reason.<tag>) are registered on first
   use: degradations are rare, and the set of tags is open (budget
   reasons, wire guards, drop causes). The tag is the stable prefix of
   the reason string, spaces dashed, so "engine-panic: foo" and
   "qr set" count as serve.reason.engine-panic / serve.reason.qr-set. *)
let reason_tag s =
  let s =
    match String.index_opt s ':' with Some i -> String.sub s 0 i | None -> s
  in
  String.map (fun c -> if c = ' ' then '-' else c) s

let note_reason tag =
  if tag <> "" then
    Trace.Metrics.incr (Trace.Metrics.counter ("serve.reason." ^ reason_tag tag))

type stats = {
  answered : int;
  formerr : int;
  notimp : int;
  servfail : int;
  dropped : int;
  truncated : int;
}

let zero = { answered = 0; formerr = 0; notimp = 0; servfail = 0; dropped = 0; truncated = 0 }
let st = ref zero
let stats () = !st
let reset_stats () = st := zero

let pp_stats ppf s =
  Fmt.pf ppf
    "answered=%d formerr=%d notimp=%d servfail=%d dropped=%d truncated=%d"
    s.answered s.formerr s.notimp s.servfail s.dropped s.truncated

let note (d : disposition) =
  (match d with
  | Answered ->
      Trace.Metrics.incr answered_c;
      st := { !st with answered = !st.answered + 1 }
  | Formerr e ->
      Trace.Metrics.incr formerr_c;
      st := { !st with formerr = !st.formerr + 1 };
      Trace.event "serve.formerr" ~attrs:[ ("guard", Wire.error_tag e) ]
  | Notimp op ->
      Trace.Metrics.incr notimp_c;
      st := { !st with notimp = !st.notimp + 1 };
      Trace.event "serve.notimp" ~attrs:[ ("opcode", string_of_int op) ]
  | Servfail reason ->
      Trace.Metrics.incr servfail_c;
      st := { !st with servfail = !st.servfail + 1 };
      Trace.event "serve.servfail" ~attrs:[ ("reason", reason) ]
  | Dropped why ->
      Trace.Metrics.incr dropped_c;
      st := { !st with dropped = !st.dropped + 1 };
      Trace.event "serve.dropped" ~attrs:[ ("why", why) ]);
  d

(* The chaos soak's wire-mangling sites: applied before the decoder so
   the whole decode-or-degrade path is what gets exercised. Both are
   deterministic given the datagram (the *schedule* comes from the
   armed plan's seed). *)
let mangle datagram =
  let d =
    if Faultinject.fire Faultinject.Wire_garble && String.length datagram > 0
    then begin
      let b = Bytes.of_string datagram in
      let n = Bytes.length b in
      let flip at mask =
        Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor mask))
      in
      flip (n / 3) 0xFF;
      flip (2 * n / 3) 0x55;
      Bytes.to_string b
    end
    else datagram
  in
  if Faultinject.fire Faultinject.Wire_truncate && String.length d > 1 then
    String.sub d 0 (String.length d / 2)
  else d

(* A minimal reply when the query didn't decode: echo what the header
   offered (id, opcode, rd) and carry [rcode] with empty sections. *)
let header_only ~id ~opcode ~rd rcode =
  Wire.encode
    {
      Wire.id;
      qr = true;
      opcode;
      aa = false;
      tc = false;
      rd;
      ra = false;
      rcode;
      question = [];
      answer = [];
      additional = [];
      authority = [];
    }

(* Salvage the id/flags of an undecodable datagram, if it has them. *)
let salvage_header raw =
  if String.length raw < 4 then None
  else
    let id = (Char.code raw.[0] lsl 8) lor Char.code raw.[1] in
    let b2 = Char.code raw.[2] in
    Some (id, (b2 lsr 3) land 0xF, b2 land 0x80 <> 0, b2 land 0x01 <> 0)

let run_engine s (q : Message.query) : (Message.response, string) result =
  let b = Budget.create ~deadline_s:s.sv_deadline_s () in
  match
    Budget.protect b (fun () ->
        if Faultinject.fire Faultinject.Serve_overload then
          Faultinject.injected Faultinject.Serve_overload
            "query budget exhausted";
        Budget.check_deadline b;
        Engine.Versions.run_compiled s.sv_prog s.sv_enc q)
  with
  | Ok (Engine.Versions.Response r) -> Ok r
  | Ok (Engine.Versions.Engine_panic msg) ->
      Error ("engine-panic: " ^ msg)
  | Error reason -> Error (Budget.reason_tag reason)

(* What a disposition answers with (for the rcode counters and the
   query log); [eng] is the engine's own rcode for Answered. *)
let reply_rcode eng = function
  | Answered -> eng
  | Formerr _ -> Some Message.FormErr
  | Notimp _ -> Some Message.NotImp
  | Servfail _ -> Some Message.ServFail
  | Dropped _ -> None

(* The degradation reason carried into the query log and the
   serve.reason.* counters; "" for a clean answer. *)
let degradation_reason = function
  | Answered -> ""
  | Formerr e -> Wire.error_tag e
  | Notimp _ -> "notimp"
  | Servfail reason -> reason
  | Dropped why -> why

let handle s datagram =
  let t0 = Trace.now_s () in
  let index = s.sv_queries in
  s.sv_queries <- s.sv_queries + 1;
  (* Query identity for the sampled log, captured where it becomes
     known; blank when the datagram never yielded it. *)
  let q_id = ref 0 and q_name = ref "" and q_type = ref "" in
  let eng_rcode = ref None in
  (* The span keeps this query's degradation events (note above) in the
     trace artifact — without an open span Trace.event drops them. *)
  let o =
    Trace.with_span "serve.query" @@ fun () ->
    let raw = mangle datagram in
    let fail_reply e (id, opcode, qr, rd) =
      q_id := id;
      if qr then
        { reply = None; disposition = note (Dropped "qr set on malformed datagram"); truncated = false }
      else
        {
          reply = Some (header_only ~id ~opcode ~rd Message.FormErr);
          disposition = note (Formerr e);
          truncated = false;
        }
    in
    match Wire.decode raw with
    | Error e -> (
        match salvage_header raw with
        | None ->
            { reply = None; disposition = note (Dropped "no echoable header"); truncated = false }
        | Some hdr -> fail_reply e hdr)
    | Ok m ->
        q_id := m.Wire.id;
        if m.Wire.qr then
          { reply = None; disposition = note (Dropped "qr set"); truncated = false }
        else if m.Wire.opcode <> 0 then
          {
            reply =
              Some (header_only ~id:m.Wire.id ~opcode:m.Wire.opcode ~rd:m.Wire.rd Message.NotImp);
            disposition = note (Notimp m.Wire.opcode);
            truncated = false;
          }
        else begin
          match m.Wire.question with
          | [ q ] -> (
              q_name := Dns.Name.to_string q.Message.qname;
              q_type := Dns.Rr.rtype_to_string q.Message.qtype;
              match run_engine s q with
              | Ok r ->
                  eng_rcode := Some r.Message.rcode;
                  let reply =
                    Wire.response ~id:m.Wire.id ~rd:m.Wire.rd
                      ~question:m.Wire.question r
                  in
                  let bytes, truncated =
                    Wire.encode_truncated ~max_size:Wire.max_udp_payload reply
                  in
                  if truncated then begin
                    Trace.Metrics.incr truncated_c;
                    st := { !st with truncated = !st.truncated + 1 }
                  end;
                  { reply = Some bytes; disposition = note Answered; truncated }
              | Error reason ->
                  let servfail =
                    Wire.response ~id:m.Wire.id ~rd:m.Wire.rd
                      ~question:m.Wire.question
                      {
                        Message.rcode = Message.ServFail;
                        aa = false;
                        answer = [];
                        authority = [];
                        additional = [];
                      }
                  in
                  {
                    reply = Some (Wire.encode servfail);
                    disposition = note (Servfail reason);
                    truncated = false;
                  })
          | qs ->
              (* zero or several questions: refuse to guess which one *)
              {
                reply =
                  Some (header_only ~id:m.Wire.id ~opcode:0 ~rd:m.Wire.rd Message.FormErr);
                disposition =
                  note
                    (Formerr
                       (Wire.Count_cap
                          { section = "question"; count = List.length qs }));
                truncated = false;
              }
        end
  in
  (* Observability tail — strictly after the outcome is decided, so
     nothing here can change an answer. [Qlog.log] never raises (the
     Obsv_sink_fail contract), [maybe_roll] is one compare while the
     window is open. *)
  let now = Trace.now_s () in
  let ms = (now -. t0) *. 1000.0 in
  Trace.Metrics.observe latency_h ms;
  (match reply_rcode !eng_rcode o.disposition with
  | Some rc -> Trace.Metrics.incr (List.assoc rc rcode_c)
  | None -> ());
  note_reason (degradation_reason o.disposition);
  (match s.sv_obsv with
  | None -> ()
  | Some sink ->
      (match sink.Obsv.sk_windows with
      | Some w -> Obsv.Windows.maybe_roll ~now w
      | None -> ());
      (match sink.Obsv.sk_qlog with
      | Some q ->
          Obsv.Qlog.log q
            {
              Obsv.Qlog.q_index = index;
              q_id = !q_id;
              q_qname = !q_name;
              q_qtype = !q_type;
              q_disposition =
                (match o.disposition with
                | Answered -> "answered"
                | Formerr _ -> "formerr"
                | Notimp _ -> "notimp"
                | Servfail _ -> "servfail"
                | Dropped _ -> "dropped");
              q_rcode =
                (match reply_rcode !eng_rcode o.disposition with
                | Some rc -> Message.rcode_to_string rc
                | None -> "");
              q_reason = degradation_reason o.disposition;
              q_latency_ms = ms;
              q_deadline_ms = s.sv_deadline_s *. 1000.0;
            }
      | None -> ()));
  o

(* The full-registry exposition for this server: what the stats
   endpoint answers and what `dnsv serve` flushes on shutdown. *)
let exposition s kind =
  let snap = Trace.Metrics.snapshot () in
  let windows =
    match s.sv_obsv with
    | Some { Obsv.sk_windows = Some w; _ } -> Some w
    | _ -> None
  in
  match kind with
  | `Text -> Obsv.Expo.prometheus ~identity:s.sv_identity ?windows snap
  | `Json -> Obsv.Expo.json ~identity:s.sv_identity ?windows snap

(* ------------------------------------------------------------------ *)
(* Graceful stop                                                      *)
(* ------------------------------------------------------------------ *)

(* A cooperative stop flag the serve loop polls between datagrams (its
   select times out every 50ms, so a request is honored promptly even
   on an idle socket). [install_stop_signals] routes SIGTERM/SIGINT
   here so `dnsv serve` can flush its final snapshot and query-log
   tail and exit 0 instead of dying mid-frame. *)
let stop_flag = Atomic.make false
let request_stop () = Atomic.set stop_flag true
let stop_requested () = Atomic.get stop_flag
let clear_stop () = Atomic.set stop_flag false

let install_stop_signals () =
  let h = Sys.Signal_handle (fun _ -> request_stop ()) in
  (try Sys.set_signal Sys.sigterm h with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigint h with Invalid_argument _ | Sys_error _ -> ()

let serve_fd ?max_queries ?on_query ?stats s fd =
  let buf = Bytes.create 4096 in
  let continue received =
    match max_queries with None -> true | Some n -> received < n
  in
  let received = ref 0 in
  let extra_fds = match stats with Some ep -> [ Obsv.Endpoint.fd ep ] | None -> [] in
  while continue !received && not (stop_requested ()) do
    (* Window upkeep runs even when the socket is idle, so an idle
       server still closes (empty) windows on schedule. *)
    (match s.sv_obsv with
    | Some { Obsv.sk_windows = Some w; _ } -> Obsv.Windows.maybe_roll w
    | _ -> ());
    match Unix.select (fd :: extra_fds) [] [] 0.05 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun rfd ->
            if rfd = fd then begin
              match Unix.recvfrom fd buf 0 (Bytes.length buf) [] with
              | exception
                  Unix.Unix_error ((EINTR | EAGAIN | ECONNREFUSED), _, _) ->
                  ()
              | len, peer ->
                  incr received;
                  let o = handle s (Bytes.sub_string buf 0 len) in
                  (match on_query with Some f -> f o | None -> ());
                  (match o.reply with
                  | Some bytes -> (
                      try
                        ignore
                          (Unix.sendto fd (Bytes.of_string bytes) 0
                             (String.length bytes) [] peer)
                      with Unix.Unix_error _ -> ())
                  | None -> ())
            end
            else
              match stats with
              | Some ep ->
                  ignore
                    (Obsv.Endpoint.serve_request ep ~respond:(exposition s)
                      : bool)
              | None -> ())
          readable
  done

let serve_udp ?max_queries ?ready ?stats ~port s =
  let fd = Unix.socket PF_INET SOCK_DGRAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt fd SO_REUSEADDR true;
      Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, port));
      let bound =
        match Unix.getsockname fd with
        | ADDR_INET (_, p) -> p
        | _ -> port
      in
      (match ready with Some f -> f bound | None -> ());
      serve_fd ?max_queries ?stats s fd)
