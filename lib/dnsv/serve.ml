(* Fault-tolerant UDP answer loop over a verified engine version. *)

module Message = Dns.Message
module Zone = Dns.Zone

type server = {
  sv_config : Engine.Builder.config;
  sv_zone : Zone.t;
  sv_prog : Minir.Instr.program;
  sv_enc : Dnstree.Encode.t;
  sv_deadline_s : float;
}

let create ?(deadline_s = 0.25) ~config zone =
  let tree = Dnstree.Tree.build zone in
  {
    sv_config = config;
    sv_zone = zone;
    sv_prog = Engine.Versions.compiled config;
    sv_enc = Dnstree.Encode.encode tree;
    sv_deadline_s = deadline_s;
  }

let config s = s.sv_config
let zone s = s.sv_zone

type disposition =
  | Answered
  | Formerr of Wire.error
  | Notimp of int
  | Servfail of string
  | Dropped of string

let disposition_to_string = function
  | Answered -> "answered"
  | Formerr e -> "formerr: " ^ Wire.error_tag e
  | Notimp op -> Printf.sprintf "notimp: opcode %d" op
  | Servfail reason -> "servfail: " ^ reason
  | Dropped why -> "dropped: " ^ why

type outcome = { reply : string option; disposition : disposition; truncated : bool }

(* Counters live in the registry so `dnsv serve`'s trace export and the
   bench probes see them; [stats] reads the module-local mirror, which
   [reset_stats] can clear between tests without touching the registry. *)
let answered_c = Trace.Metrics.counter "serve.answered"
let formerr_c = Trace.Metrics.counter "serve.formerr"
let notimp_c = Trace.Metrics.counter "serve.notimp"
let servfail_c = Trace.Metrics.counter "serve.servfail"
let dropped_c = Trace.Metrics.counter "serve.dropped"
let truncated_c = Trace.Metrics.counter "serve.truncated"

type stats = {
  answered : int;
  formerr : int;
  notimp : int;
  servfail : int;
  dropped : int;
  truncated : int;
}

let zero = { answered = 0; formerr = 0; notimp = 0; servfail = 0; dropped = 0; truncated = 0 }
let st = ref zero
let stats () = !st
let reset_stats () = st := zero

let pp_stats ppf s =
  Fmt.pf ppf
    "answered=%d formerr=%d notimp=%d servfail=%d dropped=%d truncated=%d"
    s.answered s.formerr s.notimp s.servfail s.dropped s.truncated

let note (d : disposition) =
  (match d with
  | Answered ->
      Trace.Metrics.incr answered_c;
      st := { !st with answered = !st.answered + 1 }
  | Formerr e ->
      Trace.Metrics.incr formerr_c;
      st := { !st with formerr = !st.formerr + 1 };
      Trace.event "serve.formerr" ~attrs:[ ("guard", Wire.error_tag e) ]
  | Notimp op ->
      Trace.Metrics.incr notimp_c;
      st := { !st with notimp = !st.notimp + 1 };
      Trace.event "serve.notimp" ~attrs:[ ("opcode", string_of_int op) ]
  | Servfail reason ->
      Trace.Metrics.incr servfail_c;
      st := { !st with servfail = !st.servfail + 1 };
      Trace.event "serve.servfail" ~attrs:[ ("reason", reason) ]
  | Dropped why ->
      Trace.Metrics.incr dropped_c;
      st := { !st with dropped = !st.dropped + 1 };
      Trace.event "serve.dropped" ~attrs:[ ("why", why) ]);
  d

(* The chaos soak's wire-mangling sites: applied before the decoder so
   the whole decode-or-degrade path is what gets exercised. Both are
   deterministic given the datagram (the *schedule* comes from the
   armed plan's seed). *)
let mangle datagram =
  let d =
    if Faultinject.fire Faultinject.Wire_garble && String.length datagram > 0
    then begin
      let b = Bytes.of_string datagram in
      let n = Bytes.length b in
      let flip at mask =
        Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor mask))
      in
      flip (n / 3) 0xFF;
      flip (2 * n / 3) 0x55;
      Bytes.to_string b
    end
    else datagram
  in
  if Faultinject.fire Faultinject.Wire_truncate && String.length d > 1 then
    String.sub d 0 (String.length d / 2)
  else d

(* A minimal reply when the query didn't decode: echo what the header
   offered (id, opcode, rd) and carry [rcode] with empty sections. *)
let header_only ~id ~opcode ~rd rcode =
  Wire.encode
    {
      Wire.id;
      qr = true;
      opcode;
      aa = false;
      tc = false;
      rd;
      ra = false;
      rcode;
      question = [];
      answer = [];
      authority = [];
      additional = [];
    }

(* Salvage the id/flags of an undecodable datagram, if it has them. *)
let salvage_header raw =
  if String.length raw < 4 then None
  else
    let id = (Char.code raw.[0] lsl 8) lor Char.code raw.[1] in
    let b2 = Char.code raw.[2] in
    Some (id, (b2 lsr 3) land 0xF, b2 land 0x80 <> 0, b2 land 0x01 <> 0)

let run_engine s (q : Message.query) : (Message.response, string) result =
  let b = Budget.create ~deadline_s:s.sv_deadline_s () in
  match
    Budget.protect b (fun () ->
        if Faultinject.fire Faultinject.Serve_overload then
          Faultinject.injected Faultinject.Serve_overload
            "query budget exhausted";
        Budget.check_deadline b;
        Engine.Versions.run_compiled s.sv_prog s.sv_enc q)
  with
  | Ok (Engine.Versions.Response r) -> Ok r
  | Ok (Engine.Versions.Engine_panic msg) ->
      Error ("engine-panic: " ^ msg)
  | Error reason -> Error (Budget.reason_tag reason)

let handle s datagram =
  (* The span keeps this query's degradation events (note above) in the
     trace artifact — without an open span Trace.event drops them. *)
  Trace.with_span "serve.query" @@ fun () ->
  let raw = mangle datagram in
  let fail_reply e (id, opcode, qr, rd) =
    if qr then
      { reply = None; disposition = note (Dropped "qr set on malformed datagram"); truncated = false }
    else
      {
        reply = Some (header_only ~id ~opcode ~rd Message.FormErr);
        disposition = note (Formerr e);
        truncated = false;
      }
  in
  match Wire.decode raw with
  | Error e -> (
      match salvage_header raw with
      | None ->
          { reply = None; disposition = note (Dropped "no echoable header"); truncated = false }
      | Some hdr -> fail_reply e hdr)
  | Ok m ->
      if m.Wire.qr then
        { reply = None; disposition = note (Dropped "qr set"); truncated = false }
      else if m.Wire.opcode <> 0 then
        {
          reply =
            Some (header_only ~id:m.Wire.id ~opcode:m.Wire.opcode ~rd:m.Wire.rd Message.NotImp);
          disposition = note (Notimp m.Wire.opcode);
          truncated = false;
        }
      else begin
        match m.Wire.question with
        | [ q ] -> (
            match run_engine s q with
            | Ok r ->
                let reply =
                  Wire.response ~id:m.Wire.id ~rd:m.Wire.rd
                    ~question:m.Wire.question r
                in
                let bytes, truncated =
                  Wire.encode_truncated ~max_size:Wire.max_udp_payload reply
                in
                if truncated then begin
                  Trace.Metrics.incr truncated_c;
                  st := { !st with truncated = !st.truncated + 1 }
                end;
                { reply = Some bytes; disposition = note Answered; truncated }
            | Error reason ->
                let servfail =
                  Wire.response ~id:m.Wire.id ~rd:m.Wire.rd
                    ~question:m.Wire.question
                    {
                      Message.rcode = Message.ServFail;
                      aa = false;
                      answer = [];
                      authority = [];
                      additional = [];
                    }
                in
                {
                  reply = Some (Wire.encode servfail);
                  disposition = note (Servfail reason);
                  truncated = false;
                })
        | qs ->
            (* zero or several questions: refuse to guess which one *)
            {
              reply =
                Some (header_only ~id:m.Wire.id ~opcode:0 ~rd:m.Wire.rd Message.FormErr);
              disposition =
                note
                  (Formerr
                     (Wire.Count_cap
                        { section = "question"; count = List.length qs }));
              truncated = false;
            }
      end

let serve_fd ?max_queries ?on_query s fd =
  let buf = Bytes.create 4096 in
  let continue received =
    match max_queries with None -> true | Some n -> received < n
  in
  let received = ref 0 in
  while continue !received do
    match Unix.recvfrom fd buf 0 (Bytes.length buf) [] with
    | exception Unix.Unix_error ((EINTR | EAGAIN | ECONNREFUSED), _, _) -> ()
    | len, peer ->
        incr received;
        let o = handle s (Bytes.sub_string buf 0 len) in
        (match on_query with Some f -> f o | None -> ());
        (match o.reply with
        | Some bytes -> (
            try
              ignore
                (Unix.sendto fd (Bytes.of_string bytes) 0 (String.length bytes)
                   [] peer)
            with Unix.Unix_error _ -> ())
        | None -> ())
  done

let serve_udp ?max_queries ?ready ~port s =
  let fd = Unix.socket PF_INET SOCK_DGRAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt fd SO_REUSEADDR true;
      Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, port));
      let bound =
        match Unix.getsockname fd with
        | ADDR_INET (_, p) -> p
        | _ -> port
      in
      (match ready with Some f -> f bound | None -> ());
      serve_fd ?max_queries s fd)
