(* The DNS-V pipeline facade (Figure 6): end-to-end verification of one
   engine version — dependency layers against their manual
   specifications, then the whole engine (with automatic summaries at
   the resolution layers) against the top-level specification, for a
   set of query types over one or many zone configurations.

   Every entry point is resource-governed (see lib/budget): checks
   terminate within their budget, query types are fault-isolated,
   inconclusive obligations retry under escalated budgets, and the
   verdict is three-valued. *)

module Rr = Dns.Rr
module Zone = Dns.Zone
module Name = Dns.Name
module Check = Refine.Check
module Layers = Refine.Layers
module Versions = Engine.Versions
module Builder = Engine.Builder
val all_qtypes : Rr.rtype list
type verdict = {
  version : string;
  zone_origin : string;
  layer_reports : Layers.layer_report list;
  reports : Check.report list;
  retries : int; (* budget escalations performed across all checks *)
  elapsed : float;
}

(* Total solver Unknowns the verdict's checks leaned on. *)
val unknowns : verdict -> int

(* Total certificate re-validation failures across the verdict. *)
val cert_failures : verdict -> int

(* Proved | Refuted (confirmed counterexamples win over missing
   budget) | Inconclusive with the first machine-readable reason. *)
val status : verdict -> verdict Budget.outcome

(* [clean] means *proved*: a verdict that leaned on a solver Unknown or
   stopped short of its budget is not clean. *)
val clean : verdict -> bool
val issues : verdict -> string list

(* Per-query-type fault isolation; retryable inconclusive checks are
   retried up to [retries] times under budgets [escalation]× larger.
   [jobs > 1] fans the query types out over a deterministic domain pool:
   each task charges a clone of the budget (per-task isolation under the
   shared absolute deadline) and runs on domain-local solver state,
   merged at the join barrier. Verdicts are identical to [jobs = 1]. *)
(* Drop the domain-local summary-store memo (used by [verify] to reuse
   module summaries across query types and repeated runs) and the
   persistent store's parsed-entry memos, so benchmarks and tests can
   measure from a cold start. *)
val clear_summary_memo : unit -> unit

(* Deep structural check for [Store.fsck] over the query-type report
   entries this module frames ("R|…" keys); [None] for other kinds. *)
val store_entry_check :
  key:string -> payload:string -> (unit, string) result option

(* [analysis] selects how the symbolic executor uses the static
   analysis: [Trust] (default) prunes statically-dead branches without
   solver calls, [Off] disables the consultation, [Distrust] makes all
   solver calls and cross-checks each static claim (chaos/soak mode).

   [store] threads the persistent verification store through every
   level — solver results, module summaries, layer verdicts, whole
   query-type reports — keyed under content-hash fingerprints so an
   edit invalidates exactly its cone of influence. The store
   accelerates, never decides: served entries are re-validated against
   their certificates and anything failing validation is evicted and
   recomputed, so verdict fingerprints are byte-identical with and
   without it. *)
val verify :
  ?qtypes:Check.Rr.rtype list ->
  ?mode:Check.mode ->
  ?check_layers:bool ->
  ?budget:Budget.t ->
  ?retries:int ->
  ?escalation:int ->
  ?jobs:int ->
  ?analysis:Analysis.policy ->
  ?store:Store.t -> Builder.config -> Zone.t -> verdict
type batch_outcome =
  | All_clean of int
  | Failed of { zone_index : int; verdict : verdict; }
  | Partial of {
      zones_done : int; (* zones proved clean before stopping *)
      inconclusive_zones : int;
      reason : Budget.reason;
    }
(* [jobs > 1] verifies zones in parallel waves of [jobs], merging the
   verdicts in zone order, so the outcome equals the sequential fold. *)
val verify_batch :
  ?qtypes:Check.Rr.rtype list ->
  ?count:int ->
  ?seed:int ->
  ?budget:Budget.t ->
  ?retries:int ->
  ?jobs:int ->
  ?analysis:Analysis.policy ->
  ?store:Store.t -> Builder.config -> Name.t -> batch_outcome
(* ---------------- Journaled batch runs ---------------- *)

type item_status =
  | Item_proved
  | Item_refuted
  | Item_inconclusive of Budget.reason

type batch_item = {
  bi_index : int; (* zone index in generation order *)
  bi_status : item_status;
  bi_fingerprint : string; (* the zone verdict's [fingerprint] text *)
  bi_resumed : bool; (* replayed from the journal, not re-verified *)
}

type batch_run = {
  br_outcome : batch_outcome option;
      (* [None] only when replayed from a finalized journal whose
         refuting verdict cannot be rebuilt from its fingerprint *)
  br_items : batch_item list; (* in zone order *)
  br_fingerprint : string; (* item transcript + derived final line *)
  br_resumed_items : int;
  br_dropped_bytes : int; (* torn journal tail truncated on resume *)
}

(* [verify_batch] with a crash-safe write-ahead journal: each completed
   zone verdict is appended and flushed before the next zone starts, so
   a kill at any instant loses at most the zone in flight. With
   [~resume:true] the journal's intact prefix is replayed (not
   re-verified), any torn tail is truncated, the shared budget counters
   are restored, and verification continues from the first unrecorded
   zone — the resulting [br_fingerprint] is byte-identical to an
   uninterrupted run's. Resume fails (exception [Failure]) if the
   journal's header does not match this workload's identity. [on_start]
   fires on the calling domain just before a zone's verification is
   dispatched (never for replayed items); [on_item] observes each item
   as it completes or replays, in zone order. *)
val verify_batch_run :
  ?qtypes:Check.Rr.rtype list ->
  ?count:int ->
  ?seed:int ->
  ?budget:Budget.t ->
  ?retries:int ->
  ?jobs:int ->
  ?analysis:Analysis.policy ->
  ?store:Store.t ->
  ?journal:string ->
  ?resume:bool ->
  ?on_start:(int -> unit) ->
  ?on_item:(batch_item -> unit) ->
  Builder.config -> Name.t -> batch_run

val pp_verdict : Format.formatter -> verdict -> unit
val verdict_to_string : verdict -> string

(* Deterministic rendering of everything semantically meaningful in a
   verdict/batch outcome, excluding wall-clock fields: two runs agree on
   fingerprints iff they agree on every verdict-relevant bit. *)
val fingerprint : verdict -> string
val fingerprint_batch : batch_outcome -> string
