(* A fault-tolerant UDP answer loop over a verified engine version.

   The degradation contract, enforced by test_wire and the serve-smoke
   CI job: a datagram NEVER crashes the loop. Garbage that still looks
   like a query gets FORMERR; an unsupported opcode gets NOTIMP; an
   engine panic or an exhausted per-query budget gets SERVFAIL with a
   machine-readable reason (logged as a trace event, so an operator can
   tell injected overload from a real engine defect); an oversized
   answer is truncated to 512 bytes with TC set; and only datagrams
   that cannot be answered at all — responses (QR set, to avoid reply
   loops) and fragments too short to carry a header id — are dropped.

   Faultinject sites consulted per query: [Wire_garble] and
   [Wire_truncate] mangle the incoming datagram before the decoder
   sees it (the chaos soak uses these to prove the loop degrades
   instead of flipping answers), and [Serve_overload] exhausts the
   query's budget inside the engine call. *)

type server

(* Build a server for [zone] answered by engine [config]: the zone is
   encoded and the engine compiled once, up front. [deadline_s]
   (default 0.25) is the per-query wall-clock budget. [identity] is
   what the stats endpoint reports as build/engine/zone identity
   (defaults name the zone origin). *)
val create :
  ?deadline_s:float ->
  ?identity:Obsv.Expo.identity ->
  config:Engine.Builder.config ->
  Dns.Zone.t ->
  server

val config : server -> Engine.Builder.config
val zone : server -> Dns.Zone.t
val identity : server -> Obsv.Expo.identity

(* Attach an observability sink (sampled query log and/or rolling SLO
   windows). Strictly off the answer path: [handle] feeds it after
   each outcome is decided, and a sink failure can never change an
   answer (the Obsv_sink_fail contract). *)
val attach_obsv : server -> Obsv.sink -> unit
val obsv : server -> Obsv.sink option

(* How a datagram was disposed of; [reason] strings are stable
   machine-readable tags (Budget.reason_tag / "engine-panic"). *)
type disposition =
  | Answered (* an engine answer (any rcode the engine produced) *)
  | Formerr of Wire.error (* undecodable or question-less query *)
  | Notimp of int (* a query with this unsupported opcode *)
  | Servfail of string (* engine panic or budget exhaustion *)
  | Dropped of string (* no reply owed: QR set, or no echoable id *)

val disposition_to_string : disposition -> string

type outcome = {
  reply : string option; (* bytes to send back, if a reply is owed *)
  disposition : disposition;
  truncated : bool; (* reply was cut to [Wire.max_udp_payload] with TC *)
}

(* Answer one datagram. Total: never raises, whatever the bytes. *)
val handle : server -> string -> outcome

(* Cumulative counters for this domain (serve.answered, serve.formerr,
   serve.notimp, serve.servfail, serve.dropped, serve.truncated),
   reset by [reset_stats]. *)
type stats = {
  answered : int;
  formerr : int;
  notimp : int;
  servfail : int;
  dropped : int;
  truncated : int;
}

val stats : unit -> stats
val reset_stats : unit -> unit
val pp_stats : Format.formatter -> stats -> unit

(* The full-registry exposition for this server (identity + counters +
   histograms + the attached window ring): what the stats endpoint
   answers a scrape with, and what `dnsv serve` flushes on shutdown. *)
val exposition : server -> [ `Text | `Json ] -> string

(* Cooperative graceful stop: the serve loop polls [stop_requested]
   between datagrams (its select wakes at least every 50ms), so a
   [request_stop] — or a SIGTERM/SIGINT once [install_stop_signals]
   has routed them here — lets the loop return normally instead of
   dying mid-query. [clear_stop] rearms (tests, restarts). *)
val request_stop : unit -> unit
val stop_requested : unit -> bool
val clear_stop : unit -> unit
val install_stop_signals : unit -> unit

(* Receive/answer datagrams on an already-bound UDP socket until
   [max_queries] have been *received* (forever if omitted) or a stop
   is requested. Transient socket errors (EINTR, ECONNREFUSED from
   ICMP) are swallowed; [on_query] (if given) observes each outcome.
   [stats] multiplexes an Obsv control socket into the same loop, so
   the endpoint is scrapeable while the server is under load. *)
val serve_fd :
  ?max_queries:int ->
  ?on_query:(outcome -> unit) ->
  ?stats:Obsv.Endpoint.t ->
  server ->
  Unix.file_descr ->
  unit

(* Bind 127.0.0.1:[port] (0 picks a free port) and serve on it.
   [ready] receives the actually-bound port before the loop starts. *)
val serve_udp :
  ?max_queries:int ->
  ?ready:(int -> unit) ->
  ?stats:Obsv.Endpoint.t ->
  port:int ->
  server ->
  unit
