(* The DNS-V pipeline facade (Figure 6): end-to-end verification of one
   engine version — dependency layers against their manual
   specifications, then the whole engine (with automatic summaries at
   the resolution layers) against the top-level specification, for a
   set of query types over one or many zone configurations.

   Every entry point is resource-governed: one [Budget.t] (wall-clock
   deadline, solver budget, path cap, fuel) bounds the whole run, query
   types are fault-isolated from each other, inconclusive obligations
   are retried under geometrically escalated budgets, and the verdict is
   three-valued — a check that leaned on a solver Unknown or stopped
   short is reported inconclusive, never silently clean. *)

module Rr = Dns.Rr
module Zone = Dns.Zone
module Name = Dns.Name
module Check = Refine.Check
module Layers = Refine.Layers
module Versions = Engine.Versions
module Builder = Engine.Builder

(* The query types exercised by full verification; PTR/SRV behave like
   the others and are included for completeness. *)
let all_qtypes = [ Rr.A; Rr.AAAA; Rr.NS; Rr.CNAME; Rr.SOA; Rr.MX; Rr.TXT ]

type verdict = {
  version : string;
  zone_origin : string;
  layer_reports : Layers.layer_report list;
  reports : Check.report list; (* one per query type *)
  retries : int; (* budget escalations performed across all checks *)
  elapsed : float;
}

(* Total solver Unknowns the verdict's checks leaned on. *)
let unknowns (v : verdict) =
  List.fold_left (fun a (r : Check.report) -> a + r.Check.unknowns) 0 v.reports
  + List.fold_left
      (fun a (r : Layers.layer_report) -> a + r.Layers.unknowns)
      0 v.layer_reports

(* The three-valued verdict. Refutation wins over inconclusiveness: a
   confirmed counterexample is a real bug even if another query type
   ran out of budget. *)
let status (v : verdict) : verdict Budget.outcome =
  let refuted =
    List.exists (fun (r : Check.report) -> not (Check.ok r)) v.reports
    || List.exists
         (fun (r : Layers.layer_report) -> r.Layers.mismatches <> [])
         v.layer_reports
  in
  if refuted then Budget.Refuted v
  else
    let first_reason =
      List.find_map (fun (r : Check.report) -> r.Check.inconclusive) v.reports
    in
    let first_reason =
      match first_reason with
      | Some _ -> first_reason
      | None ->
          List.find_map
            (fun (r : Layers.layer_report) -> r.Layers.inconclusive)
            v.layer_reports
    in
    match first_reason with
    | Some reason -> Budget.Inconclusive reason
    | None ->
        let u = unknowns v in
        if u > 0 then Budget.Inconclusive (Budget.Solver_unknowns { count = u })
        else Budget.Proved

(* [clean] now means *proved*: a verdict that relied on a solver
   Unknown or stopped short of its budget is not clean. *)
let clean (v : verdict) = match status v with Budget.Proved -> true | _ -> false

let issues (v : verdict) =
  List.concat_map
    (fun (r : Check.report) ->
      List.map
        (fun (m : Check.mismatch) ->
          Printf.sprintf "[%s] functional mismatch on %s: %s"
            (Rr.rtype_to_string r.Check.qtype)
            (Format.asprintf "%a" Dns.Message.pp_query m.Check.query)
            m.Check.detail)
        r.Check.mismatches
      @ List.map
          (fun (p : Check.panic_report) ->
            Printf.sprintf "[%s] runtime error on %s: %s"
              (Rr.rtype_to_string r.Check.qtype)
              (Format.asprintf "%a" Dns.Message.pp_query p.Check.panic_query)
              p.Check.reason)
          r.Check.panics
      @
      match r.Check.inconclusive with
      | Some reason ->
          [
            Printf.sprintf "[%s] inconclusive: %s"
              (Rr.rtype_to_string r.Check.qtype)
              (Budget.reason_to_string reason);
          ]
      | None -> [])
    v.reports

(* Verify [cfg] on [zone] for [qtypes].

   Fault isolation is per query type: an exception or budget exhaustion
   in one [check_version] downgrades that report to inconclusive and
   the remaining query types still run. A retryable inconclusive report
   is retried up to [retries] times, each under a budget [escalation]×
   larger (fresh counters, restarted deadline). *)
let verify ?(qtypes = all_qtypes) ?(mode = Check.With_summaries)
    ?(check_layers = true) ?budget ?(retries = 0) ?(escalation = 2)
    (cfg : Builder.config) (zone : Zone.t) : verdict =
  let t0 = Unix.gettimeofday () in
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let retries_done = ref 0 in
  let layer_reports =
    if not check_layers then []
    else
      match Versions.compiled cfg with
      | prog -> Layers.check_all ~zone ~budget prog
      | exception e ->
          (* The version failed to compile: one synthetic inconclusive
             layer report carries the reason, engine checks still run
             their own (memoized, possibly succeeding) compilation. *)
          [
            {
              Layers.layer = "(compile)";
              code_paths = 0;
              spec_paths = 0;
              pairs = 0;
              mismatches = [];
              unknowns = 0;
              inconclusive = Some (Budget.reason_of_exn e);
              elapsed = 0.0;
            };
          ]
  in
  let check_one qtype : Check.report =
    let rec go attempt b =
      let r =
        try Check.check_version ~budget:b ~mode cfg zone ~qtype
        with e ->
          (* check_version converts its own failures; this catches
             anything escaping before it (e.g. zone encoding). *)
          Check.inconclusive_report ~version:cfg.Builder.version ~qtype
            ~elapsed:0.0 (Check.reason_of_check_exn e)
      in
      match Check.status r with
      | Budget.Inconclusive reason
        when attempt < retries && Budget.retryable reason ->
          incr retries_done;
          go (attempt + 1) (Budget.escalate ~factor:escalation b)
      | _ -> r
    in
    go 0 budget
  in
  let reports = List.map check_one qtypes in
  {
    version = cfg.Builder.version;
    zone_origin = Name.to_string (Zone.origin zone);
    layer_reports;
    reports;
    retries = !retries_done;
    elapsed = Unix.gettimeofday () -. t0;
  }

(* Verify over a batch of generated zone configurations (§6.5: each run
   proves correctness for one concrete zone snapshot). Stops at the
   first zone exposing a confirmed issue; under a shared budget a
   deadline overrun ends the batch with partial results instead of
   hanging, and per-zone inconclusive verdicts are counted without
   aborting the rest. *)
type batch_outcome =
  | All_clean of int (* zones verified *)
  | Failed of { zone_index : int; verdict : verdict }
  | Partial of {
      zones_done : int; (* zones proved clean before stopping *)
      inconclusive_zones : int;
      reason : Budget.reason; (* why the batch is incomplete *)
    }

let verify_batch ?(qtypes = [ Rr.A; Rr.MX ]) ?(count = 10) ?(seed = 0) ?budget
    ?(retries = 0) (cfg : Builder.config) (origin : Name.t) : batch_outcome =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let zones = Dns.Zonegen.generate_many ~seed ~count origin in
  let rec go i proved inconcl first_reason = function
    | [] ->
        if inconcl = 0 then All_clean count
        else
          Partial
            {
              zones_done = proved;
              inconclusive_zones = inconcl;
              reason =
                Option.value first_reason
                  ~default:(Budget.Internal_error "inconclusive zones");
            }
    | zone :: rest -> (
        let v =
          verify ~qtypes ~check_layers:(i = 0) ~budget ~retries cfg zone
        in
        match status v with
        | Budget.Proved -> go (i + 1) (proved + 1) inconcl first_reason rest
        | Budget.Refuted _ -> Failed { zone_index = i; verdict = v }
        | Budget.Inconclusive reason -> (
            let first =
              match first_reason with Some _ -> first_reason | None -> Some reason
            in
            match reason with
            | Budget.Deadline_exceeded _ ->
                (* The shared wall clock is gone: every remaining zone
                   would stop the same way. Return what completed. *)
                Partial
                  {
                    zones_done = proved;
                    inconclusive_zones = inconcl + 1;
                    reason;
                  }
            | _ -> go (i + 1) proved (inconcl + 1) first rest))
  in
  go 0 0 0 None zones

let pp_verdict fmt (v : verdict) =
  Format.fprintf fmt "@[<v>engine %s on zone %s: %s (%.2fs%s)@," v.version
    v.zone_origin
    (match status v with
    | Budget.Proved -> "VERIFIED"
    | Budget.Refuted _ -> "ISSUES FOUND"
    | Budget.Inconclusive reason ->
        "INCONCLUSIVE (" ^ Budget.reason_to_string reason ^ ")")
    v.elapsed
    (if v.retries = 0 then ""
     else Printf.sprintf ", %d budget escalation(s)" v.retries);
  List.iter
    (fun (r : Layers.layer_report) ->
      Format.fprintf fmt "  layer %-18s %s@," r.Layers.layer
        (if Layers.layer_ok r then "ok"
         else
           match r.Layers.inconclusive with
           | Some reason -> "inconclusive: " ^ Budget.reason_to_string reason
           | None -> String.concat "; " r.Layers.mismatches))
    v.layer_reports;
  List.iter (fun i -> Format.fprintf fmt "  %s@," i) (issues v);
  Format.fprintf fmt "@]"

let verdict_to_string v = Format.asprintf "%a" pp_verdict v
