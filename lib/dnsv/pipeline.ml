(* The DNS-V pipeline facade (Figure 6): end-to-end verification of one
   engine version — dependency layers against their manual
   specifications, then the whole engine (with automatic summaries at
   the resolution layers) against the top-level specification, for a
   set of query types over one or many zone configurations.

   Every entry point is resource-governed: one [Budget.t] (wall-clock
   deadline, solver budget, path cap, fuel) bounds the whole run, query
   types are fault-isolated from each other, inconclusive obligations
   are retried under geometrically escalated budgets, and the verdict is
   three-valued — a check that leaned on a solver Unknown or stopped
   short is reported inconclusive, never silently clean. *)

module Rr = Dns.Rr
module Zone = Dns.Zone
module Name = Dns.Name
module Check = Refine.Check
module Layers = Refine.Layers
module Versions = Engine.Versions
module Builder = Engine.Builder
module Solver = Smt.Solver
module Summary = Symex.Summary

(* The query types exercised by full verification; PTR/SRV behave like
   the others and are included for completeness. *)
let all_qtypes = [ Rr.A; Rr.AAAA; Rr.NS; Rr.CNAME; Rr.SOA; Rr.MX; Rr.TXT ]

(* Fingerprint tags shared by the persistent-store keys built here.
   These mirror the ones in [Refine.Layers]: the zone is keyed by its
   rendered text, the budget by its semantic limits only (the wall-clock
   deadline is an operational concern, not part of what was proved). *)
let zone_fp (zone : Zone.t) =
  Digest.to_hex (Digest.string (Dns.Zonefile.render zone))

let limits_tag (b : Budget.t) =
  let num = function None -> "-" | Some n -> string_of_int n in
  Printf.sprintf "s%s,p%s,f%s"
    (num b.Budget.max_solver_steps)
    (num b.Budget.max_paths) (num b.Budget.max_fuel)

let analysis_tag = function
  | Analysis.Off -> "off"
  | Analysis.Trust -> "trust"
  | Analysis.Distrust -> "distrust"

(* Domain-local summary-store memo: one store per (version, mode, zone,
   analysis, persistent store), shared across query types, retries, and
   repeated [verify] calls — re-verifying an unchanged version reuses
   its module summaries instead of rebuilding them per check. Keying on
   the version string relies on the same invariant as the compile memo
   in [Engine.Versions.compiled]: a version string uniquely identifies
   the program. The zone and the persistent store are keyed by physical
   identity, so distinct zones (e.g. per-bug witness zones) can never
   share summaries. Gated on [Solver.caching_enabled]: with result
   caching off (the benchmark's seed-equivalent mode) every check
   builds a fresh store, as the pre-optimization pipeline did. *)
type store_key = {
  sk_version : string;
  sk_inline : bool;
  sk_zone : Zone.t;
  sk_analysis : Analysis.policy;
  sk_pstore : Store.t option;
}

let store_memo_key : (store_key * Summary.store) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let store_memo_limit = 32

(* Benchmark/test isolation: forget this domain's memoized stores (and
   the persistent store's parsed-entry memos, which cache the same
   served artifacts one level down). *)
let clear_summary_memo () =
  Domain.DLS.get store_memo_key := [];
  Store.clear_domain_memos ()

let same_pstore a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x == y
  | _ -> false

(* The persistence hook for module summaries: keyed under each
   function's cone fingerprint (an edit invalidates exactly the cone of
   influence that could change its summary) plus the zone and analysis
   policy, which both shape what the summarizer sees. If the version
   cannot compile there is nothing to fingerprint — the hook is simply
   absent and summaries stay in-memory only. *)
let summary_persist_for (pstore : Store.t option) (cfg : Builder.config)
    (analysis : Analysis.policy) (zone : Zone.t) : Summary.persist option =
  match pstore with
  | None -> None
  | Some st -> (
      match Versions.compiled cfg with
      | exception _ -> None
      | prog ->
          let tag =
            Printf.sprintf "z%s,a%s" (zone_fp zone) (analysis_tag analysis)
          in
          Some
            (Store.summary_persist st
               ~cone_of:(fun fn -> Store.Fingerprint.cone_fp prog fn)
               ~tag))

let store_for ?pstore (cfg : Builder.config) (mode : Check.mode)
    (analysis : Analysis.policy) (zone : Zone.t) : Summary.store =
  if not (Solver.caching_enabled ()) then Summary.create_store ()
  else begin
    let memo = Domain.DLS.get store_memo_key in
    let inline = match mode with Check.Inline_all -> true | _ -> false in
    let version = cfg.Builder.version in
    match
      List.find_opt
        (fun (k, _) ->
          k.sk_zone == zone
          && k.sk_inline = inline
          && String.equal k.sk_version version
          && k.sk_analysis = analysis
          && same_pstore k.sk_pstore pstore)
        !memo
    with
    | Some (_, store) -> store
    | None ->
        let persist = summary_persist_for pstore cfg analysis zone in
        let store = Summary.create_store ?persist () in
        if List.length !memo >= store_memo_limit then memo := [];
        memo :=
          ( {
              sk_version = version;
              sk_inline = inline;
              sk_zone = zone;
              sk_analysis = analysis;
              sk_pstore = pstore;
            },
            store )
          :: !memo;
        store
  end

type verdict = {
  version : string;
  zone_origin : string;
  layer_reports : Layers.layer_report list;
  reports : Check.report list; (* one per query type *)
  retries : int; (* budget escalations performed across all checks *)
  elapsed : float;
}

(* Total solver Unknowns the verdict's checks leaned on. *)
let unknowns (v : verdict) =
  List.fold_left (fun a (r : Check.report) -> a + r.Check.unknowns) 0 v.reports
  + List.fold_left
      (fun a (r : Layers.layer_report) -> a + r.Layers.unknowns)
      0 v.layer_reports

(* Total certificate re-validation failures across the verdict. *)
let cert_failures (v : verdict) =
  List.fold_left
    (fun a (r : Check.report) -> a + r.Check.cert_failures)
    0 v.reports
  + List.fold_left
      (fun a (r : Layers.layer_report) -> a + r.Layers.cert_failures)
      0 v.layer_reports

(* The three-valued verdict. Refutation wins over inconclusiveness: a
   confirmed counterexample is a real bug even if another query type
   ran out of budget. *)
let status (v : verdict) : verdict Budget.outcome =
  let refuted =
    List.exists (fun (r : Check.report) -> not (Check.ok r)) v.reports
    || List.exists
         (fun (r : Layers.layer_report) -> r.Layers.mismatches <> [])
         v.layer_reports
  in
  if refuted then Budget.Refuted v
  else
    let first_reason =
      List.find_map (fun (r : Check.report) -> r.Check.inconclusive) v.reports
    in
    let first_reason =
      match first_reason with
      | Some _ -> first_reason
      | None ->
          List.find_map
            (fun (r : Layers.layer_report) -> r.Layers.inconclusive)
            v.layer_reports
    in
    match first_reason with
    | Some reason -> Budget.Inconclusive reason
    | None ->
        let cf = cert_failures v in
        if cf > 0 then
          Budget.Inconclusive
            (Budget.Cert_invalid
               (Printf.sprintf "%d certificate(s) failed re-validation" cf))
        else
          let u = unknowns v in
          if u > 0 then
            Budget.Inconclusive (Budget.Solver_unknowns { count = u })
          else Budget.Proved

(* [clean] now means *proved*: a verdict that relied on a solver
   Unknown or stopped short of its budget is not clean. *)
let clean (v : verdict) = match status v with Budget.Proved -> true | _ -> false

let issues (v : verdict) =
  List.concat_map
    (fun (r : Check.report) ->
      List.map
        (fun (m : Check.mismatch) ->
          Printf.sprintf "[%s] functional mismatch on %s: %s"
            (Rr.rtype_to_string r.Check.qtype)
            (Format.asprintf "%a" Dns.Message.pp_query m.Check.query)
            m.Check.detail)
        r.Check.mismatches
      @ List.map
          (fun (p : Check.panic_report) ->
            Printf.sprintf "[%s] runtime error on %s: %s"
              (Rr.rtype_to_string r.Check.qtype)
              (Format.asprintf "%a" Dns.Message.pp_query p.Check.panic_query)
              p.Check.reason)
          r.Check.panics
      @
      match r.Check.inconclusive with
      | Some reason ->
          [
            Printf.sprintf "[%s] inconclusive: %s"
              (Rr.rtype_to_string r.Check.qtype)
              (Budget.reason_to_string reason);
          ]
      | None -> [])
    v.reports

(* ------------------------------------------------------------------ *)
(* Persistent query-type reports (the store's "R" entries)            *)
(* ------------------------------------------------------------------ *)

(* A clean (proved) query-type report can be served from the store: its
   key covers every input that shapes it — the cone fingerprint of the
   engine entry point (any edit that could reach [resolve] invalidates
   it), the zone, the query type, the checking mode, the analysis
   policy, the budget limits and the retry policy. Degraded reports are
   never persisted: a verdict that leaned on an Unknown or stopped
   short must be re-derived, never replayed. Nothing is served under
   [Analysis.Distrust] — that mode exists to re-check the static
   analysis, and serving recorded verdicts would defeat it. *)
let report_clean (r : Check.report) =
  r.Check.mismatches = [] && r.Check.panics = [] && r.Check.unknowns = 0
  && r.Check.cert_failures = 0
  && r.Check.inconclusive = None

let report_key ~prog ~zone ~budget ~qtype ~mode ~analysis ~retries ~escalation
    =
  Store.derived_key ~prefix:"R"
    ~parts:
      [
        "report-v2";
        Store.Fingerprint.cone_fp prog "resolve";
        zone_fp zone;
        Rr.rtype_to_string qtype;
        (match mode with Check.Inline_all -> "inline" | _ -> "summ");
        analysis_tag analysis;
        limits_tag budget;
        Printf.sprintf "r%d,e%d" retries escalation;
      ]

let report_payload (r : Check.report) (nretries : int) : string =
  let b = Buffer.create 128 in
  Store.Codec.wint b nretries;
  Store.Codec.wint b r.Check.engine_paths;
  Store.Codec.wint b r.Check.spec_paths;
  Store.Codec.wint b r.Check.pairs_checked;
  Store.Codec.wint b r.Check.solver_calls;
  Store.Codec.wint b r.Check.static_discharged;
  Store.Codec.wint b r.Check.ip_discharged;
  Store.Codec.wint b r.Check.cert_checks;
  Buffer.add_char b (if r.Check.stateless then '1' else '0');
  Buffer.add_char b (if r.Check.summary_fallback then '1' else '0');
  Store.Codec.wint b (List.length r.Check.summary_cases);
  List.iter
    (fun (fn, n) ->
      Store.Codec.wstr b fn;
      Store.Codec.wint b n)
    r.Check.summary_cases;
  Buffer.contents b

let report_of_payload ~version ~qtype payload : (Check.report * int) option =
  let module C = Store.Codec in
  match
    let r = C.reader payload in
    let rbool r =
      match C.rbyte r with
      | '1' -> true
      | '0' -> false
      | _ -> raise (C.Bad "bool")
    in
    let nretries = C.rint r in
    let engine_paths = C.rint r in
    let spec_paths = C.rint r in
    let pairs_checked = C.rint r in
    let solver_calls = C.rint r in
    let static_discharged = C.rint r in
    let ip_discharged = C.rint r in
    let cert_checks = C.rint r in
    let stateless = rbool r in
    let summary_fallback = rbool r in
    let n = C.rint r in
    if n < 0 || n > 1_000_000 then raise (C.Bad "summary cases");
    let cases = ref [] in
    for _ = 1 to n do
      let fn = C.rstr r in
      let k = C.rint r in
      cases := (fn, k) :: !cases
    done;
    if not (C.at_end r) then raise (C.Bad "trailing bytes");
    ( {
        Check.version;
        qtype;
        engine_paths;
        spec_paths;
        pairs_checked;
        solver_calls;
        static_discharged;
        ip_discharged;
        unknowns = 0;
        cert_checks;
        cert_failures = 0;
        summary_cases = List.rev !cases;
        summary_times = [];
        mismatches = [];
        panics = [];
        stateless;
        inconclusive = None;
        summary_fallback;
        elapsed = 0.0;
      },
      nretries )
  with
  | exception C.Bad _ -> None
  | v -> Some v

(* Deep structural check for [Store.fsck] over entries this module
   framed ("R|…" keys); [None] for anything else. *)
let store_entry_check ~key ~payload =
  if String.length key >= 2 && String.sub key 0 2 = "R|" then
    Some
      (match report_of_payload ~version:"" ~qtype:Rr.A payload with
      | Some _ -> Ok ()
      | None -> Error "undecodable report payload")
  else None

(* Verify [cfg] on [zone] for [qtypes].

   Fault isolation is per query type: an exception or budget exhaustion
   in one [check_version] downgrades that report to inconclusive and
   the remaining query types still run. A retryable inconclusive report
   is retried up to [retries] times, each under a budget [escalation]×
   larger (fresh counters, restarted deadline).

   [store] threads the persistent verification store through every
   level: solver results (via the [Smt.Solver] persistence hook
   installed for the duration of the call), module summaries, layer
   verdicts and whole query-type reports. The store accelerates, never
   decides — everything served was re-validated against its
   certificate, and anything that fails validation is evicted and
   recomputed. *)
let verify ?(qtypes = all_qtypes) ?(mode = Check.With_summaries)
    ?(check_layers = true) ?budget ?(retries = 0) ?(escalation = 2)
    ?(jobs = 1) ?(analysis = Analysis.Trust) ?store (cfg : Builder.config)
    (zone : Zone.t) : verdict =
  Trace.with_span "verify"
    ~attrs:
      [
        ("version", cfg.Builder.version);
        ("zone", Name.to_string (Zone.origin zone));
      ]
  @@ fun () ->
  (* How the work was scheduled must not show up in the deterministic
     skeleton — identical span trees across [--jobs] values is an
     acceptance invariant. *)
  Trace.add_attr ~det:false "jobs" (string_of_int jobs);
  let t0 = Unix.gettimeofday () in
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  (* The budget's *limits* are part of the run's identity (determinism
     across jobs/schedulings); its consumption is not. *)
  (let limit name v =
     Option.iter (fun x -> Trace.add_attr name (string_of_int x)) v
   in
   Option.iter
     (fun s -> Trace.add_attr "budget.deadline_s" (Printf.sprintf "%g" s))
     budget.Budget.deadline_s;
   limit "budget.solver_steps" budget.Budget.max_solver_steps;
   limit "budget.paths" budget.Budget.max_paths;
   limit "budget.fuel" budget.Budget.max_fuel);
  let with_store f =
    match store with
    | None -> f ()
    | Some st -> (
        Store.with_solver st @@ fun () ->
        (* Persist interprocedural summaries too — but only when the
           version compiles, so there is a program to fingerprint
           cones against. *)
        match Versions.compiled cfg with
        | exception _ -> f ()
        | prog ->
            Store.with_analysis st
              ~cone_of:(fun fn -> Store.Fingerprint.cone_fp prog fn)
              f)
  in
  with_store @@ fun () ->
  let layer_reports =
    if not check_layers then []
    else
      match Versions.compiled cfg with
      | prog -> Layers.check_all ~zone ~budget ?store ~analysis prog
      | exception e ->
          (* The version failed to compile: one synthetic inconclusive
             layer report carries the reason, engine checks still run
             their own (memoized, possibly succeeding) compilation. *)
          [
            {
              Layers.layer = "(compile)";
              code_paths = 0;
              spec_paths = 0;
              pairs = 0;
              mismatches = [];
              unknowns = 0;
              cert_failures = 0;
              inconclusive = Some (Budget.reason_of_exn e);
              elapsed = 0.0;
            };
          ]
  in
  let check_one b qtype : Check.report * int =
    Trace.with_span "qtype" ~attrs:[ ("qtype", Rr.rtype_to_string qtype) ]
    @@ fun () ->
    let sumstore = store_for ?pstore:store cfg mode analysis zone in
    let rec go attempt nretries b =
      let r =
        Trace.with_span "attempt"
          ~attrs:[ ("attempt", string_of_int attempt) ]
        @@ fun () ->
        try
          Check.check_version ~budget:b ~mode ~store:sumstore ~analysis cfg
            zone ~qtype
        with e ->
          (* check_version converts its own failures; this catches
             anything escaping before it (e.g. zone encoding). *)
          Check.inconclusive_report ~version:cfg.Builder.version ~qtype
            ~elapsed:0.0 (Check.reason_of_check_exn e)
      in
      match Check.status r with
      | Budget.Inconclusive reason
        when attempt < retries && Budget.retryable reason ->
          go (attempt + 1) (nretries + 1) (Budget.escalate ~factor:escalation b)
      | Budget.Inconclusive reason ->
          (* The final answer for this qtype is degraded: name the root
             cause on the qtype span, so an Inconclusive verdict's trace
             carries its reason. *)
          Trace.event "degraded"
            ~attrs:[ ("reason", Budget.reason_tag reason) ];
          (r, nretries)
      | _ -> (r, nretries)
    in
    let rkey =
      match store with
      | Some st when analysis <> Analysis.Distrust -> (
          match Versions.compiled cfg with
          | exception _ -> None
          | prog ->
              Some
                ( st,
                  report_key ~prog ~zone ~budget:b ~qtype ~mode ~analysis
                    ~retries ~escalation ))
      | _ -> None
    in
    match rkey with
    | None -> go 0 0 b
    | Some (st, key) -> (
        let served =
          match Store.find st key with
          | None -> None
          | Some payload -> (
              match
                report_of_payload ~version:cfg.Builder.version ~qtype payload
              with
              | Some rv -> Some rv
              | None ->
                  (* Undecodable payload: treat exactly like a failed
                     certificate — evict and recompute. *)
                  Store.evict ~cert_failure:true st key;
                  None)
        in
        match served with
        | Some (r, n) ->
            Trace.add_attr ~det:false "store" "hit";
            (r, n)
        | None ->
            let ((r, n) as res) = go 0 0 b in
            if report_clean r then Store.add st key (report_payload r n);
            res)
  in
  let results =
    if jobs <= 1 then List.map (check_one budget) qtypes
    else
      (* One task per query type, fanned out over a deterministic domain
         pool. Each task charges a clone of the caller's budget (per-task
         isolation under the shared absolute deadline) and runs against
         its worker's domain-local solver state. The pool itself merges
         each worker's metrics delta and span forest into this domain at
         the join barrier, in task order. *)
      Parallel.Domainpool.map ~jobs
        (fun qtype -> check_one (Budget.clone budget) qtype)
        qtypes
  in
  {
    version = cfg.Builder.version;
    zone_origin = Name.to_string (Zone.origin zone);
    layer_reports;
    reports = List.map fst results;
    retries = List.fold_left (fun a (_, n) -> a + n) 0 results;
    elapsed = Unix.gettimeofday () -. t0;
  }

(* Verify over a batch of generated zone configurations (§6.5: each run
   proves correctness for one concrete zone snapshot). Stops at the
   first zone exposing a confirmed issue; under a shared budget a
   deadline overrun ends the batch with partial results instead of
   hanging, and per-zone inconclusive verdicts are counted without
   aborting the rest. *)
type batch_outcome =
  | All_clean of int (* zones verified *)
  | Failed of { zone_index : int; verdict : verdict }
  | Partial of {
      zones_done : int; (* zones proved clean before stopping *)
      inconclusive_zones : int;
      reason : Budget.reason; (* why the batch is incomplete *)
    }

let verify_batch ?(qtypes = [ Rr.A; Rr.MX ]) ?(count = 10) ?(seed = 0) ?budget
    ?(retries = 0) ?(jobs = 1) ?(analysis = Analysis.Trust) ?store
    (cfg : Builder.config) (origin : Name.t) : batch_outcome =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let zones = Dns.Zonegen.generate_many ~seed ~count origin in
  (* One zone's verdict depends only on (cfg, zone, qtypes, budget,
     retries): the merge below consumes verdicts strictly in zone order,
     so the batch outcome is the same whether the verdicts were computed
     one by one (jobs <= 1, with the sequential early stop) or in
     parallel waves of [jobs] zones (where a stop mid-wave discards the
     rest of the wave). *)
  let verify_zone (i, zone) =
    let b = if jobs <= 1 then budget else Budget.clone budget in
    verify ~qtypes ~check_layers:(i = 0) ~budget:b ~retries ~analysis ?store
      cfg zone
  in
  let finish proved inconcl first_reason =
    if inconcl = 0 then All_clean count
    else
      Partial
        {
          zones_done = proved;
          inconclusive_zones = inconcl;
          reason =
            Option.value first_reason
              ~default:(Budget.Internal_error "inconclusive zones");
        }
  in
  (* Fold one verdict into the accumulator; [Error] is the early stop. *)
  let step i proved inconcl first_reason v =
    match status v with
    | Budget.Proved -> Ok (proved + 1, inconcl, first_reason)
    | Budget.Refuted _ -> Error (Failed { zone_index = i; verdict = v })
    | Budget.Inconclusive reason -> (
        let first =
          match first_reason with Some _ -> first_reason | None -> Some reason
        in
        match reason with
        | Budget.Deadline_exceeded _ ->
            (* The shared wall clock is gone: every remaining zone
               would stop the same way. Return what completed. *)
            Error
              (Partial
                 {
                   zones_done = proved;
                   inconclusive_zones = inconcl + 1;
                   reason;
                 })
        | _ -> Ok (proved, inconcl + 1, first))
  in
  let indexed = List.mapi (fun i z -> (i, z)) zones in
  if jobs <= 1 then
    let rec go proved inconcl first_reason = function
      | [] -> finish proved inconcl first_reason
      | (i, zone) :: rest -> (
          match step i proved inconcl first_reason (verify_zone (i, zone)) with
          | Ok (proved, inconcl, first) -> go proved inconcl first rest
          | Error outcome -> outcome)
    in
    go 0 0 None indexed
  else
    (* Waves of [jobs] zones; each wave joins before the next starts, and
       its verdicts are merged in zone order. *)
    let rec take n = function
      | x :: rest when n > 0 ->
          let wave, rest' = take (n - 1) rest in
          (x :: wave, rest')
      | rest -> ([], rest)
    in
    let rec go proved inconcl first_reason = function
      | [] -> finish proved inconcl first_reason
      | pending -> (
          let wave, rest = take jobs pending in
          let verdicts = Parallel.Domainpool.map ~jobs verify_zone wave in
          let folded =
            List.fold_left2
              (fun acc (i, _) v ->
                match acc with
                | Error _ -> acc (* stopped mid-wave: discard the rest *)
                | Ok (proved, inconcl, first) -> step i proved inconcl first v)
              (Ok (proved, inconcl, first_reason))
              wave verdicts
          in
          match folded with
          | Ok (proved, inconcl, first) -> go proved inconcl first rest
          | Error outcome -> outcome)
    in
    go 0 0 None indexed

let pp_verdict fmt (v : verdict) =
  Format.fprintf fmt "@[<v>engine %s on zone %s: %s (%.2fs%s)@," v.version
    v.zone_origin
    (match status v with
    | Budget.Proved -> "VERIFIED"
    | Budget.Refuted _ -> "ISSUES FOUND"
    | Budget.Inconclusive reason ->
        "INCONCLUSIVE (" ^ Budget.reason_to_string reason ^ ")")
    v.elapsed
    (if v.retries = 0 then ""
     else Printf.sprintf ", %d budget escalation(s)" v.retries);
  List.iter
    (fun (r : Layers.layer_report) ->
      Format.fprintf fmt "  layer %-18s %s@," r.Layers.layer
        (if Layers.layer_ok r then "ok"
         else
           match r.Layers.inconclusive with
           | Some reason -> "inconclusive: " ^ Budget.reason_to_string reason
           | None -> String.concat "; " r.Layers.mismatches))
    v.layer_reports;
  List.iter (fun i -> Format.fprintf fmt "  %s@," i) (issues v);
  Format.fprintf fmt "@]"

let verdict_to_string v = Format.asprintf "%a" pp_verdict v

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                       *)
(* ------------------------------------------------------------------ *)

(* A deterministic rendering of everything semantically meaningful in a
   verdict — statuses, path/pair/solver-call counts, mismatches with
   their concrete replays, panics, layer outcomes, retries — excluding
   the wall-clock fields ([elapsed], [summary_times]), which can never
   be byte-identical across runs. Two runs that agree on fingerprints
   agree on every verdict-relevant bit; used to assert that parallel
   and sequential verification coincide exactly. *)
let fingerprint_report (b : Buffer.t) (r : Check.report) =
  (* [solver_calls] and [summary_cases] are deliberately excluded: they
     report how much work the caches saved, which depends on how query
     types were scheduled over workers, not on what was proved. *)
  Printf.bprintf b "report %s/%s paths=%d/%d pairs=%d unk=%d certfail=%d\n"
    r.Check.version
    (Rr.rtype_to_string r.Check.qtype)
    r.Check.engine_paths r.Check.spec_paths r.Check.pairs_checked
    r.Check.unknowns r.Check.cert_failures;
  List.iter
    (fun (m : Check.mismatch) ->
      Printf.bprintf b " mismatch %s | %s | engine=%s | spec=%s\n"
        (Format.asprintf "%a" Dns.Message.pp_query m.Check.query)
        m.Check.detail m.Check.engine_replay m.Check.spec_replay)
    r.Check.mismatches;
  List.iter
    (fun (p : Check.panic_report) ->
      Printf.bprintf b " panic %s | %s\n"
        (Format.asprintf "%a" Dns.Message.pp_query p.Check.panic_query)
        p.Check.reason)
    r.Check.panics;
  Printf.bprintf b " stateless=%b fallback=%b inconclusive=%s\n"
    r.Check.stateless r.Check.summary_fallback
    (match r.Check.inconclusive with
    | None -> "-"
    | Some reason -> Budget.reason_to_string reason)

let fingerprint_layer (b : Buffer.t) (r : Layers.layer_report) =
  Printf.bprintf b
    "layer %s paths=%d/%d pairs=%d unk=%d certfail=%d inconclusive=%s\n"
    r.Layers.layer r.Layers.code_paths r.Layers.spec_paths r.Layers.pairs
    r.Layers.unknowns r.Layers.cert_failures
    (match r.Layers.inconclusive with
    | None -> "-"
    | Some reason -> Budget.reason_to_string reason);
  List.iter (fun m -> Printf.bprintf b " layer-mismatch %s\n" m)
    r.Layers.mismatches

let fingerprint (v : verdict) : string =
  let b = Buffer.create 256 in
  Printf.bprintf b "verdict %s zone=%s retries=%d status=%s\n" v.version
    v.zone_origin v.retries
    (match status v with
    | Budget.Proved -> "proved"
    | Budget.Refuted _ -> "refuted"
    | Budget.Inconclusive reason ->
        "inconclusive:" ^ Budget.reason_to_string reason);
  List.iter (fingerprint_layer b) v.layer_reports;
  List.iter (fingerprint_report b) v.reports;
  Buffer.contents b

let fingerprint_batch (o : batch_outcome) : string =
  match o with
  | All_clean n -> Printf.sprintf "all-clean %d" n
  | Failed { zone_index; verdict } ->
      Printf.sprintf "failed zone=%d\n%s" zone_index (fingerprint verdict)
  | Partial { zones_done; inconclusive_zones; reason } ->
      Printf.sprintf "partial done=%d inconclusive=%d reason=%s" zones_done
        inconclusive_zones (Budget.reason_to_string reason)

(* ------------------------------------------------------------------ *)
(* Journaled batch runs                                               *)
(* ------------------------------------------------------------------ *)

type item_status =
  | Item_proved
  | Item_refuted
  | Item_inconclusive of Budget.reason

type batch_item = {
  bi_index : int;
  bi_status : item_status;
  bi_fingerprint : string; (* the zone verdict's [fingerprint] text *)
  bi_resumed : bool; (* replayed from the journal, not re-verified *)
}

type batch_run = {
  br_outcome : batch_outcome option;
  br_items : batch_item list;
  br_fingerprint : string;
  br_resumed_items : int;
  br_dropped_bytes : int;
}

let item_status_wire = function
  | Item_proved -> "proved"
  | Item_refuted -> "refuted"
  | Item_inconclusive r -> "inconclusive " ^ Budget.reason_to_wire r

let item_status_of_wire s =
  match s with
  | "proved" -> Some Item_proved
  | "refuted" -> Some Item_refuted
  | _ ->
      let pre = "inconclusive " in
      let n = String.length pre in
      if String.length s > n && String.sub s 0 n = pre then
        Option.map
          (fun r -> Item_inconclusive r)
          (Budget.reason_of_wire (String.sub s n (String.length s - n)))
      else None

(* The workload identity recorded as the journal header: resuming is
   only legal when every input that shapes the batch transcript —
   engine version, origin, zone recipe, query types, retry policy —
   agrees byte-for-byte. *)
let batch_header (cfg : Builder.config) (origin : Name.t) ~count ~seed ~retries
    ~qtypes =
  Printf.sprintf
    "dnsv-batch v1 version=%s origin=%s count=%d seed=%d qtypes=%s retries=%d"
    cfg.Builder.version (Name.to_string origin) count seed
    (String.concat "," (List.map Rr.rtype_to_string qtypes))
    retries

(* One journal record per completed item:

     item <index>
     status <wire>
     budget <solver_steps> <paths> <fuel> <retries>
     <verdict fingerprint, multi-line>

   The budget line snapshots cumulative shared-budget consumption so a
   resumed sequential run keeps counting where the killed run stopped
   instead of granting itself a fresh allowance. *)
let record_of_item (it : batch_item) (b : Budget.t) : string =
  let c = Budget.consumption b in
  Printf.sprintf "item %d\nstatus %s\nbudget %d %d %d %d\n%s" it.bi_index
    (item_status_wire it.bi_status)
    c.Budget.solver_steps_used c.Budget.paths_used c.Budget.fuel_used
    c.Budget.retries_used it.bi_fingerprint

let parse_item_record (s : string) :
    (batch_item * (int * int * int * int)) option =
  match String.split_on_char '\n' s with
  | l1 :: l2 :: l3 :: rest -> (
      match (String.split_on_char ' ' l1, String.split_on_char ' ' l3) with
      | [ "item"; i ], [ "budget"; a; b; c; d ] ->
          let ( let* ) = Option.bind in
          let* i = int_of_string_opt i in
          let* st =
            if String.length l2 > 7 && String.sub l2 0 7 = "status " then
              item_status_of_wire (String.sub l2 7 (String.length l2 - 7))
            else None
          in
          let* a = int_of_string_opt a in
          let* b = int_of_string_opt b in
          let* c = int_of_string_opt c in
          let* d = int_of_string_opt d in
          Some
            ( {
                bi_index = i;
                bi_status = st;
                bi_fingerprint = String.concat "\n" rest;
                bi_resumed = true;
              },
              (a, b, c, d) )
      | _ -> None)
  | _ -> None

(* The derived final line, computed from the item transcript alone so a
   resumed run and an uninterrupted run of the same workload produce
   byte-identical text. *)
let batch_final_line (items : batch_item list) (count : int) : string =
  match
    List.find_opt
      (fun it -> match it.bi_status with Item_refuted -> true | _ -> false)
      items
  with
  | Some it -> Printf.sprintf "failed zone=%d" it.bi_index
  | None ->
      let proved =
        List.length (List.filter (fun it -> it.bi_status = Item_proved) items)
      in
      let inconcl = List.length items - proved in
      if inconcl = 0 && proved >= count then Printf.sprintf "all-clean %d" count
      else if inconcl = 0 then Printf.sprintf "interrupted done=%d" proved
      else
        let reason =
          List.find_map
            (fun it ->
              match it.bi_status with
              | Item_inconclusive r -> Some r
              | _ -> None)
            items
        in
        Printf.sprintf "partial done=%d inconclusive=%d reason=%s" proved
          inconcl
          (match reason with Some r -> Budget.reason_to_wire r | None -> "-")

let run_fingerprint (items : batch_item list) (count : int) : string =
  let b = Buffer.create 1024 in
  List.iter
    (fun it ->
      Printf.bprintf b "item %d %s\n%s" it.bi_index
        (item_status_wire it.bi_status)
        it.bi_fingerprint)
    items;
  Buffer.add_string b (batch_final_line items count);
  Buffer.add_char b '\n';
  Buffer.contents b

(* Best-effort outcome when the run is replayed entirely from a
   finalized journal. A refuting verdict is journaled only as its
   fingerprint, so [Failed] cannot be rebuilt — that replay reports
   [None] and callers fall back on the item transcript. *)
let outcome_of_items (items : batch_item list) (count : int) :
    batch_outcome option =
  if
    List.exists
      (fun it -> match it.bi_status with Item_refuted -> true | _ -> false)
      items
  then None
  else
    let proved =
      List.length (List.filter (fun it -> it.bi_status = Item_proved) items)
    in
    let inconcl = List.length items - proved in
    if inconcl = 0 && proved >= count then Some (All_clean count)
    else if inconcl = 0 then None (* interrupted, never finished *)
    else
      let reason =
        (* A deadline overrun stops the batch, so if it happened it is
           the last journaled item; it names the outcome like the live
           fold does. Otherwise the first inconclusive reason wins. *)
        match List.rev items with
        | { bi_status = Item_inconclusive (Budget.Deadline_exceeded _ as r); _ }
          :: _ ->
            Some r
        | _ ->
            List.find_map
              (fun it ->
                match it.bi_status with
                | Item_inconclusive r -> Some r
                | _ -> None)
              items
      in
      Some
        (Partial
           {
             zones_done = proved;
             inconclusive_zones = inconcl;
             reason =
               Option.value reason
                 ~default:(Budget.Internal_error "inconclusive zones");
           })

(* [verify_batch] with a write-ahead journal and resume: each completed
   zone verdict is appended (status, budget snapshot, fingerprint) and
   flushed before the next zone starts, so killing the process at any
   instant loses at most the zone in flight. [resume] salvages the
   journal's intact prefix, truncates any torn tail, replays the
   recorded items without re-verifying them, restores the shared budget
   counters, and continues from the first unrecorded zone. The run
   fingerprint is derived uniformly from the item transcript, so a
   killed-and-resumed run is byte-identical to an uninterrupted one. *)
let verify_batch_run ?(qtypes = [ Rr.A; Rr.MX ]) ?(count = 10) ?(seed = 0)
    ?budget ?(retries = 0) ?(jobs = 1) ?(analysis = Analysis.Trust) ?store
    ?journal ?(resume = false) ?on_start ?on_item (cfg : Builder.config)
    (origin : Name.t) : batch_run =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let header = batch_header cfg origin ~count ~seed ~retries ~qtypes in
  let zones = Dns.Zonegen.generate_many ~seed ~count origin in
  let indexed = List.mapi (fun i z -> (i, z)) zones in
  (* Fold one item status into (proved, inconclusive, first_reason);
     [Error] is the early stop, shared between replay and live items. *)
  let step_status i st (proved, inconcl, first) =
    match st with
    | Item_proved -> Ok (proved + 1, inconcl, first)
    | Item_refuted -> Error (`Failed_at i)
    | Item_inconclusive reason -> (
        let first = match first with Some _ -> first | None -> Some reason in
        match reason with
        | Budget.Deadline_exceeded _ ->
            Error (`Deadline (proved, inconcl + 1, reason))
        | _ -> Ok (proved, inconcl + 1, first))
  in
  let notify it = match on_item with Some f -> f it | None -> () in
  (* Fired on the calling domain just before a zone's verification is
     dispatched (never for replayed items) — progress reporting. *)
  let notify_start i = match on_start with Some f -> f i | None -> () in
  let run jn replayed dropped : batch_run =
    let start = List.length replayed in
    List.iter notify replayed;
    let acc = ref (List.rev replayed) (* newest first *) in
    let emit it =
      acc := it :: !acc;
      (match jn with
      | Some j -> Journal.append j (record_of_item it budget)
      | None -> ());
      notify it
    in
    let item_of i v =
      let st =
        match status v with
        | Budget.Proved -> Item_proved
        | Budget.Refuted _ -> Item_refuted
        | Budget.Inconclusive r -> Item_inconclusive r
      in
      {
        bi_index = i;
        bi_status = st;
        bi_fingerprint = fingerprint v;
        bi_resumed = false;
      }
    in
    let verify_zone (i, zone) =
      let b = if jobs <= 1 then budget else Budget.clone budget in
      verify ~qtypes ~check_layers:(i = 0) ~budget:b ~retries ~analysis ?store
        cfg zone
    in
    let finish_run (outcome : batch_outcome option) =
      let items = List.rev !acc in
      (match jn with
      | Some j ->
          Journal.finalize j (batch_final_line items count);
          Journal.close j
      | None -> ());
      {
        br_outcome = outcome;
        br_items = items;
        br_fingerprint = run_fingerprint items count;
        br_resumed_items = start;
        br_dropped_bytes = dropped;
      }
    in
    let replay_state =
      List.fold_left
        (fun acc it ->
          match acc with
          | Error _ -> acc
          | Ok st -> step_status it.bi_index it.bi_status st)
        (Ok (0, 0, None))
        replayed
    in
    match replay_state with
    (* The killed run had already stopped: nothing left to verify. *)
    | Error (`Failed_at _) -> finish_run None
    | Error (`Deadline (proved, inconcl, reason)) ->
        finish_run
          (Some
             (Partial
                { zones_done = proved; inconclusive_zones = inconcl; reason }))
    | Ok st0 ->
        let pending = List.filter (fun (i, _) -> i >= start) indexed in
        let finish (proved, inconcl, first_reason) =
          if inconcl = 0 then All_clean count
          else
            Partial
              {
                zones_done = proved;
                inconclusive_zones = inconcl;
                reason =
                  Option.value first_reason
                    ~default:(Budget.Internal_error "inconclusive zones");
              }
        in
        let step (i, _) st v =
          let it = item_of i v in
          emit it;
          match step_status i it.bi_status st with
          | Ok st -> Ok st
          | Error (`Failed_at _) ->
              Error (Failed { zone_index = i; verdict = v })
          | Error (`Deadline (proved, inconcl, reason)) ->
              Error
                (Partial
                   { zones_done = proved; inconclusive_zones = inconcl; reason })
        in
        let outcome =
          if jobs <= 1 then
            let rec go st = function
              | [] -> finish st
              | iz :: rest -> (
                  notify_start (fst iz);
                  match step iz st (verify_zone iz) with
                  | Ok st -> go st rest
                  | Error o -> o)
            in
            go st0 pending
          else
            (* Waves of [jobs] zones, merged in zone order; a stop
               mid-wave discards (and does not journal) the rest of the
               wave, matching the sequential early stop exactly. *)
            let rec take n = function
              | x :: rest when n > 0 ->
                  let wave, rest' = take (n - 1) rest in
                  (x :: wave, rest')
              | rest -> ([], rest)
            in
            let rec go st = function
              | [] -> finish st
              | pending -> (
                  let wave, rest = take jobs pending in
                  List.iter (fun (i, _) -> notify_start i) wave;
                  let verdicts = Parallel.Domainpool.map ~jobs verify_zone wave in
                  let folded =
                    List.fold_left2
                      (fun acc iz v ->
                        match acc with
                        | Error _ -> acc
                        | Ok st -> step iz st v)
                      (Ok st) wave verdicts
                  in
                  match folded with Ok st -> go st rest | Error o -> o)
            in
            go st0 pending
        in
        finish_run (Some outcome)
  in
  let guarded jn replayed dropped =
    (* An injected torn-write kill (or any other escape) must not leak
       the journal's descriptor: the torn bytes are already flushed, so
       closing adds nothing to the file. *)
    try run jn replayed dropped
    with e ->
      (match jn with
      | Some j -> ( try Journal.close j with _ -> ())
      | None -> ());
      raise e
  in
  match journal with
  | None -> run None [] 0
  | Some path when not resume ->
      guarded (Some (Journal.create ~path ~header)) [] 0
  | Some path -> (
      match Journal.open_resume ~path ~header with
      | Error msg -> failwith ("cannot resume journal " ^ path ^ ": " ^ msg)
      | Ok (j, rec_) ->
          let parsed = List.filter_map parse_item_record rec_.Journal.records in
          let items = List.map fst parsed in
          if rec_.Journal.final <> None then begin
            (* A finalized journal is a complete transcript: replay it
               without re-running anything. *)
            Journal.close j;
            (match on_item with Some f -> List.iter f items | None -> ());
            {
              br_outcome = outcome_of_items items count;
              br_items = items;
              br_fingerprint = run_fingerprint items count;
              br_resumed_items = List.length items;
              br_dropped_bytes = rec_.Journal.dropped_bytes;
            }
          end
          else begin
            (* Restore the shared budget counters recorded with the
               last completed item. *)
            (match List.rev parsed with
            | (_, (s, p, f, r)) :: _ ->
                budget.Budget.solver_steps <- s;
                budget.Budget.paths <- p;
                budget.Budget.fuel <- f;
                budget.Budget.retries <- r
            | [] -> ());
            guarded (Some j) items rec_.Journal.dropped_bytes
          end)
