(* Seeded query-load generator: the proof-under-fire half of the wire
   path. Generates a deterministic mix of valid queries (owner names,
   children of owner names, out-of-zone names, all rtypes) and
   malformed datagrams (Wire.Selfcheck.malformed_query — at least a
   header, QR clear, garbage body), fires them through a transport,
   and reports answer rates, an rcode tally, QPS and latency
   percentiles. Latencies go through the Trace.Metrics histogram
   [loadgen.latency_ms], so percentiles come from the same
   power-of-two buckets the trace artifact exports, and a `dnsv
   loadgen --trace-out` run leaves the whole distribution on disk. *)

type mix = {
  queries : int;
  malformed_pct : int; (* 0..100: percentage of datagrams that are garbage *)
  seed : int;
}

val default_mix : mix

(* datagram -> reply, if one arrived in time. Must not raise. *)
type transport = string -> string option

(* In-process transport over [Serve.handle] — no sockets, used by the
   bench probe and the fault-seed tests. *)
val inproc : Serve.server -> transport

(* UDP transport to [addr] with a per-query receive timeout; the
   socket lives for the duration of [f]. *)
val with_udp :
  ?timeout_s:float -> Unix.sockaddr -> (transport -> 'a) -> 'a

(* The [i]-th datagram of a mix (pure; the CI smoke job and tests rely
   on the same mix being replayable from its seed). *)
val datagram : zone:Dns.Zone.t -> mix -> int -> [ `Valid | `Malformed ] * string

type result = {
  lg_sent : int;
  lg_malformed : int; (* how many sent datagrams were garbage *)
  lg_answered : int; (* replies that arrived *)
  lg_rcodes : (string * int) list; (* decoded-reply rcode tally, sorted *)
  lg_undecodable : int; (* replies Wire.decode rejected — must be 0 *)
  lg_timeouts : int; (* queries with no reply *)
  lg_elapsed_s : float;
  lg_qps : float;
  lg_p50_ms : float;
  lg_p90_ms : float;
  lg_p99_ms : float;
  (* Power-of-two-bucket quantile error bounds: each percentile above
     is its bucket's upper edge, and the true quantile lies in
     (lo, hi] — at most a factor of two wide. Reported so bucket-edge
     percentiles never read as exact. *)
  lg_p50_lo_ms : float;
  lg_p90_lo_ms : float;
  lg_p99_lo_ms : float;
  lg_max_ms : float;
}

val run : ?zone:Dns.Zone.t -> transport -> mix -> result

(* answered = sent (every datagram of the mix got a reply) and every
   reply decoded. The malformed fraction makes this a liveness check:
   garbage must come back FORMERR, not dropped or crashed into. *)
val all_answered : result -> bool

val pp : Format.formatter -> result -> unit
