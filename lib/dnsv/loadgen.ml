(* Seeded query-load generator over a wire transport. *)

module Message = Dns.Message
module Name = Dns.Name
module Rr = Dns.Rr
module Zone = Dns.Zone

type mix = { queries : int; malformed_pct : int; seed : int }

let default_mix = { queries = 500; malformed_pct = 10; seed = 0x10AD }

type transport = string -> string option

let inproc server datagram = (Serve.handle server datagram).Serve.reply

let with_udp ?(timeout_s = 0.5) addr f =
  let fd = Unix.socket PF_INET SOCK_DGRAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd addr;
      let buf = Bytes.create 4096 in
      let transport datagram =
        try
          ignore (Unix.send fd (Bytes.of_string datagram) 0 (String.length datagram) []);
          match Unix.select [ fd ] [] [] timeout_s with
          | [], _, _ -> None
          | _ ->
              let len = Unix.recv fd buf 0 (Bytes.length buf) [] in
              Some (Bytes.sub_string buf 0 len)
        with Unix.Unix_error _ -> None
      in
      f transport)

(* The valid half of the mix: a seeded walk over the zone's owner
   names plus never-existing children and out-of-zone names, across
   all rtypes — the same name population the differential tests use,
   so the engine sees exact hits, NODATA, NXDOMAIN, referrals and
   REFUSED under load, not just one happy path. *)
let datagram ~zone (m : mix) i =
  let r = Random.State.make [| 0x10AD; m.seed; i |] in
  let pct = max 0 (min 100 m.malformed_pct) in
  if Random.State.int r 100 < pct then
    (`Malformed, Wire.Selfcheck.malformed_query ~seed:m.seed i)
  else begin
    let owners = Array.of_list (Zone.owner_names zone) in
    let base =
      if Array.length owners = 0 then Zone.origin zone
      else owners.(Random.State.int r (Array.length owners))
    in
    let qname =
      match Random.State.int r 4 with
      | 0 | 1 -> base
      | 2 -> "nxchild" :: base (* almost surely NXDOMAIN or a referral *)
      | _ -> [ "out"; "of"; "zone" ] (* REFUSED *)
    in
    let rtypes = Array.of_list Rr.all_rtypes in
    let qtype = rtypes.(Random.State.int r (Array.length rtypes)) in
    let q = { Message.qname; qtype } in
    (`Valid, Wire.encode (Wire.query ~id:(i land 0xFFFF) ~rd:true q))
  end

type result = {
  lg_sent : int;
  lg_malformed : int;
  lg_answered : int;
  lg_rcodes : (string * int) list;
  lg_undecodable : int;
  lg_timeouts : int;
  lg_elapsed_s : float;
  lg_qps : float;
  lg_p50_ms : float;
  lg_p90_ms : float;
  lg_p99_ms : float;
  lg_p50_lo_ms : float;
  lg_p90_lo_ms : float;
  lg_p99_lo_ms : float;
  lg_max_ms : float;
}

let latency_h = Trace.Metrics.histogram "loadgen.latency_ms"

let run ?(zone = Spec.Fixtures.reference_zone) (transport : transport) (m : mix)
    =
  let before = Trace.Metrics.snapshot () in
  let tally = Hashtbl.create 8 in
  let malformed = ref 0
  and answered = ref 0
  and undecodable = ref 0
  and timeouts = ref 0
  and max_ms = ref 0.0 in
  let t0 = Trace.now_s () in
  for i = 0 to m.queries - 1 do
    let kind, bytes = datagram ~zone m i in
    (match kind with `Malformed -> incr malformed | `Valid -> ());
    let q0 = Trace.now_s () in
    (match transport bytes with
    | None -> incr timeouts
    | Some reply -> (
        let ms = (Trace.now_s () -. q0) *. 1000.0 in
        Trace.Metrics.observe latency_h ms;
        if ms > !max_ms then max_ms := ms;
        incr answered;
        match Wire.decode reply with
        | Ok msg ->
            let k = Message.rcode_to_string msg.Wire.rcode in
            Hashtbl.replace tally k
              (1 + Option.value ~default:0 (Hashtbl.find_opt tally k))
        | Error _ -> incr undecodable))
  done;
  let elapsed = Trace.now_s () -. t0 in
  let after = Trace.Metrics.snapshot () in
  (* The reported percentile is [hist_quantile]'s bucket upper edge;
     the paired lower edge makes the power-of-two bucketing's error
     bound explicit — the true quantile lies in (lo, hi]. *)
  let quantile q =
    match
      Trace.Metrics.get_hist (Trace.Metrics.diff after before) "loadgen.latency_ms"
    with
    | Some h -> Trace.Metrics.hist_quantile_bounds h q
    | None -> (0.0, 0.0)
  in
  let p50_lo, p50 = quantile 0.5 in
  let p90_lo, p90 = quantile 0.9 in
  let p99_lo, p99 = quantile 0.99 in
  {
    lg_sent = m.queries;
    lg_malformed = !malformed;
    lg_answered = !answered;
    lg_rcodes =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [] |> List.sort compare;
    lg_undecodable = !undecodable;
    lg_timeouts = !timeouts;
    lg_elapsed_s = elapsed;
    lg_qps = (if elapsed > 0.0 then float_of_int m.queries /. elapsed else 0.0);
    lg_p50_ms = p50;
    lg_p90_ms = p90;
    lg_p99_ms = p99;
    lg_p50_lo_ms = p50_lo;
    lg_p90_lo_ms = p90_lo;
    lg_p99_lo_ms = p99_lo;
    lg_max_ms = !max_ms;
  }

let all_answered r =
  r.lg_answered = r.lg_sent && r.lg_undecodable = 0 && r.lg_timeouts = 0

let pp ppf r =
  Fmt.pf ppf
    "@[<v>loadgen: %d sent (%d malformed), %d answered, %d undecodable, %d \
     timeouts@,%.0f qps over %.2fs; latency p50=%.3gms p90=%.3gms p99=%.3gms \
     max=%.3gms@,quantile bounds (pow2 buckets): p50 in (%.3g,%.3g] p90 in \
     (%.3g,%.3g] p99 in (%.3g,%.3g] ms@,rcodes: %a@]"
    r.lg_sent r.lg_malformed r.lg_answered r.lg_undecodable r.lg_timeouts
    r.lg_qps r.lg_elapsed_s r.lg_p50_ms r.lg_p90_ms r.lg_p99_ms r.lg_max_ms
    r.lg_p50_lo_ms r.lg_p50_ms r.lg_p90_lo_ms r.lg_p90_ms r.lg_p99_lo_ms
    r.lg_p99_ms
    (Fmt.list ~sep:Fmt.sp (fun ppf (k, v) -> Fmt.pf ppf "%s=%d" k v))
    r.lg_rcodes
