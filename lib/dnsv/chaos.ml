(* Deterministic chaos soak: seeded fault plans over every injection
   site, asserting the soundness monotone (faults may lose verdicts,
   never flip them) and journal kill-and-resume fidelity. See chaos.mli
   for the contract. *)

module Rr = Dns.Rr
module Name = Dns.Name
module Message = Dns.Message
module Solver = Smt.Solver
module Versions = Engine.Versions
module Fixtures = Spec.Fixtures

type outcome = {
  plans : int;
  verify_runs : int;
  torn_runs : int;
  store_runs : int;
  truncated_store_runs : int;
  wire_runs : int;
  fired : int;
  survived : int;
  degraded : int;
  resumed_identical : int;
  store_resumed_identical : int;
  violations : string list;
}

let ok (o : outcome) = o.violations = []

(* ------------------------------------------------------------------ *)
(* Seeded plans                                                       *)
(* ------------------------------------------------------------------ *)

(* The same minimal-standard LCG as [Faultinject.arm_seeded], so a plan
   is a pure function of its seed. *)
let lcg s = ((s * 48271) + 11) land 0x3FFFFFFF

type plan = {
  sites : Faultinject.site list; (* 1-2 distinct sites *)
  after : int; (* base firing index, small so faults actually land *)
  persistent : bool;
}

let plan_of_seed seed : plan =
  let all = Array.of_list Faultinject.all_sites in
  let r1 = lcg (seed + 1) in
  let r2 = lcg r1 in
  let r3 = lcg r2 in
  let r4 = lcg r3 in
  let r5 = lcg r4 in
  let s1 = all.(r2 mod Array.length all) in
  let s2 = all.(r3 mod Array.length all) in
  let sites = if r1 mod 2 = 0 || s1 = s2 then [ s1 ] else [ s1; s2 ] in
  { sites; after = 1 + (r5 mod 8); persistent = r4 mod 4 = 0 }

let site_names sites =
  String.concat "+" (List.map Faultinject.site_to_string sites)

let arm_plan (p : plan) =
  List.iteri
    (fun k s -> Faultinject.arm ~persistent:p.persistent ~after:(p.after + k) s)
    p.sites

(* ------------------------------------------------------------------ *)
(* Workloads                                                          *)
(* ------------------------------------------------------------------ *)

(* Both monotone workloads run the same witness zone and query type:
   engine 1.0 refutes on it (Table-2 bug 1), its -fixed twin proves.
   Small on purpose — the soak runs hundreds of them. *)
let witness_zone () = (Fixtures.witness 1).Fixtures.zone
let proved_cfg = Versions.fixed Versions.v1_0
let refuted_cfg = Versions.v1_0

(* A generous deadline, reachable only through injected clock skew, so
   the [Clock_overrun] site has a deadline to overrun. *)
(* Chaos runs distrust the static analysis: every solver call is still
   made (so injected-fault firing order matches the fault-free plan) and
   each static claim is cross-checked against the certified solver —
   the degrade-never-flip monotone covers the analysis too. *)
let verify_wl ?store cfg zone =
  let budget = Budget.create ~deadline_s:3600.0 () in
  Pipeline.verify ~qtypes:[ Rr.MX ] ~check_layers:false ~budget
    ~analysis:Analysis.Distrust ?store cfg zone

(* The batch workload for the journal kill-and-resume leg. *)
let batch_origin = Name.of_string_exn "chaos.example"
let batch_count = 3

let batch_wl ?journal ?resume () =
  Pipeline.verify_batch_run ~qtypes:[ Rr.A ] ~count:batch_count ~seed:7
    ~analysis:Analysis.Distrust ?journal ?resume proved_cfg batch_origin

let status_name = function
  | Budget.Proved -> "proved"
  | Budget.Refuted _ -> "refuted"
  | Budget.Inconclusive r -> "inconclusive:" ^ Budget.reason_tag r

let scrub () =
  Faultinject.reset ();
  Solver.clear_caches ();
  Pipeline.clear_summary_memo ();
  Store.clear_domain_memos ();
  Serve.reset_stats ()

(* ------------------------------------------------------------------ *)
(* Persistent-store legs                                              *)
(* ------------------------------------------------------------------ *)

let store_sites =
  [ Faultinject.Store_corrupt; Faultinject.Store_stale;
    Faultinject.Store_lock_held ]

let has_store_site (p : plan) =
  List.exists (fun s -> List.mem s store_sites) p.sites

(* ------------------------------------------------------------------ *)
(* Wire legs                                                          *)
(* ------------------------------------------------------------------ *)

(* Obsv_sink_fail rides the wire leg: the leg's server carries a live
   100%-sampled query log, so every query is an arrival at the sink
   site, and the verdict check proves a failing log never changes an
   answer (degrade-never-affect). *)
let wire_sites =
  [ Faultinject.Wire_garble; Faultinject.Wire_truncate;
    Faultinject.Serve_overload; Faultinject.Obsv_sink_fail ]

let has_wire_site (p : plan) =
  List.exists (fun s -> List.mem s wire_sites) p.sites

(* How many datagrams each wire leg pushes through the serve loop, and
   what fraction of them is deliberate garbage. Small: the soak runs
   many plans, and one fault plan only needs a handful of arrivals to
   land inside the window. *)
let wire_queries = 24
let wire_malformed_pct = 25

(* Truthfulness check for one serve-loop reply under faults. A garbled
   datagram can legitimately decode to a *different* well-formed
   question, so the ground truth is computed for the question the
   reply echoes, not the one the leg meant to send: whatever question
   the server claims to be answering, the answer must be the
   specification's. Degradations (FORMERR, SERVFAIL, NOTIMP,
   truncation, a missing echo, a drop) lose the answer — allowed; a
   decodable full reply that disagrees with [Spec.Rrlookup.resolve] is
   a flip — a violation. *)
type wire_verdict = Wire_ok | Wire_degraded | Wire_flip of string

let wire_reply_verdict zone (reply : string option) : wire_verdict =
  match reply with
  | None -> Wire_degraded
  | Some bytes -> (
      match Wire.decode bytes with
      | Error e -> Wire_flip ("reply undecodable: " ^ Wire.error_to_string e)
      | Ok msg -> (
          match (msg.Wire.rcode, msg.Wire.question) with
          | (Message.ServFail | Message.FormErr | Message.NotImp), _ ->
              Wire_degraded
          | _, [ q ] ->
              if msg.Wire.tc then Wire_degraded
              else begin
                let want = Spec.Rrlookup.resolve zone q in
                let got = Wire.to_response msg in
                if Message.equal_response want got then Wire_ok
                else
                  Wire_flip
                    (Printf.sprintf "answer for %s %s differs from the spec"
                       (Name.to_string q.Message.qname)
                       (Rr.rtype_to_string q.Message.qtype))
              end
          | _, _ -> Wire_degraded))

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (try Sys.readdir dir with Sys_error _ -> [||]);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

(* A scratch copy of the warmed store's data file, so injected
   corruption, evictions and truncation never bleed into later plans. *)
let copy_store src =
  let dst = Filename.temp_file "dnsv-chaos" ".store" in
  Sys.remove dst;
  Sys.mkdir dst 0o755;
  let from = Filename.concat src "store.data" in
  if Sys.file_exists from then begin
    let ic = open_in_bin from in
    let n = in_channel_length ic in
    let bytes = really_input_string ic n in
    close_in ic;
    let oc = open_out_bin (Filename.concat dst "store.data") in
    output_string oc bytes;
    close_out oc
  end;
  dst

(* Cut the store's data file at a seeded offset, simulating a kill
   mid-append (or any partial write) at an arbitrary byte boundary. *)
let truncate_store dir offset =
  let path = Filename.concat dir "store.data" in
  if Sys.file_exists path then begin
    let size = (Unix.stat path).Unix.st_size in
    if size > 0 then Unix.truncate path (offset mod size)
  end

(* ------------------------------------------------------------------ *)
(* The soak                                                           *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 1) ?(plans = 200) () : outcome =
  scrub ();
  let zone = witness_zone () in
  (* Fault-free baselines: the soak is meaningless if the workloads do
     not start where they claim to. Their fingerprints are the
     reference the store legs must keep reproducing. *)
  let v_proved = verify_wl proved_cfg zone in
  (match Pipeline.status v_proved with
  | Budget.Proved -> ()
  | s -> failwith ("chaos: proved baseline is " ^ status_name s));
  let v_refuted = verify_wl refuted_cfg zone in
  (match Pipeline.status v_refuted with
  | Budget.Refuted _ -> ()
  | s -> failwith ("chaos: refuted baseline is " ^ status_name s));
  let fp_proved = Pipeline.fingerprint v_proved in
  let fp_refuted = Pipeline.fingerprint v_refuted in
  (* The warmed store the store-fault legs copy from: populated once,
     fault-free, by the same workloads. Forced lazily so soaks whose
     plans never sample a store site pay nothing. *)
  let warm_dir =
    lazy
      (let dir = Filename.temp_file "dnsv-chaos" ".warmstore" in
       Sys.remove dir;
       Sys.mkdir dir 0o755;
       let st = Store.open_ dir in
       Fun.protect
         ~finally:(fun () -> Store.close st)
         (fun () ->
           ignore (verify_wl ~store:st proved_cfg zone);
           ignore (verify_wl ~store:st refuted_cfg zone));
       dir)
  in
  let batch_ref = batch_wl () in
  (* The serve loop the wire legs mangle datagrams at: a verified-fixed
     engine (v3.0-fixed knows SRV) over the kitchen-sink zone. Forced
     lazily so soaks whose plans never sample a wire site never pay
     the encode + compile. *)
  let wire_server =
    lazy
      (let s =
         Serve.create ~config:(Versions.fixed Versions.v3_0)
           Fixtures.reference_zone
       in
       (* A live 100%-sampled query log so Obsv_sink_fail has one
          arrival per query; windows ride along. The sink is strictly
          off the answer path — that is exactly what the leg checks. *)
       let qpath = Filename.temp_file "dnsv-chaos" ".qlog" in
       let qlog = Obsv.Qlog.create ~path:qpath ~seed:1 ~rate_pct:100 () in
       Serve.attach_obsv s
         (Obsv.sink ~qlog ~windows:(Obsv.Windows.create ()) ());
       (s, qlog, qpath))
  in
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun m -> violations := m :: !violations) fmt
  in
  let verify_runs = ref 0
  and torn_runs = ref 0
  and store_runs = ref 0
  and truncated_store_runs = ref 0
  and wire_runs = ref 0
  and fired = ref 0
  and survived = ref 0
  and degraded = ref 0
  and resumed_identical = ref 0
  and store_resumed_identical = ref 0 in
  (* One monotone run under the armed plan: alternate the proved and
     refuted workloads by seed and assert the soundness monotone on
     whatever comes back. [run_wl] lets the store legs substitute a
     store-backed workload; arming happens here, before the workload
     starts, so faults at store-open time land too. Returns which
     workload ran. *)
  let monotone_leg ?(run_wl = fun cfg -> verify_wl cfg zone) pseed plan =
    let refuted_wl = pseed land 1 = 1 in
    arm_plan plan;
    let cfg = if refuted_wl then refuted_cfg else proved_cfg in
    let result =
      match run_wl cfg with
      | v -> Ok (Pipeline.status v)
      | exception e -> Error e
    in
    let plan_fired =
      (* A one-shot site disarms itself when it fires; a persistent
         site fired iff its arrival counter reached its index. *)
      List.exists
        (fun (k, s) ->
          if plan.persistent then Faultinject.calls s >= plan.after + k
          else not (Faultinject.armed s))
        (List.mapi (fun k s -> (k, s)) plan.sites)
    in
    if plan_fired then incr fired;
    (match result with
    | Error (Faultinject.Injected _) | Error (Budget.Exhausted _) ->
        (* An injected fault escaped the isolated checks entirely:
           no verdict was produced, which is a loss, not a flip. *)
        incr degraded
    | Error e ->
        violation "plan %d (%s): escaped exception %s" pseed
          (site_names plan.sites) (Printexc.to_string e)
    | Ok st -> (
        match (st, refuted_wl) with
        | Budget.Refuted _, false ->
            violation
              "plan %d (%s, after=%d%s): proved workload REFUTED under faults"
              pseed (site_names plan.sites) plan.after
              (if plan.persistent then ", persistent" else "")
        | Budget.Proved, true ->
            violation
              "plan %d (%s, after=%d%s): refuted workload PROVED under faults"
              pseed (site_names plan.sites) plan.after
              (if plan.persistent then ", persistent" else "")
        | (Budget.Proved, false) | (Budget.Refuted _, true) -> incr survived
        | Budget.Inconclusive _, _ -> incr degraded));
    refuted_wl
  in
  for i = 0 to plans - 1 do
    let pseed = seed + i in
    let plan = plan_of_seed pseed in
    (* One span per plan: a violating plan's trace names its seed and
       the sites it armed. *)
    Trace.with_span "plan"
      ~attrs:
        [
          ("seed", string_of_int pseed);
          ("sites", site_names plan.sites);
          ("after", string_of_int plan.after);
          ("persistent", string_of_bool plan.persistent);
        ]
    @@ fun () ->
    Faultinject.reset ();
    if List.mem Faultinject.Journal_torn plan.sites then begin
      (* Kill-and-resume leg. Only the tear site is armed: the resumed
         transcript is compared byte-for-byte against the fault-free
         reference, so any other armed fault would be a real
         difference, not a soundness signal. Firing index 2..5 covers
         every frame after the header (tearing the header makes the
         journal unresumable by design, which is a different test). *)
      incr torn_runs;
      let path = Filename.temp_file "dnsv-chaos" ".journal" in
      Faultinject.arm ~after:(2 + (plan.after mod 4)) Faultinject.Journal_torn;
      let killed =
        match batch_wl ~journal:path () with
        | _ -> false
        | exception Faultinject.Injected _ -> true
      in
      if killed then incr fired;
      Faultinject.reset ();
      (match batch_wl ~journal:path ~resume:true () with
      | r ->
          if String.equal r.Pipeline.br_fingerprint batch_ref.Pipeline.br_fingerprint
          then incr resumed_identical
          else
            violation
              "plan %d (journal-torn, killed=%b): resumed transcript differs \
               from the uninterrupted run"
              pseed killed
      | exception e ->
          violation "plan %d (journal-torn): resume raised %s" pseed
            (Printexc.to_string e));
      (try Sys.remove path with Sys_error _ -> ())
    end
    else if has_wire_site plan then begin
      (* Wire leg: a seeded query mix (a quarter deliberate garbage)
         through the serve loop while the plan's faults mangle
         datagrams and exhaust budgets under it. Nothing may escape
         [Serve.handle], and every decodable full reply must match the
         spec on its echoed question. *)
      incr wire_runs;
      let server, _, _ = Lazy.force wire_server in
      let zone = Serve.zone server in
      arm_plan plan;
      let mix =
        { Loadgen.queries = wire_queries; malformed_pct = wire_malformed_pct;
          seed = pseed }
      in
      let okq = ref 0 and deg = ref 0 in
      for qi = 0 to wire_queries - 1 do
        let _kind, bytes = Loadgen.datagram ~zone mix qi in
        match Serve.handle server bytes with
        | exception e ->
            violation "plan %d (%s): Serve.handle raised %s" pseed
              (site_names plan.sites) (Printexc.to_string e)
        | o -> (
            match wire_reply_verdict zone o.Serve.reply with
            | Wire_ok -> incr okq
            | Wire_degraded -> incr deg
            | Wire_flip why ->
                violation "plan %d (%s, after=%d%s): %s" pseed
                  (site_names plan.sites) plan.after
                  (if plan.persistent then ", persistent" else "")
                  why)
      done;
      let plan_fired =
        List.exists
          (fun (k, s) ->
            if plan.persistent then Faultinject.calls s >= plan.after + k
            else not (Faultinject.armed s))
          (List.mapi (fun k s -> (k, s)) plan.sites)
      in
      if plan_fired then incr fired;
      if !deg > 0 then incr degraded else if !okq > 0 then incr survived;
      Faultinject.reset ()
    end
    else if has_store_site plan then begin
      (* Store leg: the same monotone assertion, run over a scratch
         copy of the warmed store with store fault sites armed —
         corruption, staleness and lock contention may cost reuse,
         never truth. Followed by the kill-mid-store-write leg: cut the
         scratch store at a seeded byte (simulating a kill at any
         instant of an append) and re-verify fault-free from cold
         caches; the verdict fingerprint must match the fault-free
         baseline byte-for-byte. *)
      incr store_runs;
      let scratch = copy_store (Lazy.force warm_dir) in
      let refuted_wl =
        monotone_leg pseed plan ~run_wl:(fun cfg ->
            let st = Store.open_ scratch in
            Fun.protect
              ~finally:(fun () -> Store.close st)
              (fun () -> verify_wl ~store:st cfg zone))
      in
      Faultinject.reset ();
      (* Cold caches: the truncated-store run must answer from the
         (shortened) store plus fresh work, not from this process's
         in-memory caches warmed by the faulted run. *)
      Solver.clear_caches ();
      Pipeline.clear_summary_memo ();
      Store.clear_domain_memos ();
      incr truncated_store_runs;
      truncate_store scratch (lcg (pseed + 13));
      let cfg = if refuted_wl then refuted_cfg else proved_cfg in
      (match
         let st = Store.open_ scratch in
         Fun.protect
           ~finally:(fun () -> Store.close st)
           (fun () -> Pipeline.fingerprint (verify_wl ~store:st cfg zone))
       with
      | fp ->
          let want = if refuted_wl then fp_refuted else fp_proved in
          if String.equal fp want then incr store_resumed_identical
          else
            violation
              "plan %d (%s): truncated-store re-verify differs from the \
               fault-free fingerprint"
              pseed (site_names plan.sites)
      | exception e ->
          violation "plan %d (%s): truncated-store re-verify raised %s" pseed
            (site_names plan.sites) (Printexc.to_string e));
      rm_rf scratch
    end
    else begin
      (* Monotone leg: alternate the proved and refuted workloads. *)
      incr verify_runs;
      ignore (monotone_leg pseed plan : bool);
      Faultinject.reset ();
      (* Corrupted cache entries persist in the memo tables by design
         (validation rejects them on every later hit); scrub so the
         next plan starts from honest caches. *)
      if List.mem Faultinject.Cache_corrupt plan.sites then begin
        Solver.clear_caches ();
        Pipeline.clear_summary_memo ()
      end
    end
  done;
  if Lazy.is_val warm_dir then rm_rf (Lazy.force warm_dir);
  if Lazy.is_val wire_server then begin
    let _, qlog, qpath = Lazy.force wire_server in
    Obsv.Qlog.close qlog;
    try Sys.remove qpath with Sys_error _ -> ()
  end;
  scrub ();
  {
    plans;
    verify_runs = !verify_runs;
    torn_runs = !torn_runs;
    store_runs = !store_runs;
    truncated_store_runs = !truncated_store_runs;
    wire_runs = !wire_runs;
    fired = !fired;
    survived = !survived;
    degraded = !degraded;
    resumed_identical = !resumed_identical;
    store_resumed_identical = !store_resumed_identical;
    violations = List.rev !violations;
  }

let pp fmt (o : outcome) =
  Format.fprintf fmt
    "@[<v>chaos soak: %d plans (%d monotone, %d store, %d wire, %d \
     journal-torn), faults fired in %d@,monotone: %d survived, %d degraded \
     to inconclusive@,journal: %d/%d resumed byte-identical@,store: %d/%d \
     truncated-store re-verifies matched the fault-free \
     fingerprint@,violations: %d@]"
    o.plans o.verify_runs o.store_runs o.wire_runs o.torn_runs o.fired
    o.survived o.degraded o.resumed_identical o.torn_runs
    o.store_resumed_identical o.truncated_store_runs
    (List.length o.violations);
  List.iter (fun v -> Format.fprintf fmt "@,  VIOLATION: %s" v) o.violations
