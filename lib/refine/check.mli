(* The refinement checker (§4.3, Figure 6).

   Engine side: full-path symbolic execution of `resolve` over the
   concrete in-heap domain tree with a symbolic query, yielding path
   conditions and the final Response memory image per path.
   Specification side: Specsym's partition of the same query space.

   For every overlapping (engine path, spec path) pair the checker
   discharges equality of the response images with the SMT solver;
   failures concretize into a real query via the model, which is
   replayed concretely on both the engine interpreter and the concrete
   specification (so every reported bug comes with a confirmed
   counterexample). Reachable panic paths are safety violations
   (§4.1). *)

module Term = Smt.Term
module Solver = Smt.Solver
module Model = Smt.Model
module Value = Minir.Value
module Name = Dns.Name
module Rr = Dns.Rr
module Zone = Dns.Zone
module Message = Dns.Message
module Layout = Dnstree.Layout
module Encode = Dnstree.Encode
module Rrlookup = Spec.Rrlookup
module Sval = Symex.Sval
module Exec = Symex.Exec
module Summary = Symex.Summary
type mode = Inline_all | With_summaries
type mismatch = {
  query : Message.query;
  detail : string;
  engine_replay : string;
  spec_replay : string;
}
type panic_report = { panic_query : Message.query; reason : string; }
type report = {
  version : string;
  qtype : Rr.rtype;
  engine_paths : int;
  spec_paths : int;
  pairs_checked : int;
  solver_calls : int;
  static_discharged : int; (* branches pruned by the static analysis *)
  ip_discharged : int; (* ... justified only by the interprocedural layer *)
  unknowns : int; (* solver Unknowns this check leaned on *)
  cert_checks : int; (* verdict certificates validated *)
  cert_failures : int; (* certificates rejected (answers degraded) *)
  summary_cases : (string * int) list;
  summary_times : (string * float) list;
  mismatches : mismatch list;
  panics : panic_report list;
  stateless : bool;
  inconclusive : Budget.reason option; (* the check stopped short *)
  summary_fallback : bool; (* With_summaries degraded to Inline_all *)
  elapsed : float;
}

(* No mismatches and no panics — NOT the same as proved: a check that
   leaned on solver Unknowns or stopped short is [ok] but inconclusive.
   Use [status] for the three-valued verdict. *)
val ok : report -> bool

(* Proved | Refuted (with the report as counterexample carrier) |
   Inconclusive with a machine-readable reason. *)
val status : report -> report Budget.outcome

(* A zeroed report recording why a check stopped before results; the
   cert counters survive so a crash downstream of a certificate
   rejection still shows the rejection. *)
val inconclusive_report :
  ?summary_fallback:bool ->
  ?cert_checks:int ->
  ?cert_failures:int ->
  version:string ->
  qtype:Rr.rtype -> elapsed:float -> Budget.reason -> report
val qname_cells : unit -> Sval.scell

(* The analysis environment every harness calling the compiled engine
   provides for runs entering `resolve`: entry-argument facts and
   Layout-capacity field invariants of the encoded tree (re-verified
   against each program by the analysis before use). Runs entering
   anything else fall back to the env-free analysis or, for the
   summarizer's canonicalized windows, a per-window env. *)
val engine_env : unit -> Analysis.env
type harness = {
  exec_ctx : Exec.ctx;
  resp_ptr : Value.ptr;
  init_mem : Sval.memory;
  frozen_below : int;
  store : Summary.store;
}
val prepare :
  ?store:Summary.store ->
  ?budget:Budget.t ->
  ?analysis:Analysis.policy ->
  ?env:Analysis.env ->
  Minir.Instr.program -> Encode.t -> mode -> harness
val run_engine : harness -> Encode.t -> qtype:Rr.rtype -> Exec.result
type slot = {
  s_rname : Term.t array;
  s_rname_len : Term.t;
  s_rtype : Term.t;
  s_data_id : Term.t;
  s_target : Term.t array;
  s_target_len : Term.t;
  s_has_target : Term.t;
}
type image = {
  i_rcode : Term.t;
  i_aa : Term.t;
  i_counts : Term.t array;
  i_slots : slot array array;
}
val as_int_cell : Sval.scell -> Sval.Term.t
val as_bool_cell : Sval.scell -> Sval.Term.t
val slot_of_cell : Sval.scell -> slot
val image_of_mem : Sval.memory -> Value.ptr -> image
val expected_slot :
  Layout.interner -> int option -> Specsym.srr -> slot
exception Refuted
val collect_eqs : (string, int) Hashtbl.t -> Term.t -> unit
val partial_eval : (string, int) Hashtbl.t -> Term.t -> bool option
val quick_refute : Term.t list -> Term.t list -> bool

(* [?incr] routes entailments through an incremental assertion stack so
   obligations sharing their hypothesis tail reuse its analysis. *)
val entails :
  ?incr:Solver.Incremental.t ->
  hyps:Term.t list -> Term.t -> Solver.entailment
val check_eq :
  ?incr:Solver.Incremental.t -> pc:Term.t list -> Term.t -> Term.t -> bool
val check_slot :
  ?incr:Solver.Incremental.t ->
  pc:Term.t list -> where:string -> slot -> slot -> (unit, string) result
val section_names : string array
val check_images :
  ?incr:Solver.Incremental.t ->
  pc:Term.t list ->
  Layout.interner ->
  image ->
  Specsym.sresponse -> qlen_pin:int option -> (unit, string) result
val pin_qlen :
  ?incr:Solver.Incremental.t -> Term.t list -> Model.t -> int option
val replay_engine :
  Engine.Builder.config -> Zone.t -> Message.query -> string
val replay_spec : Zone.t -> Message.query -> string
val check_version_attempt :
  budget:Budget.t ->
  mode:mode ->
  summary_fallback:bool ->
  ?store:Summary.store ->
  ?analysis:Analysis.policy ->
  Engine.Builder.config -> Zone.t -> qtype:Rr.rtype -> report
val reason_of_check_exn : exn -> Budget.reason

(* The robust entry point: always returns a report; budget exhaustion,
   injected faults and unexpected exceptions become [inconclusive], and
   a summary failure degrades once to Inline_all (unless [fallback] is
   false) under an escalated budget. *)
val check_version :
  ?budget:Budget.t ->
  ?mode:mode ->
  ?fallback:bool ->
  ?store:Summary.store ->
  ?analysis:Analysis.policy ->
  Engine.Builder.config -> Zone.t -> qtype:Rr.rtype -> report
val pp_report : Format.formatter -> report -> unit
