(* The refinement checker (§4.3, Figure 6).

   Engine side: full-path symbolic execution of `resolve` over the
   concrete in-heap domain tree with a symbolic query, yielding path
   conditions and the final Response memory image per path.
   Specification side: Specsym's partition of the same query space.

   For every overlapping (engine path, spec path) pair the checker
   discharges equality of the response images with the SMT solver;
   failures concretize into a real query via the model, which is
   replayed concretely on both the engine interpreter and the concrete
   specification (so every reported bug comes with a confirmed
   counterexample). Reachable panic paths are safety violations
   (§4.1). *)

module Term = Smt.Term
module Solver = Smt.Solver
module Model = Smt.Model
module Value = Minir.Value
module Name = Dns.Name
module Rr = Dns.Rr
module Zone = Dns.Zone
module Message = Dns.Message
module Layout = Dnstree.Layout
module Encode = Dnstree.Encode
module Rrlookup = Spec.Rrlookup
module Sval = Symex.Sval
module Exec = Symex.Exec
module Summary = Symex.Summary

(* Execution mode for the engine side: plain inlining, or applying
   automatically generated summaries at the summarized layers (§5.3) —
   the paper's configuration. *)
type mode = Inline_all | With_summaries

type mismatch = {
  query : Message.query;
  detail : string;
  engine_replay : string; (* rendered engine response / panic *)
  spec_replay : string;
}

type panic_report = { panic_query : Message.query; reason : string }

type report = {
  version : string;
  qtype : Rr.rtype;
  engine_paths : int;
  spec_paths : int;
  pairs_checked : int;
  solver_calls : int;
  static_discharged : int; (* branches pruned by the static analysis *)
  ip_discharged : int;
      (* ... of which only the interprocedural layer could justify *)
  unknowns : int; (* solver Unknowns this check leaned on *)
  cert_checks : int; (* verdict certificates validated *)
  cert_failures : int; (* certificates rejected (answers degraded) *)
  summary_cases : (string * int) list; (* per summary instance *)
  summary_times : (string * float) list; (* per layer, total summarization s *)
  mismatches : mismatch list;
  panics : panic_report list;
  stateless : bool;
  inconclusive : Budget.reason option; (* the check stopped short *)
  summary_fallback : bool; (* With_summaries degraded to Inline_all *)
  elapsed : float;
}

let ok (r : report) = r.mismatches = [] && r.panics = []

(* The three-valued verdict for one check. A report with no mismatches
   is only a proof if it ran to completion *and* never leaned on a
   solver Unknown — an Unknown-as-feasible branch or Unknown-validity
   entailment means the obligation was not actually discharged. *)
let status (r : report) : report Budget.outcome =
  match r.inconclusive with
  | Some reason -> Budget.Inconclusive reason
  | None ->
      if r.mismatches <> [] || r.panics <> [] || not r.stateless then
        Budget.Refuted r
      else if r.cert_failures > 0 then
        (* A rejected certificate means some answer this check consumed
           could not be justified (it was degraded to Unknown, so
           [unknowns] is also positive) — name the sharper cause. *)
        Budget.Inconclusive
          (Budget.Cert_invalid
             (Printf.sprintf "%d certificate(s) failed re-validation"
                r.cert_failures))
      else if r.unknowns > 0 then
        Budget.Inconclusive (Budget.Solver_unknowns { count = r.unknowns })
      else Budget.Proved

(* A placeholder report for a check that stopped before producing
   results: everything zero, the reason recorded. *)
let inconclusive_report ?(summary_fallback = false) ?(cert_checks = 0)
    ?(cert_failures = 0) ~(version : string) ~(qtype : Rr.rtype)
    ~(elapsed : float) (reason : Budget.reason) : report =
  {
    version;
    qtype;
    engine_paths = 0;
    spec_paths = 0;
    pairs_checked = 0;
    solver_calls = 0;
    static_discharged = 0;
    ip_discharged = 0;
    unknowns = 0;
    cert_checks;
    cert_failures;
    summary_cases = [];
    summary_times = [];
    mismatches = [];
    panics = [];
    stateless = true;
    inconclusive = Some reason;
    summary_fallback;
    elapsed;
  }

(* Install the solver-independent certificate checker: from here on,
   every solver answer this module consumes is certificate-validated
   (including cache and incremental-stack replays). *)
let () = Cert.install ()

(* ------------------------------------------------------------------ *)
(* Engine-side harness                                                *)
(* ------------------------------------------------------------------ *)

let qname_cells () =
  Sval.CArray (Array.init Layout.max_labels (fun j -> Sval.CInt (Specsym.qsym_label j)))

(* ------------------------------------------------------------------ *)
(* The engine's analysis environment                                  *)
(* ------------------------------------------------------------------ *)

(* What this harness (and every other caller of the compiled engine —
   the pipeline, the lint CLI, the chaos soak) guarantees about its
   top-level calls into the program, handed to [Analysis.summarize]:

   - root: `resolve` — the only function the harness enters directly,
     so every other function's parameters may soundly be narrowed to
     the join of its in-program call sites.
   - entry facts for `resolve`: [run_engine] always passes non-nil
     root/resp/qname pointers, a query length within the name-array
     capacity ([Specsym.domain_constraints]), and a one-byte rtype code.
   - field invariants of the encoded domain tree: [Encode.encode]
     rejects inputs exceeding the Layout capacities, and the engine
     never stores into tree structs (statelessness is itself checked
     per run). [Analysis.field_invariants_filter] re-verifies the
     no-store half against each program before any use.

   This env is sound ONLY for runs entering `resolve` on the real
   encoded heap; [Summary.summarize_at]'s canonicalized re-runs of
   intercepted layers pass [Exec.run] their own per-window env built
   from the canonical arguments — [Exec.run] selects per entry. *)
let engine_env () : Analysis.env =
  let itv lo hi =
    Analysis.AInt (Analysis.Interval.I (Some lo, Some hi))
  in
  let fidx = Layout.field_index in
  {
    Analysis.env_roots = [ "resolve" ];
    env_entry =
      [
        ( "resolve",
          [
            (0, Analysis.APtr Analysis.Nullness.NNot);
            (1, Analysis.APtr Analysis.Nullness.NNot);
            (2, Analysis.APtr Analysis.Nullness.NNot);
            (3, itv 0 Layout.max_labels);
            (4, itv 0 255);
          ] );
      ];
    env_fields =
      [
        ("TreeNode", fidx "TreeNode" "labelsLen", itv 0 Layout.max_labels);
        ("TreeNode", fidx "TreeNode" "nsets", itv 0 Layout.max_rrsets);
        ("RRSet", fidx "RRSet" "count", itv 0 Layout.max_rdatas);
        ("Rdata", fidx "Rdata" "targetLen", itv 0 Layout.max_labels);
      ];
  }

type harness = {
  exec_ctx : Exec.ctx;
  resp_ptr : Value.ptr;
  init_mem : Sval.memory;
  frozen_below : int;
  store : Summary.store;
}

let prepare ?store ?budget ?(analysis = Analysis.Trust)
    ?(env = engine_env ()) (prog : Minir.Instr.program) (enc : Encode.t)
    (mode : mode) : harness =
  let frozen_below = enc.Encode.memory.Value.next_block in
  let store =
    match store with Some s -> s | None -> Summary.create_store ()
  in
  let intercepts =
    match mode with
    | Inline_all -> []
    | With_summaries ->
        List.filter_map
          (fun fn ->
            if fn = "resolve" then None
            else Some (fn, Summary.intercept_for ~frozen_below store fn))
          Engine.Builder.summarized_layers
  in
  let exec_ctx = Exec.create ?budget ~intercepts ~analysis ~env prog in
  let mem0 = Sval.memory_of_concrete enc.Encode.memory in
  let mem0, resp_ptr =
    Sval.alloc mem0
      (Sval.scell_default prog.Minir.Instr.tenv (Minir.Ty.Struct "Response"))
  in
  { exec_ctx; resp_ptr; init_mem = mem0; frozen_below; store }

let run_engine (h : harness) (enc : Encode.t) ~(qtype : Rr.rtype) : Exec.result
    =
  let mem, qname_ptr = Sval.alloc h.init_mem (qname_cells ()) in
  let args =
    [
      Sval.SPtr enc.Encode.root;
      Sval.SPtr h.resp_ptr;
      Sval.SPtr qname_ptr;
      Sval.SInt Specsym.qsym_len;
      Sval.SInt (Term.int (Rr.rtype_code qtype));
    ]
  in
  Exec.run h.exec_ctx ~memory:mem
    ~pc:(Specsym.domain_constraints ~max_labels:Layout.max_labels)
    ~fn:"resolve" ~args

(* ------------------------------------------------------------------ *)
(* Response images                                                    *)
(* ------------------------------------------------------------------ *)

type slot = {
  s_rname : Term.t array;
  s_rname_len : Term.t;
  s_rtype : Term.t;
  s_data_id : Term.t;
  s_target : Term.t array;
  s_target_len : Term.t;
  s_has_target : Term.t;
}

type image = {
  i_rcode : Term.t;
  i_aa : Term.t;
  i_counts : Term.t array; (* answer, authority, additional *)
  i_slots : slot array array;
}

let as_int_cell = function
  | Sval.CInt t -> t
  | c -> Sval.error "expected int cell, got %a" Sval.pp_scell c

let as_bool_cell = function
  | Sval.CBool t -> t
  | c -> Sval.error "expected bool cell, got %a" Sval.pp_scell c

let slot_of_cell (c : Sval.scell) : slot =
  match c with
  | Sval.CStruct [| rname; rlen; rtype; target; tlen; has; did |] ->
      let arr = function
        | Sval.CArray cells -> Array.map as_int_cell cells
        | c -> Sval.error "expected name array, got %a" Sval.pp_scell c
      in
      {
        s_rname = arr rname;
        s_rname_len = as_int_cell rlen;
        s_rtype = as_int_cell rtype;
        s_data_id = as_int_cell did;
        s_target = arr target;
        s_target_len = as_int_cell tlen;
        s_has_target = as_bool_cell has;
      }
  | c -> Sval.error "malformed RR cell %a" Sval.pp_scell c

let image_of_mem (mem : Sval.memory) (resp : Value.ptr) : image =
  match Sval.block_value mem resp.Value.block with
  | Sval.CStruct [| rc; aa; na; ans; nu; auth; nd; add |] ->
      let slots = function
        | Sval.CArray cells -> Array.map slot_of_cell cells
        | c -> Sval.error "malformed section %a" Sval.pp_scell c
      in
      {
        i_rcode = as_int_cell rc;
        i_aa = as_bool_cell aa;
        i_counts = [| as_int_cell na; as_int_cell nu; as_int_cell nd |];
        i_slots = [| slots ans; slots auth; slots add |];
      }
  | c -> Sval.error "malformed Response %a" Sval.pp_scell c

(* The expected slot terms for a specification record. [qlen_pin] is the
   concrete query length entailed by the combined path condition (only
   needed for symbolic owners). *)
let expected_slot (it : Layout.interner) (qlen_pin : int option)
    (s : Specsym.srr) : slot =
  let name_terms (codes : int list) =
    Array.init Layout.max_labels (fun j ->
        match List.nth_opt codes j with
        | Some c -> Term.int c
        | None -> Term.int 0)
  in
  let rname, rlen =
    match s.Specsym.owner with
    | Specsym.Concrete n ->
        let codes = Name.codes it.Layout.coder n in
        (name_terms codes, Term.int (List.length codes))
    | Specsym.Sym_query ->
        let k =
          match qlen_pin with
          | Some k -> k
          | None -> Sval.error "symbolic owner with unpinned query length"
        in
        ( Array.init Layout.max_labels (fun j ->
              if j < k then Specsym.qsym_label j else Term.int 0),
          Term.int k )
  in
  let data_id = Layout.intern_rdata it s.Specsym.srdata in
  let target, tlen, has =
    match Rr.rdata_target s.Specsym.srdata with
    | Some t ->
        let codes = Name.codes it.Layout.coder t in
        (name_terms codes, Term.int (List.length codes), Term.true_)
    | None ->
        (Array.make Layout.max_labels (Term.int 0), Term.int 0, Term.false_)
  in
  {
    s_rname = rname;
    s_rname_len = rlen;
    s_rtype = Term.int (Rr.rtype_code s.Specsym.srtype);
    s_data_id = Term.int data_id;
    s_target = target;
    s_target_len = tlen;
    s_has_target = has;
  }

(* ------------------------------------------------------------------ *)
(* Quick syntactic refutation of path-pair overlap                    *)
(* ------------------------------------------------------------------ *)

exception Refuted

let rec collect_eqs env (t : Term.t) =
  match t with
  | Term.And ts -> List.iter (collect_eqs env) ts
  | Term.Eq (Term.Var v, Term.Int_const n) | Term.Eq (Term.Int_const n, Term.Var v)
    -> (
      match Hashtbl.find_opt env v.Term.name with
      | Some n' when n' <> n -> raise Refuted
      | Some _ -> ()
      | None -> Hashtbl.replace env v.Term.name n)
  | _ -> ()

let partial_eval env (t : Term.t) : bool option =
  let lookup name =
    match Hashtbl.find_opt env name with
    | Some n -> Some (Term.VInt n)
    | None -> None
  in
  match Term.eval lookup t with
  | Term.VBool b -> Some b
  | Term.VInt _ -> None
  | exception Term.Unassigned _ -> None
  | exception Term.Sort_error _ -> None

(* Cheap check: do the constant equalities of [a] contradict any
   conjunct of [b] (or vice versa)? *)
let quick_refute (a : Term.t list) (b : Term.t list) : bool =
  let env = Hashtbl.create 16 in
  try
    List.iter (collect_eqs env) a;
    List.iter (collect_eqs env) b;
    List.exists (fun t -> partial_eval env t = Some false) b
    || List.exists (fun t -> partial_eval env t = Some false) a
  with Refuted -> true

(* ------------------------------------------------------------------ *)
(* The checker                                                        *)
(* ------------------------------------------------------------------ *)

(* Entailment, routed through an incremental assertion stack when one is
   in scope: the hypotheses of successive obligations share their tail
   (the engine path condition) physically, so only the goal literal is
   analyzed fresh per call. *)
let entails ?incr ~hyps goal =
  match incr with
  | Some s -> Solver.Incremental.entails s ~hyps goal
  | None -> Solver.entails ~hyps goal

let check_eq ?incr ~(pc : Term.t list) (a : Term.t) (b : Term.t) : bool =
  Term.equal a b
  ||
  match (a, b) with
  | Term.Int_const x, Term.Int_const y -> x = y
  | _ -> (
      match entails ?incr ~hyps:pc (Term.eq a b) with
      | Solver.Valid -> true
      | Solver.Counterexample _ | Solver.Unknown_validity -> false)

let check_slot ?incr ~pc ~(where : string) (eng : slot) (exp : slot) :
    (unit, string) result =
  let checks =
    [
      ("rnameLen", eng.s_rname_len, exp.s_rname_len);
      ("rtype", eng.s_rtype, exp.s_rtype);
      ("dataId", eng.s_data_id, exp.s_data_id);
      ("targetLen", eng.s_target_len, exp.s_target_len);
    ]
    @ List.init Layout.max_labels (fun j ->
          (Printf.sprintf "rname[%d]" j, eng.s_rname.(j), exp.s_rname.(j)))
    @ List.init Layout.max_labels (fun j ->
          (Printf.sprintf "target[%d]" j, eng.s_target.(j), exp.s_target.(j)))
  in
  let bad =
    List.find_opt (fun (_, a, b) -> not (check_eq ?incr ~pc a b)) checks
  in
  match bad with
  | Some (field, a, b) ->
      Error
        (Format.asprintf "%s.%s: engine %a vs spec %a" where field Term.pp a
           Term.pp b)
  | None ->
      if check_eq ?incr ~pc eng.s_has_target exp.s_has_target then Ok ()
      else Error (where ^ ".hasTarget differs")

let section_names = [| "answer"; "authority"; "additional" |]

let check_images ?incr ~pc (it : Layout.interner) (eng : image)
    (spec : Specsym.sresponse) ~(qlen_pin : int option) : (unit, string) result
    =
  let expected_sections =
    [| spec.Specsym.sanswer; spec.Specsym.sauthority; spec.Specsym.sadditional |]
  in
  let rc = Term.int (Message.rcode_code spec.Specsym.srcode) in
  if not (check_eq ?incr ~pc eng.i_rcode rc) then
    Error
      (Format.asprintf "rcode: engine %a vs spec %s" Term.pp eng.i_rcode
         (Message.rcode_to_string spec.Specsym.srcode))
  else if not (check_eq ?incr ~pc eng.i_aa (Term.of_bool spec.Specsym.saa)) then
    Error
      (Format.asprintf "aa: engine %a vs spec %b" Term.pp eng.i_aa
         spec.Specsym.saa)
  else
    let rec sections k =
      if k >= 3 then Ok ()
      else
        let expected = expected_sections.(k) in
        let count = List.length expected in
        if not (check_eq ?incr ~pc eng.i_counts.(k) (Term.int count)) then
          Error
            (Format.asprintf "%s count: engine %a vs spec %d"
               section_names.(k) Term.pp eng.i_counts.(k) count)
        else
          let rec slots i = function
            | [] -> sections (k + 1)
            | srr :: rest -> (
                let exp = expected_slot it qlen_pin srr in
                match
                  check_slot ?incr ~pc
                    ~where:(Printf.sprintf "%s[%d]" section_names.(k) i)
                    eng.i_slots.(k).(i) exp
                with
                | Ok () -> slots (i + 1) rest
                | Error e -> Error e)
          in
          slots 0 expected
    in
    sections 0

(* Try to pin the query length under [pc]: take the model's value and
   confirm entailment. *)
let pin_qlen ?incr (pc : Term.t list) (m : Model.t) : int option =
  let k = Model.get_int "q.len" m in
  match entails ?incr ~hyps:pc (Term.eq Specsym.qsym_len (Term.int k)) with
  | Solver.Valid -> Some k
  | _ -> None

let replay_engine (cfg : Engine.Builder.config) (zone : Zone.t)
    (q : Message.query) : string =
  match Engine.Versions.run cfg zone q with
  | Engine.Versions.Response r -> Message.response_to_string r
  | Engine.Versions.Engine_panic m -> "panic: " ^ m
  | exception Minir.Interp.Out_of_fuel ->
      "replay aborted: interpreter out of fuel"

let replay_spec (zone : Zone.t) (q : Message.query) : string =
  Message.response_to_string (Rrlookup.resolve zone q)

(* One verification attempt under [budget]: the existing full-path
   product check, now charging every solver call, fork, and step to the
   budget, and recording how many solver Unknowns it leaned on. Raises
   (Budget.Exhausted, Summary.Summary_failed, …) on failure; the
   [check_version] wrapper below converts those into verdicts. *)
let check_version_attempt ~(budget : Budget.t) ~(mode : mode)
    ~(summary_fallback : bool) ?store ?(analysis = Analysis.Trust)
    (cfg : Engine.Builder.config) (zone : Zone.t) ~(qtype : Rr.rtype) : report =
  Trace.with_span "check"
    ~attrs:
      [
        ("version", cfg.Engine.Builder.version);
        ("qtype", Rr.rtype_to_string qtype);
        ( "mode",
          match mode with
          | Inline_all -> "inline-all"
          | With_summaries -> "with-summaries" );
      ]
  @@ fun () ->
  Solver.with_budget budget @@ fun () ->
  let t0 = Unix.gettimeofday () in
  Solver.reset_stats ();
  let prog = Engine.Versions.compiled cfg in
  let tree = Dnstree.Tree.build zone in
  let enc = Encode.encode tree in
  let h = prepare ?store ~budget ~analysis prog enc mode in
  let engine_results = run_engine h enc ~qtype in
  let spec_paths, spec_solver_calls =
    Specsym.paths zone enc.Encode.interner.Layout.coder ~qtype
      ~max_labels:Layout.max_labels
  in
  (* One assertion stack for the whole product check: consecutive
     obligations share the engine path condition as their physical tail,
     so its analysis is reused across spec paths and slot checks. *)
  let incr = Solver.Incremental.create () in
  let mismatches = ref [] in
  let panics = ref [] in
  let pairs = ref 0 in
  let stateless = ref true in
  let unconfirmed = ref 0 in
  let record_mismatch q detail =
    let engine_replay = replay_engine cfg zone q in
    let spec_replay = replay_spec zone q in
    (* Every reported bug must come with a *confirmed* counterexample:
       a symbolic disagreement whose concretization replays identically
       on both sides (typically one derived from a solver Unknown and
       an empty model) is not evidence, and must not flip the verdict
       to Refuted — it downgrades the run to inconclusive instead. *)
    if String.equal engine_replay spec_replay then Stdlib.incr unconfirmed
    else
      mismatches :=
        { query = q; detail; engine_replay; spec_replay } :: !mismatches
  in
  List.iter
    (fun ((path : Exec.path), outcome) ->
      match outcome with
      | Exec.Panicked reason -> (
          match Solver.Incremental.check_pc incr path.Exec.pc with
          | Solver.Sat m ->
              let q =
                Specsym.query_of_model enc.Encode.interner.Layout.coder m ~qtype
              in
              panics := { panic_query = q; reason } :: !panics
          | _ -> () (* infeasible panic path: pruned conservatively *))
      | Exec.Returned _ ->
          (* Statelessness: the engine must not modify the domain tree. *)
          Sval.Int_map.iter
            (fun b cell ->
              if b < h.frozen_below then
                match Sval.Int_map.find_opt b path.Exec.mem.Sval.blocks with
                | Some cell' when cell' == cell || cell' = cell -> ()
                | _ -> stateless := false)
            h.init_mem.Sval.blocks;
          let eng_image = image_of_mem path.Exec.mem h.resp_ptr in
          List.iter
            (fun (sp : Specsym.spath) ->
              if not (quick_refute path.Exec.pc sp.Specsym.cond) then begin
                let combined = sp.Specsym.cond @ path.Exec.pc in
                let handle_overlap (m : Model.t) =
                  Stdlib.incr pairs;
                  let qlen_pin = pin_qlen ~incr combined m in
                  match
                    check_images ~incr ~pc:combined enc.Encode.interner
                      eng_image sp.Specsym.resp ~qlen_pin
                  with
                  | Ok () -> ()
                  | Error detail ->
                      (* Concretize a witness for the mismatch. *)
                      let q =
                        Specsym.query_of_model
                          enc.Encode.interner.Layout.coder m ~qtype
                      in
                      record_mismatch q detail
                in
                match Solver.Incremental.check_pc incr combined with
                | Solver.Unsat -> ()
                | Solver.Sat m -> handle_overlap m
                | Solver.Unknown -> handle_overlap Model.empty
              end)
            spec_paths)
    engine_results;
  (* Cache behavior depends on what ran before on this domain, so these
     tallies are informational only (det:false — excluded from the
     deterministic span-tree fingerprint). *)
  (let s = Solver.stats () in
   Trace.add_attr ~det:false "cache_hits" (string_of_int s.Solver.cache_hits);
   Trace.add_attr ~det:false "cache_misses"
     (string_of_int s.Solver.cache_misses);
   Trace.add_attr ~det:false "incremental_checks"
     (string_of_int s.Solver.incremental_checks);
   Trace.add_attr ~det:false "scratch_checks"
     (string_of_int s.Solver.scratch_checks));
  {
    version = cfg.Engine.Builder.version;
    qtype;
    engine_paths = List.length engine_results;
    spec_paths = List.length spec_paths;
    pairs_checked = !pairs;
    solver_calls = h.exec_ctx.Exec.solver_calls + spec_solver_calls;
    static_discharged = h.exec_ctx.Exec.static_discharged;
    ip_discharged = h.exec_ctx.Exec.ip_discharged;
    (* Global since reset above: covers Unknown-as-feasible branches in
       the executor *and* Unknown-validity entailments in check_eq. *)
    unknowns = (Solver.stats ()).Solver.unknowns;
    cert_checks = (Solver.stats ()).Solver.cert_checks;
    cert_failures = (Solver.stats ()).Solver.cert_failures;
    summary_cases =
      List.map
        (fun (s : Summary.t) -> (s.Summary.fn, Summary.case_count s))
        (Summary.store_summaries h.store);
    summary_times =
      List.fold_left
        (fun acc (s : Summary.t) ->
          let prev = Option.value ~default:0.0 (List.assoc_opt s.Summary.fn acc) in
          (s.Summary.fn, prev +. s.Summary.elapsed)
          :: List.remove_assoc s.Summary.fn acc)
        []
        (Summary.store_summaries h.store);
    mismatches = List.rev !mismatches;
    panics = List.rev !panics;
    stateless = !stateless;
    inconclusive =
      (* Unconfirmed symbolic disagreements normally ride on a solver
         Unknown, which already forces an inconclusive status; if one
         appears without any Unknown it is checker imprecision, and the
         run still must not count as a proof. *)
      (if !unconfirmed > 0 && (Solver.stats ()).Solver.unknowns = 0 then
         Some
           (Budget.Internal_error
              (Printf.sprintf
                 "%d symbolic disagreement(s) did not replay concretely"
                 !unconfirmed))
       else None);
    summary_fallback;
    elapsed = Unix.gettimeofday () -. t0;
  }

(* Map an exception escaping an attempt to a machine-readable reason. *)
let reason_of_check_exn = function
  | Minir.Interp.Out_of_fuel ->
      Budget.Fuel_exhausted { limit = Minir.Interp.default_fuel }
  | Summary.Summary_failed m -> Budget.Summary_failed m
  | e -> Budget.reason_of_exn e

(* Verify one engine version against the top-level specification for
   one query type over one zone.

   Every failure mode terminates in a report: budget exhaustion, fuel
   exhaustion, injected faults and unexpected exceptions all become
   [inconclusive = Some reason] rather than escaping. When summarization
   itself fails or times out under [With_summaries] (and [fallback] is
   allowed), the check degrades once to [Inline_all] under an escalated
   budget — the summaries are an optimization, never a prerequisite for
   a verdict. *)
let check_version ?budget ?(mode = With_summaries) ?(fallback = true) ?store
    ?(analysis = Analysis.Trust) (cfg : Engine.Builder.config) (zone : Zone.t)
    ~(qtype : Rr.rtype) : report =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let version = cfg.Engine.Builder.version in
  let t0 = Unix.gettimeofday () in
  let attempt ~budget ~mode ~summary_fallback =
    match
      check_version_attempt ~budget ~mode ~summary_fallback ?store ~analysis
        cfg zone ~qtype
    with
    | r -> Ok r
    | exception e ->
        (* The attempt's cert counters are still live ([reset_stats]
           runs at attempt start). A crash downstream of a certificate
           rejection is reported as the rejection, not as the crash: the
           corrupted answer was degraded to Unknown and the engine fell
           over in the resulting unexpected state — the root cause is
           the unjustifiable verdict. Sharper reasons (deadline, fuel,
           an injected fault) keep priority. *)
        let s = Solver.stats () in
        let cc = s.Solver.cert_checks and cf = s.Solver.cert_failures in
        let reason =
          match reason_of_check_exn e with
          | Budget.Internal_error m when cf > 0 ->
              Budget.Cert_invalid
                (Printf.sprintf
                   "%d certificate(s) failed re-validation before the check \
                    stopped (%s)"
                   cf m)
          | r -> r
        in
        Error (reason, cc, cf)
  in
  let degraded reason =
    Trace.event "degraded" ~attrs:[ ("reason", Budget.reason_tag reason) ]
  in
  match attempt ~budget ~mode ~summary_fallback:false with
  | Ok r -> r
  | Error (Budget.Summary_failed _, _, _) when mode = With_summaries && fallback
    -> (
      Trace.event "summary.fallback"
        ~attrs:
          [ ("version", version); ("qtype", Rr.rtype_to_string qtype) ];
      match
        attempt ~budget:(Budget.escalate budget) ~mode:Inline_all
          ~summary_fallback:true
      with
      | Ok r -> r
      | Error (reason, cert_checks, cert_failures) ->
          degraded reason;
          inconclusive_report ~summary_fallback:true ~cert_checks
            ~cert_failures ~version ~qtype
            ~elapsed:(Unix.gettimeofday () -. t0)
            reason)
  | Error (reason, cert_checks, cert_failures) ->
      degraded reason;
      inconclusive_report ~cert_checks ~cert_failures ~version ~qtype
        ~elapsed:(Unix.gettimeofday () -. t0)
        reason

let pp_report fmt (r : report) =
  Format.fprintf fmt
    "@[<v>version %s qtype %s: %d engine paths, %d spec paths, %d pairs, %d \
     solver calls, %.3fs%s%s%s%s@,%a%a@]"
    r.version
    (Rr.rtype_to_string r.qtype)
    r.engine_paths r.spec_paths r.pairs_checked r.solver_calls r.elapsed
    (if r.stateless then "" else " [NOT STATELESS]")
    ((if r.unknowns = 0 then ""
      else Printf.sprintf " [%d solver unknowns]" r.unknowns)
    ^
    if r.cert_failures = 0 then ""
    else Printf.sprintf " [%d certificate failures]" r.cert_failures)
    (if r.summary_fallback then " [summaries fell back to inlining]" else "")
    (match r.inconclusive with
    | None -> ""
    | Some reason ->
        Printf.sprintf " INCONCLUSIVE (%s)" (Budget.reason_to_string reason))
    (fun fmt ms ->
      List.iter
        (fun m ->
          Format.fprintf fmt "MISMATCH on %a: %s@," Message.pp_query m.query
            m.detail)
        ms)
    r.mismatches
    (fun fmt ps ->
      List.iter
        (fun p ->
          Format.fprintf fmt "PANIC on %a: %s@," Message.pp_query p.panic_query
            p.reason)
        ps)
    r.panics
