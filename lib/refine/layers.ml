(* Manual specifications for the stable dependency layers (the yellow
   boxes of Figure 5) and the refinement check that each layer's code
   is equivalent to its specification (§5.2, §6.3).

   Specifications are written in the executable AbsLLVM style (§6.1):
   OCaml functions over symbolic values that fork on abstract,
   word-level conditions — e.g. compareAbs (Figure 10) compares whole
   labels as integers where compareRaw grinds through bytes. They serve
   two purposes:

   - each is *verified* against the corresponding Golite code by
     full-path product checking (code paths × spec paths, SMT-discharged
     equivalence of return values and memory effects);
   - they can then be installed as intercepts during whole-engine
     verification, which is the layered-verification configuration.

   These layers are stable across engine versions (Table 3): the same
   specifications verify against every version's code. *)

module Term = Smt.Term
module Solver = Smt.Solver
module Value = Minir.Value
module Ty = Minir.Ty
module Layout = Dnstree.Layout
module Sval = Symex.Sval
module Exec = Symex.Exec
module Summary = Symex.Summary

let maxl = Layout.max_labels

(* ------------------------------------------------------------------ *)
(* Spec-writing helpers (the built-in predicates of §6.1)             *)
(* ------------------------------------------------------------------ *)

let ret path v : Exec.result = [ (path, Exec.Returned (Some v)) ]
let ret_int path n = ret path (Sval.SInt (Term.int n))
let ret_void path : Exec.result = [ (path, Exec.Returned None) ]

let read_name_cells (mem : Sval.memory) (p : Value.ptr) : Term.t array =
  match Sval.load_cell mem p with
  | Sval.CArray cells ->
      Array.map
        (function
          | Sval.CInt t -> t
          | c -> Sval.error "name cell is not an integer: %a" Sval.pp_scell c)
        cells
  | c -> Sval.error "expected a name array, got %a" Sval.pp_scell c

(* listEq over the §5.4 encoding: both lists bounded by [maxl], lengths
   as terms; equality = disjunction over the concrete common length. *)
let fork_length ctx path (len : Term.t) (k : Exec.path -> int -> Exec.result) :
    Exec.result =
  Exec.fork_index ctx path len ~cap:(maxl + 1) ~k
    ~out_of_range:(fun _ -> Sval.error "length out of the encoding bound")

let prefix_eq (a : Term.t array) (b : Term.t array) (n : int) : Term.t =
  Term.and_ (List.init n (fun j -> Term.eq a.(j) b.(j)))

(* ------------------------------------------------------------------ *)
(* The manual specifications                                          *)
(* ------------------------------------------------------------------ *)

(* compareAbs (Figure 10): names as integer lists, compared label-wise.
   PARTIAL iff b is a proper ancestor of a. *)
let compare_names_spec : Exec.intercept =
 fun ctx path args ->
  match args with
  | [ Sval.SPtr a_ptr; Sval.SInt alen; Sval.SPtr b_ptr; Sval.SInt blen ] ->
      let a = read_name_cells path.Exec.mem a_ptr in
      let b = read_name_cells path.Exec.mem b_ptr in
      Exec.fork_bool ctx path (Term.lt alen blen)
        ~then_:(fun path -> ret_int path Layout.nomatch)
        ~else_:(fun path ->
          fork_length ctx path blen (fun path bl ->
              Exec.fork_bool ctx path (prefix_eq a b bl)
                ~then_:(fun path ->
                  Exec.fork_bool ctx path (Term.eq alen blen)
                    ~then_:(fun path -> ret_int path Layout.exactmatch)
                    ~else_:(fun path -> ret_int path Layout.partialmatch))
                ~else_:(fun path -> ret_int path Layout.nomatch)))
  | _ -> Sval.error "compareNames spec: bad arguments"

(* nameOrder: lexicographic order on the reversed label lists. *)
let name_order_spec : Exec.intercept =
 fun ctx path args ->
  match args with
  | [ Sval.SPtr a_ptr; Sval.SInt alen; Sval.SPtr b_ptr; Sval.SInt blen ] ->
      let a = read_name_cells path.Exec.mem a_ptr in
      let b = read_name_cells path.Exec.mem b_ptr in
      let rec at path j =
        (* Invariant: the first j labels are pairwise equal and both
           lengths exceed... are at least j. *)
        let both_longer =
          Term.and_ [ Term.gt alen (Term.int j); Term.gt blen (Term.int j) ]
        in
        Exec.fork_bool ctx path both_longer
          ~then_:(fun path ->
            Exec.fork_bool ctx path (Term.lt a.(j) b.(j))
              ~then_:(fun path -> ret_int path (-1))
              ~else_:(fun path ->
                Exec.fork_bool ctx path (Term.gt a.(j) b.(j))
                  ~then_:(fun path -> ret_int path 1)
                  ~else_:(fun path ->
                    if j + 1 >= maxl then ends path else at path (j + 1))))
          ~else_:(fun path -> ends path)
      and ends path =
        Exec.fork_bool ctx path (Term.lt alen blen)
          ~then_:(fun path -> ret_int path (-1))
          ~else_:(fun path ->
            Exec.fork_bool ctx path (Term.gt alen blen)
              ~then_:(fun path -> ret_int path 1)
              ~else_:(fun path -> ret_int path 0))
      in
      at path 0
  | _ -> Sval.error "nameOrder spec: bad arguments"

(* copyNameInto: dst[0..n-1] := src[0..n-1]. *)
let copy_name_spec : Exec.intercept =
 fun ctx path args ->
  match args with
  | [ Sval.SPtr dst; Sval.SPtr src; Sval.SInt n ] ->
      let src_cells = read_name_cells path.Exec.mem src in
      fork_length ctx path n (fun path len ->
          let mem = ref path.Exec.mem in
          for j = 0 to len - 1 do
            mem :=
              Sval.store !mem
                { dst with Value.path = dst.Value.path @ [ j ] }
                (Sval.CInt src_cells.(j))
          done;
          ret_void { path with Exec.mem = !mem })
  | _ -> Sval.error "copyNameInto spec: bad arguments"

(* stackPush (Figure 2/3): abstractly, store the node at the current
   level. The level is read by the caller directly — the poor
   encapsulation the flexible memory model accommodates (§5.1). An
   out-of-range level is a panic, exactly like the code's bounds
   check. *)
let stack_push_spec : Exec.intercept =
 fun ctx path args ->
  match args with
  | [ Sval.SPtr s_ptr; node ] ->
      let level_ptr =
        { s_ptr with Value.path = s_ptr.Value.path @ [ 1 ] }
      in
      let level =
        match Sval.load path.Exec.mem level_ptr with
        | Sval.SInt t -> t
        | _ -> Sval.error "stack level is not an integer"
      in
      Exec.fork_index ctx path level ~cap:Layout.max_stack
        ~k:(fun path l ->
          let slot =
            { s_ptr with Value.path = s_ptr.Value.path @ [ 0; l ] }
          in
          let mem = Sval.store path.Exec.mem slot (Sval.scell_of_sval node) in
          ret_void { path with Exec.mem = mem })
        ~out_of_range:(fun path ->
          [ (path, Exec.Panicked "index out of range") ])
  | _ -> Sval.error "stackPush spec: bad arguments"

(* findRRSet: the index of the rrset with the requested type, else -1.
   The node is concrete (it comes from the domain tree), so the spec is
   a chain of comparisons against its concrete type codes. *)
let find_rrset_spec : Exec.intercept =
 fun ctx path args ->
  match args with
  | [ Sval.SPtr node_ptr; Sval.SInt rtype ] ->
      let nsets =
        match
          Sval.load path.Exec.mem
            { node_ptr with Value.path = node_ptr.Value.path @ [ 5 ] }
        with
        | Sval.SInt (Term.Int_const n) -> n
        | _ -> Sval.error "findRRSet spec: symbolic rrset count"
      in
      let set_rtype k =
        match
          Sval.load path.Exec.mem
            { node_ptr with Value.path = node_ptr.Value.path @ [ 6; k; 0 ] }
        with
        | Sval.SInt t -> t
        | _ -> Sval.error "findRRSet spec: bad rtype cell"
      in
      let rec scan path k =
        if k >= nsets then ret_int path (-1)
        else
          Exec.fork_bool ctx path (Term.eq (set_rtype k) rtype)
            ~then_:(fun path -> ret_int path k)
            ~else_:(fun path -> scan path (k + 1))
      in
      scan path 0
  | _ -> Sval.error "findRRSet spec: bad arguments"

(* Section appends: copy the record fields into the next slot and bump
   the count; drop silently at capacity. One spec serves all three
   sections, parameterized by field indices. *)
let append_spec ~(count_field : int) ~(section_field : int) ~(cap : int) :
    Exec.intercept =
 fun ctx path args ->
  match args with
  | [ Sval.SPtr resp; Sval.SPtr rname; Sval.SInt rname_len; rtype; Sval.SPtr rd ]
    ->
      let count_ptr =
        { resp with Value.path = resp.Value.path @ [ count_field ] }
      in
      let count =
        match Sval.load path.Exec.mem count_ptr with
        | Sval.SInt t -> t
        | _ -> Sval.error "append spec: bad count"
      in
      let rd_cell field =
        Sval.load_cell path.Exec.mem
          { rd with Value.path = rd.Value.path @ [ field ] }
      in
      let rname_cells = read_name_cells path.Exec.mem rname in
      Exec.fork_index ctx path count ~cap:(cap + 1)
        ~k:(fun path idx ->
          if idx >= cap then ret_void path
          else begin
            let slot base =
              {
                resp with
                Value.path = resp.Value.path @ [ section_field; idx; base ];
              }
            in
            (* Copy rname up to rname_len (bounded fork), then scalars. *)
            fork_length ctx path rname_len (fun path len ->
                let mem = ref path.Exec.mem in
                let store p c = mem := Sval.store !mem p c in
                for j = 0 to len - 1 do
                  store
                    {
                      resp with
                      Value.path =
                        resp.Value.path @ [ section_field; idx; 0; j ];
                    }
                    (Sval.CInt rname_cells.(j))
                done;
                store (slot 1) (Sval.CInt (Term.int len));
                store (slot 2) (Sval.scell_of_sval rtype);
                (* target copy: bounded by the rdata's target length. *)
                let tlen =
                  match rd_cell 1 with
                  | Sval.CInt t -> t
                  | _ -> Sval.error "append spec: bad targetLen"
                in
                let target_cells =
                  match rd_cell 0 with
                  | Sval.CArray cells ->
                      Array.map
                        (function
                          | Sval.CInt t -> t
                          | _ -> Sval.error "append spec: bad target cell")
                        cells
                  | _ -> Sval.error "append spec: bad target"
                in
                fork_length ctx { path with Exec.mem = !mem } tlen
                  (fun path tl ->
                    let mem = ref path.Exec.mem in
                    let store p c = mem := Sval.store !mem p c in
                    for j = 0 to tl - 1 do
                      store
                        {
                          resp with
                          Value.path =
                            resp.Value.path @ [ section_field; idx; 3; j ];
                        }
                        (Sval.CInt target_cells.(j))
                    done;
                    store (slot 4) (Sval.CInt (Term.int tl));
                    store (slot 5) (rd_cell 2);
                    store (slot 6) (rd_cell 3);
                    store count_ptr (Sval.CInt (Term.int (idx + 1)));
                    ret_void { path with Exec.mem = !mem }))
          end)
        ~out_of_range:(fun path ->
          (* counts are engine-maintained and never negative or past the
             capacity guard; treat anything else as a spec violation *)
          [ (path, Exec.Panicked "append spec: count out of range") ])
  | _ -> Sval.error "append spec: bad arguments"

(* The registry: layer name → (spec, self-reported spec size in lines,
   used by the Table-3 accounting). *)
let specs : (string * (Exec.intercept * int)) list =
  [
    ("compareNames", (compare_names_spec, 18));
    ("nameOrder", (name_order_spec, 24));
    ("copyNameInto", (copy_name_spec, 12));
    ("stackPush", (stack_push_spec, 14));
    ("findRRSet", (find_rrset_spec, 16));
    ("appendAnswer", (append_spec ~count_field:2 ~section_field:3 ~cap:Layout.max_rrs, 30));
    ("appendAuthority", (append_spec ~count_field:4 ~section_field:5 ~cap:Layout.max_rrs, 30));
    ("appendAdditional", (append_spec ~count_field:6 ~section_field:7 ~cap:Layout.max_additional, 30));
  ]

let spec_for fn = Option.map fst (List.assoc_opt fn specs)
let spec_loc fn = Option.map snd (List.assoc_opt fn specs)

(* ------------------------------------------------------------------ *)
(* Layer equivalence checking                                         *)
(* ------------------------------------------------------------------ *)

type layer_report = {
  layer : string;
  code_paths : int;
  spec_paths : int;
  pairs : int;
  mismatches : string list;
  unknowns : int; (* solver Unknowns this layer check leaned on *)
  cert_failures : int; (* certificates rejected during this layer *)
  inconclusive : Budget.reason option; (* the check stopped short *)
  elapsed : float;
}

let layer_ok r = r.mismatches = [] && r.inconclusive = None

(* Compare two execution results (code vs. spec) from identical initial
   states: for every overlapping pair of paths, the outcomes and the
   memory effects must agree. *)
let compare_results (init_mem : Sval.memory) (code : Exec.result)
    (spec : Exec.result) : int * string list =
  let mismatches = ref [] in
  let pairs = ref 0 in
  (* One assertion stack for the whole product: the hypotheses of every
     entailment below extend [combined], whose tail (the code path
     condition) is shared physically across the inner loop. *)
  let istack = Solver.Incremental.create () in
  let add fmt = Format.kasprintf (fun s -> mismatches := s :: !mismatches) fmt in
  let term_of_sval = function
    | Sval.SInt t | Sval.SBool t -> Some t
    | Sval.SPtr _ | Sval.SNull | Sval.SUnit -> None
  in
  List.iter
    (fun ((cp : Exec.path), c_out) ->
      List.iter
        (fun ((sp : Exec.path), s_out) ->
          let combined = sp.Exec.pc @ cp.Exec.pc in
          match Solver.Incremental.check_pc istack combined with
          | Solver.Unsat -> ()
          | Solver.Sat _ | Solver.Unknown -> (
              incr pairs;
              match (c_out, s_out) with
              | Exec.Panicked _, Exec.Panicked _ -> ()
              | Exec.Panicked m, Exec.Returned _ ->
                  add "code panics (%s) where spec returns" m
              | Exec.Returned _, Exec.Panicked m ->
                  add "spec panics (%s) where code returns" m
              | Exec.Returned c_v, Exec.Returned s_v -> (
                  (match (c_v, s_v) with
                  | Some cv, Some sv -> (
                      match (term_of_sval cv, term_of_sval sv) with
                      | Some ct, Some st -> (
                          match Solver.Incremental.entails istack ~hyps:combined (Term.eq ct st) with
                          | Solver.Valid -> ()
                          | _ ->
                              add "return values differ: %a vs %a" Term.pp ct
                                Term.pp st)
                      | _ -> if cv <> sv then add "pointer returns differ")
                  | None, None -> ()
                  | _ -> add "return arity differs");
                  (* Memory effects must coincide. *)
                  let cw, ca = Summary.diff_memory init_mem cp.Exec.mem in
                  let sw, sa = Summary.diff_memory init_mem sp.Exec.mem in
                  if List.length ca <> List.length sa then
                    add "allocation counts differ";
                  let find_write ws (w : Summary.write) =
                    List.find_opt
                      (fun (w' : Summary.write) ->
                        w'.Summary.w_block = w.Summary.w_block
                        && w'.Summary.w_path = w.Summary.w_path)
                      ws
                  in
                  let check_side label ws ws' =
                    List.iter
                      (fun (w : Summary.write) ->
                        match find_write ws' w with
                        | None -> (
                            (* A write is missing on the other side: it
                               is only equivalent if it wrote back the
                               initial value. *)
                            let orig =
                              Sval.cell_get
                                (Sval.block_value init_mem w.Summary.w_block)
                                w.Summary.w_path
                            in
                            match (orig, w.Summary.w_cell) with
                            | Sval.CInt a, Sval.CInt b
                            | (Sval.CBool a, Sval.CBool b : Sval.scell * Sval.scell) -> (
                                match
                                  Solver.Incremental.entails istack ~hyps:combined (Term.eq a b)
                                with
                                | Solver.Valid -> ()
                                | _ ->
                                    add "%s writes %d.%s with no counterpart"
                                      label w.Summary.w_block
                                      (String.concat "."
                                         (List.map string_of_int w.Summary.w_path)))
                            | _ ->
                                add "%s writes %d.%s with no counterpart" label
                                  w.Summary.w_block
                                  (String.concat "."
                                     (List.map string_of_int w.Summary.w_path)))
                        | Some w' -> (
                            match (w.Summary.w_cell, w'.Summary.w_cell) with
                            | Sval.CInt a, Sval.CInt b | Sval.CBool a, Sval.CBool b
                              -> (
                                match
                                  Solver.Incremental.entails istack ~hyps:combined (Term.eq a b)
                                with
                                | Solver.Valid -> ()
                                | _ ->
                                    add "write to %d.%s differs"
                                      w.Summary.w_block
                                      (String.concat "."
                                         (List.map string_of_int w.Summary.w_path)))
                            | a, b ->
                                if not (Sval.equal_scalar a b) then
                                  add "write to %d.%s differs structurally"
                                    w.Summary.w_block
                                    (String.concat "."
                                       (List.map string_of_int w.Summary.w_path))))
                      ws
                  in
                  check_side "code" cw sw;
                  check_side "spec" sw cw)))
        spec)
    code;
  (!pairs, List.rev !mismatches)

(* Build the symbolic initial state for a layer check. *)
let sym_name_block mem prefix =
  Sval.alloc mem
    (Sval.CArray
       (Array.init maxl (fun j ->
            Sval.CInt (Term.int_var (Printf.sprintf "%s%d" prefix j)))))

let len_var name = Term.int_var name

let len_bounds v =
  [ Term.ge v (Term.int 0); Term.le v (Term.int maxl) ]

(* The initial state builders per layer. Returns (mem, args, pc). *)
let layer_setup (prog : Minir.Instr.program) (enc : Dnstree.Encode.t option)
    (layer : string) : Sval.memory * Sval.sval list * Term.t list =
  let tenv = prog.Minir.Instr.tenv in
  let base =
    match enc with
    | Some e -> Sval.memory_of_concrete e.Dnstree.Encode.memory
    | None -> Sval.memory_of_concrete Value.empty_memory
  in
  match layer with
  | "compareNames" | "nameOrder" ->
      let mem, a = sym_name_block base "la" in
      let mem, b = sym_name_block mem "lb" in
      let alen = len_var "lalen" and blen = len_var "lblen" in
      ( mem,
        [ Sval.SPtr a; Sval.SInt alen; Sval.SPtr b; Sval.SInt blen ],
        len_bounds alen @ len_bounds blen )
  | "copyNameInto" ->
      let mem, dst = sym_name_block base "ld" in
      let mem, src = sym_name_block mem "ls" in
      let n = len_var "lcn" in
      (mem, [ Sval.SPtr dst; Sval.SPtr src; Sval.SInt n ], len_bounds n)
  | "stackPush" ->
      let mem, stack =
        Sval.alloc base (Sval.scell_default tenv (Ty.Struct "NodeStack"))
      in
      (* Symbolic level exercises both the in-range and the panic
         behavior. *)
      let lvl = len_var "llvl" in
      let mem = Sval.store mem
          { stack with Value.path = [ 1 ] }
          (Sval.CInt lvl)
      in
      let node =
        match enc with
        | Some e -> Sval.SPtr e.Dnstree.Encode.root
        | None -> Sval.SNull
      in
      ( mem,
        [ Sval.SPtr stack; node ],
        [ Term.ge lvl (Term.int 0); Term.le lvl (Term.int Layout.max_stack) ] )
  | "findRRSet" ->
      let root =
        match enc with
        | Some e -> e.Dnstree.Encode.root
        | None -> invalid_arg "findRRSet setup needs a zone"
      in
      let rt = len_var "lrt" in
      (base, [ Sval.SPtr root; Sval.SInt rt ], [])
  | "appendAnswer" | "appendAuthority" | "appendAdditional" ->
      let mem, resp =
        Sval.alloc base (Sval.scell_default tenv (Ty.Struct "Response"))
      in
      let mem, rname = sym_name_block mem "lr" in
      let rlen = len_var "lrlen" in
      let mem, rd =
        Sval.alloc mem (Sval.scell_default tenv (Ty.Struct "Rdata"))
      in
      (* Symbolic rdata fields. *)
      let mem = Sval.store mem { rd with Value.path = [ 1 ] }
          (Sval.CInt (len_var "lrdlen"))
      in
      let mem = Sval.store mem { rd with Value.path = [ 3 ] }
          (Sval.CInt (len_var "lrdid"))
      in
      let rt = len_var "lart" in
      ( mem,
        [ Sval.SPtr resp; Sval.SPtr rname; Sval.SInt rlen; Sval.SInt rt;
          Sval.SPtr rd ],
        len_bounds rlen @ len_bounds (len_var "lrdlen") )
  | other -> invalid_arg ("no layer setup for " ^ other)

(* ---------------- Persistent layer verdicts ----------------------- *)

(* A *clean* layer verdict (no mismatches, no Unknowns, no rejected
   certificates, ran to completion) is a pure function of the layer's
   cone of influence in the program, the zone and the budget limits —
   so it can be persisted and served across runs and across engine
   versions that leave the cone untouched. Anything non-clean is never
   stored: a mismatch must be re-derived (its evidence is not
   persisted) and a degraded verdict must not outlive its cause. *)
let zone_fp (zone : Dns.Zone.t) =
  Digest.to_hex (Digest.string (Dns.Zonefile.render zone))

let limits_tag (b : Budget.t) =
  let num = function None -> "-" | Some n -> string_of_int n in
  Printf.sprintf "s%s,p%s,f%s"
    (num b.Budget.max_solver_steps)
    (num b.Budget.max_paths) (num b.Budget.max_fuel)

let layer_store_key ~prog ~zone ~budget layer =
  Store.derived_key ~prefix:"L"
    ~parts:
      [
        "layer-v1";
        layer;
        Store.Fingerprint.cone_fp prog layer;
        zone_fp zone;
        limits_tag budget;
      ]

let layer_clean_payload (r : layer_report) =
  let b = Buffer.create 32 in
  Store.Codec.wint b r.code_paths;
  Store.Codec.wint b r.spec_paths;
  Store.Codec.wint b r.pairs;
  Buffer.contents b

let layer_of_clean_payload ~layer ~elapsed payload : layer_report option =
  match
    let rd = Store.Codec.reader payload in
    let code_paths = Store.Codec.rint rd in
    let spec_paths = Store.Codec.rint rd in
    let pairs = Store.Codec.rint rd in
    (code_paths, spec_paths, pairs, Store.Codec.at_end rd)
  with
  | code_paths, spec_paths, pairs, true ->
      Some
        {
          layer;
          code_paths;
          spec_paths;
          pairs;
          mismatches = [];
          unknowns = 0;
          cert_failures = 0;
          inconclusive = None;
          elapsed;
        }
  | _, _, _, false -> None
  | exception Store.Codec.Bad _ -> None

(* Deep structural check for [Store.fsck] over entries this module
   framed ("L|…" keys); [None] for anything else. *)
let store_entry_check ~key ~payload =
  if String.length key >= 2 && String.sub key 0 2 = "L|" then
    Some
      (match layer_of_clean_payload ~layer:"" ~elapsed:0.0 payload with
      | Some _ -> Ok ()
      | None -> Error "undecodable layer payload")
  else None

(* Verify one manual layer of [prog] against its specification. Budget
   exhaustion or an escaped exception downgrades the layer to
   inconclusive instead of aborting the caller; leaning on a solver
   Unknown is recorded so the verdict cannot silently claim a proof.
   With [store], a clean verdict for this (cone, zone, limits) key is
   served from the persistent store instead of being re-derived, and a
   fresh clean verdict is recorded for the next run. *)
let h_layer_paths = Trace.Metrics.histogram "layer.paths"

let check_layer ?(zone = Spec.Fixtures.figure11_zone) ?budget ?store
    ?(analysis = Analysis.Off) (prog : Minir.Instr.program) (layer : string) :
    layer_report =
  Trace.with_span "layer" ~attrs:[ ("layer", layer) ] @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let skey =
    Option.map (fun _ -> layer_store_key ~prog ~zone ~budget layer) store
  in
  let served =
    match (store, skey) with
    | Some st, Some key -> (
        match Store.find st key with
        | None -> None
        | Some payload -> (
            let elapsed = Unix.gettimeofday () -. t0 in
            match layer_of_clean_payload ~layer ~elapsed payload with
            | Some r -> Some r
            | None ->
                Store.evict ~cert_failure:true st key;
                None))
    | _ -> None
  in
  match served with
  | Some r ->
      Trace.Metrics.observe h_layer_paths (float_of_int r.code_paths);
      Trace.add_attr "paths" (string_of_int r.code_paths);
      Trace.add_attr ~det:false "store" "hit";
      r
  | None ->
  let unknowns0 = (Solver.stats ()).Solver.unknowns in
  let certf0 = (Solver.stats ()).Solver.cert_failures in
  let certf () = (Solver.stats ()).Solver.cert_failures - certf0 in
  (* A rejected certificate downgrades the layer: the degraded answers
     already read as Unknowns, but the sharper cause should be named. *)
  let cert_reason inconclusive =
    match inconclusive with
    | Some _ -> inconclusive
    | None ->
        if certf () > 0 then
          Some
            (Budget.Cert_invalid
               (Printf.sprintf "%d certificate(s) failed re-validation"
                  (certf ())))
        else None
  in
  let attempt () =
    Solver.with_budget budget @@ fun () ->
    let spec =
      match spec_for layer with
      | Some s -> s
      | None -> invalid_arg ("no manual specification for layer " ^ layer)
    in
    let enc = Dnstree.Encode.encode (Dnstree.Tree.build zone) in
    let mem, args, pc = layer_setup prog (Some enc) layer in
    (* The analysis oracle applies to the engine-code side only; the
       spec side is the trusted reference and keeps its solver-only
       path, so a static-analysis bug cannot cancel out across the
       comparison. No env: this harness enters [layer] directly with
       fresh symbolic cells (unconstrained lengths, raw name bytes), so
       neither the engine entry facts nor the encoded-tree field
       invariants hold — only the env-free analysis is sound here. *)
    let code_ctx = Exec.create ~budget ~analysis prog in
    let code_paths = Exec.run code_ctx ~memory:mem ~pc ~fn:layer ~args in
    let spec_ctx = Exec.create ~budget prog in
    let spec_paths = spec spec_ctx { Exec.pc; mem } args in
    let pairs, mismatches = compare_results mem code_paths spec_paths in
    (List.length code_paths, List.length spec_paths, pairs, mismatches)
  in
  match attempt () with
  | code_paths, spec_paths, pairs, mismatches ->
      Trace.Metrics.observe h_layer_paths (float_of_int code_paths);
      Trace.add_attr "paths" (string_of_int code_paths);
      let r =
        {
          layer;
          code_paths;
          spec_paths;
          pairs;
          mismatches;
          unknowns = (Solver.stats ()).Solver.unknowns - unknowns0;
          cert_failures = certf ();
          inconclusive = cert_reason None;
          elapsed = Unix.gettimeofday () -. t0;
        }
      in
      (* Persist clean verdicts only (see the codec note above). *)
      (match (store, skey) with
      | Some st, Some key
        when r.mismatches = [] && r.unknowns = 0 && r.cert_failures = 0
             && r.inconclusive = None ->
          Store.add st key (layer_clean_payload r)
      | _ -> ());
      r
  | exception e ->
      {
        layer;
        code_paths = 0;
        spec_paths = 0;
        pairs = 0;
        mismatches = [];
        unknowns = (Solver.stats ()).Solver.unknowns - unknowns0;
        cert_failures = certf ();
        inconclusive = Some (Budget.reason_of_exn e);
        elapsed = Unix.gettimeofday () -. t0;
      }

(* Verify every manual layer of an engine version. Layer faults are
   isolated per layer by [check_layer]. *)
let check_all ?zone ?budget ?store ?analysis (prog : Minir.Instr.program) :
    layer_report list =
  List.map
    (fun (fn, _) -> check_layer ?zone ?budget ?store ?analysis prog fn)
    specs
