(* Manual specifications for the stable dependency layers (the yellow
   boxes of Figure 5) and the refinement check that each layer's code
   is equivalent to its specification (§5.2, §6.3).

   Specifications are written in the executable AbsLLVM style (§6.1):
   OCaml functions over symbolic values that fork on abstract,
   word-level conditions — e.g. compareAbs (Figure 10) compares whole
   labels as integers where compareRaw grinds through bytes. They serve
   two purposes:

   - each is *verified* against the corresponding Golite code by
     full-path product checking (code paths × spec paths, SMT-discharged
     equivalence of return values and memory effects);
   - they can then be installed as intercepts during whole-engine
     verification, which is the layered-verification configuration.

   These layers are stable across engine versions (Table 3): the same
   specifications verify against every version's code. *)

module Term = Smt.Term
module Solver = Smt.Solver
module Value = Minir.Value
module Ty = Minir.Ty
module Layout = Dnstree.Layout
module Sval = Symex.Sval
module Exec = Symex.Exec
module Summary = Symex.Summary
val maxl : int
val ret : Exec.path -> Symex.Sval.sval -> Exec.result
val ret_int : Exec.path -> int -> Exec.result
val ret_void : Exec.path -> Exec.result
val read_name_cells : Sval.memory -> Value.ptr -> Term.t array
val fork_length :
  Exec.ctx ->
  Exec.path -> Term.t -> (Exec.path -> int -> Exec.result) -> Exec.result
val prefix_eq : Term.t array -> Term.t array -> int -> Term.t
val compare_names_spec : Exec.intercept
val name_order_spec : Exec.intercept
val copy_name_spec : Exec.intercept
val stack_push_spec : Exec.intercept
val find_rrset_spec : Exec.intercept
val append_spec :
  count_field:int -> section_field:int -> cap:int -> Exec.intercept
val specs : (string * (Exec.intercept * int)) list
val spec_for : string -> Exec.intercept option
val spec_loc : string -> int option
type layer_report = {
  layer : string;
  code_paths : int;
  spec_paths : int;
  pairs : int;
  mismatches : string list;
  unknowns : int; (* solver Unknowns this layer check leaned on *)
  cert_failures : int; (* certificates rejected during this layer *)
  inconclusive : Budget.reason option; (* the check stopped short *)
  elapsed : float;
}
val layer_ok : layer_report -> bool
val compare_results :
  Sval.memory -> Exec.result -> Exec.result -> int * string list
val sym_name_block : Sval.memory -> string -> Sval.memory * Sval.Value.ptr
val len_var : string -> Term.t
val len_bounds : Term.t -> Term.t list
val layer_setup :
  Minir.Instr.program ->
  Dnstree.Encode.t option ->
  string -> Sval.memory * Sval.sval list * Term.t list
(* Deep structural check for [Store.fsck] over the layer-verdict
   entries this module frames ("L|…" keys); [None] for other kinds. *)
val store_entry_check :
  key:string -> payload:string -> (unit, string) result option

(* [store] serves a clean layer verdict persisted under the layer's
   cone fingerprint (plus zone and budget-limits tags) and persists
   fresh clean verdicts; degraded verdicts are always re-derived. *)
(* [analysis] applies the static-analysis oracle (with the engine env)
   to the engine-code side of the comparison only; the spec side stays
   solver-only so an analysis bug cannot cancel out. *)
val check_layer :
  ?zone:Spec.Fixtures.Zone.t ->
  ?budget:Budget.t ->
  ?store:Store.t ->
  ?analysis:Analysis.policy ->
  Minir.Instr.program -> string -> layer_report
val check_all :
  ?zone:Spec.Fixtures.Zone.t ->
  ?budget:Budget.t ->
  ?store:Store.t ->
  ?analysis:Analysis.policy ->
  Minir.Instr.program -> layer_report list
