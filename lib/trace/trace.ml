(* See trace.mli for the contract. Everything here is stdlib + unix:
   the subsystem must sit below every other library in the repo
   (faultinject, budget, smt all report into it), so it can depend on
   nothing of theirs. *)

let now_s () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                   *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  (* Handles are global (registered once, at module init of the client
     library); cells are domain-local, one fresh zero per domain, so
     workers never contend and worker totals are exactly their deltas.
     The registry list itself is touched only at registration and
     snapshot time, both rare, so one mutex suffices. *)

  (* Power-of-two buckets: observation v > 0 lands in the bucket whose
     upper bound is the smallest 2^e >= v. [offset] positions 2^-24
     (~60ns as seconds) in bucket 0; 48 buckets reach 2^23. *)
  let bucket_count = 48
  let bucket_offset = 24
  let bucket_upper i = Float.of_int 2 ** Float.of_int (i - bucket_offset)

  let bucket_of v =
    if v <= 0.0 then 0
    else
      let _, e = Float.frexp v in
      (* v in (2^(e-1), 2^e] up to the half-open convention of frexp;
         nudge exact powers of two down into their own bucket. *)
      let e = if Float.of_int 2 ** Float.of_int (e - 1) >= v then e - 1 else e in
      max 0 (min (bucket_count - 1) (e + bucket_offset))

  type histcell = {
    mutable hc_count : int;
    mutable hc_sum : float;
    hc_buckets : int array;
  }

  let fresh_histcell () =
    { hc_count = 0; hc_sum = 0.0; hc_buckets = Array.make bucket_count 0 }

  type counter = { c_name : string; c_cell : int ref Domain.DLS.key }
  type histogram = { g_name : string; g_cell : histcell Domain.DLS.key }
  type entry = Counter_e of counter | Hist_e of histogram

  let registry : entry list ref = ref []
  let registry_mu = Mutex.create ()

  let entry_name = function
    | Counter_e c -> c.c_name
    | Hist_e h -> h.g_name

  let counter name : counter =
    Mutex.lock registry_mu;
    let r =
      match
        List.find_opt (fun e -> String.equal (entry_name e) name) !registry
      with
      | Some (Counter_e c) -> c
      | Some (Hist_e _) ->
          Mutex.unlock registry_mu;
          invalid_arg ("Trace.Metrics.counter: " ^ name ^ " is a histogram")
      | None ->
          let c = { c_name = name; c_cell = Domain.DLS.new_key (fun () -> ref 0) } in
          registry := Counter_e c :: !registry;
          c
    in
    Mutex.unlock registry_mu;
    r

  let histogram name : histogram =
    Mutex.lock registry_mu;
    let r =
      match
        List.find_opt (fun e -> String.equal (entry_name e) name) !registry
      with
      | Some (Hist_e h) -> h
      | Some (Counter_e _) ->
          Mutex.unlock registry_mu;
          invalid_arg ("Trace.Metrics.histogram: " ^ name ^ " is a counter")
      | None ->
          let h = { g_name = name; g_cell = Domain.DLS.new_key fresh_histcell } in
          registry := Hist_e h :: !registry;
          h
    in
    Mutex.unlock registry_mu;
    r

  let add (c : counter) n =
    let r = Domain.DLS.get c.c_cell in
    r := !r + n

  let incr c = add c 1
  let value (c : counter) = !(Domain.DLS.get c.c_cell)

  let observe (h : histogram) v =
    let hc = Domain.DLS.get h.g_cell in
    hc.hc_count <- hc.hc_count + 1;
    hc.hc_sum <- hc.hc_sum +. v;
    let b = hc.hc_buckets.(bucket_of v) in
    hc.hc_buckets.(bucket_of v) <- b + 1

  type hist = { h_count : int; h_sum : float; h_buckets : int array }

  type snapshot = {
    counters : (string * int) list;
    hists : (string * hist) list;
  }

  let empty = { counters = []; hists = [] }

  let by_name (a, _) (b, _) = String.compare a b

  let snapshot () : snapshot =
    let entries = Mutex.protect registry_mu (fun () -> !registry) in
    let counters = ref [] and hists = ref [] in
    List.iter
      (function
        | Counter_e c -> counters := (c.c_name, value c) :: !counters
        | Hist_e h ->
            let hc = Domain.DLS.get h.g_cell in
            hists :=
              ( h.g_name,
                {
                  h_count = hc.hc_count;
                  h_sum = hc.hc_sum;
                  h_buckets = Array.copy hc.hc_buckets;
                } )
              :: !hists)
      entries;
    {
      counters = List.sort by_name !counters;
      hists = List.sort by_name !hists;
    }

  (* Pointwise merge of two sorted-by-name assoc lists; names missing
     on one side merge against [zero]. *)
  let merge_assoc (f : 'a -> 'a -> 'a) (zero : 'a) l1 l2 =
    let rec go l1 l2 =
      match (l1, l2) with
      | [], [] -> []
      | (n1, v1) :: t1, [] -> (n1, f v1 zero) :: go t1 []
      | [], (n2, v2) :: t2 -> (n2, f zero v2) :: go [] t2
      | ((n1, v1) :: t1 as l1'), ((n2, v2) :: t2 as l2') ->
          let c = String.compare n1 n2 in
          if c = 0 then (n1, f v1 v2) :: go t1 t2
          else if c < 0 then (n1, f v1 zero) :: go t1 l2'
          else (n2, f zero v2) :: go l1' t2
    in
    go l1 l2

  let hist_zero =
    { h_count = 0; h_sum = 0.0; h_buckets = Array.make bucket_count 0 }

  let hist_map2 int_op float_op a b =
    {
      h_count = int_op a.h_count b.h_count;
      h_sum = float_op a.h_sum b.h_sum;
      h_buckets =
        Array.init bucket_count (fun i -> int_op a.h_buckets.(i) b.h_buckets.(i));
    }

  let combine int_op float_op a b =
    {
      counters = merge_assoc int_op 0 a.counters b.counters;
      hists = merge_assoc (hist_map2 int_op float_op) hist_zero a.hists b.hists;
    }

  let sum a b = combine ( + ) ( +. ) a b
  let diff a b = combine ( - ) ( -. ) a b

  let absorb (s : snapshot) =
    let entries = Mutex.protect registry_mu (fun () -> !registry) in
    List.iter
      (function
        | Counter_e c -> (
            match List.assoc_opt c.c_name s.counters with
            | Some n when n <> 0 -> add c n
            | _ -> ())
        | Hist_e h -> (
            match List.assoc_opt h.g_name s.hists with
            | Some d when d.h_count <> 0 || d.h_sum <> 0.0 ->
                let hc = Domain.DLS.get h.g_cell in
                hc.hc_count <- hc.hc_count + d.h_count;
                hc.hc_sum <- hc.hc_sum +. d.h_sum;
                Array.iteri
                  (fun i n -> hc.hc_buckets.(i) <- hc.hc_buckets.(i) + n)
                  d.h_buckets
            | _ -> ()))
      entries

  let get (s : snapshot) name =
    Option.value ~default:0 (List.assoc_opt name s.counters)

  let get_hist (s : snapshot) name = List.assoc_opt name s.hists

  (* Upper-bound quantile over the power-of-two buckets: the bound of
     the first bucket at which the cumulative count reaches q*count.
     Conservative by at most one bucket (a factor of two), which is
     what a latency gate wants: never under-report a percentile. *)
  let hist_quantile (h : hist) q =
    if h.h_count = 0 then 0.0
    else begin
      let target = int_of_float (Float.round (q *. float_of_int h.h_count)) in
      let target = max 1 target in
      let acc = ref 0 and ans = ref (bucket_upper 0) in
      (try
         Array.iteri
           (fun i n ->
             acc := !acc + n;
             if !acc >= target then begin
               ans := bucket_upper i;
               raise Exit
             end)
           h.h_buckets
       with Exit -> ());
      !ans
    end

  (* The power-of-two bucket bracketing [hist_quantile]'s answer: the
     true quantile lies in (lo, hi], where [hi] is exactly what
     [hist_quantile] reports and [lo] is the next bucket edge down (0
     for the lowest bucket). This is the bucketing's intrinsic error
     bound — at most a factor of two — so percentile output can say
     how exact it is instead of reading as exact. (0, 0) when the
     histogram is empty. *)
  let hist_quantile_bounds (h : hist) q =
    if h.h_count = 0 then (0.0, 0.0)
    else begin
      let target = int_of_float (Float.round (q *. float_of_int h.h_count)) in
      let target = max 1 target in
      let acc = ref 0 and idx = ref 0 in
      (try
         Array.iteri
           (fun i n ->
             acc := !acc + n;
             if !acc >= target then begin
               idx := i;
               raise Exit
             end)
           h.h_buckets
       with Exit -> ());
      ((if !idx = 0 then 0.0 else bucket_upper (!idx - 1)), bucket_upper !idx)
    end

  let reset_current_domain () =
    let entries = Mutex.protect registry_mu (fun () -> !registry) in
    List.iter
      (function
        | Counter_e c -> Domain.DLS.get c.c_cell := 0
        | Hist_e h ->
            let hc = Domain.DLS.get h.g_cell in
            hc.hc_count <- 0;
            hc.hc_sum <- 0.0;
            Array.fill hc.hc_buckets 0 bucket_count 0)
      entries
end

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

type span = {
  sp_name : string;
  sp_det : bool;
  sp_start : float;
  mutable sp_dur : float;
  mutable sp_attrs : (string * string * bool) list;
  mutable sp_events : event list;
  mutable sp_children : span list;
}

and event = {
  ev_name : string;
  ev_at : float;
  ev_det : bool;
  ev_attrs : (string * string) list;
}

type forest = span list

(* The sink switch is global (Atomic: worker domains must observe the
   main domain's [recording]); the span stack and finished roots are
   domain-local, so domains never share nodes until [capture] hands a
   finished forest across the join barrier. *)
let sink = Atomic.make false
let enabled () = Atomic.get sink

type rec_state = { mutable stack : span list; mutable roots : span list }

let state_key : rec_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { stack = []; roots = [] })

let state () = Domain.DLS.get state_key

let add_attr ?(det = true) k v =
  if Atomic.get sink then
    match (state ()).stack with
    | sp :: _ -> sp.sp_attrs <- (k, v, det) :: sp.sp_attrs
    | [] -> ()

let event ?(det = true) ?(attrs = []) name =
  if Atomic.get sink then
    match (state ()).stack with
    | sp :: _ ->
        sp.sp_events <-
          { ev_name = name; ev_at = now_s (); ev_det = det; ev_attrs = attrs }
          :: sp.sp_events
    | [] -> ()

(* Close [sp]: fix child/event order, pop it (recovering from any
   unbalanced nesting), attach to parent or roots. *)
let close_span (st : rec_state) (sp : span) =
  sp.sp_dur <- now_s () -. sp.sp_start;
  sp.sp_attrs <- List.rev sp.sp_attrs;
  sp.sp_events <- List.rev sp.sp_events;
  sp.sp_children <- List.rev sp.sp_children;
  let rec pop = function
    | s :: rest when s == sp -> rest
    | _ :: rest -> pop rest
    | [] -> []
  in
  st.stack <- pop st.stack;
  match st.stack with
  | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
  | [] -> st.roots <- sp :: st.roots

let with_span ?(det = true) ?(attrs = []) name (f : unit -> 'a) : 'a =
  if not (Atomic.get sink) then f ()
  else begin
    let st = state () in
    let sp =
      {
        sp_name = name;
        sp_det = det;
        sp_start = now_s ();
        sp_dur = 0.0;
        sp_attrs = List.rev_map (fun (k, v) -> (k, v, true)) attrs;
        sp_events = [];
        sp_children = [];
      }
    in
    st.stack <- sp :: st.stack;
    match f () with
    | v ->
        close_span st sp;
        v
    | exception e ->
        sp.sp_attrs <- ("exn", Printexc.to_string e, true) :: sp.sp_attrs;
        close_span st sp;
        raise e
  end

let capture (f : unit -> 'a) : 'a * forest =
  if not (Atomic.get sink) then (f (), [])
  else begin
    let st = state () in
    let saved_stack = st.stack and saved_roots = st.roots in
    st.stack <- [];
    st.roots <- [];
    let restore () =
      let collected = List.rev st.roots in
      st.stack <- saved_stack;
      st.roots <- saved_roots;
      collected
    in
    match f () with
    | v -> (v, restore ())
    | exception e ->
        ignore (restore ());
        raise e
  end

let graft (forest : forest) =
  if Atomic.get sink && forest <> [] then begin
    let st = state () in
    match st.stack with
    | parent :: _ ->
        parent.sp_children <- List.rev_append forest parent.sp_children
    | [] -> st.roots <- List.rev_append forest st.roots
  end

let recording (f : unit -> 'a) : 'a * forest =
  let st = state () in
  st.stack <- [];
  st.roots <- [];
  Atomic.set sink true;
  Fun.protect
    ~finally:(fun () -> Atomic.set sink false)
    (fun () ->
      let v = f () in
      (v, List.rev st.roots))

let rec span_count_1 (sp : span) =
  1 + List.fold_left (fun a c -> a + span_count_1 c) 0 sp.sp_children

let span_count (f : forest) = List.fold_left (fun a s -> a + span_count_1 s) 0 f

(* The deterministic skeleton: names, det attrs (sorted by key), det
   events, child order. det:false spans disappear with their subtree —
   their very existence can depend on which domain populated a memo
   first — and timings never appear. *)
let tree_fingerprint (forest : forest) : string =
  let b = Buffer.create 1024 in
  let attr_line (k, v) = k ^ "=" ^ v in
  let rec span ind (sp : span) =
    if sp.sp_det then begin
      let det_attrs =
        List.filter_map (fun (k, v, d) -> if d then Some (k, v) else None)
          sp.sp_attrs
        |> List.sort compare
      in
      Buffer.add_string b
        (Printf.sprintf "%s%s{%s}\n" ind sp.sp_name
           (String.concat "," (List.map attr_line det_attrs)));
      List.iter
        (fun ev ->
          if ev.ev_det then
            Buffer.add_string b
              (Printf.sprintf "%s!%s{%s}\n" ind ev.ev_name
                 (String.concat ","
                    (List.map attr_line (List.sort compare ev.ev_attrs)))))
        sp.sp_events;
      List.iter (span (ind ^ " ")) sp.sp_children
    end
  in
  List.iter (span "") forest;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                          *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""

let chrome_json ?(metrics = Metrics.empty) (forest : forest) : string =
  let t0 =
    List.fold_left (fun a sp -> Float.min a sp.sp_start) Float.infinity forest
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let us t = (t -. t0) *. 1e6 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let emit_obj fields =
    if not !first then Buffer.add_char b ',';
    first := false;
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (json_str k);
        Buffer.add_char b ':';
        Buffer.add_string b v)
      fields;
    Buffer.add_char b '}'
  in
  let args attrs det =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> json_str k ^ ":" ^ json_str v) attrs
        @ if det then [] else [ json_str "det" ^ ":" ^ json_str "false" ])
    ^ "}"
  in
  (* Span attrs carry a per-attr determinism flag; the non-det keys are
     listed under "nondet" so JSON consumers can recover the
     deterministic skeleton that [tree_fingerprint] hashes. *)
  let span_args (attrs : (string * string * bool) list) det =
    let nondet =
      List.filter_map (fun (k, _, d) -> if d then None else Some k) attrs
    in
    "{"
    ^ String.concat ","
        (List.map (fun (k, v, _) -> json_str k ^ ":" ^ json_str v) attrs
        @ (if nondet = [] then []
           else
             [ json_str "nondet" ^ ":" ^ json_str (String.concat "," nondet) ])
        @ if det then [] else [ json_str "det" ^ ":" ^ json_str "false" ])
    ^ "}"
  in
  let next_id = ref 0 in
  let rec emit_span parent (sp : span) =
    let id = !next_id in
    Stdlib.incr next_id;
    emit_obj
      [
        ("name", json_str sp.sp_name);
        ("ph", json_str "X");
        ("ts", Printf.sprintf "%.1f" (us sp.sp_start));
        ("dur", Printf.sprintf "%.1f" (sp.sp_dur *. 1e6));
        ("pid", "1");
        ("tid", "1");
        ("sid", string_of_int id);
        ("parent", string_of_int parent);
        ("args", span_args sp.sp_attrs sp.sp_det);
      ];
    List.iter
      (fun ev ->
        emit_obj
          [
            ("name", json_str ev.ev_name);
            ("ph", json_str "i");
            ("ts", Printf.sprintf "%.1f" (us ev.ev_at));
            ("pid", "1");
            ("tid", "1");
            ("s", json_str "t");
            ("parent", string_of_int id);
            ("args", args ev.ev_attrs ev.ev_det);
          ])
      sp.sp_events;
    List.iter (emit_span id) sp.sp_children
  in
  List.iter (emit_span (-1)) forest;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\",\"metrics\":{";
  Buffer.add_string b "\"counters\":{";
  Buffer.add_string b
    (String.concat ","
       (List.map
          (fun (n, v) -> json_str n ^ ":" ^ string_of_int v)
          metrics.Metrics.counters));
  Buffer.add_string b "},\"histograms\":{";
  Buffer.add_string b
    (String.concat ","
       (List.map
          (fun (n, (h : Metrics.hist)) ->
            Printf.sprintf "%s:{\"count\":%d,\"sum\":%.9f,\"buckets\":[%s]}"
              (json_str n) h.Metrics.h_count h.Metrics.h_sum
              (String.concat ","
                 (Array.to_list (Array.map string_of_int h.Metrics.h_buckets))))
          metrics.Metrics.hists));
  Buffer.add_string b "}}}";
  Buffer.contents b

let write_chrome ?metrics ~path (forest : forest) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (chrome_json ?metrics forest))

(* ------------------------------------------------------------------ *)
(* JSON reader                                                        *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = Stdlib.incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
                Buffer.add_char b e;
                go ()
            | 'b' -> Buffer.add_char b '\b'; go ()
            | 'f' -> Buffer.add_char b '\012'; go ()
            | 'n' -> Buffer.add_char b '\n'; go ()
            | 'r' -> Buffer.add_char b '\r'; go ()
            | 't' -> Buffer.add_char b '\t'; go ()
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let cp =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                (* Encode the code point as UTF-8 (surrogate pairs are
                   not recombined; the exporter never emits them). *)
                if cp < 0x80 then Buffer.add_char b (Char.chr cp)
                else if cp < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                end;
                go ()
            | _ -> fail "bad escape")
        | c ->
            Buffer.add_char b c;
            go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c when num_char c -> true | _ -> false) do
        advance ()
      done;
      if !pos = start then fail "expected a number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elems []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing bytes after the document";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Report: read a Chrome export back and render it                    *)
(* ------------------------------------------------------------------ *)

module Report = struct
  type rspan = {
    r_name : string;
    r_dur : float;
    r_attrs : (string * string) list;
    r_events : (string * (string * string) list) list;
    r_children : rspan list;
  }

  type t = {
    spans : rspan list;
    counters : (string * int) list;
    hists : (string * Metrics.hist) list;
  }

  (* Mutable accumulator per span id while the event list streams by. *)
  type node = {
    n_name : string;
    n_dur : float;
    n_attrs : (string * string) list;
    n_parent : int;
    mutable n_events : (string * (string * string) list) list;
    mutable n_children : int list; (* ids, reversed *)
  }

  let of_string (content : string) : (t, string) result =
    match Json.parse content with
    | Error e -> Error ("trace file is not well-formed JSON: " ^ e)
    | Ok doc -> (
        match Json.member "traceEvents" doc with
        | Some (Json.Arr events) -> (
            let nodes : (int, node) Hashtbl.t = Hashtbl.create 256 in
            let root_ids = ref [] in
            let str = function Some (Json.Str s) -> Some s | _ -> None in
            let num = function Some (Json.Num f) -> Some f | _ -> None in
            let attrs_of = function
              | Some (Json.Obj fields) ->
                  List.filter_map
                    (fun (k, v) ->
                      match v with
                      | Json.Str s when k <> "det" && k <> "nondet" ->
                          Some (k, s)
                      | _ -> None)
                    fields
              | _ -> []
            in
            let bad = ref None in
            List.iter
              (fun ev ->
                match str (Json.member "ph" ev) with
                | Some "X" -> (
                    match
                      ( str (Json.member "name" ev),
                        num (Json.member "dur" ev),
                        num (Json.member "sid" ev),
                        num (Json.member "parent" ev) )
                    with
                    | Some name, Some dur, Some sid, Some parent ->
                        let sid = int_of_float sid
                        and parent = int_of_float parent in
                        Hashtbl.replace nodes sid
                          {
                            n_name = name;
                            n_dur = dur /. 1e6;
                            n_attrs = attrs_of (Json.member "args" ev);
                            n_parent = parent;
                            n_events = [];
                            n_children = [];
                          };
                        if parent < 0 then root_ids := sid :: !root_ids
                    | _ -> bad := Some "span event missing name/dur/sid/parent")
                | Some "i" -> (
                    match
                      (str (Json.member "name" ev), num (Json.member "parent" ev))
                    with
                    | Some name, Some parent -> (
                        match Hashtbl.find_opt nodes (int_of_float parent) with
                        | Some n ->
                            n.n_events <-
                              (name, attrs_of (Json.member "args" ev))
                              :: n.n_events
                        | None -> ())
                    | _ -> ())
                | _ -> ())
              events;
            (* Link children. [Hashtbl.iter] order is arbitrary, so the
               lists are sorted afterwards: sids ascend in DFS order,
               which restores the original sibling order. *)
            Hashtbl.iter
              (fun sid n ->
                if n.n_parent >= 0 then
                  match Hashtbl.find_opt nodes n.n_parent with
                  | Some p -> p.n_children <- sid :: p.n_children
                  | None -> ())
              nodes;
            Hashtbl.iter
              (fun _ n -> n.n_children <- List.sort_uniq compare n.n_children)
              nodes;
            let rec build sid =
              let n = Hashtbl.find nodes sid in
              {
                r_name = n.n_name;
                r_dur = n.n_dur;
                r_attrs = n.n_attrs;
                r_events = List.rev n.n_events;
                r_children = List.map build n.n_children;
              }
            in
            let spans = List.map build (List.sort compare !root_ids) in
            let counters, hists =
              match Json.member "metrics" doc with
              | Some m ->
                  let counters =
                    match Json.member "counters" m with
                    | Some (Json.Obj fields) ->
                        List.filter_map
                          (fun (k, v) ->
                            match v with
                            | Json.Num f -> Some (k, int_of_float f)
                            | _ -> None)
                          fields
                    | _ -> []
                  in
                  let hists =
                    match Json.member "histograms" m with
                    | Some (Json.Obj fields) ->
                        List.filter_map
                          (fun (k, v) ->
                            match
                              ( Json.member "count" v,
                                Json.member "sum" v,
                                Json.member "buckets" v )
                            with
                            | ( Some (Json.Num count),
                                Some (Json.Num sum),
                                Some (Json.Arr bs) ) ->
                                let buckets =
                                  Array.of_list
                                    (List.map
                                       (function
                                         | Json.Num f -> int_of_float f
                                         | _ -> 0)
                                       bs)
                                in
                                Some
                                  ( k,
                                    {
                                      Metrics.h_count = int_of_float count;
                                      h_sum = sum;
                                      h_buckets = buckets;
                                    } )
                            | _ -> None)
                          fields
                    | _ -> []
                  in
                  (counters, hists)
              | None -> ([], [])
            in
            match !bad with
            | Some msg -> Error msg
            | None -> Ok { spans; counters; hists })
        | _ -> Error "trace file has no traceEvents array")

  let load (path : string) : (t, string) result =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | content -> of_string content
    | exception Sys_error e -> Error e

  let find_spans (t : t) ~name : rspan list =
    let rec go acc sp =
      let acc = if String.equal sp.r_name name then sp :: acc else acc in
      List.fold_left go acc sp.r_children
    in
    List.rev (List.fold_left go [] t.spans)

  (* Render helpers *)

  let ms f = f *. 1e3

  let hist_quantile = Metrics.hist_quantile

  let render ?(top = 10) ?(depth = 4) (t : t) : string =
    let b = Buffer.create 4096 in
    let total = List.fold_left (fun a sp -> a +. sp.r_dur) 0.0 t.spans in
    Printf.bprintf b "trace: %d span(s), %.1f ms total\n"
      (let rec count sp =
         1 + List.fold_left (fun a c -> a + count c) 0 sp.r_children
       in
       List.fold_left (fun a sp -> a + count sp) 0 t.spans)
      (ms total);
    (* Per-phase table: aggregate by span name. *)
    let phases : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 16 in
    let rec tally sp =
      (match Hashtbl.find_opt phases sp.r_name with
      | Some (n, d) ->
          Stdlib.incr n;
          d := !d +. sp.r_dur
      | None -> Hashtbl.add phases sp.r_name (ref 1, ref sp.r_dur));
      List.iter tally sp.r_children
    in
    List.iter tally t.spans;
    let rows =
      Hashtbl.fold (fun name (n, d) acc -> (name, !n, !d) :: acc) phases []
      |> List.sort (fun (_, _, d1) (_, _, d2) -> compare d2 d1)
    in
    Printf.bprintf b "\nper-phase (wall time includes children):\n";
    Printf.bprintf b "  %-18s %8s %12s %12s\n" "span" "count" "total ms"
      "mean ms";
    List.iter
      (fun (name, n, d) ->
        Printf.bprintf b "  %-18s %8d %12.2f %12.3f\n" name n (ms d)
          (ms d /. float_of_int n))
      rows;
    (* Span tree down to [depth]. *)
    Printf.bprintf b "\nspan tree (to depth %d):\n" depth;
    let label sp =
      let interesting =
        List.filter
          (fun (k, _) ->
            List.mem k
              [ "qtype"; "layer"; "fn"; "version"; "zone"; "reason"; "attempt" ])
          sp.r_attrs
      in
      sp.r_name
      ^
      if interesting = [] then ""
      else
        "{"
        ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) interesting)
        ^ "}"
    in
    let rec tree ind d sp =
      if d <= depth then begin
        Printf.bprintf b "  %s%-*s %9.2f ms\n" ind
          (max 1 (40 - String.length ind))
          (label sp) (ms sp.r_dur);
        List.iter (tree (ind ^ "  ") (d + 1)) sp.r_children
      end
    in
    List.iter (tree "" 1) t.spans;
    (* Top-N slowest spans (by inclusive duration, roots excluded when
       they trivially dominate). *)
    let all = ref [] in
    let rec flat path sp =
      let path = path @ [ label sp ] in
      all := (String.concat " > " path, sp.r_dur) :: !all;
      List.iter (flat path) sp.r_children
    in
    List.iter (flat []) t.spans;
    let slow =
      List.sort (fun (_, d1) (_, d2) -> compare d2 d1) !all
      |> List.filteri (fun i _ -> i < top)
    in
    Printf.bprintf b "\ntop %d slowest spans:\n" top;
    List.iter
      (fun (path, d) -> Printf.bprintf b "  %9.2f ms  %s\n" (ms d) path)
      slow;
    if t.counters <> [] then begin
      Printf.bprintf b "\ncounters:\n";
      List.iter
        (fun (n, v) -> if v <> 0 then Printf.bprintf b "  %-32s %d\n" n v)
        t.counters
    end;
    if t.hists <> [] then begin
      Printf.bprintf b "\nhistograms:\n";
      List.iter
        (fun (n, (h : Metrics.hist)) ->
          if h.Metrics.h_count > 0 then
            (* Only latency histograms (named *_seconds) are
               time-valued; the rest (path counts, pc depth) are raw
               magnitudes. *)
            let scale, unit =
              if
                String.length n >= 8
                && String.sub n (String.length n - 8) 8 = "_seconds"
              then ((fun v -> ms v), "ms")
              else ((fun v -> v), "")
            in
            Printf.bprintf b
              "  %-32s count=%d mean=%.3g%s p50<=%.3g%s p95<=%.3g%s\n" n
              h.Metrics.h_count
              (scale (h.Metrics.h_sum /. float_of_int h.Metrics.h_count))
              unit
              (scale (hist_quantile h 0.5))
              unit
              (scale (hist_quantile h 0.95))
              unit)
        t.hists
    end;
    Buffer.contents b

  (* Machine-readable twin of [render]: the per-phase wall/count table
     plus every counter and histogram (histogram quantiles carry their
     power-of-two-bucket error bound as a [lo, hi] pair). `dnsv report
     --json` and `dnsv top --once --json` share this consumer shape,
     so CI parses one format. *)
  let num f = Printf.sprintf "%.12g" f

  let to_json (t : t) : string =
    let phases : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 16 in
    let rec tally sp =
      (match Hashtbl.find_opt phases sp.r_name with
      | Some (n, d) ->
          Stdlib.incr n;
          d := !d +. sp.r_dur
      | None -> Hashtbl.add phases sp.r_name (ref 1, ref sp.r_dur));
      List.iter tally sp.r_children
    in
    List.iter tally t.spans;
    let rows =
      Hashtbl.fold (fun name (n, d) acc -> (name, !n, !d) :: acc) phases []
      |> List.sort (fun (n1, _, d1) (n2, _, d2) ->
             match compare d2 d1 with 0 -> compare n1 n2 | c -> c)
    in
    let phase_obj (name, n, d) =
      Printf.sprintf
        "{\"span\":%s,\"count\":%d,\"total_ms\":%s,\"mean_ms\":%s}"
        (json_str name) n (num (ms d))
        (num (ms d /. float_of_int n))
    in
    let counter_field (n, v) = Printf.sprintf "%s:%d" (json_str n) v in
    let hist_field (n, (h : Metrics.hist)) =
      let q p =
        let lo, hi = Metrics.hist_quantile_bounds h p in
        Printf.sprintf "[%s,%s]" (num lo) (num hi)
      in
      Printf.sprintf
        "%s:{\"count\":%d,\"sum\":%s,\"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
        (json_str n) h.Metrics.h_count (num h.Metrics.h_sum)
        (num
           (if h.Metrics.h_count = 0 then 0.0
            else h.Metrics.h_sum /. float_of_int h.Metrics.h_count))
        (q 0.5) (q 0.9) (q 0.99)
    in
    Printf.sprintf "{\"phases\":[%s],\"counters\":{%s},\"histograms\":{%s}}"
      (String.concat "," (List.map phase_obj rows))
      (String.concat "," (List.map counter_field t.counters))
      (String.concat "," (List.map hist_field t.hists))
end
