(* Zero-dependency structured tracing + metrics for the verification
   pipeline.

   Two cooperating facilities:

   - a **metrics registry** of named counters and histograms. Cells are
     domain-local (each parallel worker counts into its own), and
     [Metrics.snapshot]/[diff]/[absorb] give the same merge discipline
     the solver's stats record used: workers report deltas, the caller
     folds them in at the join barrier, deterministically in task
     order. Counters are always on; they are plain int-ref bumps.

   - **spans and events**, gated behind a recording sink
     ([recording]). When the sink is off, [with_span] costs one atomic
     load and [event] costs nothing observable — the disabled path is
     near-free and allocation-free. When on, spans form a tree per
     domain; [capture]/[graft] move a worker's finished forest under
     the caller's current span so the parallel tree equals the
     sequential one.

   Determinism: span trees must be independent of [--jobs] scheduling
   and stable across runs, like verdict fingerprints. Anything whose
   *structure* depends on cache population or wall clock — summarize
   spans (memoized per domain), per-solve detail, cache-hit tallies —
   is marked [det:false] and excluded (with its subtree) from
   [tree_fingerprint]; timings are always excluded. The Chrome export
   still contains everything. *)

val now_s : unit -> float

module Metrics : sig
  type counter
  type histogram

  (* Registration is idempotent per name (the existing handle is
     returned); it is cheap but not free, so register at module
     initialization, not per call. *)
  val counter : string -> counter
  val histogram : string -> histogram

  val incr : counter -> unit
  val add : counter -> int -> unit
  val value : counter -> int (* current domain's cell *)
  val observe : histogram -> float -> unit

  (* Histograms bucket by powers of two: bucket [i] holds observations
     in (2^(i-offset-1), 2^(i-offset)]; [bucket_upper i] is that upper
     bound. *)
  val bucket_count : int
  val bucket_upper : int -> float

  type hist = { h_count : int; h_sum : float; h_buckets : int array }

  type snapshot = {
    counters : (string * int) list; (* sorted by name *)
    hists : (string * hist) list; (* sorted by name *)
  }

  val empty : snapshot

  (* The calling domain's cumulative values for every registered
     metric, sorted by name. *)
  val snapshot : unit -> snapshot

  (* [sum]/[diff] are pointwise and inverse: [diff (sum a b) b = a].
     Names missing on one side are treated as zero. *)
  val sum : snapshot -> snapshot -> snapshot
  val diff : snapshot -> snapshot -> snapshot

  (* Fold a worker's delta into the calling domain's cells (the domain
     pool calls this at the join barrier, in task order). *)
  val absorb : snapshot -> unit

  val get : snapshot -> string -> int
  val get_hist : snapshot -> string -> hist option

  (* Upper-bound quantile ([q] in 0..1) over the power-of-two buckets:
     conservative by at most one bucket, so a latency gate never
     under-reports a percentile. 0 for an empty histogram. *)
  val hist_quantile : hist -> float -> float

  (* The bucket bracketing [hist_quantile]'s answer: the quantile lies
     in (lo, hi] where [hi] is exactly [hist_quantile]'s report and
     [lo] the next bucket edge down (0 for the lowest bucket) — the
     power-of-two bucketing's intrinsic error bound, at most a factor
     of two. (0, 0) for an empty histogram. *)
  val hist_quantile_bounds : hist -> float -> float * float

  (* Zero every registered cell of the calling domain (bench/test
     isolation). *)
  val reset_current_domain : unit -> unit
end

type span = {
  sp_name : string;
  sp_det : bool; (* false: structure depends on caches/scheduling *)
  sp_start : float;
  mutable sp_dur : float;
  mutable sp_attrs : (string * string * bool) list; (* key, value, det *)
  mutable sp_events : event list;
  mutable sp_children : span list;
}

and event = {
  ev_name : string;
  ev_at : float;
  ev_det : bool;
  ev_attrs : (string * string) list;
}

type forest = span list

val enabled : unit -> bool

(* Run [f] under a span. Disabled sink: exactly [f ()]. The span is
   closed (duration recorded, attached to its parent or the domain's
   roots) even when [f] raises; the exception is recorded as an [exn]
   attribute and re-raised. *)
val with_span :
  ?det:bool -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(* Attach an attribute to the innermost open span, if any. *)
val add_attr : ?det:bool -> string -> string -> unit

(* Attach an instant event to the innermost open span. Events with no
   open span are dropped. *)
val event : ?det:bool -> ?attrs:(string * string) list -> string -> unit

(* Run [f] collecting the spans it roots (used per task on worker
   domains); the surrounding stack is untouched. *)
val capture : (unit -> 'a) -> 'a * forest

(* Attach an already-finished forest under the current span (or as
   roots). The domain pool grafts captured worker forests in task
   order, which is what makes the parallel tree deterministic. *)
val graft : forest -> unit

(* Enable the sink, run [f], return its result and the forest rooted
   on the calling domain. The sink is disabled again on exit, also on
   exceptions. *)
val recording : (unit -> 'a) -> 'a * forest

(* Digest of the deterministic skeleton: span names, [det] attributes
   and events, nesting and order — excluding every timing and every
   [det:false] span (with its whole subtree) or attribute/event. Two
   runs that agree here agree on the scheduling-independent shape. *)
val tree_fingerprint : forest -> string

val span_count : forest -> int

(* ------------------------------------------------------------------ *)
(* Exporters                                                          *)
(* ------------------------------------------------------------------ *)

(* Chrome trace_event JSON (object form: {"traceEvents": [...]}),
   loadable in chrome://tracing and Perfetto. Spans are "X" complete
   events with microsecond timestamps relative to the earliest span;
   events are "i" instants. Each record also carries "sid"/"parent"
   ids (assigned in DFS order) so [Report] can rebuild the exact tree;
   Chrome ignores the extra keys. [metrics] lands under a top-level
   "metrics" key. *)
val chrome_json : ?metrics:Metrics.snapshot -> forest -> string
val write_chrome : ?metrics:Metrics.snapshot -> path:string -> forest -> unit

(* Minimal JSON reader (for [Report] and the CI well-formedness gate);
   hand-rolled because the repo deliberately has no JSON dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  val member : string -> t -> t option
end

module Report : sig
  type rspan = {
    r_name : string;
    r_dur : float; (* seconds *)
    r_attrs : (string * string) list;
    r_events : (string * (string * string) list) list;
    r_children : rspan list;
  }

  type t = {
    spans : rspan list;
    counters : (string * int) list;
    hists : (string * Metrics.hist) list;
  }

  val of_string : string -> (t, string) result
  val load : string -> (t, string) result

  (* Every span named [name], anywhere in the tree. *)
  val find_spans : t -> name:string -> rspan list

  (* Human tree view: per-phase wall/count table, the span tree down
     to [depth], the [top] slowest spans, counters and histogram
     summaries. *)
  val render : ?top:int -> ?depth:int -> t -> string

  (* Machine-readable twin of [render]: {"phases":[{span,count,
     total_ms,mean_ms}],"counters":{..},"histograms":{..}} with
     histogram quantiles as [lo, hi] power-of-two-bucket bounds.
     `dnsv report --json` and `dnsv top --once --json` share this
     consumer shape. *)
  val to_json : t -> string
end
