(* Resource budgets and three-valued verification outcomes.

   One [Budget.t] — wall-clock deadline, solver-call budget, path cap,
   execution fuel — is threaded through every checking entry point
   (Smt.Solver, Symex.Exec, Refine.Check, Refine.Layers,
   Dnsv.Pipeline), so each terminates within its budget and reports
   [Inconclusive] with a machine-readable [reason] instead of raising
   or looping. *)

type reason =
  | Deadline_exceeded of { limit_s : float }
  | Solver_steps_exhausted of { limit : int }
  | Path_cap_exceeded of { limit : int }
  | Fuel_exhausted of { limit : int }
  | Solver_unknowns of { count : int } (* a check leaned on Unknown *)
  | Summary_failed of string (* summarization raised or failed validation *)
  | Injected_fault of string (* a Faultinject hook fired *)
  | Internal_error of string (* an unexpected exception, captured *)
  | Cert_invalid of string (* a verdict certificate failed re-validation *)

(* Short stable machine-readable tag, e.g. "deadline-exceeded". *)
val reason_tag : reason -> string
val reason_to_string : reason -> string
val pp_reason : Format.formatter -> reason -> unit

(* Whether retrying with an escalated budget could plausibly succeed. *)
val retryable : reason -> bool

(* Byte-exact wire roundtrip for journaling: [reason_of_wire] inverts
   [reason_to_wire] (floats travel as hex literals). *)
val reason_to_wire : reason -> string
val reason_of_wire : string -> reason option

(* The three-valued verdict replacing boolean clean/dirty. *)
type 'a outcome = Proved | Refuted of 'a | Inconclusive of reason

exception Exhausted of reason

type t = {
  deadline : float option; (* absolute, seconds since the epoch *)
  deadline_s : float option; (* the original relative allowance *)
  max_solver_steps : int option;
  max_paths : int option;
  max_fuel : int option;
  mutable solver_steps : int;
  mutable paths : int;
  mutable fuel : int;
  mutable retries : int;
}

(* Current time as the budget sees it (includes injected clock skew). *)
val now : unit -> float

val create :
  ?deadline_s:float -> ?solver_steps:int -> ?max_paths:int -> ?fuel:int ->
  unit -> t

val unlimited : unit -> t
val is_unlimited : t -> bool

(* Each tick charges one unit and raises [Exhausted] past the limit.
   [tick_solver] also checks the deadline (solver calls are the natural
   cadence); [tick_fuel] checks it every 4096 steps. *)
val check_deadline : t -> unit
val tick_solver : t -> unit
val tick_path : t -> unit
val tick_fuel : t -> unit

(* An independent copy: same limits and absolute deadline, counters
   that advance separately. Used for per-task isolation in the parallel
   pipeline. *)
val clone : t -> t

(* A geometrically larger budget with fresh counters ([factor] default
   2); the deadline restarts from now with a scaled allowance. *)
val escalate : ?factor:int -> t -> t

type consumption = {
  solver_steps_used : int;
  paths_used : int;
  fuel_used : int;
  retries_used : int;
}

val consumption : t -> consumption

(* Classify an escaped exception ([Exhausted], [Faultinject.Injected],
   Stack_overflow, …) as a reason. *)
val reason_of_exn : exn -> reason

(* Run [f] under [b]; exhaustion and injected faults become [Error]. *)
val protect : t -> (unit -> 'a) -> ('a, reason) result
