(* Resource budgets and three-valued verification outcomes.

   The paper's portability claim (§7: re-verifying a new engine version
   in under a person-week) presumes the verifier itself never hangs or
   silently under-reports. This module is the discipline that makes that
   true: every checking entry point threads one [Budget.t] — a
   wall-clock deadline, a solver-call budget, a symbolic-execution path
   cap, and interpreter/executor fuel — and terminates within it,
   reporting [Inconclusive] with a machine-readable [reason] instead of
   raising or looping. [Proved]/[Refuted]/[Inconclusive] replaces the
   boolean clean/dirty verdict wherever solver incompleteness or budget
   exhaustion could otherwise let an unfinished check masquerade as a
   proof. *)

(* Why a verification attempt stopped short of a verdict. Each carries
   enough structure for machine consumption (tests, exit codes, bench
   JSON) as well as a human rendering. *)
type reason =
  | Deadline_exceeded of { limit_s : float }
  | Solver_steps_exhausted of { limit : int }
  | Path_cap_exceeded of { limit : int }
  | Fuel_exhausted of { limit : int }
  | Solver_unknowns of { count : int } (* a check leaned on Unknown *)
  | Summary_failed of string (* summarization raised or failed validation *)
  | Injected_fault of string (* a Faultinject hook fired *)
  | Internal_error of string (* an unexpected exception, captured *)
  | Cert_invalid of string (* a verdict certificate failed re-validation *)

(* Short machine-readable tag, stable across renderings. *)
let reason_tag = function
  | Deadline_exceeded _ -> "deadline-exceeded"
  | Solver_steps_exhausted _ -> "solver-steps-exhausted"
  | Path_cap_exceeded _ -> "path-cap-exceeded"
  | Fuel_exhausted _ -> "fuel-exhausted"
  | Solver_unknowns _ -> "solver-unknowns"
  | Summary_failed _ -> "summary-failed"
  | Injected_fault _ -> "injected-fault"
  | Internal_error _ -> "internal-error"
  | Cert_invalid _ -> "cert-invalid"

let reason_to_string = function
  | Deadline_exceeded { limit_s } ->
      Printf.sprintf "wall-clock deadline of %.3fs exceeded" limit_s
  | Solver_steps_exhausted { limit } ->
      Printf.sprintf "solver budget of %d calls exhausted" limit
  | Path_cap_exceeded { limit } ->
      Printf.sprintf "symbolic-execution path cap of %d exceeded" limit
  | Fuel_exhausted { limit } ->
      Printf.sprintf "execution fuel of %d steps exhausted" limit
  | Solver_unknowns { count } ->
      Printf.sprintf "%d solver Unknown(s) left the check incomplete" count
  | Summary_failed m -> "summary failed: " ^ m
  | Injected_fault m -> "injected fault: " ^ m
  | Internal_error m -> "internal error: " ^ m
  | Cert_invalid m -> "certificate invalid: " ^ m

let pp_reason fmt r = Format.pp_print_string fmt (reason_to_string r)

(* Budget exhaustion is retryable with a larger budget; unknowns may
   disappear under escalation too (different search order); injected
   faults and internal errors are not resource problems. A failed
   certificate means a memo layer or the solver handed out an answer it
   cannot justify — retrying against the same poisoned state would only
   launder it, so it is terminal too. *)
let retryable = function
  | Deadline_exceeded _ | Solver_steps_exhausted _ | Path_cap_exceeded _
  | Fuel_exhausted _ | Solver_unknowns _ | Summary_failed _ ->
      true
  | Injected_fault _ | Internal_error _ | Cert_invalid _ -> false

(* Exact wire roundtrip for journaling: [reason_to_wire] is injective
   and [reason_of_wire] inverts it byte-for-byte (floats travel as hex
   literals), so a reason replayed from a journal renders identically
   to the reason of an uninterrupted run. *)
let reason_to_wire r =
  match r with
  | Deadline_exceeded { limit_s } -> Printf.sprintf "deadline|%h" limit_s
  | Solver_steps_exhausted { limit } -> Printf.sprintf "solver-steps|%d" limit
  | Path_cap_exceeded { limit } -> Printf.sprintf "path-cap|%d" limit
  | Fuel_exhausted { limit } -> Printf.sprintf "fuel|%d" limit
  | Solver_unknowns { count } -> Printf.sprintf "unknowns|%d" count
  | Summary_failed m -> "summary|" ^ m
  | Injected_fault m -> "fault|" ^ m
  | Internal_error m -> "internal|" ^ m
  | Cert_invalid m -> "cert|" ^ m

let reason_of_wire s =
  match String.index_opt s '|' with
  | None -> None
  | Some i -> (
      let tag = String.sub s 0 i in
      let payload = String.sub s (i + 1) (String.length s - i - 1) in
      let int_arg f = int_of_string_opt payload |> Option.map f in
      match tag with
      | "deadline" ->
          float_of_string_opt payload
          |> Option.map (fun limit_s -> Deadline_exceeded { limit_s })
      | "solver-steps" ->
          int_arg (fun limit -> Solver_steps_exhausted { limit })
      | "path-cap" -> int_arg (fun limit -> Path_cap_exceeded { limit })
      | "fuel" -> int_arg (fun limit -> Fuel_exhausted { limit })
      | "unknowns" -> int_arg (fun count -> Solver_unknowns { count })
      | "summary" -> Some (Summary_failed payload)
      | "fault" -> Some (Injected_fault payload)
      | "internal" -> Some (Internal_error payload)
      | "cert" -> Some (Cert_invalid payload)
      | _ -> None)

(* The three-valued verdict: a check either discharges its obligation,
   refutes it with a counterexample, or stops with a reason. *)
type 'a outcome = Proved | Refuted of 'a | Inconclusive of reason

exception Exhausted of reason

(* Limits are optional (None = unlimited); consumption counters are
   mutable and shared by everyone holding the same [t], so one budget
   threaded through a whole pipeline run bounds the run globally. *)
type t = {
  deadline : float option; (* absolute, seconds since the epoch *)
  deadline_s : float option; (* the original relative allowance *)
  max_solver_steps : int option;
  max_paths : int option;
  max_fuel : int option;
  mutable solver_steps : int;
  mutable paths : int;
  mutable fuel : int;
  mutable retries : int; (* escalations performed under this lineage *)
}

(* Injected clock skew lets tests simulate a deadline overrun without
   sleeping. *)
let now () = Unix.gettimeofday () +. Faultinject.clock_skew ()

let create ?deadline_s ?solver_steps ?max_paths ?fuel () : t =
  {
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s;
    deadline_s;
    max_solver_steps = solver_steps;
    max_paths;
    max_fuel = fuel;
    solver_steps = 0;
    paths = 0;
    fuel = 0;
    retries = 0;
  }

let unlimited () = create ()

let is_unlimited (b : t) =
  b.deadline = None && b.max_solver_steps = None && b.max_paths = None
  && b.max_fuel = None

(* Observability: consumption is mirrored into the metrics registry
   (per-domain totals across every budget ticked on that domain — the
   per-object counters below keep enforcing the limits), and each
   exhaustion leaves a trace event naming its reason, so an
   Inconclusive verdict's trace contains its root cause. *)
let c_solver_ticks = Trace.Metrics.counter "budget.solver_steps"
let c_path_ticks = Trace.Metrics.counter "budget.paths"
let c_fuel_ticks = Trace.Metrics.counter "budget.fuel"
let c_exhausted = Trace.Metrics.counter "budget.exhausted"

let exhaust (r : reason) : 'a =
  Trace.Metrics.incr c_exhausted;
  Trace.event "budget.exhausted" ~attrs:[ ("reason", reason_tag r) ];
  raise (Exhausted r)

let check_deadline (b : t) =
  match b.deadline with
  | Some d when now () > d ->
      exhaust
        (Deadline_exceeded { limit_s = Option.value ~default:0.0 b.deadline_s })
  | _ -> ()

let tick_solver (b : t) =
  b.solver_steps <- b.solver_steps + 1;
  Trace.Metrics.incr c_solver_ticks;
  (match b.max_solver_steps with
  | Some limit when b.solver_steps > limit ->
      exhaust (Solver_steps_exhausted { limit })
  | _ -> ());
  (* Solver calls dominate verification time, so they are the natural
     cadence for the (syscall-priced) deadline check. *)
  check_deadline b

let tick_path (b : t) =
  b.paths <- b.paths + 1;
  Trace.Metrics.incr c_path_ticks;
  match b.max_paths with
  | Some limit when b.paths > limit ->
      exhaust (Path_cap_exceeded { limit })
  | _ -> ()

(* Fuel ticks fire once per instruction; amortize the deadline syscall. *)
let deadline_stride = 4096

let tick_fuel (b : t) =
  b.fuel <- b.fuel + 1;
  Trace.Metrics.incr c_fuel_ticks;
  (match b.max_fuel with
  | Some limit when b.fuel > limit -> exhaust (Fuel_exhausted { limit })
  | _ -> ());
  if b.fuel land (deadline_stride - 1) = 0 then check_deadline b

(* An independent copy: same limits and the same absolute deadline, but
   counters that advance separately from the parent's. Parallel pipeline
   workers each charge a clone, so one worker's consumption cannot
   exhaust a sibling's allowance mid-flight (per-task isolation), while
   the shared absolute deadline still bounds the whole fan-out. *)
let clone (b : t) : t =
  {
    deadline = b.deadline;
    deadline_s = b.deadline_s;
    max_solver_steps = b.max_solver_steps;
    max_paths = b.max_paths;
    max_fuel = b.max_fuel;
    solver_steps = b.solver_steps;
    paths = b.paths;
    fuel = b.fuel;
    retries = b.retries;
  }

(* A geometrically larger budget with fresh counters: limits scale by
   [factor], the deadline restarts from now with a scaled allowance.
   This is the escalation step of retry-with-escalation — CEGAR-style
   "Unknown + escalate" instead of "crash or lie". *)
let escalate ?(factor = 2) (b : t) : t =
  let scale_i = Option.map (fun n -> n * factor) in
  let deadline_s = Option.map (fun s -> s *. float_of_int factor) b.deadline_s in
  {
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s;
    deadline_s;
    max_solver_steps = scale_i b.max_solver_steps;
    max_paths = scale_i b.max_paths;
    max_fuel = scale_i b.max_fuel;
    solver_steps = 0;
    paths = 0;
    fuel = 0;
    retries = b.retries + 1;
  }

(* Consumption snapshot for reporting (bench JSON, verdict stats). *)
type consumption = {
  solver_steps_used : int;
  paths_used : int;
  fuel_used : int;
  retries_used : int;
}

let consumption (b : t) : consumption =
  {
    solver_steps_used = b.solver_steps;
    paths_used = b.paths;
    fuel_used = b.fuel;
    retries_used = b.retries;
  }

(* Map an escaped exception to a reason. Layer-specific exceptions
   (e.g. Minir.Interp.Out_of_fuel) are classified by their catchers,
   which see the richer context; this is the generic fallback. *)
let reason_of_exn = function
  | Exhausted r -> r
  | Faultinject.Injected m -> Injected_fault m
  | Stack_overflow -> Internal_error "stack overflow"
  | Out_of_memory -> Internal_error "out of memory"
  | e -> Internal_error (Printexc.to_string e)

(* Run [f] under [b], converting exhaustion and escaped exceptions into
   an [Error reason]. Never raises for the known failure modes. *)
let protect (b : t) (f : unit -> 'a) : ('a, reason) result =
  match
    check_deadline b;
    f ()
  with
  | v -> Ok v
  | exception (Exhausted _ as e) -> Error (reason_of_exn e)
  | exception (Faultinject.Injected _ as e) -> Error (reason_of_exn e)
  | exception Stack_overflow -> Error (Internal_error "stack overflow")
