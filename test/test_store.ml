(* The persistent verification store: wire codecs, crash-safety of the
   CRC-framed file (torn tails, single-byte corruption, lock
   contention), fingerprint stability (alpha-equivalence collides,
   one-op edits separate, cone invalidation follows the call graph),
   and the end-to-end guarantee — verdict fingerprints are
   byte-identical with a cold store, a warm store, and no store. *)

module Term = Smt.Term
module Rr = Dns.Rr
module Versions = Engine.Versions

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_opt_string = Alcotest.(check (option string))
let qcheck = List.map QCheck_alcotest.to_alcotest

let fi f =
  Faultinject.reset ();
  Fun.protect ~finally:Faultinject.reset f

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_dir f =
  let dir = Filename.temp_file "dnsv-store-test" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let with_store dir f =
  let st = Store.open_ dir in
  Fun.protect ~finally:(fun () -> Store.close st) (fun () -> f st)

let data_path dir = Filename.concat dir "store.data"

(* ------------------------------------------------------------------ *)
(* Codec                                                              *)
(* ------------------------------------------------------------------ *)

let test_codec_term_roundtrip () =
  let x = Term.int_var "x" and y = Term.int_var "y" in
  let p = Term.bool_var "p" in
  let terms =
    [
      Term.true_;
      Term.false_;
      Term.int 42;
      Term.int (-7);
      Term.and_ [ p; Term.lt x y ];
      Term.or_ [ Term.not_ p; Term.neq x y ];
      Term.ite p (Term.add [ x; Term.mul_const 3 y ]) (Term.sub x (Term.neg y));
      Term.implies p (Term.eq x (Term.int 0));
      Term.iff p (Term.le y x);
    ]
  in
  List.iter
    (fun t ->
      let t' = Store.Codec.term_of_string (Store.Codec.term_to_string t) in
      (* Hash-consing: decoding must land on the same physical node. *)
      check_bool "round-trip is physically identical" true (t == t'))
    terms

let test_codec_rejects_garbage () =
  let bad f s =
    match f s with
    | exception Store.Codec.Bad _ -> ()
    | _ -> Alcotest.failf "garbage %S decoded" s
  in
  bad Store.Codec.term_of_string "";
  bad Store.Codec.term_of_string "garbage";
  bad Store.Codec.term_of_string "9999999:x";
  bad Store.Codec.proof_of_string "";
  bad Store.Codec.proof_of_string "!!";
  bad Store.Codec.summary_of_string "";
  bad Store.Codec.summary_of_string "zzz"

(* ------------------------------------------------------------------ *)
(* Store file: persistence, later-wins, gc, torn tails, locks          *)
(* ------------------------------------------------------------------ *)

let test_store_roundtrip_and_reopen () =
  fi @@ fun () ->
  with_dir @@ fun dir ->
  with_store dir (fun st ->
      check_bool "fresh store is writable" true (Store.writable st);
      Store.add st "S|a" "alpha";
      Store.add st "M|b" "beta";
      check_opt_string "hit" (Some "alpha") (Store.find st "S|a");
      check_opt_string "miss" None (Store.find st "S|zzz"));
  with_store dir (fun st ->
      check_int "entries survive reopen" 2 (Store.entries st);
      check_opt_string "persisted" (Some "beta") (Store.find st "M|b");
      (* Later frames win, in memory and across reopen. *)
      Store.add st "S|a" "alpha-2");
  with_store dir (fun st ->
      check_opt_string "later frame wins" (Some "alpha-2") (Store.find st "S|a");
      check_int "index deduplicates" 2 (Store.entries st))

let test_store_evict_and_gc () =
  fi @@ fun () ->
  with_dir @@ fun dir ->
  with_store dir (fun st ->
      Store.add st "S|keep" "v1";
      Store.add st "S|drop" "v2";
      Store.evict st "S|drop";
      check_opt_string "evicted" None (Store.find st "S|drop");
      (* gc compacts to the live set, making the eviction durable. *)
      (match Store.gc st with
      | Ok n -> check_int "gc live count" 1 n
      | Error e -> Alcotest.failf "gc failed: %s" e);
      check_opt_string "survivor intact after gc" (Some "v1")
        (Store.find st "S|keep"));
  with_store dir (fun st ->
      check_int "compacted store" 1 (Store.entries st);
      check_opt_string "eviction durable" None (Store.find st "S|drop"))

let test_store_truncates_torn_tail () =
  fi @@ fun () ->
  with_dir @@ fun dir ->
  (* Opaque kinds ('T' is nobody's prefix): fsck frame-checks them but
     has no deep decoder to apply, which is what this test wants. *)
  with_store dir (fun st ->
      Store.add st "T|a" "alpha";
      Store.add st "T|b" "beta");
  (* A kill mid-append leaves a partial frame at the tail. *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 (data_path dir)
  in
  output_string oc "DS01\xff\xff partial frame junk";
  close_out oc;
  let s = Store.stat dir in
  check_bool "stat sees the torn tail" true (s.Store.st_torn_bytes > 0);
  check_int "stat counts only intact entries" 2 s.Store.st_total;
  with_store dir (fun st ->
      check_bool "writer truncated the tail" true (Store.dropped_bytes st > 0);
      check_int "entries intact" 2 (Store.entries st);
      check_opt_string "payloads intact" (Some "alpha") (Store.find st "T|a"));
  (* A torn tail is the expected crash signature: fsck repairs and
     reports clean. *)
  let fk = Store.fsck dir in
  check_bool "fsck clean after truncation" true (Store.fsck_clean fk)

let test_store_single_writer_lock () =
  fi @@ fun () ->
  with_dir @@ fun dir ->
  let st1 = Store.open_ dir in
  Fun.protect
    ~finally:(fun () -> Store.close st1)
    (fun () ->
      Store.add st1 "S|a" "alpha";
      (* Second opener in the same directory degrades to read-only. *)
      let st2 = Store.open_ dir in
      Fun.protect
        ~finally:(fun () -> Store.close st2)
        (fun () ->
          check_bool "second opener is read-only" false (Store.writable st2);
          Store.add st2 "S|b" "beta";
          check_opt_string "read-only add is a no-op" None
            (Store.find st2 "S|b")));
  (* Once the writer closes, the lock is free again. *)
  with_store dir (fun st ->
      check_bool "lock released on close" true (Store.writable st))

let test_store_fault_sites () =
  fi @@ fun () ->
  with_dir @@ fun dir ->
  with_store dir (fun st ->
      Store.add st "S|a" "alpha";
      Faultinject.arm ~after:1 Faultinject.Store_stale;
      check_opt_string "Store_stale forces a miss" None (Store.find st "S|a");
      check_opt_string "one-shot: next lookup hits" (Some "alpha")
        (Store.find st "S|a");
      Faultinject.arm ~after:1 Faultinject.Store_corrupt;
      (match Store.find st "S|a" with
      | Some v -> check_bool "Store_corrupt flips bytes" true (v <> "alpha")
      | None -> Alcotest.fail "corrupt hit should still serve bytes");
      check_opt_string "index itself is untouched" (Some "alpha")
        (Store.find st "S|a"));
  Faultinject.arm ~after:1 Faultinject.Store_lock_held;
  let st = Store.open_ dir in
  Fun.protect
    ~finally:(fun () -> Store.close st)
    (fun () ->
      check_bool "Store_lock_held degrades open to read-only" false
        (Store.writable st))

(* ------------------------------------------------------------------ *)
(* Property: a single flipped byte is always caught                    *)
(* ------------------------------------------------------------------ *)

(* Deterministic fixture store: two dozen entries with varied sizes. *)
let flip_fixture =
  List.init 24 (fun i ->
      ( Printf.sprintf "S|key-%02d" i,
        String.init ((7 * i) + 3) (fun j -> Char.chr (33 + ((i + j) mod 90)))
      ))

let flip_never_lies (pos, bit) =
  with_dir @@ fun dir ->
  with_store dir (fun st ->
      List.iter (fun (k, v) -> Store.add st k v) flip_fixture);
  let path = data_path dir in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.of_string (really_input_string ic n) in
  close_in ic;
  let pos = pos mod n in
  let mask = 1 lsl (bit mod 8) in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  (* However the flip lands — magic, length, CRC, key or value bytes,
     even the header — the store may forget entries but must never
     serve altered bytes. *)
  let st = Store.open_ ~read_only:true dir in
  Fun.protect
    ~finally:(fun () -> Store.close st)
    (fun () ->
      List.for_all
        (fun (k, v) ->
          match Store.find st k with
          | None -> true (* degraded: entry dropped, recomputed upstream *)
          | Some v' -> String.equal v v')
        flip_fixture)

let prop_flip_never_lies =
  QCheck.Test.make ~name:"store: any single-bit flip degrades, never lies"
    ~count:80
    QCheck.(pair (int_range 0 100_000) (int_range 0 7))
    flip_never_lies

(* ------------------------------------------------------------------ *)
(* Fingerprints: stability and cone invalidation                       *)
(* ------------------------------------------------------------------ *)

let compile src = Golite.Compile.compile (Golite.Parse.program_of_string_exn src)

let prog_base =
  compile
    {|
func leaf(x int) int {
  var k int = 0
  while k < x {
    k = k + 1
  }
  return k
}

func mid(n int) int {
  return leaf(n) + 1
}

func top(n int) int {
  return mid(n) + leaf(n)
}
|}

(* The same three functions with every register renamed. *)
let prog_alpha =
  compile
    {|
func leaf(value int) int {
  var count int = 0
  while count < value {
    count = count + 1
  }
  return count
}

func mid(m int) int {
  return leaf(m) + 1
}

func top(q int) int {
  return mid(q) + leaf(q)
}
|}

(* One reachable instruction changed in [leaf] only. *)
let prog_leaf_edit =
  compile
    {|
func leaf(x int) int {
  var k int = 0
  while k < x {
    k = k + 2
  }
  return k
}

func mid(n int) int {
  return leaf(n) + 1
}

func top(n int) int {
  return mid(n) + leaf(n)
}
|}

(* One instruction changed in [top] only. *)
let prog_top_edit =
  compile
    {|
func leaf(x int) int {
  var k int = 0
  while k < x {
    k = k + 1
  }
  return k
}

func mid(n int) int {
  return leaf(n) + 1
}

func top(n int) int {
  return mid(n) + leaf(n) + 1
}
|}

module Fp = Store.Fingerprint

(* ------------------------------------------------------------------ *)
(* Analysis ("A|") entries: round-trip, cone sharing/invalidation,    *)
(* eviction of undecodable entries                                    *)
(* ------------------------------------------------------------------ *)

let analyze_with st prog =
  Analysis.clear_memo ();
  Store.with_analysis st
    ~cone_of:(fun fn -> Fp.cone_fp prog fn)
    (fun () -> Analysis.summarize prog)

let rsummaries_fingerprint s prog =
  String.concat "|"
    (List.map
       (fun (f : Minir.Instr.func) ->
         match Analysis.rsummary_of s f.Minir.Instr.fn_name with
         | Some rs -> Digest.to_hex (Digest.string (Store.Codec.rsummary_to_string rs))
         | None -> "-")
       prog.Minir.Instr.funcs)

let test_analysis_roundtrip_and_cones () =
  with_dir @@ fun dir ->
  let nfuncs = List.length prog_base.Minir.Instr.funcs in
  let s_cold = with_store dir (fun st -> analyze_with st prog_base) in
  check_int "cold: all misses" nfuncs (snd (Analysis.store_traffic s_cold));
  let s_warm = with_store dir (fun st -> analyze_with st prog_base) in
  check_int "warm: all hits" nfuncs (fst (Analysis.store_traffic s_warm));
  (* Served summaries are byte-identical to the computed ones. *)
  check_string "summaries round-trip"
    (rsummaries_fingerprint s_cold prog_base)
    (rsummaries_fingerprint s_warm prog_base);
  (* Alpha-equivalent functions share their entries. *)
  let s_alpha = with_store dir (fun st -> analyze_with st prog_alpha) in
  check_int "alpha twin: all hits" nfuncs (fst (Analysis.store_traffic s_alpha));
  (* An edit in [top] invalidates exactly its own cone... *)
  let s_top = with_store dir (fun st -> analyze_with st prog_top_edit) in
  check_int "top edit: one miss" 1 (snd (Analysis.store_traffic s_top));
  check_int "top edit: leaf and mid served" 2 (fst (Analysis.store_traffic s_top));
  (* ...while an edit in [leaf] invalidates every dependent cone. *)
  let s_leaf = with_store dir (fun st -> analyze_with st prog_leaf_edit) in
  check_int "leaf edit: all miss" nfuncs (snd (Analysis.store_traffic s_leaf));
  (* The A| entries survive a deep fsck. *)
  let stat = Store.stat dir in
  check_bool "analysis entries on disk" true
    (List.mem_assoc "A" stat.Store.st_by_prefix);
  check_bool "fsck clean over A| entries" true
    (Store.fsck_clean (Store.fsck dir))

(* With no analysis environment the filtered field-invariant list is
   empty, so the environment fingerprint is the digest of "". *)
let empty_envfp = Digest.to_hex (Digest.string "")

let test_analysis_corrupt_entry_evicted () =
  with_dir @@ fun dir ->
  ignore (with_store dir (fun st -> analyze_with st prog_base));
  let key =
    Store.analysis_key ~cone:(Fp.cone_fp prog_base "leaf") ~envfp:empty_envfp
  in
  with_store dir @@ fun st ->
  (match Store.find st key with
  | None -> Alcotest.fail "expected an A| entry for leaf"
  | Some payload ->
      (* Drop the final byte: the strict wire format cannot decode a
         truncated summary, so the entry must be evicted as a
         certificate failure and recomputed — never trusted. *)
      Store.add st key (String.sub payload 0 (String.length payload - 1)));
  let m0 = Trace.Metrics.snapshot () in
  let s = analyze_with st prog_base in
  let d = Trace.Metrics.diff (Trace.Metrics.snapshot ()) m0 in
  check_int "corrupt entry recomputed" 1 (snd (Analysis.store_traffic s));
  check_int "intact entries served" 2 (fst (Analysis.store_traffic s));
  check_bool "corrupt entry evicted as a certificate failure" true
    (Trace.Metrics.get d "store.cert_failures" > 0);
  match Analysis.rsummary_of s "leaf" with
  | Some rs -> check_string "recomputed summary is leaf's" "leaf" rs.Analysis.rs_fn
  | None -> Alcotest.fail "leaf has no summary after recompute"

(* Any single flipped bit in the store file may cost recomputation but
   must never change the analysis facts served back. *)
let analysis_flip_never_lies (pos, bit) =
  with_dir @@ fun dir ->
  ignore (with_store dir (fun st -> analyze_with st prog_base));
  Analysis.clear_memo ();
  let reference = rsummaries_fingerprint (Analysis.summarize prog_base) prog_base in
  let path = data_path dir in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.of_string (really_input_string ic n) in
  close_in ic;
  let pos = pos mod n in
  let mask = 1 lsl (bit mod 8) in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  let s = with_store dir (fun st -> analyze_with st prog_base) in
  String.equal reference (rsummaries_fingerprint s prog_base)

let prop_analysis_flip_never_lies =
  QCheck.Test.make
    ~name:"analysis entries: any single-bit flip degrades, never lies"
    ~count:40
    QCheck.(pair (int_range 0 100_000) (int_range 0 7))
    analysis_flip_never_lies

let test_fingerprint_alpha_equivalence () =
  List.iter
    (fun fn ->
      check_string
        (Printf.sprintf "alpha-equivalent %s collides" fn)
        (Fp.func_fp prog_base fn)
        (Fp.func_fp prog_alpha fn))
    [ "leaf"; "mid"; "top" ];
  check_string "alpha-equivalent programs collide" (Fp.program_fp prog_base)
    (Fp.program_fp prog_alpha)

let test_fingerprint_one_op_edit () =
  check_bool "edited function separates" true
    (Fp.func_fp prog_base "leaf" <> Fp.func_fp prog_leaf_edit "leaf");
  (* func_fp is local: callers are textually unchanged. *)
  check_string "caller local hash unchanged (mid)"
    (Fp.func_fp prog_base "mid")
    (Fp.func_fp prog_leaf_edit "mid");
  check_string "caller local hash unchanged (top)"
    (Fp.func_fp prog_base "top")
    (Fp.func_fp prog_leaf_edit "top")

let test_fingerprint_cone_invalidation () =
  (* Editing the leaf invalidates the whole chain above it... *)
  List.iter
    (fun fn ->
      check_bool
        (Printf.sprintf "leaf edit invalidates cone of %s" fn)
        true
        (Fp.cone_fp prog_base fn <> Fp.cone_fp prog_leaf_edit fn))
    [ "leaf"; "mid"; "top" ];
  (* ...while editing the top invalidates only the top. *)
  check_string "top edit leaves leaf cone intact"
    (Fp.cone_fp prog_base "leaf")
    (Fp.cone_fp prog_top_edit "leaf");
  check_string "top edit leaves mid cone intact"
    (Fp.cone_fp prog_base "mid")
    (Fp.cone_fp prog_top_edit "mid");
  check_bool "top edit invalidates top cone" true
    (Fp.cone_fp prog_base "top" <> Fp.cone_fp prog_top_edit "top");
  check_bool "callees are reported" true
    (List.mem "leaf"
       (Fp.callees
          (List.find
             (fun f -> f.Minir.Instr.fn_name = "mid")
             prog_base.Minir.Instr.funcs)))

let test_fingerprint_cross_version () =
  (* A real version bump: the buggy engine vs. its patched twin. Only
     the patched functions' local hashes may move, and the resolve
     cone must notice. *)
  let buggy = Versions.compiled Versions.v3_0 in
  let fixed = Versions.compiled (Versions.fixed Versions.v3_0) in
  let names =
    List.map (fun f -> f.Minir.Instr.fn_name) buggy.Minir.Instr.funcs
  in
  let changed =
    List.filter (fun fn -> Fp.func_fp buggy fn <> Fp.func_fp fixed fn) names
  in
  check_bool "some function changed" true (changed <> []);
  check_bool "not every function changed" true
    (List.length changed < List.length names);
  check_bool "resolve cone invalidated" true
    (Fp.cone_fp buggy "resolve" <> Fp.cone_fp fixed "resolve");
  check_bool "program fingerprint moved" true
    (Fp.program_fp buggy <> Fp.program_fp fixed)

(* ------------------------------------------------------------------ *)
(* Pipeline integration: warm equals cold equals storeless             *)
(* ------------------------------------------------------------------ *)

let cold_caches () =
  Smt.Solver.clear_caches ();
  Dnsv.Pipeline.clear_summary_memo ();
  Store.clear_domain_memos ()

let test_pipeline_store_identical_verdicts () =
  fi @@ fun () ->
  with_dir @@ fun dir ->
  let cfg = Versions.fixed Versions.v1_0 in
  let zone = Spec.Fixtures.figure11_zone in
  let verify store = Dnsv.Pipeline.verify ~qtypes:[ Rr.A ] ?store cfg zone in
  cold_caches ();
  let baseline = verify None in
  cold_caches ();
  let cold = with_store dir (fun st -> verify (Some st)) in
  check_string "cold store verdict matches storeless"
    (Dnsv.Pipeline.fingerprint baseline)
    (Dnsv.Pipeline.fingerprint cold);
  cold_caches ();
  let warm = with_store dir (fun st -> verify (Some st)) in
  check_string "warm store verdict matches storeless"
    (Dnsv.Pipeline.fingerprint baseline)
    (Dnsv.Pipeline.fingerprint warm);
  let s = Store.stat dir in
  check_bool "entries persisted" true (s.Store.st_total > 0);
  let fk =
    Store.fsck
      ~check:(fun ~key ~payload ->
        match Dnsv.Pipeline.store_entry_check ~key ~payload with
        | Some _ as r -> r
        | None -> Refine.Layers.store_entry_check ~key ~payload)
      dir
  in
  check_bool "deep fsck clean" true (Store.fsck_clean fk)

let () =
  Alcotest.run "store"
    [
      ( "codec",
        [
          Alcotest.test_case "term round-trip" `Quick test_codec_term_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
        ] );
      ( "file",
        [
          Alcotest.test_case "round-trip and reopen" `Quick
            test_store_roundtrip_and_reopen;
          Alcotest.test_case "evict and gc" `Quick test_store_evict_and_gc;
          Alcotest.test_case "torn tail truncated" `Quick
            test_store_truncates_torn_tail;
          Alcotest.test_case "single-writer lock" `Quick
            test_store_single_writer_lock;
          Alcotest.test_case "fault sites" `Quick test_store_fault_sites;
        ] );
      ("corruption", qcheck [ prop_flip_never_lies ]);
      ( "analysis",
        [
          Alcotest.test_case "round-trip, cone sharing and invalidation"
            `Quick test_analysis_roundtrip_and_cones;
          Alcotest.test_case "undecodable entry evicted and recomputed"
            `Quick test_analysis_corrupt_entry_evicted;
        ]
        @ qcheck [ prop_analysis_flip_never_lies ] );
      ( "fingerprint",
        [
          Alcotest.test_case "alpha equivalence" `Quick
            test_fingerprint_alpha_equivalence;
          Alcotest.test_case "one-op edit" `Quick test_fingerprint_one_op_edit;
          Alcotest.test_case "cone invalidation" `Quick
            test_fingerprint_cone_invalidation;
          Alcotest.test_case "cross-version" `Quick
            test_fingerprint_cross_version;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "warm equals cold equals storeless" `Quick
            test_pipeline_store_identical_verdicts;
        ] );
    ]
