(* Tests for the CDCL SAT core and the theory-aware presolve.

   The cornerstone properties check the CDCL engine against a
   brute-force reference evaluator on random CNFs (including the
   persistent add_clause-between-solves path), replay every learned
   clause's resolution-chain certificate, and exercise the
   [Faultinject.Conflict_corrupt] site: a corrupted learned clause may
   degrade an answer but can never flip one. On the theory side,
   presolve must be sound (a pruned query really is Unsat; derived
   bounds contain every model) and the DPLL(T) loop must answer the
   same with learning/presolve on and off. *)

open Smt

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Reference evaluator                                                *)
(* ------------------------------------------------------------------ *)

let assignment_satisfies value (clauses : Cnf.clause list) =
  List.for_all
    (List.exists (fun l -> if l > 0 then value l else not (value (-l))))
    clauses

let brute_sat nvars clauses =
  let n = 1 lsl nvars in
  let rec go i =
    i < n
    && (assignment_satisfies (fun v -> i land (1 lsl (v - 1)) <> 0) clauses
       || go (i + 1))
  in
  go 0

let cnf_gen =
  QCheck.Gen.(
    int_range 1 6 >>= fun nvars ->
    list_size (int_range 0 14)
      (list_size (int_range 1 4)
         (map2 (fun v s -> if s then v else -v) (int_range 1 nvars) bool))
    >>= fun clauses -> return (nvars, clauses))

let print_cnf (nvars, clauses) =
  Printf.sprintf "nvars=%d [%s]" nvars
    (String.concat "; "
       (List.map
          (fun c -> String.concat "," (List.map string_of_int c))
          clauses))

let arb_cnf = QCheck.make ~print:print_cnf cnf_gen

let with_fault f =
  Faultinject.reset ();
  Fun.protect ~finally:Faultinject.reset f

(* ------------------------------------------------------------------ *)
(* SAT core                                                           *)
(* ------------------------------------------------------------------ *)

let prop_cdcl_vs_reference =
  QCheck.Test.make ~name:"CDCL agrees with the reference evaluator"
    ~count:500 arb_cnf (fun (nvars, clauses) ->
      let t = Sat.create ~nvars clauses in
      (match Sat.solve t with
      | Sat.Sat a -> assignment_satisfies (fun v -> a.(v)) clauses
      | Sat.Unsat -> not (brute_sat nvars clauses))
      && Sat.validate t)

let prop_cdcl_incremental =
  QCheck.Test.make
    ~name:"persistent add_clause between solves stays equivalent" ~count:500
    arb_cnf (fun (nvars, clauses) ->
      let k = List.length clauses / 2 in
      let first = List.filteri (fun i _ -> i < k) clauses in
      let rest = List.filteri (fun i _ -> i >= k) clauses in
      let t = Sat.create ~nvars first in
      ignore (Sat.solve t);
      List.iter (Sat.add_clause t) rest;
      (match Sat.solve t with
      | Sat.Sat a -> assignment_satisfies (fun v -> a.(v)) clauses
      | Sat.Unsat -> not (brute_sat nvars clauses))
      && Sat.validate t)

(* A corrupted learned clause only ever strengthens the clause set, so
   Sat answers stay genuine models; a wrong Unsat must fail chain
   replay — that is the degrade path the solver takes. *)
let prop_corrupt_strengthens_only =
  QCheck.Test.make ~name:"corrupted learned clauses degrade, never flip"
    ~count:500 arb_cnf (fun (nvars, clauses) ->
      with_fault (fun () ->
          Faultinject.arm ~persistent:true ~after:1
            Faultinject.Conflict_corrupt;
          let t = Sat.create ~nvars clauses in
          match Sat.solve t with
          | Sat.Sat a -> assignment_satisfies (fun v -> a.(v)) clauses
          | Sat.Unsat ->
              (not (brute_sat nvars clauses)) || not (Sat.validate t)))

let test_php_unsat_certified () =
  (* Pigeonhole php(3,2): pigeon i sits in hole j via variable 2(i-1)+j;
     every pigeon is placed, no hole holds two. *)
  let v i j = (2 * (i - 1)) + j in
  let clauses =
    [ [ v 1 1; v 1 2 ]; [ v 2 1; v 2 2 ]; [ v 3 1; v 3 2 ] ]
    @ List.concat_map
        (fun j ->
          [
            [ -(v 1 j); -(v 2 j) ];
            [ -(v 1 j); -(v 3 j) ];
            [ -(v 2 j); -(v 3 j) ];
          ])
        [ 1; 2 ]
  in
  let t = Sat.create ~nvars:6 clauses in
  (match Sat.solve t with
  | Sat.Unsat -> ()
  | Sat.Sat _ -> Alcotest.fail "php(3,2) must be unsat");
  check_bool "refutation chains replay" true (Sat.validate t);
  check_bool "conflicts counted" true (Sat.conflicts t > 0);
  check_bool "propagations counted" true (Sat.propagations t > 0)

(* ------------------------------------------------------------------ *)
(* Theory-aware presolve                                              *)
(* ------------------------------------------------------------------ *)

let lin_gen =
  QCheck.Gen.(
    map3
      (fun a b c ->
        Linear.add
          (Linear.add (Linear.var ~coeff:a "x") (Linear.var ~coeff:b "y"))
          (Linear.const c))
      (int_range (-3) 3) (int_range (-3) 3) (int_range (-6) 6))

let atom_gen =
  QCheck.Gen.(
    lin_gen >>= fun l ->
    oneofl [ Linear.Le_zero l; Linear.Eq_zero l; Linear.Neq_zero l ])

let atom_print a = Format.asprintf "%a" Linear.pp_atom a

let arb_atom = QCheck.make ~print:atom_print atom_gen

let arb_atoms =
  QCheck.make
    ~print:(fun ats -> String.concat "; " (List.map atom_print ats))
    QCheck.Gen.(list_size (int_range 1 6) atom_gen)

let model_value m k =
  Option.value ~default:0 (Lia.String_map.find_opt k m)

let prop_presolve_sound =
  QCheck.Test.make
    ~name:"presolve: pruned queries are Unsat, bounds contain every model"
    ~count:500 arb_atoms (fun atoms ->
      match Lia.presolve atoms with
      | Lia.Punsat _ -> (
          match Lia.check atoms with Lia.Sat _ -> false | _ -> true)
      | Lia.Pfeasible bounds -> (
          match Lia.check atoms with
          | Lia.Sat m ->
              Lia.String_map.for_all
                (fun k (lo, hi) ->
                  let v = model_value m k in
                  (match lo with None -> true | Some l -> v >= l)
                  && match hi with None -> true | Some h -> v <= h)
                bounds
          | _ -> true))

let prop_entailed_sound =
  QCheck.Test.make ~name:"entailed atoms hold in every model" ~count:500
    (QCheck.pair arb_atoms arb_atom) (fun (atoms, a) ->
      match Lia.presolve atoms with
      | Lia.Punsat _ -> true
      | Lia.Pfeasible bounds -> (
          match (Lia.entailed bounds a, Lia.check atoms) with
          | Some v, Lia.Sat m ->
              Linear.eval_atom (model_value m) a = v
          | _ -> true))

let test_proof_atoms () =
  (* x >= 1 (atom 1) and x <= 0 (atom 2) clash; y <= 10 (atom 0) is
     satisfiable padding the conflict core must not cite. *)
  let ge1 = Linear.Le_zero (Linear.add (Linear.const 1) (Linear.var ~coeff:(-1) "x")) in
  let le0 = Linear.Le_zero (Linear.var "x") in
  let pad = Linear.Le_zero (Linear.add (Linear.var "y") (Linear.const (-10))) in
  match Lia.check_cert [ pad; ge1; le0 ] with
  | Lia.Cunsat (Some p) ->
      let core = Lia.proof_atoms p in
      check_bool "core non-empty" true (core <> []);
      check_bool "core within input range" true
        (List.for_all (fun i -> i >= 0 && i < 3) core);
      check_bool "core excludes the padding atom" true (not (List.mem 0 core))
  | _ -> Alcotest.fail "expected certified Unsat"

(* ------------------------------------------------------------------ *)
(* DPLL(T) loop                                                       *)
(* ------------------------------------------------------------------ *)

let x = Term.int_var "x"
let y = Term.int_var "y"
let z = Term.int_var "z"
let w = Term.int_var "w"
let u = Term.int_var "u"

let term_gen : Term.t QCheck.Gen.t =
  let open QCheck.Gen in
  let int_leaf =
    oneof [ map Term.int (int_range (-4) 4); oneofl [ x; y; z ] ]
  in
  let int_term =
    oneof
      [
        int_leaf;
        map2 (fun a b -> Term.add [ a; b ]) int_leaf int_leaf;
        map2 Term.sub int_leaf int_leaf;
        map (fun a -> Term.mul_const 2 a) int_leaf;
      ]
  in
  let cmp =
    oneof
      [
        map2 Term.eq int_term int_term;
        map2 Term.le int_term int_term;
        map2 Term.lt int_term int_term;
      ]
  in
  fix
    (fun self n ->
      if n = 0 then cmp
      else
        frequency
          [
            (3, cmp);
            ( 2,
              map2
                (fun a b -> Term.and_ [ a; b ])
                (self (n / 2)) (self (n / 2)) );
            ( 2,
              map2
                (fun a b -> Term.or_ [ a; b ])
                (self (n / 2)) (self (n / 2)) );
            (1, map Term.not_ (self (n - 1)));
            (1, map2 Term.implies (self (n / 2)) (self (n / 2)));
          ])
    3

let arb_term = QCheck.make ~print:Term.to_string term_gen

let brute_force_sat (t : Term.t) =
  let dom = [ -3; -2; -1; 0; 1; 2; 3 ] in
  List.exists
    (fun xv ->
      List.exists
        (fun yv ->
          List.exists
            (fun zv ->
              let env = function
                | "x" -> Some (Term.VInt xv)
                | "y" -> Some (Term.VInt yv)
                | "z" -> Some (Term.VInt zv)
                | _ -> None
              in
              Term.eval_bool env t)
            dom)
        dom)
    dom

let legacy f =
  Solver.set_presolve false;
  Solver.set_learning false;
  Fun.protect
    ~finally:(fun () ->
      Solver.set_presolve true;
      Solver.set_learning true)
    f

let status = function
  | Solver.Sat _ -> "sat"
  | Solver.Unsat -> "unsat"
  | Solver.Unknown -> "unknown"

let prop_legacy_equivalence =
  QCheck.Test.make
    ~name:"check_dpllt: CDCL verdicts match the legacy discipline" ~count:300
    arb_term (fun t ->
      let cdcl = Solver.check_dpllt t in
      let old = legacy (fun () -> Solver.check_dpllt t) in
      String.equal (status cdcl) (status old)
      && match cdcl with Solver.Sat m -> Model.satisfies m t | _ -> true)

let prop_corrupt_never_flips_solver =
  QCheck.Test.make
    ~name:"check_dpllt under conflict corruption degrades, never flips"
    ~count:200 arb_term (fun t ->
      with_fault (fun () ->
          Faultinject.arm ~persistent:true ~after:1
            Faultinject.Conflict_corrupt;
          match Solver.check_dpllt t with
          | Solver.Sat m -> Model.satisfies m t
          | Solver.Unsat -> not (brute_force_sat t)
          | Solver.Unknown -> true))

let test_presolve_prunes () =
  Solver.clear_caches ();
  let m0 = Trace.Metrics.snapshot () in
  let t =
    Term.and_
      [
        Term.le x (Term.int 2);
        Term.le (Term.int 5) x;
        Term.or_ [ Term.eq y (Term.int 0); Term.eq y (Term.int 1) ];
      ]
  in
  let r = Solver.check_dpllt t in
  let d = Trace.Metrics.diff (Trace.Metrics.snapshot ()) m0 in
  (match r with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "contradictory unit box must answer Unsat");
  check_int "pruned before the SAT core" 1
    (Trace.Metrics.get d "presolve.pruned")

let test_solver_steps_cap () =
  (* Five independently clashing disjuncts force at least five DPLL(T)
     refutation iterations, so a 3-step budget must trip mid-loop with
     the machine-readable reason. *)
  let clash v = Term.and_ [ Term.lt v (Term.int 0); Term.lt (Term.int 0) v ] in
  let t = Term.or_ [ clash x; clash y; clash z; clash w; clash u ] in
  let budget = Budget.create ~solver_steps:3 () in
  match Solver.with_budget budget (fun () -> Solver.check_dpllt t) with
  | exception
      Budget.Exhausted (Budget.Solver_steps_exhausted { limit } as reason) ->
      check_int "limit" 3 limit;
      Alcotest.(check string)
        "machine-readable tag" "solver-steps-exhausted"
        (Budget.reason_tag reason)
  | _ -> Alcotest.fail "expected solver-steps exhaustion"

(* ------------------------------------------------------------------ *)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "cdcl"
    [
      ( "sat-core",
        [
          Alcotest.test_case "php(3,2) unsat + certified" `Quick
            test_php_unsat_certified;
        ]
        @ qcheck
            [
              prop_cdcl_vs_reference;
              prop_cdcl_incremental;
              prop_corrupt_strengthens_only;
            ] );
      ( "presolve",
        [
          Alcotest.test_case "theory core cites the contradiction" `Quick
            test_proof_atoms;
          Alcotest.test_case "contradictory box pruned before SAT core"
            `Quick test_presolve_prunes;
        ]
        @ qcheck [ prop_presolve_sound; prop_entailed_sound ] );
      ( "dpllt",
        [
          Alcotest.test_case "budget solver-steps cap governs the loop"
            `Quick test_solver_steps_cap;
        ]
        @ qcheck [ prop_legacy_equivalence; prop_corrupt_never_flips_solver ]
      );
    ]
