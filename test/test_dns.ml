(* Tests for the DNS data model and the executable top-level
   specification (rrlookup). The crafted zone below exercises every
   resolution scenario the paper's engine handles: exact matches,
   NODATA, NXDOMAIN, empty non-terminals, wildcard synthesis, CNAME
   chasing (incl. chains, loops and out-of-zone targets), delegation
   referrals with glue, and MX additional processing. *)

module Name = Dns.Name
module Label = Dns.Label
module Rr = Dns.Rr
module Zone = Dns.Zone
module Message = Dns.Message
module Zonegen = Dns.Zonegen
module Zonefile = Dns.Zonefile
module Rrlookup = Spec.Rrlookup

let n = Name.of_string_exn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Names                                                              *)
(* ------------------------------------------------------------------ *)

let test_name_basics () =
  check_str "roundtrip" "www.example.com" (Name.to_string (n "www.example.com"));
  check_str "root" "." (Name.to_string Name.root);
  check_int "label count" 3 (Name.label_count (n "www.example.com"));
  check_bool "under" true
    (Name.is_strictly_under ~ancestor:(n "example.com") (n "www.example.com"));
  check_bool "not under sibling" false
    (Name.is_under ~ancestor:(n "example.com") (n "example.org"));
  check_bool "not under itself strictly" false
    (Name.is_strictly_under ~ancestor:(n "example.com") (n "example.com"));
  check_bool "under itself" true
    (Name.is_under ~ancestor:(n "example.com") (n "example.com"));
  (match Name.parent (n "www.example.com") with
  | Some p -> check_str "parent" "example.com" (Name.to_string p)
  | None -> Alcotest.fail "parent expected");
  check_str "suffix 2" "example.com"
    (Name.to_string (Name.suffix (n "a.b.example.com") 2));
  check_bool "canonical order" true (Name.compare (n "a.example.com") (n "b.example.com") < 0);
  check_bool "parent sorts first" true
    (Name.compare (n "example.com") (n "a.example.com") < 0)

let test_name_wire () =
  let name = n "www.example.com" in
  let wire = Name.to_wire name in
  check_int "wire length" (1 + 3 + 1 + 7 + 1 + 3 + 1) (List.length wire);
  (match Name.of_wire wire with
  | Ok name' -> check_bool "wire roundtrip" true (Name.equal name name')
  | Error m -> Alcotest.fail m);
  (match Name.of_wire [ 3; Char.code 'w' ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated wire must fail")

let test_label_coding () =
  let coder = Label.Coder.create () in
  let c1 = Label.Coder.code coder (Label.of_string_exn "www") in
  let c2 = Label.Coder.code coder (Label.of_string_exn "example") in
  let c1' = Label.Coder.code coder (Label.of_string_exn "www") in
  check_int "stable codes" c1 c1';
  check_bool "distinct codes" true (c1 <> c2);
  check_int "wildcard code" Label.Coder.wildcard_code
    (Label.Coder.code coder Label.wildcard);
  let name = n "www.example.com" in
  let codes = Name.codes coder name in
  check_int "codes reversed: com first" 3 (List.length codes);
  check_bool "roundtrip through codes" true
    (Name.equal name (Name.of_codes coder codes))

let prop_name_string_roundtrip =
  QCheck.Test.make ~name:"name string roundtrip" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 4) (oneofl [ "www"; "a"; "b-c"; "x1" ]))
    (fun labels ->
      let name = Name.of_labels (List.map Label.of_string_exn labels) in
      Name.equal name (Name.of_string_exn (Name.to_string name)))

let prop_name_wire_roundtrip =
  QCheck.Test.make ~name:"name wire roundtrip" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 5) (oneofl [ "www"; "ex"; "a" ]))
    (fun labels ->
      let name = Name.of_labels (List.map Label.of_string_exn labels) in
      match Name.of_wire (Name.to_wire name) with
      | Ok name' -> Name.equal name name'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* The reference zone                                                 *)
(* ------------------------------------------------------------------ *)

let origin = n "example.com"

let zone =
  Zone.make origin
    [
      Rr.soa origin ~mname:(n "ns1.example.com") ~serial:1;
      Rr.ns origin (n "ns1.example.com");
      Rr.a (n "ns1.example.com") 100;
      Rr.a (n "www.example.com") 1;
      Rr.aaaa (n "www.example.com") 2;
      Rr.mx origin 10 (n "mail.example.com");
      Rr.a (n "mail.example.com") 3;
      (* Empty non-terminal: records exist under a.example.com only. *)
      Rr.a (n "deep.a.example.com") 4;
      (* Wildcard with address and MX data. *)
      Rr.a (n "*.wild.example.com") 5;
      Rr.mx (n "*.wild.example.com") 20 (n "mail.example.com");
      (* Wildcard that holds a CNAME. *)
      Rr.cname (n "*.alias.example.com") (n "www.example.com");
      (* CNAME chain: c1 → c2 → www. *)
      Rr.cname (n "c1.example.com") (n "c2.example.com");
      Rr.cname (n "c2.example.com") (n "www.example.com");
      (* CNAME loop. *)
      Rr.cname (n "l1.example.com") (n "l2.example.com");
      Rr.cname (n "l2.example.com") (n "l1.example.com");
      (* CNAME out of zone. *)
      Rr.cname (n "ext.example.com") (n "cdn.other.net");
      (* Delegation with one in-zone (glued) and one external server. *)
      Rr.ns (n "sub.example.com") (n "ns.sub.example.com");
      Rr.ns (n "sub.example.com") (n "ns-ext.other.net");
      Rr.a (n "ns.sub.example.com") 6;
      (* Data below the cut: occluded. *)
      Rr.a (n "host.sub.example.com") 7;
      (* CNAME pointing under the cut. *)
      Rr.cname (n "intocut.example.com") (n "host.sub.example.com");
      (* TXT for type coverage. *)
      Rr.txt (n "www.example.com") "hello";
    ]

let resolve qname qtype = Rrlookup.resolve zone (Message.query (n qname) qtype)

let rcode = Alcotest.testable Message.pp_rcode ( = )

let check_rcode what want (r : Message.response) =
  Alcotest.check rcode what want r.Message.rcode

let answer_addrs (r : Message.response) =
  List.filter_map
    (fun (rr : Rr.t) ->
      match rr.Rr.rdata with Rr.Addr a -> Some a | _ -> None)
    r.Message.answer

(* ------------------------------------------------------------------ *)
(* rrlookup semantics                                                 *)
(* ------------------------------------------------------------------ *)

let test_exact_match () =
  let r = resolve "www.example.com" Rr.A in
  check_rcode "rcode" Message.NoError r;
  check_bool "aa" true r.Message.aa;
  check_int "one A answer" 1 (List.length r.Message.answer);
  check_bool "addr 1" true (answer_addrs r = [ 1 ]);
  Alcotest.(check int) "no authority" 0 (List.length r.Message.authority)

let test_apex_soa_and_ns () =
  let r = resolve "example.com" Rr.SOA in
  check_rcode "soa rcode" Message.NoError r;
  check_int "soa answer" 1 (List.length r.Message.answer);
  let r = resolve "example.com" Rr.NS in
  check_rcode "ns rcode" Message.NoError r;
  check_bool "aa on apex ns" true r.Message.aa;
  check_int "ns answer" 1 (List.length r.Message.answer);
  (* NS additional processing gives ns1's address. *)
  check_int "glue additional" 1 (List.length r.Message.additional)

let test_nodata () =
  let r = resolve "www.example.com" Rr.MX in
  check_rcode "rcode" Message.NoError r;
  check_bool "aa" true r.Message.aa;
  check_int "empty answer" 0 (List.length r.Message.answer);
  check_int "SOA in authority" 1 (List.length r.Message.authority);
  match (List.hd r.Message.authority).Rr.rtype with
  | Rr.SOA -> ()
  | _ -> Alcotest.fail "authority must be the SOA"

let test_nxdomain () =
  let r = resolve "nosuch.example.com" Rr.A in
  check_rcode "rcode" Message.NXDomain r;
  check_bool "aa" true r.Message.aa;
  check_int "SOA authority" 1 (List.length r.Message.authority)

let test_empty_nonterminal () =
  (* a.example.com owns nothing but deep.a.example.com exists: NODATA,
     not NXDOMAIN. *)
  let r = resolve "a.example.com" Rr.A in
  check_rcode "rcode" Message.NoError r;
  check_int "no answer" 0 (List.length r.Message.answer);
  check_int "SOA authority" 1 (List.length r.Message.authority)

let test_refused_out_of_zone () =
  let r = resolve "www.other.net" Rr.A in
  check_rcode "rcode" Message.Refused r

let test_wildcard_synthesis () =
  let r = resolve "x.wild.example.com" Rr.A in
  check_rcode "rcode" Message.NoError r;
  check_int "one answer" 1 (List.length r.Message.answer);
  let rr = List.hd r.Message.answer in
  check_str "owner is qname" "x.wild.example.com" (Name.to_string rr.Rr.rname);
  check_bool "wildcard data" true (answer_addrs r = [ 5 ]);
  (* Multi-label expansion: '*' covers several labels. *)
  let r = resolve "a.b.wild.example.com" Rr.A in
  check_rcode "multi-label" Message.NoError r;
  check_int "one answer" 1 (List.length r.Message.answer);
  check_str "owner" "a.b.wild.example.com"
    (Name.to_string (List.hd r.Message.answer).Rr.rname)

let test_wildcard_nodata () =
  (* The wildcard exists but has no TXT: authoritative NODATA. *)
  let r = resolve "x.wild.example.com" Rr.TXT in
  check_rcode "rcode" Message.NoError r;
  check_int "no answer" 0 (List.length r.Message.answer);
  check_int "SOA authority" 1 (List.length r.Message.authority)

let test_wildcard_does_not_cover_existing () =
  (* wild.example.com itself exists (as an empty non-terminal): queries
     for it do not synthesize. *)
  let r = resolve "wild.example.com" Rr.A in
  check_rcode "rcode" Message.NoError r;
  check_int "no answer" 0 (List.length r.Message.answer)

let test_wildcard_cname () =
  let r = resolve "x.alias.example.com" Rr.A in
  check_rcode "rcode" Message.NoError r;
  check_int "cname + target" 2 (List.length r.Message.answer);
  let first = List.hd r.Message.answer in
  check_str "synthesized owner" "x.alias.example.com"
    (Name.to_string first.Rr.rname);
  check_bool "is cname" true (Rr.equal_rtype first.Rr.rtype Rr.CNAME);
  check_bool "final addr" true (answer_addrs r = [ 1 ])

let test_cname_chain () =
  let r = resolve "c1.example.com" Rr.A in
  check_rcode "rcode" Message.NoError r;
  check_int "chain: c1,c2,www" 3 (List.length r.Message.answer);
  check_bool "ends with addr 1" true (answer_addrs r = [ 1 ])

let test_cname_direct_query () =
  let r = resolve "c1.example.com" Rr.CNAME in
  check_int "only the cname" 1 (List.length r.Message.answer)

let test_cname_loop () =
  let r = resolve "l1.example.com" Rr.A in
  check_rcode "loop servfails" Message.ServFail r

let test_cname_out_of_zone () =
  let r = resolve "ext.example.com" Rr.A in
  check_rcode "rcode" Message.NoError r;
  check_int "cname only" 1 (List.length r.Message.answer);
  check_bool "aa" true r.Message.aa

let test_referral () =
  let r = resolve "host.sub.example.com" Rr.A in
  check_rcode "rcode" Message.NoError r;
  check_bool "not authoritative" false r.Message.aa;
  check_int "no answer (occluded)" 0 (List.length r.Message.answer);
  check_int "two NS" 2 (List.length r.Message.authority);
  (* Only the in-zone server has glue. *)
  check_int "one glue" 1 (List.length r.Message.additional)

let test_referral_at_cut () =
  let r = resolve "sub.example.com" Rr.NS in
  check_bool "referral, not answer" false r.Message.aa;
  check_int "NS in authority" 2 (List.length r.Message.authority)

let test_cname_into_cut () =
  let r = resolve "intocut.example.com" Rr.A in
  check_rcode "rcode" Message.NoError r;
  (* CNAME followed, then referral for the target. *)
  check_int "cname in answer" 1 (List.length r.Message.answer);
  check_int "NS authority" 2 (List.length r.Message.authority);
  check_bool "aa kept for the authoritative prefix" true r.Message.aa

let test_mx_additional () =
  let r = resolve "example.com" Rr.MX in
  check_rcode "rcode" Message.NoError r;
  check_int "mx answer" 1 (List.length r.Message.answer);
  check_int "exchange address in additional" 1 (List.length r.Message.additional)

(* ------------------------------------------------------------------ *)
(* Zone validation                                                    *)
(* ------------------------------------------------------------------ *)

let test_zone_valid () = check_bool "reference zone valid" true (Zone.is_valid zone)

let test_zone_validation_catches () =
  let bad_no_soa = Zone.make origin [ Rr.a (n "www.example.com") 1 ] in
  check_bool "missing soa" false (Zone.is_valid bad_no_soa);
  let bad_out_of_zone =
    Zone.make origin
      [ Rr.soa origin ~mname:(n "ns1.example.com") ~serial:1; Rr.a (n "www.other.net") 1 ]
  in
  check_bool "out of zone" false (Zone.is_valid bad_out_of_zone);
  let bad_cname_conflict =
    Zone.make origin
      [
        Rr.soa origin ~mname:(n "ns1.example.com") ~serial:1;
        Rr.cname (n "x.example.com") (n "www.example.com");
        Rr.a (n "x.example.com") 1;
      ]
  in
  check_bool "cname conflict" false (Zone.is_valid bad_cname_conflict);
  let bad_wildcard =
    Zone.make origin
      [
        Rr.soa origin ~mname:(n "ns1.example.com") ~serial:1;
        Rr.a (Name.of_labels [ Label.of_string_exn "a"; Label.wildcard;
                               Label.of_string_exn "example"; Label.of_string_exn "com" ]) 1;
      ]
  in
  check_bool "wildcard not leftmost" false (Zone.is_valid bad_wildcard)

let test_zone_helpers () =
  check_bool "delegation" true (Zone.is_delegation zone (n "sub.example.com"));
  check_bool "apex not delegation" false (Zone.is_delegation zone origin);
  check_bool "node exists (ent)" true (Zone.node_exists zone (n "a.example.com"));
  check_bool "node missing" false (Zone.node_exists zone (n "zz.example.com"));
  match Rrlookup.highest_cut zone (n "x.y.sub.example.com") with
  | Some cut -> check_str "cut" "sub.example.com" (Name.to_string cut)
  | None -> Alcotest.fail "cut expected"

(* ------------------------------------------------------------------ *)
(* Zone file I/O                                                      *)
(* ------------------------------------------------------------------ *)

let test_zonefile_roundtrip () =
  let text = Zonefile.render zone in
  match Zonefile.parse text with
  | Error m -> Alcotest.fail m
  | Ok zone' ->
      check_bool "origin" true (Name.equal (Zone.origin zone) (Zone.origin zone'));
      check_int "record count" (Zone.record_count zone) (Zone.record_count zone');
      List.iter2
        (fun a b -> check_bool "record equal" true (Rr.equal a b))
        (Zone.records zone) (Zone.records zone')

let test_zonefile_errors () =
  (match Zonefile.parse "www 300 A 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must require $ORIGIN");
  (match Zonefile.parse "$ORIGIN example.com.\nwww 300 BOGUS 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown type");
  match Zonefile.parse "$ORIGIN example.com.\nwww 300 MX 10\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed MX"

(* ------------------------------------------------------------------ *)
(* Generator properties                                               *)
(* ------------------------------------------------------------------ *)

let prop_generated_zones_valid =
  QCheck.Test.make ~name:"generated zones validate" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let z = Zonegen.generate ~seed (n "gen.example") in
      Zone.is_valid z)

let prop_generated_zone_resolution_total =
  QCheck.Test.make ~name:"spec never raises on generated zones/queries"
    ~count:100
    QCheck.(pair (int_range 0 2_000) (int_range 0 1_000))
    (fun (seed, qseed) ->
      let z = Zonegen.generate ~seed (n "gen.example") in
      let rng = Random.State.make [| qseed |] in
      let q = Zonegen.random_query ~rng z in
      let r = Rrlookup.resolve z q in
      (* Sanity: rcode is one of the modelled ones, AA only on non-refused. *)
      match r.Message.rcode with
      | Message.Refused -> r.Message.answer = []
      | Message.NoError | Message.NXDomain | Message.ServFail -> true
      (* The spec never answers with the wire-path-only rcodes. *)
      | Message.FormErr | Message.NotImp -> false)

(* ------------------------------------------------------------------ *)
(* Rcode coding: rcode_code / rcode_of_code are exact inverses over
   all RFC 1035 codes 0-5 (the serve loop depends on FORMERR and
   NOTIMP surviving the round trip).                                  *)
(* ------------------------------------------------------------------ *)

let test_rcode_roundtrip () =
  check_int "all six RFC 1035 rcodes modelled" 6
    (List.length Message.all_rcodes);
  List.iter
    (fun rc ->
      let code = Message.rcode_code rc in
      check_bool
        (Printf.sprintf "code %d in range 0-5" code)
        true
        (code >= 0 && code <= 5);
      match Message.rcode_of_code code with
      | Some rc' ->
          check_bool
            (Printf.sprintf "rcode_of_code (rcode_code %s)"
               (Message.rcode_to_string rc))
            true (rc = rc')
      | None ->
          Alcotest.failf "rcode_of_code %d = None for %s" code
            (Message.rcode_to_string rc))
    Message.all_rcodes;
  (* The inverse direction: every code 0-5 decodes, and re-encodes to
     itself; everything else is rejected. *)
  for code = 0 to 5 do
    match Message.rcode_of_code code with
    | Some rc -> check_int "re-encodes" code (Message.rcode_code rc)
    | None -> Alcotest.failf "rcode_of_code %d = None" code
  done;
  List.iter
    (fun code ->
      check_bool
        (Printf.sprintf "code %d rejected" code)
        true
        (Message.rcode_of_code code = None))
    [ -1; 6; 7; 15; 16; 255 ];
  (* FORMERR and NOTIMP land on their RFC values. *)
  check_int "FORMERR = 1" 1 (Message.rcode_code Message.FormErr);
  check_int "NOTIMP = 4" 4 (Message.rcode_code Message.NotImp)

let prop_zonefile_roundtrip_generated =
  QCheck.Test.make ~name:"zonefile roundtrip on generated zones" ~count:30
    QCheck.(int_range 0 1_000)
    (fun seed ->
      let z = Zonegen.generate ~seed (n "gen.example") in
      match Zonefile.parse (Zonefile.render z) with
      | Ok z' ->
          List.for_all2 Rr.equal (Zone.records z) (Zone.records z')
      | Error _ -> false)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "dns"
    [
      ( "names",
        [
          Alcotest.test_case "basics" `Quick test_name_basics;
          Alcotest.test_case "wire form" `Quick test_name_wire;
          Alcotest.test_case "label coding" `Quick test_label_coding;
          Alcotest.test_case "rcode roundtrip" `Quick test_rcode_roundtrip;
        ]
        @ qcheck [ prop_name_string_roundtrip; prop_name_wire_roundtrip ] );
      ( "rrlookup",
        [
          Alcotest.test_case "exact match" `Quick test_exact_match;
          Alcotest.test_case "apex SOA/NS" `Quick test_apex_soa_and_ns;
          Alcotest.test_case "nodata" `Quick test_nodata;
          Alcotest.test_case "nxdomain" `Quick test_nxdomain;
          Alcotest.test_case "empty non-terminal" `Quick test_empty_nonterminal;
          Alcotest.test_case "refused" `Quick test_refused_out_of_zone;
          Alcotest.test_case "wildcard synthesis" `Quick test_wildcard_synthesis;
          Alcotest.test_case "wildcard nodata" `Quick test_wildcard_nodata;
          Alcotest.test_case "wildcard vs existing" `Quick
            test_wildcard_does_not_cover_existing;
          Alcotest.test_case "wildcard cname" `Quick test_wildcard_cname;
          Alcotest.test_case "cname chain" `Quick test_cname_chain;
          Alcotest.test_case "cname direct query" `Quick test_cname_direct_query;
          Alcotest.test_case "cname loop" `Quick test_cname_loop;
          Alcotest.test_case "cname out of zone" `Quick test_cname_out_of_zone;
          Alcotest.test_case "referral + glue" `Quick test_referral;
          Alcotest.test_case "referral at cut" `Quick test_referral_at_cut;
          Alcotest.test_case "cname into cut" `Quick test_cname_into_cut;
          Alcotest.test_case "mx additional" `Quick test_mx_additional;
        ] );
      ( "zones",
        [
          Alcotest.test_case "reference zone valid" `Quick test_zone_valid;
          Alcotest.test_case "validation catches" `Quick
            test_zone_validation_catches;
          Alcotest.test_case "helpers" `Quick test_zone_helpers;
          Alcotest.test_case "zonefile roundtrip" `Quick test_zonefile_roundtrip;
          Alcotest.test_case "zonefile errors" `Quick test_zonefile_errors;
        ]
        @ qcheck
            [
              prop_generated_zones_valid;
              prop_generated_zone_resolution_total;
              prop_zonefile_roundtrip_generated;
            ] );
    ]
