(* Robustness tests: resource budgets, fault injection, and graceful
   degradation across the verification pipeline.

   Every forced failure mode must yield an [Inconclusive] verdict with a
   machine-readable reason — never an uncaught exception, never a false
   "clean", and never a false refutation of a correct engine. *)

module Rr = Dns.Rr
module Name = Dns.Name
module Versions = Engine.Versions
module Check = Refine.Check
module Pipeline = Dnsv.Pipeline

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* All faults are global state: run each test from a clean slate and
   leave one behind even on failure. *)
let fi (f : unit -> unit) () =
  Faultinject.reset ();
  Fun.protect ~finally:Faultinject.reset f

let clean_cfg = Versions.fixed Versions.v3_0
let zone = Spec.Fixtures.figure11_zone

let status_tag = function
  | Budget.Proved -> "proved"
  | Budget.Refuted _ -> "refuted"
  | Budget.Inconclusive reason -> "inconclusive:" ^ Budget.reason_tag reason

(* ------------------------------------------------------------------ *)
(* Fault-injection substrate                                          *)
(* ------------------------------------------------------------------ *)

let test_seeded_arming_deterministic () =
  let firing_index () =
    Faultinject.arm_seeded ~seed:7 ~window:10 Faultinject.Solver_unknown;
    let fired = ref 0 in
    for i = 1 to 10 do
      if Faultinject.fire Faultinject.Solver_unknown then fired := i
    done;
    Faultinject.reset ();
    !fired
  in
  let i1 = firing_index () in
  let i2 = firing_index () in
  check_bool "fires within window" true (i1 >= 1 && i1 <= 10);
  check_int "same seed, same plan" i1 i2

let test_one_shot_disarms () =
  Faultinject.arm ~after:2 Faultinject.Exec_fuel;
  check_bool "1st arrival holds" false (Faultinject.fire Faultinject.Exec_fuel);
  check_bool "2nd arrival fires" true (Faultinject.fire Faultinject.Exec_fuel);
  check_bool "disarmed afterwards" false (Faultinject.armed Faultinject.Exec_fuel);
  check_bool "3rd arrival holds" false (Faultinject.fire Faultinject.Exec_fuel)

(* ------------------------------------------------------------------ *)
(* Forced solver Unknown: inconclusive, never clean, never refuted    *)
(* ------------------------------------------------------------------ *)

let test_forced_unknown_never_clean () =
  Faultinject.arm ~after:50 Faultinject.Solver_unknown;
  let v = Pipeline.verify ~qtypes:[ Rr.A ] ~check_layers:false clean_cfg zone in
  check_bool "not clean" false (Pipeline.clean v);
  (match Pipeline.status v with
  | Budget.Inconclusive _ -> ()
  | s -> Alcotest.failf "expected inconclusive, got %s" (status_tag s));
  (* A correct engine must not be refuted because the solver shrugged. *)
  check_bool "no fabricated counterexamples" true
    (List.for_all
       (fun (r : Check.report) -> r.Check.mismatches = [] && r.Check.panics = [])
       v.Pipeline.reports)

let test_persistent_unknown_counted () =
  Faultinject.arm ~persistent:true ~after:1 Faultinject.Solver_unknown;
  let r = Check.check_version clean_cfg zone ~qtype:Rr.A in
  (match Check.status r with
  | Budget.Inconclusive _ -> ()
  | s -> Alcotest.failf "expected inconclusive, got %s" (status_tag s));
  check_bool "unknowns surfaced in the report" true
    (r.Check.unknowns > 0 || r.Check.inconclusive <> None)

(* ------------------------------------------------------------------ *)
(* Budget exhaustion                                                  *)
(* ------------------------------------------------------------------ *)

(* Exhaustion inside the summarization phase surfaces as a summary
   failure, which triggers one automatic Inline_all fallback under a
   ×2-escalated budget — so the reported limit may be the base or the
   escalated one, but the reason must stay machine-readable. *)

let test_solver_steps_exhausted () =
  let budget = Budget.create ~solver_steps:100 () in
  let r = Check.check_version ~budget clean_cfg zone ~qtype:Rr.A in
  match r.Check.inconclusive with
  | Some (Budget.Solver_steps_exhausted { limit }) ->
      check_bool "reports base or escalated limit" true
        (limit = 100 || limit = 200)
  | other ->
      Alcotest.failf "expected solver-steps-exhausted, got %s"
        (match other with
        | Some reason -> Budget.reason_tag reason
        | None -> "conclusive report")

let test_path_cap_exceeded () =
  let budget = Budget.create ~max_paths:5 () in
  let r = Check.check_version ~budget clean_cfg zone ~qtype:Rr.A in
  match r.Check.inconclusive with
  | Some (Budget.Path_cap_exceeded { limit }) ->
      check_bool "reports base or escalated cap" true (limit = 5 || limit = 10)
  | other ->
      Alcotest.failf "expected path-cap-exceeded, got %s"
        (match other with
        | Some reason -> Budget.reason_tag reason
        | None -> "conclusive report")

let test_fuel_exhausted () =
  let budget = Budget.create ~fuel:500 () in
  let r = Check.check_version ~budget clean_cfg zone ~qtype:Rr.A in
  match r.Check.inconclusive with
  | Some (Budget.Fuel_exhausted _) -> ()
  | other ->
      Alcotest.failf "expected fuel-exhausted, got %s"
        (match other with
        | Some reason -> Budget.reason_tag reason
        | None -> "conclusive report")

let test_injected_fuel_is_isolated () =
  (* One-shot fuel fault on the first query type: its report degrades to
     inconclusive, the second query type still verifies. *)
  Faultinject.arm ~after:1 Faultinject.Exec_fuel;
  let v =
    Pipeline.verify ~qtypes:[ Rr.A; Rr.MX ] ~check_layers:false clean_cfg zone
  in
  check_int "both reports present" 2 (List.length v.Pipeline.reports);
  let ra = List.nth v.Pipeline.reports 0 in
  let rmx = List.nth v.Pipeline.reports 1 in
  check_bool "first qtype inconclusive" true (ra.Check.inconclusive <> None);
  check_string "second qtype proved" "proved" (status_tag (Check.status rmx));
  check_bool "verdict not clean" false (Pipeline.clean v)

let test_clock_overrun_hits_deadline () =
  let budget = Budget.create ~deadline_s:3600.0 () in
  Faultinject.arm ~after:1 Faultinject.Clock_overrun;
  let r = Check.check_version ~budget clean_cfg zone ~qtype:Rr.A in
  match r.Check.inconclusive with
  | Some (Budget.Deadline_exceeded _) -> ()
  | other ->
      Alcotest.failf "expected deadline-exceeded, got %s"
        (match other with
        | Some reason -> Budget.reason_tag reason
        | None -> "conclusive report")

(* ------------------------------------------------------------------ *)
(* Retry with escalation                                              *)
(* ------------------------------------------------------------------ *)

let test_retry_escalation_recovers () =
  (* 2000 solver steps are not enough for qtype A on the reference zone
     (≈2800 needed); one geometric escalation (×2) is. *)
  let budget = Budget.create ~solver_steps:2000 () in
  let v =
    Pipeline.verify ~qtypes:[ Rr.A ] ~check_layers:false ~budget ~retries:3
      clean_cfg Spec.Fixtures.reference_zone
  in
  check_string "proved after escalation" "proved" (status_tag (Pipeline.status v));
  check_bool "at least one escalation recorded" true (v.Pipeline.retries >= 1)

let test_retryable_classification () =
  (* Resource exhaustion is worth retrying under a bigger budget;
     injected faults and internal errors are not. *)
  List.iter
    (fun (expected, reason) ->
      check_bool (Budget.reason_tag reason) expected (Budget.retryable reason))
    [
      (true, Budget.Deadline_exceeded { limit_s = 1.0 });
      (true, Budget.Solver_steps_exhausted { limit = 1 });
      (true, Budget.Path_cap_exceeded { limit = 1 });
      (true, Budget.Fuel_exhausted { limit = 1 });
      (true, Budget.Solver_unknowns { count = 1 });
      (true, Budget.Summary_failed "s");
      (false, Budget.Injected_fault "f");
      (false, Budget.Internal_error "e");
    ]

(* ------------------------------------------------------------------ *)
(* Summary failure: graceful degradation to Inline_all                *)
(* ------------------------------------------------------------------ *)

let test_summary_failure_falls_back () =
  (* Baseline: the seeded bug-8 witness refutes v3.0 on qtype A. *)
  let w = Spec.Fixtures.witness 8 in
  let baseline = Check.check_version Versions.v3_0 w.Spec.Fixtures.zone ~qtype:Rr.A in
  check_string "baseline refuted" "refuted" (status_tag (Check.status baseline));
  check_bool "baseline found mismatches" true (baseline.Check.mismatches <> []);
  (* Same check with summarization raising mid-flight: it must degrade
     to Inline_all automatically and reach the same verdict. *)
  Faultinject.arm ~after:1 Faultinject.Summarize_raise;
  let degraded = Check.check_version Versions.v3_0 w.Spec.Fixtures.zone ~qtype:Rr.A in
  check_bool "fallback recorded" true degraded.Check.summary_fallback;
  check_string "same verdict" "refuted" (status_tag (Check.status degraded));
  check_int "same mismatches"
    (List.length baseline.Check.mismatches)
    (List.length degraded.Check.mismatches)

let test_summary_validation_failure_falls_back () =
  Faultinject.arm ~after:1 Faultinject.Summary_invalid;
  let r = Check.check_version clean_cfg zone ~qtype:Rr.A in
  check_bool "fallback recorded" true r.Check.summary_fallback;
  check_string "still proved" "proved" (status_tag (Check.status r))

let test_summary_failure_without_fallback () =
  Faultinject.arm ~after:1 Faultinject.Summarize_raise;
  let r = Check.check_version ~fallback:false clean_cfg zone ~qtype:Rr.A in
  match r.Check.inconclusive with
  | Some (Budget.Summary_failed _) -> ()
  | other ->
      Alcotest.failf "expected summary-failed, got %s"
        (match other with
        | Some reason -> Budget.reason_tag reason
        | None -> "conclusive report")

(* ------------------------------------------------------------------ *)
(* Batch verification under a shared deadline                         *)
(* ------------------------------------------------------------------ *)

let test_batch_partial_under_deadline () =
  let budget = Budget.create ~deadline_s:0.3 () in
  match
    Pipeline.verify_batch ~qtypes:[ Rr.A ] ~count:20 ~seed:11 ~budget clean_cfg
      (Name.of_string_exn "batch.example")
  with
  | Pipeline.Partial { zones_done; reason = Budget.Deadline_exceeded _; _ } ->
      check_bool "stopped before finishing" true (zones_done < 20)
  | Pipeline.Partial { reason; _ } ->
      Alcotest.failf "partial for the wrong reason: %s"
        (Budget.reason_tag reason)
  | Pipeline.All_clean _ ->
      Alcotest.fail "a 0.3s deadline cannot cover 20 zones"
  | Pipeline.Failed { zone_index; verdict } ->
      Alcotest.failf "zone %d spuriously refuted:@.%s" zone_index
        (Pipeline.verdict_to_string verdict)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "robustness"
    [
      ( "faultinject",
        [
          Alcotest.test_case "seeded arming is deterministic" `Quick
            (fi test_seeded_arming_deterministic);
          Alcotest.test_case "one-shot plans disarm" `Quick
            (fi test_one_shot_disarms);
        ] );
      ( "unknowns",
        [
          Alcotest.test_case "forced Unknown is never clean" `Quick
            (fi test_forced_unknown_never_clean);
          Alcotest.test_case "persistent Unknown surfaces in report" `Quick
            (fi test_persistent_unknown_counted);
        ] );
      ( "budgets",
        [
          Alcotest.test_case "solver-step budget" `Quick
            (fi test_solver_steps_exhausted);
          Alcotest.test_case "path cap" `Quick (fi test_path_cap_exceeded);
          Alcotest.test_case "fuel budget" `Quick (fi test_fuel_exhausted);
          Alcotest.test_case "injected fuel fault is per-qtype isolated"
            `Quick (fi test_injected_fuel_is_isolated);
          Alcotest.test_case "clock overrun trips the deadline" `Quick
            (fi test_clock_overrun_hits_deadline);
        ] );
      ( "escalation",
        [
          Alcotest.test_case "retry under escalated budget recovers" `Slow
            (fi test_retry_escalation_recovers);
          Alcotest.test_case "retryable classification" `Quick
            (fi test_retryable_classification);
        ] );
      ( "degradation",
        [
          Alcotest.test_case "summary raise falls back to inlining" `Slow
            (fi test_summary_failure_falls_back);
          Alcotest.test_case "summary validation failure falls back" `Quick
            (fi test_summary_validation_failure_falls_back);
          Alcotest.test_case "no fallback means inconclusive" `Quick
            (fi test_summary_failure_without_fallback);
        ] );
      ( "batch",
        [
          Alcotest.test_case "tight deadline yields partial results" `Slow
            (fi test_batch_partial_under_deadline);
        ] );
    ]
